open Sympiler_sparse

(* Matrix Market I/O, synthetic generators, and fill-reducing orderings. *)

let test_mm_roundtrip_general () =
  let m = Generators.random_lower ~seed:1 ~n:20 ~density:0.2 () in
  let s = Matrix_market.to_string m in
  let m' = Matrix_market.of_string s in
  Alcotest.(check bool) "roundtrip" true (Csc.equal m m')

let test_mm_roundtrip_symmetric () =
  let a = Generators.grid2d ~stencil:`Five 4 4 in
  let s = Matrix_market.to_string ~symmetric:true a in
  let a' = Matrix_market.of_string s in
  Alcotest.(check bool) "symmetric roundtrip" true (Csc.equal a a')

let test_mm_pattern_and_comments () =
  let s =
    "%%MatrixMarket matrix coordinate pattern symmetric\n\
     % a comment line\n\
     3 3 2\n\
     2 1\n\
     3 3\n"
  in
  let m = Matrix_market.of_string s in
  Alcotest.(check int) "expanded nnz" 3 (Csc.nnz m);
  Alcotest.(check (float 0.0)) "pattern value" 1.0 (Csc.get m 1 0);
  Alcotest.(check (float 0.0)) "mirrored" 1.0 (Csc.get m 0 1)

let test_mm_rejects_garbage () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Matrix_market.of_string "not a header\n1 1 0\n");
       false
     with Matrix_market.Parse_error _ -> true)

let test_mm_file_roundtrip () =
  let a = Generators.grid2d ~stencil:`Nine 3 3 in
  let path = Filename.temp_file "sympiler" ".mtx" in
  Matrix_market.write ~symmetric:true path a;
  let a' = Matrix_market.read path in
  Sys.remove path;
  Alcotest.(check bool) "file roundtrip" true (Csc.equal a a')

(* Every generator must produce a symmetric positive definite matrix: check
   symmetry structurally and PD via the dense oracle. *)
let test_generators_spd () =
  List.iter
    (fun (name, a) ->
      Alcotest.(check bool)
        (name ^ " square") true
        (a.Csc.nrows = a.Csc.ncols);
      Alcotest.(check bool)
        (name ^ " symmetric") true
        (Csc.equal a (Csc.transpose a));
      if a.Csc.ncols <= 100 then
        Alcotest.(check bool)
          (name ^ " positive definite") true
          (try
             ignore (Helpers.oracle_cholesky a);
             true
           with Failure _ -> false))
    (Helpers.spd_zoo ())

let test_generators_deterministic () =
  let a = Generators.random_banded ~seed:5 ~n:50 ~band:6 ~density:0.3 () in
  let b = Generators.random_banded ~seed:5 ~n:50 ~band:6 ~density:0.3 () in
  Alcotest.(check bool) "same seed, same matrix" true (Csc.equal a b);
  let c = Generators.random_banded ~seed:6 ~n:50 ~band:6 ~density:0.3 () in
  Alcotest.(check bool) "different seed differs" false (Csc.equal a c)

let test_grid_sizes () =
  let a = Generators.grid2d ~stencil:`Five 5 7 in
  Alcotest.(check int) "n = nx*ny" 35 a.Csc.ncols;
  let b = Generators.grid3d 3 4 5 in
  Alcotest.(check int) "n = nx*ny*nz" 60 b.Csc.ncols

let test_grid_stencil_counts () =
  (* interior node of a 5-point grid has 4 neighbors *)
  let a = Generators.grid2d ~stencil:`Five 5 5 in
  let center = (2 * 5) + 2 in
  Alcotest.(check int) "5pt interior degree" 5 (Csc.col_nnz a center);
  let b = Generators.grid2d ~stencil:`Nine 5 5 in
  Alcotest.(check int) "9pt interior degree" 9 (Csc.col_nnz b center)

let test_sparse_rhs_fill () =
  let b = Generators.sparse_rhs ~seed:3 ~n:1000 ~fill:0.05 () in
  Alcotest.(check int) "requested fill" 50 (Vector.sparse_nnz b);
  Alcotest.(check bool) "sorted indices" true
    (Utils.array_is_sorted_strict b.Vector.indices 0 (Vector.sparse_nnz b))

let test_random_lower_is_lower () =
  let l = Generators.random_lower ~seed:2 ~n:40 ~density:0.2 () in
  Alcotest.(check bool) "lower triangular" true (Csc.is_lower_triangular l);
  (* diagonal present and >= 1 *)
  let ok = ref true in
  for j = 0 to 39 do
    if Csc.get l j j < 1.0 then ok := false
  done;
  Alcotest.(check bool) "unit-ish diagonal" true !ok

let test_suite_table2 () =
  Alcotest.(check int) "11 problems" 11 (List.length Generators.suite);
  List.iteri
    (fun i p ->
      Alcotest.(check int) "ids sequential" (i + 1) p.Generators.id)
    Generators.suite;
  let p = Generators.problem_by_name "cbuckle" in
  Alcotest.(check int) "lookup by name" 1 p.Generators.id

let test_rcm_reduces_bandwidth () =
  (* A randomly permuted grid has large bandwidth; RCM should shrink it. *)
  let a = Generators.grid2d ~stencil:`Five 10 10 in
  let rng = Utils.Rng.create 11 in
  let scrambled = Perm.symmetric_permute (Perm.random rng a.Csc.ncols) a in
  let before = Ordering.bandwidth scrambled in
  let p = Ordering.rcm scrambled in
  Alcotest.(check bool) "rcm perm valid" true (Perm.is_valid p);
  let after = Ordering.bandwidth (Perm.symmetric_permute p scrambled) in
  Alcotest.(check bool)
    (Printf.sprintf "bandwidth %d -> %d" before after)
    true (after < before / 2)

let test_min_degree_reduces_fill () =
  let a = Generators.grid2d ~stencil:`Five 12 12 in
  let p = Ordering.min_degree a in
  Alcotest.(check bool) "md perm valid" true (Perm.is_valid p);
  let fill_of m =
    Csc.nnz
      (Sympiler_symbolic.Fill_pattern.analyze (Csc.lower m))
        .Sympiler_symbolic.Fill_pattern.l_pattern
  in
  let before = fill_of a in
  let after = fill_of (Perm.symmetric_permute p a) in
  Alcotest.(check bool)
    (Printf.sprintf "fill %d -> %d" before after)
    true
    (after < before)

let test_ordering_preserves_solution () =
  (* Solve A x = b directly and via P A P^T. *)
  let a = Generators.grid2d ~stencil:`Five 6 6 in
  let n = a.Csc.ncols in
  let b = Array.init n (fun i -> sin (float_of_int i)) in
  let x_direct =
    let l = Helpers.oracle_cholesky a in
    Dense.upper_solve_transposed l (Dense.lower_solve l b)
  in
  let p = Ordering.min_degree a in
  let ap = Perm.symmetric_permute p a in
  let bp = Perm.apply_vec p b in
  let xp =
    let l = Helpers.oracle_cholesky ap in
    Dense.upper_solve_transposed l (Dense.lower_solve l bp)
  in
  let x_back = Perm.apply_inv_vec p xp in
  Helpers.check_close "permuted solve agrees" x_direct x_back

let suite =
  [
    ("mm roundtrip general", `Quick, test_mm_roundtrip_general);
    ("mm roundtrip symmetric", `Quick, test_mm_roundtrip_symmetric);
    ("mm pattern + comments", `Quick, test_mm_pattern_and_comments);
    ("mm rejects garbage", `Quick, test_mm_rejects_garbage);
    ("mm file roundtrip", `Quick, test_mm_file_roundtrip);
    ("generators produce SPD", `Quick, test_generators_spd);
    ("generators deterministic", `Quick, test_generators_deterministic);
    ("grid sizes", `Quick, test_grid_sizes);
    ("grid stencil degrees", `Quick, test_grid_stencil_counts);
    ("sparse rhs fill", `Quick, test_sparse_rhs_fill);
    ("random lower is lower", `Quick, test_random_lower_is_lower);
    ("table 2 suite", `Quick, test_suite_table2);
    ("rcm reduces bandwidth", `Quick, test_rcm_reduces_bandwidth);
    ("min degree reduces fill", `Quick, test_min_degree_reduces_fill);
    ("ordering preserves solution", `Quick, test_ordering_preserves_solution);
  ]

let prop_rcm_valid_on_random_graphs =
  Helpers.qtest ~count:50 "rcm produces a valid permutation" Helpers.arb_spd
    (fun a -> Perm.is_valid (Ordering.rcm a))

let prop_min_degree_valid =
  Helpers.qtest ~count:30 "min_degree produces a valid permutation"
    Helpers.arb_spd (fun a -> Perm.is_valid (Ordering.min_degree a))

let test_adjacency_no_self_loops () =
  let a = Generators.grid2d ~stencil:`Five 4 4 in
  let adj = Ordering.adjacency a in
  Array.iteri
    (fun v ns ->
      Alcotest.(check bool) "no self loop" false (List.mem v ns))
    adj

let test_rcm_disconnected () =
  (* Two disjoint chains: RCM must cover both components. *)
  let tr = Triplet.create ~nrows:8 ~ncols:8 () in
  List.iter
    (fun (i, j) ->
      Triplet.add tr i j (-1.0);
      Triplet.add tr j i (-1.0))
    [ (0, 1); (1, 2); (4, 5); (5, 6); (6, 7) ];
  for i = 0 to 7 do
    Triplet.add tr i i 4.0
  done;
  let a = Csc.of_triplet tr in
  Alcotest.(check bool) "valid on disconnected graph" true
    (Perm.is_valid (Ordering.rcm a))

let suite =
  suite
  @ [
      prop_rcm_valid_on_random_graphs;
      prop_min_degree_valid;
      ("adjacency no self loops", `Quick, test_adjacency_no_self_loops);
      ("rcm disconnected", `Quick, test_rcm_disconnected);
    ]
