open Sympiler_sparse
open Sympiler_symbolic
open Sympiler_kernels

(* Numeric executors: the four Figure 1 triangular solves, the Sympiler
   supernodal trisolve, all five Cholesky implementations, LU, IC(0). *)

(* ---- triangular solve ---- *)

let trisolve_variants l (b : Vector.sparse) =
  let bd = Vector.sparse_to_dense b in
  let c = Trisolve_sympiler.compile l b in
  [
    ("naive (1b)", Trisolve_ref.naive l bd);
    ("library (1c)", Trisolve_ref.library l bd);
    ("decoupled (1d)", Trisolve_ref.decoupled l b);
    ("sympiler vs-block", Trisolve_sympiler.solve_vs_block c b);
    ("sympiler vs+vi", Trisolve_sympiler.solve_vs_vi c b);
    ("sympiler full (1e)", Trisolve_sympiler.solve_full c b);
  ]

let test_trisolve_figure1 () =
  let l = Helpers.figure1_l in
  let b =
    { Vector.n = 10; indices = Helpers.figure1_beta; values = [| 3.0; 5.0 |] }
  in
  let oracle = Helpers.oracle_lower_solve l (Vector.sparse_to_dense b) in
  List.iter
    (fun (name, x) -> Helpers.check_close name oracle x)
    (trisolve_variants l b)

let prop_trisolve_all_variants_agree =
  Helpers.qtest "all trisolve variants match the dense oracle"
    Helpers.arb_lower_with_rhs (fun (l, b) ->
      let oracle = Helpers.oracle_lower_solve l (Vector.sparse_to_dense b) in
      List.for_all (fun (_, x) -> Helpers.close oracle x) (trisolve_variants l b))

let test_trisolve_dense_rhs () =
  let l = Generators.random_lower ~seed:8 ~n:100 ~density:0.1 () in
  let b = Array.init 100 (fun i -> float_of_int (i mod 7) -. 3.0) in
  Helpers.check_close "naive dense rhs" (Helpers.oracle_lower_solve l b)
    (Trisolve_ref.naive l b)

let test_transpose_solve () =
  let l = Generators.random_lower ~seed:9 ~n:60 ~density:0.15 () in
  let b = Array.init 60 (fun i -> cos (float_of_int i)) in
  let x = Trisolve_ref.transpose_solve l b in
  (* check L^T x = b by dense multiply *)
  let lt = Dense.transpose (Dense.of_csc l) in
  let r = ref 0.0 in
  for i = 0 to 59 do
    let s = ref 0.0 in
    for j = 0 to 59 do
      s := !s +. (Dense.get lt i j *. x.(j))
    done;
    r := Float.max !r (Float.abs (!s -. b.(i)))
  done;
  Alcotest.(check bool) "residual" true (!r < 1e-9)

let test_trisolve_values_change_pattern_fixed () =
  (* Compile once, solve with different numeric values of L and b. *)
  let l = Generators.random_lower ~seed:10 ~n:80 ~density:0.1 () in
  let b = Generators.sparse_rhs ~seed:11 ~n:80 ~fill:0.05 () in
  let c = Trisolve_sympiler.compile l b in
  let l2 = Csc.map_values l (fun v -> v *. 1.5) in
  let c2 = { c with Trisolve_sympiler.l = l2 } in
  let b2 = { b with Vector.values = Array.map (fun v -> v +. 1.0) b.Vector.values } in
  let oracle = Helpers.oracle_lower_solve l2 (Vector.sparse_to_dense b2) in
  Helpers.check_close "new values, same compiled structure" oracle
    (Trisolve_sympiler.solve_full c2 b2)

let test_trisolve_flops_counts () =
  let l = Helpers.figure1_l in
  let r = Dep_graph.reach l Helpers.figure1_beta in
  (* columns 0,5,6,7,8,9 have nnz 2,4,2,3,2,1 -> flops = sum (2nnz-1) = 3+7+3+5+3+1 = 22 *)
  Alcotest.(check (float 0.0)) "useful flops" 22.0 (Trisolve_ref.flops l r)

let test_trisolve_threshold_disables_blocks () =
  let l = Generators.random_lower ~seed:12 ~n:60 ~density:0.08 () in
  let b = Generators.sparse_rhs ~seed:13 ~n:60 ~fill:0.1 () in
  let c = Trisolve_sympiler.compile ~vs_block_threshold:1e9 l b in
  (* with an impossible threshold every supernode is a single column *)
  Alcotest.(check int) "degenerate blocks" l.Csc.ncols
    (Supernodes.nsuper c.Trisolve_sympiler.sn)

(* ---- Cholesky ---- *)

let cholesky_variants al =
  let an_e = Cholesky_ref.Eigen.analyze al in
  let cd = Cholesky_ref.Decoupled.compile al in
  let an_c = Cholesky_supernodal.Cholmod.analyze al in
  let cs = Cholesky_supernodal.Sympiler.compile al in
  let cg = Cholesky_supernodal.Sympiler.compile ~specialized:false al in
  [
    ("eigen", Cholesky_ref.Eigen.factor an_e al);
    ("decoupled", Cholesky_ref.Decoupled.factor cd al);
    ("cholmod", Cholesky_supernodal.Cholmod.factor an_c al);
    ("sympiler-sn", Cholesky_supernodal.Sympiler.factor cs al);
    ("sympiler-sn-generic", Cholesky_supernodal.Sympiler.factor cg al);
  ]

let test_cholesky_zoo () =
  List.iter
    (fun (name, a) ->
      let al = Csc.lower a in
      let oracle = Helpers.oracle_cholesky a in
      List.iter
        (fun (vname, l) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s %s" name vname)
            true
            (Dense.max_abs_diff oracle (Dense.of_csc l) < 1e-7))
        (cholesky_variants al))
    (Helpers.spd_zoo ())

let prop_cholesky_all_variants =
  Helpers.qtest ~count:40 "all Cholesky variants match the dense oracle"
    Helpers.arb_spd (fun a ->
      let al = Csc.lower a in
      let oracle = Helpers.oracle_cholesky a in
      List.for_all
        (fun (_, l) -> Dense.max_abs_diff oracle (Dense.of_csc l) < 1e-7)
        (cholesky_variants al))

let prop_cholesky_solve_residual =
  Helpers.qtest ~count:40 "factor+solve residual small" Helpers.arb_spd
    (fun a ->
      let al = Csc.lower a in
      let n = a.Csc.ncols in
      let b = Array.init n (fun i -> sin (float_of_int i)) in
      let l = Cholesky_ref.factor_simple al in
      let x = Cholesky_ref.solve_with_factor l b in
      let r = Vector.sub (Csc.spmv a x) b in
      Vector.norm_inf r /. Float.max 1.0 (Vector.norm_inf b) < 1e-7)

let test_cholesky_not_pd_raises () =
  let a = Csc.of_dense [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  let al = Csc.lower a in
  Alcotest.(check bool) "eigen raises" true
    (try
       ignore (Cholesky_ref.factor_simple al);
       false
     with Cholesky_ref.Not_positive_definite _ -> true);
  Alcotest.(check bool) "supernodal raises" true
    (try
       let c = Cholesky_supernodal.Sympiler.compile al in
       ignore (Cholesky_supernodal.Sympiler.factor c al);
       false
     with Dense_blas.Not_positive_definite _ -> true)

let test_cholesky_refactor_new_values () =
  (* The paper's core use case: same pattern, changing values. *)
  let a = Generators.grid2d ~stencil:`Nine 6 6 in
  let al = Csc.lower a in
  let c = Cholesky_supernodal.Sympiler.compile al in
  let al2 =
    Csc.map_values al (fun v -> if v < 0.0 then v *. 0.7 else v *. 1.3)
  in
  let a2 = Csc.symmetrize_from_lower al2 in
  let oracle = Helpers.oracle_cholesky a2 in
  let l = Cholesky_supernodal.Sympiler.factor c al2 in
  Alcotest.(check bool) "refactor without re-analysis" true
    (Dense.max_abs_diff oracle (Dense.of_csc l) < 1e-7)

let test_cholesky_max_width_variants () =
  let a = Generators.block_tridiagonal ~seed:4 ~nblocks:5 ~block:6 () in
  let al = Csc.lower a in
  let oracle = Helpers.oracle_cholesky a in
  List.iter
    (fun mw ->
      let c = Cholesky_supernodal.Sympiler.compile ~max_width:mw al in
      let l = Cholesky_supernodal.Sympiler.factor c al in
      Alcotest.(check bool)
        (Printf.sprintf "max_width=%d" mw)
        true
        (Dense.max_abs_diff oracle (Dense.of_csc l) < 1e-7))
    [ 1; 2; 3; 7; 100 ]

let test_supernodal_schedule_covers_updates () =
  (* Every below-diagonal row of every descendant must appear in exactly one
     update of the schedule. *)
  let a = Generators.grid2d ~stencil:`Five 6 6 in
  let al = Csc.lower a in
  let c = Cholesky_supernodal.Sympiler.compile al in
  let an = c.Cholesky_supernodal.Sympiler.an in
  let total_rows =
    Array.fold_left ( + ) 0 an.Cholesky_supernodal.nb
  in
  let scheduled =
    Array.fold_left
      (fun acc ups ->
        Array.fold_left (fun acc (u : Cholesky_supernodal.update) -> acc + u.Cholesky_supernodal.t) acc ups)
      0 c.Cholesky_supernodal.Sympiler.schedule
  in
  Alcotest.(check int) "schedule covers every below row" total_rows scheduled

(* ---- LU ---- *)

let prop_lu_correct =
  Helpers.qtest ~count:40 "LU: L*U = A and variants agree" Helpers.arb_spd
    (fun a ->
      (* SPD implies no pivoting needed. *)
      let c = Lu.Sympiler.compile a in
      let f1 = Lu.Sympiler.factor c a in
      let f2 = Lu.Ref.factor a in
      let prod = Dense.matmul (Dense.of_csc f1.Lu.l) (Dense.of_csc f1.Lu.u) in
      Dense.max_abs_diff prod (Dense.of_csc a) < 1e-7
      && Csc.equal ~eps:1e-9 f1.Lu.l f2.Lu.l
      && Csc.equal ~eps:1e-9 f1.Lu.u f2.Lu.u)

let prop_lu_solve =
  Helpers.qtest ~count:40 "LU solve residual" Helpers.arb_spd (fun a ->
      let n = a.Csc.ncols in
      let b = Array.init n (fun i -> float_of_int ((i mod 5) - 2)) in
      let f = Lu.Ref.factor a in
      let x = Lu.solve f b in
      let r = Vector.sub (Csc.spmv a x) b in
      Vector.norm_inf r /. Float.max 1.0 (Vector.norm_inf b) < 1e-7)

let test_lu_nonsymmetric () =
  (* Unsymmetric diagonally dominant matrix. *)
  let tr = Triplet.create ~nrows:6 ~ncols:6 () in
  for i = 0 to 5 do
    Triplet.add tr i i 4.0;
    if i + 1 < 6 then Triplet.add tr i (i + 1) (-1.0);
    if i >= 2 then Triplet.add tr i (i - 2) (-0.5)
  done;
  let a = Csc.of_triplet tr in
  let f = Lu.Ref.factor a in
  let prod = Dense.matmul (Dense.of_csc f.Lu.l) (Dense.of_csc f.Lu.u) in
  Alcotest.(check bool) "unsymmetric LU" true
    (Dense.max_abs_diff prod (Dense.of_csc a) < 1e-10)

let test_lu_zero_pivot () =
  let a = Csc.of_dense [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  Alcotest.(check bool) "zero pivot raises" true
    (try
       ignore (Lu.Ref.factor a);
       false
     with Lu.Zero_pivot 0 -> true)

let test_lu_pattern_matches_cholesky () =
  (* On SPD input the LU factor L has the Cholesky fill pattern. *)
  let a = Generators.grid2d ~stencil:`Five 5 5 in
  let c = Lu.Sympiler.compile a in
  let fill = Fill_pattern.analyze (Csc.lower a) in
  Alcotest.(check (array int)) "L colptr matches symbolic Cholesky"
    fill.Fill_pattern.l_pattern.Csc.colptr c.Lu.Sympiler.l_colptr

(* ---- IC(0) ---- *)

let test_ic0_nofill_exact () =
  let a = Generators.banded ~seed:22 ~n:50 ~band:1 () in
  let al = Csc.lower a in
  Alcotest.(check bool) "tridiagonal IC0 = exact" true
    (Csc.equal ~eps:1e-10 (Ic0.factorize al) (Cholesky_ref.factor_simple al))

let prop_ic0_matches_a_on_pattern =
  Helpers.qtest ~count:40 "IC0: (L L^T) = A on A's pattern" Helpers.arb_spd
    (fun a ->
      let al = Csc.lower a in
      let l = Ic0.factorize al in
      let ld = Dense.of_csc l in
      let prod = Dense.matmul ld (Dense.transpose ld) in
      let ok = ref true in
      Csc.iter a (fun i j v ->
          if Float.abs (Dense.get prod i j -. v) > 1e-6 then ok := false);
      !ok)

let test_ic0_preconditioner_quality () =
  (* On a diagonally dominant matrix, one application of the IC0
     preconditioner must shrink the residual. *)
  let a = Generators.random_banded ~seed:30 ~n:64 ~band:8 ~density:0.2 () in
  let al = Csc.lower a in
  let l = Ic0.factorize al in
  let n = a.Csc.ncols in
  let b = Array.make n 1.0 in
  (* x ~ A^{-1} b approximated by M^{-1} b with M = L L^T *)
  let x = Cholesky_ref.solve_with_factor l b in
  let r = Vector.sub b (Csc.spmv a x) in
  Alcotest.(check bool) "preconditioner reduces residual" true
    (Vector.norm2 r < Vector.norm2 b)

let suite =
  [
    ("trisolve figure 1", `Quick, test_trisolve_figure1);
    prop_trisolve_all_variants_agree;
    ("trisolve dense rhs", `Quick, test_trisolve_dense_rhs);
    ("transpose solve", `Quick, test_transpose_solve);
    ("trisolve values change", `Quick, test_trisolve_values_change_pattern_fixed);
    ("trisolve useful flops", `Quick, test_trisolve_flops_counts);
    ("trisolve threshold", `Quick, test_trisolve_threshold_disables_blocks);
    ("cholesky zoo", `Quick, test_cholesky_zoo);
    prop_cholesky_all_variants;
    prop_cholesky_solve_residual;
    ("cholesky not PD raises", `Quick, test_cholesky_not_pd_raises);
    ("cholesky refactor new values", `Quick, test_cholesky_refactor_new_values);
    ("cholesky max_width variants", `Quick, test_cholesky_max_width_variants);
    ("supernodal schedule coverage", `Quick, test_supernodal_schedule_covers_updates);
    prop_lu_correct;
    prop_lu_solve;
    ("lu nonsymmetric", `Quick, test_lu_nonsymmetric);
    ("lu zero pivot", `Quick, test_lu_zero_pivot);
    ("lu pattern = cholesky pattern", `Quick, test_lu_pattern_matches_cholesky);
    ("ic0 exact on tridiagonal", `Quick, test_ic0_nofill_exact);
    prop_ic0_matches_a_on_pattern;
    ("ic0 preconditioner", `Quick, test_ic0_preconditioner_quality);
  ]
