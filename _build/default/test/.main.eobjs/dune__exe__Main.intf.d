test/main.mli:
