test/test_sparse.ml: Alcotest Array Csc Dense Float Generators Helpers Perm QCheck Sympiler_sparse Triplet Utils Vector
