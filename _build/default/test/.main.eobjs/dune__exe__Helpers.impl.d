test/helpers.ml: Alcotest Array Csc Dense Generators List Printf QCheck QCheck_alcotest Sympiler_sparse Triplet Utils Vector
