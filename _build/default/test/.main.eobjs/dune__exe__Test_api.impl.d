test/test_api.ml: Alcotest Array Buffer Cholesky_supernodal Csc Dense Filename Generators Helpers List Out_channel Perm Printf String Sympiler Sympiler_kernels Sympiler_sparse Sys Unix Vector
