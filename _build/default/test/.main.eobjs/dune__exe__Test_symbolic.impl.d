test/test_symbolic.ml: Alcotest Array Csc Dep_graph Ereach Etree Fill_pattern Generators Helpers Inspector List Postorder String Supernodes Sympiler_sparse Sympiler_symbolic Triplet Vector
