test/test_io_generators.ml: Alcotest Array Csc Dense Filename Generators Helpers List Matrix_market Ordering Perm Printf Sympiler_sparse Sympiler_symbolic Sys Triplet Utils Vector
