open Sympiler_sparse
open Sympiler_symbolic

(* Symbolic analysis: reach sets, elimination trees, postorder, ereach,
   fill patterns, column counts, supernodes, inspectors. *)

(* ---- dependence graph / reach ---- *)

let test_figure1_reach () =
  let l = Helpers.figure1_l in
  let r = Dep_graph.reach l Helpers.figure1_beta in
  let sorted = Array.copy r in
  Array.sort compare sorted;
  Alcotest.(check (array int))
    "paper's reach set {1,6,7,8,9,10} (1-based)" Helpers.figure1_reach_sorted
    sorted;
  Alcotest.(check bool) "topological" true (Dep_graph.is_topological l r)

let test_reach_empty_beta () =
  let l = Helpers.figure1_l in
  Alcotest.(check (array int)) "empty beta" [||] (Dep_graph.reach l [||])

let test_reach_full_when_chain () =
  (* Bidiagonal chain: reach from {0} is everything. *)
  let n = 12 in
  let tr = Triplet.create ~nrows:n ~ncols:n () in
  for j = 0 to n - 1 do
    Triplet.add tr j j 1.0;
    if j + 1 < n then Triplet.add tr (j + 1) j (-1.0)
  done;
  let l = Csc.of_triplet tr in
  let r = Dep_graph.reach l [| 0 |] in
  Alcotest.(check int) "reaches all" n (Array.length r)

let prop_reach_matches_naive =
  Helpers.qtest "reach = naive graph reachability" Helpers.arb_lower_with_rhs
    (fun (l, b) ->
      let r = Dep_graph.reach l b.Vector.indices in
      let sorted = Array.copy r in
      Array.sort compare sorted;
      sorted = Dep_graph.reach_naive l b.Vector.indices
      && Dep_graph.is_topological l r)

let prop_reach_covers_solution_pattern =
  Helpers.qtest "solution nonzeros lie inside the reach set"
    Helpers.arb_lower_with_rhs (fun (l, b) ->
      let r = Dep_graph.reach l b.Vector.indices in
      let inset = Array.make l.Csc.ncols false in
      Array.iter (fun j -> inset.(j) <- true) r;
      let x = Helpers.oracle_lower_solve l (Vector.sparse_to_dense b) in
      Array.for_all (fun ok -> ok) (Array.mapi (fun i xi -> xi = 0.0 || inset.(i)) x))

(* ---- elimination tree ---- *)

let prop_etree_matches_naive =
  Helpers.qtest "etree = naive filled-graph parents" Helpers.arb_spd (fun a ->
      let al = Csc.lower a in
      Etree.compute al = Etree.compute_naive al)

let prop_etree_parent_above =
  Helpers.qtest "parent j > j or root" Helpers.arb_spd (fun a ->
      let parent = Etree.compute (Csc.lower a) in
      Array.for_all (fun ok -> ok)
        (Array.mapi (fun j p -> p = -1 || p > j) parent))

let test_etree_known_chain () =
  (* Tridiagonal: etree is the chain j -> j+1. *)
  let a = Generators.banded ~seed:1 ~n:8 ~band:1 () in
  let parent = Etree.compute (Csc.lower a) in
  Alcotest.(check (array int)) "chain" [| 1; 2; 3; 4; 5; 6; 7; -1 |] parent

let test_etree_children_roots () =
  let a = Generators.grid2d ~stencil:`Five 4 4 in
  let parent = Etree.compute (Csc.lower a) in
  let nchild = Etree.n_children parent in
  let total = Array.fold_left ( + ) 0 nchild in
  let nroots = List.length (Etree.roots parent) in
  Alcotest.(check int) "children + roots = n" 16 (total + nroots);
  let depth = Etree.depths parent in
  Array.iteri
    (fun j p ->
      if p >= 0 then
        Alcotest.(check int) "child deeper" (depth.(p) + 1) depth.(j))
    parent

let prop_postorder_valid =
  Helpers.qtest "postorder is a valid forest postorder" Helpers.arb_spd
    (fun a ->
      let parent = Etree.compute (Csc.lower a) in
      Postorder.is_valid parent (Postorder.compute parent))

(* ---- ereach / fill pattern / counts ---- *)

let prop_ereach_matches_naive =
  Helpers.qtest ~count:40 "ereach row pattern = naive symbolic row"
    Helpers.arb_spd (fun a ->
      let al = Csc.lower a in
      let n = al.Csc.ncols in
      let parent = Etree.compute al in
      let upper = Csc.transpose al in
      let work = Ereach.make_workspace n in
      let ok = ref true in
      for k = 0 to n - 1 do
        let fast = Ereach.row_pattern ~upper ~parent ~work k in
        let slow = Ereach.row_pattern_naive al k in
        if fast <> slow then ok := false
      done;
      !ok)

let prop_fill_matches_children_union =
  Helpers.qtest ~count:40 "fill pattern = equation (1) oracle" Helpers.arb_spd
    (fun a ->
      let al = Csc.lower a in
      let fill = Fill_pattern.analyze al in
      Csc.pattern_equal fill.Fill_pattern.l_pattern
        (Fill_pattern.pattern_by_children al))

let prop_counts_consistent =
  Helpers.qtest "counts.(j) = nnz(L(:,j))" Helpers.arb_spd (fun a ->
      let fill = Fill_pattern.analyze (Csc.lower a) in
      Array.for_all (fun ok -> ok)
        (Array.mapi
           (fun j c -> c = Csc.col_nnz fill.Fill_pattern.l_pattern j)
           fill.Fill_pattern.counts))

let prop_fill_contains_a =
  Helpers.qtest "L pattern contains lower(A)" Helpers.arb_spd (fun a ->
      let al = Csc.lower a in
      let fill = Fill_pattern.analyze al in
      let ok = ref true in
      Csc.iter al (fun i j _ ->
          if not (Csc.mem fill.Fill_pattern.l_pattern i j) then ok := false);
      !ok)

let test_fill_flops_positive () =
  let fill = Fill_pattern.analyze (Csc.lower (Generators.grid2d ~stencil:`Five 5 5)) in
  Alcotest.(check bool) "flops > n" true (Fill_pattern.flops fill > 25.0)

(* ---- supernodes ---- *)

let prop_supernodes_exact_valid =
  Helpers.qtest "exact supernodes validate structurally" Helpers.arb_spd
    (fun a ->
      let fill = Fill_pattern.analyze (Csc.lower a) in
      let l = fill.Fill_pattern.l_pattern in
      let sn = Supernodes.detect_exact l in
      Supernodes.validate_against l sn)

let prop_supernodes_etree_equals_exact_rule =
  (* The paper's etree+counts rule must agree with the pattern-based node
     equivalence wherever the only-child condition holds; on Cholesky
     factors the etree rule is at least as conservative, so every etree
     supernode must validate against the pattern. *)
  Helpers.qtest "etree-rule supernodes validate against the pattern"
    Helpers.arb_spd (fun a ->
      let fill = Fill_pattern.analyze (Csc.lower a) in
      let sn =
        Supernodes.detect_etree ~counts:fill.Fill_pattern.counts
          ~parent:fill.Fill_pattern.parent ()
      in
      Supernodes.validate_against fill.Fill_pattern.l_pattern sn)

let test_supernodes_partition () =
  let fill = Fill_pattern.analyze (Csc.lower (Generators.block_tridiagonal ~seed:4 ~nblocks:4 ~block:5 ())) in
  let sn =
    Supernodes.detect_etree ~counts:fill.Fill_pattern.counts
      ~parent:fill.Fill_pattern.parent ()
  in
  let n = fill.Fill_pattern.n in
  Alcotest.(check int) "covers all columns" n
    sn.Supernodes.sn_ptr.(Supernodes.nsuper sn);
  Alcotest.(check bool) "block structure found" true
    (Supernodes.avg_width sn >= 4.0);
  Array.iteri
    (fun j s ->
      Alcotest.(check bool) "col_to_sn consistent" true
        (sn.Supernodes.sn_ptr.(s) <= j && j < sn.Supernodes.sn_ptr.(s + 1)))
    sn.Supernodes.col_to_sn

let test_supernodes_max_width () =
  let a = Generators.random_spd_dense ~seed:6 30 in
  let fill = Fill_pattern.analyze (Csc.lower a) in
  let sn =
    Supernodes.detect_etree ~max_width:4 ~counts:fill.Fill_pattern.counts
      ~parent:fill.Fill_pattern.parent ()
  in
  Array.iter
    (fun w -> Alcotest.(check bool) "width capped" true (w <= 4))
    (Supernodes.widths sn)

let test_supernodes_dense_is_one_block () =
  let a = Generators.random_spd_dense ~seed:6 20 in
  let fill = Fill_pattern.analyze (Csc.lower a) in
  let sn =
    Supernodes.detect_etree ~counts:fill.Fill_pattern.counts
      ~parent:fill.Fill_pattern.parent ()
  in
  Alcotest.(check int) "dense matrix = single supernode" 1 (Supernodes.nsuper sn)

(* ---- inspector framework ---- *)

let test_inspectors_run () =
  let l = Helpers.figure1_l in
  let b = { Vector.n = 10; indices = Helpers.figure1_beta; values = [| 1.0; 1.0 |] } in
  (match (Inspector.trisolve_vi_prune l b).Inspector.run () with
  | Inspector.Prune_set r ->
      Alcotest.(check int) "reach size" 6 (Array.length r)
  | _ -> Alcotest.fail "wrong inspection set");
  (match (Inspector.trisolve_vs_block l).Inspector.run () with
  | Inspector.Block_set sn ->
      Alcotest.(check bool) "some blocks" true (Supernodes.nsuper sn > 0)
  | _ -> Alcotest.fail "wrong inspection set");
  let fill = Fill_pattern.analyze (Csc.lower (Generators.grid2d ~stencil:`Five 4 4)) in
  (match (Inspector.cholesky_vi_prune fill).Inspector.run () with
  | Inspector.Prune_sets rows ->
      Alcotest.(check int) "one prune set per row" 16 (Array.length rows)
  | _ -> Alcotest.fail "wrong inspection set");
  match (Inspector.cholesky_vs_block fill).Inspector.run () with
  | Inspector.Block_set _ -> ()
  | _ -> Alcotest.fail "wrong inspection set"

let test_inspector_descriptions () =
  let l = Helpers.figure1_l in
  let b = { Vector.n = 10; indices = Helpers.figure1_beta; values = [| 1.0; 1.0 |] } in
  let d = Inspector.describe (Inspector.trisolve_vi_prune l b) in
  Alcotest.(check bool) "non-empty description" true (String.length d > 10)

let suite =
  [
    ("figure 1 reach set", `Quick, test_figure1_reach);
    ("reach of empty beta", `Quick, test_reach_empty_beta);
    ("reach of chain", `Quick, test_reach_full_when_chain);
    prop_reach_matches_naive;
    prop_reach_covers_solution_pattern;
    prop_etree_matches_naive;
    prop_etree_parent_above;
    ("etree of tridiagonal chain", `Quick, test_etree_known_chain);
    ("etree children/roots/depths", `Quick, test_etree_children_roots);
    prop_postorder_valid;
    prop_ereach_matches_naive;
    prop_fill_matches_children_union;
    prop_counts_consistent;
    prop_fill_contains_a;
    ("fill flops positive", `Quick, test_fill_flops_positive);
    prop_supernodes_exact_valid;
    prop_supernodes_etree_equals_exact_rule;
    ("supernode partition", `Quick, test_supernodes_partition);
    ("supernode max width", `Quick, test_supernodes_max_width);
    ("dense = one supernode", `Quick, test_supernodes_dense_is_one_block);
    ("inspectors run", `Quick, test_inspectors_run);
    ("inspector descriptions", `Quick, test_inspector_descriptions);
  ]
