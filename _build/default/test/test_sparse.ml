open Sympiler_sparse

(* Unit + property tests for the sparse substrate: Utils, Triplet, Csc,
   Dense, Vector, Perm. *)

let test_cumsum () =
  let a = [| 3; 1; 0; 2; 0 |] in
  let total = Utils.cumsum a in
  Alcotest.(check int) "total" 6 total;
  Alcotest.(check (array int)) "offsets" [| 0; 3; 4; 4; 6 |] (Array.sub a 0 5)

let test_rng_deterministic () =
  let r1 = Utils.Rng.create 42 and r2 = Utils.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Utils.Rng.int r1 1000) (Utils.Rng.int r2 1000)
  done

let test_rng_range () =
  let r = Utils.Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Utils.Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0);
    let i = Utils.Rng.int r 17 in
    Alcotest.(check bool) "in [0,17)" true (i >= 0 && i < 17)
  done

let test_shuffle_is_permutation () =
  let r = Utils.Rng.create 3 in
  let a = Array.init 50 (fun i -> i) in
  Utils.Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_triplet_duplicates_summed () =
  let tr = Triplet.create ~nrows:3 ~ncols:3 () in
  Triplet.add tr 1 1 2.0;
  Triplet.add tr 1 1 3.0;
  Triplet.add tr 0 1 1.0;
  Triplet.add tr 2 0 4.0;
  let m = Csc.of_triplet tr in
  Alcotest.(check int) "nnz after dedup" 3 (Csc.nnz m);
  Alcotest.(check (float 1e-12)) "summed" 5.0 (Csc.get m 1 1);
  Alcotest.(check (float 1e-12)) "other" 4.0 (Csc.get m 2 0)

let test_triplet_bounds () =
  let tr = Triplet.create ~nrows:2 ~ncols:2 () in
  Alcotest.check_raises "row out of range"
    (Invalid_argument "Triplet.add: entry (2,0) out of 2x2") (fun () ->
      Triplet.add tr 2 0 1.0)

let test_csc_of_to_dense () =
  let d = [| [| 1.0; 0.0 |]; [| 0.0; 2.0 |]; [| 3.0; 0.0 |] |] in
  let m = Csc.of_dense d in
  Alcotest.(check int) "nnz" 3 (Csc.nnz m);
  Alcotest.(check bool) "roundtrip" true (Csc.to_dense m = d)

let test_csc_get_mem () =
  let m = Csc.of_dense [| [| 1.0; 0.0 |]; [| 0.0; 2.0 |] |] in
  Alcotest.(check (float 0.0)) "get hit" 2.0 (Csc.get m 1 1);
  Alcotest.(check (float 0.0)) "get miss" 0.0 (Csc.get m 1 0);
  Alcotest.(check bool) "mem" true (Csc.mem m 0 0);
  Alcotest.(check bool) "not mem" false (Csc.mem m 0 1)

let test_csc_identity_spmv () =
  let i5 = Csc.identity 5 in
  let x = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check (array (float 0.0))) "I x = x" x (Csc.spmv i5 x)

let test_csc_validate_rejects () =
  Alcotest.check_raises "unsorted rows"
    (Invalid_argument "Csc.validate: unsorted or duplicate rows in a column")
    (fun () ->
      ignore
        (Csc.create ~nrows:2 ~ncols:1 ~colptr:[| 0; 2 |] ~rowind:[| 1; 0 |]
           ~values:[| 1.0; 2.0 |]))

let test_lower_upper_split () =
  let a = Generators.grid2d ~stencil:`Five 4 4 in
  let l = Csc.lower a and u = Csc.upper a in
  Alcotest.(check int) "nnz split" (Csc.nnz a + a.Csc.ncols) (Csc.nnz l + Csc.nnz u);
  Alcotest.(check bool) "lower is lower" true (Csc.is_lower_triangular l);
  Alcotest.(check bool) "symmetrize recovers A" true
    (Csc.equal (Csc.symmetrize_from_lower l) a)

let prop_transpose_involution =
  Helpers.qtest "transpose (transpose A) = A" Helpers.arb_lower (fun l ->
      Csc.equal (Csc.transpose (Csc.transpose l)) l)

let prop_spmv_matches_dense =
  Helpers.qtest "spmv matches dense mat-vec" Helpers.arb_lower (fun l ->
      let n = l.Csc.ncols in
      let x = Array.init n (fun i -> cos (float_of_int i)) in
      let y = Csc.spmv l x in
      let d = Csc.to_dense l in
      let yd =
        Array.init n (fun i ->
            let s = ref 0.0 in
            for j = 0 to n - 1 do
              s := !s +. (d.(i).(j) *. x.(j))
            done;
            !s)
      in
      Helpers.close y yd)

let prop_transpose_map_consistent =
  Helpers.qtest "transpose_map gathers the transpose" Helpers.arb_lower
    (fun l ->
      let colptr, rowind, map = Csc.transpose_map l in
      let t = Csc.transpose l in
      colptr = t.Csc.colptr && rowind = t.Csc.rowind
      && Array.for_all2
           (fun v p -> v = l.Csc.values.(p))
           t.Csc.values map)

let prop_add_commutes =
  Helpers.qtest ~count:50 "A + A = 2A" Helpers.arb_lower (fun l ->
      Csc.equal (Csc.add l l) (Csc.scale l 2.0))

let test_dense_cholesky_known () =
  (* [[4,2],[2,5]] = [[2,0],[1,2]] [[2,1],[0,2]] *)
  let a = Dense.of_rows [| [| 4.0; 2.0 |]; [| 2.0; 5.0 |] |] in
  let l = Dense.cholesky a in
  Alcotest.(check (float 1e-12)) "l00" 2.0 (Dense.get l 0 0);
  Alcotest.(check (float 1e-12)) "l10" 1.0 (Dense.get l 1 0);
  Alcotest.(check (float 1e-12)) "l11" 2.0 (Dense.get l 1 1);
  Alcotest.(check (float 1e-12)) "u zeroed" 0.0 (Dense.get l 0 1)

let test_dense_cholesky_rejects_indefinite () =
  let a = Dense.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  Alcotest.check_raises "not PD" (Failure "Dense.cholesky: not positive definite")
    (fun () -> ignore (Dense.cholesky a))

let test_dense_solves () =
  let a = Generators.random_spd_dense ~seed:9 12 in
  let ad = Dense.of_csc a in
  let l = Dense.cholesky ad in
  let b = Array.init 12 (fun i -> float_of_int (i + 1)) in
  let y = Dense.lower_solve l b in
  let x = Dense.upper_solve_transposed l y in
  let r = Vector.sub (Csc.spmv a x) b in
  Alcotest.(check bool) "residual small" true (Vector.norm_inf r < 1e-9)

let test_vector_ops () =
  let a = [| 1.0; 2.0; 3.0 |] and b = [| 4.0; 5.0; 6.0 |] in
  Alcotest.(check (float 1e-12)) "dot" 32.0 (Vector.dot a b);
  Alcotest.(check (float 1e-12)) "norm_inf" 3.0 (Vector.norm_inf a);
  let y = Array.copy b in
  Vector.axpy 2.0 a y;
  Alcotest.(check (array (float 1e-12))) "axpy" [| 6.0; 9.0; 12.0 |] y

let test_sparse_vector_roundtrip () =
  let x = [| 0.0; 1.5; 0.0; 0.0; -2.0; 0.0 |] in
  let s = Vector.sparse_of_dense x in
  Alcotest.(check int) "nnz" 2 (Vector.sparse_nnz s);
  Alcotest.(check (array int)) "indices" [| 1; 4 |] s.Vector.indices;
  Alcotest.(check (array (float 0.0))) "roundtrip" x (Vector.sparse_to_dense s)

let prop_perm_inverse =
  Helpers.qtest "inverse (inverse p) = p"
    (QCheck.make
       QCheck.Gen.(
         let* n = int_range 1 50 in
         let* seed = int_range 0 1000 in
         return (Perm.random (Utils.Rng.create seed) n)))
    (fun p ->
      Perm.is_valid p && Perm.inverse (Perm.inverse p) = p
      &&
      let x = Array.init (Array.length p) float_of_int in
      Perm.apply_inv_vec p (Perm.apply_vec p x) = x)

let test_symmetric_permute_preserves_spd_values () =
  let a = Generators.grid2d ~stencil:`Five 4 4 in
  let rng = Utils.Rng.create 5 in
  let p = Perm.random rng a.Csc.ncols in
  let b = Perm.symmetric_permute p a in
  Alcotest.(check int) "same nnz" (Csc.nnz a) (Csc.nnz b);
  (* B(knew, jnew) = A(p knew, p jnew) *)
  let ok = ref true in
  for k = 0 to a.Csc.ncols - 1 do
    for j = 0 to a.Csc.ncols - 1 do
      if Csc.get b k j <> Csc.get a p.(k) p.(j) then ok := false
    done
  done;
  Alcotest.(check bool) "entries permuted" true !ok

let test_perm_compose () =
  let p = [| 2; 0; 1 |] and q = [| 1; 2; 0 |] in
  (* (compose p q).(k) = q.(p.(k)) *)
  Alcotest.(check (array int)) "compose" [| 0; 1; 2 |] (Perm.compose p q)

let suite =
  [
    ("cumsum", `Quick, test_cumsum);
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng ranges", `Quick, test_rng_range);
    ("shuffle is permutation", `Quick, test_shuffle_is_permutation);
    ("triplet duplicates summed", `Quick, test_triplet_duplicates_summed);
    ("triplet bounds checked", `Quick, test_triplet_bounds);
    ("csc of/to dense", `Quick, test_csc_of_to_dense);
    ("csc get/mem", `Quick, test_csc_get_mem);
    ("csc identity spmv", `Quick, test_csc_identity_spmv);
    ("csc validate rejects unsorted", `Quick, test_csc_validate_rejects);
    ("lower/upper split", `Quick, test_lower_upper_split);
    prop_transpose_involution;
    prop_spmv_matches_dense;
    prop_transpose_map_consistent;
    prop_add_commutes;
    ("dense cholesky 2x2", `Quick, test_dense_cholesky_known);
    ("dense cholesky rejects indefinite", `Quick, test_dense_cholesky_rejects_indefinite);
    ("dense solve roundtrip", `Quick, test_dense_solves);
    ("vector ops", `Quick, test_vector_ops);
    ("sparse vector roundtrip", `Quick, test_sparse_vector_roundtrip);
    prop_perm_inverse;
    ("symmetric permute", `Quick, test_symmetric_permute_preserves_spd_values);
    ("perm compose", `Quick, test_perm_compose);
  ]

let test_multiply_dims_checked () =
  let a = Csc.zero ~nrows:2 ~ncols:3 in
  let b = Csc.zero ~nrows:2 ~ncols:2 in
  Alcotest.check_raises "dimension mismatch" (Invalid_argument "Csc.multiply: dims")
    (fun () -> ignore (Csc.multiply a b))

let test_strict_lower () =
  let a = Generators.grid2d ~stencil:`Five 3 3 in
  let sl = Csc.strict_lower a in
  Alcotest.(check bool) "no diagonal" true
    (let ok = ref true in
     Csc.iter sl (fun i j _ -> if i <= j then ok := false);
     !ok);
  Alcotest.(check int) "lower = strict lower + diagonal"
    (Csc.nnz (Csc.lower a))
    (Csc.nnz sl + a.Csc.ncols)

let test_filter_predicate () =
  let a = Generators.random_lower ~seed:4 ~n:20 ~density:0.3 () in
  let big = Csc.filter a (fun _ _ v -> Float.abs v > 0.5) in
  let ok = ref true in
  Csc.iter big (fun _ _ v -> if Float.abs v <= 0.5 then ok := false);
  Alcotest.(check bool) "filtered values" true !ok

let prop_multiply_associates_with_identity =
  Helpers.qtest ~count:40 "(A I) I = A" Helpers.arb_lower (fun a ->
      let i = Csc.identity a.Csc.ncols in
      Csc.equal (Csc.multiply (Csc.multiply a i) i) a)

let suite =
  suite
  @ [
      ("multiply dims checked", `Quick, test_multiply_dims_checked);
      ("strict lower", `Quick, test_strict_lower);
      ("filter predicate", `Quick, test_filter_predicate);
      prop_multiply_associates_with_identity;
    ]
