open Sympiler_sparse
open Sympiler_kernels

(* §3.3 extension methods: LDL^T, ILU(0), level-set parallel trisolve. *)

(* ---- LDL^T ---- *)

let prop_ldlt_reconstructs =
  Helpers.qtest ~count:40 "LDLt: L D L^T = A" Helpers.arb_spd (fun a ->
      let al = Csc.lower a in
      let f = Ldlt.factorize al in
      let n = a.Csc.ncols in
      let ld = Dense.of_csc f.Ldlt.l in
      let dd = Dense.create n n in
      Array.iteri (fun i v -> Dense.set dd i i v) f.Ldlt.d;
      let prod = Dense.matmul (Dense.matmul ld dd) (Dense.transpose ld) in
      Dense.max_abs_diff prod (Dense.of_csc a) < 1e-7)

let prop_ldlt_solve =
  Helpers.qtest ~count:40 "LDLt solve residual" Helpers.arb_spd (fun a ->
      let al = Csc.lower a in
      let f = Ldlt.factorize al in
      let n = a.Csc.ncols in
      let b = Array.init n (fun i -> cos (float_of_int i)) in
      let x = Ldlt.solve f b in
      let r = Vector.sub (Csc.spmv a x) b in
      Vector.norm_inf r /. Float.max 1.0 (Vector.norm_inf b) < 1e-7)

let test_ldlt_indefinite () =
  (* An indefinite but strongly regular matrix: Cholesky fails, LDLt works. *)
  let a = Csc.of_dense [| [| -4.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let al = Csc.lower a in
  Alcotest.(check bool) "cholesky rejects" true
    (try
       ignore (Cholesky_ref.factor_simple al);
       false
     with Cholesky_ref.Not_positive_definite _ -> true);
  let f = Ldlt.factorize al in
  Alcotest.(check bool) "negative pivot kept" true (f.Ldlt.d.(0) < 0.0);
  let b = [| 1.0; 2.0 |] in
  let x = Ldlt.solve f b in
  let r = Vector.sub (Csc.spmv a x) b in
  Alcotest.(check bool) "indefinite solve" true (Vector.norm_inf r < 1e-10)

let test_ldlt_agrees_with_cholesky () =
  (* On SPD input: L_ldl * sqrt(D) = L_chol. *)
  let a = Generators.grid2d ~stencil:`Five 5 5 in
  let al = Csc.lower a in
  let f = Ldlt.factorize al in
  let lc = Cholesky_ref.factor_simple al in
  let scaled =
    Csc.create ~nrows:25 ~ncols:25 ~colptr:f.Ldlt.l.Csc.colptr
      ~rowind:f.Ldlt.l.Csc.rowind
      ~values:
        (Array.mapi
           (fun p v ->
             (* column of entry p *)
             let rec col j = if f.Ldlt.l.Csc.colptr.(j + 1) > p then j else col (j + 1) in
             let j = col 0 in
             v *. sqrt f.Ldlt.d.(j))
           f.Ldlt.l.Csc.values)
  in
  Alcotest.(check bool) "L_ldl sqrt(D) = L_chol" true (Csc.equal ~eps:1e-8 scaled lc)

(* ---- ILU(0) ---- *)

let test_ilu0_exact_when_no_fill () =
  (* Tridiagonal: LU has no fill, so ILU(0) must solve exactly. *)
  let a = Generators.banded ~seed:5 ~n:60 ~band:1 () in
  let f = Ilu0.factorize a in
  let b = Array.init 60 (fun i -> sin (float_of_int i)) in
  let x = Ilu0.solve f b in
  let r = Vector.sub (Csc.spmv a x) b in
  Alcotest.(check bool) "exact solve" true (Vector.norm_inf r < 1e-9)

let prop_ilu0_preconditioner_contracts =
  Helpers.qtest ~count:30 "ILU0: one M^-1 application shrinks the residual"
    Helpers.arb_spd (fun a ->
      let f = Ilu0.factorize a in
      let n = a.Csc.ncols in
      let b = Array.init n (fun i -> float_of_int ((i mod 3) - 1)) in
      let x = Ilu0.solve f b in
      let r = Vector.sub b (Csc.spmv a x) in
      Vector.norm2 r <= Vector.norm2 b +. 1e-9)

let test_ilu0_matches_lu_on_pattern () =
  (* The L and U values of ILU(0) coincide with full LU wherever A has an
     entry, when LU produces no fill outside... use a no-fill matrix. *)
  let a = Generators.banded ~seed:6 ~n:30 ~band:1 () in
  let f = Ilu0.factorize a in
  let full = Lu.Ref.factor a in
  let ok = ref true in
  for i = 0 to 29 do
    for p = f.Ilu0.c.Ilu0.rowptr.(i) to f.Ilu0.c.Ilu0.rowptr.(i + 1) - 1 do
      let j = f.Ilu0.c.Ilu0.colind.(p) in
      let v = f.Ilu0.values.(p) in
      let expect =
        if j < i then Csc.get full.Lu.l i j else Csc.get full.Lu.u i j
      in
      if not (Utils.feq ~eps:1e-9 v expect) then ok := false
    done
  done;
  Alcotest.(check bool) "values match full LU" true !ok

(* ---- level-set parallel trisolve ---- *)

let prop_levels_valid =
  Helpers.qtest "level schedule respects all dependences" Helpers.arb_lower
    (fun l ->
      let c = Trisolve_parallel.compile l in
      Trisolve_parallel.valid_schedule c)

let prop_parallel_matches_sequential =
  Helpers.qtest ~count:30 "parallel trisolve = sequential" Helpers.arb_lower
    (fun l ->
      let n = l.Csc.ncols in
      let b = Array.init n (fun i -> sin (float_of_int i)) in
      let c = Trisolve_parallel.compile l in
      let seq = Trisolve_parallel.solve c b in
      let par = Trisolve_parallel.solve ~ndomains:3 c b in
      let oracle = Helpers.oracle_lower_solve l b in
      Helpers.close seq oracle && Helpers.close par oracle)

let test_levels_diagonal_matrix () =
  (* Diagonal matrix: one level containing everything. *)
  let c = Trisolve_parallel.compile (Csc.identity 40) in
  Alcotest.(check int) "one level" 1 c.Trisolve_parallel.nlevels

let test_levels_chain () =
  (* Bidiagonal chain: n levels of one column each. *)
  let n = 12 in
  let tr = Triplet.create ~nrows:n ~ncols:n () in
  for j = 0 to n - 1 do
    Triplet.add tr j j 2.0;
    if j + 1 < n then Triplet.add tr (j + 1) j (-1.0)
  done;
  let c = Trisolve_parallel.compile (Csc.of_triplet tr) in
  Alcotest.(check int) "n levels" n c.Trisolve_parallel.nlevels

let test_parallel_wide_levels () =
  (* Block-diagonal-ish matrix with wide levels to actually hit the
     parallel path (width >= 64). *)
  let n = 400 in
  let tr = Triplet.create ~nrows:n ~ncols:n () in
  for j = 0 to n - 1 do
    Triplet.add tr j j 2.0
  done;
  (* edges only from first half to second half: 2 wide levels *)
  for j = 0 to (n / 2) - 1 do
    Triplet.add tr (j + (n / 2)) j (-0.5)
  done;
  let l = Csc.of_triplet tr in
  let c = Trisolve_parallel.compile l in
  Alcotest.(check int) "two levels" 2 c.Trisolve_parallel.nlevels;
  let b = Array.init n (fun i -> float_of_int (i mod 5)) in
  let par = Trisolve_parallel.solve ~ndomains:4 c b in
  Helpers.check_close "parallel on wide levels" (Helpers.oracle_lower_solve l b) par

let suite =
  [
    prop_ldlt_reconstructs;
    prop_ldlt_solve;
    ("ldlt indefinite", `Quick, test_ldlt_indefinite);
    ("ldlt vs cholesky", `Quick, test_ldlt_agrees_with_cholesky);
    ("ilu0 exact no-fill", `Quick, test_ilu0_exact_when_no_fill);
    prop_ilu0_preconditioner_contracts;
    ("ilu0 matches LU on pattern", `Quick, test_ilu0_matches_lu_on_pattern);
    prop_levels_valid;
    prop_parallel_matches_sequential;
    ("levels: diagonal", `Quick, test_levels_diagonal_matrix);
    ("levels: chain", `Quick, test_levels_chain);
    ("parallel wide levels", `Quick, test_parallel_wide_levels);
  ]

(* ---- left-looking Cholesky (Figure 4 executor) ---- *)

let prop_leftlooking_matches_oracle =
  Helpers.qtest ~count:40 "left-looking Cholesky = dense oracle"
    Helpers.arb_spd (fun a ->
      let al = Csc.lower a in
      let l = Cholesky_leftlooking.factorize al in
      Dense.max_abs_diff (Helpers.oracle_cholesky a) (Dense.of_csc l) < 1e-7)

let test_leftlooking_equals_uplooking () =
  let a = Generators.grid2d ~stencil:`Nine 6 6 in
  let al = Csc.lower a in
  let l1 = Cholesky_leftlooking.factorize al in
  let l2 = Cholesky_ref.factor_simple al in
  Alcotest.(check bool) "identical factors" true (Csc.equal ~eps:1e-10 l1 l2)

let test_leftlooking_not_pd () =
  let a = Csc.of_dense [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Cholesky_leftlooking.factorize (Csc.lower a));
       false
     with Cholesky_leftlooking.Not_positive_definite _ -> true)

(* ---- rank-1 update / downdate ---- *)

let rank_update_roundtrip a =
  let al = Csc.lower a in
  let fill = Sympiler_symbolic.Fill_pattern.analyze al in
  let parent = fill.Sympiler_symbolic.Fill_pattern.parent in
  let l = Cholesky_ref.factor_simple al in
  (* w with the pattern of an existing column of L: always legal *)
  let j = a.Csc.ncols / 3 in
  let w = Rank_update.vector_like l ~j ~scale:0.5 in
  (* expected: refactor A + w w^T from scratch *)
  let wd = Vector.sparse_to_dense w in
  let awwt =
    let d = Csc.to_dense a in
    Array.iteri
      (fun i row -> Array.iteri (fun k _ -> row.(k) <- row.(k) +. (wd.(i) *. wd.(k))) row)
      d;
    Csc.of_dense d
  in
  let expected = Helpers.oracle_cholesky awwt in
  Rank_update.update ~parent l w;
  let ok_up = Dense.max_abs_diff expected (Dense.of_csc l) < 1e-7 in
  (* downdate back to the original *)
  Rank_update.update ~sigma:(-1.0) ~parent l w;
  let expected0 = Helpers.oracle_cholesky a in
  let ok_down = Dense.max_abs_diff expected0 (Dense.of_csc l) < 1e-6 in
  ok_up && ok_down

let prop_rank_update_roundtrip =
  Helpers.qtest ~count:30 "rank-1 update then downdate restores the factor"
    Helpers.arb_spd rank_update_roundtrip

let test_rank_update_pattern_violation () =
  let a = Generators.grid2d ~stencil:`Five 4 4 in
  let al = Csc.lower a in
  let fill = Sympiler_symbolic.Fill_pattern.analyze al in
  let l = Cholesky_ref.factor_simple al in
  (* w touching rows 0 and 15: row 15 is not in column 0's pattern *)
  let w = { Vector.n = 16; indices = [| 0; 15 |]; values = [| 1.0; 1.0 |] } in
  Alcotest.(check bool) "pattern violation detected" true
    (try
       Rank_update.update ~parent:fill.Sympiler_symbolic.Fill_pattern.parent l w;
       false
     with Rank_update.Pattern_violation _ -> true)

let test_rank_update_empty_w () =
  let a = Generators.grid2d ~stencil:`Five 3 3 in
  let al = Csc.lower a in
  let fill = Sympiler_symbolic.Fill_pattern.analyze al in
  let l = Cholesky_ref.factor_simple al in
  let before = Array.copy l.Csc.values in
  Rank_update.update ~parent:fill.Sympiler_symbolic.Fill_pattern.parent l
    { Vector.n = 9; indices = [||]; values = [||] };
  Alcotest.(check bool) "no-op" true (before = l.Csc.values)

let test_rank_update_path_is_etree_path () =
  let a = Generators.grid2d ~stencil:`Five 4 4 in
  let al = Csc.lower a in
  let fill = Sympiler_symbolic.Fill_pattern.analyze al in
  let parent = fill.Sympiler_symbolic.Fill_pattern.parent in
  let w = { Vector.n = 16; indices = [| 5 |]; values = [| 1.0 |] } in
  let c = Rank_update.compile ~parent w in
  Alcotest.(check int) "path starts at jmin" 5 c.Rank_update.path.(0);
  Array.iteri
    (fun k j ->
      if k > 0 then
        Alcotest.(check int) "follows parents" j
          parent.(c.Rank_update.path.(k - 1)))
    c.Rank_update.path

let suite =
  suite
  @ [
      prop_leftlooking_matches_oracle;
      ("left-looking = up-looking", `Quick, test_leftlooking_equals_uplooking);
      ("left-looking not PD", `Quick, test_leftlooking_not_pd);
      prop_rank_update_roundtrip;
      ("rank update pattern violation", `Quick, test_rank_update_pattern_violation);
      ("rank update empty w", `Quick, test_rank_update_empty_w);
      ("rank update path", `Quick, test_rank_update_path_is_etree_path);
    ]

(* ---- parallel supernodal Cholesky (ParSy-style) ---- *)

let prop_parallel_cholesky_matches =
  Helpers.qtest ~count:25 "parallel supernodal Cholesky = oracle"
    Helpers.arb_spd (fun a ->
      let al = Csc.lower a in
      let c = Cholesky_parallel.compile al in
      Cholesky_parallel.valid_schedule c
      &&
      let l1 = Cholesky_parallel.factor ~ndomains:1 c al in
      let l3 = Cholesky_parallel.factor ~ndomains:3 c al in
      let oracle = Helpers.oracle_cholesky a in
      Dense.max_abs_diff oracle (Dense.of_csc l1) < 1e-7
      && Dense.max_abs_diff oracle (Dense.of_csc l3) < 1e-7)

let test_parallel_cholesky_wide_dag () =
  (* Block-diagonal: every supernode at level 0 -> maximal parallelism. *)
  let nblocks = 40 and block = 6 in
  let n = nblocks * block in
  let tr = Triplet.create ~nrows:n ~ncols:n () in
  let rng = Utils.Rng.create 31 in
  for b = 0 to nblocks - 1 do
    let base = b * block in
    for i = 0 to block - 1 do
      for j = 0 to i - 1 do
        let v = -.Utils.Rng.float_range rng 0.1 0.5 in
        Triplet.add tr (base + i) (base + j) v;
        Triplet.add tr (base + j) (base + i) v
      done;
      Triplet.add tr (base + i) (base + i) 6.0
    done
  done;
  let a = Csc.of_triplet tr in
  let al = Csc.lower a in
  let c = Cholesky_parallel.compile al in
  Alcotest.(check int) "single level" 1 c.Cholesky_parallel.nlevels;
  let l = Cholesky_parallel.factor ~ndomains:4 c al in
  Alcotest.(check bool) "parallel block-diagonal" true
    (Dense.max_abs_diff (Helpers.oracle_cholesky a) (Dense.of_csc l) < 1e-8)

(* ---- sparse GEMM as a sparse verification path ---- *)

let prop_llt_equals_a_sparsely =
  Helpers.qtest ~count:30 "sparse GEMM verifies L L^T = A without densifying"
    Helpers.arb_spd (fun a ->
      let al = Csc.lower a in
      let l = Cholesky_ref.factor_simple al in
      let prod = Csc.multiply l (Csc.transpose l) in
      (* compare on A's pattern and check no large spurious entries *)
      let ok = ref true in
      Csc.iter a (fun i j v ->
          if Float.abs (Csc.get prod i j -. v) > 1e-7 then ok := false);
      Csc.iter prod (fun i j v ->
          if (not (Csc.mem a i j)) && Float.abs v > 1e-7 then ok := false);
      !ok)

let test_sparse_multiply_identity () =
  let a = Generators.random_lower ~seed:8 ~n:30 ~density:0.2 () in
  Alcotest.(check bool) "A * I = A" true
    (Csc.equal (Csc.multiply a (Csc.identity 30)) a);
  Alcotest.(check bool) "I * A = A" true
    (Csc.equal (Csc.multiply (Csc.identity 30) a) a)

let test_sparse_multiply_matches_dense () =
  let a = Generators.random_lower ~seed:9 ~n:25 ~density:0.3 () in
  let b = Generators.random_lower ~seed:10 ~n:25 ~density:0.3 () in
  let sp = Csc.multiply a b in
  let dn = Dense.matmul (Dense.of_csc a) (Dense.of_csc b) in
  Alcotest.(check bool) "matches dense product" true
    (Dense.max_abs_diff (Dense.of_csc sp) dn < 1e-12)

let suite =
  suite
  @ [
      prop_parallel_cholesky_matches;
      ("parallel cholesky wide DAG", `Quick, test_parallel_cholesky_wide_dag);
      prop_llt_equals_a_sparsely;
      ("sparse multiply identity", `Quick, test_sparse_multiply_identity);
      ("sparse multiply vs dense", `Quick, test_sparse_multiply_matches_dense);
    ]

(* ---- sparse QR (George-Heath Givens) ---- *)

let qr_checks a =
  let n = a.Csc.ncols in
  let c = Qr.compile a in
  let b = Array.init a.Csc.nrows (fun i -> sin (float_of_int i +. 0.5)) in
  let f = Qr.factor_with_rhs c a b in
  let r = Qr.r_matrix f in
  (* R^T R = A^T A *)
  let rtr = Csc.multiply (Csc.transpose r) r in
  let ata = Csc.multiply (Csc.transpose a) a in
  let ok_rtr =
    Dense.max_abs_diff (Dense.of_csc rtr) (Dense.of_csc ata)
    < 1e-7 *. (1.0 +. Vector.norm_inf ata.Csc.values)
  in
  (* normal equations: A^T (A x - b) = 0 *)
  let x = Qr.solve_r f in
  let res = Vector.sub (Csc.spmv a x) b in
  let normal = Csc.spmv (Csc.transpose a) res in
  let ok_normal = Vector.norm_inf normal < 1e-7 *. (1.0 +. Vector.norm_inf b) in
  (* residual norm reported by the factorization matches the actual one *)
  let ok_resid = Float.abs (Vector.norm2 res -. f.Qr.residual_norm) < 1e-7 in
  ignore n;
  ok_rtr && ok_normal && ok_resid

let prop_qr_square =
  Helpers.qtest ~count:30 "QR on square SPD-patterned matrices"
    Helpers.arb_spd qr_checks

let test_qr_rectangular_least_squares () =
  (* Overdetermined m > n system. *)
  let rng = Utils.Rng.create 17 in
  let m = 60 and n = 25 in
  let tr = Triplet.create ~nrows:m ~ncols:n () in
  for i = 0 to m - 1 do
    (* ensure full column rank: a strong diagonal band *)
    if i < n then Triplet.add tr i i (2.0 +. Utils.Rng.float rng);
    for _ = 1 to 3 do
      let j = Utils.Rng.int rng n in
      Triplet.add tr i j (Utils.Rng.float_range rng (-1.0) 1.0)
    done
  done;
  let a = Csc.of_triplet tr in
  Alcotest.(check bool) "least squares checks" true (qr_checks a)

let test_qr_solves_square_system () =
  let a = Generators.random_banded ~seed:23 ~n:80 ~band:8 ~density:0.3 () in
  let n = a.Csc.ncols in
  let xs = Array.init n (fun i -> float_of_int ((i mod 7) - 3)) in
  let b = Csc.spmv a xs in
  let c = Qr.compile a in
  let x = Qr.lstsq c a b in
  Helpers.check_close ~eps:1e-7 "square QR solve recovers x" xs x

let test_qr_rejects_underdetermined () =
  let a = Csc.zero ~nrows:2 ~ncols:3 in
  Alcotest.(check bool) "m < n rejected" true
    (try
       ignore (Qr.compile a);
       false
     with Invalid_argument _ -> true)

let test_qr_rank_deficient () =
  (* A column of zeros: structural rank deficiency. *)
  let tr = Triplet.create ~nrows:3 ~ncols:3 () in
  Triplet.add tr 0 0 1.0;
  Triplet.add tr 1 2 1.0;
  Triplet.add tr 2 2 1.0;
  let a = Csc.of_triplet tr in
  Alcotest.(check bool) "rank deficiency detected" true
    (try
       ignore (Qr.factor_with_rhs (Qr.compile a) a [| 1.0; 1.0; 1.0 |]);
       false
     with Qr.Rank_deficient _ -> true)

let test_qr_value_change () =
  let a = Generators.random_banded ~seed:29 ~n:50 ~band:6 ~density:0.3 () in
  let c = Qr.compile a in
  let a' = Csc.map_values a (fun v -> 2.0 *. v) in
  let n = a.Csc.ncols in
  let xs = Array.init n (fun i -> cos (float_of_int i)) in
  let b = Csc.spmv a' xs in
  let x = Qr.lstsq c a' b in
  Helpers.check_close ~eps:1e-7 "same pattern, new values" xs x

let suite =
  suite
  @ [
      prop_qr_square;
      ("qr rectangular least squares", `Quick, test_qr_rectangular_least_squares);
      ("qr square solve", `Quick, test_qr_solves_square_system);
      ("qr rejects m<n", `Quick, test_qr_rejects_underdetermined);
      ("qr rank deficient", `Quick, test_qr_rank_deficient);
      ("qr value change", `Quick, test_qr_value_change);
    ]
