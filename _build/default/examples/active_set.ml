(* Rank-update scenario (§3.3: "rank update and rank increase methods"):
   an active-set-style loop, the pattern behind the authors' follow-on
   NASOQ solver. A KKT-like SPD system keeps its factorization across
   iterations: adding/removing a constraint perturbs A by ± w w^T, and the
   factor is repaired with a sparse rank-1 update/downdate along an
   elimination-tree path instead of refactorizing — the symbolic path is
   one of Sympiler's inspection strategies (single-node up-traversal).

   Run with: dune exec examples/active_set.exe *)

open Sympiler_sparse
open Sympiler_symbolic
open Sympiler_kernels

let () =
  print_endline "== Active-set loop with rank-1 factor updates ==";
  let a = Generators.clique_chain ~seed:5 ~n:1200 ~clique:24 ~overlap:6 () in
  let al = Csc.lower a in
  let fill = Fill_pattern.analyze al in
  let parent = fill.Fill_pattern.parent in

  let chol = Sympiler.Cholesky.compile al in
  let l = Sympiler.Cholesky.factor chol al in
  Printf.printf "initial factorization: n=%d nnz(L)=%d\n" a.Csc.ncols
    chol.Sympiler.Cholesky.nnz_l;

  (* Simulated active-set iterations: each activates a "constraint" w_k
     (built on an existing column pattern so the factor's structure is
     preserved), later deactivates it. *)
  let steps = 200 in
  let rng = Utils.Rng.create 99 in
  let picks =
    Array.init steps (fun _ -> Utils.Rng.int rng (a.Csc.ncols - 1))
  in
  let t0 = Unix.gettimeofday () in
  Array.iter
    (fun j ->
      let w = Rank_update.vector_like l ~j ~scale:0.25 in
      Rank_update.update ~parent l w;
      (* ... solve with the updated factor, decide the next move ... *)
      Rank_update.update ~sigma:(-1.0) ~parent l w)
    picks;
  let t_updates = Unix.gettimeofday () -. t0 in

  let t0 = Unix.gettimeofday () in
  for _ = 1 to 10 do
    ignore (Sympiler.Cholesky.factor chol al)
  done;
  let t_refactor = (Unix.gettimeofday () -. t0) /. 10.0 in

  Printf.printf "%d update/downdate pairs: %.1f ms (%.3f ms per rank-1 op)\n"
    steps (t_updates *. 1e3)
    (t_updates *. 1e3 /. float_of_int (2 * steps));
  Printf.printf "one full refactorization: %.2f ms\n" (t_refactor *. 1e3);
  Printf.printf "rank-1 op is %.0fx cheaper than refactorizing\n"
    (t_refactor /. (t_updates /. float_of_int (2 * steps)));

  (* Verify the factor survived 400 in-place modifications. *)
  let fresh = Sympiler.Cholesky.factor chol al in
  let drift = Utils.max_rel_diff fresh.Csc.values l.Csc.values in
  Printf.printf "factor drift after %d ops: %.2e %s\n" (2 * steps) drift
    (if drift < 1e-6 then "(OK)" else "(UNEXPECTED)")
