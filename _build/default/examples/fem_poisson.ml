(* FEM / finite-difference scenario: implicit time stepping of the heat
   equation on a 2D grid (the electromagnetics / fluid-mechanics setting of
   §1.2: "the sparse structure originates from the physical discretization
   and therefore the sparsity pattern remains the same").

   Backward Euler: (M + dt*K) u_{t+1} = u_t + dt*q. The system matrix is
   assembled once, its pattern is fixed forever, and every time step is one
   numeric solve. We factor once with Sympiler and reuse the factor; a
   per-step refactorization (as a time-dependent coefficient would need)
   would reuse the symbolic analysis the same way.

   Run with: dune exec examples/fem_poisson.exe *)

open Sympiler_sparse
open Sympiler_kernels

let nx = 60
let ny = 60
let dt = 0.1
let steps = 50

let () =
  print_endline "== Implicit heat equation on a 2D grid ==";
  let n = nx * ny in
  (* K: 5-point Laplacian; system matrix S = I + dt K. *)
  let k = Generators.grid2d ~stencil:`Five ~shift:0.0 nx ny in
  let s =
    Csc.add (Csc.identity n) (Csc.scale k dt)
  in
  Printf.printf "grid %dx%d, system matrix: n=%d nnz=%d\n" nx ny n (Csc.nnz s);

  (* Fill-reducing ordering (as a library default would apply). *)
  let p = Sympiler.Suite.min_degree_postorder s in
  let sp = Perm.symmetric_permute p s in
  let sp_lower = Csc.lower sp in

  let t0 = Unix.gettimeofday () in
  let chol = Sympiler.Cholesky.compile sp_lower in
  let l = Sympiler.Cholesky.factor chol sp_lower in
  Printf.printf "analysis+factorization: %.1f ms, nnz(L)=%d, variant %s\n"
    ((Unix.gettimeofday () -. t0) *. 1e3)
    chol.Sympiler.Cholesky.nnz_l
    (match chol.Sympiler.Cholesky.variant with
    | Sympiler.Cholesky.Supernodal -> "supernodal"
    | Sympiler.Cholesky.Simplicial -> "simplicial");

  (* Heat source in the grid center; initial condition zero. *)
  let q = Array.make n 0.0 in
  q.(((ny / 2) * nx) + (nx / 2)) <- 100.0;
  let u = Array.make n 0.0 in
  let t0 = Unix.gettimeofday () in
  for _step = 1 to steps do
    (* rhs = u + dt*q, permuted; solve S u' = rhs via the factor. *)
    let rhs = Array.init n (fun i -> u.(i) +. (dt *. q.(i))) in
    let rhs_p = Perm.apply_vec p rhs in
    let xp = Cholesky_ref.solve_with_factor l rhs_p in
    let x = Perm.apply_inv_vec p xp in
    Array.blit x 0 u 0 n
  done;
  let t_steps = Unix.gettimeofday () -. t0 in
  Printf.printf "%d time steps in %.1f ms (%.2f ms/solve)\n" steps
    (t_steps *. 1e3)
    (t_steps *. 1e3 /. float_of_int steps);

  (* Physical sanity: heat spreads from the center, total heat grows with
     the source, solution symmetric around the center column. *)
  let center = u.(((ny / 2) * nx) + (nx / 2)) in
  let corner = u.(0) in
  Printf.printf "u(center)=%.3f  u(corner)=%.6f\n" center corner;
  if center > corner && center > 0.0 then
    print_endline "OK: heat concentrated at the source and spreading"
  else print_endline "UNEXPECTED temperature field"
