(* Preconditioned conjugate gradient with an IC(0) preconditioner, the
   iterative-solver setting of §4.3: "in preconditioned iterative solvers a
   triangular system must be solved per iteration, and often the iterative
   solver must execute thousands of iterations until convergence" — so the
   preconditioner's triangular-solve pattern is fixed across the whole run
   and Sympiler's one-time symbolic cost amortizes.

   Run with: dune exec examples/precond_cg.exe *)

open Sympiler_sparse
open Sympiler_kernels

let max_iters = 2000
let tol = 1e-8

(* Plain CG. Returns (iterations, relative residual). *)
let cg a b =
  let n = Array.length b in
  let x = Array.make n 0.0 in
  let r = Array.copy b in
  let p = Array.copy r in
  let rs = ref (Vector.dot r r) in
  let b_norm = sqrt (Vector.dot b b) in
  let it = ref 0 in
  while sqrt !rs /. b_norm > tol && !it < max_iters do
    let ap = Csc.spmv a p in
    let alpha = !rs /. Vector.dot p ap in
    Vector.axpy alpha p x;
    Vector.axpy (-.alpha) ap r;
    let rs' = Vector.dot r r in
    let beta = rs' /. !rs in
    rs := rs';
    Array.iteri (fun i pi -> p.(i) <- r.(i) +. (beta *. pi)) p;
    incr it
  done;
  (!it, sqrt !rs /. b_norm)

(* PCG with M = L L^T from IC(0); the two triangular solves per iteration
   run on the numeric-only code (the factor's pattern is fixed). *)
let pcg a l b =
  let n = Array.length b in
  let apply_m_inv r =
    let z = Array.copy r in
    Trisolve_ref.naive_ip l z;
    Trisolve_ref.transpose_ip l z;
    z
  in
  let x = Array.make n 0.0 in
  let r = Array.copy b in
  let z = apply_m_inv r in
  let p = Array.copy z in
  let rz = ref (Vector.dot r z) in
  let b_norm = sqrt (Vector.dot b b) in
  let it = ref 0 in
  while sqrt (Vector.dot r r) /. b_norm > tol && !it < max_iters do
    let ap = Csc.spmv a p in
    let alpha = !rz /. Vector.dot p ap in
    Vector.axpy alpha p x;
    Vector.axpy (-.alpha) ap r;
    let z = apply_m_inv r in
    let rz' = Vector.dot r z in
    let beta = rz' /. !rz in
    rz := rz';
    Array.iteri (fun i pi -> p.(i) <- z.(i) +. (beta *. pi)) p;
    incr it
  done;
  (!it, sqrt (Vector.dot r r) /. b_norm)

let () =
  print_endline "== CG vs IC(0)-preconditioned CG ==";
  (* An ill-conditioned-ish Poisson problem (small diagonal shift). *)
  let a = Generators.grid2d ~stencil:`Five ~shift:1e-4 80 80 in
  let a_lower = Csc.lower a in
  let n = a.Csc.ncols in
  let b = Array.init n (fun i -> sin (0.01 *. float_of_int i)) in

  let t0 = Unix.gettimeofday () in
  let it_cg, res_cg = cg a b in
  let t_cg = Unix.gettimeofday () -. t0 in
  Printf.printf "CG:   %4d iterations, residual %.2e, %.1f ms\n" it_cg res_cg
    (t_cg *. 1e3);

  let t0 = Unix.gettimeofday () in
  let ic = Ic0.compile a_lower in
  let l = Ic0.factor ic a_lower in
  let t_setup = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let it_pcg, res_pcg = pcg a l b in
  let t_pcg = Unix.gettimeofday () -. t0 in
  Printf.printf "PCG:  %4d iterations, residual %.2e, %.1f ms (+%.1f ms IC0 setup)\n"
    it_pcg res_pcg (t_pcg *. 1e3) (t_setup *. 1e3);
  Printf.printf "iteration reduction: %.1fx\n"
    (float_of_int it_cg /. float_of_int (max 1 it_pcg));
  if it_pcg < it_cg then print_endline "OK: IC(0) preconditioning pays off"
  else print_endline "UNEXPECTED: preconditioner did not help"
