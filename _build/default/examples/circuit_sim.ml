(* Circuit / power-system simulation scenario (§1.2 of the paper): a
   Newton-Raphson solver for a nonlinear system whose Jacobian has a FIXED
   sparsity pattern (the circuit topology) but numeric values that change
   every iteration (operating-point-dependent conductances).

   We solve  f(x) = A x + c ⊙ x³ - b = 0  with Jacobian  J(x) = A + 3 c x²
   (a diode-like cubic nonlinearity on each node). J's pattern never
   changes, so Sympiler's symbolic analysis runs once; every NR iteration
   is a pure numeric refactorization + solve, exactly the paper's use case
   "a Jacobian matrix is factorized in each iteration and the NR solvers
   require tens or hundreds of iterations to converge".

   Run with: dune exec examples/circuit_sim.exe *)

open Sympiler_sparse

let n = 2000

let () =
  print_endline "== Newton-Raphson circuit simulation ==";
  (* Circuit topology: irregular banded SPD conductance matrix. *)
  let a = Generators.random_banded ~seed:77 ~n ~band:30 ~density:0.1 () in
  let a_lower = Csc.lower a in
  let rng = Utils.Rng.create 78 in
  let c = Array.init n (fun _ -> Utils.Rng.float_range rng 0.01 0.1) in
  let b = Array.init n (fun _ -> Utils.Rng.float_range rng (-1.0) 1.0) in

  let f x =
    let ax = Csc.spmv a x in
    Array.init n (fun i -> ax.(i) +. (c.(i) *. (x.(i) ** 3.0)) -. b.(i))
  in
  (* Jacobian values for the fixed pattern: A plus a diagonal term. *)
  let jacobian_lower x =
    let jl = { a_lower with Csc.values = Array.copy a_lower.Csc.values } in
    for j = 0 to n - 1 do
      let p = jl.Csc.colptr.(j) in
      (* diagonal is the first entry of each lower column *)
      jl.Csc.values.(p) <-
        a_lower.Csc.values.(p) +. (3.0 *. c.(j) *. x.(j) *. x.(j))
    done;
    jl
  in

  (* Symbolic analysis + planning: once, against the topology. *)
  let t0 = Unix.gettimeofday () in
  let chol = Sympiler.Cholesky.compile a_lower in
  let t_symbolic = Unix.gettimeofday () -. t0 in
  Printf.printf "symbolic analysis: %.1f ms (pattern: n=%d, nnz(L)=%d)\n"
    (t_symbolic *. 1e3) n chol.Sympiler.Cholesky.nnz_l;

  (* Newton iteration. *)
  let x = Array.make n 0.0 in
  let t0 = Unix.gettimeofday () in
  let rec newton it =
    let fx = f x in
    let nrm = Vector.norm_inf fx in
    Printf.printf "  iter %2d  |f(x)| = %.3e\n" it nrm;
    if nrm > 1e-10 && it < 25 then begin
      let jl = jacobian_lower x in
      let dx = Sympiler.Cholesky.solve chol jl fx in
      for i = 0 to n - 1 do
        x.(i) <- x.(i) -. dx.(i)
      done;
      newton (it + 1)
    end
    else it
  in
  let iters = newton 0 in
  let t_numeric = Unix.gettimeofday () -. t0 in
  Printf.printf
    "converged in %d iterations; %.1f ms numeric total (%.2f ms/factor+solve)\n"
    iters (t_numeric *. 1e3)
    (t_numeric *. 1e3 /. float_of_int (max 1 iters));
  Printf.printf
    "symbolic cost amortized over %d factorizations: %.1f%% of total time\n"
    iters
    (100.0 *. t_symbolic /. (t_symbolic +. t_numeric))
