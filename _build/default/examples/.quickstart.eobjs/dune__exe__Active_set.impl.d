examples/active_set.ml: Array Csc Fill_pattern Generators Printf Rank_update Sympiler Sympiler_kernels Sympiler_sparse Sympiler_symbolic Unix Utils
