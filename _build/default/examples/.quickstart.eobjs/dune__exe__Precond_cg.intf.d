examples/precond_cg.mli:
