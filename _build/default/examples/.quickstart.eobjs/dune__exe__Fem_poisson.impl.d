examples/fem_poisson.ml: Array Cholesky_ref Csc Generators Perm Printf Sympiler Sympiler_kernels Sympiler_sparse Unix
