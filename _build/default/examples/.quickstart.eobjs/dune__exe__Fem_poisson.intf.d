examples/fem_poisson.mli:
