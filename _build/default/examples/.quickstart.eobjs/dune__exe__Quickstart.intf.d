examples/quickstart.mli:
