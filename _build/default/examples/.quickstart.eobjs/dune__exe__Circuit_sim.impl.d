examples/circuit_sim.ml: Array Csc Generators Printf Sympiler Sympiler_sparse Unix Utils Vector
