examples/active_set.mli:
