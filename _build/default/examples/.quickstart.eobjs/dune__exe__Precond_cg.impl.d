examples/precond_cg.ml: Array Csc Generators Ic0 Printf Sympiler_kernels Sympiler_sparse Trisolve_ref Unix Vector
