examples/quickstart.ml: Array Csc Generators List Printf String Sympiler Sympiler_sparse Vector
