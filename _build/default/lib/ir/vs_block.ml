open Sympiler_sparse
open Sympiler_symbolic
open Ast

(* 2D Variable-Sized Blocking (Figure 3 bottom) for the triangular-solve
   kernel: the column loop marked [Vs_block_site] becomes a loop over the
   block-set (supernodes). Each block is processed as a dense diagonal
   triangular solve followed by a below-block GEMV accumulated in temporary
   block storage [tmp] and scattered once — the transformed code of §3.1.

   The three VS-Block challenges of §2.3.2 and how they appear here:
   - variable block sizes: bounds come from the blockSet constant array;
   - non-consecutive storage: tmp buffering plus the final scatter;
   - operation change: the division of the scalar code becomes a dense
     lower-triangular solve on the diagonal block.

   The transformed outer loop keeps a [Vi_prune_site] so that VI-Prune can
   subsequently prune whole blocks (Sympiler applies VS-Block before
   VI-Prune, §4.2). *)

let blocked_trisolve_body (l : Csc.t) (sn : Supernodes.t) : stmt =
  ignore l;
  let blk b = Idx ("blockSet", b) in
  (* width of block b = blockSet[b+1] - blockSet[b]; c0/c1 bound columns. *)
  let c0 = blk (var "b") and c1 = blk (var "b" +: int_ 1) in
  (* nb = Lp[c0+1] - Lp[c0] - width *)
  let nb =
    Idx ("Lp", c0 +: int_ 1) -: Idx ("Lp", c0) -: (c1 -: c0)
  in
  For
    {
      index = "b";
      lo = int_ 0;
      hi = int_ (Supernodes.nsuper sn);
      annots = [ Blocked; Vi_prune_site ];
      body =
        [
          Comment "dense diagonal-block forward solve";
          for_ "j1" c0 c1
            [
              Update (Arr ("x", var "j1"), Div, Load ("Lx", Idx ("Lp", var "j1")));
              for_ "i" (var "j1" +: int_ 1) c1
                [
                  Update
                    ( Arr ("x", var "i"),
                      Sub,
                      Load ("Lx", Idx ("Lp", var "j1") +: (var "i" -: var "j1"))
                      *: Load ("x", var "j1") );
                ];
            ];
          Comment "below-block GEMV into temporary block storage";
          for_ "j2" c0 c1
            [
              for_ ~annots:[ Vectorize ] "t" (int_ 0) nb
                [
                  Update
                    ( Arr ("tmp", var "t"),
                      Add,
                      Load
                        ( "Lx",
                          Idx ("Lp", var "j2") +: (c1 -: var "j2") +: var "t" )
                      *: Load ("x", var "j2") );
                ];
            ];
          Comment "scatter and reset the temporary";
          for_ "t" (int_ 0) nb
            [
              Update
                ( Arr ("x", Idx ("Li", Idx ("Lp", c0) +: (c1 -: c0) +: var "t")),
                  Sub,
                  Load ("tmp", var "t") );
              Assign (Arr ("tmp", var "t"), Float_lit 0.0);
            ];
        ];
    }

let rec replace_site ~replacement s =
  match s with
  | For l when List.mem Vs_block_site l.annots -> replacement
  | For l -> For { l with body = List.map (replace_site ~replacement) l.body }
  | If (c, a, b) ->
      If
        ( c,
          List.map (replace_site ~replacement) a,
          List.map (replace_site ~replacement) b )
  | Let _ | Assign _ | Update _ | Comment _ -> s

(* Apply VS-Block to the triangular-solve kernel using the supernode
   block-set. Adds the [tmp] block storage parameter (sized by the caller
   to the maximum below-block height, zero-initialized). *)
let apply_trisolve (l : Csc.t) (sn : Supernodes.t) (k : kernel) : kernel =
  let replacement = blocked_trisolve_body l sn in
  {
    k with
    params = k.params @ [ ("tmp", Float_array) ];
    consts = ("blockSet", sn.Supernodes.sn_ptr) :: k.consts;
    body = List.map (replace_site ~replacement) k.body;
  }

let max_below (l : Csc.t) (sn : Supernodes.t) =
  let m = ref 0 in
  for s = 0 to Supernodes.nsuper sn - 1 do
    let c0 = sn.Supernodes.sn_ptr.(s) in
    let w = Supernodes.width sn s in
    m := max !m (Csc.col_nnz l c0 - w)
  done;
  !m
