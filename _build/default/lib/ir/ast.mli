(** The domain-specific AST Sympiler lowers numerical methods into
    (Figure 2). Loops carry annotations: inspector-guided transformation
    sites placed during lowering, and low-level hints placed by the
    inspector-guided passes for later stages to consume. Scoping is flat
    (a [Let] rebinds globally), matching the interpreter's environment and
    the generated C's top-level declarations. *)

type binop = Add | Sub | Mul | Div

type expr =
  | Int_lit of int
  | Float_lit of float
  | Var of string  (** scalar variable (loop index or let-bound) *)
  | Idx of string * expr  (** integer array access: index arrays, sets *)
  | Load of string * expr  (** float array access *)
  | Binop of binop * expr * expr
  | Sqrt of expr

type lvalue = Scalar of string | Arr of string * expr

type annot =
  | Vi_prune_site  (** lowering marks the loop VI-Prune may transform *)
  | Vs_block_site  (** lowering marks the loop VS-Block may transform *)
  | Pruned  (** left behind by VI-Prune *)
  | Blocked  (** left behind by VS-Block *)
  | Peel of int list  (** hint: peel these iteration positions *)
  | Unroll of int  (** hint: fully unroll when trip count <= bound *)
  | Vectorize  (** hint: safe and profitable to vectorize *)
  | Distribute  (** hint: split this loop's body into separate loops *)

type stmt =
  | Let of string * expr
  | Assign of lvalue * expr
  | Update of lvalue * binop * expr  (** [lv op= e] *)
  | For of loop
  | If of expr * stmt list * stmt list
  | Comment of string

and loop = {
  index : string;
  lo : expr;
  hi : expr;  (** exclusive *)
  body : stmt list;
  annots : annot list;
}

type ty = Int | Float | Int_array | Float_array

type kernel = {
  kname : string;
  params : (string * ty) list;  (** runtime inputs (numeric values) *)
  consts : (string * int array) list;
      (** compile-time sets baked in as static data: matrix pattern,
          inspection sets *)
  body : stmt list;
}

(** {2 Constructors} *)

val int_ : int -> expr
val var : string -> expr
val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr
val for_ : ?annots:annot list -> string -> expr -> expr -> stmt list -> stmt

(** {2 Traversal and rewriting} *)

val map_expr : (expr -> expr) -> expr -> expr
(** Bottom-up expression rewriting. *)

val subst_expr : string -> expr -> expr -> expr
(** Substitute a variable by an expression. *)

val subst_lvalue : string -> expr -> lvalue -> lvalue

val subst_stmt : string -> expr -> stmt -> stmt
(** Capture-aware statement substitution: loop bounds are rewritten even
    when the loop index shadows the variable (bounds evaluate in the outer
    scope); shadowed bodies are left alone. *)

val fold_expr : (string * int array) list -> expr -> expr
(** Constant folding of integer arithmetic, including loads from the
    kernel's constant arrays — what makes peeled iterations read like
    Figure 1e. *)

val fold_stmt : (string * int array) list -> stmt -> stmt
val fold_lvalue : (string * int array) list -> lvalue -> lvalue

val written_arrays : stmt -> string list
(** Arrays written (directly or in nested constructs); legality input for
    loop distribution and scalar replacement. *)

val read_arrays_expr : expr -> string list
val read_arrays : stmt -> string list
val read_arrays_lv : lvalue -> string list
