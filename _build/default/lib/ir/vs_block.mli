open Sympiler_sparse
open Sympiler_symbolic

(** 2D Variable-Sized Blocking (Figure 3, bottom) for the triangular-solve
    kernel: the column loop marked [Vs_block_site] becomes a loop over the
    block-set (supernodes); each block is a dense diagonal triangular
    solve plus a below-block GEMV buffered through temporary block storage
    — addressing the three VS-Block challenges of §2.3.2 (variable sizes,
    non-consecutive storage, operation change). The new outer loop keeps a
    [Vi_prune_site] so VI-Prune can subsequently prune whole blocks
    (VS-Block before VI-Prune, the ordering §4.2 prefers). *)

val blocked_trisolve_body : Csc.t -> Supernodes.t -> Ast.stmt
(** The replacement loop nest (exposed for tests). *)

val apply_trisolve : Csc.t -> Supernodes.t -> Ast.kernel -> Ast.kernel
(** Apply the transformation; adds the [blockSet] constant and the [tmp]
    block-storage parameter (size it with {!max_below}, zero it before the
    call). *)

val max_below : Csc.t -> Supernodes.t -> int
(** Largest below-block height: required scratch size. *)
