open Sympiler_sparse

(** The Sympiler phase pipeline of Figure 2: symbolic inspection, lowering,
    inspector-guided transformations, low-level transformations, code
    generation. Produces both the transformed kernel AST (executable
    through {!Interp}) and the final C source. Benchmarks use the native
    executors in [Sympiler_kernels]; this pipeline is the compiler
    itself. *)

type result = {
  kernel : Ast.kernel;
  c_code : string;
  inspectors : string list;  (** human-readable inspector descriptions *)
  tmp_size : int;  (** required scratch size for the [tmp] parameter *)
}

val trisolve :
  ?vs_block:bool ->
  ?vi_prune:bool ->
  ?low_level:bool ->
  ?peel_threshold:int ->
  ?max_width:int ->
  Csc.t ->
  Vector.sparse ->
  result
(** Build the triangular-solve kernel with any subset of the three
    transformation layers (defaults: all three, VS-Block before VI-Prune as
    §4.2 prefers). *)

val cholesky : ?low_level:bool -> Csc.t -> result
(** The left-looking Cholesky kernel, VI-Pruned at lowering (the paper's
    Figure 7 baseline); the low-level stage applies distribution, scalar
    replacement and constant propagation. *)

val run_trisolve : result -> Csc.t -> Vector.sparse -> float array
(** Interpreter-backed execution (tests/examples). *)

val run_cholesky : result -> Csc.t -> nnz_l:int -> float array
(** Interpreter-backed numeric factorization; returns the Lx value array
    for the precomputed pattern. *)
