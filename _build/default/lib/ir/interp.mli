(** Reference interpreter for the domain-specific AST — slow and simple by
    design: the semantic oracle every transformation pass is tested
    against (transformed code must compute exactly what the initial
    lowered code computes). *)

type value =
  | VInt of int
  | VFloat of float
  | VIntArr of int array
  | VFloatArr of float array

type env = (string, value) Hashtbl.t

exception Runtime_error of string
(** Unbound variables, type confusion, out-of-bounds accesses. *)

val eval : env -> Ast.expr -> value
val exec : env -> Ast.stmt -> unit

val run_kernel : Ast.kernel -> (string * value) list -> unit
(** Bind the kernel's constant arrays and the given runtime arguments,
    then execute the body; mutations are visible through the argument
    arrays. *)
