(* Reference interpreter for the domain-specific AST. Slow and simple by
   design: it is the semantic oracle that every transformation pass is
   tested against (transformed code must compute exactly what the initial
   lowered code computes). *)

type value =
  | VInt of int
  | VFloat of float
  | VIntArr of int array
  | VFloatArr of float array

type env = (string, value) Hashtbl.t

exception Runtime_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

let lookup env x =
  match Hashtbl.find_opt env x with
  | Some v -> v
  | None -> err "unbound variable %s" x

let to_int = function
  | VInt i -> i
  | VFloat f when Float.is_integer f -> int_of_float f
  | _ -> err "expected int"

let to_float = function
  | VInt i -> float_of_int i
  | VFloat f -> f
  | _ -> err "expected float"

let rec eval env (e : Ast.expr) : value =
  match e with
  | Ast.Int_lit i -> VInt i
  | Ast.Float_lit f -> VFloat f
  | Ast.Var x -> lookup env x
  | Ast.Idx (a, i) -> (
      let i = to_int (eval env i) in
      match lookup env a with
      | VIntArr arr ->
          if i < 0 || i >= Array.length arr then err "%s[%d] out of bounds" a i;
          VInt arr.(i)
      | _ -> err "%s is not an int array" a)
  | Ast.Load (a, i) -> (
      let i = to_int (eval env i) in
      match lookup env a with
      | VFloatArr arr ->
          if i < 0 || i >= Array.length arr then err "%s[%d] out of bounds" a i;
          VFloat arr.(i)
      | _ -> err "%s is not a float array" a)
  | Ast.Binop (op, a, b) -> (
      let va = eval env a and vb = eval env b in
      match (va, vb) with
      | VInt x, VInt y ->
          VInt
            (match op with
            | Ast.Add -> x + y
            | Ast.Sub -> x - y
            | Ast.Mul -> x * y
            | Ast.Div -> x / y)
      | _ ->
          let x = to_float va and y = to_float vb in
          VFloat
            (match op with
            | Ast.Add -> x +. y
            | Ast.Sub -> x -. y
            | Ast.Mul -> x *. y
            | Ast.Div -> x /. y))
  | Ast.Sqrt a -> VFloat (sqrt (to_float (eval env a)))

let apply_binop op cur v =
  match op with
  | Ast.Add -> cur +. v
  | Ast.Sub -> cur -. v
  | Ast.Mul -> cur *. v
  | Ast.Div -> cur /. v

let rec exec env (s : Ast.stmt) : unit =
  match s with
  | Ast.Comment _ -> ()
  | Ast.Let (x, e) -> Hashtbl.replace env x (eval env e)
  | Ast.Assign (lv, e) -> assign env lv (eval env e)
  | Ast.Update (lv, op, e) ->
      let v = to_float (eval env e) in
      let cur =
        match lv with
        | Ast.Scalar x -> to_float (lookup env x)
        | Ast.Arr (a, i) -> (
            let i = to_int (eval env i) in
            match lookup env a with
            | VFloatArr arr -> arr.(i)
            | _ -> err "%s is not a float array" a)
      in
      assign env lv (VFloat (apply_binop op cur v))
  | Ast.For l ->
      let lo = to_int (eval env l.Ast.lo) and hi = to_int (eval env l.Ast.hi) in
      for i = lo to hi - 1 do
        Hashtbl.replace env l.Ast.index (VInt i);
        List.iter (exec env) l.Ast.body
      done
  | Ast.If (c, a, b) ->
      let v = eval env c in
      let truthy =
        match v with VInt i -> i <> 0 | VFloat f -> f <> 0.0 | _ -> err "bad condition"
      in
      List.iter (exec env) (if truthy then a else b)

and assign env lv v =
  match lv with
  | Ast.Scalar x -> Hashtbl.replace env x v
  | Ast.Arr (a, i) -> (
      let i = to_int (eval env i) in
      match lookup env a with
      | VFloatArr arr ->
          if i < 0 || i >= Array.length arr then err "%s[%d] out of bounds" a i;
          arr.(i) <- to_float v
      | _ -> err "%s is not a float array" a)

(* Run a kernel: bind its compile-time constant arrays and the given runtime
   arguments, then execute the body. Mutations are visible through the
   argument arrays. *)
let run_kernel (k : Ast.kernel) (args : (string * value) list) : unit =
  let env : env = Hashtbl.create 64 in
  List.iter (fun (name, arr) -> Hashtbl.replace env name (VIntArr arr)) k.Ast.consts;
  List.iter (fun (name, v) -> Hashtbl.replace env name v) args;
  List.iter (exec env) k.Ast.body
