(* The domain-specific AST Sympiler lowers numerical methods into
   (Figure 2). Loops carry annotations: inspector-guided transformation
   sites placed during lowering, and low-level transformation hints placed
   by the inspector-guided passes for later stages to consume. *)

type binop = Add | Sub | Mul | Div

type expr =
  | Int_lit of int
  | Float_lit of float
  | Var of string (* scalar variable (loop index or let-bound) *)
  | Idx of string * expr (* integer array access: index arrays, sets *)
  | Load of string * expr (* float array access *)
  | Binop of binop * expr * expr
  | Sqrt of expr

type lvalue =
  | Scalar of string
  | Arr of string * expr (* float array element *)

type annot =
  | Vi_prune_site (* lowering marks the loop VI-Prune may transform *)
  | Vs_block_site (* lowering marks the loop VS-Block may transform *)
  | Pruned (* left by VI-Prune *)
  | Blocked (* left by VS-Block *)
  | Peel of int list (* hint: peel these iteration positions *)
  | Unroll of int (* hint: fully unroll when trip count <= the bound *)
  | Vectorize (* hint: safe and profitable to vectorize *)
  | Distribute (* hint: split this loop's body into separate loops *)

type stmt =
  | Let of string * expr (* bind a scalar *)
  | Assign of lvalue * expr
  | Update of lvalue * binop * expr (* lv op= e *)
  | For of loop
  | If of expr * stmt list * stmt list
  | Comment of string

and loop = {
  index : string;
  lo : expr;
  hi : expr; (* exclusive upper bound *)
  body : stmt list;
  annots : annot list;
}

(* Parameter/declaration types for kernels. *)
type ty = Int | Float | Int_array | Float_array

type kernel = {
  kname : string;
  params : (string * ty) list; (* runtime inputs (numeric values) *)
  consts : (string * int array) list; (* compile-time sets baked as data *)
  body : stmt list;
}

(* ---- constructors ---- *)

let int_ i = Int_lit i
let var v = Var v
let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)
let ( *: ) a b = Binop (Mul, a, b)
let ( /: ) a b = Binop (Div, a, b)

let for_ ?(annots = []) index lo hi body = For { index; lo; hi; body; annots }

(* ---- traversal / substitution ---- *)

let rec map_expr f e =
  let e =
    match e with
    | Int_lit _ | Float_lit _ | Var _ -> e
    | Idx (a, i) -> Idx (a, map_expr f i)
    | Load (a, i) -> Load (a, map_expr f i)
    | Binop (op, a, b) -> Binop (op, map_expr f a, map_expr f b)
    | Sqrt a -> Sqrt (map_expr f a)
  in
  f e

(* Substitute variable [v] with expression [by] everywhere. *)
let subst_expr v by e =
  map_expr (function Var x when x = v -> by | e -> e) e

let subst_lvalue v by = function
  | Scalar x -> Scalar x
  | Arr (a, i) -> Arr (a, subst_expr v by i)

let rec subst_stmt v by s =
  match s with
  | Let (x, e) -> Let (x, subst_expr v by e)
  | Assign (lv, e) -> Assign (subst_lvalue v by lv, subst_expr v by e)
  | Update (lv, op, e) -> Update (subst_lvalue v by lv, op, subst_expr v by e)
  | For l ->
      (* Bounds are evaluated before the index is (re)bound, so they live in
         the outer scope; the body is shadowed when the loop redefines v. *)
      let lo = subst_expr v by l.lo and hi = subst_expr v by l.hi in
      if l.index = v then For { l with lo; hi }
      else For { l with lo; hi; body = List.map (subst_stmt v by) l.body }
  | If (c, a, b) ->
      If
        ( subst_expr v by c,
          List.map (subst_stmt v by) a,
          List.map (subst_stmt v by) b )
  | Comment _ -> s

(* Constant folding of integer arithmetic, used after substitution so peeled
   iterations read like Figure 1e (e.g. Lp[3]+1 with Lp known). *)
let rec fold_expr consts e =
  match e with
  | Int_lit _ | Float_lit _ | Var _ -> e
  | Idx (a, i) -> (
      let i = fold_expr consts i in
      match (List.assoc_opt a consts, i) with
      | Some arr, Int_lit k when k >= 0 && k < Array.length arr ->
          Int_lit arr.(k)
      | _ -> Idx (a, i))
  | Load (a, i) -> Load (a, fold_expr consts i)
  | Binop (op, a, b) -> (
      let a = fold_expr consts a and b = fold_expr consts b in
      match (op, a, b) with
      | Add, Int_lit x, Int_lit y -> Int_lit (x + y)
      | Sub, Int_lit x, Int_lit y -> Int_lit (x - y)
      | Mul, Int_lit x, Int_lit y -> Int_lit (x * y)
      | Div, Int_lit x, Int_lit y when y <> 0 -> Int_lit (x / y)
      | _ -> Binop (op, a, b))
  | Sqrt a -> Sqrt (fold_expr consts a)

let rec fold_stmt consts s =
  match s with
  | Let (x, e) -> Let (x, fold_expr consts e)
  | Assign (lv, e) -> Assign (fold_lvalue consts lv, fold_expr consts e)
  | Update (lv, op, e) -> Update (fold_lvalue consts lv, op, fold_expr consts e)
  | For l ->
      For
        {
          l with
          lo = fold_expr consts l.lo;
          hi = fold_expr consts l.hi;
          body = List.map (fold_stmt consts) l.body;
        }
  | If (c, a, b) ->
      If
        ( fold_expr consts c,
          List.map (fold_stmt consts) a,
          List.map (fold_stmt consts) b )
  | Comment _ -> s

and fold_lvalue consts = function
  | Scalar x -> Scalar x
  | Arr (a, i) -> Arr (a, fold_expr consts i)

(* Arrays written by a statement (for the loop-distribution legality
   check). *)
let rec written_arrays s =
  match s with
  | Let _ | Comment _ -> []
  | Assign (Arr (a, _), _) | Update (Arr (a, _), _, _) -> [ a ]
  | Assign (Scalar _, _) | Update (Scalar _, _, _) -> []
  | For l -> List.concat_map written_arrays l.body
  | If (_, a, b) -> List.concat_map written_arrays (a @ b)

let rec read_arrays_expr e =
  match e with
  | Int_lit _ | Float_lit _ | Var _ -> []
  | Idx (a, i) -> a :: read_arrays_expr i
  | Load (a, i) -> a :: read_arrays_expr i
  | Binop (_, a, b) -> read_arrays_expr a @ read_arrays_expr b
  | Sqrt a -> read_arrays_expr a

let rec read_arrays s =
  match s with
  | Let (_, e) -> read_arrays_expr e
  | Comment _ -> []
  | Assign (lv, e) -> read_arrays_lv lv @ read_arrays_expr e
  | Update (lv, _, e) ->
      (* op= both reads and writes the target *)
      (match lv with Arr (a, i) -> (a :: read_arrays_expr i) | Scalar _ -> [])
      @ read_arrays_lv lv @ read_arrays_expr e
  | For l ->
      read_arrays_expr l.lo @ read_arrays_expr l.hi
      @ List.concat_map read_arrays l.body
  | If (c, a, b) -> read_arrays_expr c @ List.concat_map read_arrays (a @ b)

and read_arrays_lv = function
  | Scalar _ -> []
  | Arr (_, i) -> read_arrays_expr i
