(** C code generation — the final lowering stage. Compile-time constant
    arrays (matrix pattern, inspection sets) are emitted as static data,
    so each generated file is self-contained, specialized to one sparsity
    structure, and its function manipulates numeric values only.
    [Vectorize] annotations become [#pragma GCC ivdep]. *)

val expr_str : Ast.expr -> string
val lvalue_str : Ast.lvalue -> string

val kernel_to_c : Ast.kernel -> string
(** The kernel as a complete C translation unit ([#include <math.h>],
    static const arrays, one function). Generated files compile with
    [gcc -O2 -lm]; the test suite verifies this and compares outputs
    against the interpreter bit-for-bit. *)
