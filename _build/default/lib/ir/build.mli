open Sympiler_sparse

(** Lowering (Figure 2a): turn a numerical method plus a specific sparsity
    structure into the initial annotated AST. The pattern arrays (colptr /
    rowind) become compile-time constants of the kernel; only numeric
    values remain runtime parameters. *)

val lower_trisolve : Csc.t -> Ast.kernel
(** The forward-substitution loop nest, annotated with the VI-Prune and
    VS-Block sites. Parameters: [Lx] (factor values), [x] (b in, solution
    out). *)

val lower_cholesky : Csc.t -> Ast.kernel
(** Left-looking sparse Cholesky (the pseudo-code of the paper's Figure 4)
    with VI-Prune already applied, as in the paper's Figure 7 baseline:
    the update loop iterates the precomputed prune-sets, and every entry
    position (including [rowPos], the position of L(j,r) in column r) is
    baked in. Parameters: [Ax], [Lx] (out), [f] (zeroed workspace). *)
