(** Variable Iteration Space Pruning (Figure 3, top): rewrite the loop
    marked [Vi_prune_site] from [for (Ik < m)] into
    [for (Ip < pruneSetSize) { Ik = pruneSet\[Ip\]; ... }], with the prune
    set added to the kernel's compile-time constant pool. *)

val apply :
  ?set_name:string ->
  ?peel:int list ->
  ?vectorize:bool ->
  int array ->
  Ast.kernel ->
  Ast.kernel
(** [apply set k] transforms the annotated loop using inspection set [set]
    (e.g. the reach-set). [peel] positions and [vectorize] are recorded as
    annotations for the low-level stage (§2.4's enabled transformations). *)

val peel_positions :
  col_nnz:(int -> int) -> threshold:int -> int array -> int list
(** Which pruned-loop iterations to peel: those whose column count exceeds
    [threshold], as in Figure 1e (threshold 2 there). *)
