lib/ir/vs_block.ml: Array Ast Csc List Supernodes Sympiler_sparse Sympiler_symbolic
