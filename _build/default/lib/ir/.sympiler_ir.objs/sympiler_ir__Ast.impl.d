lib/ir/ast.ml: Array List
