lib/ir/interp.ml: Array Ast Float Hashtbl List Printf
