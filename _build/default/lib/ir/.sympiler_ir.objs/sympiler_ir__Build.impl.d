lib/ir/build.ml: Array Ast Csc Sympiler_sparse Sympiler_symbolic
