lib/ir/pipeline.ml: Array Ast Build Csc Fill_pattern Inspector Interp List Lowlevel Pretty_c Supernodes Sympiler_sparse Sympiler_symbolic Vector Vi_prune Vs_block
