lib/ir/vi_prune.ml: Array Ast List Printf
