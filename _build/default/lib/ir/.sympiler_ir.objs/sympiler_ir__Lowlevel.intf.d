lib/ir/lowlevel.mli: Ast
