lib/ir/lowlevel.ml: Ast List Printf
