lib/ir/vs_block.mli: Ast Csc Supernodes Sympiler_sparse Sympiler_symbolic
