lib/ir/build.mli: Ast Csc Sympiler_sparse
