lib/ir/pretty_c.mli: Ast
