lib/ir/pipeline.mli: Ast Csc Sympiler_sparse Vector
