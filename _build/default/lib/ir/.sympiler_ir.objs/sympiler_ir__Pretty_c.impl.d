lib/ir/pretty_c.ml: Array Ast Buffer List Printf String
