lib/ir/interp.mli: Ast Hashtbl
