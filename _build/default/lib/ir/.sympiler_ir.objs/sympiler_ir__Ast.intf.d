lib/ir/ast.mli:
