lib/ir/vi_prune.mli: Ast
