(** Enabled conventional low-level transformations (§2.4): these passes
    consume the hints the inspector-guided transformations leave behind.
    Because inspection sets are compile-time constants, loop bounds are
    known and peeling/unrolling are safe — the reach-set's topological
    order guarantees peeled iterations keep their relative order. *)

val expr_contains_var : string -> Ast.expr -> bool
val bound_vars : Ast.stmt -> string list

val peel_stmt : (string * int array) list -> Ast.stmt -> Ast.stmt list
(** Peel the positions in a [Peel] annotation out of a constant-bound loop,
    inlining the iterations as straight-line code with the index
    substituted and constants folded (Figure 1e). *)

val unroll_stmt : (string * int array) list -> Ast.stmt -> Ast.stmt list
(** Fully unroll constant-trip loops whose trip count fits the [Unroll]
    bound. *)

val scalar_replace_stmt : Ast.stmt -> Ast.stmt list
(** Hoist loop-invariant float loads into scalars before the loop
    (classical scalar replacement), conservatively: only loads from arrays
    not written in the loop whose index mentions no bound variable. *)

val propagate_stmts :
  (string * int array) list ->
  (string * Ast.expr) list ->
  Ast.stmt list ->
  Ast.stmt list
(** Propagate integer-literal lets and fold; drops zero-trip loops. This is
    what specializes peeled iterations down to literal indices. *)

val distribute_stmt : Ast.stmt -> Ast.stmt list
(** Split a [Distribute]-annotated loop into one loop per body statement
    when no pair of statements shares a written array. *)

val apply : Ast.kernel -> Ast.kernel
(** Run all passes in the standard order:
    distribute, peel, unroll, constant propagation, scalar replacement. *)
