lib/core/suite.ml: Array Csc Etree Generators Hashtbl Lazy List Ordering Perm Postorder Sympiler_sparse Sympiler_symbolic Utils Vector
