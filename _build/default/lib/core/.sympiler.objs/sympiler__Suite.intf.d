lib/core/suite.mli: Csc Generators Perm Sympiler_sparse Vector
