lib/core/codegen_supernodal.ml: Array Buffer Cholesky_supernodal Csc Printf Sympiler_kernels Sympiler_sparse Sympiler_symbolic
