open Sympiler_sparse
open Sympiler_kernels

(** Public facade: Sympiler as the paper presents it. [compile] runs all
    symbolic analysis (and can emit specialized C) once for a fixed
    sparsity structure; the returned handles expose numeric routines that
    contain no symbolic work, plus the time the symbolic phase took
    (the quantity of Figures 8 and 9). *)

module Suite = Suite
(** The prepared Table 2 benchmark suite. *)

module Codegen_supernodal = Codegen_supernodal
(** C emission for the supernodal Cholesky executor. *)

(** Sparse triangular solve [L x = b] with a sparse right-hand side. *)
module Trisolve : sig
  type t = {
    l : Csc.t;
    b_pattern : int array;
    compiled : Trisolve_sympiler.compiled;
    symbolic_seconds : float;  (** one-time inspection + planning cost *)
    reach : int array;  (** the reach-set (VI-Prune inspection set) *)
    flops : float;  (** useful flops of the pruned numeric solve *)
  }

  val compile : ?vs_block_threshold:float -> ?max_width:int -> Csc.t -> Vector.sparse -> t
  (** Symbolic inspection and inspector-guided planning for the patterns of
      [l] and [b]; numeric values are free to change afterwards. Raises
      [Invalid_argument] when [l] is not lower triangular. *)

  val solve : t -> Vector.sparse -> float array
  (** Numeric-only solve; [b] must have the compiled pattern. *)

  val solve_ip : t -> float array -> unit
  (** In-place: [x] holds b on entry, the solution on exit. *)

  val c_code : t -> string
  (** Specialized C implementing the same solve (VS-Block + VI-Prune +
      low-level transformations), from the {!Sympiler_ir.Pipeline}. *)
end

(** Sparse Cholesky factorization [A = L L^T]. *)
module Cholesky : sig
  type variant = Supernodal | Simplicial

  type t = {
    variant : variant;  (** what [compile] actually chose *)
    supernodal : Cholesky_supernodal.Sympiler.compiled option;
    simplicial : Cholesky_ref.Decoupled.compiled option;
    pattern : Csc.t;
    symbolic_seconds : float;
    flops : float;
    nnz_l : int;
  }

  val compile :
    ?variant:variant ->
    ?specialized:bool ->
    ?vs_block_threshold:float ->
    ?max_width:int ->
    Csc.t ->
    t
  (** Compile for the pattern of lower-triangular [a_lower]. The supernodal
      (VS-Block) variant is requested by default but applied only when the
      average supernode width reaches [vs_block_threshold] (default 2.0) —
      the paper's hand-tuned profitability threshold (§4.2); below it
      compilation falls back to the simplicial (VI-Prune-only) code, as
      Sympiler does for matrices 3,4,5,7. Raises [Invalid_argument] on
      non-lower-triangular input. *)

  val factor : t -> Csc.t -> Csc.t
  (** Numeric-only factorization for any values sharing the compiled
      pattern. *)

  val solve : t -> Csc.t -> float array -> float array
  (** [A x = b]: numeric factorization + two triangular solves. *)

  val c_code : t -> string
  (** Specialized C: the supernodal driver with its baked-in schedule, or
      the fully specialized simplicial kernel from the AST pipeline. *)
end
