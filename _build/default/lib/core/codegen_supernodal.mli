open Sympiler_sparse
open Sympiler_kernels

(** Direct C emission for the supernodal (VS-Block) Cholesky executor. The
    VS-Block lowering is heavily domain-specific (§2.3.2), so instead of
    the generic AST this emitter specializes the supernodal left-looking
    driver with every inspection set — supernode boundaries, the update
    schedule, L's pattern — baked in as static data. The only runtime
    parameters of the generated function are [Ax] (input values) and [Lx]
    (output factor values). Generated files compile with [gcc -O2 -lm];
    the test suite runs them and compares factors bit-for-bit with the
    OCaml executor. *)

val to_c : Cholesky_supernodal.Sympiler.compiled -> Csc.t -> string
(** [to_c compiled a_lower]: the complete C translation unit. *)
