(** Dense micro-kernels operating on the jagged CSC panels of supernodes —
    the stand-in for the OpenBLAS routines the paper links against, plus
    the specialized small kernels Sympiler generates instead of BLAS calls
    (§4.2: "instead of being handicapped by the performance of BLAS
    routines, it generates specialized and highly-efficient codes for small
    dense sub-kernels").

    Panel layout: a supernode covering columns [\[c0, c1)] stores, for each
    column [j], the diagonal first, then the rest of the dense diagonal
    block (rows [j+1 .. c1-1]), then [nb] shared below-block rows identical
    across the supernode. Element [(i, j)] of the diagonal block is at
    [colptr.(j) + (i - j)]; the [t]-th below-block element of column [j] at
    [colptr.(j) + (c1 - j) + t]. *)

exception Not_positive_definite of int

val diag_solve_generic :
  int array -> float array -> c0:int -> c1:int -> float array -> unit
(** Forward-solve the dense diagonal block of a supernode against [x]
    (generic runtime-parameterized loops). *)

val below_gemv_generic :
  int array ->
  float array ->
  c0:int ->
  c1:int ->
  nb:int ->
  float array ->
  float array ->
  unit
(** [tmp <- tmp + B * x(c0..c1)] where B is the below-block panel. *)

val below_gemv_w2 :
  int array -> float array -> c0:int -> nb:int -> float array -> float array -> unit
(** Fully unrolled width-2 below-block GEMV (specialized kernel). *)

val below_gemv_w3 :
  int array -> float array -> c0:int -> nb:int -> float array -> float array -> unit

val below_gemv_w4 :
  int array -> float array -> c0:int -> nb:int -> float array -> float array -> unit

val below_gemv_specialized :
  int array ->
  float array ->
  c0:int ->
  c1:int ->
  nb:int ->
  float array ->
  float array ->
  unit
(** Width-dispatched below-block GEMV: unrolled code for narrow supernodes
    (the case the paper notes BLAS handles poorly), generic loop
    otherwise. *)

val potrf_jagged : int array -> float array -> c0:int -> c1:int -> unit
(** In-place dense Cholesky of a supernode's diagonal block (generic,
    strided inner loops — the "BLAS-call on jagged storage" model). *)

val trsm_jagged : int array -> float array -> c0:int -> c1:int -> nb:int -> unit
(** Triangular solve of the below-block against the factored diagonal
    block, [B <- B L^{-T}]. *)

val panel_factor_fused :
  int array -> float array -> c0:int -> c1:int -> nb:int -> unit
(** Merged panel factorization (potrf + trsm in one left-looking pass) with
    fully contiguous inner loops — the specialized dense kernel Sympiler
    emits instead of separate BLAS calls. *)

val potrf_w1 : int array -> float array -> c0:int -> nb:int -> unit
(** Peeled width-1 panel: scalar sqrt + column scale. *)
