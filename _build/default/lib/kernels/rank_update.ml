open Sympiler_sparse

(* Sparse rank-1 update/downdate of a Cholesky factorization:
   given L with A = L L^T, compute the factor of A ± w w^T in place,
   touching only the columns on the elimination-tree path from w's first
   nonzero to the root — the rank-update method of §3.3 (Davis & Hager;
   CSparse's cs_updown), whose required symbolic analysis is a single-node
   etree up-traversal, i.e. exactly one of Sympiler's inspection
   strategies.

   Requirement (as in CSparse): the pattern of w must be a subset of the
   pattern of L's column jmin, where jmin is w's first nonzero — then the
   factor's pattern does not change and the numeric phase is decoupled. *)

exception Not_positive_definite of int
exception Pattern_violation of int

type compiled = {
  path : int array; (* etree path from jmin to the root *)
}

(* Symbolic phase: the update path. *)
let compile ~(parent : int array) (w : Vector.sparse) : compiled =
  match Array.length w.Vector.indices with
  | 0 -> { path = [||] }
  | _ ->
      let jmin = w.Vector.indices.(0) in
      let acc = ref [] in
      let j = ref jmin in
      while !j <> -1 do
        acc := !j :: !acc;
        j := parent.(!j)
      done;
      { path = Array.of_list (List.rev !acc) }

(* Check the CSparse precondition; raises [Pattern_violation] otherwise. *)
let check_pattern (l : Csc.t) (w : Vector.sparse) =
  match Array.length w.Vector.indices with
  | 0 -> ()
  | _ ->
      let jmin = w.Vector.indices.(0) in
      Array.iter
        (fun i -> if not (Csc.mem l i jmin) then raise (Pattern_violation i))
        w.Vector.indices

(* Numeric phase: in-place update of [l]'s values along the path.
   [sigma] is [+1.0] (update) or [-1.0] (downdate). *)
let apply ?(sigma = 1.0) (c : compiled) (l : Csc.t) (w : Vector.sparse) : unit
    =
  if Array.length c.path > 0 then begin
    let lp = l.Csc.colptr and li = l.Csc.rowind and lx = l.Csc.values in
    let wx = Array.make l.Csc.ncols 0.0 in
    Array.iteri
      (fun k i -> wx.(i) <- w.Vector.values.(k))
      w.Vector.indices;
    let beta = ref 1.0 in
    Array.iter
      (fun j ->
        let p0 = lp.(j) in
        let alpha = wx.(j) /. lx.(p0) in
        let beta2_sq = (!beta *. !beta) +. (sigma *. alpha *. alpha) in
        if beta2_sq <= 0.0 then raise (Not_positive_definite j);
        let beta2 = sqrt beta2_sq in
        let delta =
          if sigma > 0.0 then !beta /. beta2 else beta2 /. !beta
        in
        let gamma = sigma *. alpha /. (beta2 *. !beta) in
        lx.(p0) <-
          (delta *. lx.(p0))
          +. (if sigma > 0.0 then gamma *. wx.(j) else 0.0);
        beta := beta2;
        for p = p0 + 1 to lp.(j + 1) - 1 do
          let i = li.(p) in
          let w1 = wx.(i) in
          let w2 = w1 -. (alpha *. lx.(p)) in
          wx.(i) <- w2;
          lx.(p) <-
            (delta *. lx.(p)) +. (gamma *. (if sigma > 0.0 then w1 else w2))
        done)
      c.path
  end

(* Convenience: symbolic + numeric in one call, with the pattern check. *)
let update ?(sigma = 1.0) ~(parent : int array) (l : Csc.t)
    (w : Vector.sparse) : unit =
  check_pattern l w;
  apply ~sigma (compile ~parent w) l w

(* A sparse vector with the pattern of column [j] of [l] (below and
   including the diagonal), scaled by [scale] — always a legal update
   vector for [l]. Handy for tests and for the rank-update use cases the
   paper cites (column additions/removals in optimization solvers). *)
let vector_like (l : Csc.t) ~(j : int) ~(scale : float) : Vector.sparse =
  let lo = l.Csc.colptr.(j) and hi = l.Csc.colptr.(j + 1) in
  {
    Vector.n = l.Csc.ncols;
    indices = Array.sub l.Csc.rowind lo (hi - lo);
    values = Array.init (hi - lo) (fun t -> scale *. l.Csc.values.(lo + t));
  }
