open Sympiler_sparse

(** Level-set parallel supernodal Cholesky on OCaml 5 domains — the
    shared-memory direction of the paper's conclusion, in the style of its
    ParSy follow-on: the supernodal dependency DAG is levelized at compile
    time and each level's target supernodes factor in parallel. Race-free
    without atomics: a left-looking target writes only its own panel and
    reads descendant panels finalized at earlier levels. On the single-core
    evaluation container the parallel path shows no speedup; correctness is
    exercised with several domains regardless. *)

type compiled = {
  sym : Cholesky_supernodal.Sympiler.compiled;
  nlevels : int;
  level_ptr : int array;
  level_sn : int array;  (** supernodes ordered by level *)
}

val compile :
  ?fill:Sympiler_symbolic.Fill_pattern.t -> ?max_width:int -> Csc.t -> compiled
(** Supernodal compilation plus DAG levelization (one more inspection
    set). *)

val factor : ?ndomains:int -> compiled -> Csc.t -> Csc.t
(** Numeric factorization; levels narrower than 8 supernodes run inline. *)

val valid_schedule : compiled -> bool
(** Every update dependency crosses levels forward (test helper). *)
