(* Dense micro-kernels operating directly on the jagged CSC panels of a
   supernode (our stand-in for the OpenBLAS routines the paper links, plus
   the specialized small kernels Sympiler generates instead of BLAS calls).

   Supernode layout within plain CSC storage of L: a supernode covers
   columns [c0, c1); column j's entries start at colptr.(j) with the
   diagonal first, then the rest of the dense diagonal block (rows j+1 ..
   c1-1), then nb shared below-block rows identical across the supernode.
   Element (i, j) of the diagonal block lives at colptr.(j) + (i - j); the
   t-th below-block element of column j at colptr.(j) + (c1 - j) + t. *)

(* ---- Generic kernels (runtime-parameterized loops, "BLAS-like") ---- *)

(* Forward-solve the dense diagonal block of a supernode against x. *)
let diag_solve_generic (colptr : int array) (lx : float array) ~c0 ~c1
    (x : float array) =
  for j = c0 to c1 - 1 do
    let base = colptr.(j) in
    let xj = x.(j) /. lx.(base) in
    x.(j) <- xj;
    for i = j + 1 to c1 - 1 do
      x.(i) <- x.(i) -. (lx.(base + i - j) *. xj)
    done
  done

(* tmp <- tmp + B * x[c0..c1) where B is the below-block panel (nb rows). *)
let below_gemv_generic (colptr : int array) (lx : float array) ~c0 ~c1 ~nb
    (x : float array) (tmp : float array) =
  for j = c0 to c1 - 1 do
    let base = colptr.(j) + (c1 - j) in
    let xj = x.(j) in
    if xj <> 0.0 then
      for t = 0 to nb - 1 do
        tmp.(t) <- tmp.(t) +. (lx.(base + t) *. xj)
      done
  done

(* ---- Specialized kernels (what Sympiler's low-level transformations
   generate for small fixed supernode widths: fully unrolled over columns,
   column values held in locals). ---- *)

let below_gemv_w2 colptr (lx : float array) ~c0 ~nb (x : float array) tmp =
  let b0 = colptr.(c0) + 2 and b1 = colptr.(c0 + 1) + 1 in
  let x0 = x.(c0) and x1 = x.(c0 + 1) in
  for t = 0 to nb - 1 do
    tmp.(t) <- tmp.(t) +. (lx.(b0 + t) *. x0) +. (lx.(b1 + t) *. x1)
  done

let below_gemv_w3 colptr (lx : float array) ~c0 ~nb (x : float array) tmp =
  let b0 = colptr.(c0) + 3
  and b1 = colptr.(c0 + 1) + 2
  and b2 = colptr.(c0 + 2) + 1 in
  let x0 = x.(c0) and x1 = x.(c0 + 1) and x2 = x.(c0 + 2) in
  for t = 0 to nb - 1 do
    tmp.(t) <-
      tmp.(t) +. (lx.(b0 + t) *. x0) +. (lx.(b1 + t) *. x1)
      +. (lx.(b2 + t) *. x2)
  done

let below_gemv_w4 colptr (lx : float array) ~c0 ~nb (x : float array) tmp =
  let b0 = colptr.(c0) + 4
  and b1 = colptr.(c0 + 1) + 3
  and b2 = colptr.(c0 + 2) + 2
  and b3 = colptr.(c0 + 3) + 1 in
  let x0 = x.(c0)
  and x1 = x.(c0 + 1)
  and x2 = x.(c0 + 2)
  and x3 = x.(c0 + 3) in
  for t = 0 to nb - 1 do
    tmp.(t) <-
      tmp.(t) +. (lx.(b0 + t) *. x0) +. (lx.(b1 + t) *. x1)
      +. (lx.(b2 + t) *. x2) +. (lx.(b3 + t) *. x3)
  done

(* Width-dispatched below-block GEMV: unrolled code for narrow supernodes
   (the common case the paper notes BLAS handles poorly), generic loop
   otherwise. *)
let below_gemv_specialized colptr lx ~c0 ~c1 ~nb x tmp =
  match c1 - c0 with
  | 2 -> below_gemv_w2 colptr lx ~c0 ~nb x tmp
  | 3 -> below_gemv_w3 colptr lx ~c0 ~nb x tmp
  | 4 -> below_gemv_w4 colptr lx ~c0 ~nb x tmp
  | _ -> below_gemv_generic colptr lx ~c0 ~c1 ~nb x tmp

(* ---- In-place dense Cholesky of a supernode's diagonal block stored in
   jagged CSC (column j starts at its diagonal). ---- *)

exception Not_positive_definite of int

(* Factor the (c1-c0)^2 diagonal block; returns unit, mutating lx. *)
let potrf_jagged (colptr : int array) (lx : float array) ~c0 ~c1 =
  for j = c0 to c1 - 1 do
    let base = colptr.(j) in
    (* d = L(j,j) - sum_k L(j,k)^2 over k in [c0, j): those values live in
       earlier columns of the block at offset (j - k). *)
    let d = ref lx.(base) in
    for k = c0 to j - 1 do
      let v = lx.(colptr.(k) + (j - k)) in
      d := !d -. (v *. v)
    done;
    if !d <= 0.0 then raise (Not_positive_definite j);
    let djj = sqrt !d in
    lx.(base) <- djj;
    for i = j + 1 to c1 - 1 do
      let s = ref lx.(base + i - j) in
      for k = c0 to j - 1 do
        s := !s -. (lx.(colptr.(k) + (i - k)) *. lx.(colptr.(k) + (j - k)))
      done;
      lx.(base + i - j) <- !s /. djj
    done
  done

(* Triangular solve of the below-block against the freshly factored diagonal
   block: B <- B * L_diag^{-T}, column by column (dense TRSM). *)
let trsm_jagged (colptr : int array) (lx : float array) ~c0 ~c1 ~nb =
  for j = c0 to c1 - 1 do
    let base_j = colptr.(j) + (c1 - j) in
    let djj = lx.(colptr.(j)) in
    (* Subtract contributions of earlier columns of the block. *)
    for k = c0 to j - 1 do
      let lkj = lx.(colptr.(k) + (j - k)) in
      if lkj <> 0.0 then begin
        let base_k = colptr.(k) + (c1 - k) in
        for t = 0 to nb - 1 do
          lx.(base_j + t) <- lx.(base_j + t) -. (lx.(base_k + t) *. lkj)
        done
      end
    done;
    for t = 0 to nb - 1 do
      lx.(base_j + t) <- lx.(base_j + t) /. djj
    done
  done

(* Merged panel factorization (potrf + trsm in one left-looking pass) with
   fully contiguous inner loops — the specialized dense kernel Sympiler
   generates instead of calling BLAS potrf/trsm on jagged storage. *)
let panel_factor_fused (colptr : int array) (lx : float array) ~c0 ~c1 ~nb =
  for j = c0 to c1 - 1 do
    let base_j = colptr.(j) in
    let len = c1 - j + nb in
    for k = c0 to j - 1 do
      let base_k = colptr.(k) + (j - k) in
      let ljk = lx.(base_k) in
      if ljk <> 0.0 then
        (* Subtract ljk * L(j:end, k) from L(j:end, j): both ranges are
           contiguous in the jagged panel layout. *)
        for i = 0 to len - 1 do
          lx.(base_j + i) <- lx.(base_j + i) -. (lx.(base_k + i) *. ljk)
        done
    done;
    let d = lx.(base_j) in
    if d <= 0.0 then raise (Not_positive_definite j);
    let djj = sqrt d in
    lx.(base_j) <- djj;
    for i = 1 to len - 1 do
      lx.(base_j + i) <- lx.(base_j + i) /. djj
    done
  done

(* Specialized single-column factorization (width-1 supernode): sqrt and
   scale, the peeled fast path. *)
let potrf_w1 (colptr : int array) (lx : float array) ~c0 ~nb =
  let base = colptr.(c0) in
  let d = lx.(base) in
  if d <= 0.0 then raise (Not_positive_definite c0);
  let djj = sqrt d in
  lx.(base) <- djj;
  for t = 1 to nb do
    lx.(base + t) <- lx.(base + t) /. djj
  done

