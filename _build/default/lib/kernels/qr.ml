open Sympiler_sparse
open Sympiler_symbolic

(* Sparse QR factorization by Givens rotations (George & Heath), the
   orthogonal-factorization method of §3.3. The structure of R is the
   structure of the Cholesky factor of A^T A — so the symbolic phase reuses
   the existing machinery (sparse GEMM + symbolic Cholesky), and like every
   other method here it runs once per pattern: R's static structure and the
   row-access maps of A are baked in.

   Numeric phase: rows of A are rotated into the static structure of R one
   at a time. Q is never formed — its action is applied on the fly to the
   right-hand side, which is all least-squares solving needs: each R row j
   carries a scalar z(j), and after all rows are processed R x = z gives
   the minimizer of ||A x - b||. *)

exception Rank_deficient of int

type compiled = {
  m : int; (* rows of A *)
  n : int; (* columns of A *)
  (* R stored as CSC of R^T: slot j holds row j of R, diagonal first,
     column indices ascending — the jagged layout shared with L factors. *)
  rt_colptr : int array;
  rt_rowind : int array;
  (* CSR view of A (pattern + value gather map), so the numeric phase reads
     rows without transposing. *)
  a_rowptr : int array;
  a_colind : int array;
  a_map : int array;
}

(* Symbolic phase. *)
let compile (a : Csc.t) : compiled =
  if a.Csc.nrows < a.Csc.ncols then
    invalid_arg "Qr.compile: need m >= n (rows >= columns)";
  (* Pattern of A^T A; ones for values so no accidental cancellation. *)
  let ones = Csc.map_values a (fun _ -> 1.0) in
  let ata = Csc.multiply (Csc.transpose ones) ones in
  let fill = Fill_pattern.analyze (Csc.lower ata) in
  let lpat = fill.Fill_pattern.l_pattern in
  let a_rowptr, a_colind, a_map = Csc.transpose_map a in
  {
    m = a.Csc.nrows;
    n = a.Csc.ncols;
    rt_colptr = lpat.Csc.colptr;
    rt_rowind = lpat.Csc.rowind;
    a_rowptr;
    a_colind;
    a_map;
  }

type factors = {
  c : compiled;
  r_values : float array; (* values of R in the R^T layout *)
  z : float array; (* Q^T b restricted to R's rows (length n) *)
  residual_norm : float; (* norm of the annihilated rhs components *)
}

(* Numeric phase: rotate A's rows (values may differ from compile time as
   long as the pattern matches) into R while applying Q^T to [b]. *)
let factor_with_rhs (c : compiled) (a : Csc.t) (b : float array) : factors =
  if Array.length b <> c.m then invalid_arg "Qr.factor_with_rhs: rhs length";
  let rp = c.rt_colptr and ri = c.rt_rowind in
  let rx = Array.make rp.(c.n) 0.0 in
  let z = Array.make c.n 0.0 in
  let occupied = Array.make c.n false in
  let resid2 = ref 0.0 in
  (* dense scratch for the row being rotated in *)
  let w = Array.make c.n 0.0 in
  let pending = Array.make c.n false in
  for i = 0 to c.m - 1 do
    let jmin = ref c.n in
    for p = c.a_rowptr.(i) to c.a_rowptr.(i + 1) - 1 do
      let j = c.a_colind.(p) in
      w.(j) <- a.Csc.values.(c.a_map.(p));
      pending.(j) <- true;
      if j < !jmin then jmin := j
    done;
    let beta = ref b.(i) in
    let j = ref !jmin in
    let absorbed = ref false in
    while (not !absorbed) && !j < c.n do
      if pending.(!j) then begin
        pending.(!j) <- false;
        let wj = w.(!j) in
        w.(!j) <- 0.0;
        if wj <> 0.0 then
          if occupied.(!j) then begin
            (* Givens rotation annihilating w(j) against R(j,j). *)
            let d = rp.(!j) in
            let rjj = rx.(d) in
            let hyp = Float.hypot rjj wj in
            let cth = rjj /. hyp and sth = wj /. hyp in
            rx.(d) <- hyp;
            for p = d + 1 to rp.(!j + 1) - 1 do
              let k = ri.(p) in
              let rjk = rx.(p) and wk = w.(k) in
              rx.(p) <- (cth *. rjk) +. (sth *. wk);
              let wk' = (-.sth *. rjk) +. (cth *. wk) in
              w.(k) <- wk';
              if wk' <> 0.0 then pending.(k) <- true
            done;
            let zj = z.(!j) in
            z.(!j) <- (cth *. zj) +. (sth *. !beta);
            beta := (-.sth *. zj) +. (cth *. !beta)
          end
          else begin
            (* Row slot j of R is empty: the rotated row moves in whole
               (its support is contained in R row j's pattern). *)
            occupied.(!j) <- true;
            rx.(rp.(!j)) <- wj;
            for p = rp.(!j) + 1 to rp.(!j + 1) - 1 do
              let k = ri.(p) in
              rx.(p) <- w.(k);
              w.(k) <- 0.0;
              pending.(k) <- false
            done;
            z.(!j) <- !beta;
            absorbed := true
          end
      end;
      incr j
    done;
    (* Fully annihilated row: its rhs component joins the residual. *)
    if not !absorbed then resid2 := !resid2 +. (!beta *. !beta)
  done;
  Array.iteri (fun j occ -> if not occ then raise (Rank_deficient j)) occupied;
  { c; r_values = rx; z; residual_norm = sqrt !resid2 }

(* Back substitution R x = z over the R^T layout. *)
let solve_r (f : factors) : float array =
  let c = f.c in
  let rp = c.rt_colptr and ri = c.rt_rowind and rx = f.r_values in
  let x = Array.make c.n 0.0 in
  for j = c.n - 1 downto 0 do
    let s = ref f.z.(j) in
    for p = rp.(j) + 1 to rp.(j + 1) - 1 do
      s := !s -. (rx.(p) *. x.(ri.(p)))
    done;
    x.(j) <- !s /. rx.(rp.(j))
  done;
  x

(* Least-squares solve min ||A x - b|| in one call: symbolic analysis is
   re-used through [compile] by callers that solve repeatedly. *)
let lstsq (c : compiled) (a : Csc.t) (b : float array) : float array =
  solve_r (factor_with_rhs c a b)

(* Extract R as an upper-triangular CSC matrix (for tests: R^T R = A^T A). *)
let r_matrix (f : factors) : Csc.t =
  let c = f.c in
  let tr = Triplet.create ~nrows:c.n ~ncols:c.n () in
  for j = 0 to c.n - 1 do
    for p = c.rt_colptr.(j) to c.rt_colptr.(j + 1) - 1 do
      (* slot j = row j of R; ri.(p) = column *)
      if f.r_values.(p) <> 0.0 then Triplet.add tr j c.rt_rowind.(p) f.r_values.(p)
    done
  done;
  Csc.of_triplet tr
