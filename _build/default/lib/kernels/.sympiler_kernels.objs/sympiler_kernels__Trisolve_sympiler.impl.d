lib/kernels/trisolve_sympiler.ml: Array Csc Dense_blas Dep_graph Float Supernodes Sympiler_sparse Sympiler_symbolic Trisolve_ref Vector
