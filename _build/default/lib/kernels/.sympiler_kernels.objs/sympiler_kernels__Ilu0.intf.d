lib/kernels/ilu0.mli: Csc Sympiler_sparse
