lib/kernels/cholesky_parallel.ml: Array Cholesky_supernodal Csc Domain List Supernodes Sympiler_sparse Sympiler_symbolic Utils
