lib/kernels/trisolve_parallel.ml: Array Csc Domain List Sympiler_sparse Utils
