lib/kernels/cholesky_ref.mli: Csc Fill_pattern Sympiler_sparse Sympiler_symbolic
