lib/kernels/qr.mli: Csc Sympiler_sparse
