lib/kernels/ic0.mli: Csc Sympiler_sparse
