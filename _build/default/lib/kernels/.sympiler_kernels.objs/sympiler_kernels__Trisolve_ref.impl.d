lib/kernels/trisolve_ref.ml: Array Csc Sympiler_sparse Sympiler_symbolic Vector
