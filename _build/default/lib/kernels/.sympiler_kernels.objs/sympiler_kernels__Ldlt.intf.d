lib/kernels/ldlt.mli: Csc Sympiler_sparse
