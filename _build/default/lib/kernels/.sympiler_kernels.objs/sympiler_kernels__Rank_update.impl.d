lib/kernels/rank_update.ml: Array Csc List Sympiler_sparse Vector
