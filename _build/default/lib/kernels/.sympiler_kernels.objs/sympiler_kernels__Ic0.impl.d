lib/kernels/ic0.ml: Array Csc Sympiler_sparse Utils
