lib/kernels/rank_update.mli: Csc Sympiler_sparse Vector
