lib/kernels/dense_blas.mli:
