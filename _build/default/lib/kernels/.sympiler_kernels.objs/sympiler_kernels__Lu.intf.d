lib/kernels/lu.mli: Csc Sympiler_sparse
