lib/kernels/cholesky_supernodal.ml: Array Csc Dense_blas Fill_pattern List Supernodes Sympiler_sparse Sympiler_symbolic
