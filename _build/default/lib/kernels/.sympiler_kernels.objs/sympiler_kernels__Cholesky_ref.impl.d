lib/kernels/cholesky_ref.ml: Array Csc Ereach Etree Fill_pattern Sympiler_sparse Sympiler_symbolic Trisolve_ref Utils
