lib/kernels/trisolve_parallel.mli: Csc Sympiler_sparse
