lib/kernels/ldlt.ml: Array Csc Fill_pattern Sympiler_sparse Sympiler_symbolic
