lib/kernels/dense_blas.ml: Array
