lib/kernels/trisolve_sympiler.mli: Csc Supernodes Sympiler_sparse Sympiler_symbolic Vector
