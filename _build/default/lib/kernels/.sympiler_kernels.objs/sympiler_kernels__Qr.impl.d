lib/kernels/qr.ml: Array Csc Fill_pattern Float Sympiler_sparse Sympiler_symbolic Triplet
