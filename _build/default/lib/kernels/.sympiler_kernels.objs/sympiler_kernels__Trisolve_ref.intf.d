lib/kernels/trisolve_ref.mli: Csc Sympiler_sparse Vector
