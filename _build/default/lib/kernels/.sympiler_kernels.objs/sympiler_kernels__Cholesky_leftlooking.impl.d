lib/kernels/cholesky_leftlooking.ml: Array Csc Fill_pattern Sympiler_sparse Sympiler_symbolic
