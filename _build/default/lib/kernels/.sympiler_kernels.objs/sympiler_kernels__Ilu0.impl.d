lib/kernels/ilu0.ml: Array Csc Sympiler_sparse
