lib/kernels/lu.ml: Array Csc List Seq Sympiler_sparse Triplet Utils
