open Sympiler_sparse

(** The four sparse triangular-solve variants of the paper's Figure 1 for
    [L x = b], L lower-triangular in CSC form. The [_ip] versions take [x]
    already holding b and overwrite it with the solution; the functional
    wrappers copy. *)

val naive_ip : Csc.t -> float array -> unit
(** Figure 1b: naive forward substitution — visits every column. *)

val library_ip : Csc.t -> float array -> unit
(** Figure 1c: the library (Eigen-style) code — scans all columns but skips
    the work when the solution entry is zero. *)

val decoupled_ip : Csc.t -> int array -> float array -> unit
(** Figure 1d: decoupled code iterating only over the precomputed reach-set
    (topological order), O(|b| + f). *)

val transpose_ip : Csc.t -> float array -> unit
(** Solve [L^T x = b] using L's CSC storage (backward substitution), to
    complete [A = L L^T] solves. *)

val naive : Csc.t -> float array -> float array
val library : Csc.t -> float array -> float array

val decoupled : Csc.t -> Vector.sparse -> float array
(** Computes the reach-set itself, then runs {!decoupled_ip}. *)

val transpose_solve : Csc.t -> float array -> float array

val flops : Csc.t -> int array -> float
(** Useful floating-point operations of the pruned solve
    ([sum over reach of 2 nnz(col) - 1]) — the common GFLOP/s numerator for
    all variants in Figure 6. *)
