open Sympiler_sparse
open Sympiler_symbolic

(** Left-looking column Cholesky — the paper's Figure 4 pseudo-code as a
    native decoupled executor: gather [f = A(:,j)], subtract the
    contributions of the prune-set columns (VI-Prune's inspection set),
    take the square root of the diagonal, scale. All symbolic data —
    including [row_pos], the position of L(j,r) inside column r — is baked
    in at compile time. Cross-checked in the tests against the up-looking
    executor and the AST pipeline that lowers the same algorithm. *)

exception Not_positive_definite of int

type compiled = {
  n : int;
  l_colptr : int array;
  l_rowind : int array;
  row_ptr : int array;
  row_set : int array;
  row_pos : int array;
  flops : float;
}

val compile : ?fill:Fill_pattern.t -> Csc.t -> compiled
val factor : compiled -> Csc.t -> Csc.t
val factorize : Csc.t -> Csc.t
