open Sympiler_sparse

(** Sparse QR factorization by Givens rotations (George & Heath) — the
    orthogonal-factorization method of §3.3. The symbolic phase derives R's
    static structure as the Cholesky pattern of [A^T A]; the numeric phase
    rotates A's rows into that structure while applying [Q^T] to the
    right-hand side (Q is never formed), which suffices for least-squares
    solving. [m >= n] with full column rank is required. *)

exception Rank_deficient of int
(** A structural pivot row stayed empty. *)

type compiled = {
  m : int;
  n : int;
  rt_colptr : int array;  (** R stored as CSC of R^T (slot j = row j) *)
  rt_rowind : int array;
  a_rowptr : int array;  (** CSR view of A with a value gather map *)
  a_colind : int array;
  a_map : int array;
}

type factors = {
  c : compiled;
  r_values : float array;
  z : float array;  (** [Q^T b] restricted to R's rows *)
  residual_norm : float;  (** norm of the annihilated rhs components *)
}

val compile : Csc.t -> compiled
(** Symbolic phase (pattern of [A^T A] + symbolic Cholesky + row maps). *)

val factor_with_rhs : compiled -> Csc.t -> float array -> factors
(** Numeric phase for any values matching the compiled pattern. *)

val solve_r : factors -> float array
(** Back substitution [R x = z]. *)

val lstsq : compiled -> Csc.t -> float array -> float array
(** [min ||A x - b||] in one call. *)

val r_matrix : factors -> Csc.t
(** R as an upper-triangular CSC matrix (tests: [R^T R = A^T A]). *)
