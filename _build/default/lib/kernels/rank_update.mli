open Sympiler_sparse

(** Sparse rank-1 update/downdate of a Cholesky factorization: rewrite L in
    place so that [L L^T] becomes [A ± w w^T], touching only the columns on
    the elimination-tree path from w's first nonzero to the root — the
    rank-update method of §3.3 (Davis & Hager / CSparse [cs_updown]). The
    required symbolic analysis is a single-node etree up-traversal, one of
    Sympiler's inspection strategies (Table 1).

    Precondition (as in CSparse): the pattern of [w] must be a subset of
    the pattern of L's column [jmin] (its first nonzero); then L's pattern
    is unchanged and the numeric phase is fully decoupled. *)

exception Not_positive_definite of int
(** A downdate destroyed positive definiteness. *)

exception Pattern_violation of int
(** [w] has a nonzero outside the allowed pattern (offending row given). *)

type compiled = { path : int array }
(** The etree path the update walks (symbolic inspection set). *)

val compile : parent:int array -> Vector.sparse -> compiled
(** Symbolic phase: walk the etree from w's first nonzero to the root. *)

val check_pattern : Csc.t -> Vector.sparse -> unit
(** Validate the precondition; raises {!Pattern_violation}. *)

val apply : ?sigma:float -> compiled -> Csc.t -> Vector.sparse -> unit
(** Numeric phase, in place on [l]'s values. [sigma] is [+1.] (update,
    default) or [-1.] (downdate). *)

val update : ?sigma:float -> parent:int array -> Csc.t -> Vector.sparse -> unit
(** [check_pattern] + [compile] + [apply]. *)

val vector_like : Csc.t -> j:int -> scale:float -> Vector.sparse
(** A legal update vector: column [j] of [l] scaled by [scale]. *)
