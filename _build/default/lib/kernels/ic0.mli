open Sympiler_sparse

(** Incomplete Cholesky with zero fill, IC(0): the factor keeps exactly the
    pattern of lower(A) (updates landing outside it are dropped). A §3.3
    method used as the preconditioner in [examples/precond_cg.ml]. On a
    matrix whose exact factor has no fill, IC(0) equals the exact factor. *)

exception Not_positive_definite of int

type compiled = {
  n : int;
  colptr : int array;
  rowind : int array;
  row_ptr : int array;
      (** flattened row lists: row [j]'s update sources occupy
          [\[row_ptr.(j), row_ptr.(j+1))] *)
  row_col : int array;  (** columns [r < j] with [A(j,r) <> 0] *)
  row_pos : int array;  (** storage position of each such entry *)
}

val compile : Csc.t -> compiled
(** Precompute row lists and positions from the lower part of A, making the
    numeric phase decoupled. *)

val factor : compiled -> Csc.t -> Csc.t
(** Numeric IC(0); the input's values may change as long as the pattern
    matches the compiled one. *)

val factorize : Csc.t -> Csc.t
(** [compile] + [factor]. *)
