open Sympiler_sparse

(** The dependence graph DG_L of a lower-triangular matrix L (§1.1): one
    vertex per column, an edge [j -> i] for every off-diagonal nonzero
    [L(i,j)]. By the Gilbert-Peierls theorem, the nonzero pattern of the
    solution of [L x = b] is [Reach_L(beta)] with [beta] the pattern of
    [b] — the inspection set driving the VI-Prune transformation for
    triangular solve. *)

val reach : Csc.t -> int array -> int array
(** [reach l beta]: all columns reachable in DG_L from the vertices in
    [beta], returned in topological order (every column precedes the
    columns that depend on it, so a forward solve may process the result
    left to right). Non-recursive DFS, O(|beta| + edges traversed) — the
    cost never exceeds the numeric work it saves. *)

val reach_naive : Csc.t -> int array -> int array
(** Test oracle: the same set by naive traversal, returned sorted
    ascending. *)

val is_topological : Csc.t -> int array -> bool
(** [is_topological l order]: no edge inside the set points backwards —
    validates inspector output in tests. *)
