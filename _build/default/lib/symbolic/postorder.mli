(** Post-ordering of an elimination forest. Sparse solvers relabel columns
    by a postorder so that subtrees — hence supernode candidates — occupy
    consecutive indices; {!Sympiler.Suite} composes this with the
    fill-reducing ordering when preparing benchmark matrices. *)

val compute : int array -> int array
(** [compute parent]: [post.(k)] is the node visited k-th by a depth-first
    traversal that visits children in increasing order. *)

val is_valid : int array -> int array -> bool
(** [is_valid parent post]: [post] is a permutation in which every node
    appears after all of its descendants. *)
