lib/symbolic/supernodes.mli: Csc Sympiler_sparse
