lib/symbolic/etree.mli: Csc Sympiler_sparse
