lib/symbolic/inspector.ml: Csc Dep_graph Fill_pattern Printf Supernodes Sympiler_sparse Vector
