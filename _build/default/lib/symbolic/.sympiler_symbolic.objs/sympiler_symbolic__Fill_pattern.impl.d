lib/symbolic/fill_pattern.ml: Array Csc Ereach Etree Int Set Sympiler_sparse Triplet Utils
