lib/symbolic/etree.ml: Array Csc Int List Set Sympiler_sparse
