lib/symbolic/inspector.mli: Csc Fill_pattern Supernodes Sympiler_sparse Vector
