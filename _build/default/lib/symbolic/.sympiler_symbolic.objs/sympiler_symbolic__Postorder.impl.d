lib/symbolic/postorder.ml: Array
