lib/symbolic/dep_graph.ml: Array Csc Sympiler_sparse
