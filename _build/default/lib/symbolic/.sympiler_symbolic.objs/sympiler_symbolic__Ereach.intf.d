lib/symbolic/ereach.mli: Csc Sympiler_sparse
