lib/symbolic/fill_pattern.mli: Csc Sympiler_sparse
