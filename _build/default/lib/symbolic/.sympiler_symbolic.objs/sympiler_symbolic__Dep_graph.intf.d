lib/symbolic/dep_graph.mli: Csc Sympiler_sparse
