lib/symbolic/supernodes.ml: Array Csc Etree List Sympiler_sparse
