lib/symbolic/postorder.mli:
