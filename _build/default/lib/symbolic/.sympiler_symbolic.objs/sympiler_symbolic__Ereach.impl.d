lib/symbolic/ereach.ml: Array Csc Int Set Sympiler_sparse
