open Sympiler_sparse

(** The symbolic inspector framework of §2.2 / Table 1. For each pair of
    (numerical method, transformation), an inspector names the inspection
    graph it builds and the strategy it traverses it with, and produces the
    inspection set that drives the corresponding inspector-guided
    transformation. New methods can be added to Sympiler exactly when their
    symbolic needs fit this shape. *)

type inspection_graph =
  | Dependence_graph  (** adjacency graph of the triangular matrix *)
  | Elimination_tree  (** etree of A, for factorization methods *)

type inspection_strategy =
  | Depth_first_search  (** reach-set computation *)
  | Node_equivalence  (** supernode detection on DG_L *)
  | Up_traversal  (** etree up-walks over all rows *)
  | Single_node_up_traversal  (** etree walk for one row pattern *)

type inspection_set =
  | Prune_set of int array  (** e.g. the reach-set, topologically ordered *)
  | Prune_sets of int array array  (** per-column prune sets (row patterns) *)
  | Block_set of Supernodes.t  (** supernode boundaries *)

type t = {
  graph : inspection_graph;
  strategy : inspection_strategy;
  description : string;
  run : unit -> inspection_set;
}

val graph_name : inspection_graph -> string
val strategy_name : inspection_strategy -> string

val describe : t -> string
(** Human-readable summary ("...: DFS over DG"). *)

val trisolve_vi_prune : Csc.t -> Vector.sparse -> t
(** Reach-set inspector for triangular solve (Table 1, row 1). *)

val trisolve_vs_block : ?max_width:int -> Csc.t -> t
(** Node-equivalence supernode inspector for triangular solve. *)

val cholesky_vi_prune : Fill_pattern.t -> t
(** Row-pattern (prune-set) inspector for Cholesky. *)

val cholesky_vs_block : ?max_width:int -> Fill_pattern.t -> t
(** Etree + column-count supernode inspector for Cholesky. *)
