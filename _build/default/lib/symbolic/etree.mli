open Sympiler_sparse

(** The elimination tree (etree) of a symmetric positive definite matrix —
    the central graph structure of sparse factorization symbolic analysis
    (§3.2): [parent j = min { i > j : L(i,j) <> 0 }], a spanning forest of
    the filled graph. *)

val compute : Csc.t -> int array
(** [compute a_lower]: parent array of the etree ([-1] for roots), from the
    lower-triangular part of A. Liu's algorithm with path-compressed
    virtual ancestors, nearly O(|A|). *)

val compute_naive : Csc.t -> int array
(** Test oracle: parents read off an explicit set-based symbolic
    factorization. Quadratic; small inputs only. *)

val children : int array -> int list array
(** Children lists (increasing order) from a parent array. *)

val n_children : int array -> int array
(** Child counts — the paper's supernode rule needs "j-1 is the only child
    of j". *)

val roots : int array -> int list
(** Indices with no parent (one per connected component). *)

val depths : int array -> int array
(** Depth of each node; roots have depth 0. *)
