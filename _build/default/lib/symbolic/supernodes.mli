open Sympiler_sparse

(** Supernode detection — the block-set inspection producing VS-Block's
    input. A supernode is a maximal range of consecutive columns of L with
    identical below-diagonal structure and a dense diagonal block.

    Two detectors matching Table 1:
    - {!detect_exact}: node equivalence on the dependence graph (columns
      merged when their outgoing-edge sets coincide) — works on any
      lower-triangular pattern, used for triangular solve;
    - {!detect_etree}: the Cholesky rule of §3.2 — merge [j-1] and [j] when
      [nnz(L(:,j-1)) = nnz(L(:,j)) + 1] and [j-1] is the only etree child
      of [j]; needs only counts and the etree. *)

type t = {
  sn_ptr : int array;
      (** length nsuper+1; supernode [s] covers columns
          [\[sn_ptr.(s), sn_ptr.(s+1))] *)
  col_to_sn : int array;  (** inverse map: column -> supernode *)
}

val nsuper : t -> int
val width : t -> int -> int

val of_boundaries : n:int -> int list -> t
(** Build from the ascending list of first columns (head 0). *)

val mergeable_exact : Csc.t -> int -> bool
(** [mergeable_exact l j]: column [j]'s pattern equals column [j-1]'s with
    its leading (diagonal) entry removed. *)

val detect : ?max_width:int -> mergeable:(int -> bool) -> int -> t
(** Generic contiguous-merge driver over a mergeability predicate. *)

val detect_exact : ?max_width:int -> Csc.t -> t
(** Node-equivalence supernodes of a lower-triangular pattern. *)

val detect_etree :
  ?max_width:int -> counts:int array -> parent:int array -> unit -> t
(** The paper's etree + column-count rule. *)

val widths : t -> int array
val avg_width : t -> float

val validate_against : Csc.t -> t -> bool
(** Structural check used by tests: contiguous cover of [\[0, n)] whose
    blocks all satisfy {!mergeable_exact}. *)
