(** Small column-major dense matrices: test oracles (dense Cholesky and
    triangular solves) and temporary block storage for VS-Block. Not
    intended for large data — the sparse structures are the product. *)

type t = { nrows : int; ncols : int; data : float array }
(** Column-major: element [(i, j)] lives at [data.(j * nrows + i)]. *)

val create : int -> int -> t
(** Zero-initialized matrix. *)

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val update : t -> int -> int -> (float -> float) -> unit
(** Apply a function to one element in place. *)

val copy : t -> t

val of_rows : float array array -> t
(** From row-major nested arrays. *)

val to_rows : t -> float array array

val of_csc : Csc.t -> t
(** Densify a sparse matrix. *)

val matmul : t -> t -> t
(** Dense product; raises on dimension mismatch. *)

val transpose : t -> t

val cholesky : t -> t
(** Unblocked dense Cholesky: returns the lower factor with the strict
    upper triangle zeroed. Raises [Failure] when the input is not positive
    definite. The correctness oracle for every sparse factorization in the
    test suite. *)

val lower_solve : t -> float array -> float array
(** Forward substitution [L x = b] for lower-triangular [L]. *)

val upper_solve_transposed : t -> float array -> float array
(** Backward substitution [L^T x = b] given lower-triangular [L]. *)

val max_abs_diff : t -> t -> float
(** Infinity-norm elementwise difference. *)
