(** Fill-reducing and bandwidth-reducing orderings. CHOLMOD and Eigen apply
    a fill-reducing ordering (AMD) in their default configurations; these
    are the portable stand-ins used when preparing the benchmark suite.
    Inputs are full symmetric matrices; outputs use the {!Perm} new->old
    convention. *)

val adjacency : Csc.t -> int list array
(** Sorted adjacency lists of the symmetric pattern, self-loops removed. *)

val rcm : Csc.t -> Perm.t
(** Reverse Cuthill-McKee: BFS from a pseudo-peripheral vertex per
    connected component, neighbors in increasing-degree order, reversed.
    Reduces bandwidth. *)

val min_degree : Csc.t -> Perm.t
(** Greedy minimum-degree on the elimination graph (no quotient-graph
    machinery, so quadratic-ish in the worst case — fine for the moderate
    sizes in this repository). Reduces fill substantially on mesh
    problems. *)

val bandwidth : Csc.t -> int
(** Maximum [|i - j|] over stored entries. *)
