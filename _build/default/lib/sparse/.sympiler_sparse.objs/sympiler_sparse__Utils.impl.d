lib/sparse/utils.ml: Array Float Int64
