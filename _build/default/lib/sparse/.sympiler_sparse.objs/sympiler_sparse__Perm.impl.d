lib/sparse/perm.ml: Array Csc Triplet Utils
