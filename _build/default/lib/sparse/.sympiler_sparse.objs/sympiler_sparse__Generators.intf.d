lib/sparse/generators.mli: Csc Lazy Vector
