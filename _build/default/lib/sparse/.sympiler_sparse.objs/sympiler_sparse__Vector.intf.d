lib/sparse/vector.mli:
