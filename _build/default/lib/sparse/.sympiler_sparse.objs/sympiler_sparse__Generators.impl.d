lib/sparse/generators.ml: Array Csc Float Lazy List Triplet Utils Vector
