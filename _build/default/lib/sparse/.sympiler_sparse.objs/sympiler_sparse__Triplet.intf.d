lib/sparse/triplet.mli:
