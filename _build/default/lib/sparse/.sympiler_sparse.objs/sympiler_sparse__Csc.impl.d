lib/sparse/csc.ml: Array Fmt Triplet Utils
