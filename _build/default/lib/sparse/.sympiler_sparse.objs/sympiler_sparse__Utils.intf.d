lib/sparse/utils.mli:
