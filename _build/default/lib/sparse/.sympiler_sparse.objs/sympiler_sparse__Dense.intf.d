lib/sparse/dense.mli: Csc
