lib/sparse/csc.mli: Format Triplet
