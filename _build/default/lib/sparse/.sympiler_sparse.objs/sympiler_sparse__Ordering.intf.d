lib/sparse/ordering.mli: Csc Perm
