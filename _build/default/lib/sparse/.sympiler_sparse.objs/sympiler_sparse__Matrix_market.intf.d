lib/sparse/matrix_market.mli: Buffer Csc
