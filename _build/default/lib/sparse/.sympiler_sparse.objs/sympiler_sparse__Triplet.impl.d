lib/sparse/triplet.ml: Array Printf Utils
