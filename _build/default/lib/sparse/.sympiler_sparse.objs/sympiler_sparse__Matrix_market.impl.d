lib/sparse/matrix_market.ml: Buffer Csc In_channel List Out_channel Printf String Triplet
