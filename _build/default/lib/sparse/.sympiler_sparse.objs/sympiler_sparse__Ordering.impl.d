lib/sparse/ordering.ml: Array Csc Int List Perm Queue Set
