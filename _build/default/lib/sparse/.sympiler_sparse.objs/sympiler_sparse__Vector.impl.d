lib/sparse/vector.ml: Array Float
