lib/sparse/dense.ml: Array Csc Float
