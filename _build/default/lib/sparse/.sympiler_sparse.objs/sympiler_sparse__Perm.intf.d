lib/sparse/perm.mli: Csc Utils
