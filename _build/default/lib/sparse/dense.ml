(* Small column-major dense matrices. Used as test oracles (dense Cholesky,
   dense triangular solve) and as the temporary block storage that VS-Block
   copies supernode panels into. *)

type t = { nrows : int; ncols : int; data : float array }

let create nrows ncols = { nrows; ncols; data = Array.make (nrows * ncols) 0.0 }
let get t i j = t.data.((j * t.nrows) + i)
let set t i j v = t.data.((j * t.nrows) + i) <- v
let update t i j f = t.data.((j * t.nrows) + i) <- f t.data.((j * t.nrows) + i)
let copy t = { t with data = Array.copy t.data }

let of_rows rows =
  let nrows = Array.length rows in
  let ncols = if nrows = 0 then 0 else Array.length rows.(0) in
  let t = create nrows ncols in
  for i = 0 to nrows - 1 do
    for j = 0 to ncols - 1 do
      set t i j rows.(i).(j)
    done
  done;
  t

let to_rows t =
  Array.init t.nrows (fun i -> Array.init t.ncols (fun j -> get t i j))

let of_csc (m : Csc.t) =
  let t = create m.Csc.nrows m.Csc.ncols in
  Csc.iter m (fun i j v -> set t i j v);
  t

let matmul a b =
  if a.ncols <> b.nrows then invalid_arg "Dense.matmul: dims";
  let c = create a.nrows b.ncols in
  for j = 0 to b.ncols - 1 do
    for k = 0 to a.ncols - 1 do
      let bkj = get b k j in
      if bkj <> 0.0 then
        for i = 0 to a.nrows - 1 do
          update c i j (fun x -> x +. (get a i k *. bkj))
        done
    done
  done;
  c

let transpose a =
  let t = create a.ncols a.nrows in
  for j = 0 to a.ncols - 1 do
    for i = 0 to a.nrows - 1 do
      set t j i (get a i j)
    done
  done;
  t

(* In-place unblocked Cholesky of the leading n x n block; returns the lower
   factor with the strict upper triangle zeroed. Raises [Failure] when the
   matrix is not positive definite. Oracle for all sparse factorizations. *)
let cholesky a =
  if a.nrows <> a.ncols then invalid_arg "Dense.cholesky: square";
  let n = a.nrows in
  let l = copy a in
  for j = 0 to n - 1 do
    let d = ref (get l j j) in
    for k = 0 to j - 1 do
      d := !d -. (get l j k *. get l j k)
    done;
    if !d <= 0.0 then failwith "Dense.cholesky: not positive definite";
    let djj = sqrt !d in
    set l j j djj;
    for i = j + 1 to n - 1 do
      let s = ref (get l i j) in
      for k = 0 to j - 1 do
        s := !s -. (get l i k *. get l j k)
      done;
      set l i j (!s /. djj)
    done;
    for i = 0 to j - 1 do
      set l i j 0.0
    done
  done;
  l

(* Solve L x = b with L lower triangular (forward substitution). *)
let lower_solve l b =
  let n = l.nrows in
  let x = Array.copy b in
  for j = 0 to n - 1 do
    x.(j) <- x.(j) /. get l j j;
    for i = j + 1 to n - 1 do
      x.(i) <- x.(i) -. (get l i j *. x.(j))
    done
  done;
  x

(* Solve L^T x = b with L lower triangular (backward substitution). *)
let upper_solve_transposed l b =
  let n = l.nrows in
  let x = Array.copy b in
  for j = n - 1 downto 0 do
    for i = j + 1 to n - 1 do
      x.(j) <- x.(j) -. (get l i j *. x.(i))
    done;
    x.(j) <- x.(j) /. get l j j
  done;
  x

let max_abs_diff a b =
  if a.nrows <> b.nrows || a.ncols <> b.ncols then
    invalid_arg "Dense.max_abs_diff: dims";
  let d = ref 0.0 in
  for k = 0 to Array.length a.data - 1 do
    d := Float.max !d (Float.abs (a.data.(k) -. b.data.(k)))
  done;
  !d
