(* Permutations. Convention: a permutation [p] maps new index -> old index,
   so applying p to a vector x gives y with y.(k) = x.(p.(k)), i.e. y = P x
   where row k of P has its 1 in column p.(k). Fill-reducing orderings in
   [Ordering] return permutations in this convention. *)

type t = int array

let identity n = Array.init n (fun i -> i)

let is_valid p =
  let n = Array.length p in
  let seen = Array.make n false in
  let ok = ref true in
  Array.iter
    (fun i ->
      if i < 0 || i >= n || seen.(i) then ok := false else seen.(i) <- true)
    p;
  !ok

let inverse p =
  let n = Array.length p in
  let q = Array.make n 0 in
  for k = 0 to n - 1 do
    q.(p.(k)) <- k
  done;
  q

(* y.(k) = x.(p.(k)) *)
let apply_vec p x =
  if Array.length p <> Array.length x then invalid_arg "Perm.apply_vec";
  Array.map (fun i -> x.(i)) p

(* Inverse application: y.(p.(k)) = x.(k). *)
let apply_inv_vec p x =
  if Array.length p <> Array.length x then invalid_arg "Perm.apply_inv_vec";
  let y = Array.make (Array.length x) 0.0 in
  Array.iteri (fun k i -> y.(i) <- x.(k)) p;
  y

let compose p q = Array.map (fun i -> q.(i)) p

(* B = P A P^T for a square matrix stored in full (not triangular) form:
   B.(knew, jnew) = A.(p.(knew), p.(jnew)). *)
let symmetric_permute p (a : Csc.t) =
  if a.Csc.nrows <> a.Csc.ncols then invalid_arg "Perm.symmetric_permute";
  let n = a.Csc.nrows in
  if Array.length p <> n then invalid_arg "Perm.symmetric_permute: size";
  let pinv = inverse p in
  let tr = Triplet.create ~nrows:n ~ncols:n () in
  Csc.iter a (fun i j v -> Triplet.add tr pinv.(i) pinv.(j) v);
  Csc.of_triplet tr

let random rng n =
  let p = identity n in
  Utils.Rng.shuffle rng p;
  p
