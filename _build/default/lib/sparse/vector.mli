(** Dense-vector helpers and the sparse right-hand-side representation
    consumed by the triangular-solve inspectors. *)

val dot : float array -> float array -> float
(** Inner product; raises on length mismatch. *)

val axpy : float -> float array -> float array -> unit
(** [axpy alpha x y] performs [y <- y + alpha * x] in place. *)

val norm2 : float array -> float
(** Euclidean norm. *)

val norm_inf : float array -> float
(** Infinity norm. *)

val sub : float array -> float array -> float array
(** Elementwise difference [a - b]. *)

type sparse = {
  n : int;  (** logical dimension *)
  indices : int array;  (** nonzero positions, strictly increasing *)
  values : float array;  (** matching values *)
}
(** A sparse vector: the pattern ([indices]) is the symbolic input to the
    reach-set inspector; the values feed the numeric phase. *)

val sparse_of_dense : float array -> sparse
(** Extract the nonzero pattern and values of a dense vector. *)

val sparse_to_dense : sparse -> float array
(** Scatter into a fresh dense vector of length [n]. *)

val sparse_nnz : sparse -> int
