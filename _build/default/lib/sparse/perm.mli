(** Permutations, in the new-index -> old-index convention: applying [p] to
    a vector [x] yields [y] with [y.(k) = x.(p.(k))] (i.e. [y = P x] where
    row [k] of [P] has its 1 in column [p.(k)]). Fill-reducing orderings in
    {!Ordering} return permutations in this convention. *)

type t = int array

val identity : int -> t

val is_valid : t -> bool
(** True when the array is a bijection on [\[0, n)]. *)

val inverse : t -> t
(** [inverse p] satisfies [(inverse p).(p.(k)) = k]. *)

val apply_vec : t -> float array -> float array
(** [apply_vec p x] is [y] with [y.(k) = x.(p.(k))]. *)

val apply_inv_vec : t -> float array -> float array
(** Inverse application: returns [y] with [y.(p.(k)) = x.(k)]. *)

val compose : t -> t -> t
(** [(compose p q).(k) = q.(p.(k))]: apply [q] after [p]'s relabeling (used
    to chain a fill-reducing ordering with an etree postorder). *)

val symmetric_permute : t -> Csc.t -> Csc.t
(** [symmetric_permute p a] is [P A P^T] for a square matrix stored in full
    (not triangular) form: entry [(k, j)] of the result is
    [a.(p.(k), p.(j))]. *)

val random : Utils.Rng.t -> int -> t
(** Uniformly random permutation (deterministic given the RNG state). *)
