(* Dense-vector helpers plus a sparse right-hand-side representation
   (pattern + values), which is what the triangular-solve inspector consumes. *)

let dot a b =
  if Array.length a <> Array.length b then invalid_arg "Vector.dot: length";
  let s = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    s := !s +. (a.(i) *. b.(i))
  done;
  !s

let axpy alpha x y =
  if Array.length x <> Array.length y then invalid_arg "Vector.axpy: length";
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (alpha *. x.(i))
  done

let norm2 a = sqrt (dot a a)

let norm_inf a = Array.fold_left (fun m x -> Float.max m (Float.abs x)) 0.0 a

let sub a b = Array.init (Array.length a) (fun i -> a.(i) -. b.(i))

(* Sparse vector: indices sorted increasing, paired with values. *)
type sparse = { n : int; indices : int array; values : float array }

let sparse_of_dense x =
  let idx = ref [] and vals = ref [] in
  for i = Array.length x - 1 downto 0 do
    if x.(i) <> 0.0 then begin
      idx := i :: !idx;
      vals := x.(i) :: !vals
    end
  done;
  { n = Array.length x; indices = Array.of_list !idx; values = Array.of_list !vals }

let sparse_to_dense s =
  let x = Array.make s.n 0.0 in
  Array.iteri (fun k i -> x.(i) <- s.values.(k)) s.indices;
  x

let sparse_nnz s = Array.length s.indices
