#!/bin/sh
# Tier-1 verification: build, test suite, dune-file formatting.
# Run from the repository root. Mirrors what reviewers run locally.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== dune build @fmt =="
dune build @fmt

echo "== steady-state allocation gate =="
# The plan layer's contract: repeated in-place execution allocates nothing.
# The steady bench section writes BENCH_steady.json with a precomputed
# verdict over every suite problem; fail CI if any path allocated or got
# slower than its first call.
dune exec bench/main.exe -- --quick --only steady
grep -q '"all_zero_alloc":true' BENCH_steady.json || {
  echo "FAIL: nonzero steady-state allocation in BENCH_steady.json" >&2
  exit 1
}
grep -q '"steady_not_slower":true' BENCH_steady.json || {
  echo "FAIL: steady-state slower than first call in BENCH_steady.json" >&2
  exit 1
}

echo "CI OK"
