#!/bin/sh
# Tier-1 verification: build, test suite, dune-file formatting.
# Run from the repository root. Mirrors what reviewers run locally.
set -eu
cd "$(dirname "$0")/.."

echo "== C compiler check =="
# The gcc round-trip tests and the native backend need a C compiler. The
# test suite skips those groups visibly when none exists, but CI must not
# silently lose that coverage: require cc/gcc/clang (or $SYMPILER_CC)
# unless SYMPILER_ALLOW_NO_CC=1 explicitly waives it — then the waived
# gates print an explicit "skipped: no cc" line instead of passing.
have_cc=1
if [ -n "${SYMPILER_CC:-}" ]; then
  command -v "$SYMPILER_CC" > /dev/null 2>&1 || have_cc=0
else
  command -v cc > /dev/null 2>&1 || command -v gcc > /dev/null 2>&1 \
    || command -v clang > /dev/null 2>&1 || have_cc=0
fi
if [ "$have_cc" = "0" ]; then
  if [ "${SYMPILER_ALLOW_NO_CC:-0}" = "1" ]; then
    echo "skipped: no cc (SYMPILER_ALLOW_NO_CC=1 set; round-trip and native gates will skip)"
  else
    echo "FAIL: no C compiler (cc/gcc/clang on PATH, or \$SYMPILER_CC)." >&2
    echo "      Set SYMPILER_ALLOW_NO_CC=1 to waive explicitly." >&2
    exit 1
  fi
fi

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== test suite under forced domain counts =="
# The parallel runtime must give bitwise-identical results however the
# pool is sized; SYMPILER_NDOMAINS overrides every default sizing
# decision. Run through `dune exec` (not `dune runtest`, whose cache
# ignores the environment).
for nd in 1 4; do
  echo "-- SYMPILER_NDOMAINS=$nd --"
  SYMPILER_NDOMAINS=$nd dune exec test/main.exe > /dev/null || {
    echo "FAIL: test suite under SYMPILER_NDOMAINS=$nd" >&2
    exit 1
  }
done

echo "== dune build @fmt =="
dune build @fmt

echo "== steady-state allocation gate =="
# The plan layer's contract: repeated in-place execution allocates nothing.
# The steady bench section writes BENCH_steady.json with a precomputed
# verdict over every suite problem; fail CI if any path allocated or got
# slower than its first call.
dune exec bench/main.exe -- --quick --only steady
grep -q '"all_zero_alloc":true' BENCH_steady.json || {
  echo "FAIL: nonzero steady-state allocation in BENCH_steady.json" >&2
  exit 1
}
grep -q '"steady_not_slower":true' BENCH_steady.json || {
  echo "FAIL: steady-state slower than first call in BENCH_steady.json" >&2
  exit 1
}

echo "== native backend gate =="
# Compiled-C executors must race the OCaml ones without losing: the native
# bench section gates native-not-slower on trisolve and Cholesky, the
# .so-cache reload (a cache hit must not re-invoke the C compiler), and
# zero allocation per native call.
if [ "$have_cc" = "1" ]; then
  dune exec bench/main.exe -- --quick --only native
  for verdict in native_not_slower_trisolve native_not_slower_cholesky \
    cache_hit_no_recompile native_zero_alloc; do
    grep -q "\"$verdict\":true" BENCH_native.json || {
      echo "FAIL: $verdict is false in BENCH_native.json" >&2
      exit 1
    }
  done
else
  # Still run the section: it must degrade to an explicit skip marker,
  # never to a silently-green verdict.
  dune exec bench/main.exe -- --quick --only native
  grep -q '"skipped":"no cc"' BENCH_native.json || {
    echo "FAIL: native section without a compiler must write the skip marker" >&2
    exit 1
  }
  echo "skipped: no cc"
fi

echo "== tracing-disabled overhead gate =="
# Structured tracing must be free when off: the trace bench section
# measures the disabled begin/end pair cost and fails its verdict if the
# steady path's span pairs would cost more than 2% of a steady call.
dune exec bench/main.exe -- --quick --only trace
grep -q '"disabled_overhead_ok":true' BENCH_trace.json || {
  echo "FAIL: tracing-disabled overhead exceeds 2% in BENCH_trace.json" >&2
  exit 1
}

echo "== parallel runtime gate =="
# The persistent pool's contract on the single-core CI container: steady
# parallel calls allocate nothing, results are bitwise-identical across
# domain counts, and dispatching through the pool beats spawning domains
# per level on the largest benched problem.
dune exec bench/main.exe -- --quick --only parallel
for verdict in all_zero_alloc bitwise_across_ndomains \
  pool_beats_spawn_on_largest; do
  grep -q "\"$verdict\":true" BENCH_parallel.json || {
    echo "FAIL: $verdict is false in BENCH_parallel.json" >&2
    exit 1
  }
done

echo "== ordering gate =="
# Fill-reducing orderings as a compilation stage: AMD must stay within
# tolerance of the exact-degree greedy oracle on every suite problem,
# improve on the natural ordering for every mesh/grid problem, and not be
# slower than the greedy oracle on the largest benched grid; the ordered
# facade path must stay allocation-free in steady state and produce
# factors bitwise-identical to a manually pre-permuted compile.
dune exec bench/main.exe -- --quick --only ordering
for verdict in amd_fill_within_tolerance amd_beats_natural_on_meshes \
  amd_not_slower_than_greedy_on_largest ordered_steady_zero_alloc \
  ordered_bitwise_vs_manual verdict; do
  grep -q "\"$verdict\":true" BENCH_ordering.json || {
    echo "FAIL: $verdict is false in BENCH_ordering.json" >&2
    exit 1
  }
done

echo "== metrics gate =="
# The labeled metrics registry must be serving-grade: enabling it costs
# <= 2% on the steady refactor path, histogram percentiles track a
# sorted-array oracle to one bucket, 4 domains lose no increments, the
# enabled record path allocates nothing, and the OpenMetrics exposition
# passes the conformance linter. The bench section precomputes one
# verdict over all five.
dune exec bench/main.exe -- --quick --only metrics
grep -q '"verdict":true' BENCH_metrics.json || {
  echo "FAIL: metrics verdict is false in BENCH_metrics.json" >&2
  exit 1
}

echo "== pipeline fusion gate =="
# Whole-DAG pipelines: the fused executor must not be slower than the
# staged baseline (same stage bodies, per-stage copies), must allocate
# nothing per apply, must return bitwise-identical results, and the one
# shared symbolic analysis must compute every artifact at most once.
dune exec bench/main.exe -- --quick --only pipeline
for verdict in fused_not_slower pipeline_zero_alloc \
  fused_bitwise_identical analysis_shared verdict; do
  grep -q "\"$verdict\":true" BENCH_pipeline.json || {
    echo "FAIL: $verdict is false in BENCH_pipeline.json" >&2
    exit 1
  }
done

echo "== rank update/downdate gate =="
# First-class update/downdate on plans: an in-pattern rank-1 update must
# beat a full refactorization on every suite problem (that is the whole
# point of the §3.3 method), the steady update/downdate pair must
# allocate nothing, and a rejected downdate must leave the factor
# bitwise intact. The drift, incremental-bitwise and escalation gates
# fold into the overall verdict.
dune exec bench/main.exe -- --quick --only updown
for verdict in update_faster_than_refactor_below_crossover \
  updown_zero_alloc rollback_preserves_factor verdict; do
  grep -q "\"$verdict\":true" BENCH_updown.json || {
    echo "FAIL: $verdict is false in BENCH_updown.json" >&2
    exit 1
  }
done

echo "== pipeline example gate =="
# The PCG example exits non-zero unless it converges AND the fused and
# staged residual trajectories are bitwise-identical.
dune exec examples/precond_cg.exe > /dev/null || {
  echo "FAIL: examples/precond_cg.exe (convergence or fused/staged divergence)" >&2
  exit 1
}
echo "precond_cg: ok"

echo "== perf_gate smoke =="
# The perf-regression gate itself must work: a self-comparison passes,
# and a synthetically inflated copy (every latency field x3) fails.
scripts/perf_gate check BENCH_metrics.json BENCH_metrics.json || {
  echo "FAIL: perf_gate rejects a self-comparison" >&2
  exit 1
}
scripts/perf_gate check BENCH_pipeline.json BENCH_pipeline.json || {
  echo "FAIL: perf_gate rejects a pipeline self-comparison" >&2
  exit 1
}
scripts/perf_gate check BENCH_updown.json BENCH_updown.json || {
  echo "FAIL: perf_gate rejects an updown self-comparison" >&2
  exit 1
}
scripts/perf_gate inflate BENCH_metrics.json 3.0 _build/BENCH_inflated.json
if scripts/perf_gate check BENCH_metrics.json _build/BENCH_inflated.json \
  > /dev/null 2>&1; then
  echo "FAIL: perf_gate accepted a 3x latency regression" >&2
  exit 1
fi
echo "perf_gate smoke: ok"

echo "== ordered explain smoke =="
# `explain --ordering amd --json` must report the selected ordering and
# the natural-ordering baseline columns on two suite matrices.
for prob in Dubcova2 ecology2; do
  dune exec bin/sympiler_cli.exe -- explain --problem "$prob" \
    --ordering amd --json > "_build/explain_amd_$prob.json"
  for key in '"ordering":"amd"' '"nnz_l_natural"' '"predicted_flops_natural"'; do
    grep -q "$key" "_build/explain_amd_$prob.json" || {
      echo "FAIL: ordered explain JSON for $prob missing $key" >&2
      exit 1
    }
  done
  echo "explain --ordering amd --json $prob: ok"
done

echo "== explain report gate =="
# `sympiler explain --json` must emit parseable JSON with the report's
# key fields on representative suite matrices (one supernodal-leaning,
# one simplicial-leaning).
for prob in msc23052 ecology2; do
  dune exec bin/sympiler_cli.exe -- explain --problem "$prob" --json \
    > "_build/explain_$prob.json"
  if command -v python3 > /dev/null 2>&1; then
    python3 - "_build/explain_$prob.json" << 'EOF'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
keys = ["kernel", "n", "nnz_l", "fill_ratio", "etree_height",
        "col_count_hist", "supernode_width_hist", "level_depth",
        "decisions", "predicted_flops", "executed_flops"]
missing = [k for k in keys if k not in r]
assert not missing, f"explain JSON missing keys: {missing}"
assert r["kernel"] == "cholesky"
assert isinstance(r["decisions"], list) and len(r["decisions"]) >= 2
EOF
  else
    # Fallback without python3: key-presence grep only.
    for key in kernel fill_ratio etree_height decisions executed_flops; do
      grep -q "\"$key\"" "_build/explain_$prob.json" || {
        echo "FAIL: explain JSON for $prob missing \"$key\"" >&2
        exit 1
      }
    done
  fi
  echo "explain --json $prob: ok"
done

if [ "${SYMPILER_LARGE:-0}" = "1" ]; then
  echo "== large tier (opt-in: SYMPILER_LARGE=1) =="
  # 10^6-row readiness: the large-smoke group factors a 10^5-row grid
  # through the facade (zero steady-state allocation, pool-vs-sequential
  # bitwise identity), then the large bench ladder (10^4/10^5/10^6-row
  # grids) measures wall-clock scaling exponents and fails if symbolic
  # analysis is no longer near-linear. Takes ~a minute and ~2 GB of RAM,
  # so it never runs in the default tier.
  dune build @large-smoke
  dune exec bench/main.exe -- --only large
  grep -q '"symbolic_near_linear":true' BENCH_large.json || {
    echo "FAIL: symbolic scaling exponent super-linear in BENCH_large.json" >&2
    exit 1
  }
  grep -q '"numeric_near_linear":true' BENCH_large.json || {
    echo "FAIL: numeric scaling exponent super-linear in BENCH_large.json" >&2
    exit 1
  }
fi

echo "CI OK"
