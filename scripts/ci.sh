#!/bin/sh
# Tier-1 verification: build, test suite, dune-file formatting.
# Run from the repository root. Mirrors what reviewers run locally.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== dune build @fmt =="
dune build @fmt

echo "CI OK"
