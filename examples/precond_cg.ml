(* Preconditioned conjugate gradient with an IC(0) preconditioner, the
   iterative-solver setting of §4.3: "in preconditioned iterative solvers a
   triangular system must be solved per iteration, and often the iterative
   solver must execute thousands of iterations until convergence" — so the
   preconditioner's triangular-solve pattern is fixed across the whole run
   and Sympiler's one-time symbolic cost amortizes.

   The preconditioner apply here is a compiled pipeline
   ([Factor `Ic0 -> Solve]): one shared symbolic analysis serves the
   factorization and both triangular sweeps, and the fused executor runs
   the L and L^T solves as one pass with no intermediate vector. The
   staged executor runs the same stage bodies with per-stage copies — so
   the two CG runs must produce bitwise-identical residual trajectories,
   and this example exits non-zero if they ever diverge (or if CG fails
   to converge).

   Run with: dune exec examples/precond_cg.exe *)

open Sympiler_sparse
open Sympiler_kernels
module Pl = Sympiler.Pipeline

let max_iters = 2000
let tol = 1e-8

(* Plain CG. Returns (iterations, relative residual). *)
let cg a b =
  let n = Array.length b in
  let x = Array.make n 0.0 in
  let r = Array.copy b in
  let p = Array.copy r in
  let ap = Array.make n 0.0 in
  let rs = ref (Stages.dot r r) in
  let b_norm = sqrt (Stages.dot b b) in
  let it = ref 0 in
  while sqrt !rs /. b_norm > tol && !it < max_iters do
    Stages.spmv_into a p ap;
    let alpha = !rs /. Stages.dot p ap in
    (* x <- x + alpha p and r <- r - alpha Ap in one fused sweep *)
    Stages.axpy2_ip ~alpha p ap x r;
    let rs' = Stages.dot r r in
    let beta = rs' /. !rs in
    rs := rs';
    Array.iteri (fun i pi -> p.(i) <- r.(i) +. (beta *. pi)) p;
    incr it
  done;
  (!it, sqrt !rs /. b_norm)

(* PCG with M = L L^T from IC(0), the preconditioner apply abstracted so
   the fused and the staged pipeline executors run the same loop. Returns
   (iterations, relative residual, residual trajectory). *)
let pcg ~apply a b =
  let n = Array.length b in
  let x = Array.make n 0.0 in
  let r = Array.copy b in
  let p = Array.make n 0.0 in
  let ap = Array.make n 0.0 in
  let z0 = apply r in
  Array.blit z0 0 p 0 n;
  let rz = ref (Stages.dot r z0) in
  let b_norm = sqrt (Stages.dot b b) in
  let it = ref 0 in
  let trajectory = ref [ sqrt (Stages.dot r r) /. b_norm ] in
  while sqrt (Stages.dot r r) /. b_norm > tol && !it < max_iters do
    Stages.spmv_into a p ap;
    let alpha = !rz /. Stages.dot p ap in
    Stages.axpy2_ip ~alpha p ap x r;
    (* z is the plan-owned output buffer: consumed before the next apply *)
    let z = apply r in
    let rz' = Stages.dot r z in
    let beta = rz' /. !rz in
    rz := rz';
    Array.iteri (fun i pi -> p.(i) <- z.(i) +. (beta *. pi)) p;
    incr it;
    trajectory := (sqrt (Stages.dot r r) /. b_norm) :: !trajectory
  done;
  (!it, sqrt (Stages.dot r r) /. b_norm, List.rev !trajectory)

let () =
  print_endline "== CG vs IC(0)-preconditioned CG (pipeline apply) ==";
  (* An ill-conditioned-ish Poisson problem (small diagonal shift). *)
  let a = Generators.grid2d ~stencil:`Five ~shift:1e-4 80 80 in
  let a_lower = Csc.lower a in
  let n = a.Csc.ncols in
  let b = Array.init n (fun i -> sin (0.01 *. float_of_int i)) in

  let t0 = Unix.gettimeofday () in
  let it_cg, res_cg = cg a b in
  let t_cg = Unix.gettimeofday () -. t0 in
  Printf.printf "CG:           %4d iterations, residual %.2e, %.1f ms\n" it_cg
    res_cg (t_cg *. 1e3);

  (* One pipeline: the IC(0) factorization and both triangular sweeps
     compiled through one shared symbolic analysis. *)
  let t0 = Unix.gettimeofday () in
  let t = Pl.compile (Pl.factor_solve `Ic0) a_lower in
  let plan = Pl.plan t in
  Pl.factor_ip plan a_lower;
  let t_setup = Unix.gettimeofday () -. t0 in

  let t0 = Unix.gettimeofday () in
  let it_f, res_f, traj_f = pcg ~apply:(fun r -> Pl.execute_ip plan r) a b in
  let t_fused = Unix.gettimeofday () -. t0 in
  Printf.printf
    "PCG (fused):  %4d iterations, residual %.2e, %.1f ms (+%.1f ms setup)\n"
    it_f res_f (t_fused *. 1e3) (t_setup *. 1e3);

  let t0 = Unix.gettimeofday () in
  let it_s, res_s, traj_s =
    pcg ~apply:(fun r -> Pl.staged_execute_ip plan r) a b
  in
  let t_staged = Unix.gettimeofday () -. t0 in
  Printf.printf "PCG (staged): %4d iterations, residual %.2e, %.1f ms\n" it_s
    res_s (t_staged *. 1e3);

  Printf.printf
    "iteration reduction: %.1fx (%d stage boundary fused per apply)\n"
    (float_of_int it_cg /. float_of_int (max 1 it_f))
    (Pl.fused_boundaries t);

  let ok = ref true in
  if traj_f = traj_s && it_f = it_s then
    print_endline
      "OK: fused and staged residual trajectories are bitwise-identical"
  else begin
    print_endline "FAIL: fused and staged trajectories diverged";
    ok := false
  end;
  if res_f <= tol then
    Printf.printf "OK: converged in %d iterations (|r|/|b| = %.2e <= %.0e)\n"
      it_f res_f tol
  else begin
    Printf.printf "FAIL: no convergence after %d iterations (|r|/|b| = %.2e)\n"
      it_f res_f;
    ok := false
  end;
  if it_f < it_cg then print_endline "OK: IC(0) preconditioning pays off"
  else begin
    print_endline "FAIL: preconditioner did not help";
    ok := false
  end;
  if not !ok then exit 1
