(* Quickstart: compile a sparse triangular solve and a sparse Cholesky for a
   fixed sparsity structure, run the numeric phases, and look at the
   generated C.

   Run with: dune exec examples/quickstart.exe *)

open Sympiler_sparse

let () =
  print_endline "== Sympiler quickstart ==\n";

  (* 1. A small SPD system: 2D Poisson grid. *)
  let a = Generators.grid2d ~stencil:`Five 6 6 in
  let a_lower = Csc.lower a in
  Printf.printf "Matrix A: %dx%d, %d nonzeros\n" a.Csc.nrows a.Csc.ncols
    (Csc.nnz a);

  (* 2. Compile Cholesky for A's pattern (symbolic analysis happens here,
     once). *)
  let chol = Sympiler.Cholesky.compile a_lower in
  Printf.printf "Cholesky compiled: %d nnz in L, %.0f flops, variant %s\n"
    chol.Sympiler.Cholesky.nnz_l chol.Sympiler.Cholesky.flops
    (match chol.Sympiler.Cholesky.variant with
    | Sympiler.Cholesky.Supernodal -> "supernodal"
    | Sympiler.Cholesky.Simplicial -> "simplicial");

  (* 3. Numeric factorization + solve — no symbolic work in here. *)
  let b = Array.init a.Csc.ncols (fun i -> 1.0 +. (0.1 *. float_of_int i)) in
  let x = Sympiler.Cholesky.solve chol a_lower b in
  let r = Vector.sub (Csc.spmv a x) b in
  Printf.printf "Solved A x = b: residual %.2e\n" (Vector.norm_inf r);

  (* 4. Values change, pattern does not: refactor without re-analysis. *)
  let a_lower' = Csc.map_values a_lower (fun v -> 1.1 *. v) in
  let x' = Sympiler.Cholesky.solve chol a_lower' b in
  let r' =
    Vector.sub (Csc.spmv (Csc.symmetrize_from_lower a_lower') x') b
  in
  Printf.printf "Re-solved with new values (same pattern): residual %.2e\n"
    (Vector.norm_inf r');

  (* 5. Sparse triangular solve with a sparse right-hand side. *)
  let l = Sympiler.Cholesky.factor chol a_lower in
  let rhs = Generators.sparse_rhs ~seed:7 ~n:a.Csc.ncols ~fill:0.05 () in
  let tri = Sympiler.Trisolve.compile (l, rhs) in
  Printf.printf "\nTrisolve compiled: reach-set %d of %d columns (%.0f flops)\n"
    (Array.length tri.Sympiler.Trisolve.reach)
    a.Csc.ncols tri.Sympiler.Trisolve.flops;
  let y = Sympiler.Trisolve.solve tri rhs in
  let res =
    Vector.sub (Csc.spmv l y) (Vector.sparse_to_dense rhs)
  in
  Printf.printf "Solved L y = b: residual %.2e\n" (Vector.norm_inf res);

  (* 6. The generated C code for this exact structure. *)
  let c = Sympiler.Trisolve.c_code tri in
  print_endline "\nFirst lines of the generated triangular-solve C code:";
  String.split_on_char '\n' c
  |> List.filteri (fun i _ -> i < 12)
  |> List.iter print_endline;
  Printf.printf "... (%d bytes total)\n" (String.length c)
