open Sympiler_sparse
open Sympiler_symbolic
open Sympiler_kernels
open Sympiler_prof

(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (§4), plus the §1.1 motivating numbers and two ablations.

   Default mode follows the paper's methodology: each timing is the median
   of 5 measurements (each measurement averages enough repetitions to fill
   a minimum wall-clock window). `--bechamel` instead runs one
   Bechamel.Test.make per experiment. `--quick` shrinks the measurement
   window, `--only SECTION` runs one section (phases, steady, native,
   trace, parallel, ordering, metrics, pipeline, table2, fig6, fig7,
   fig8, fig9, intro, ablation-threshold, ablation-lowlevel, extensions,
   large). The `pipeline` section writes BENCH_pipeline.json: fused vs
   staged whole-DAG apply latency, allocation, bitwise identity, and the
   shared-analysis ledger. The `updown` section writes BENCH_updown.json:
   rank-1 update_ip latency against a full refactorization (and the
   crossover rank), per-pair allocation, rollback and drift gates, the
   incremental column refactorization, and the escalation path.
   The `metrics` section gates the labeled-registry layer (enabled
   overhead <= 2%, percentile fidelity, cross-domain exactness,
   allocation-freedom, OpenMetrics conformance) and writes
   BENCH_metrics.json. Every BENCH_*.json is stamped with
   schema_version, git_commit, and generated_utc. The
   `native` section writes BENCH_native.json: OCaml vs compiled-C vs
   compiled-C-without-vectorize-annotations steady times for
   trisolve/Cholesky/LDLT, compile+dlopen latency, the .so-cache reload
   experiment, and native-call allocation — or a "skipped: no cc"
   marker when no C compiler exists. The opt-in
   `large` section (`--only large`, or `--large` alongside the default
   sweep) runs the 10^4..10^6-row instances end to end and writes
   BENCH_large.json with wall-clock, max-RSS, and the measured scaling
   exponents over the grid3d ladder. The `trace` section
   gates the
   tracing-disabled overhead of the steady path at 2% and writes
   BENCH_trace.json. The `phases` section additionally writes BENCH_phases.json:
   per-problem symbolic/numeric phase timings, kernel counters, and the
   amortization ratio, via the sympiler_prof observability layer. The
   `steady` section writes BENCH_steady.json: first-call vs steady-state
   plan execution time, GC minor words per steady call, and the
   compilation-cache hit rate. The `parallel` section writes
   BENCH_parallel.json: persistent-pool steady times across domain counts
   against a spawn-per-call baseline driving the same partitioned work.
   The `ordering` section writes BENCH_ordering.json: predicted fill/flops
   under natural/RCM/AMD/greedy-minimum-degree across the raw suite
   matrices, the AMD-vs-greedy tolerance and mesh-improvement verdicts,
   AMD's asymptotic cost against the greedy oracle on growing grids, and
   the ordered facade path's zero-allocation + bitwise-identity gates. *)

let quick = Array.exists (( = ) "--quick") Sys.argv
let use_bechamel = Array.exists (( = ) "--bechamel") Sys.argv

let only =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then None
    else if Sys.argv.(i) = "--only" then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let run_section name = match only with None -> true | Some s -> s = name

let min_window = if quick then 0.05 else 0.2
let reps_outer = if quick then 3 else 5

(* Median-of-[reps_outer]; each measurement averages enough inner
   repetitions to occupy [min_window] seconds. Timed on the profiling
   layer's monotonic clock (immune to NTP slews). *)
let measure (f : unit -> unit) : float =
  let t0 = Prof.now_seconds () in
  f ();
  let once = Prof.now_seconds () -. t0 in
  let inner = max 1 (int_of_float (min_window /. Float.max once 1e-7)) in
  let one () =
    let t0 = Prof.now_seconds () in
    for _ = 1 to inner do
      f ()
    done;
    (Prof.now_seconds () -. t0) /. float_of_int inner
  in
  let ts = Array.init reps_outer (fun _ -> one ()) in
  Array.sort compare ts;
  ts.(reps_outer / 2)

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let section_note s = print_string s

(* ---------------------------------------------------------------- *)
(* Every BENCH_*.json carries provenance: a schema version, the commit
   the numbers came from, and the generation time (UTC). scripts/perf_gate
   keys on these to refuse comparisons across schema versions. *)

let bench_schema_version = 1

(* HEAD commit read straight from .git (no subprocess): either a detached
   hash or a ref indirection, "unknown" outside a work tree. *)
let git_commit () =
  let read f =
    try Some (String.trim (In_channel.with_open_text f In_channel.input_all))
    with _ -> None
  in
  match read ".git/HEAD" with
  | Some s when String.starts_with ~prefix:"ref: " s -> (
      let r = String.sub s 5 (String.length s - 5) in
      match read (".git/" ^ r) with Some c -> c | None -> "unknown")
  | Some c -> c
  | None -> "unknown"

let iso8601_utc () =
  let t = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
    (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
    t.Unix.tm_sec

let write_bench file doc =
  let doc =
    match doc with
    | Prof.Json.Obj fields ->
        Prof.Json.Obj
          (("schema_version", Prof.Json.Int bench_schema_version)
          :: ("git_commit", Prof.Json.Str (git_commit ()))
          :: ("generated_utc", Prof.Json.Str (iso8601_utc ()))
          :: fields)
    | other -> other
  in
  Out_channel.with_open_text file (fun oc ->
      Out_channel.output_string oc (Prof.Json.to_string doc);
      Out_channel.output_char oc '\n')

(* ---------------------------------------------------------------- *)
(* Shared per-problem data, built lazily and cached.                  *)

type prob_data = {
  p : Sympiler.Suite.prepared;
  l_factor : Csc.t; (* numeric Cholesky factor, input for trisolve benches *)
  rhs : Vector.sparse;
  tri_compiled : Trisolve_sympiler.compiled;
  tri_flops : float;
}

let prob_cache : (int, prob_data) Hashtbl.t = Hashtbl.create 16

let prob id =
  match Hashtbl.find_opt prob_cache id with
  | Some d -> d
  | None ->
      let p = Sympiler.Suite.problem id in
      let t = Sympiler.Cholesky.compile p.Sympiler.Suite.a_lower in
      let l_factor = Sympiler.Cholesky.factor t p.Sympiler.Suite.a_lower in
      let rhs = Sympiler.Suite.rhs_for p in
      let tri_compiled = Trisolve_sympiler.compile l_factor rhs in
      let d =
        {
          p;
          l_factor;
          rhs;
          tri_compiled;
          tri_flops = tri_compiled.Trisolve_sympiler.flops;
        }
      in
      Hashtbl.replace prob_cache id d;
      d

let ids = List.init 11 (fun i -> i + 1)

(* ---------------------------------------------------------------- *)
(* Table 2 *)

let table2 () =
  header "Table 2: matrix set (synthetic stand-ins, see DESIGN.md)";
  Printf.printf "%-3s %-15s %9s %10s %-22s %s\n" "ID" "Name" "n" "nnz(A)"
    "ordering" "structure";
  List.iter
    (fun id ->
      let d = prob id in
      let a = d.p.Sympiler.Suite.a_full in
      Printf.printf "%-3d %-15s %9d %10d %-22s %s\n" id d.p.Sympiler.Suite.name
        a.Csc.ncols (Csc.nnz a) d.p.Sympiler.Suite.ordering
        d.p.Sympiler.Suite.descr)
    ids;
  section_note
    "(paper: 11 SuiteSparse SPD matrices, n 13.7k-1M, nnz 0.68M-5.1M;\n\
    \ scaled down ~8-16x to fit the single-core container - DESIGN.md)\n"

(* ---------------------------------------------------------------- *)
(* Figure 6: triangular solve GFLOP/s *)

let fig6 () =
  header "Figure 6: sparse triangular solve GFLOP/s (sparse RHS)";
  Printf.printf "%-3s %-15s %8s | %8s %8s %8s %8s | %s\n" "ID" "Name" "flops"
    "Eigen" "VS-Blk" "+VIPrune" "+LowLvl" "Sympiler/Eigen";
  let speedups = ref [] in
  List.iter
    (fun id ->
      let d = prob id in
      let l = d.l_factor and b = d.rhs in
      let x = Vector.sparse_to_dense b in
      let load () =
        Array.iteri (fun i _ -> x.(i) <- 0.0) x;
        Array.iteri (fun k i -> x.(i) <- b.Vector.values.(k)) b.Vector.indices
      in
      let bench f =
        measure (fun () ->
            load ();
            f ())
      in
      let t_eigen = bench (fun () -> Trisolve_ref.library_ip l x) in
      let c = d.tri_compiled in
      let t_vs = bench (fun () -> Trisolve_sympiler.solve_vs_block_ip c x) in
      let t_vsvi = bench (fun () -> Trisolve_sympiler.solve_vs_vi_ip c x) in
      let t_full = bench (fun () -> Trisolve_sympiler.solve_full_ip c x) in
      let gf t = d.tri_flops /. t /. 1e9 in
      let sp = t_eigen /. t_full in
      speedups := sp :: !speedups;
      Printf.printf "%-3d %-15s %8.0f | %8.3f %8.3f %8.3f %8.3f | %.2fx\n" id
        d.p.Sympiler.Suite.name d.tri_flops (gf t_eigen) (gf t_vs) (gf t_vsvi)
        (gf t_full) sp)
    ids;
  let sp = !speedups in
  let avg = List.fold_left ( +. ) 0.0 sp /. float_of_int (List.length sp) in
  Printf.printf "Sympiler(full)/Eigen speedup: min %.2fx avg %.2fx max %.2fx\n"
    (List.fold_left Float.min infinity sp)
    avg
    (List.fold_left Float.max 0.0 sp);
  section_note "(paper: 1.2x-1.7x over Eigen, average 1.49x)\n"

(* ---------------------------------------------------------------- *)
(* Figure 7: Cholesky GFLOP/s *)

let fig7 () =
  header "Figure 7: Cholesky factorization GFLOP/s (numeric phase)";
  Printf.printf "%-3s %-15s %9s %6s | %8s %8s %8s %8s | %s\n" "ID" "Name"
    "flops(M)" "avgw" "Eigen" "CHOLMOD" "VS-Blk" "+LowLvl" "variant";
  let sp_cholmod = ref [] and sp_eigen = ref [] in
  List.iter
    (fun id ->
      let d = prob id in
      let al = d.p.Sympiler.Suite.a_lower in
      let an_e = Cholesky_ref.Eigen.analyze al in
      let t_eigen =
        measure (fun () -> ignore (Cholesky_ref.Eigen.factor an_e al))
      in
      let an_c = Cholesky_supernodal.Cholmod.analyze al in
      let t_cholmod =
        measure (fun () -> ignore (Cholesky_supernodal.Cholmod.factor an_c al))
      in
      let avgw = Supernodes.avg_width an_c.Cholesky_supernodal.sn in
      (* Sympiler: the facade decides supernodal vs simplicial by the
         VS-Block threshold, as the paper's Sympiler skips VS-Block for
         matrices with small supernodes (3,4,5,7 there). *)
      let t_sym = Sympiler.Cholesky.compile al in
      let variant =
        match t_sym.Sympiler.Cholesky.variant with
        | Sympiler.Cholesky.Supernodal -> "supernodal"
        | Sympiler.Cholesky.Simplicial -> "simplicial"
      in
      let t_vsblk, t_full =
        match t_sym.Sympiler.Cholesky.variant with
        | Sympiler.Cholesky.Supernodal ->
            let cg =
              Cholesky_supernodal.Sympiler.compile ~specialized:false al
            in
            ( measure (fun () ->
                  ignore (Cholesky_supernodal.Sympiler.factor cg al)),
              measure (fun () -> ignore (Sympiler.Cholesky.factor t_sym al)) )
        | Sympiler.Cholesky.Simplicial ->
            let t =
              measure (fun () -> ignore (Sympiler.Cholesky.factor t_sym al))
            in
            (t, t)
      in
      let fl = t_sym.Sympiler.Cholesky.flops in
      let gf t = fl /. t /. 1e9 in
      sp_cholmod := (t_cholmod /. t_full) :: !sp_cholmod;
      sp_eigen := (t_eigen /. t_full) :: !sp_eigen;
      Printf.printf "%-3d %-15s %9.1f %6.2f | %8.3f %8.3f %8.3f %8.3f | %s\n" id
        d.p.Sympiler.Suite.name (fl /. 1e6) avgw (gf t_eigen) (gf t_cholmod)
        (gf t_vsblk) (gf t_full) variant)
    ids;
  let avg l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
  Printf.printf
    "Sympiler speedup: vs Eigen avg %.2fx (max %.2fx), vs CHOLMOD avg %.2fx (max %.2fx)\n"
    (avg !sp_eigen)
    (List.fold_left Float.max 0.0 !sp_eigen)
    (avg !sp_cholmod)
    (List.fold_left Float.max 0.0 !sp_cholmod);
  section_note
    "(paper: up to 6.3x over Eigen, up to 2.4x over CHOLMOD; avg 3.8x / 1.5x)\n"

(* ---------------------------------------------------------------- *)
(* Figure 8: triangular solve symbolic+numeric, normalized to Eigen *)

let fig8 () =
  header "Figure 8: trisolve symbolic+numeric time / Eigen time (lower=better)";
  Printf.printf "%-3s %-15s | %9s %9s %9s |\n" "ID" "Name" "numeric" "symbolic"
    "sym+num";
  let totals = ref [] in
  List.iter
    (fun id ->
      let d = prob id in
      let l = d.l_factor and b = d.rhs in
      let x = Vector.sparse_to_dense b in
      let load () =
        Array.iteri (fun i _ -> x.(i) <- 0.0) x;
        Array.iteri (fun k i -> x.(i) <- b.Vector.values.(k)) b.Vector.indices
      in
      let t_eigen =
        measure (fun () ->
            load ();
            Trisolve_ref.library_ip l x)
      in
      (* Paper accounting (§4.3): the symbolic inspector is the reach-set
         DFS; everything else in [compile] (supernode detection, planning)
         is code generation, reported separately as a multiple of the
         numeric solve (paper: 6-197x). *)
      let t_symbolic =
        measure (fun () -> ignore (Dep_graph.reach l b.Vector.indices))
      in
      let t0 = Prof.now_seconds () in
      let c = Trisolve_sympiler.compile l b in
      let t_compile = Prof.now_seconds () -. t0 in
      let t_codegen = Float.max 0.0 (t_compile -. t_symbolic) in
      let t_numeric =
        measure (fun () ->
            load ();
            Trisolve_sympiler.solve_full_ip c x)
      in
      let r_num = t_numeric /. t_eigen in
      let r_sym = t_symbolic /. t_eigen in
      totals := (r_num +. r_sym) :: !totals;
      Printf.printf "%-3d %-15s | %9.2f %9.2f %9.2f |  codegen = %5.0fx solve\n"
        id d.p.Sympiler.Suite.name r_num r_sym (r_num +. r_sym)
        (t_codegen /. t_numeric))
    ids;
  let avg = List.fold_left ( +. ) 0.0 !totals /. 11.0 in
  Printf.printf "average symbolic+numeric / Eigen: %.2fx\n" avg;
  section_note
    "(paper: Sympiler sym+num averages 1.27x Eigen's time, and code\n\
    \ generation + compilation costs 6-197x the numeric solve; both\n\
    \ amortize across repeated solves with a fixed pattern)\n"

(* ---------------------------------------------------------------- *)
(* Figure 9: Cholesky symbolic+numeric, normalized to Eigen total *)

let fig9 () =
  header
    "Figure 9: Cholesky symbolic+numeric time / Eigen total (lower=better)";
  Printf.printf "%-3s %-15s | %7s %7s | %7s %7s | %7s %7s | %s\n" "ID" "Name"
    "Eig.num" "Eig.sym" "Chm.num" "Chm.sym" "Sym.num" "Sym.sym" "totals";
  List.iter
    (fun id ->
      let d = prob id in
      let al = d.p.Sympiler.Suite.a_lower in
      let sym_time f =
        let ts =
          Array.init 3 (fun _ ->
              let t0 = Prof.now_seconds () in
              ignore (Sys.opaque_identity (f ()));
              Prof.now_seconds () -. t0)
        in
        Array.sort compare ts;
        ts.(1)
      in
      let an_e = Cholesky_ref.Eigen.analyze al in
      let eig_sym = sym_time (fun () -> Cholesky_ref.Eigen.analyze al) in
      let eig_num =
        measure (fun () -> ignore (Cholesky_ref.Eigen.factor an_e al))
      in
      let an_c = Cholesky_supernodal.Cholmod.analyze al in
      let chm_sym = sym_time (fun () -> Cholesky_supernodal.Cholmod.analyze al) in
      let chm_num =
        measure (fun () -> ignore (Cholesky_supernodal.Cholmod.factor an_c al))
      in
      let t_sym = Sympiler.Cholesky.compile al in
      let sym_sym = sym_time (fun () -> Sympiler.Cholesky.compile al) in
      let sym_num =
        measure (fun () -> ignore (Sympiler.Cholesky.factor t_sym al))
      in
      let base = eig_num +. eig_sym in
      let r v = v /. base in
      Printf.printf
        "%-3d %-15s | %7.2f %7.2f | %7.2f %7.2f | %7.2f %7.2f | eig %.2f chm %.2f sym %.2f\n"
        id d.p.Sympiler.Suite.name (r eig_num) (r eig_sym) (r chm_num)
        (r chm_sym) (r sym_num) (r sym_sym)
        (r (eig_num +. eig_sym))
        (r (chm_num +. chm_sym))
        (r (sym_num +. sym_sym)))
    ids;
  section_note
    "(paper: Sympiler's accumulated symbolic+numeric time beats both\n\
    \ libraries in nearly all cases)\n"

(* ---------------------------------------------------------------- *)
(* §1.1 motivating numbers *)

let intro () =
  header
    "Section 1.1: trisolve speedup vs naive (Fig 1b) and library (Fig 1c)";
  Printf.printf "%-3s %-15s | %10s %10s\n" "ID" "Name" "vs naive" "vs library";
  let vs_naive = ref [] and vs_lib = ref [] in
  List.iter
    (fun id ->
      let d = prob id in
      let l = d.l_factor and b = d.rhs in
      let x = Vector.sparse_to_dense b in
      let load () =
        Array.iteri (fun i _ -> x.(i) <- 0.0) x;
        Array.iteri (fun k i -> x.(i) <- b.Vector.values.(k)) b.Vector.indices
      in
      let t_naive =
        measure (fun () ->
            load ();
            Trisolve_ref.naive_ip l x)
      in
      let t_lib =
        measure (fun () ->
            load ();
            Trisolve_ref.library_ip l x)
      in
      let c = d.tri_compiled in
      let t_full =
        measure (fun () ->
            load ();
            Trisolve_sympiler.solve_full_ip c x)
      in
      vs_naive := (t_naive /. t_full) :: !vs_naive;
      vs_lib := (t_lib /. t_full) :: !vs_lib;
      Printf.printf "%-3d %-15s | %9.1fx %9.2fx\n" id d.p.Sympiler.Suite.name
        (t_naive /. t_full) (t_lib /. t_full))
    ids;
  let stats l =
    ( List.fold_left Float.min infinity l,
      List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l),
      List.fold_left Float.max 0.0 l )
  in
  let n0, n1, n2 = stats !vs_naive and l0, l1, l2 = stats !vs_lib in
  Printf.printf
    "vs naive:   min %.1fx avg %.1fx max %.1fx  (paper: 8.4x / 13.6x / 19x)\n"
    n0 n1 n2;
  Printf.printf
    "vs library: min %.2fx avg %.2fx max %.2fx (paper: 1.2x / 1.3x / 1.7x)\n"
    l0 l1 l2

(* ---------------------------------------------------------------- *)
(* Ablation A1: the VS-Block threshold (§4.2; width-based here). *)

let ablation_threshold () =
  header "Ablation A1: supernodal vs simplicial Cholesky by avg supernode width";
  Printf.printf "%-3s %-15s %6s | %9s %9s | %s\n" "ID" "Name" "avgw" "supern."
    "simplic." "winner";
  List.iter
    (fun id ->
      let d = prob id in
      let al = d.p.Sympiler.Suite.a_lower in
      let cs = Cholesky_supernodal.Sympiler.compile al in
      let t_sn =
        measure (fun () -> ignore (Cholesky_supernodal.Sympiler.factor cs al))
      in
      let cd = Cholesky_ref.Decoupled.compile al in
      let t_si =
        measure (fun () -> ignore (Cholesky_ref.Decoupled.factor cd al))
      in
      let avgw =
        Supernodes.avg_width
          cs.Cholesky_supernodal.Sympiler.an.Cholesky_supernodal.sn
      in
      Printf.printf "%-3d %-15s %6.2f | %8.1fms %8.1fms | %s\n" id
        d.p.Sympiler.Suite.name avgw (t_sn *. 1e3) (t_si *. 1e3)
        (if t_sn < t_si then "supernodal" else "simplicial"))
    ids;
  section_note
    "(motivates the facade's vs_block_threshold: VS-Block pays off only\n\
    \ above a minimum average supernode width, mirroring the paper's\n\
    \ hand-tuned threshold of 160)\n"

(* Ablation A2: low-level transformations on/off. *)

let ablation_lowlevel () =
  header "Ablation A2: effect of specialized kernels + peeling";
  Printf.printf "%-3s %-15s | %10s %10s %7s | %10s %10s %7s\n" "ID" "Name"
    "tri-gen" "tri-spec" "gain" "chol-gen" "chol-spec" "gain";
  List.iter
    (fun id ->
      let d = prob id in
      let l = d.l_factor and b = d.rhs in
      ignore l;
      let x = Vector.sparse_to_dense b in
      let load () =
        Array.iteri (fun i _ -> x.(i) <- 0.0) x;
        Array.iteri (fun k i -> x.(i) <- b.Vector.values.(k)) b.Vector.indices
      in
      let c = d.tri_compiled in
      let t_gen =
        measure (fun () ->
            load ();
            Trisolve_sympiler.solve_vs_vi_ip c x)
      in
      let t_spec =
        measure (fun () ->
            load ();
            Trisolve_sympiler.solve_full_ip c x)
      in
      let al = d.p.Sympiler.Suite.a_lower in
      let cg = Cholesky_supernodal.Sympiler.compile ~specialized:false al in
      let cspec = Cholesky_supernodal.Sympiler.compile ~specialized:true al in
      let t_cg =
        measure (fun () -> ignore (Cholesky_supernodal.Sympiler.factor cg al))
      in
      let t_cs =
        measure (fun () ->
            ignore (Cholesky_supernodal.Sympiler.factor cspec al))
      in
      Printf.printf
        "%-3d %-15s | %8.2fus %8.2fus %6.2fx | %8.1fms %8.1fms %6.2fx\n" id
        d.p.Sympiler.Suite.name (t_gen *. 1e6) (t_spec *. 1e6)
        (t_gen /. t_spec) (t_cg *. 1e3) (t_cs *. 1e3) (t_cg /. t_cs))
    ids

(* ---------------------------------------------------------------- *)
(* Extensions: §3.3 methods beyond the paper's figures. *)

let extensions () =
  header "Extensions: rank-1 update, factorization variants, parallel trisolve";
  (* Rank-1 update vs full refactorization: the method's entire point. *)
  Printf.printf "%-3s %-15s | %10s %10s %8s | %8s
" "ID" "Name" "refactor"
    "rank-1 upd" "speedup" "path len";
  List.iter
    (fun id ->
      let d = prob id in
      let al = d.p.Sympiler.Suite.a_lower in
      let fill = Fill_pattern.analyze al in
      let parent = fill.Fill_pattern.parent in
      let t_sym = Sympiler.Cholesky.compile al in
      let l = Sympiler.Cholesky.factor t_sym al in
      let w = Rank_update.vector_like l ~j:(al.Csc.ncols / 3) ~scale:0.3 in
      let cu = Rank_update.compile ~parent w in
      let t_refactor =
        measure (fun () -> ignore (Sympiler.Cholesky.factor t_sym al))
      in
      let t_update =
        measure (fun () ->
            Rank_update.apply cu l w;
            Rank_update.apply ~sigma:(-1.0) cu l w)
      in
      (* one update+downdate pair = 2 rank-1 operations *)
      let per_op = t_update /. 2.0 in
      Printf.printf "%-3d %-15s | %8.2fms %8.3fms %7.0fx | %8d
" id
        d.p.Sympiler.Suite.name (t_refactor *. 1e3) (per_op *. 1e3)
        (t_refactor /. per_op)
        (Array.length cu.Rank_update.path))
    ids;
  (* Factorization variants on one representative problem. *)
  let d = prob 6 in
  let al = d.p.Sympiler.Suite.a_lower in
  let cl = Cholesky_leftlooking.compile al in
  let t_left = measure (fun () -> ignore (Cholesky_leftlooking.factor cl al)) in
  let cd = Cholesky_ref.Decoupled.compile al in
  let t_up = measure (fun () -> ignore (Cholesky_ref.Decoupled.factor cd al)) in
  let fl = cl.Cholesky_leftlooking.flops in
  Printf.printf
    "
Figure 4 left-looking vs up-looking (msc23052): %.3f vs %.3f GFLOP/s
"
    (fl /. t_left /. 1e9) (fl /. t_up /. 1e9);
  (* Level-set statistics for the parallel trisolve. *)
  Printf.printf "
Level-set trisolve schedules (wavefront parallelism):
";
  List.iter
    (fun id ->
      let d = prob id in
      let c = Trisolve_parallel.compile d.l_factor in
      let widths =
        Array.init c.Trisolve_parallel.nlevels (fun l ->
            c.Trisolve_parallel.level_ptr.(l + 1)
            - c.Trisolve_parallel.level_ptr.(l))
      in
      let maxw = Array.fold_left max 0 widths in
      Printf.printf
        "  %-15s n=%6d levels=%5d max width=%6d avg width=%7.1f
"
        d.p.Sympiler.Suite.name d.l_factor.Csc.ncols
        c.Trisolve_parallel.nlevels maxw
        (float_of_int d.l_factor.Csc.ncols
        /. float_of_int c.Trisolve_parallel.nlevels))
    ids

(* ---------------------------------------------------------------- *)
(* Phase observability: per-problem symbolic vs numeric breakdown with
   kernel counters, written to BENCH_phases.json. This is the measurement
   substrate for the paper's central claim — symbolic analysis is paid once
   and amortized over numeric executions — so the file records, for
   triangular solve and Cholesky, both phase timings and the amortization
   ratio (symbolic time / one numeric execution). *)

let phase_ids = [ 2; 6; 9 ]

let phases () =
  header "Phase breakdown: symbolic vs numeric (writes BENCH_phases.json)";
  Printf.printf "%-3s %-15s %-9s | %10s %10s %9s | %s\n" "ID" "Name" "kernel"
    "symbolic" "numeric" "amortize" "counters";
  let problems =
    List.map
      (fun id ->
        let d = prob id in
        let name = d.p.Sympiler.Suite.name in
        let a = d.p.Sympiler.Suite.a_full in
        let report kernel sym_s num_s counters =
          let amort = sym_s /. num_s in
          Printf.printf "%-3d %-15s %-9s | %9.1fus %9.2fus %8.0fx | %s\n" id
            name kernel (sym_s *. 1e6) (num_s *. 1e6) amort
            (Prof.Json.to_string counters);
          Prof.Json.Obj
            [
              ("symbolic_seconds", Prof.Json.Float sym_s);
              ("numeric_seconds", Prof.Json.Float num_s);
              ("amortization_ratio", Prof.Json.Float amort);
              ("counters", counters);
            ]
        in
        (* Triangular solve: fresh compile under the profiler, one counted
           numeric solve, then an unprofiled median for the timing. *)
        let l = d.l_factor and b = d.rhs in
        let x = Vector.sparse_to_dense b in
        let load () =
          Array.iteri (fun i _ -> x.(i) <- 0.0) x;
          Array.iteri (fun k i -> x.(i) <- b.Vector.values.(k)) b.Vector.indices
        in
        Prof.reset ();
        Prof.enable ();
        let c = Prof.time "symbolic" (fun () -> Trisolve_sympiler.compile l b) in
        let tri_sym = Prof.scope_seconds "symbolic" in
        load ();
        Prof.time "numeric" (fun () -> Trisolve_sympiler.solve_full_ip c x);
        let tri_counters = Prof.counters_json () in
        Prof.disable ();
        let tri_num =
          measure (fun () ->
              load ();
              Trisolve_sympiler.solve_full_ip c x)
        in
        let tri = report "trisolve" tri_sym tri_num tri_counters in
        (* Cholesky: the facade times its own "symbolic"/"numeric" scopes. *)
        let al = d.p.Sympiler.Suite.a_lower in
        Prof.reset ();
        Prof.enable ();
        let t = Sympiler.Cholesky.compile al in
        let chol_sym = Prof.scope_seconds "symbolic" in
        ignore (Sympiler.Cholesky.factor t al);
        let chol_counters = Prof.counters_json () in
        Prof.disable ();
        let chol_num =
          measure (fun () -> ignore (Sympiler.Cholesky.factor t al))
        in
        let chol = report "cholesky" chol_sym chol_num chol_counters in
        Prof.Json.Obj
          [
            ("id", Prof.Json.Int id);
            ("name", Prof.Json.Str name);
            ("n", Prof.Json.Int a.Csc.ncols);
            ("nnz", Prof.Json.Int (Csc.nnz a));
            ("trisolve", tri);
            ("cholesky", chol);
          ])
      phase_ids
  in
  let doc =
    Prof.Json.Obj
      [
        ("bench", Prof.Json.Str "phases");
        ("quick", Prof.Json.Bool quick);
        ("problems", Prof.Json.List problems);
      ]
  in
  write_bench "BENCH_phases.json" doc;
  section_note
    "(amortize = symbolic time / one numeric execution: how many numeric\n\
    \ runs repay the inspection; counters are per one profiled execution.\n\
    \ Full data written to BENCH_phases.json)\n"

(* ---------------------------------------------------------------- *)
(* Steady state: reusable plans + the compilation cache — the compile-once /
   execute-many regime the paper's amortization argument assumes. For every
   suite problem: first call (cached compile, a miss, + plan creation +
   first in-place execution) vs the steady-state median; GC minor words per
   steady call (must be 0: the plans own every numeric workspace); and the
   pattern-keyed cache's hit rate after recompiling each problem. Writes
   BENCH_steady.json. *)

let steady () =
  header "Steady state: plans + compilation cache (writes BENCH_steady.json)";
  Printf.printf "%-3s %-15s %-9s | %10s %10s %7s | %s\n" "ID" "Name" "kernel"
    "first" "steady" "words" "variant";
  let gc_loops = if quick then 10 else 50 in
  (* Warm twice (fills any lazy state), then measure the per-call minor-heap
     delta over [gc_loops] calls; an allocation-free function yields 0. *)
  let minor_words_per_call f =
    f ();
    f ();
    let w0 = Gc.minor_words () in
    for _ = 1 to gc_loops do
      f ()
    done;
    let w1 = Gc.minor_words () in
    int_of_float ((w1 -. w0) /. float_of_int gc_loops)
  in
  let chol_cache = Sympiler.Plan_cache.create () in
  let tri_cache = Sympiler.Plan_cache.create () in
  let all_zero = ref true and not_slower = ref true in
  let problems =
    List.map
      (fun id ->
        let d = prob id in
        let name = d.p.Sympiler.Suite.name in
        (* Cholesky: first call = cached compile (a miss: full symbolic
           phase) + plan creation + first in-place factorization. *)
        let al = d.p.Sympiler.Suite.a_lower in
        let t0 = Prof.now_seconds () in
        let h = Sympiler.Cholesky.compile ~cache:chol_cache al in
        let cp = Sympiler.Cholesky.plan h in
        ignore (Sympiler.Cholesky.execute_ip cp al);
        let chol_first = Prof.now_seconds () -. t0 in
        let chol_steady =
          measure (fun () -> ignore (Sympiler.Cholesky.execute_ip cp al))
        in
        let chol_words =
          minor_words_per_call (fun () -> ignore (Sympiler.Cholesky.execute_ip cp al))
        in
        (* Recompiling the same structure must hit and return the same
           handle, with no symbolic work. *)
        let h' = Sympiler.Cholesky.compile ~cache:chol_cache al in
        assert (h' == h);
        let variant =
          match h.Sympiler.Cholesky.variant with
          | Sympiler.Cholesky.Supernodal -> "supernodal"
          | Sympiler.Cholesky.Simplicial -> "simplicial"
        in
        (* Trisolve: same protocol against the plan-owned solution buffer. *)
        let l = d.l_factor and b = d.rhs in
        let t0 = Prof.now_seconds () in
        let th = Sympiler.Trisolve.compile ~cache:tri_cache (l, b) in
        let tp = Sympiler.Trisolve.plan th in
        ignore (Sympiler.Trisolve.execute_ip tp b);
        let tri_first = Prof.now_seconds () -. t0 in
        let tri_steady =
          measure (fun () -> ignore (Sympiler.Trisolve.execute_ip tp b))
        in
        let tri_words =
          minor_words_per_call (fun () ->
              ignore (Sympiler.Trisolve.execute_ip tp b))
        in
        let th' = Sympiler.Trisolve.compile ~cache:tri_cache (l, b) in
        assert (th' == th);
        all_zero := !all_zero && chol_words = 0 && tri_words = 0;
        not_slower :=
          !not_slower && chol_steady <= chol_first && tri_steady <= tri_first;
        Printf.printf "%-3d %-15s %-9s | %8.2fms %8.3fms %7d | %s\n" id name
          "cholesky" (chol_first *. 1e3) (chol_steady *. 1e3) chol_words
          variant;
        Printf.printf "%-3d %-15s %-9s | %8.2fus %8.3fus %7d |\n" id name
          "trisolve" (tri_first *. 1e6) (tri_steady *. 1e6) tri_words;
        Prof.Json.Obj
          [
            ("id", Prof.Json.Int id);
            ("name", Prof.Json.Str name);
            ("n", Prof.Json.Int al.Csc.ncols);
            ( "cholesky",
              Prof.Json.Obj
                [
                  ("variant", Prof.Json.Str variant);
                  ("first_call_seconds", Prof.Json.Float chol_first);
                  ("steady_seconds", Prof.Json.Float chol_steady);
                  ("minor_words_per_call", Prof.Json.Int chol_words);
                ] );
            ( "trisolve",
              Prof.Json.Obj
                [
                  ("first_call_seconds", Prof.Json.Float tri_first);
                  ("steady_seconds", Prof.Json.Float tri_steady);
                  ("minor_words_per_call", Prof.Json.Int tri_words);
                ] );
          ])
      ids
  in
  let cs = Sympiler.Plan_cache.stats chol_cache in
  let ts = Sympiler.Plan_cache.stats tri_cache in
  let hits = cs.Sympiler.Plan_cache.hits + ts.Sympiler.Plan_cache.hits in
  let misses = cs.Sympiler.Plan_cache.misses + ts.Sympiler.Plan_cache.misses in
  let hit_rate = float_of_int hits /. float_of_int (max 1 (hits + misses)) in
  Printf.printf
    "cache: %d hits / %d misses (hit rate %.2f)  all_zero_alloc=%b \
     steady_not_slower=%b\n"
    hits misses hit_rate !all_zero !not_slower;
  let doc =
    Prof.Json.Obj
      [
        ("bench", Prof.Json.Str "steady");
        ("quick", Prof.Json.Bool quick);
        ("all_zero_alloc", Prof.Json.Bool !all_zero);
        ("steady_not_slower", Prof.Json.Bool !not_slower);
        ( "cache",
          Prof.Json.Obj
            [
              ("hits", Prof.Json.Int hits);
              ("misses", Prof.Json.Int misses);
              ("hit_rate", Prof.Json.Float hit_rate);
            ] );
        ("problems", Prof.Json.List problems);
      ]
  in
  write_bench "BENCH_steady.json" doc;
  section_note
    "(first = cached compile (miss) + plan creation + first execution;\n\
    \ steady = repeated in-place execution into the same plan; words =\n\
    \ GC minor words per steady call, 0 = allocation-free. Full data\n\
    \ written to BENCH_steady.json)\n"

(* ---------------------------------------------------------------- *)
(* Native backend: race the OCaml executors against the same emitted C
   compiled into a shared object (`Native), plus the ablation arm with
   vectorize annotations stripped and -fno-tree-vectorize (`Native_novec).
   For trisolve / Cholesky / LDLT on a suite subset: per-call steady time
   under all three engines, the native plan's compile+dlopen latency and
   cache origin, GC minor words per native call (must be 0), and a
   reload experiment proving a steady-state .so-cache hit never re-invokes
   the C compiler. Writes BENCH_native.json; when no C compiler is found
   the section writes an explicit skipped marker instead. *)

module Nat = Sympiler.Native
module NE = Sympiler.Native_engine

let native_ids = if quick then [ 1; 5 ] else [ 1; 2; 5; 9 ]

let native_bench () =
  header "Native backend: OCaml vs compiled C (writes BENCH_native.json)";
  if not (Nat.available ()) then begin
    print_string
      "skipped: no C compiler (cc/gcc/clang on PATH, or $SYMPILER_CC)\n";
    let doc =
      Prof.Json.Obj
        [
          ("bench", Prof.Json.Str "native");
          ("quick", Prof.Json.Bool quick);
          ("skipped", Prof.Json.Str "no cc");
        ]
    in
    write_bench "BENCH_native.json" doc
  end
  else begin
    Printf.printf "%-3s %-15s %-9s | %10s %10s %10s | %8s %-8s %5s\n" "ID"
      "Name" "kernel" "ocaml" "native" "novec" "plan" "origin" "words";
    let gc_loops = if quick then 10 else 50 in
    let minor_words_per_call f =
      f ();
      f ();
      let w0 = Gc.minor_words () in
      for _ = 1 to gc_loops do
        f ()
      done;
      let w1 = Gc.minor_words () in
      int_of_float ((w1 -. w0) /. float_of_int gc_loops)
    in
    Nat.reset_stats ();
    (* Generous on purpose: the gate is "compiled C is not slower than the
       OCaml executor", not a speedup claim, and per-call times down at a
       few microseconds are noisy on a shared core. *)
    let tol = 1.10 in
    let tri_ok = ref true and chol_ok = ref true and all_zero = ref true in
    let origin_str (e : NE.exec) =
      match e.NE.nk.Nat.origin with
      | Nat.Compiled -> "compiled"
      | Nat.Disk_cache -> "disk"
      | Nat.Memory_cache -> "memory"
    in
    (* One family arm: [mk engine] builds the plan for that engine and
       returns the steady-state closure plus the plan's native exec (always
       [Some] for the native engines here — [Nat.available] held above, so
       a failed load is a bench bug worth failing loudly on). *)
    let bench_family ~id ~name family
        (mk : Sympiler.engine -> (unit -> unit) * NE.exec option) =
      let run_o, _ = mk `Ocaml in
      run_o ();
      let ocaml_s = measure run_o in
      let t0 = Prof.now_seconds () in
      let run_n, en = mk `Native in
      let plan_s = Prof.now_seconds () -. t0 in
      let e =
        match en with
        | Some e -> e
        | None -> failwith (family ^ ": native load failed despite cc")
      in
      run_n ();
      let native_s = measure run_n in
      let words = minor_words_per_call run_n in
      let run_v, _ = mk `Native_novec in
      run_v ();
      let novec_s = measure run_v in
      all_zero := !all_zero && words = 0;
      let ok = native_s <= ocaml_s *. tol in
      (match family with
      | "trisolve" -> tri_ok := !tri_ok && ok
      | "cholesky" -> chol_ok := !chol_ok && ok
      | _ -> ());
      Printf.printf "%-3d %-15s %-9s | %8.2fus %8.2fus %8.2fus | %7.2fs %-8s %5d\n"
        id name family (ocaml_s *. 1e6) (native_s *. 1e6) (novec_s *. 1e6)
        plan_s (origin_str e) words;
      Prof.Json.Obj
        [
          ("family", Prof.Json.Str family);
          ("ocaml_steady_seconds", Prof.Json.Float ocaml_s);
          ("native_steady_seconds", Prof.Json.Float native_s);
          ("novec_steady_seconds", Prof.Json.Float novec_s);
          ( "native_vs_ocaml_speedup",
            Prof.Json.Float (ocaml_s /. Float.max native_s 1e-12) );
          ("plan_seconds", Prof.Json.Float plan_s);
          ( "compile_load_seconds",
            Prof.Json.Float e.NE.nk.Nat.compile_seconds );
          ("origin", Prof.Json.Str (origin_str e));
          ("minor_words_per_call", Prof.Json.Int words);
        ]
    in
    let problems =
      List.map
        (fun id ->
          let d = prob id in
          let name = d.p.Sympiler.Suite.name in
          let al = d.p.Sympiler.Suite.a_lower in
          let th = Sympiler.Trisolve.compile (d.l_factor, d.rhs) in
          let ch = Sympiler.Cholesky.compile al in
          let lh = Sympiler.Ldlt.compile al in
          (* Explicit lets: list literals evaluate right-to-left, which
             would reverse the printed rows. *)
          let tri =
            bench_family ~id ~name "trisolve" (fun engine ->
                  let p = Sympiler.Trisolve.plan ~engine th in
                  ( (fun () ->
                      ignore
                        (Sympiler.Trisolve.execute_ip p d.rhs : float array)),
                    p.Sympiler.Trisolve.native ))
          in
          let chol =
            bench_family ~id ~name "cholesky" (fun engine ->
                  let p = Sympiler.Cholesky.plan ~engine ch in
                  ( (fun () -> ignore (Sympiler.Cholesky.execute_ip p al)),
                    p.Sympiler.Cholesky.native ))
          in
          let ldlt =
            bench_family ~id ~name "ldlt" (fun engine ->
                  let p = Sympiler.Ldlt.plan ~engine lh in
                  ( (fun () ->
                      ignore
                        (Sympiler.Ldlt.execute_ip p al
                          : Sympiler_kernels.Ldlt.factors)),
                    p.Sympiler.Ldlt.native ))
          in
          let fams = [ tri; chol; ldlt ] in
          Prof.Json.Obj
            [
              ("id", Prof.Json.Int id);
              ("name", Prof.Json.Str name);
              ("n", Prof.Json.Int al.Csc.ncols);
              ("families", Prof.Json.List fams);
            ])
        native_ids
    in
    (* Reload experiment: drop the in-process kernel table and re-plan an
       already-compiled family. The steady-state contract is that this is
       served by dlopening the cached .so — zero compiler invocations. *)
    let d = prob (List.hd native_ids) in
    let lh = Sympiler.Ldlt.compile d.p.Sympiler.Suite.a_lower in
    let s0 = Nat.stats () in
    Nat.clear_memory_cache ();
    let t0 = Prof.now_seconds () in
    let p = Sympiler.Ldlt.plan ~engine:`Native lh in
    let reload_s = Prof.now_seconds () -. t0 in
    let s1 = Nat.stats () in
    let reload_origin =
      match p.Sympiler.Ldlt.native with Some e -> origin_str e | None -> "none"
    in
    let cache_ok =
      s1.Nat.compiles = s0.Nat.compiles
      && s1.Nat.disk_hits > s0.Nat.disk_hits
      && reload_origin = "disk"
    in
    Printf.printf
      "reload after cache clear: %.2fms via %s (compiles %d->%d, disk hits \
       %d->%d)\n"
      (reload_s *. 1e3) reload_origin s0.Nat.compiles s1.Nat.compiles
      s0.Nat.disk_hits s1.Nat.disk_hits;
    Printf.printf
      "native_not_slower_trisolve=%b native_not_slower_cholesky=%b \
       cache_hit_no_recompile=%b native_zero_alloc=%b\n"
      !tri_ok !chol_ok cache_ok !all_zero;
    let s = Nat.stats () in
    let compiler =
      match Nat.cc () with
      | Some cc -> Nat.compiler_identity cc
      | None -> "unavailable"
    in
    let doc =
      Prof.Json.Obj
        [
          ("bench", Prof.Json.Str "native");
          ("quick", Prof.Json.Bool quick);
          ("compiler", Prof.Json.Str compiler);
          ("tolerance", Prof.Json.Float tol);
          ("native_not_slower_trisolve", Prof.Json.Bool !tri_ok);
          ("native_not_slower_cholesky", Prof.Json.Bool !chol_ok);
          ("cache_hit_no_recompile", Prof.Json.Bool cache_ok);
          ("native_zero_alloc", Prof.Json.Bool !all_zero);
          ( "reload",
            Prof.Json.Obj
              [
                ("seconds", Prof.Json.Float reload_s);
                ("origin", Prof.Json.Str reload_origin);
                ( "compiles_delta",
                  Prof.Json.Int (s1.Nat.compiles - s0.Nat.compiles) );
                ( "disk_hits_delta",
                  Prof.Json.Int (s1.Nat.disk_hits - s0.Nat.disk_hits) );
              ] );
          ( "stats",
            Prof.Json.Obj
              [
                ("compiles", Prof.Json.Int s.Nat.compiles);
                ("disk_hits", Prof.Json.Int s.Nat.disk_hits);
                ("memory_hits", Prof.Json.Int s.Nat.memory_hits);
                ("fallbacks", Prof.Json.Int s.Nat.fallbacks);
              ] );
          ("problems", Prof.Json.List problems);
        ]
    in
    write_bench "BENCH_native.json" doc;
    section_note
      "(ocaml/native/novec = per-call steady medians under the three\n\
      \ engines; plan = `Native plan creation including any cc+dlopen;\n\
      \ origin = how the .so was served (compiled/disk/memory); words =\n\
      \ GC minor words per native call, 0 = allocation-free. Full data\n\
      \ written to BENCH_native.json)\n"
  end

(* ---------------------------------------------------------------- *)
(* Trace overhead: the structured-tracing layer must be free when disabled
   (its guard is one boolean load) and bounded when enabled. Measures the
   disabled begin/end pair cost, counts the spans a steady-state call
   emits, and gates the implied disabled overhead of the steady path at 2%
   (the ci.sh gate greps the verdict). Also sanity-checks both exporters.
   Writes BENCH_trace.json. *)

let trace_ids = [ 2; 6 ]

let trace_bench () =
  header "Trace: span overhead + exporters (writes BENCH_trace.json)";
  let module Trace = Sympiler_trace.Trace in
  Trace.disable ();
  (* Cost of one disabled begin/end pair, amortized over a tight loop. *)
  let pairs = 10_000 in
  let t_pair =
    measure (fun () ->
        for _ = 1 to pairs do
          Trace.begin_span "bench.noop";
          Trace.end_span ()
        done)
    /. float_of_int pairs
  in
  Printf.printf "disabled begin/end pair : %7.2f ns\n" (t_pair *. 1e9);
  Printf.printf "%-3s %-15s | %6s %10s %10s | %9s | %s\n" "ID" "Name" "spans"
    "steady" "traced" "overhead" "exporters";
  let all_ok = ref true in
  let problems =
    List.map
      (fun id ->
        let d = prob id in
        let name = d.p.Sympiler.Suite.name in
        let al = d.p.Sympiler.Suite.a_lower in
        let h = Sympiler.Cholesky.compile al in
        let p = Sympiler.Cholesky.plan h in
        ignore (Sympiler.Cholesky.execute_ip p al);
        let t_off = measure (fun () -> ignore (Sympiler.Cholesky.execute_ip p al)) in
        (* Count the spans one steady call emits, then time the traced
           path (ring wraparound during [measure] is fine: slots are
           recycled, the dropped counter just advances). *)
        Trace.enable ();
        Trace.reset ();
        ignore (Sympiler.Cholesky.execute_ip p al);
        let spans_per_call = Trace.span_count () in
        let t_on = measure (fun () -> ignore (Sympiler.Cholesky.execute_ip p al)) in
        let chrome = Trace.to_chrome_json () in
        let folded = Trace.to_folded () in
        Trace.disable ();
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i =
            i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
          in
          go 0
        in
        let chrome_ok =
          String.length chrome > 2
          && chrome.[0] = '{'
          && contains chrome "traceEvents"
        in
        let folded_ok = String.length folded > 0 in
        (* The disabled-path cost a steady call would pay: its span pairs
           at the measured disabled pair price. *)
        let overhead = float_of_int spans_per_call *. t_pair /. t_off in
        let ok = overhead <= 0.02 && chrome_ok && folded_ok in
        all_ok := !all_ok && ok;
        Printf.printf "%-3d %-15s | %6d %8.2fms %8.2fms | %8.4f%% | %s\n" id
          name spans_per_call (t_off *. 1e3) (t_on *. 1e3) (overhead *. 1e2)
          (if chrome_ok && folded_ok then "ok" else "BROKEN");
        Prof.Json.Obj
          [
            ("id", Prof.Json.Int id);
            ("name", Prof.Json.Str name);
            ("spans_per_call", Prof.Json.Int spans_per_call);
            ("steady_seconds", Prof.Json.Float t_off);
            ("traced_steady_seconds", Prof.Json.Float t_on);
            ("overhead_fraction", Prof.Json.Float overhead);
            ("chrome_export_ok", Prof.Json.Bool chrome_ok);
            ("folded_export_ok", Prof.Json.Bool folded_ok);
          ])
      trace_ids
  in
  Printf.printf "disabled_overhead_ok=%b (gate: <= 2%% of steady call)\n"
    !all_ok;
  let doc =
    Prof.Json.Obj
      [
        ("bench", Prof.Json.Str "trace");
        ("quick", Prof.Json.Bool quick);
        ("disabled_pair_ns", Prof.Json.Float (t_pair *. 1e9));
        ("disabled_overhead_ok", Prof.Json.Bool !all_ok);
        ("problems", Prof.Json.List problems);
      ]
  in
  write_bench "BENCH_trace.json" doc;
  section_note
    "(overhead = spans/call x disabled pair cost / steady call time: what\n\
    \ the instrumentation costs when tracing is off. Full data written to\n\
    \ BENCH_trace.json)\n"

(* ---------------------------------------------------------------- *)
(* Parallel runtime: persistent pool vs spawn-per-call (writes
   BENCH_parallel.json). The evaluation container is single-core, so level
   parallelism cannot buy wall-clock speedup here; the honest claims this
   section measures are (a) dispatching through the persistent pool is
   cheaper than spawning domains at every wide level, (b) steady-state
   parallel calls allocate nothing, and (c) results stay bitwise-identical
   across domain counts. The spawn baseline drives the exact same plan
   task/partitions, only replacing the pool's barrier with
   Domain.spawn/join per dispatch. *)

let parallel_ids = [ 2; 6; 9 ]
let par_nds = [ 1; 2; 4 ]

module CP = Cholesky_parallel
module TP = Trisolve_parallel
module Pool = Sympiler_runtime.Pool

let spawn_run ~nworkers task =
  let doms =
    Array.init (nworkers - 1) (fun i -> Domain.spawn (fun () -> task (i + 1)))
  in
  task 0;
  Array.iter Domain.join doms

(* CP.factor_ip with the pool barrier replaced by spawn/join; narrow
   levels (< 8 supernodes) stay inline exactly like the real path. *)
let spawn_factor_ip (p : CP.plan) al =
  let c = p.CP.c in
  p.CP.a_lower <- al;
  for lv = 0 to c.CP.nlevels - 1 do
    let lo = c.CP.level_ptr.(lv) and hi = c.CP.level_ptr.(lv + 1) in
    if p.CP.ndomains <= 1 || hi - lo < 8 then
      for t = lo to hi - 1 do
        CP.process_target c al p.CP.lx p.CP.relpos.(0) c.CP.level_sn.(t)
      done
    else begin
      p.CP.lv <- lv;
      spawn_run ~nworkers:p.CP.ndomains p.CP.task
    end
  done;
  p.CP.a_lower <- p.CP.l

(* TP.solve_ip with the pool barrier replaced by spawn/join; narrow levels
   (< 64 columns) run as a plain column sweep. *)
let spawn_solve_ip (p : TP.plan) (b : float array) =
  let c = p.TP.c in
  let x = p.TP.x in
  Array.blit b 0 x 0 (Array.length x);
  let l = c.TP.l in
  let lp = l.Csc.colptr and li = l.Csc.rowind and lxv = l.Csc.values in
  for lv = 0 to c.TP.nlevels - 1 do
    let lo = c.TP.level_ptr.(lv) and hi = c.TP.level_ptr.(lv + 1) in
    if hi - lo < 64 then
      for t = lo to hi - 1 do
        let j = c.TP.level_cols.(t) in
        let xj = x.(j) /. lxv.(lp.(j)) in
        x.(j) <- xj;
        for e = lp.(j) + 1 to lp.(j + 1) - 1 do
          x.(li.(e)) <- x.(li.(e)) -. (lxv.(e) *. xj)
        done
      done
    else begin
      for t = lo to hi - 1 do
        let j = c.TP.level_cols.(t) in
        x.(j) <- x.(j) /. lxv.(lp.(j))
      done;
      p.TP.lv <- lv;
      spawn_run ~nworkers:p.TP.ndomains p.TP.task
    end
  done

let wide_dispatches ptr nlevels min_w =
  let k = ref 0 in
  for lv = 0 to nlevels - 1 do
    if ptr.(lv + 1) - ptr.(lv) >= min_w then incr k
  done;
  !k

let parallel_bench () =
  header "Parallel runtime: pool vs spawn-per-call (writes BENCH_parallel.json)";
  Printf.printf "%-3s %-15s %-9s %5s | %9s %9s %9s | %9s | %5s %5s\n" "ID"
    "Name" "kernel" "disp" "nd=1" "nd=2" "nd=4" "spawn4" "words" "imbal";
  let gc_loops = if quick then 10 else 50 in
  let minor_words_per_call f =
    f ();
    f ();
    let w0 = Gc.minor_words () in
    for _ = 1 to gc_loops do
      f ()
    done;
    int_of_float ((Gc.minor_words () -. w0) /. float_of_int gc_loops)
  in
  let imbalance_of f =
    Prof.reset ();
    Prof.enable ();
    f ();
    Prof.disable ();
    let v = Prof.counters.Prof.pool_imbalance_pct in
    Prof.reset ();
    v
  in
  let all_zero = ref true
  and all_bitwise = ref true
  and largest = ref (-1, 0) (* id, n *)
  and beats = Hashtbl.create 8 in
  let problems =
    List.map
      (fun id ->
        let d = prob id in
        let name = d.p.Sympiler.Suite.name in
        let al = d.p.Sympiler.Suite.a_lower in
        let n = al.Csc.ncols in
        if n > snd !largest then largest := (id, n);
        (* Cholesky *)
        let cc = CP.compile al in
        let plans = List.map (fun nd -> (nd, CP.make_plan ~ndomains:nd cc)) par_nds in
        let times =
          List.map
            (fun (nd, p) ->
              CP.factor_ip p al;
              (nd, measure (fun () -> CP.factor_ip p al)))
            plans
        in
        let p4 = List.assoc 4 plans and p1 = List.assoc 1 plans in
        CP.factor_ip p1 al;
        CP.factor_ip p4 al;
        all_bitwise :=
          !all_bitwise && p1.CP.l.Csc.values = p4.CP.l.Csc.values;
        let chol_spawn =
          spawn_factor_ip p4 al;
          measure (fun () -> spawn_factor_ip p4 al)
        in
        let chol_words = minor_words_per_call (fun () -> CP.factor_ip p4 al) in
        let chol_imbal = imbalance_of (fun () -> CP.factor_ip p4 al) in
        let chol_disp = wide_dispatches cc.CP.level_ptr cc.CP.nlevels 8 in
        all_zero := !all_zero && chol_words = 0;
        if chol_disp > 0 then
          Hashtbl.replace beats (id, "cholesky")
            (List.assoc 4 times <= chol_spawn);
        Printf.printf
          "%-3d %-15s %-9s %5d | %7.2fms %7.2fms %7.2fms | %7.2fms | %5d %4d%%\n"
          id name "cholesky" chol_disp
          (List.assoc 1 times *. 1e3)
          (List.assoc 2 times *. 1e3)
          (List.assoc 4 times *. 1e3)
          (chol_spawn *. 1e3) chol_words chol_imbal;
        (* Trisolve *)
        let tc = TP.compile d.l_factor in
        let b = Vector.sparse_to_dense d.rhs in
        let tplans = List.map (fun nd -> (nd, TP.make_plan ~ndomains:nd tc)) par_nds in
        let ttimes =
          List.map
            (fun (nd, p) ->
              ignore (TP.solve_ip p b);
              (nd, measure (fun () -> ignore (TP.solve_ip p b))))
            tplans
        in
        let tp4 = List.assoc 4 tplans and tp1 = List.assoc 1 tplans in
        let x1 = Array.copy (TP.solve_ip tp1 b) in
        all_bitwise := !all_bitwise && x1 = TP.solve_ip tp4 b;
        let tri_spawn =
          spawn_solve_ip tp4 b;
          measure (fun () -> spawn_solve_ip tp4 b)
        in
        let tri_words =
          minor_words_per_call (fun () -> ignore (TP.solve_ip tp4 b))
        in
        let tri_imbal = imbalance_of (fun () -> ignore (TP.solve_ip tp4 b)) in
        let tri_disp = wide_dispatches tc.TP.level_ptr tc.TP.nlevels 64 in
        all_zero := !all_zero && tri_words = 0;
        if tri_disp > 0 then
          Hashtbl.replace beats (id, "trisolve")
            (List.assoc 4 ttimes <= tri_spawn);
        Printf.printf
          "%-3d %-15s %-9s %5d | %7.2fus %7.2fus %7.2fus | %7.2fus | %5d %4d%%\n"
          id name "trisolve" tri_disp
          (List.assoc 1 ttimes *. 1e6)
          (List.assoc 2 ttimes *. 1e6)
          (List.assoc 4 ttimes *. 1e6)
          (tri_spawn *. 1e6) tri_words tri_imbal;
        let times_json ts =
          Prof.Json.Obj
            (List.map
               (fun (nd, t) ->
                 (Printf.sprintf "nd%d_seconds" nd, Prof.Json.Float t))
               ts)
        in
        Prof.Json.Obj
          [
            ("id", Prof.Json.Int id);
            ("name", Prof.Json.Str name);
            ("n", Prof.Json.Int n);
            ( "cholesky",
              Prof.Json.Obj
                [
                  ("levels", Prof.Json.Int cc.CP.nlevels);
                  ("wide_dispatches", Prof.Json.Int chol_disp);
                  ("pool", times_json times);
                  ("spawn_nd4_seconds", Prof.Json.Float chol_spawn);
                  ("minor_words_per_call", Prof.Json.Int chol_words);
                  ("imbalance_pct", Prof.Json.Int chol_imbal);
                ] );
            ( "trisolve",
              Prof.Json.Obj
                [
                  ("levels", Prof.Json.Int tc.TP.nlevels);
                  ("wide_dispatches", Prof.Json.Int tri_disp);
                  ("pool", times_json ttimes);
                  ("spawn_nd4_seconds", Prof.Json.Float tri_spawn);
                  ("minor_words_per_call", Prof.Json.Int tri_words);
                  ("imbalance_pct", Prof.Json.Int tri_imbal);
                ] );
          ])
      parallel_ids
  in
  (* The gate compares pool vs spawn only where wide dispatches happened
     (chain-structured problems never leave the inline path, and there the
     two are the same code); vacuously true when nothing dispatched. *)
  let largest_id = fst !largest in
  let pool_beats_spawn_on_largest =
    Hashtbl.fold
      (fun (id, _) ok acc -> if id = largest_id then acc && ok else acc)
      beats true
  in
  Printf.printf
    "pool domains spawned=%d  all_zero_alloc=%b  bitwise_across_ndomains=%b  \
     pool_beats_spawn_on_largest(id %d)=%b\n"
    (Pool.spawned ()) !all_zero !all_bitwise largest_id
    pool_beats_spawn_on_largest;
  let doc =
    Prof.Json.Obj
      [
        ("bench", Prof.Json.Str "parallel");
        ("quick", Prof.Json.Bool quick);
        ("default_size", Prof.Json.Int (Pool.default_size ()));
        ("pool_domains_spawned", Prof.Json.Int (Pool.spawned ()));
        ("all_zero_alloc", Prof.Json.Bool !all_zero);
        ("bitwise_across_ndomains", Prof.Json.Bool !all_bitwise);
        ("largest_id", Prof.Json.Int largest_id);
        ( "pool_beats_spawn_on_largest",
          Prof.Json.Bool pool_beats_spawn_on_largest );
        ("problems", Prof.Json.List problems);
      ]
  in
  write_bench "BENCH_parallel.json" doc;
  section_note
    "(disp = wide-level pool dispatches per call; spawn4 = the same plan's\n\
    \ chunks with Domain.spawn/join replacing the persistent pool's\n\
    \ barrier; words = GC minor words per steady nd=4 call; imbal =\n\
    \ max/mean worker time, 100% = balanced, 0% = nothing dispatched.\n\
    \ Single-core container: no wall-clock speedup is expected from\n\
    \ nd > 1 - the gate is pool-beats-spawn, allocation-freedom, and\n\
    \ bitwise determinism. Full data written to BENCH_parallel.json)\n"

(* ---------------------------------------------------------------- *)
(* Ordering quality and cost (writes BENCH_ordering.json). Fill and flop
   predictions under natural / RCM / AMD / greedy minimum degree across
   the raw (unprepared) suite matrices; AMD must stay within tolerance of
   the exact-degree greedy oracle everywhere and beat the natural order on
   every mesh/grid problem. The asymptotic section times AMD's quotient
   graph against the quadratic greedy oracle on growing 5-point grids.
   The ordered-compile section drives the facade path end to end: an
   ordered Cholesky plan must stay allocation-free in steady state and
   produce factors bitwise-identical to compiling a manually pre-permuted
   input. *)

(* The suite problems standing in for meshes/grids (the same set
   Suite.prepare reorders). *)
let mesh_names =
  [
    "Pres_Poisson"; "Dubcova2"; "Dubcova3"; "parabolic_fem"; "ecology2";
    "tmt_sym";
  ]

let ordering_bench () =
  header "Ordering: fill-reducing orderings (writes BENCH_ordering.json)";
  Printf.printf "%-3s %-15s | %9s %9s %9s %9s | %7s %9s | %s\n" "ID" "Name"
    "nnzL.nat" "nnzL.rcm" "nnzL.amd" "nnzL.md" "amd/md" "t_amd" "mesh";
  let nnz_flops a p =
    let ap =
      match p with None -> a | Some p -> Perm.symmetric_permute p a
    in
    let f = Fill_pattern.analyze (Csc.lower ap) in
    ( f.Fill_pattern.l_pattern.Csc.colptr.(a.Csc.ncols),
      Fill_pattern.flops f )
  in
  let amd_tolerance = 1.25 in
  let within_tol = ref true and mesh_wins = ref true in
  let problems =
    List.map
      (fun g ->
        let a = Lazy.force g.Generators.matrix in
        let timed f =
          let t0 = Prof.now_seconds () in
          let p = f a in
          (p, Prof.now_seconds () -. t0)
        in
        let p_rcm, t_rcm = timed Ordering.rcm in
        let p_amd, t_amd = timed Ordering.amd in
        let p_md, t_md = timed Ordering.min_degree in
        let nat_nnz, nat_fl = nnz_flops a None in
        let rcm_nnz, rcm_fl = nnz_flops a (Some p_rcm) in
        let amd_nnz, amd_fl = nnz_flops a (Some p_amd) in
        let md_nnz, md_fl = nnz_flops a (Some p_md) in
        let is_mesh = List.mem g.Generators.name mesh_names in
        let ratio =
          float_of_int amd_nnz /. float_of_int (max 1 md_nnz)
        in
        within_tol := !within_tol && ratio <= amd_tolerance;
        if is_mesh then mesh_wins := !mesh_wins && amd_nnz < nat_nnz;
        Printf.printf
          "%-3d %-15s | %9d %9d %9d %9d | %7.3f %7.2fms | %s\n"
          g.Generators.id g.Generators.name nat_nnz rcm_nnz amd_nnz md_nnz
          ratio (t_amd *. 1e3)
          (if is_mesh then "yes" else "-");
        let ord name nnz fl t =
          ( name,
            Prof.Json.Obj
              [
                ("nnz_l", Prof.Json.Int nnz);
                ("predicted_flops", Prof.Json.Float fl);
                ("seconds", Prof.Json.Float t);
              ] )
        in
        Prof.Json.Obj
          [
            ("id", Prof.Json.Int g.Generators.id);
            ("name", Prof.Json.Str g.Generators.name);
            ("n", Prof.Json.Int a.Csc.ncols);
            ("mesh", Prof.Json.Bool is_mesh);
            ord "natural" nat_nnz nat_fl 0.0;
            ord "rcm" rcm_nnz rcm_fl t_rcm;
            ord "amd" amd_nnz amd_fl t_amd;
            ord "min_degree" md_nnz md_fl t_md;
            ("amd_over_min_degree", Prof.Json.Float ratio);
          ])
      Generators.suite
  in
  (* Asymptotic cost: the quotient graph with supervariables and the
     approximate external degree stays near-linear while the exact-degree
     greedy oracle goes quadratic-ish. *)
  let grid_ks = if quick then [ 12; 24; 48 ] else [ 20; 40; 80 ] in
  Printf.printf "asymptotics on 5-point grids:\n";
  let grids =
    List.map
      (fun k ->
        let a = Generators.grid2d ~stencil:`Five k k in
        let t0 = Prof.now_seconds () in
        ignore (Ordering.amd a);
        let t_amd = Prof.now_seconds () -. t0 in
        let t0 = Prof.now_seconds () in
        ignore (Ordering.min_degree a);
        let t_md = Prof.now_seconds () -. t0 in
        Printf.printf
          "  grid %3dx%-3d (n=%5d): amd %8.2fms  greedy %8.2fms  (%5.1fx)\n"
          k k (k * k) (t_amd *. 1e3) (t_md *. 1e3)
          (t_md /. Float.max t_amd 1e-9);
        (k, t_amd, t_md))
      grid_ks
  in
  let _, t_amd_largest, t_md_largest =
    List.nth grids (List.length grids - 1)
  in
  let amd_not_slower = t_amd_largest <= t_md_largest in
  (* Ordered compile path end to end, on a mesh problem's lower pattern:
     steady-state allocation freedom and bitwise identity against a
     manually pre-permuted compile. *)
  let al = (Sympiler.Suite.problem 2).Sympiler.Suite.a_lower in
  let h = Sympiler.Cholesky.compile
      ~opts:(Sympiler.Options.make ~ordering:`Amd ())
      al in
  let p = Sympiler.Cholesky.plan h in
  let l_ordered = Sympiler.Cholesky.execute_ip p al in
  let gc_loops = if quick then 10 else 50 in
  let w0 = Gc.minor_words () in
  for _ = 1 to gc_loops do
    ignore (Sympiler.Cholesky.execute_ip p al)
  done;
  let words =
    int_of_float ((Gc.minor_words () -. w0) /. float_of_int gc_loops)
  in
  let perm =
    match h.Sympiler.Cholesky.ord.Sympiler.o_perm with
    | Some p -> p
    | None -> Perm.identity al.Csc.ncols
  in
  let pl, map = Perm.permute_lower perm al in
  Array.iteri (fun q m -> pl.Csc.values.(q) <- al.Csc.values.(m)) map;
  let h_manual = Sympiler.Cholesky.compile pl in
  let l_manual = Sympiler.Cholesky.factor h_manual pl in
  let bitwise = l_ordered.Csc.values = l_manual.Csc.values in
  let zero_alloc = words = 0 in
  let verdict =
    !within_tol && !mesh_wins && amd_not_slower && bitwise && zero_alloc
  in
  Printf.printf
    "amd_fill_within_tolerance=%b (<= %.2fx greedy)  \
     amd_beats_natural_on_meshes=%b\n"
    !within_tol amd_tolerance !mesh_wins;
  Printf.printf
    "amd_not_slower_than_greedy_on_largest=%b  ordered_steady_zero_alloc=%b \
     (words=%d)  ordered_bitwise_vs_manual=%b\n"
    amd_not_slower zero_alloc words bitwise;
  let doc =
    Prof.Json.Obj
      [
        ("bench", Prof.Json.Str "ordering");
        ("quick", Prof.Json.Bool quick);
        ("amd_tolerance", Prof.Json.Float amd_tolerance);
        ("amd_fill_within_tolerance", Prof.Json.Bool !within_tol);
        ("amd_beats_natural_on_meshes", Prof.Json.Bool !mesh_wins);
        ( "amd_not_slower_than_greedy_on_largest",
          Prof.Json.Bool amd_not_slower );
        ("ordered_steady_zero_alloc", Prof.Json.Bool zero_alloc);
        ("ordered_minor_words_per_call", Prof.Json.Int words);
        ("ordered_bitwise_vs_manual", Prof.Json.Bool bitwise);
        ("verdict", Prof.Json.Bool verdict);
        ( "grids",
          Prof.Json.List
            (List.map
               (fun (k, ta, tm) ->
                 Prof.Json.Obj
                   [
                     ("k", Prof.Json.Int k);
                     ("amd_seconds", Prof.Json.Float ta);
                     ("min_degree_seconds", Prof.Json.Float tm);
                   ])
               grids) );
        ("problems", Prof.Json.List problems);
      ]
  in
  write_bench "BENCH_ordering.json" doc;
  section_note
    "(nnzL.* = predicted factor nonzeros under each ordering of the raw\n\
    \ generator matrix; amd/md = AMD fill relative to the exact-degree\n\
    \ greedy oracle, gated at the tolerance; meshes must improve on\n\
    \ natural. The ordered-compile gate checks the facade's ?ordering\n\
    \ path: zero steady-state allocation and factors bitwise-identical\n\
    \ to a manually pre-permuted compile. Full data written to\n\
    \ BENCH_ordering.json)\n"

(* ---------------------------------------------------------------- *)
(* Large tier (opt-in): end-to-end runs on the Generators.large_suite
   instances — elongated 3D grid Laplacians at 10^4 / 10^5 / 10^6 rows and
   a 10^5-row circuit-style matrix. Never part of the default sweep (a
   10^6-row factorization takes seconds and hundreds of MB); enabled by
   `--only large` or by the `--large` flag. For each instance: assembly,
   symbolic-analysis, compile, numeric-factor and solve wall-clock, the
   residual of the solved system, nnz(L), the packed prune-set store's
   footprint, and process max-RSS. Across the three grid sizes the
   log-log least-squares slope of time vs n is the measured scaling
   exponent; the suite's structures keep work-per-row constant, so a
   linear stack shows ~1.0 and the verdict gates symbolic at <= 1.3.
   Writes BENCH_large.json. *)

let large_requested = Array.exists (( = ) "--large") Sys.argv

(* Peak resident set (VmHWM) of this process, in kB; 0 if unreadable. *)
let max_rss_kb () =
  match In_channel.with_open_text "/proc/self/status" In_channel.input_all with
  | exception _ -> 0
  | s ->
      let kb = ref 0 in
      String.split_on_char '\n' s
      |> List.iter (fun line ->
             if String.starts_with ~prefix:"VmHWM:" line then
               Scanf.sscanf_opt line "VmHWM: %d kB" (fun v -> v)
               |> Option.iter (fun v -> kb := v));
      !kb

(* Least-squares slope of log t against log n: the measured scaling
   exponent over a size ladder. *)
let fit_exponent (pts : (int * float) list) : float =
  let pts =
    List.filter_map
      (fun (n, t) ->
        if n > 0 && t > 0.0 then Some (log (float_of_int n), log t) else None)
      pts
  in
  let m = float_of_int (List.length pts) in
  if m < 2.0 then nan
  else begin
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
    ((m *. sxy) -. (sx *. sy)) /. ((m *. sxx) -. (sx *. sx))
  end

let large () =
  header "Large tier: 10^4..10^6-row end-to-end (writes BENCH_large.json)";
  Printf.printf "%-12s %9s | %9s %9s %9s %9s %9s | %10s %9s\n" "name" "n"
    "assemble" "symbolic" "compile" "factor" "solve" "nnz(L)" "rss";
  (* Minimum over [reps] one-shot timings; big instances get fewer reps
     (a 10^6-row numeric factorization is seconds on its own). [prepare]
     runs outside the timed window before every repetition — phases that
     allocate hundreds of MB (symbolic analysis at 10^6 rows) use it to
     drop the previous result and compact, so a repetition never pays
     major-GC debt left behind by the one before it. Without this the
     measured "symbolic" time at 10^6 rows inflates 2-4x run over run and
     the scaling exponent reads super-linear for a linear stack. *)
  let time_min ?(prepare = fun () -> ()) reps f =
    let best = ref infinity in
    for _ = 1 to reps do
      prepare ();
      let t0 = Prof.now_seconds () in
      f ();
      best := Float.min !best (Prof.now_seconds () -. t0)
    done;
    !best
  in
  let grid_sym = ref [] and grid_num = ref [] and grid_asm = ref [] in
  let rows =
    List.map
      (fun (g : Generators.problem) ->
        let name = g.Generators.name in
        (* Settle the heap before each instance so one problem's garbage
           never counts against the next one's assembly timing. *)
        Gc.compact ();
        let t0 = Prof.now_seconds () in
        let a = Lazy.force g.Generators.matrix in
        let al = Csc.lower a in
        let assemble_s = Prof.now_seconds () -. t0 in
        let n = a.Csc.ncols in
        let reps = if n >= 1_000_000 then 2 else 3 in
        let fill = ref None in
        let symbolic_s =
          time_min reps
            ~prepare:(fun () ->
              fill := None;
              Gc.compact ())
            (fun () -> fill := Some (Fill_pattern.analyze al))
        in
        let fill = Option.get !fill in
        let store_bytes = Bigstore.memory_bytes (Fill_pattern.row_store fill) in
        (* Compile shares the analysis just timed; its own cost (transpose
           map, supernode detection, strategy selection) is what remains. *)
        let t0 = Prof.now_seconds () in
        let h = Sympiler.Cholesky.compile ~opts:(Sympiler.Options.make ~fill ()) al in
        let compile_s = Prof.now_seconds () -. t0 in
        let plan = Sympiler.Cholesky.plan h in
        let factor_s =
          time_min reps (fun () -> ignore (Sympiler.Cholesky.execute_ip plan al))
        in
        let l = Sympiler.Cholesky.plan_factor plan in
        let x_true = Array.make n 1.0 in
        let b = Csc.spmv a x_true in
        let x = ref [||] in
        let solve_s =
          time_min reps (fun () -> x := Cholesky_ref.solve_with_factor l b)
        in
        (* Relative infinity-norm residual ||Ax - b|| / ||b||. *)
        let ax = Csc.spmv a !x in
        let rnum = ref 0.0 and rden = ref 1e-300 in
        for i = 0 to n - 1 do
          rnum := Float.max !rnum (Float.abs (ax.(i) -. b.(i)));
          rden := Float.max !rden (Float.abs b.(i))
        done;
        let residual = !rnum /. !rden in
        let rss = max_rss_kb () in
        if String.starts_with ~prefix:"grid3d" name then begin
          grid_sym := (n, symbolic_s) :: !grid_sym;
          grid_num := (n, factor_s) :: !grid_num;
          grid_asm := (n, assemble_s) :: !grid_asm
        end;
        Printf.printf
          "%-12s %9d | %8.3fs %8.3fs %8.3fs %8.3fs %8.3fs | %10d %8dk\n" name
          n assemble_s symbolic_s compile_s factor_s solve_s
          h.Sympiler.Cholesky.nnz_l rss;
        Prof.Json.Obj
          [
            ("id", Prof.Json.Int g.Generators.id);
            ("name", Prof.Json.Str name);
            ("n", Prof.Json.Int n);
            ("nnz_a", Prof.Json.Int (Csc.nnz a));
            ("nnz_l", Prof.Json.Int h.Sympiler.Cholesky.nnz_l);
            ("assemble_seconds", Prof.Json.Float assemble_s);
            ("symbolic_seconds", Prof.Json.Float symbolic_s);
            ("compile_seconds", Prof.Json.Float compile_s);
            ("factor_seconds", Prof.Json.Float factor_s);
            ("solve_seconds", Prof.Json.Float solve_s);
            ("residual", Prof.Json.Float residual);
            ("row_store_bytes", Prof.Json.Int store_bytes);
            ("max_rss_kb", Prof.Json.Int rss);
            ("residual_ok", Prof.Json.Bool (residual < 1e-8));
          ])
      Generators.large_suite
  in
  let sym_exp = fit_exponent !grid_sym in
  let num_exp = fit_exponent !grid_num in
  let asm_exp = fit_exponent !grid_asm in
  let near_linear e = (not (Float.is_nan e)) && e <= 1.3 in
  Printf.printf
    "scaling exponents over grid3d ladder: assembly %.2f, symbolic %.2f, \
     numeric %.2f\n\
     symbolic_near_linear=%b numeric_near_linear=%b\n"
    asm_exp sym_exp num_exp (near_linear sym_exp) (near_linear num_exp);
  let doc =
    Prof.Json.Obj
      [
        ("bench", Prof.Json.Str "large");
        ("quick", Prof.Json.Bool quick);
        ("assembly_exponent", Prof.Json.Float asm_exp);
        ("symbolic_exponent", Prof.Json.Float sym_exp);
        ("numeric_exponent", Prof.Json.Float num_exp);
        ("symbolic_near_linear", Prof.Json.Bool (near_linear sym_exp));
        ("numeric_near_linear", Prof.Json.Bool (near_linear num_exp));
        ("problems", Prof.Json.List rows);
      ]
  in
  write_bench "BENCH_large.json" doc;
  section_note
    "(each timing = min over 2-3 one-shot runs, sized to the instance,\n\
    \ with a Gc.compact outside each timed window so repetitions never\n\
    \ pay the previous run's collection debt;\n\
    \ exponents = log-log least-squares slope over the 10^4/10^5/10^6\n\
    \ grid3d ladder, whose constant 5x5 cross-section makes work per row\n\
    \ constant — a linear stack measures ~1.0. Full data written to\n\
    \ BENCH_large.json)\n"

(* ---------------------------------------------------------------- *)
(* Metrics layer: serving-grade gates for the labeled registry (writes
   BENCH_metrics.json). Four claims, each a verdict the ci gate greps:
   (a) enabling metrics costs <= 2% on the steady Cholesky refactor path
   (interleaved on/off rounds, min-of-rounds on both arms so scheduler
   noise can only shrink the measured gap's inputs symmetrically);
   (b) histogram percentiles land within one log-linear bucket of a
   sorted-array oracle over a skewed synthetic sample, with the exact-sum
   and exact-max invariants holding bit-for-bit; (c) 4 domains hammering
   one counter lose no increments (the sharded cells are the Prof-race
   fix's load-bearing claim); (d) the enabled hot path allocates zero GC
   minor words, and the exposition passes the OpenMetrics linter. *)

module Met = Sympiler_metrics.Metrics

let metrics_bench () =
  header "Metrics: registry overhead + fidelity (writes BENCH_metrics.json)";
  let was_on = Met.enabled () in
  (* -- (a) overhead on the serving path -- *)
  let d = prob 2 in
  let al = d.p.Sympiler.Suite.a_lower in
  let h = Sympiler.Cholesky.compile al in
  let p = Sympiler.Cholesky.plan h in
  ignore (Sympiler.Cholesky.execute_ip p al);
  let t0 = Prof.now_seconds () in
  ignore (Sympiler.Cholesky.execute_ip p al);
  let once = Prof.now_seconds () -. t0 in
  let inner = max 1 (int_of_float (min_window /. Float.max once 1e-7)) in
  let time_loop () =
    let t0 = Prof.now_seconds () in
    for _ = 1 to inner do
      ignore (Sympiler.Cholesky.execute_ip p al)
    done;
    (Prof.now_seconds () -. t0) /. float_of_int inner
  in
  let best_on = ref infinity and best_off = ref infinity in
  for _ = 1 to reps_outer do
    Met.disable ();
    best_off := Float.min !best_off (time_loop ());
    Met.enable ();
    best_on := Float.min !best_on (time_loop ())
  done;
  Met.disable ();
  let overhead = (!best_on -. !best_off) /. !best_off in
  let overhead_ok = overhead <= 0.02 in
  Printf.printf
    "steady refactor  : off %.3fms  on %.3fms  overhead %+.3f%% (gate <= 2%%)\n"
    (!best_off *. 1e3) (!best_on *. 1e3) (overhead *. 1e2);
  (* -- (b) percentile fidelity vs a sorted-array oracle -- *)
  let nsamples = 20_000 in
  let samples = Array.make nsamples 0 in
  let state = ref 0x2545F4914F6CDD1D in
  let next () =
    state := ((!state * 25214903917) + 11) land ((1 lsl 48) - 1);
    !state lsr 17
  in
  (* Log-uniform-ish latencies, ~100ns to ~100ms: exponent first, then
     jitter inside the decade, i.e. a long right tail like real serving. *)
  for i = 0 to nsamples - 1 do
    let e = next () mod 20 in
    let base = 1 lsl e in
    samples.(i) <- 100 + (base * 50) + (next () mod ((base * 10) + 1))
  done;
  let hh =
    Met.histogram "bench_metrics_fidelity"
      ~help:"Synthetic latency sample for the percentile-fidelity gate"
  in
  Met.enable ();
  Array.iter (fun v -> Met.observe_ns hh v) samples;
  let snap = Met.snapshot hh in
  Met.disable ();
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let oracle q =
    sorted.(min (nsamples - 1)
              (max 0 (int_of_float (Float.ceil (q *. float_of_int nsamples)) - 1)))
  in
  let bucket_close q est_s =
    let est_ns = int_of_float ((est_s *. 1e9) +. 0.5) in
    abs (Met.bucket_of_ns est_ns - Met.bucket_of_ns (oracle q)) <= 1
  in
  let exact_sum = Array.fold_left ( + ) 0 samples in
  let exact_max = Array.fold_left max 0 samples in
  let sum_exact = int_of_float ((snap.Met.sum *. 1e9) +. 0.5) = exact_sum in
  let max_exact = int_of_float ((snap.Met.max *. 1e9) +. 0.5) = exact_max in
  let percentiles_ok =
    snap.Met.count = nsamples
    && bucket_close 0.50 snap.Met.p50
    && bucket_close 0.90 snap.Met.p90
    && bucket_close 0.99 snap.Met.p99
    && sum_exact && max_exact
  in
  Printf.printf
    "histogram        : p50 %.0f/%d ns  p99 %.0f/%d ns (est/oracle)  \
     sum_exact=%b max_exact=%b\n"
    (snap.Met.p50 *. 1e9) (oracle 0.50) (snap.Met.p99 *. 1e9) (oracle 0.99)
    sum_exact max_exact;
  (* -- (c) cross-domain counter exactness -- *)
  let c =
    Met.counter "bench_metrics_stress"
      ~help:"Cross-domain increment-loss stress for the sharded cells"
  in
  let perdom = 200_000 and ndom = 4 in
  Met.enable ();
  let doms =
    Array.init (ndom - 1) (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to perdom do
              Met.inc c 1
            done))
  in
  for _ = 1 to perdom do
    Met.inc c 1
  done;
  Array.iter Domain.join doms;
  let total = Met.counter_value c in
  let counters_exact = total = perdom * ndom in
  Printf.printf "domain stress    : %d domains x %d incs -> %d (exact=%b)\n"
    ndom perdom total counters_exact;
  (* -- (d) hot-path allocation + exposition conformance -- *)
  let alloc_words enabled =
    if enabled then Met.enable () else Met.disable ();
    (* warm both paths once so any lazy state is settled *)
    Met.inc c 1;
    Met.observe_ns hh 1234;
    let w0 = Gc.minor_words () in
    for i = 1 to 1_000 do
      Met.inc c 1;
      Met.observe_ns hh (i * 100)
    done;
    Met.disable ();
    int_of_float (Gc.minor_words () -. w0)
  in
  let enabled_words = alloc_words true in
  let disabled_words = alloc_words false in
  let zero_alloc = enabled_words = 0 && disabled_words = 0 in
  Met.enable ();
  let expo = Met.to_openmetrics () in
  Met.disable ();
  let lint = Met.lint_openmetrics expo in
  let exposition_ok = lint = Ok () in
  (match lint with
  | Ok () -> ()
  | Error e -> Printf.printf "openmetrics lint : FAILED: %s\n" e);
  Printf.printf
    "hot path         : minor words/1k records on=%d off=%d  \
     openmetrics_lint=%b\n"
    enabled_words disabled_words exposition_ok;
  if was_on then Met.enable ();
  let verdict =
    overhead_ok && percentiles_ok && counters_exact && zero_alloc
    && exposition_ok
  in
  Printf.printf
    "overhead_ok=%b percentiles_ok=%b counters_exact=%b zero_alloc=%b \
     exposition_ok=%b verdict=%b\n"
    overhead_ok percentiles_ok counters_exact zero_alloc exposition_ok verdict;
  let doc =
    Prof.Json.Obj
      [
        ("bench", Prof.Json.Str "metrics");
        ("quick", Prof.Json.Bool quick);
        ("steady_off_seconds", Prof.Json.Float !best_off);
        ("steady_on_seconds", Prof.Json.Float !best_on);
        ("overhead_fraction", Prof.Json.Float overhead);
        ("overhead_ok", Prof.Json.Bool overhead_ok);
        ( "histogram",
          Prof.Json.Obj
            [
              ("samples", Prof.Json.Int nsamples);
              ("count", Prof.Json.Int snap.Met.count);
              ("p50_seconds", Prof.Json.Float snap.Met.p50);
              ("p50_oracle_seconds",
               Prof.Json.Float (float_of_int (oracle 0.50) /. 1e9));
              ("p90_seconds", Prof.Json.Float snap.Met.p90);
              ("p99_seconds", Prof.Json.Float snap.Met.p99);
              ("p99_oracle_seconds",
               Prof.Json.Float (float_of_int (oracle 0.99) /. 1e9));
              ("sum_exact", Prof.Json.Bool sum_exact);
              ("max_exact", Prof.Json.Bool max_exact);
            ] );
        ("percentiles_ok", Prof.Json.Bool percentiles_ok);
        ( "stress",
          Prof.Json.Obj
            [
              ("domains", Prof.Json.Int ndom);
              ("increments_per_domain", Prof.Json.Int perdom);
              ("total", Prof.Json.Int total);
            ] );
        ("counters_exact", Prof.Json.Bool counters_exact);
        ("enabled_minor_words_per_1k", Prof.Json.Int enabled_words);
        ("disabled_minor_words_per_1k", Prof.Json.Int disabled_words);
        ("zero_alloc", Prof.Json.Bool zero_alloc);
        ("exposition_ok", Prof.Json.Bool exposition_ok);
        ("verdict", Prof.Json.Bool verdict);
      ]
  in
  write_bench "BENCH_metrics.json" doc;
  section_note
    "(overhead = min-of-rounds steady refactor with the registry on vs\n\
    \ off, interleaved; percentiles must land within one log-linear\n\
    \ bucket (<= 6.25% width) of the sorted-array oracle while sum and\n\
    \ max stay exact; the 4-domain stress must lose no increments; the\n\
    \ enabled record path must allocate nothing. Full data written to\n\
    \ BENCH_metrics.json)\n"

(* ---------------------------------------------------------------- *)
(* Pipeline fusion: whole solver DAGs compiled through one shared
   symbolic analysis. Gates the fused executor's contract on suite
   problems: fused apply not slower than the staged baseline, zero
   steady-state allocation, bitwise-identical results, and the shared
   analysis ledger (every artifact computed at most once). Writes
   BENCH_pipeline.json; scripts/ci.sh greps the verdicts. *)

let pipeline_bench () =
  let module Pl = Sympiler.Pipeline in
  header "Pipeline fusion: fused vs staged solver DAGs";
  let pids = if quick then [ 1; 2; 5 ] else [ 1; 2; 5; 8; 9 ] in
  Printf.printf "%-15s %9s %12s %12s %8s %6s %9s\n" "problem" "n" "fused"
    "staged" "speedup" "alloc" "bitwise";
  let rows = ref [] in
  let all_not_slower = ref true in
  let all_zero_alloc = ref true in
  let all_bitwise = ref true in
  let all_shared = ref true in
  List.iter
    (fun id ->
      let d = prob id in
      let al = d.p.Sympiler.Suite.a_lower in
      let n = al.Csc.ncols in
      let t = Pl.compile (Pl.factor_solve `Cholesky) al in
      let p = Pl.plan t in
      Pl.factor_ip p al;
      let b = Array.init n (fun i -> sin (0.01 *. float_of_int i)) in
      let xf = Array.copy (Pl.execute_ip p b) in
      let bitwise = xf = Pl.staged_execute_ip p b in
      let fused_s = measure (fun () -> ignore (Pl.execute_ip p b)) in
      let staged_s = measure (fun () -> ignore (Pl.staged_execute_ip p b)) in
      (* per-call minor-heap delta of the fused apply (two warmups ran) *)
      let k = 20 in
      let w0 = Gc.minor_words () in
      for _ = 1 to k do
        ignore (Pl.execute_ip p b)
      done;
      let words =
        int_of_float ((Gc.minor_words () -. w0) /. float_of_int k)
      in
      let shared =
        List.for_all (fun (_, v) -> v <= 1) (Pl.analysis_runs t)
      in
      let speedup = staged_s /. Float.max fused_s 1e-12 in
      (* 5% noise tolerance: fusion must never lose, modulo jitter *)
      let not_slower = fused_s <= staged_s *. 1.05 in
      all_not_slower := !all_not_slower && not_slower;
      all_zero_alloc := !all_zero_alloc && words = 0;
      all_bitwise := !all_bitwise && bitwise;
      all_shared := !all_shared && shared;
      Printf.printf "%-15s %9d %10.1fus %10.1fus %7.2fx %6d %9b\n"
        d.p.Sympiler.Suite.name n (fused_s *. 1e6) (staged_s *. 1e6) speedup
        words bitwise;
      rows :=
        Prof.Json.Obj
          [
            ("name", Prof.Json.Str d.p.Sympiler.Suite.name);
            ("n", Prof.Json.Int n);
            ("nnz", Prof.Json.Int (Csc.nnz al));
            ("fused_seconds", Prof.Json.Float fused_s);
            ("staged_seconds", Prof.Json.Float staged_s);
            ("speedup", Prof.Json.Float speedup);
            ("minor_words_per_apply", Prof.Json.Int words);
            ("bitwise", Prof.Json.Bool bitwise);
            ("analysis_shared", Prof.Json.Bool shared);
            ("fused_boundaries", Prof.Json.Int (Pl.fused_boundaries t));
            ("symbolic_seconds", Prof.Json.Float (Pl.symbolic_seconds t));
          ]
        :: !rows)
    pids;
  let verdict =
    !all_not_slower && !all_zero_alloc && !all_bitwise && !all_shared
  in
  Printf.printf
    "fused_not_slower=%b pipeline_zero_alloc=%b fused_bitwise_identical=%b \
     analysis_shared=%b verdict=%b\n"
    !all_not_slower !all_zero_alloc !all_bitwise !all_shared verdict;
  let doc =
    Prof.Json.Obj
      [
        ("bench", Prof.Json.Str "pipeline");
        ("quick", Prof.Json.Bool quick);
        ("problems", Prof.Json.List (List.rev !rows));
        ("fused_not_slower", Prof.Json.Bool !all_not_slower);
        ("pipeline_zero_alloc", Prof.Json.Bool !all_zero_alloc);
        ("fused_bitwise_identical", Prof.Json.Bool !all_bitwise);
        ("analysis_shared", Prof.Json.Bool !all_shared);
        ("verdict", Prof.Json.Bool verdict);
      ]
  in
  write_bench "BENCH_pipeline.json" doc;
  section_note
    "(the staged baseline runs the same stage bodies with per-stage\n\
    \ copy-in/copy-out - what N independently compiled plans would do;\n\
    \ fusion removes the copies and the L/L^T boundary, so it must never\n\
    \ lose. Full data written to BENCH_pipeline.json)\n"

(* ---------------------------------------------------------------- *)
(* Rank-1 update/downdate in the plan world (the §3.3 rank-update
   method): update_ip against a full refactorization and the resulting
   crossover rank, residual drift over long canceling update/downdate
   streams, rollback and allocation gates, the incremental column
   refactorization, and the out-of-pattern escalation path. Writes
   BENCH_updown.json; scripts/ci.sh greps the verdicts. *)

let updown_bench () =
  let module C = Sympiler.Cholesky in
  header "Rank update/downdate: update_ip vs refactorization";
  let pids = if quick then [ 1; 2; 5 ] else [ 1; 2; 5; 8; 9 ] in
  Printf.printf "%-15s %9s %12s %12s %10s %6s %9s %10s\n" "problem" "n"
    "update" "refactor" "crossover" "alloc" "rollback" "drift";
  let rows = ref [] in
  let all_faster = ref true in
  let all_zero_alloc = ref true in
  let all_rollback = ref true in
  let all_drift = ref true in
  let all_incr_bitwise = ref true in
  List.iter
    (fun id ->
      let d = prob id in
      let al = d.p.Sympiler.Suite.a_lower in
      let n = al.Csc.ncols in
      let t = C.compile al in
      let p = C.plan t in
      ignore (C.execute_ip p al : Csc.t);
      let w = Rank_update.vector_like (C.plan_factor p) ~j:(n / 3) ~scale:0.2 in
      let refactor_s = measure (fun () -> ignore (C.execute_ip p al)) in
      (* a stream of pure updates only inflates the factor, so it can
         never fail mid-measurement; downdates are timed as half of a
         canceling pair for the same reason *)
      let update_s = measure (fun () -> C.update_ip p ~sigma:0.5 w) in
      ignore (C.execute_ip p al : Csc.t);
      let pair_s =
        measure (fun () ->
            C.update_ip p ~sigma:0.5 w;
            C.downdate_ip p ~sigma:0.5 w)
      in
      let downdate_s = Float.max (pair_s -. update_s) 0.0 in
      (* per-pair minor-heap delta on the steady loop (warmups ran) *)
      let k = 20 in
      let w0 = Gc.minor_words () in
      for _ = 1 to k do
        C.update_ip p ~sigma:0.5 w;
        C.downdate_ip p ~sigma:0.5 w
      done;
      let words = int_of_float ((Gc.minor_words () -. w0) /. float_of_int k) in
      (* residual drift over a long canceling update/downdate stream *)
      ignore (C.execute_ip p al : Csc.t);
      let v0 = Array.copy (C.plan_factor p).Csc.values in
      for _ = 1 to 200 do
        C.update_ip p ~sigma:0.5 w;
        C.downdate_ip p ~sigma:0.5 w
      done;
      let scale =
        Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 1.0 v0
      in
      let drift = ref 0.0 in
      Array.iteri
        (fun i v ->
          drift :=
            Float.max !drift
              (Float.abs (v -. (C.plan_factor p).Csc.values.(i)) /. scale))
        v0;
      (* a rejected downdate must leave the factor bitwise intact *)
      ignore (C.execute_ip p al : Csc.t);
      let before = Array.copy (C.plan_factor p).Csc.values in
      let rollback_ok =
        (try
           C.downdate_ip p ~sigma:1e9 w;
           false
         with Rank_update.Not_positive_definite _ -> true)
        && before = (C.plan_factor p).Csc.values
      in
      (* incremental column refactorization on a simplicial plan:
         alternate two inputs differing in one column so every timed
         call recomputes the same localized row set (a repeated input
         would diff to zero after the first call) *)
      let ts = C.compile ~opts:(Sympiler.Options.make ~simplicial:true ()) al in
      let ps = C.plan ts in
      let ps2 = C.plan ts in
      ignore (C.execute_ip ps al : Csc.t);
      ignore (C.refactor_cols_ip ps al : int);
      let al2 =
        (* bump one diagonal entry: a localized change that can only
           increase positive definiteness *)
        let values = Array.copy al.Csc.values in
        let c = n / 2 in
        for q = al.Csc.colptr.(c) to al.Csc.colptr.(c + 1) - 1 do
          if al.Csc.rowind.(q) = c then values.(q) <- values.(q) *. 1.5
        done;
        { al with Csc.values }
      in
      let incr_rows = C.refactor_cols_ip ps al2 in
      ignore (C.execute_ip ps2 al2 : Csc.t);
      let incr_bitwise =
        (C.plan_factor ps).Csc.values = (C.plan_factor ps2).Csc.values
      in
      let incr_pair_s =
        measure (fun () ->
            ignore (C.refactor_cols_ip ps al : int);
            ignore (C.refactor_cols_ip ps al2 : int))
      in
      let full_simp_s = measure (fun () -> ignore (C.execute_ip ps2 al2)) in
      let crossover =
        int_of_float (Float.ceil (refactor_s /. Float.max update_s 1e-12))
      in
      all_faster := !all_faster && update_s < refactor_s;
      all_zero_alloc := !all_zero_alloc && words = 0;
      all_rollback := !all_rollback && rollback_ok;
      all_drift := !all_drift && !drift <= 1e-10;
      all_incr_bitwise := !all_incr_bitwise && incr_bitwise;
      Printf.printf "%-15s %9d %10.1fus %10.1fus %10d %6d %9b %10.1e\n"
        d.p.Sympiler.Suite.name n (update_s *. 1e6) (refactor_s *. 1e6)
        crossover words rollback_ok !drift;
      rows :=
        Prof.Json.Obj
          [
            ("name", Prof.Json.Str d.p.Sympiler.Suite.name);
            ("n", Prof.Json.Int n);
            ("nnz_l", Prof.Json.Int (Csc.nnz (C.plan_factor p)));
            ("update_seconds", Prof.Json.Float update_s);
            ("downdate_seconds", Prof.Json.Float downdate_s);
            ("refactor_seconds", Prof.Json.Float refactor_s);
            ("crossover_rank", Prof.Json.Int crossover);
            ("updown_minor_words_per_pair", Prof.Json.Int words);
            ("rollback_ok", Prof.Json.Bool rollback_ok);
            ("drift_after_200_pairs", Prof.Json.Float !drift);
            ("incremental_rows", Prof.Json.Int incr_rows);
            ("incremental_seconds", Prof.Json.Float (incr_pair_s /. 2.0));
            ("simplicial_refactor_seconds", Prof.Json.Float full_simp_s);
            ("incremental_bitwise", Prof.Json.Bool incr_bitwise);
          ]
        :: !rows)
    pids;
  (* Escalation: an update coupling the two ends of a band can never fit
     the factor pattern, so update_ip recompiles the plan in place; the
     recompile goes through the default plan cache, so a repeated
     escalation shape skips the symbolic phase. *)
  let ab = Csc.lower (Generators.banded ~seed:11 ~n:40 ~band:2 ()) in
  let wc = { Vector.n = 40; indices = [| 0; 39 |]; values = [| 1.0; -1.0 |] } in
  let esc_once () =
    let t = C.compile ab in
    let p = C.plan t in
    ignore (C.execute_ip p ab : Csc.t);
    let t0 = Prof.now_seconds () in
    C.update_ip p ~sigma:0.5 wc;
    (Prof.now_seconds () -. t0, p.C.esc_map <> None)
  in
  let h0 = (C.cache_stats ()).Sympiler.Plan_cache.hits in
  let esc1_s, esc1_ok = esc_once () in
  let esc2_s, esc2_ok = esc_once () in
  let esc_cache_hit = (C.cache_stats ()).Sympiler.Plan_cache.hits > h0 in
  let verdict =
    !all_faster && !all_zero_alloc && !all_rollback && !all_drift
    && !all_incr_bitwise && esc1_ok && esc2_ok
  in
  Printf.printf
    "update_faster_than_refactor_below_crossover=%b updown_zero_alloc=%b \
     rollback_preserves_factor=%b drift_bounded=%b incremental_bitwise=%b \
     escalation_cache_hit=%b verdict=%b\n"
    !all_faster !all_zero_alloc !all_rollback !all_drift !all_incr_bitwise
    esc_cache_hit verdict;
  let doc =
    Prof.Json.Obj
      [
        ("bench", Prof.Json.Str "updown");
        ("quick", Prof.Json.Bool quick);
        ("problems", Prof.Json.List (List.rev !rows));
        ("escalation_first_seconds", Prof.Json.Float esc1_s);
        ("escalation_second_seconds", Prof.Json.Float esc2_s);
        ("escalation_cache_hit", Prof.Json.Bool esc_cache_hit);
        ( "update_faster_than_refactor_below_crossover",
          Prof.Json.Bool !all_faster );
        ("updown_zero_alloc", Prof.Json.Bool !all_zero_alloc);
        ("rollback_preserves_factor", Prof.Json.Bool !all_rollback);
        ("drift_bounded", Prof.Json.Bool !all_drift);
        ("incremental_bitwise", Prof.Json.Bool !all_incr_bitwise);
        ("verdict", Prof.Json.Bool verdict);
      ]
  in
  write_bench "BENCH_updown.json" doc;
  section_note
    "(update = one in-pattern rank-1 update through the plan facade;\n\
    \ crossover = how many rank-1 updates fit in one refactorization;\n\
    \ drift = max relative factor deviation after 200 canceling\n\
    \ update/downdate pairs; incremental = refactor_cols_ip over a\n\
    \ one-column change, bitwise vs the full simplicial refactor.\n\
    \ Full data written to BENCH_updown.json)\n"

(* ---------------------------------------------------------------- *)
(* Bechamel variant: one Test.make per experiment. *)

let bechamel_tests () =
  let open Bechamel in
  let d = prob 1 in
  let al = d.p.Sympiler.Suite.a_lower in
  let b = d.rhs in
  let x = Vector.sparse_to_dense b in
  let load () =
    Array.iteri (fun i _ -> x.(i) <- 0.0) x;
    Array.iteri (fun k i -> x.(i) <- b.Vector.values.(k)) b.Vector.indices
  in
  let an_e = Cholesky_ref.Eigen.analyze al in
  let an_c = Cholesky_supernodal.Cholmod.analyze al in
  let cs = Cholesky_supernodal.Sympiler.compile al in
  let c = d.tri_compiled in
  let l = d.l_factor in
  Test.make_grouped ~name:"sympiler"
    [
      Test.make ~name:"fig6/trisolve-eigen"
        (Staged.stage (fun () ->
             load ();
             Trisolve_ref.library_ip l x));
      Test.make ~name:"fig6/trisolve-sympiler"
        (Staged.stage (fun () ->
             load ();
             Trisolve_sympiler.solve_full_ip c x));
      Test.make ~name:"fig7/cholesky-eigen"
        (Staged.stage (fun () -> ignore (Cholesky_ref.Eigen.factor an_e al)));
      Test.make ~name:"fig7/cholesky-cholmod"
        (Staged.stage (fun () ->
             ignore (Cholesky_supernodal.Cholmod.factor an_c al)));
      Test.make ~name:"fig7/cholesky-sympiler"
        (Staged.stage (fun () ->
             ignore (Cholesky_supernodal.Sympiler.factor cs al)));
      Test.make ~name:"fig8/trisolve-symbolic"
        (Staged.stage (fun () -> ignore (Trisolve_sympiler.compile l b)));
      Test.make ~name:"fig9/cholesky-symbolic"
        (Staged.stage (fun () ->
             ignore (Cholesky_supernodal.Sympiler.compile al)));
      Test.make ~name:"table2/generator"
        (Staged.stage (fun () ->
             ignore
               (Generators.clique_chain ~seed:11 ~n:400 ~clique:16 ~overlap:4
                  ())));
    ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun name tbl ->
      Hashtbl.iter
        (fun test result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              Printf.printf "%-40s %-18s %14.1f ns/run\n" test name est
          | _ -> ())
        tbl)
    merged

let () =
  if use_bechamel then run_bechamel ()
  else begin
    Printf.printf
      "Sympiler reproduction benchmarks (median of %d, window %.2fs%s)\n"
      reps_outer min_window
      (if quick then ", --quick" else "");
    if run_section "phases" then phases ();
    if run_section "steady" then steady ();
    if run_section "native" then native_bench ();
    if run_section "trace" then trace_bench ();
    if run_section "parallel" then parallel_bench ();
    if run_section "ordering" then ordering_bench ();
    if run_section "metrics" then metrics_bench ();
    if run_section "pipeline" then pipeline_bench ();
    if run_section "updown" then updown_bench ();
    if run_section "table2" then table2 ();
    if run_section "fig6" then fig6 ();
    if run_section "fig7" then fig7 ();
    if run_section "fig8" then fig8 ();
    if run_section "fig9" then fig9 ();
    if run_section "intro" then intro ();
    if run_section "ablation-threshold" then ablation_threshold ();
    if run_section "ablation-lowlevel" then ablation_lowlevel ();
    if run_section "extensions" then extensions ();
    (* The large tier never rides along with the default all-sections
       sweep: it runs only when named (`--only large`) or when `--large`
       opts in explicitly. *)
    if run_section "large" && (only <> None || large_requested) then large ()
  end
