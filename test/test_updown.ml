open Sympiler_sparse
open Sympiler_kernels
open Sympiler_prof
module SC = Sympiler.Cholesky
module SL = Sympiler.Ldlt

(* Rank-1 update/downdate in the plan world: input validation (the silent-
   corruption regression), failed-downdate rollback, zero-allocation steady
   state, the update/downdate inverse law, agreement with from-scratch
   factorization of A + sigma w w^T, path-table memoization counters,
   pattern escalation, and incremental refactorization. *)

let bitwise msg (a : float array) (b : float array) =
  Alcotest.(check bool) msg true (a = b)

let minor_words_per_call f =
  f ();
  f ();
  let k = 50 in
  let w0 = Gc.minor_words () in
  for _ = 1 to k do
    f ()
  done;
  int_of_float ((Gc.minor_words () -. w0) /. float_of_int k)

(* Dense A + sigma w w^T, as a row-major array for [Csc.of_dense] /
   [Dense] comparisons. *)
let dense_updated (a : Csc.t) ~(sigma : float) (w : Vector.sparse) :
    float array array =
  let n = a.Csc.ncols in
  let d = Array.init n (fun i -> Array.init n (fun j -> Csc.get a i j)) in
  let wi = w.Vector.indices and wv = w.Vector.values in
  for s = 0 to Array.length wi - 1 do
    for t = 0 to Array.length wi - 1 do
      d.(wi.(s)).(wi.(t)) <-
        d.(wi.(s)).(wi.(t)) +. (sigma *. wv.(s) *. wv.(t))
    done
  done;
  d

(* max |L L^T - A'| over the dense reconstruction. *)
let llt_residual (l : Csc.t) (a' : float array array) : float =
  let ld = Dense.of_csc l in
  let prod = Dense.matmul ld (Dense.transpose ld) in
  Dense.max_abs_diff prod (Dense.of_csc (Csc.of_dense a'))

let spd () = Generators.clique_chain ~seed:3 ~n:80 ~clique:8 ~overlap:2 ()

(* A legal natural-order update vector for a natural-order plan: the
   pattern of factor column [j]. *)
let legal_w (p : SC.plan) ~j ~scale =
  Rank_update.vector_like (SC.plan_factor p) ~j ~scale

(* ---- validation: the silent-corruption regression ---- *)

let test_malformed_w_rejected () =
  let a = spd () in
  let al = Csc.lower a in
  let t = SC.compile al in
  let p = SC.plan t in
  ignore (SC.execute_ip p al : Csc.t);
  let before = Array.copy (SC.plan_factor p).Csc.values in
  let expect_invalid msg w =
    Alcotest.(check bool) msg true
      (try
         SC.update_ip p w;
         false
       with Invalid_argument _ -> true);
    bitwise (msg ^ ": factor untouched") before (SC.plan_factor p).Csc.values
  in
  (* Permuted (unsorted) indices: this used to corrupt L silently — the
     old code read jmin off indices.(0) and walked the wrong path. *)
  expect_invalid "unsorted indices"
    { Vector.n = a.Csc.ncols; indices = [| 7; 2 |]; values = [| 1.0; 1.0 |] };
  expect_invalid "duplicate indices"
    { Vector.n = a.Csc.ncols; indices = [| 3; 3 |]; values = [| 1.0; 1.0 |] };
  expect_invalid "out-of-range index"
    {
      Vector.n = a.Csc.ncols;
      indices = [| 2; a.Csc.ncols |];
      values = [| 1.0; 1.0 |];
    };
  (* The legacy one-shot entry points validate too. *)
  let parent = Rank_update.(ignore check_pattern) in
  ignore parent;
  Alcotest.(check bool) "legacy compile validates" true
    (try
       ignore
         (Rank_update.compile
            ~parent:(Array.make a.Csc.ncols (-1))
            {
              Vector.n = a.Csc.ncols;
              indices = [| 5; 1 |];
              values = [| 1.0; 1.0 |];
            });
       false
     with Invalid_argument _ -> true)

(* ---- update matches a from-scratch factorization ---- *)

let test_update_matches_fresh () =
  let a = spd () in
  let al = Csc.lower a in
  let t = SC.compile al in
  let p = SC.plan t in
  ignore (SC.execute_ip p al : Csc.t);
  let w = legal_w p ~j:10 ~scale:0.4 in
  SC.update_ip p ~sigma:0.7 w;
  let a' = dense_updated a ~sigma:0.7 w in
  Alcotest.(check bool) "L L^T = A + 0.7 w w^T" true
    (llt_residual (SC.plan_factor p) a' < 1e-7);
  (* Columnwise against an independent compile of A'. *)
  let t2 = SC.compile (Csc.lower (Csc.of_dense a')) in
  let l2 = SC.factor t2 (Csc.lower (Csc.of_dense a')) in
  let l = SC.plan_factor p in
  let ok = ref true in
  Csc.iter l (fun i j v ->
      if Float.abs (v -. Csc.get l2 i j) > 1e-7 then ok := false);
  Alcotest.(check bool) "columnwise = fresh compile of A'" true !ok

(* ---- failed downdate is non-destructive ---- *)

let test_downdate_rollback () =
  let a = spd () in
  let al = Csc.lower a in
  let t = SC.compile al in
  let p = SC.plan t in
  ignore (SC.execute_ip p al : Csc.t);
  let w = legal_w p ~j:5 ~scale:1.0 in
  let before = Array.copy (SC.plan_factor p).Csc.values in
  (* A - 10^9 w w^T is wildly indefinite: the downdate must fail. *)
  Alcotest.(check bool) "downdate past PD raises" true
    (try
       SC.downdate_ip p ~sigma:1e9 w;
       false
     with Rank_update.Not_positive_definite _ -> true);
  bitwise "factor rolled back bitwise" before (SC.plan_factor p).Csc.values;
  (* The plan stays fully usable: a sane downdate then a correct result. *)
  SC.downdate_ip p ~sigma:0.1 w;
  let a' = dense_updated a ~sigma:(-0.1) w in
  Alcotest.(check bool) "post-rollback downdate correct" true
    (llt_residual (SC.plan_factor p) a' < 1e-7)

(* ---- update then equal downdate recovers the factor ---- *)

let prop_update_downdate_roundtrip =
  Helpers.qtest ~count:30 "update; downdate recovers factor (<= 1e-12)"
    Helpers.arb_spd (fun a ->
      let al = Csc.lower a in
      let t = SC.compile al in
      let p = SC.plan t in
      ignore (SC.execute_ip p al : Csc.t);
      let l = SC.plan_factor p in
      let v0 = Array.copy l.Csc.values in
      let j = l.Csc.ncols / 2 in
      let w = legal_w p ~j ~scale:0.3 in
      SC.update_ip p ~sigma:0.9 w;
      SC.downdate_ip p ~sigma:0.9 w;
      let scale =
        Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 1.0 v0
      in
      let worst = ref 0.0 in
      Array.iteri
        (fun i v -> worst := Float.max !worst (Float.abs (v -. l.Csc.values.(i))))
        v0;
      !worst <= 1e-12 *. scale)

(* ---- steady-state updates allocate nothing ---- *)

let test_zero_alloc_updates () =
  let a = spd () in
  let al = Csc.lower a in
  let t = SC.compile al in
  let p = SC.plan t in
  ignore (SC.execute_ip p al : Csc.t);
  let w = legal_w p ~j:7 ~scale:0.2 in
  let words =
    minor_words_per_call (fun () ->
        SC.update_ip p ~sigma:0.5 w;
        SC.downdate_ip p ~sigma:0.5 w)
  in
  Alcotest.(check int) "minor words per update+downdate pair" 0 words

let test_zero_alloc_updates_ordered () =
  let a = spd () in
  let al = Csc.lower a in
  let t = SC.compile ~opts:(Sympiler.Options.make ~ordering:`Amd ()) al in
  let p = SC.plan t in
  ignore (SC.execute_ip p al : Csc.t);
  (* A natural-order w that is legal after permutation: map a permuted
     factor column's pattern back through the permutation. *)
  let perm =
    match t.SC.ord.Sympiler.o_perm with Some pm -> pm | None -> [||]
  in
  let l = SC.plan_factor p in
  let j = l.Csc.ncols / 3 in
  let lo = l.Csc.colptr.(j) and hi = l.Csc.colptr.(j + 1) in
  let pairs =
    Array.init (hi - lo) (fun k ->
        (perm.(l.Csc.rowind.(lo + k)), 0.2 *. l.Csc.values.(lo + k)))
  in
  Array.sort compare pairs;
  let w =
    {
      Vector.n = l.Csc.ncols;
      indices = Array.map fst pairs;
      values = Array.map snd pairs;
    }
  in
  SC.update_ip p ~sigma:0.5 w;
  Alcotest.(check bool) "no escalation for in-pattern ordered w" true
    (p.SC.esc_map = None);
  let words =
    minor_words_per_call (fun () ->
        SC.update_ip p ~sigma:0.5 w;
        SC.downdate_ip p ~sigma:0.5 w)
  in
  Alcotest.(check int) "minor words per ordered update+downdate pair" 0 words

(* ---- ordered plans: natural-order w, permuted factor ---- *)

let test_ordered_update_correct () =
  let a = Generators.grid2d ~stencil:`Five 7 7 in
  let al = Csc.lower a in
  let t = SC.compile ~opts:(Sympiler.Options.make ~ordering:`Amd ()) al in
  let p = SC.plan t in
  ignore (SC.execute_ip p al : Csc.t);
  let perm =
    match t.SC.ord.Sympiler.o_perm with Some pm -> pm | None -> [||]
  in
  let l = SC.plan_factor p in
  let j = 10 in
  let lo = l.Csc.colptr.(j) and hi = l.Csc.colptr.(j + 1) in
  let pairs =
    Array.init (hi - lo) (fun k ->
        (perm.(l.Csc.rowind.(lo + k)), 0.3 *. l.Csc.values.(lo + k)))
  in
  Array.sort compare pairs;
  let w =
    {
      Vector.n = l.Csc.ncols;
      indices = Array.map fst pairs;
      values = Array.map snd pairs;
    }
  in
  SC.update_ip p ~sigma:0.8 w;
  (* The factor is of P A' P^T: compare the permuted dense product. *)
  let a' = dense_updated a ~sigma:0.8 w in
  let n = a.Csc.ncols in
  let pa' =
    Array.init n (fun i -> Array.init n (fun k -> a'.(perm.(i)).(perm.(k))))
  in
  Alcotest.(check bool) "ordered update: L L^T = P A' P^T" true
    (llt_residual (SC.plan_factor p) pa' < 1e-7)

(* ---- path-table memoization counters ---- *)

let test_path_memoization_counters () =
  Prof.reset ();
  Prof.enable ();
  Fun.protect ~finally:(fun () ->
      Prof.disable ();
      Prof.reset ())
  @@ fun () ->
  let a = spd () in
  let al = Csc.lower a in
  let t = SC.compile al in
  let p = SC.plan t in
  ignore (SC.execute_ip p al : Csc.t);
  let w = legal_w p ~j:4 ~scale:0.2 in
  SC.update_ip p ~sigma:0.5 w;
  SC.update_ip p ~sigma:0.5 w;
  SC.downdate_ip p ~sigma:1.0 w;
  let k = Prof.counters in
  Alcotest.(check int) "one path miss (first lookup)" 1
    k.Prof.updown_path_misses;
  Alcotest.(check int) "two path hits (memoized)" 2 k.Prof.updown_path_hits;
  Alcotest.(check int) "no escalations" 0 k.Prof.updown_escalations

(* ---- escalation: out-of-pattern update recompiles the plan ---- *)

let test_escalation () =
  Prof.reset ();
  Prof.enable ();
  Fun.protect ~finally:(fun () ->
      Prof.disable ();
      Prof.reset ())
  @@ fun () ->
  (* Two disconnected grids: an update coupling them can never be inside
     the factor pattern, so it must escalate. *)
  let b = Generators.grid2d ~stencil:`Five 3 3 in
  let a = Helpers.block_diag [ b; b ] in
  let n = a.Csc.ncols in
  let al = Csc.lower a in
  let t = SC.compile al in
  let p = SC.plan t in
  ignore (SC.execute_ip p al : Csc.t);
  let w =
    { Vector.n = n; indices = [| 0; 9 |]; values = [| 1.0; -1.0 |] }
  in
  SC.update_ip p ~sigma:0.5 w;
  Alcotest.(check bool) "escalated (esc_map installed)" true
    (p.SC.esc_map <> None);
  Alcotest.(check int) "escalation counter" 1
    Prof.counters.Prof.updown_escalations;
  let a' = dense_updated a ~sigma:0.5 w in
  Alcotest.(check bool) "escalated factor correct" true
    (llt_residual (SC.plan_factor p) a' < 1e-8);
  (* The escalated plan still accepts the original natural pattern. *)
  ignore (SC.execute_ip p al : Csc.t);
  let a0 = Array.init n (fun i -> Array.init n (fun j -> Csc.get a i j)) in
  Alcotest.(check bool) "post-escalation refactor accepts natural input" true
    (llt_residual (SC.plan_factor p) a0 < 1e-8);
  (* And further in-pattern updates work on the new pattern. *)
  SC.update_ip p ~sigma:0.25 w;
  let a1 = dense_updated a ~sigma:0.25 w in
  Alcotest.(check bool) "post-escalation update correct" true
    (llt_residual (SC.plan_factor p) a1 < 1e-8)

let test_failed_escalation_preserves_plan () =
  let b = Generators.grid2d ~stencil:`Five 3 3 in
  let a = Helpers.block_diag [ b; b ] in
  let al = Csc.lower a in
  let t = SC.compile al in
  let p = SC.plan t in
  ignore (SC.execute_ip p al : Csc.t);
  let before = Array.copy (SC.plan_factor p).Csc.values in
  let w =
    {
      Vector.n = a.Csc.ncols;
      indices = [| 0; 9 |];
      values = [| 1.0; -1.0 |];
    }
  in
  (* Out-of-pattern AND indefinite: the escalation's numeric phase fails
     and the plan must stay exactly as it was. *)
  Alcotest.(check bool) "indefinite escalation raises" true
    (try
       SC.downdate_ip p ~sigma:1e9 w;
       false
     with _ -> true);
  Alcotest.(check bool) "no esc_map installed" true (p.SC.esc_map = None);
  bitwise "factor untouched" before (SC.plan_factor p).Csc.values

(* ---- incremental refactorization ---- *)

(* Copy [al] with every entry of input column [c] scaled. *)
let scale_col (al : Csc.t) (c : int) (s : float) : Csc.t =
  let values = Array.copy al.Csc.values in
  for p = al.Csc.colptr.(c) to al.Csc.colptr.(c + 1) - 1 do
    values.(p) <- values.(p) *. s
  done;
  { al with Csc.values }

let test_refactor_cols_bitwise () =
  let a = Generators.banded ~seed:7 ~n:60 ~band:4 () in
  let al = Csc.lower a in
  let t = SC.compile ~opts:(Sympiler.Options.make ~simplicial:true ()) al in
  let p1 = SC.plan t in
  let p2 = SC.plan t in
  ignore (SC.execute_ip p1 al : Csc.t);
  ignore (SC.execute_ip p2 al : Csc.t);
  (* First incremental call has no baseline: transparent full fallback. *)
  let n = al.Csc.ncols in
  Alcotest.(check int) "no-baseline fallback recomputes all rows" n
    (SC.refactor_cols_ip p1 al);
  (* Localized change: only rows reachable from column 30 recompute. *)
  let al2 = scale_col al 30 1.5 in
  ignore (SC.execute_ip p2 al2 : Csc.t);
  let nrows = SC.refactor_cols_ip p1 al2 in
  Alcotest.(check bool)
    (Printf.sprintf "local change recomputes few rows (%d < %d)" nrows n)
    true (nrows < n);
  bitwise "incremental = full refactor (bitwise)"
    (SC.plan_factor p2).Csc.values (SC.plan_factor p1).Csc.values;
  (* Unchanged input: zero rows recomputed. *)
  Alcotest.(check int) "unchanged input recomputes nothing" 0
    (SC.refactor_cols_ip p1 al2);
  (* A rank update invalidates the baseline: next incremental call falls
     back to a full refactor. *)
  let w = legal_w p1 ~j:3 ~scale:0.2 in
  SC.update_ip p1 w;
  Alcotest.(check int) "post-update fallback recomputes all rows" n
    (SC.refactor_cols_ip p1 al2);
  bitwise "post-fallback factor matches" (SC.plan_factor p2).Csc.values
    (SC.plan_factor p1).Csc.values

let test_refactor_cols_supernodal_close () =
  (* Supernodal plans recompute rows with the up-looking kernel: values
     agree to rounding, not bitwise (different operation order). *)
  let a = spd () in
  let al = Csc.lower a in
  let t = SC.compile al in
  let p = SC.plan t in
  ignore (SC.execute_ip p al : Csc.t);
  ignore (SC.refactor_cols_ip p al : int);
  let al2 = scale_col al 12 2.0 in
  ignore (SC.refactor_cols_ip p al2 : int);
  let t2 = SC.compile al in
  let l2 = SC.factor t2 al2 in
  let worst = ref 0.0 in
  Array.iteri
    (fun i v ->
      worst :=
        Float.max !worst (Float.abs (v -. (SC.plan_factor p).Csc.values.(i))))
    l2.Csc.values;
  Alcotest.(check bool) "supernodal incremental within 1e-9" true
    (!worst < 1e-9)

(* ---- LDL^T updates (GGMS C1) ---- *)

let test_ldlt_update_matches_fresh () =
  let a = spd () in
  let al = Csc.lower a in
  let t = SL.compile al in
  let p = SL.plan t in
  let f = SL.execute_ip p al in
  let lu = f.Ldlt.l and d = f.Ldlt.d in
  let v0 = Array.copy lu.Csc.values and d0 = Array.copy d in
  let w = Rank_update.vector_like lu ~j:6 ~scale:0.5 in
  SL.update_ip p ~sigma:0.6 w;
  (* L D L^T = A + 0.6 w w^T *)
  let n = a.Csc.ncols in
  let ld = Dense.of_csc lu in
  let dd = Dense.create n n in
  Array.iteri (fun i v -> Dense.set dd i i v) d;
  let prod = Dense.matmul (Dense.matmul ld dd) (Dense.transpose ld) in
  let a' = dense_updated a ~sigma:0.6 w in
  Alcotest.(check bool) "L D L^T = A + 0.6 w w^T" true
    (Dense.max_abs_diff prod (Dense.of_csc (Csc.of_dense a')) < 1e-7);
  (* Downdate recovers the original factors. *)
  SL.downdate_ip p ~sigma:0.6 w;
  let worst = ref 0.0 in
  Array.iteri
    (fun i v -> worst := Float.max !worst (Float.abs (v -. lu.Csc.values.(i))))
    v0;
  Array.iteri
    (fun i v -> worst := Float.max !worst (Float.abs (v -. d.(i))))
    d0;
  Alcotest.(check bool) "update; downdate recovers LDL^T (<= 1e-10)" true
    (!worst < 1e-10)

let test_ldlt_zero_pivot_rollback () =
  (* d' = d + a p^2 = 4 - 4 = 0 exactly: Zero_pivot, factors rolled back. *)
  let a = Csc.of_dense [| [| 4.0 |] |] in
  let t = SL.compile a in
  let p = SL.plan t in
  let f = SL.execute_ip p a in
  let w = { Vector.n = 1; indices = [| 0 |]; values = [| 2.0 |] } in
  Alcotest.(check bool) "exact zero pivot raises" true
    (try
       SL.downdate_ip p w;
       false
     with Ldlt.Zero_pivot 0 -> true);
  Alcotest.(check (float 0.0)) "pivot rolled back" 4.0 f.Ldlt.d.(0);
  Alcotest.(check (float 0.0)) "L rolled back" 1.0 f.Ldlt.l.Csc.values.(0)

let test_ldlt_zero_alloc () =
  let a = spd () in
  let al = Csc.lower a in
  let t = SL.compile al in
  let p = SL.plan t in
  let f = SL.execute_ip p al in
  let w = Rank_update.vector_like f.Ldlt.l ~j:9 ~scale:0.1 in
  let words =
    minor_words_per_call (fun () ->
        SL.update_ip p ~sigma:0.5 w;
        SL.downdate_ip p ~sigma:0.5 w)
  in
  Alcotest.(check int) "minor words per LDL^T update+downdate pair" 0 words

let suite =
  [
    ("malformed w rejected, factor untouched", `Quick, test_malformed_w_rejected);
    ("update matches fresh factorization", `Quick, test_update_matches_fresh);
    ("failed downdate rolls back", `Quick, test_downdate_rollback);
    prop_update_downdate_roundtrip;
    ("zero-alloc steady updates", `Quick, test_zero_alloc_updates);
    ("zero-alloc steady updates (ordered)", `Quick, test_zero_alloc_updates_ordered);
    ("ordered plan update", `Quick, test_ordered_update_correct);
    ("path-table memoization counters", `Quick, test_path_memoization_counters);
    ("escalation on out-of-pattern update", `Quick, test_escalation);
    ( "failed escalation preserves plan",
      `Quick,
      test_failed_escalation_preserves_plan );
    ("incremental refactor bitwise (simplicial)", `Quick, test_refactor_cols_bitwise);
    ( "incremental refactor close (supernodal)",
      `Quick,
      test_refactor_cols_supernodal_close );
    ("LDL^T update matches fresh", `Quick, test_ldlt_update_matches_fresh);
    ("LDL^T zero-pivot rollback", `Quick, test_ldlt_zero_pivot_rollback);
    ("LDL^T zero-alloc updates", `Quick, test_ldlt_zero_alloc);
  ]
