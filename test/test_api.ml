open Sympiler_sparse
open Sympiler_kernels

(* The public facade (Sympiler.Trisolve / Sympiler.Cholesky) and the
   prepared benchmark suite. *)

let test_trisolve_api () =
  let l = Generators.random_lower ~seed:41 ~n:120 ~density:0.08 () in
  let b = Generators.sparse_rhs ~seed:42 ~n:120 ~fill:0.05 () in
  let t = Sympiler.Trisolve.compile (l, b) in
  let oracle = Helpers.oracle_lower_solve l (Vector.sparse_to_dense b) in
  Helpers.check_close "solve" oracle (Sympiler.Trisolve.solve t b);
  let x = Vector.sparse_to_dense b in
  Sympiler.Trisolve.solve_ip t x;
  Helpers.check_close "solve_ip" oracle x;
  Alcotest.(check bool) "symbolic time recorded" true
    (t.Sympiler.Trisolve.symbolic_seconds >= 0.0);
  Alcotest.(check bool) "flops positive" true (t.Sympiler.Trisolve.flops > 0.0);
  Alcotest.(check bool) "reach nonempty" true
    (Array.length t.Sympiler.Trisolve.reach > 0)

let test_trisolve_api_rejects_nonlower () =
  let a = Generators.grid2d ~stencil:`Five 3 3 in
  let b = Generators.sparse_rhs ~seed:1 ~n:9 ~fill:0.2 () in
  Alcotest.(check bool) "rejects non-lower" true
    (try
       ignore (Sympiler.Trisolve.compile (a, b));
       false
     with Invalid_argument _ -> true)

let test_trisolve_c_code () =
  let l = Generators.random_lower ~seed:43 ~n:30 ~density:0.15 () in
  let b = Generators.sparse_rhs ~seed:44 ~n:30 ~fill:0.1 () in
  let t = Sympiler.Trisolve.compile (l, b) in
  let c = Sympiler.Trisolve.c_code t in
  Alcotest.(check bool) "has kernel" true
    (String.length c > 100)

let test_cholesky_api_variants () =
  let a = Generators.block_tridiagonal ~seed:4 ~nblocks:5 ~block:6 () in
  let al = Csc.lower a in
  let oracle = Helpers.oracle_cholesky a in
  List.iter
    (fun variant ->
      let t =
        Sympiler.Cholesky.compile
          ~opts:
            (Sympiler.Options.make
               ~simplicial:(variant = Sympiler.Cholesky.Simplicial)
               ())
          al
      in
      let l = Sympiler.Cholesky.factor t al in
      Alcotest.(check bool) "factor correct" true
        (Dense.max_abs_diff oracle (Dense.of_csc l) < 1e-7))
    [ Sympiler.Cholesky.Supernodal; Sympiler.Cholesky.Simplicial ];
  (* solve *)
  let n = a.Csc.ncols in
  let b = Array.init n (fun i -> float_of_int (i mod 3)) in
  let t = Sympiler.Cholesky.compile al in
  let x = Sympiler.Cholesky.solve t al b in
  let r = Vector.sub (Csc.spmv a x) b in
  Alcotest.(check bool) "solve residual" true (Vector.norm_inf r < 1e-8)

let test_cholesky_threshold_fallback () =
  (* Small-supernode matrix + huge threshold -> simplicial fallback, as the
     paper skips VS-Block for matrices 3,4,5,7. *)
  let al = Csc.lower (Generators.grid2d ~stencil:`Five 6 6) in
  let t =
    Sympiler.Cholesky.compile
      ~opts:(Sympiler.Options.make ~vs_block_threshold:1e9 ())
      al
  in
  Alcotest.(check bool) "fell back to simplicial" true
    (t.Sympiler.Cholesky.variant = Sympiler.Cholesky.Simplicial);
  let t2 =
    Sympiler.Cholesky.compile
      ~opts:(Sympiler.Options.make ~vs_block_threshold:0.0 ())
      al
  in
  Alcotest.(check bool) "supernodal when threshold 0" true
    (t2.Sympiler.Cholesky.variant = Sympiler.Cholesky.Supernodal)

let test_cholesky_c_code_supernodal () =
  let al = Csc.lower (Generators.block_tridiagonal ~seed:4 ~nblocks:3 ~block:4 ()) in
  let t =
    Sympiler.Cholesky.compile
      ~opts:(Sympiler.Options.make ~vs_block_threshold:0.0 ())
      al
  in
  let c = Sympiler.Cholesky.c_code t in
  Alcotest.(check bool) "supernodal C generated" true
    (String.length c > 500)

(* Compile the emitted supernodal C with gcc and compare factors. *)
let test_supernodal_c_gcc_roundtrip () =
  Helpers.require_cmd "gcc";
  begin
    let a = Generators.clique_chain ~seed:3 ~n:40 ~clique:6 ~overlap:2 () in
    let al = Csc.lower a in
    let c = Cholesky_supernodal.Sympiler.compile al in
    let expected = Cholesky_supernodal.Sympiler.factor c al in
    let code = Sympiler.Codegen_supernodal.to_c c al in
    let nnz_l = c.Cholesky_supernodal.Sympiler.an.Cholesky_supernodal.nnz_l in
    let buf = Buffer.create 8192 in
    Buffer.add_string buf code;
    Buffer.add_string buf "#include <stdio.h>\nint main(void) {\n";
    Buffer.add_string buf
      (Printf.sprintf "  static double Axv[%d] = {" (Csc.nnz al));
    Array.iteri
      (fun i v ->
        if i > 0 then Buffer.add_string buf ",";
        Buffer.add_string buf (Printf.sprintf "%.17g" v))
      al.Csc.values;
    Buffer.add_string buf "};\n";
    Buffer.add_string buf (Printf.sprintf "  static double Lxv[%d];\n" nnz_l);
    Buffer.add_string buf
      (Printf.sprintf
         "  cholesky_supernodal(Axv, Lxv);\n\
         \  for (int i = 0; i < %d; i++) printf(\"%%.17g\\n\", Lxv[i]);\n\
         \  return 0;\n\
          }\n"
         nnz_l);
    Helpers.with_temp_dir (fun dir ->
        let cfile = Filename.concat dir "chol.c" in
        let exe = Filename.concat dir "chol" in
        Out_channel.with_open_text cfile (fun oc ->
            Out_channel.output_string oc (Buffer.contents buf));
        let rc =
          Sys.command
            (Printf.sprintf "gcc -O2 -o %s %s -lm 2>/dev/null" exe cfile)
        in
        Alcotest.(check int) "gcc compiles supernodal C" 0 rc;
        let ic = Unix.open_process_in exe in
        let got = Array.init nnz_l (fun _ -> float_of_string (input_line ic)) in
        ignore (Unix.close_process_in ic);
        Helpers.check_close ~eps:1e-12 "C factor matches OCaml executor"
          expected.Csc.values got)
  end

let test_suite_prepared_small () =
  (* Avoid the expensive reordered problems here; check a natural one. *)
  let p = Sympiler.Suite.problem 1 in
  Alcotest.(check string) "name" "cbuckle" p.Sympiler.Suite.name;
  Alcotest.(check string) "ordering" "natural" p.Sympiler.Suite.ordering;
  Alcotest.(check bool) "lower is lower" true
    (Csc.is_lower_triangular p.Sympiler.Suite.a_lower);
  Alcotest.(check bool) "symmetric full" true
    (Csc.equal p.Sympiler.Suite.a_full (Csc.transpose p.Sympiler.Suite.a_full));
  (* cached *)
  let p2 = Sympiler.Suite.problem 1 in
  Alcotest.(check bool) "cache returns same" true (p == p2);
  let rhs = Sympiler.Suite.rhs_for p in
  Alcotest.(check bool) "rhs under 5%" true
    (Vector.sparse_nnz rhs <= p.Sympiler.Suite.a_full.Csc.ncols / 20)

let test_min_degree_postorder_perm () =
  let a = Generators.grid2d ~stencil:`Five 8 8 in
  let p = Sympiler.Suite.min_degree_postorder a in
  Alcotest.(check bool) "valid permutation" true (Perm.is_valid p)

let suite =
  [
    ("trisolve api", `Quick, test_trisolve_api);
    ("trisolve api rejects non-lower", `Quick, test_trisolve_api_rejects_nonlower);
    ("trisolve c_code", `Quick, test_trisolve_c_code);
    ("cholesky api variants", `Quick, test_cholesky_api_variants);
    ("cholesky threshold fallback", `Quick, test_cholesky_threshold_fallback);
    ("cholesky supernodal c_code", `Quick, test_cholesky_c_code_supernodal);
    ("supernodal C gcc roundtrip", `Slow, test_supernodal_c_gcc_roundtrip);
    ("suite prepared problem", `Quick, test_suite_prepared_small);
    ("min degree postorder perm", `Quick, test_min_degree_postorder_perm);
  ]
