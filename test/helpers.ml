open Sympiler_sparse

(* Shared test fixtures, oracles, and qcheck generators. *)

let close ?(eps = 1e-8) a b = Utils.max_rel_diff a b < eps

let check_close ?(eps = 1e-8) msg a b =
  Alcotest.(check bool) msg true (close ~eps a b)

(* The paper's Figure 1 example system (0-indexed): a 10x10 lower-triangular
   matrix whose dependence graph reproduces the reach-set of §2.2,
   Reach({1,6}) = {1,6,7,8,9,10} in the paper's 1-based numbering. *)
let figure1_l : Csc.t =
  let tr = Triplet.create ~nrows:10 ~ncols:10 () in
  let cols =
    [|
      [ 0; 6 ];
      [ 1; 4 ];
      [ 2; 5 ];
      [ 3; 5 ];
      [ 4; 5; 8 ];
      [ 5; 6; 8; 9 ];
      [ 6; 7 ];
      [ 7; 8; 9 ];
      [ 8; 9 ];
      [ 9 ];
    |]
  in
  Array.iteri
    (fun j rows ->
      List.iter
        (fun i -> Triplet.add tr i j (if i = j then 2.0 else -0.5))
        rows)
    cols;
  Csc.of_triplet tr

let figure1_beta = [| 0; 5 |]
let figure1_reach_sorted = [| 0; 5; 6; 7; 8; 9 |]

(* Dense-oracle triangular solve. *)
let oracle_lower_solve l b = Dense.lower_solve (Dense.of_csc l) b

(* Dense-oracle Cholesky of a full symmetric matrix. *)
let oracle_cholesky a = Dense.cholesky (Dense.of_csc a)

(* Small deterministic SPD matrices covering the structural classes. *)
let spd_zoo () : (string * Csc.t) list =
  [
    ("grid5_8x8", Generators.grid2d ~stencil:`Five 8 8);
    ("grid9_7x7", Generators.grid2d ~stencil:`Nine 7 7);
    ("grid3d_4", Generators.grid3d 4 4 4);
    ("clique", Generators.clique_chain ~seed:3 ~n:60 ~clique:8 ~overlap:2 ());
    ("blocktri", Generators.block_tridiagonal ~seed:4 ~nblocks:5 ~block:6 ());
    ("randband", Generators.random_banded ~seed:5 ~n:80 ~band:10 ~density:0.2 ());
    ("dense-ish", Generators.random_spd_dense ~seed:6 25);
    ("banded", Generators.banded ~seed:7 ~n:50 ~band:4 ());
    ("tiny", Generators.grid2d ~stencil:`Five 2 2);
    ("one", Csc.of_dense [| [| 4.0 |] |]);
  ]

(* Block-diagonal assembly of full symmetric matrices (disconnected
   graphs for the ordering tests). *)
let block_diag (blocks : Csc.t list) : Csc.t =
  let n = List.fold_left (fun acc b -> acc + b.Csc.ncols) 0 blocks in
  let tr = Triplet.create ~nrows:n ~ncols:n () in
  let off = ref 0 in
  List.iter
    (fun b ->
      Csc.iter b (fun i j v -> Triplet.add tr (i + !off) (j + !off) v);
      off := !off + b.Csc.ncols)
    blocks;
  Csc.of_triplet tr

(* Three disconnected grids, randomly relabeled: the pseudo-peripheral
   search must restart per component and the scramble hides the natural
   band. Deterministic (seed 42). *)
let scrambled_multigrid () : Csc.t =
  let a =
    block_diag
      [
        Generators.grid2d ~stencil:`Five 9 9;
        Generators.grid2d ~stencil:`Nine 6 13;
        Generators.grid3d 4 4 4;
      ]
  in
  let p = Perm.random (Utils.Rng.create 42) a.Csc.ncols in
  Perm.symmetric_permute p a

(* Star (dense row/column 0) plus a ring: one vertex of degree n-1 next
   to a sea of low-degree vertices — the classic quotient-graph stressor. *)
let star_ring (n : int) : Csc.t =
  let tr = Triplet.create ~nrows:n ~ncols:n () in
  for i = 0 to n - 1 do
    Triplet.add tr i i 4.0;
    if i > 0 then begin
      Triplet.add tr 0 i 1.0;
      Triplet.add tr i 0 1.0
    end;
    if i > 1 then begin
      Triplet.add tr i (i - 1) 1.0;
      Triplet.add tr (i - 1) i 1.0
    end
  done;
  Csc.of_triplet tr

(* ---- qcheck generators ---- *)

let gen_lower : Csc.t QCheck.Gen.t =
  QCheck.Gen.(
    let* n = int_range 1 80 in
    let* seed = int_range 0 10000 in
    let* dens = int_range 2 40 in
    return
      (Generators.random_lower ~seed ~n
         ~density:(float_of_int dens /. 100.0)
         ()))

let arb_lower =
  QCheck.make
    ~print:(fun l -> Printf.sprintf "lower n=%d nnz=%d" l.Csc.ncols (Csc.nnz l))
    gen_lower

let gen_spd : Csc.t QCheck.Gen.t =
  QCheck.Gen.(
    let* seed = int_range 0 10000 in
    let* kind = int_range 0 4 in
    return
      (match kind with
      | 0 -> Generators.grid2d ~stencil:`Five (3 + (seed mod 6)) (3 + (seed mod 5))
      | 1 ->
          Generators.clique_chain ~seed ~n:(20 + (seed mod 40))
            ~clique:(4 + (seed mod 6))
            ~overlap:(1 + (seed mod 3))
            ()
      | 2 ->
          Generators.random_banded ~seed ~n:(20 + (seed mod 60))
            ~band:(3 + (seed mod 8))
            ~density:0.3 ()
      | 3 -> Generators.random_spd_dense ~seed (5 + (seed mod 20))
      | _ ->
          Generators.block_tridiagonal ~seed
            ~nblocks:(2 + (seed mod 5))
            ~block:(2 + (seed mod 5))
            ()))

let arb_spd =
  QCheck.make
    ~print:(fun a -> Printf.sprintf "spd n=%d nnz=%d" a.Csc.ncols (Csc.nnz a))
    gen_spd

let gen_rhs_for (n : int) : Vector.sparse QCheck.Gen.t =
  QCheck.Gen.(
    let* seed = int_range 0 10000 in
    let* fill = int_range 1 20 in
    return (Generators.sparse_rhs ~seed ~n ~fill:(float_of_int fill /. 100.0) ()))

let arb_lower_with_rhs =
  QCheck.make
    ~print:(fun (l, b) ->
      Printf.sprintf "lower n=%d nnz=%d, rhs nnz=%d" l.Csc.ncols (Csc.nnz l)
        (Vector.sparse_nnz b))
    QCheck.Gen.(
      let* l = gen_lower in
      let* b = gen_rhs_for l.Csc.ncols in
      return (l, b))

let qtest ?(count = 100) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

(* ---- process / filesystem helpers ---- *)

(* Skip visibly (alcotest reports "SKIP") when [cmd] is not on PATH, so a
   missing toolchain can never silently hollow out a round-trip test. *)
let require_cmd cmd =
  if Sys.command (Printf.sprintf "command -v %s > /dev/null 2>&1" cmd) <> 0
  then Alcotest.skip ()

(* mkdtemp-style temp directory. [Filename.temp_file] creates a regular
   file; retry on the (astronomically unlikely) race where the name is
   taken between remove and mkdir. *)
let rec make_temp_dir () =
  let path = Filename.temp_file "sympiler" ".dir" in
  Sys.remove path;
  try
    Sys.mkdir path 0o700;
    path
  with Sys_error _ -> make_temp_dir ()

let with_temp_dir f =
  let dir = make_temp_dir () in
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter
        (fun entry -> try Sys.remove (Filename.concat dir entry) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ()
    end
  in
  Fun.protect ~finally:cleanup (fun () -> f dir)
