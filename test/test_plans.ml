open Sympiler_sparse
open Sympiler_kernels
open Sympiler_prof

(* Plans (reusable numeric workspaces) and the pattern-keyed compilation
   cache: repeated in-place execution must be bitwise-identical to the
   one-shot allocating entry points, steady state must allocate nothing
   (Gc.minor_words delta of 0 per call), and the cache must return
   physically-equal handles on hits, skip the symbolic phase, and evict in
   LRU order. *)

let bitwise msg (a : float array) (b : float array) =
  Alcotest.(check bool) msg true (a = b)

(* A mid-sized SPD fixture whose factor has both wide and narrow
   supernodes. *)
let spd () = Generators.clique_chain ~seed:3 ~n:120 ~clique:10 ~overlap:3 ()
let spd_lower () = Csc.lower (spd ())

(* Per-call minor-heap delta over repeated calls after two warmups; an
   allocation-free steady state yields exactly 0. *)
let minor_words_per_call f =
  f ();
  f ();
  let k = 50 in
  let w0 = Gc.minor_words () in
  for _ = 1 to k do
    f ()
  done;
  int_of_float ((Gc.minor_words () -. w0) /. float_of_int k)

(* ---- bitwise identity: plan reuse vs fresh factorization ---- *)

let test_supernodal_plan_bitwise () =
  let al = spd_lower () in
  let c = Cholesky_supernodal.Sympiler.compile al in
  let fresh = Cholesky_supernodal.Sympiler.factor c al in
  let p = Cholesky_supernodal.Sympiler.make_plan c in
  for i = 1 to 3 do
    Cholesky_supernodal.Sympiler.factor_ip p al;
    bitwise
      (Printf.sprintf "supernodal factor_ip #%d == fresh factor" i)
      fresh.Csc.values p.Cholesky_supernodal.Sympiler.l.Csc.values
  done

let test_simplicial_plan_bitwise () =
  let al = spd_lower () in
  let c = Cholesky_ref.Decoupled.compile al in
  let fresh = Cholesky_ref.Decoupled.factor c al in
  let p = Cholesky_ref.Decoupled.make_plan c in
  for i = 1 to 3 do
    Cholesky_ref.Decoupled.factor_ip p al;
    bitwise
      (Printf.sprintf "simplicial factor_ip #%d == fresh factor" i)
      fresh.Csc.values p.Cholesky_ref.Decoupled.l.Csc.values
  done

let test_ldlt_plan_bitwise () =
  let al = spd_lower () in
  let c = Ldlt.compile al in
  let fresh = Ldlt.factor c al in
  let p = Ldlt.make_plan c in
  for _ = 1 to 2 do
    Ldlt.factor_ip p al
  done;
  bitwise "ldlt L values" fresh.Ldlt.l.Csc.values p.Ldlt.f.Ldlt.l.Csc.values;
  bitwise "ldlt D values" fresh.Ldlt.d p.Ldlt.f.Ldlt.d

let test_lu_plan_bitwise () =
  let a = spd () in
  let c = Lu.Sympiler.compile a in
  let fresh = Lu.Sympiler.factor c a in
  let p = Lu.Sympiler.make_plan c in
  for _ = 1 to 2 do
    Lu.Sympiler.factor_ip p a
  done;
  bitwise "lu L values" fresh.Lu.l.Csc.values p.Lu.Sympiler.f.Lu.l.Csc.values;
  bitwise "lu U values" fresh.Lu.u.Csc.values p.Lu.Sympiler.f.Lu.u.Csc.values

let test_ic0_plan_bitwise () =
  let al = spd_lower () in
  let c = Ic0.compile al in
  let fresh = Ic0.factor c al in
  let p = Ic0.make_plan c in
  for _ = 1 to 2 do
    Ic0.factor_ip p al
  done;
  bitwise "ic0 values" fresh.Csc.values p.Ic0.l.Csc.values

let test_ilu0_plan_bitwise () =
  let a = spd () in
  let c = Ilu0.compile a in
  let fresh = Ilu0.factor c a in
  let p = Ilu0.make_plan c in
  for _ = 1 to 2 do
    Ilu0.factor_ip p a
  done;
  bitwise "ilu0 values" fresh.Ilu0.values p.Ilu0.f.Ilu0.values

let test_trisolve_plan_bitwise () =
  let l = Generators.random_lower ~seed:21 ~n:90 ~density:0.1 () in
  let b = Generators.sparse_rhs ~seed:22 ~n:90 ~fill:0.08 () in
  let c = Trisolve_sympiler.compile l b in
  let fresh = Trisolve_sympiler.solve_full c b in
  let p = Trisolve_sympiler.make_plan c in
  for i = 1 to 3 do
    let x = Trisolve_sympiler.solve_ip p b in
    bitwise (Printf.sprintf "trisolve solve_ip #%d == solve_full" i) fresh x
  done

let test_trisolve_parallel_plan_bitwise () =
  let l = Generators.random_lower ~seed:23 ~n:90 ~density:0.1 () in
  let c = Trisolve_parallel.compile l in
  let b = Array.init 90 (fun i -> sin (float_of_int i)) in
  let fresh = Trisolve_parallel.solve c b in
  let seq = Trisolve_parallel.make_plan c in
  bitwise "parallel-trisolve sequential plan" fresh
    (Trisolve_parallel.solve_ip seq b);
  let par = Trisolve_parallel.make_plan ~ndomains:3 c in
  for i = 1 to 2 do
    bitwise
      (Printf.sprintf "parallel-trisolve 3-domain plan #%d" i)
      fresh
      (Trisolve_parallel.solve_ip par b)
  done

let test_cholesky_parallel_plan_bitwise () =
  let al = spd_lower () in
  let c = Cholesky_parallel.compile al in
  let fresh = Cholesky_parallel.factor c al in
  let p = Cholesky_parallel.make_plan ~ndomains:3 c in
  for i = 1 to 2 do
    Cholesky_parallel.factor_ip p al;
    bitwise
      (Printf.sprintf "parallel-cholesky factor_ip #%d" i)
      fresh.Csc.values p.Cholesky_parallel.l.Csc.values
  done

(* Facade plans: execute_ip refreshes the plan's factor view in place and
   matches the one-shot facade factor. *)
let test_facade_plan_bitwise () =
  let al = spd_lower () in
  let h = Sympiler.Cholesky.compile al in
  let fresh = Sympiler.Cholesky.factor h al in
  let p = Sympiler.Cholesky.plan h in
  let view = Sympiler.Cholesky.plan_factor p in
  ignore (Sympiler.Cholesky.execute_ip p al);
  bitwise "facade execute_ip == factor" fresh.Csc.values view.Csc.values;
  Alcotest.(check bool)
    "plan_factor view is stable" true
    (view == Sympiler.Cholesky.plan_factor p)

(* A plan stays usable after a failed factorization. *)
let test_plan_reusable_after_failure () =
  let al = spd_lower () in
  let c = Cholesky_ref.Decoupled.compile al in
  let fresh = Cholesky_ref.Decoupled.factor c al in
  let p = Cholesky_ref.Decoupled.make_plan c in
  let bad = Csc.map_values al (fun v -> -.v) in
  (try Cholesky_ref.Decoupled.factor_ip p bad
   with Cholesky_ref.Not_positive_definite _ -> ());
  Cholesky_ref.Decoupled.factor_ip p al;
  bitwise "simplicial plan recovers after Not_positive_definite"
    fresh.Csc.values p.Cholesky_ref.Decoupled.l.Csc.values

(* ---- zero allocation in steady state ---- *)

let test_zero_alloc_supernodal () =
  let al = spd_lower () in
  let c = Cholesky_supernodal.Sympiler.compile al in
  let p = Cholesky_supernodal.Sympiler.make_plan c in
  Alcotest.(check int)
    "supernodal factor_ip minor words/call" 0
    (minor_words_per_call (fun () ->
         Cholesky_supernodal.Sympiler.factor_ip p al))

let test_zero_alloc_simplicial () =
  let al = spd_lower () in
  let c = Cholesky_ref.Decoupled.compile al in
  let p = Cholesky_ref.Decoupled.make_plan c in
  Alcotest.(check int)
    "simplicial factor_ip minor words/call" 0
    (minor_words_per_call (fun () -> Cholesky_ref.Decoupled.factor_ip p al))

let test_zero_alloc_trisolve () =
  let l = Generators.random_lower ~seed:25 ~n:90 ~density:0.1 () in
  let b = Generators.sparse_rhs ~seed:26 ~n:90 ~fill:0.08 () in
  let c = Trisolve_sympiler.compile l b in
  let p = Trisolve_sympiler.make_plan c in
  Alcotest.(check int)
    "trisolve solve_ip minor words/call" 0
    (minor_words_per_call (fun () -> ignore (Trisolve_sympiler.solve_ip p b)))

let test_zero_alloc_facade () =
  let al = spd_lower () in
  let h = Sympiler.Cholesky.compile al in
  let p = Sympiler.Cholesky.plan h in
  Alcotest.(check int)
    "facade execute_ip minor words/call" 0
    (minor_words_per_call (fun () -> ignore (Sympiler.Cholesky.execute_ip p al)))

(* ---- compilation cache ---- *)

let test_cache_hit_physical_equality () =
  let cache = Sympiler.Plan_cache.create () in
  let al = spd_lower () in
  let h1 = Sympiler.Cholesky.compile ~cache al in
  (* Same structure, different values: still a hit. *)
  let al2 = Csc.map_values al (fun v -> v *. 2.0) in
  let h2 = Sympiler.Cholesky.compile ~cache al2 in
  Alcotest.(check bool) "hit returns the same handle" true (h1 == h2);
  (* Different options: a distinct entry. *)
  let h3 =
    Sympiler.Cholesky.compile ~cache
      ~opts:(Sympiler.Options.make ~simplicial:true ())
      al
  in
  Alcotest.(check bool) "different options miss" true (h3 != h1);
  let st = Sympiler.Plan_cache.stats cache in
  Alcotest.(check int) "hits" 1 st.Sympiler.Plan_cache.hits;
  Alcotest.(check int) "misses" 2 st.Sympiler.Plan_cache.misses;
  Alcotest.(check int) "length" 2 st.Sympiler.Plan_cache.length

let test_cache_hit_skips_symbolic () =
  let cache = Sympiler.Plan_cache.create () in
  let al = spd_lower () in
  Prof.reset ();
  Prof.enable ();
  let h1 = Sympiler.Cholesky.compile ~cache al in
  let entries_after_miss = Prof.scope_entries "symbolic" in
  let hits_before = Prof.counters.Prof.cache_hits in
  let h2 = Sympiler.Cholesky.compile ~cache al in
  let entries_after_hit = Prof.scope_entries "symbolic" in
  let hits_after = Prof.counters.Prof.cache_hits in
  Prof.disable ();
  Prof.reset ();
  Alcotest.(check bool) "same handle" true (h1 == h2);
  Alcotest.(check bool) "miss ran the symbolic phase" true
    (entries_after_miss > 0);
  Alcotest.(check int) "hit did not touch the symbolic timer"
    entries_after_miss entries_after_hit;
  Alcotest.(check bool) "hit counter bumped" true (hits_after > hits_before)

let test_cache_lru_eviction () =
  let cache = Sympiler.Plan_cache.create ~capacity:2 () in
  let pat seed = Generators.random_lower ~seed ~n:30 ~density:0.2 () in
  let a = pat 31 and b = pat 32 and c = pat 33 in
  let compile_count = ref 0 in
  let get p =
    Sympiler.Plan_cache.find_or_compile cache ~pattern:p (fun () ->
        incr compile_count;
        !compile_count)
  in
  let va = get a in
  let vb = get b in
  (* Touch [a] so [b] becomes least recently used, then overflow. *)
  Alcotest.(check int) "touching a hits" va (get a);
  let _vc = get c in
  Alcotest.(check int) "a survived (recently used)" va (get a);
  Alcotest.(check bool) "b was evicted (LRU) and recompiles" true
    (get b <> vb);
  Alcotest.(check int) "capacity respected" 2
    (Sympiler.Plan_cache.length cache);
  Sympiler.Plan_cache.clear cache;
  Alcotest.(check int) "clear empties" 0 (Sympiler.Plan_cache.length cache)

let test_trisolve_cache_keyed_on_rhs () =
  let cache = Sympiler.Plan_cache.create () in
  let l = Generators.random_lower ~seed:41 ~n:60 ~density:0.15 () in
  let b1 = Generators.sparse_rhs ~seed:42 ~n:60 ~fill:0.1 () in
  let b2 = Generators.sparse_rhs ~seed:43 ~n:60 ~fill:0.1 () in
  let h1 = Sympiler.Trisolve.compile ~cache (l, b1) in
  let h1' = Sympiler.Trisolve.compile ~cache (l, b1) in
  let h2 = Sympiler.Trisolve.compile ~cache (l, b2) in
  Alcotest.(check bool) "same L + same RHS pattern hits" true (h1 == h1');
  Alcotest.(check bool) "same L + different RHS pattern misses" true
    (h2 != h1)

(* ---- degenerate inputs through plans ---- *)

let empty_csc () =
  Csc.create ~nrows:0 ~ncols:0 ~colptr:[| 0 |] ~rowind:[||] ~values:[||]

let test_empty_inputs_through_plans () =
  let e = empty_csc () in
  let sp =
    Cholesky_supernodal.Sympiler.make_plan
      (Cholesky_supernodal.Sympiler.compile e)
  in
  Cholesky_supernodal.Sympiler.factor_ip sp e;
  let dp = Cholesky_ref.Decoupled.make_plan (Cholesky_ref.Decoupled.compile e) in
  Cholesky_ref.Decoupled.factor_ip dp e;
  let h = Sympiler.Cholesky.compile e in
  let fp = Sympiler.Cholesky.plan h in
  ignore (Sympiler.Cholesky.execute_ip fp e);
  Alcotest.(check int) "0x0 factor view" 0
    (Sympiler.Cholesky.plan_factor fp).Csc.ncols;
  (* n > 0 with a structurally empty RHS: the reach-set is empty and the
     plan solve returns all zeros without raising. *)
  let l = Generators.random_lower ~seed:51 ~n:20 ~density:0.2 () in
  let b0 = { Vector.n = 20; indices = [||]; values = [||] } in
  let tp = Trisolve_sympiler.make_plan (Trisolve_sympiler.compile l b0) in
  let x = Trisolve_sympiler.solve_ip tp b0 in
  Alcotest.(check bool) "empty RHS solves to zero" true
    (Array.for_all (fun v -> v = 0.0) x)

let suite =
  [
    Alcotest.test_case "supernodal plan bitwise" `Quick
      test_supernodal_plan_bitwise;
    Alcotest.test_case "simplicial plan bitwise" `Quick
      test_simplicial_plan_bitwise;
    Alcotest.test_case "ldlt plan bitwise" `Quick test_ldlt_plan_bitwise;
    Alcotest.test_case "lu plan bitwise" `Quick test_lu_plan_bitwise;
    Alcotest.test_case "ic0 plan bitwise" `Quick test_ic0_plan_bitwise;
    Alcotest.test_case "ilu0 plan bitwise" `Quick test_ilu0_plan_bitwise;
    Alcotest.test_case "trisolve plan bitwise" `Quick
      test_trisolve_plan_bitwise;
    Alcotest.test_case "parallel trisolve plan bitwise" `Quick
      test_trisolve_parallel_plan_bitwise;
    Alcotest.test_case "parallel cholesky plan bitwise" `Quick
      test_cholesky_parallel_plan_bitwise;
    Alcotest.test_case "facade plan bitwise" `Quick test_facade_plan_bitwise;
    Alcotest.test_case "plan reusable after failure" `Quick
      test_plan_reusable_after_failure;
    Alcotest.test_case "zero alloc: supernodal" `Quick
      test_zero_alloc_supernodal;
    Alcotest.test_case "zero alloc: simplicial" `Quick
      test_zero_alloc_simplicial;
    Alcotest.test_case "zero alloc: trisolve" `Quick test_zero_alloc_trisolve;
    Alcotest.test_case "zero alloc: facade execute_ip" `Quick
      test_zero_alloc_facade;
    Alcotest.test_case "cache hit is physically equal" `Quick
      test_cache_hit_physical_equality;
    Alcotest.test_case "cache hit skips symbolic" `Quick
      test_cache_hit_skips_symbolic;
    Alcotest.test_case "cache evicts in LRU order" `Quick
      test_cache_lru_eviction;
    Alcotest.test_case "trisolve cache keyed on RHS pattern" `Quick
      test_trisolve_cache_keyed_on_rhs;
    Alcotest.test_case "degenerate inputs through plans" `Quick
      test_empty_inputs_through_plans;
  ]
