open Sympiler_sparse
open Sympiler_ir
open Ast

(* The compiler: AST utilities, interpreter, lowering, inspector-guided and
   low-level transformation passes, C emission, and a gcc round-trip. *)

(* ---- expression/AST utilities ---- *)

let test_subst_and_fold () =
  let e = Binop (Add, Var "i", Binop (Mul, Int_lit 2, Var "i")) in
  let e' = subst_expr "i" (Int_lit 5) e in
  Alcotest.(check bool) "folds to 15" true
    (fold_expr [] e' = Int_lit 15)

let test_fold_const_array () =
  let e = Idx ("Lp", Int_lit 2) in
  Alcotest.(check bool) "Lp[2] = 7" true
    (fold_expr [ ("Lp", [| 1; 3; 7 |]) ] e = Int_lit 7);
  (* out-of-range index is left symbolic, not an error *)
  Alcotest.(check bool) "oob stays symbolic" true
    (fold_expr [ ("Lp", [| 1 |]) ] (Idx ("Lp", Int_lit 5)) = Idx ("Lp", Int_lit 5))

let test_subst_respects_shadowing () =
  let inner = For { index = "i"; lo = Int_lit 0; hi = Var "i"; body = []; annots = [] } in
  match subst_stmt "i" (Int_lit 9) inner with
  | For l ->
      Alcotest.(check bool) "hi substituted" true (l.hi = Int_lit 9);
      Alcotest.(check string) "index kept" "i" l.index
  | _ -> Alcotest.fail "expected For"

let test_written_read_arrays () =
  let s =
    For
      {
        index = "i";
        lo = Int_lit 0;
        hi = Int_lit 3;
        annots = [];
        body =
          [
            Update (Arr ("x", Var "i"), Sub, Load ("y", Var "i"));
            Assign (Arr ("z", Var "i"), Load ("x", Var "i"));
          ];
      }
  in
  let w = written_arrays s in
  Alcotest.(check bool) "writes x and z" true (List.mem "x" w && List.mem "z" w);
  let r = read_arrays s in
  Alcotest.(check bool) "reads y and x" true (List.mem "y" r && List.mem "x" r)

(* ---- interpreter ---- *)

let run_body ?(consts = []) body args =
  Interp.run_kernel { kname = "t"; params = []; consts; body } args

let test_interp_loop_sum () =
  let acc = Array.make 1 0.0 in
  run_body
    [
      for_ "i" (int_ 0) (int_ 10)
        [ Update (Arr ("acc", int_ 0), Add, Var "i") ];
    ]
    [ ("acc", Interp.VFloatArr acc) ];
  Alcotest.(check (float 0.0)) "sum 0..9" 45.0 acc.(0)

let test_interp_if_and_sqrt () =
  let out = Array.make 2 0.0 in
  run_body
    [
      If
        ( Binop (Sub, int_ 2, int_ 1),
          [ Assign (Arr ("out", int_ 0), Sqrt (Float_lit 16.0)) ],
          [ Assign (Arr ("out", int_ 0), Float_lit 0.0) ] );
      Assign (Arr ("out", int_ 1), Binop (Div, Float_lit 1.0, Float_lit 4.0));
    ]
    [ ("out", Interp.VFloatArr out) ];
  Alcotest.(check (float 0.0)) "sqrt branch" 4.0 out.(0);
  Alcotest.(check (float 0.0)) "float div" 0.25 out.(1)

let test_interp_const_arrays () =
  let out = Array.make 1 0.0 in
  run_body
    ~consts:[ ("idx", [| 3; 1; 2 |]) ]
    [
      Let ("k", Idx ("idx", int_ 0));
      Assign (Arr ("out", int_ 0), Var "k");
    ]
    [ ("out", Interp.VFloatArr out) ];
  Alcotest.(check (float 0.0)) "const array read" 3.0 out.(0)

let test_interp_errors () =
  Alcotest.(check bool) "unbound var" true
    (try
       run_body [ Let ("x", Var "nope") ] [];
       false
     with Interp.Runtime_error _ -> true);
  Alcotest.(check bool) "out of bounds" true
    (try
       run_body [ Let ("x", Load ("a", int_ 5)) ]
         [ ("a", Interp.VFloatArr [| 1.0 |]) ];
       false
     with Interp.Runtime_error _ -> true)

(* ---- pipeline semantics: every transformed variant equals the oracle ---- *)

let prop_pipeline_preserves_semantics =
  Helpers.qtest ~count:30 "pipeline variants preserve trisolve semantics"
    Helpers.arb_lower_with_rhs (fun (l, b) ->
      let oracle = Helpers.oracle_lower_solve l (Vector.sparse_to_dense b) in
      List.for_all
        (fun (vs, vi, ll) ->
          let r = Pipeline.trisolve ~vs_block:vs ~vi_prune:vi ~low_level:ll l b in
          Helpers.close oracle (Pipeline.run_trisolve r l b))
        [
          (false, false, false);
          (false, true, false);
          (false, true, true);
          (true, false, false);
          (true, true, false);
          (true, true, true);
        ])

let test_cholesky_pipeline_matches_oracle () =
  let a = Generators.grid2d ~stencil:`Nine 5 5 in
  let al = Csc.lower a in
  let fill = Sympiler_symbolic.Fill_pattern.analyze al in
  let lpat = fill.Sympiler_symbolic.Fill_pattern.l_pattern in
  let oracle = Helpers.oracle_cholesky a in
  List.iter
    (fun ll ->
      let r = Pipeline.cholesky ~low_level:ll al in
      let lx = Pipeline.run_cholesky r al ~nnz_l:(Csc.nnz lpat) in
      let l =
        Csc.create ~nrows:al.Csc.ncols ~ncols:al.Csc.ncols
          ~colptr:lpat.Csc.colptr ~rowind:lpat.Csc.rowind ~values:lx
      in
      Alcotest.(check bool)
        (Printf.sprintf "cholesky AST low_level=%b" ll)
        true
        (Dense.max_abs_diff oracle (Dense.of_csc l) < 1e-7))
    [ false; true ]

(* ---- individual passes ---- *)

let test_vi_prune_shape () =
  let l = Helpers.figure1_l in
  let k = Build.lower_trisolve l in
  let set = [| 0; 5; 6 |] in
  let k' = Vi_prune.apply set k in
  (* the transformed kernel holds the prune set as a constant *)
  Alcotest.(check bool) "pruneSet const added" true
    (List.mem_assoc "pruneSet" k'.consts);
  (* and its outer loop runs over the set size with a Pruned annotation *)
  match k'.body with
  | [ For lp ] ->
      Alcotest.(check bool) "bounds = set size" true
        (lp.lo = Int_lit 0 && lp.hi = Int_lit 3);
      Alcotest.(check bool) "marked pruned" true (List.mem Pruned lp.annots)
  | _ -> Alcotest.fail "expected single loop"

let test_peel_positions_threshold () =
  let l = Helpers.figure1_l in
  let reach = Sympiler_symbolic.Dep_graph.reach l Helpers.figure1_beta in
  let peel =
    Vi_prune.peel_positions ~col_nnz:(Csc.col_nnz l) ~threshold:2 reach
  in
  (* columns with nnz > 2: col 5 (nnz 4) and col 7 (nnz 3) *)
  let peeled_cols = List.map (fun pos -> reach.(pos)) peel in
  Alcotest.(check (list int)) "peeled columns" [ 5; 7 ]
    (List.sort compare peeled_cols)

let test_peel_pass_splits_loop () =
  let body =
    [
      For
        {
          index = "i";
          lo = Int_lit 0;
          hi = Int_lit 5;
          annots = [ Peel [ 2 ] ];
          body = [ Update (Arr ("x", Var "i"), Add, Float_lit 1.0) ];
        };
    ]
  in
  let out = List.concat_map (Lowlevel.peel_stmt []) body in
  (* expect: loop [0,2), inlined stmt(s), loop [3,5) *)
  let loops =
    List.filter_map (function For l -> Some (l.lo, l.hi) | _ -> None) out
  in
  Alcotest.(check bool) "two residual loops" true
    (loops = [ (Int_lit 0, Int_lit 2); (Int_lit 3, Int_lit 5) ]);
  (* semantics preserved *)
  let x = Array.make 5 0.0 in
  Interp.run_kernel { kname = "t"; params = []; consts = []; body = out }
    [ ("x", Interp.VFloatArr x) ];
  Alcotest.(check (array (float 0.0))) "all incremented" (Array.make 5 1.0) x

let test_unroll_pass () =
  let body =
    [
      For
        {
          index = "i";
          lo = Int_lit 0;
          hi = Int_lit 3;
          annots = [ Unroll 4 ];
          body = [ Update (Arr ("x", Var "i"), Add, Var "i") ];
        };
    ]
  in
  let out = List.concat_map (Lowlevel.unroll_stmt []) body in
  Alcotest.(check bool) "no loops remain" true
    (List.for_all (function For _ -> false | _ -> true) out);
  Alcotest.(check int) "three copies" 3 (List.length out)

let test_scalar_replacement_hoists () =
  let body =
    [
      For
        {
          index = "i";
          lo = Int_lit 0;
          hi = Int_lit 4;
          annots = [];
          body =
            [
              Update (Arr ("x", Var "i"), Add, Load ("c", Int_lit 0));
            ];
        };
    ]
  in
  let out = List.concat_map Lowlevel.scalar_replace_stmt body in
  (match out with
  | Let (_, Load ("c", Int_lit 0)) :: For _ :: [] -> ()
  | _ -> Alcotest.fail "expected hoisted load");
  let x = Array.make 4 0.0 and c = [| 2.5 |] in
  Interp.run_kernel { kname = "t"; params = []; consts = []; body = out }
    [ ("x", Interp.VFloatArr x); ("c", Interp.VFloatArr c) ];
  Alcotest.(check (array (float 0.0))) "semantics" (Array.make 4 2.5) x

let test_scalar_replacement_skips_written () =
  let body =
    [
      For
        {
          index = "i";
          lo = Int_lit 0;
          hi = Int_lit 4;
          annots = [];
          body =
            [
              Update (Arr ("x", Int_lit 0), Add, Load ("x", Int_lit 1));
            ];
        };
    ]
  in
  match List.concat_map Lowlevel.scalar_replace_stmt body with
  | [ For _ ] -> ()
  | _ -> Alcotest.fail "must not hoist a load from a written array"

let test_distribute_pass () =
  let mk arr =
    For
      {
        index = "i";
        lo = Int_lit 0;
        hi = Int_lit 4;
        annots = [ Distribute ];
        body =
          [
            Update (Arr (arr, Var "i"), Add, Float_lit 1.0);
            Update (Arr ("other", Var "i"), Add, Float_lit 2.0);
          ];
      }
  in
  (match Lowlevel.distribute_stmt (mk "x") with
  | [ For _; For _ ] -> ()
  | _ -> Alcotest.fail "disjoint arrays: expected two loops");
  (* same array in both statements: must not distribute *)
  match Lowlevel.distribute_stmt (mk "other") with
  | [ For _ ] -> ()
  | _ -> Alcotest.fail "shared array: must stay fused"

let test_const_propagation_specializes () =
  let body =
    [
      Let ("j", Idx ("set", Int_lit 1));
      Update (Arr ("x", Var "j"), Add, Float_lit 1.0);
    ]
  in
  match Lowlevel.propagate_stmts [ ("set", [| 4; 7 |]) ] [] body with
  | [ Update (Arr ("x", Int_lit 7), Add, Float_lit 1.0) ] -> ()
  | _ -> Alcotest.fail "expected fully specialized update"

let test_dead_loop_elimination () =
  let body =
    [
      For { index = "i"; lo = Int_lit 3; hi = Int_lit 3; annots = []; body = [] };
      Comment "keep";
    ]
  in
  match Lowlevel.propagate_stmts [] [] body with
  | [ Comment "keep" ] -> ()
  | _ -> Alcotest.fail "zero-trip loop should vanish"

(* ---- C emission ---- *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_c_emission_structure () =
  let l = Helpers.figure1_l in
  let b = { Vector.n = 10; indices = Helpers.figure1_beta; values = [| 1.0; 1.0 |] } in
  let r = Pipeline.trisolve l b in
  let c = r.Pipeline.c_code in
  List.iter
    (fun marker ->
      Alcotest.(check bool) ("contains " ^ marker) true (contains_sub c marker))
    [
      "#include <math.h>";
      "static const int pruneSet";
      "static const int blockSet";
      "static const int Lp";
      "void trisolve(double *restrict Lx, double *restrict x";
      "#pragma GCC ivdep";
    ]

let test_c_emission_cholesky () =
  let al = Csc.lower (Generators.grid2d ~stencil:`Five 4 4) in
  let r = Pipeline.cholesky al in
  let c = r.Pipeline.c_code in
  List.iter
    (fun marker ->
      Alcotest.(check bool) ("contains " ^ marker) true (contains_sub c marker))
    [
      "void cholesky(double *restrict Ax, double *restrict Lx, double *restrict \
       f)";
      "rowPos";
      "sqrt(";
    ]

(* gcc round-trip: compile the generated trisolve and compare outputs. *)
let test_gcc_roundtrip () =
  Helpers.require_cmd "gcc";
  begin
    let l = Generators.random_lower ~seed:31 ~n:40 ~density:0.15 () in
    let b = Generators.sparse_rhs ~seed:32 ~n:40 ~fill:0.1 () in
    let r = Pipeline.trisolve l b in
    let expected = Pipeline.run_trisolve r l b in
    let buf = Buffer.create 8192 in
    Buffer.add_string buf r.Pipeline.c_code;
    Buffer.add_string buf "#include <stdio.h>\nint main(void) {\n";
    let emit_arr name (a : float array) =
      Buffer.add_string buf (Printf.sprintf "  static double %s[%d] = {" name (Array.length a));
      Array.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ",";
          Buffer.add_string buf (Printf.sprintf "%.17g" v))
        a;
      Buffer.add_string buf "};\n"
    in
    emit_arr "Lxv" l.Csc.values;
    emit_arr "xv" (Vector.sparse_to_dense b);
    Buffer.add_string buf
      (Printf.sprintf "  static double tmpv[%d];\n" (max 1 r.Pipeline.tmp_size));
    Buffer.add_string buf
      "  trisolve(Lxv, xv, tmpv);\n\
      \  for (int i = 0; i < 40; i++) printf(\"%.17g\\n\", xv[i]);\n\
      \  return 0;\n\
       }\n";
    Helpers.with_temp_dir (fun dir ->
        let cfile = Filename.concat dir "t.c" in
        let exe = Filename.concat dir "t" in
        Out_channel.with_open_text cfile (fun oc ->
            Out_channel.output_string oc (Buffer.contents buf));
        let rc =
          Sys.command
            (Printf.sprintf "gcc -O2 -o %s %s -lm 2>/dev/null" exe cfile)
        in
        Alcotest.(check int) "gcc compiles generated code" 0 rc;
        let ic = Unix.open_process_in exe in
        let got = Array.init 40 (fun _ -> float_of_string (input_line ic)) in
        ignore (Unix.close_process_in ic);
        Helpers.check_close ~eps:1e-12 "gcc output matches interpreter" expected
          got)
  end

(* Same round-trip but on a supernode-rich factor, so the emitted C
   exercises the VS-Block loops (dense diagonal solve + buffered GEMV). *)
let test_gcc_roundtrip_blocked () =
  Helpers.require_cmd "gcc";
  begin
    let a = Generators.clique_chain ~seed:51 ~n:48 ~clique:8 ~overlap:2 () in
    let al = Csc.lower a in
    let l = Sympiler_kernels.Cholesky_ref.factor_simple al in
    let n = l.Csc.ncols in
    (* RHS = pattern of an early column: reaches several supernodes *)
    let lo = al.Csc.colptr.(2) and hi = al.Csc.colptr.(3) in
    let b =
      {
        Vector.n;
        indices = Array.sub al.Csc.rowind lo (hi - lo);
        values = Array.init (hi - lo) (fun t -> 1.0 +. float_of_int t);
      }
    in
    let r = Pipeline.trisolve l b in
    let expected = Pipeline.run_trisolve r l b in
    let buf = Buffer.create 8192 in
    Buffer.add_string buf r.Pipeline.c_code;
    Buffer.add_string buf "#include <stdio.h>
int main(void) {
";
    let emit_arr name (arr : float array) =
      Buffer.add_string buf
        (Printf.sprintf "  static double %s[%d] = {" name (Array.length arr));
      Array.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ",";
          Buffer.add_string buf (Printf.sprintf "%.17g" v))
        arr;
      Buffer.add_string buf "};
"
    in
    emit_arr "Lxv" l.Csc.values;
    emit_arr "xv" (Vector.sparse_to_dense b);
    Buffer.add_string buf
      (Printf.sprintf "  static double tmpv[%d];\n" (max 1 r.Pipeline.tmp_size));
    Buffer.add_string buf (Printf.sprintf "  trisolve(Lxv, xv, tmpv);\n");
    Buffer.add_string buf
      (Printf.sprintf
         "  for (int i = 0; i < %d; i++) printf(\"%%.17g\\n\", xv[i]);\n  return 0;\n}\n" n);
    Helpers.with_temp_dir (fun dir ->
        let cfile = Filename.concat dir "tb.c" in
        let exe = Filename.concat dir "tb" in
        Out_channel.with_open_text cfile (fun oc ->
            Out_channel.output_string oc (Buffer.contents buf));
        let rc =
          Sys.command
            (Printf.sprintf "gcc -O2 -o %s %s -lm 2>/dev/null" exe cfile)
        in
        Alcotest.(check int) "gcc compiles blocked code" 0 rc;
        let ic = Unix.open_process_in exe in
        let got = Array.init n (fun _ -> float_of_string (input_line ic)) in
        ignore (Unix.close_process_in ic);
        Helpers.check_close ~eps:1e-12 "blocked C matches interpreter" expected
          got)
  end

let suite =
  [
    ("subst + fold", `Quick, test_subst_and_fold);
    ("fold const arrays", `Quick, test_fold_const_array);
    ("subst shadowing", `Quick, test_subst_respects_shadowing);
    ("written/read arrays", `Quick, test_written_read_arrays);
    ("interp loop sum", `Quick, test_interp_loop_sum);
    ("interp if + sqrt", `Quick, test_interp_if_and_sqrt);
    ("interp const arrays", `Quick, test_interp_const_arrays);
    ("interp errors", `Quick, test_interp_errors);
    prop_pipeline_preserves_semantics;
    ("cholesky AST pipeline", `Quick, test_cholesky_pipeline_matches_oracle);
    ("vi-prune shape", `Quick, test_vi_prune_shape);
    ("peel positions (fig 1e)", `Quick, test_peel_positions_threshold);
    ("peel pass splits loop", `Quick, test_peel_pass_splits_loop);
    ("unroll pass", `Quick, test_unroll_pass);
    ("scalar replacement hoists", `Quick, test_scalar_replacement_hoists);
    ("scalar replacement safety", `Quick, test_scalar_replacement_skips_written);
    ("distribute pass", `Quick, test_distribute_pass);
    ("const propagation", `Quick, test_const_propagation_specializes);
    ("dead loop elimination", `Quick, test_dead_loop_elimination);
    ("C emission trisolve", `Quick, test_c_emission_structure);
    ("C emission cholesky", `Quick, test_c_emission_cholesky);
    ("gcc roundtrip", `Slow, test_gcc_roundtrip);
    ("gcc roundtrip blocked", `Slow, test_gcc_roundtrip_blocked);
  ]
