open Sympiler_sparse
open Sympiler_kernels

(* The native backend: every family's emitted C compiled to a .so and
   raced against the OCaml executor, plus the cache/fallback machinery.

   Differential law: a plan with [~engine:`Native] (or [`Native_novec])
   must produce the same values as the default OCaml plan of the same
   handle — bitwise in practice (the C follows the same operation order
   and is compiled with -ffp-contract=off), checked at 1e-15 relative to
   allow a stray last-bit difference without hiding real divergence. *)

module N = Sympiler.Native
module NE = Sympiler.Native_engine

let require_native () = if not (N.available ()) then Alcotest.skip ()

let check_vals msg (a : float array) (b : float array) =
  Alcotest.(check int) (msg ^ " length") (Array.length a) (Array.length b);
  Alcotest.(check bool)
    (Printf.sprintf "%s (max rel diff %.3g)" msg (Utils.max_rel_diff a b))
    true
    (Utils.max_rel_diff a b <= 1e-15)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* A small slice of the zoo: each distinct pattern costs one cc
   invocation on a cold cache, so keep the per-family set structural,
   not exhaustive (the qcheck laws below add random coverage). *)
let diff_zoo () =
  List.filter
    (fun (name, _) ->
      List.mem name [ "grid5_8x8"; "clique"; "blocktri"; "dense-ish"; "tiny" ])
    (Helpers.spd_zoo ())

(* ---------------- per-family differential checks ---------------- *)

let test_trisolve_native () =
  require_native ();
  let cases =
    [
      (* plain random lower: reach-set code, no VS-Block *)
      ( "random",
        Generators.random_lower ~seed:91 ~n:150 ~density:0.07 (),
        Generators.sparse_rhs ~seed:92 ~n:150 ~fill:0.06 () );
      (* a Cholesky factor: supernodal L so VS-Block (and the tmp
         buffer) participates *)
      ( "supernodal-L",
        (let a = Generators.block_tridiagonal ~seed:4 ~nblocks:5 ~block:6 () in
         let al = Csc.lower a in
         Sympiler.Cholesky.factor (Sympiler.Cholesky.compile al) al),
        Generators.sparse_rhs ~seed:93 ~n:30 ~fill:0.15 () );
    ]
  in
  List.iter
    (fun (name, l, b) ->
      let t = Sympiler.Trisolve.compile (l, b) in
      let po = Sympiler.Trisolve.plan t in
      let pn = Sympiler.Trisolve.plan ~engine:`Native t in
      Alcotest.(check bool) (name ^ ": native loaded") true
        (pn.Sympiler.Trisolve.native <> None);
      (* several executions with fresh values: steady state, not just the
         first call *)
      for round = 1 to 3 do
        let b' =
          {
            b with
            Vector.values =
              Array.map (fun v -> v *. float_of_int round) b.Vector.values;
          }
        in
        let xo = Array.copy (Sympiler.Trisolve.execute_ip po b') in
        let xn = Sympiler.Trisolve.execute_ip pn b' in
        check_vals (Printf.sprintf "%s round %d" name round) xo xn
      done)
    cases

let test_trisolve_native_ordered () =
  require_native ();
  (* ordered handle: the permute-in / permute-out path must wrap the
     native executor exactly as it wraps the OCaml one *)
  let a = Generators.grid2d ~stencil:`Five 7 7 in
  let al = Csc.lower a in
  let l = Sympiler.Cholesky.factor (Sympiler.Cholesky.compile al) al in
  let b = Generators.sparse_rhs ~seed:94 ~n:l.Csc.ncols ~fill:0.1 () in
  let p =
    Sympiler_symbolic.Postorder.compute (Sympiler_symbolic.Etree.compute l)
  in
  let t =
    Sympiler.Trisolve.compile
      ~opts:(Sympiler.Options.make ~ordering:(`Given p) ())
      (l, b)
  in
  let po = Sympiler.Trisolve.plan t in
  let pn = Sympiler.Trisolve.plan ~engine:`Native t in
  Alcotest.(check bool) "native loaded" true
    (pn.Sympiler.Trisolve.native <> None);
  check_vals "ordered trisolve"
    (Array.copy (Sympiler.Trisolve.execute_ip po b))
    (Sympiler.Trisolve.execute_ip pn b)

let cholesky_diff name t al =
  let po = Sympiler.Cholesky.plan t in
  let pn = Sympiler.Cholesky.plan ~engine:`Native t in
  Alcotest.(check bool) (name ^ ": native loaded") true
    (pn.Sympiler.Cholesky.native <> None);
  let lo = Sympiler.Cholesky.execute_ip po al in
  let ln = Sympiler.Cholesky.execute_ip pn al in
  check_vals name lo.Csc.values ln.Csc.values

let test_cholesky_native () =
  require_native ();
  List.iter
    (fun (name, a) ->
      let al = Csc.lower a in
      cholesky_diff name (Sympiler.Cholesky.compile al) al)
    (diff_zoo ());
  (* both variants forced on the same matrix *)
  let al = Csc.lower (Generators.block_tridiagonal ~seed:4 ~nblocks:5 ~block:6 ()) in
  cholesky_diff "forced supernodal"
    (Sympiler.Cholesky.compile
       ~opts:(Sympiler.Options.make ~vs_block_threshold:0.0 ())
       al)
    al;
  cholesky_diff "forced simplicial"
    (Sympiler.Cholesky.compile
       ~opts:(Sympiler.Options.make ~simplicial:true ())
       al)
    al

let test_ldlt_native () =
  require_native ();
  List.iter
    (fun (name, a) ->
      let al = Csc.lower a in
      let t = Sympiler.Ldlt.compile al in
      let po = Sympiler.Ldlt.plan t in
      let pn = Sympiler.Ldlt.plan ~engine:`Native t in
      Alcotest.(check bool) (name ^ ": native loaded") true
        (pn.Sympiler.Ldlt.native <> None);
      let fo = Sympiler.Ldlt.execute_ip po al in
      let fn = Sympiler.Ldlt.execute_ip pn al in
      check_vals (name ^ " L") fo.Ldlt.l.Csc.values fn.Ldlt.l.Csc.values;
      check_vals (name ^ " D") fo.Ldlt.d fn.Ldlt.d)
    (diff_zoo ())

let test_lu_native () =
  require_native ();
  List.iter
    (fun (name, a) ->
      let t = Sympiler.Lu.compile a in
      let po = Sympiler.Lu.plan t in
      let pn = Sympiler.Lu.plan ~engine:`Native t in
      Alcotest.(check bool) (name ^ ": native loaded") true
        (pn.Sympiler.Lu.native <> None);
      let fo = Sympiler.Lu.execute_ip po a in
      let fn = Sympiler.Lu.execute_ip pn a in
      check_vals (name ^ " L") fo.Lu.l.Csc.values fn.Lu.l.Csc.values;
      check_vals (name ^ " U") fo.Lu.u.Csc.values fn.Lu.u.Csc.values)
    (diff_zoo ())

let test_ic0_native () =
  require_native ();
  List.iter
    (fun (name, a) ->
      let al = Csc.lower a in
      let t = Sympiler.Ic0.compile al in
      let po = Sympiler.Ic0.plan t in
      let pn = Sympiler.Ic0.plan ~engine:`Native t in
      Alcotest.(check bool) (name ^ ": native loaded") true
        (pn.Sympiler.Ic0.native <> None);
      let lo = Sympiler.Ic0.execute_ip po al in
      let ln = Sympiler.Ic0.execute_ip pn al in
      check_vals name lo.Csc.values ln.Csc.values)
    (diff_zoo ())

let test_ilu0_native () =
  require_native ();
  List.iter
    (fun (name, a) ->
      let t = Sympiler.Ilu0.compile a in
      let po = Sympiler.Ilu0.plan t in
      let pn = Sympiler.Ilu0.plan ~engine:`Native t in
      Alcotest.(check bool) (name ^ ": native loaded") true
        (pn.Sympiler.Ilu0.native <> None);
      let fo = Sympiler.Ilu0.execute_ip po a in
      let fn = Sympiler.Ilu0.execute_ip pn a in
      check_vals name fo.Ilu0.values fn.Ilu0.values)
    (diff_zoo ())

(* ------------------- random (qcheck) differentials ------------------- *)

let qcheck_cholesky_native =
  Helpers.qtest ~count:12 "cholesky native = ocaml (random SPD)"
    Helpers.arb_spd (fun a ->
      (not (N.available ()))
      ||
      let al = Csc.lower a in
      let t = Sympiler.Cholesky.compile al in
      let lo =
        Sympiler.Cholesky.execute_ip (Sympiler.Cholesky.plan t) al
      in
      let ln =
        Sympiler.Cholesky.execute_ip
          (Sympiler.Cholesky.plan ~engine:`Native t)
          al
      in
      Utils.max_rel_diff lo.Csc.values ln.Csc.values <= 1e-15)

let qcheck_ldlt_native =
  Helpers.qtest ~count:12 "ldlt native = ocaml (random SPD)" Helpers.arb_spd
    (fun a ->
      (not (N.available ()))
      ||
      let al = Csc.lower a in
      let t = Sympiler.Ldlt.compile al in
      let fo = Sympiler.Ldlt.execute_ip (Sympiler.Ldlt.plan t) al in
      let fn =
        Sympiler.Ldlt.execute_ip (Sympiler.Ldlt.plan ~engine:`Native t) al
      in
      Utils.max_rel_diff fo.Ldlt.l.Csc.values fn.Ldlt.l.Csc.values <= 1e-15
      && Utils.max_rel_diff fo.Ldlt.d fn.Ldlt.d <= 1e-15)

(* --------------------- novec arm and hint stripping --------------------- *)

let test_strip_vector_hints () =
  let al = Csc.lower (Generators.block_tridiagonal ~seed:4 ~nblocks:3 ~block:4 ()) in
  let src = Sympiler.Ldlt.c_code (Sympiler.Ldlt.compile al) in
  Alcotest.(check bool) "emitted C has restrict" true (contains src "restrict");
  Alcotest.(check bool) "emitted C has ivdep" true
    (contains src "#pragma GCC ivdep");
  let stripped = NE.strip_vector_hints src in
  Alcotest.(check bool) "stripped has no restrict" false
    (contains stripped "restrict");
  Alcotest.(check bool) "stripped has no pragma" false
    (contains stripped "#pragma")

let test_novec_native () =
  require_native ();
  let a = Generators.clique_chain ~seed:3 ~n:60 ~clique:8 ~overlap:2 () in
  let al = Csc.lower a in
  let t = Sympiler.Cholesky.compile al in
  let lo = Sympiler.Cholesky.execute_ip (Sympiler.Cholesky.plan t) al in
  let pn = Sympiler.Cholesky.plan ~engine:`Native_novec t in
  Alcotest.(check bool) "novec loaded" true
    (pn.Sympiler.Cholesky.native <> None);
  let ln = Sympiler.Cholesky.execute_ip pn al in
  check_vals "novec cholesky" lo.Csc.values ln.Csc.values

(* ----------------------- failure-path semantics ----------------------- *)

let test_native_zero_pivot () =
  require_native ();
  let al = Csc.lower (Generators.grid2d ~stencil:`Five 3 3) in
  let zeros = { al with Csc.values = Array.map (fun _ -> 0.0) al.Csc.values } in
  let t = Sympiler.Ldlt.compile al in
  let pn = Sympiler.Ldlt.plan ~engine:`Native t in
  Alcotest.(check bool) "native loaded" true (pn.Sympiler.Ldlt.native <> None);
  let pivot =
    try
      ignore (Sympiler.Ldlt.execute_ip pn zeros);
      -1
    with Ldlt.Zero_pivot k -> k
  in
  Alcotest.(check int) "native reports the failing pivot" 0 pivot;
  (* the plan stays reusable after the failure *)
  let fo = Sympiler.Ldlt.execute_ip (Sympiler.Ldlt.plan t) al in
  let fn = Sympiler.Ldlt.execute_ip pn al in
  check_vals "reusable after zero pivot (L)" fo.Ldlt.l.Csc.values
    fn.Ldlt.l.Csc.values;
  check_vals "reusable after zero pivot (D)" fo.Ldlt.d fn.Ldlt.d

(* --------------------------- cache accounting --------------------------- *)

let test_so_cache () =
  require_native ();
  Helpers.with_temp_dir (fun dir ->
      Unix.putenv "SYMPILER_NATIVE_CACHE" dir;
      Fun.protect
        ~finally:(fun () -> Unix.putenv "SYMPILER_NATIVE_CACHE" "")
        (fun () ->
          N.clear_memory_cache ();
          N.reset_stats ();
          let al = Csc.lower (Generators.grid2d ~stencil:`Nine 5 5) in
          let t = Sympiler.Ic0.compile al in
          let p1 = Sympiler.Ic0.plan ~engine:`Native t in
          let s1 = N.stats () in
          Alcotest.(check int) "first plan compiles once" 1 s1.N.compiles;
          let p2 = Sympiler.Ic0.plan ~engine:`Native t in
          let s2 = N.stats () in
          Alcotest.(check int) "second plan does not recompile" 1 s2.N.compiles;
          Alcotest.(check int) "second plan is a memory hit" 1 s2.N.memory_hits;
          (match (p1.Sympiler.Ic0.native, p2.Sympiler.Ic0.native) with
          | Some e1, Some e2 ->
              Alcotest.(check bool) "memory hit returns the same kernel" true
                (e1.NE.nk == e2.NE.nk)
          | _ -> Alcotest.fail "native exec missing");
          (* drop the in-process tier: the disk tier must serve the .so
             without re-invoking the compiler *)
          N.clear_memory_cache ();
          let p3 = Sympiler.Ic0.plan ~engine:`Native t in
          let s3 = N.stats () in
          Alcotest.(check int) "disk hit does not recompile" 1 s3.N.compiles;
          Alcotest.(check int) "disk hit counted" 1 s3.N.disk_hits;
          (match p3.Sympiler.Ic0.native with
          | Some e ->
              Alcotest.(check bool) "kernel origin is the disk cache" true
                (e.NE.nk.N.origin = N.Disk_cache)
          | None -> Alcotest.fail "native exec missing");
          (* differential still holds on the disk-loaded kernel *)
          let lo = Sympiler.Ic0.execute_ip (Sympiler.Ic0.plan t) al in
          let ln = Sympiler.Ic0.execute_ip p3 al in
          check_vals "disk-loaded kernel factors" lo.Csc.values ln.Csc.values))

(* ------------------------- steady-state allocation ------------------------- *)

let minor_words_per_call (f : unit -> unit) =
  f ();
  (* warmup: first call may fault pages / lazily initialize *)
  let w0 = Gc.minor_words () in
  for _ = 1 to 50 do
    f ()
  done;
  (Gc.minor_words () -. w0) /. 50.0

let test_native_zero_alloc () =
  require_native ();
  let l = Generators.random_lower ~seed:7 ~n:200 ~density:0.05 () in
  let b = Generators.sparse_rhs ~seed:8 ~n:200 ~fill:0.05 () in
  let tt = Sympiler.Trisolve.compile (l, b) in
  let pt = Sympiler.Trisolve.plan ~engine:`Native tt in
  Alcotest.(check bool) "trisolve native loaded" true
    (pt.Sympiler.Trisolve.native <> None);
  let w = minor_words_per_call (fun () ->
      ignore (Sympiler.Trisolve.execute_ip pt b : float array))
  in
  Alcotest.(check bool)
    (Printf.sprintf "trisolve native allocates nothing (%.2f w/call)" w)
    true (w < 1.0);
  let al = Csc.lower (Generators.grid2d ~stencil:`Five 8 8) in
  let tl = Sympiler.Ldlt.compile al in
  let pl = Sympiler.Ldlt.plan ~engine:`Native tl in
  Alcotest.(check bool) "ldlt native loaded" true
    (pl.Sympiler.Ldlt.native <> None);
  let w = minor_words_per_call (fun () ->
      ignore (Sympiler.Ldlt.execute_ip pl al : Ldlt.factors))
  in
  Alcotest.(check bool)
    (Printf.sprintf "ldlt native allocates nothing (%.2f w/call)" w)
    true (w < 1.0)

(* ------------------------------ fallback ------------------------------ *)

let test_fallback_no_cc () =
  Unix.putenv "SYMPILER_CC" "/nonexistent/compiler-for-tests";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "SYMPILER_CC" "")
    (fun () ->
      (* a fresh pattern each run would still hit the memory tier from an
         earlier test of this process; drop it so the probe must run *)
      N.clear_memory_cache ();
      N.reset_stats ();
      Alcotest.(check bool) "engine reports unavailable" false (N.available ());
      let al = Csc.lower (Generators.grid2d ~stencil:`Five 4 4) in
      let t = Sympiler.Ic0.compile al in
      let p = Sympiler.Ic0.plan ~engine:`Native t in
      Alcotest.(check bool) "plan fell back to the OCaml executor" true
        (p.Sympiler.Ic0.native = None);
      let s = N.stats () in
      Alcotest.(check bool) "fallback counted" true (s.N.fallbacks >= 1);
      Alcotest.(check int) "nothing compiled" 0 s.N.compiles;
      (* the fallback plan still factors correctly *)
      let lo = Sympiler.Ic0.execute_ip (Sympiler.Ic0.plan t) al in
      let ln = Sympiler.Ic0.execute_ip p al in
      check_vals "fallback factors" lo.Csc.values ln.Csc.values)

let suite =
  [
    ("trisolve native = ocaml", `Slow, test_trisolve_native);
    ("trisolve native ordered", `Slow, test_trisolve_native_ordered);
    ("cholesky native = ocaml", `Slow, test_cholesky_native);
    ("ldlt native = ocaml", `Slow, test_ldlt_native);
    ("lu native = ocaml", `Slow, test_lu_native);
    ("ic0 native = ocaml", `Slow, test_ic0_native);
    ("ilu0 native = ocaml", `Slow, test_ilu0_native);
    qcheck_cholesky_native;
    qcheck_ldlt_native;
    ("strip vector hints", `Quick, test_strip_vector_hints);
    ("novec native = ocaml", `Slow, test_novec_native);
    ("native zero pivot", `Slow, test_native_zero_pivot);
    ("so cache accounting", `Slow, test_so_cache);
    ("native zero allocation", `Slow, test_native_zero_alloc);
    ("fallback without cc", `Quick, test_fallback_no_cc);
  ]
