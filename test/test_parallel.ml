open Sympiler_sparse
open Sympiler_kernels
open Sympiler_runtime
open Sympiler_prof

(* The persistent domain-pool runtime and the unified kernel facade:
   bitwise determinism across domain counts and repeated pool reuse,
   allocation-free parallel steady state, pool fault tolerance, the
   cost-balanced partitioner, and the KERNEL conformance of all six
   facade families. *)

(* Compile-time assertions: every facade family implements KERNEL. A
   family drifting from the uniform signature fails the build here. *)
module Check_trisolve : Sympiler.KERNEL = Sympiler.Trisolve
module Check_cholesky : Sympiler.KERNEL = Sympiler.Cholesky
module Check_ldlt : Sympiler.KERNEL = Sympiler.Ldlt
module Check_lu : Sympiler.KERNEL = Sympiler.Lu
module Check_ic0 : Sympiler.KERNEL = Sympiler.Ic0
module Check_ilu0 : Sympiler.KERNEL = Sympiler.Ilu0

let _ = Check_trisolve.cache_stats
let _ = Check_cholesky.cache_stats
let _ = Check_ldlt.cache_stats
let _ = Check_lu.cache_stats
let _ = Check_ic0.cache_stats
let _ = Check_ilu0.cache_stats

let bitwise msg (a : float array) (b : float array) =
  Alcotest.(check bool) msg true (a = b)

(* Per-call minor-heap delta over repeated calls after two warmups (the
   warmups also absorb the lazy pool spawn). *)
let minor_words_per_call f =
  f ();
  f ();
  let k = 50 in
  let w0 = Gc.minor_words () in
  for _ = 1 to k do
    f ()
  done;
  int_of_float ((Gc.minor_words () -. w0) /. float_of_int k)

(* Suite matrix 1 (cbuckle stand-in) with its exact factor, shared across
   the determinism tests; the expensive part runs once. *)
let fixture =
  lazy
    (let al = (Sympiler.Suite.problem 1).Sympiler.Suite.a_lower in
     let c = Cholesky_parallel.compile al in
     let l = Cholesky_supernodal.Sympiler.factor c.Cholesky_parallel.sym al in
     (al, c, l))

(* A two-level lower pattern whose first level is wide enough (128 >= 64)
   to exercise the pool's phase-B dispatch with real update work: columns
   [0, n/2) carry the diagonal plus one subdiagonal entry at row j + n/2. *)
let wide_lower n =
  let half = n / 2 in
  let colptr = Array.make (n + 1) 0 in
  for j = 0 to n - 1 do
    colptr.(j + 1) <- (colptr.(j) + if j < half then 2 else 1)
  done;
  let nnz = colptr.(n) in
  let rowind = Array.make nnz 0 and values = Array.make nnz 0.0 in
  for j = 0 to n - 1 do
    let p = colptr.(j) in
    rowind.(p) <- j;
    values.(p) <- 2.0;
    if j < half then begin
      rowind.(p + 1) <- j + half;
      values.(p + 1) <- 0.5
    end
  done;
  Csc.create ~nrows:n ~ncols:n ~colptr ~rowind ~values

(* ---- the partitioner ---- *)

let test_partition_balanced () =
  (* Ten expensive tasks up front, a cheap tail: boundaries must follow
     the cost mass, not the task count. *)
  let cost t = if t < 10 then 100.0 else 1.0 in
  let b = Partition.balanced ~ntasks:100 ~nparts:4 ~cost in
  Alcotest.(check int) "nparts+1 boundaries" 5 (Array.length b);
  Alcotest.(check int) "starts at 0" 0 b.(0);
  Alcotest.(check int) "ends at ntasks" 100 b.(4);
  for p = 0 to 3 do
    Alcotest.(check bool) "nondecreasing" true (b.(p) <= b.(p + 1))
  done;
  let total = Partition.chunk_cost ~cost ~lo:0 ~hi:100 in
  let ideal = total /. 4.0 in
  for p = 0 to 3 do
    let c = Partition.chunk_cost ~cost ~lo:b.(p) ~hi:b.(p + 1) in
    Alcotest.(check bool)
      (Printf.sprintf "part %d within one task of ideal" p)
      true
      (c <= ideal +. 100.0)
  done;
  (* All-zero cost degrades to equal counts. *)
  let eq = Partition.balanced ~ntasks:8 ~nparts:4 ~cost:(fun _ -> 0.0) in
  Alcotest.(check (array int)) "zero cost -> equal counts" [| 0; 2; 4; 6; 8 |] eq;
  (* Fewer tasks than parts: trailing parts are empty, range still covered. *)
  let small = Partition.balanced ~ntasks:2 ~nparts:4 ~cost:(fun _ -> 1.0) in
  Alcotest.(check int) "small range covered" 2 small.(4)

(* ---- pool basics ---- *)

let test_parse_ndomains () =
  let check_opt msg exp got = Alcotest.(check (option int)) msg exp got in
  check_opt "absent" None (Pool.parse_ndomains None);
  check_opt "empty" None (Pool.parse_ndomains (Some ""));
  check_opt "garbage" None (Pool.parse_ndomains (Some "four"));
  check_opt "zero" None (Pool.parse_ndomains (Some "0"));
  check_opt "negative" None (Pool.parse_ndomains (Some "-2"));
  check_opt "plain" (Some 4) (Pool.parse_ndomains (Some "4"));
  check_opt "whitespace" (Some 4) (Pool.parse_ndomains (Some " 4 "));
  check_opt "clamped to max_domains" (Some Pool.max_domains)
    (Pool.parse_ndomains (Some "100000"));
  Alcotest.(check bool) "default_size >= 1" true (Pool.default_size () >= 1)

let test_pool_run_basic () =
  let a = Array.make 8 0 in
  Pool.run ~nworkers:4 (fun w -> a.(w) <- w + 1);
  Alcotest.(check (array int)) "each worker ran its slot"
    [| 1; 2; 3; 4; 0; 0; 0; 0 |] a

exception Boom

let test_pool_survives_exception () =
  let propagated =
    try
      Pool.run ~nworkers:2 (fun w -> if w = 1 then raise Boom);
      false
    with Boom -> true
  in
  Alcotest.(check bool) "worker exception reaches the caller" true propagated;
  let a = Array.make 4 0 in
  Pool.run ~nworkers:4 (fun w -> a.(w) <- 1);
  Alcotest.(check int) "pool usable after the exception" 4
    (Array.fold_left ( + ) 0 a)

let test_pool_nworkers1_inline () =
  let s0 = Pool.spawned () in
  let r = ref 0 in
  Pool.run ~nworkers:1 (fun w -> r := w + 10);
  Alcotest.(check int) "task 0 ran on the caller" 10 !r;
  Alcotest.(check int) "no workers spawned for nworkers=1" s0 (Pool.spawned ())

let test_make_plan_defaults_agree () =
  (* Both kernels must default to the library's single sizing decision. *)
  let l = Csc.identity 10 in
  let tp = Trisolve_parallel.make_plan (Trisolve_parallel.compile l) in
  let cp = Cholesky_parallel.make_plan (Cholesky_parallel.compile l) in
  Alcotest.(check int) "trisolve default = Pool.default_size"
    (Pool.default_size ()) tp.Trisolve_parallel.ndomains;
  Alcotest.(check int) "cholesky default = Pool.default_size"
    (Pool.default_size ()) cp.Cholesky_parallel.ndomains

(* ---- determinism across domain counts and pool reuse ---- *)

let test_cholesky_determinism_suite () =
  let al, c, l = Lazy.force fixture in
  List.iter
    (fun nd ->
      let p = Cholesky_parallel.make_plan ~ndomains:nd c in
      for i = 1 to 2 do
        Cholesky_parallel.factor_ip p al;
        bitwise
          (Printf.sprintf "suite cholesky ndomains=%d call=%d" nd i)
          l.Csc.values p.Cholesky_parallel.l.Csc.values
      done)
    [ 1; 2; 4 ]

let test_trisolve_determinism_suite () =
  let _, _, l = Lazy.force fixture in
  let c = Trisolve_parallel.compile l in
  let n = l.Csc.ncols in
  let b = Array.init n (fun i -> cos (float_of_int i)) in
  let reference = Array.copy b in
  Trisolve_parallel.solve_ip_sequential c reference;
  List.iter
    (fun nd ->
      let p = Trisolve_parallel.make_plan ~ndomains:nd c in
      for i = 1 to 2 do
        bitwise
          (Printf.sprintf "suite trisolve ndomains=%d call=%d" nd i)
          reference
          (Trisolve_parallel.solve_ip p b)
      done)
    [ 1; 2; 4 ]

let test_determinism_wide_level () =
  (* Wide first level: the pool's phase-B path actually runs. *)
  let l = wide_lower 256 in
  let c = Trisolve_parallel.compile l in
  let b = Array.init 256 (fun i -> float_of_int ((i mod 7) - 3)) in
  let reference = Array.copy b in
  Trisolve_parallel.solve_ip_sequential c reference;
  List.iter
    (fun nd ->
      let p = Trisolve_parallel.make_plan ~ndomains:nd c in
      bitwise
        (Printf.sprintf "wide-level trisolve ndomains=%d" nd)
        reference
        (Trisolve_parallel.solve_ip p b))
    [ 1; 2; 4 ]

let test_determinism_degenerate () =
  (* 0x0 *)
  let e = Csc.zero ~nrows:0 ~ncols:0 in
  let tc = Trisolve_parallel.compile e in
  let tp = Trisolve_parallel.make_plan ~ndomains:4 tc in
  Alcotest.(check int) "0x0 solve" 0
    (Array.length (Trisolve_parallel.solve_ip tp [||]));
  let cc = Cholesky_parallel.compile e in
  let cp = Cholesky_parallel.make_plan ~ndomains:4 cc in
  Cholesky_parallel.factor_ip cp e;
  Alcotest.(check int) "0x0 factor" 0 cp.Cholesky_parallel.l.Csc.ncols;
  (* Diagonal-only pattern, one level of 100 independent columns (wider
     than the trisolve inline threshold, so the empty phase B dispatches). *)
  let d = Csc.map_values (Csc.identity 100) (fun _ -> 4.0) in
  let dc = Trisolve_parallel.compile d in
  let b = Array.make 100 2.0 in
  let reference = Array.copy b in
  Trisolve_parallel.solve_ip_sequential dc reference;
  List.iter
    (fun nd ->
      let p = Trisolve_parallel.make_plan ~ndomains:nd dc in
      bitwise
        (Printf.sprintf "diagonal trisolve ndomains=%d" nd)
        reference
        (Trisolve_parallel.solve_ip p b))
    [ 1; 4 ];
  let dcc = Cholesky_parallel.compile d in
  let seq = Cholesky_parallel.factor dcc d in
  let dp = Cholesky_parallel.make_plan ~ndomains:4 dcc in
  Cholesky_parallel.factor_ip dp d;
  bitwise "diagonal cholesky" seq.Csc.values dp.Cholesky_parallel.l.Csc.values

(* ---- pool lifecycle: allocation and counters ---- *)

let test_zero_alloc_parallel_trisolve () =
  let l = wide_lower 256 in
  let p = Trisolve_parallel.make_plan ~ndomains:4 (Trisolve_parallel.compile l) in
  let b = Array.init 256 (fun i -> float_of_int i) in
  Alcotest.(check int) "parallel solve_ip minor words/call" 0
    (minor_words_per_call (fun () -> ignore (Trisolve_parallel.solve_ip p b)))

let test_zero_alloc_parallel_cholesky () =
  (* Threshold 0 forces the supernodal path on the grid, whose etree has
     many leaves: levels wider than the inline cutoff, so the pool runs. *)
  let al = Csc.lower (Generators.grid2d ~stencil:`Five 12 12) in
  let c = Cholesky_parallel.compile al in
  let p = Cholesky_parallel.make_plan ~ndomains:4 c in
  Alcotest.(check int) "parallel factor_ip minor words/call" 0
    (minor_words_per_call (fun () -> Cholesky_parallel.factor_ip p al))

let test_pool_prof_counters () =
  let d = Csc.map_values (Csc.identity 100) (fun _ -> 2.0) in
  let p = Trisolve_parallel.make_plan ~ndomains:2 (Trisolve_parallel.compile d) in
  let b = Array.make 100 1.0 in
  Prof.reset ();
  Prof.enable ();
  ignore (Trisolve_parallel.solve_ip p b);
  Prof.disable ();
  Alcotest.(check bool) "pool_runs >= 1" true (Prof.counters.Prof.pool_runs >= 1);
  Alcotest.(check bool) "pool_tasks >= pool_runs" true
    (Prof.counters.Prof.pool_tasks >= Prof.counters.Prof.pool_runs);
  Alcotest.(check int) "pool_max_workers" 2 Prof.counters.Prof.pool_max_workers;
  Alcotest.(check bool) "imbalance recorded" true
    (Prof.counters.Prof.pool_imbalance_pct >= 100);
  Prof.reset ()

(* ---- the unified facade ---- *)

let test_facade_cholesky_ndomains () =
  let al = Csc.lower (Generators.grid2d ~stencil:`Five 12 12) in
  let h =
    Sympiler.Cholesky.compile
      ~opts:(Sympiler.Options.make ~vs_block_threshold:0.0 ())
      al
  in
  let pseq = Sympiler.Cholesky.plan h in
  let p1 = Sympiler.Cholesky.plan ~ndomains:1 h in
  let p4 = Sympiler.Cholesky.plan ~ndomains:4 h in
  let fseq = Sympiler.Cholesky.execute_ip pseq al in
  let f1 = Sympiler.Cholesky.execute_ip p1 al in
  let f4 = Sympiler.Cholesky.execute_ip p4 al in
  bitwise "facade sequential == ndomains:1" fseq.Csc.values f1.Csc.values;
  bitwise "facade ndomains:1 == ndomains:4" f1.Csc.values f4.Csc.values;
  let f4' = Sympiler.Cholesky.execute_ip p4 al in
  bitwise "facade parallel plan reuse" fseq.Csc.values f4'.Csc.values;
  Alcotest.(check bool) "plan_factor view is the executed factor" true
    (Sympiler.Cholesky.plan_factor p4 == f4')

let test_facade_simplicial_ignores_ndomains () =
  let al = Csc.lower (Generators.grid2d ~stencil:`Five 8 8) in
  let h =
    Sympiler.Cholesky.compile
      ~opts:(Sympiler.Options.make ~simplicial:true ())
      al
  in
  let p = Sympiler.Cholesky.plan ~ndomains:4 h in
  let f = Sympiler.Cholesky.execute_ip p al in
  let fresh = Sympiler.Cholesky.factor h al in
  bitwise "simplicial plan ignores ndomains" fresh.Csc.values f.Csc.values

let test_facade_trisolve_ndomains () =
  let l = Generators.random_lower ~seed:51 ~n:300 ~density:0.03 () in
  let b = Generators.sparse_rhs ~seed:52 ~n:300 ~fill:0.05 () in
  let t = Sympiler.Trisolve.compile (l, b) in
  let p1 = Sympiler.Trisolve.plan ~ndomains:1 t in
  let p4 = Sympiler.Trisolve.plan ~ndomains:4 t in
  let x1 = Array.copy (Sympiler.Trisolve.execute_ip p1 b) in
  let x4 = Sympiler.Trisolve.execute_ip p4 b in
  bitwise "facade trisolve ndomains:1 == ndomains:4" x1 x4;
  let x4' = Sympiler.Trisolve.execute_ip p4 b in
  bitwise "facade trisolve pool reuse" x1 x4';
  let oracle = Helpers.oracle_lower_solve l (Vector.sparse_to_dense b) in
  Helpers.check_close "level-set facade solve is correct" oracle x4

let test_facade_ldlt () =
  let al =
    Csc.lower (Generators.clique_chain ~seed:3 ~n:80 ~clique:8 ~overlap:2 ())
  in
  let h = Sympiler.Ldlt.compile al in
  let fresh = Sympiler.Ldlt.factor h al in
  let p = Sympiler.Ldlt.plan ~ndomains:4 h in
  let f = Sympiler.Ldlt.execute_ip p al in
  bitwise "ldlt facade L" fresh.Ldlt.l.Csc.values f.Ldlt.l.Csc.values;
  bitwise "ldlt facade D" fresh.Ldlt.d f.Ldlt.d;
  Alcotest.(check bool) "ldlt c_code" true
    (String.length (Sympiler.Ldlt.c_code h) > 200);
  let cache = Sympiler.Plan_cache.create () in
  let h1 = Sympiler.Ldlt.compile ~cache al in
  let h2 = Sympiler.Ldlt.compile ~cache al in
  Alcotest.(check bool) "ldlt cache hit is physical" true (h1 == h2)

let test_facade_lu () =
  let a = Generators.clique_chain ~seed:3 ~n:80 ~clique:8 ~overlap:2 () in
  let h = Sympiler.Lu.compile a in
  let fresh = Sympiler.Lu.factor h a in
  let p = Sympiler.Lu.plan h in
  let f = Sympiler.Lu.execute_ip p a in
  bitwise "lu facade L" fresh.Lu.l.Csc.values f.Lu.l.Csc.values;
  bitwise "lu facade U" fresh.Lu.u.Csc.values f.Lu.u.Csc.values;
  Alcotest.(check bool) "lu flops recorded" true (h.Sympiler.Lu.flops > 0.0);
  Alcotest.(check bool) "lu c_code" true
    (String.length (Sympiler.Lu.c_code h) > 200);
  let cache = Sympiler.Plan_cache.create () in
  Alcotest.(check bool) "lu cache hit is physical" true
    (Sympiler.Lu.compile ~cache a == Sympiler.Lu.compile ~cache a)

let test_facade_ic0 () =
  let al =
    Csc.lower (Generators.clique_chain ~seed:3 ~n:80 ~clique:8 ~overlap:2 ())
  in
  let h = Sympiler.Ic0.compile al in
  let fresh = Sympiler.Ic0.factor h al in
  let p = Sympiler.Ic0.plan h in
  let f = Sympiler.Ic0.execute_ip p al in
  bitwise "ic0 facade values" fresh.Csc.values f.Csc.values;
  Alcotest.(check bool) "ic0 c_code" true
    (String.length (Sympiler.Ic0.c_code h) > 200);
  Alcotest.(check bool) "ic0 rejects non-lower" true
    (try
       ignore
         (Sympiler.Ic0.compile (Generators.clique_chain ~seed:3 ~n:10 ~clique:4 ~overlap:1 ()));
       false
     with Invalid_argument _ -> true)

let test_facade_ilu0 () =
  let a = Generators.clique_chain ~seed:3 ~n:80 ~clique:8 ~overlap:2 () in
  let h = Sympiler.Ilu0.compile a in
  let fresh = Sympiler.Ilu0.factor h a in
  let p = Sympiler.Ilu0.plan h in
  let f = Sympiler.Ilu0.execute_ip p a in
  bitwise "ilu0 facade values" fresh.Ilu0.values f.Ilu0.values;
  Alcotest.(check bool) "ilu0 c_code" true
    (String.length (Sympiler.Ilu0.c_code h) > 200)

(* The four new emitters produce compilable C (syntax check only; the
   numeric roundtrip of the shared emission style is covered by the
   supernodal gcc test). *)
let test_static_c_compiles () =
  if Sys.command "which gcc > /dev/null 2>&1" <> 0 then ()
  else begin
    let a = Generators.clique_chain ~seed:3 ~n:40 ~clique:6 ~overlap:2 () in
    let al = Csc.lower a in
    [
      ("ldlt", Sympiler.Ldlt.c_code (Sympiler.Ldlt.compile al));
      ("lu", Sympiler.Lu.c_code (Sympiler.Lu.compile a));
      ("ic0", Sympiler.Ic0.c_code (Sympiler.Ic0.compile al));
      ("ilu0", Sympiler.Ilu0.c_code (Sympiler.Ilu0.compile a));
    ]
    |> List.iter (fun (name, code) ->
           let f = Filename.temp_file ("sympiler_" ^ name) ".c" in
           let oc = open_out f in
           output_string oc code;
           close_out oc;
           let rc =
             Sys.command
               (Printf.sprintf "gcc -fsyntax-only %s" (Filename.quote f))
           in
           Sys.remove f;
           Alcotest.(check int) (name ^ " C syntax") 0 rc)
  end

let suite =
  [
    Alcotest.test_case "partition: cost-balanced boundaries" `Quick
      test_partition_balanced;
    Alcotest.test_case "pool: SYMPILER_NDOMAINS parsing" `Quick
      test_parse_ndomains;
    Alcotest.test_case "pool: basic dispatch" `Quick test_pool_run_basic;
    Alcotest.test_case "pool: survives worker exception" `Quick
      test_pool_survives_exception;
    Alcotest.test_case "pool: nworkers=1 stays inline" `Quick
      test_pool_nworkers1_inline;
    Alcotest.test_case "plan defaults agree with Pool.default_size" `Quick
      test_make_plan_defaults_agree;
    Alcotest.test_case "cholesky: bitwise across ndomains (suite)" `Quick
      test_cholesky_determinism_suite;
    Alcotest.test_case "trisolve: bitwise across ndomains (suite)" `Quick
      test_trisolve_determinism_suite;
    Alcotest.test_case "trisolve: bitwise on a wide level" `Quick
      test_determinism_wide_level;
    Alcotest.test_case "degenerates: 0x0 and diagonal-only" `Quick
      test_determinism_degenerate;
    Alcotest.test_case "zero allocation: parallel trisolve" `Quick
      test_zero_alloc_parallel_trisolve;
    Alcotest.test_case "zero allocation: parallel cholesky" `Quick
      test_zero_alloc_parallel_cholesky;
    Alcotest.test_case "pool counters in Prof" `Quick test_pool_prof_counters;
    Alcotest.test_case "facade: cholesky ?ndomains" `Quick
      test_facade_cholesky_ndomains;
    Alcotest.test_case "facade: simplicial ignores ?ndomains" `Quick
      test_facade_simplicial_ignores_ndomains;
    Alcotest.test_case "facade: trisolve ?ndomains" `Quick
      test_facade_trisolve_ndomains;
    Alcotest.test_case "facade: ldlt" `Quick test_facade_ldlt;
    Alcotest.test_case "facade: lu" `Quick test_facade_lu;
    Alcotest.test_case "facade: ic0" `Quick test_facade_ic0;
    Alcotest.test_case "facade: ilu0" `Quick test_facade_ilu0;
    Alcotest.test_case "generated C for the new families" `Quick
      test_static_c_compiles;
  ]
