open Sympiler_prof
open Sympiler_metrics

(* Tests for the serving-grade metrics layer: registry identity rules,
   histogram fidelity against a sorted-array oracle, domain-safety of the
   sharded cells, the disabled-path allocation contract, OpenMetrics
   conformance, and the Prof per-worker merge that rides on the same
   sharding idea. *)

let with_metrics f =
  let was_on = Metrics.enabled () in
  Metrics.enable ();
  Fun.protect
    ~finally:(fun () -> if not was_on then Metrics.disable ())
    f

(* Registered names must be unique per test run: the registry is global
   and registrations survive reset. *)
let fresh =
  let k = ref 0 in
  fun base ->
    incr k;
    Printf.sprintf "test_metrics_%s_%d" base !k

(* ---- registration identity ---- *)

let test_same_identity_same_handle () =
  let name = fresh "identity" in
  let labels = [ ("family", "cholesky"); ("engine", "ocaml") ] in
  let c1 = Metrics.counter name ~labels in
  (* label order must not matter: identity is the sorted label set *)
  let c2 = Metrics.counter name ~labels:(List.rev labels) in
  with_metrics @@ fun () ->
  Metrics.inc c1 3;
  Metrics.inc c2 4;
  Alcotest.(check int) "one series" 7 (Metrics.counter_value c1)

let test_kind_mismatch_rejected () =
  let name = fresh "kind" in
  ignore (Metrics.counter name);
  Alcotest.check_raises "counter re-registered as gauge"
    (Invalid_argument
       (Printf.sprintf "Metrics.gauge: %S already registered as a counter" name))
    (fun () -> ignore (Metrics.gauge name))

let test_bad_names_rejected () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "leading digit" true
    (bad (fun () -> Metrics.counter "9lives"));
  Alcotest.(check bool) "space in name" true
    (bad (fun () -> Metrics.counter "a b"));
  Alcotest.(check bool) "bad label name" true
    (bad (fun () -> Metrics.counter (fresh "lbl") ~labels:[ ("le!", "x") ]));
  Alcotest.(check bool) "dup label" true
    (bad (fun () ->
         Metrics.counter (fresh "dup") ~labels:[ ("a", "1"); ("a", "2") ]))

(* ---- histogram fidelity ---- *)

(* The histogram's percentile must land in (or one bucket off) the bucket
   of the sorted-array nearest-rank quantile, and count/sum/max are exact. *)
let prop_percentiles_vs_oracle =
  Helpers.qtest ~count:60 "histogram percentiles track sorted-array oracle"
    (QCheck.make
       ~print:(fun l ->
         Printf.sprintf "%d samples, max %d" (List.length l)
           (List.fold_left max 0 l))
       QCheck.Gen.(
         let sample =
           let* e = int_range 0 35 in
           let* m = int_range 0 1000 in
           return ((1 lsl e) + m)
         in
         list_size (int_range 1 400) sample))
    (fun samples ->
      let h = Metrics.histogram (fresh "fidelity") in
      with_metrics (fun () -> List.iter (Metrics.observe_ns h) samples);
      let snap = Metrics.snapshot h in
      let sorted = Array.of_list samples in
      Array.sort compare sorted;
      let n = Array.length sorted in
      let oracle q =
        sorted.(min (n - 1)
                  (max 0
                     (int_of_float (Float.ceil (q *. float_of_int n)) - 1)))
      in
      let close q est =
        let est_ns = int_of_float ((est *. 1e9) +. 0.5) in
        abs (Metrics.bucket_of_ns est_ns - Metrics.bucket_of_ns (oracle q))
        <= 1
      in
      snap.Metrics.count = n
      && int_of_float ((snap.Metrics.sum *. 1e9) +. 0.5)
         = List.fold_left ( + ) 0 samples
      && int_of_float ((snap.Metrics.max *. 1e9) +. 0.5)
         = Array.fold_left max 0 sorted
      && close 0.50 snap.Metrics.p50
      && close 0.90 snap.Metrics.p90
      && close 0.99 snap.Metrics.p99)

let prop_bucket_geometry =
  Helpers.qtest ~count:200 "bucket_of_ns is monotone and brackets its value"
    QCheck.(make Gen.(int_bound 2_000_000_000))
    (fun v ->
      let b = Metrics.bucket_of_ns v in
      let upper = Metrics.bucket_upper_ns b in
      b >= 0
      && b < Metrics.n_buckets
      && v <= upper
      && (b = 0 || Metrics.bucket_upper_ns (b - 1) < v)
      && Metrics.bucket_of_ns upper = b)

let test_observe_seconds_rounds_to_ns () =
  let h = Metrics.histogram (fresh "seconds") in
  with_metrics @@ fun () ->
  Metrics.observe h 0.001;
  Metrics.observe h (-1.0) (* dropped *);
  Metrics.observe h Float.nan (* dropped *);
  let snap = Metrics.snapshot h in
  Alcotest.(check int) "count" 1 snap.Metrics.count;
  Alcotest.(check int) "sum ns" 1_000_000
    (int_of_float ((snap.Metrics.sum *. 1e9) +. 0.5))

(* ---- domain safety ---- *)

let test_counter_stress_exact_across_domains () =
  let c = Metrics.counter (fresh "stress") in
  let h = Metrics.histogram (fresh "stress_h") in
  let perdom = 50_000 and ndom = 4 in
  with_metrics @@ fun () ->
  let worker () =
    for i = 1 to perdom do
      Metrics.inc c 1;
      Metrics.observe_ns h i
    done
  in
  let doms = Array.init (ndom - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join doms;
  Alcotest.(check int) "no lost increments" (perdom * ndom)
    (Metrics.counter_value c);
  let snap = Metrics.snapshot h in
  Alcotest.(check int) "no lost observations" (perdom * ndom)
    snap.Metrics.count;
  Alcotest.(check int) "exact sum across domains"
    (ndom * (perdom * (perdom + 1) / 2))
    (int_of_float ((snap.Metrics.sum *. 1e9) +. 0.5))

(* The Prof data-race fix rides the same idea: kernel bump sites write a
   per-domain cell merged at the pool barrier. Drive a counter through
   Pool.run on 4 workers and demand the exact total. *)
let test_prof_merge_exact_through_pool () =
  Prof.reset ();
  Prof.enable ();
  Fun.protect ~finally:(fun () ->
      Prof.disable ();
      Prof.reset ())
  @@ fun () ->
  let perworker = 10_000 in
  Sympiler_runtime.Pool.run ~nworkers:4 (fun _rank ->
      let k = Prof.cell () in
      for _ = 1 to perworker do
        k.Prof.flops <- k.Prof.flops + 1
      done);
  (* Pool.run merges worker cells at its barrier; totals must be exact. *)
  Alcotest.(check int) "all worker bumps merged" (4 * perworker)
    Prof.counters.Prof.flops

(* ---- allocation contracts ---- *)

let words_per_1k c h =
  Metrics.inc c 1;
  Metrics.observe_ns h 42;
  let w0 = Gc.minor_words () in
  for i = 1 to 1_000 do
    Metrics.inc c 1;
    Metrics.observe_ns h (i * 7)
  done;
  int_of_float (Gc.minor_words () -. w0)

let test_disabled_path_allocates_nothing () =
  let c = Metrics.counter (fresh "alloc") in
  let h = Metrics.histogram (fresh "alloc_h") in
  Metrics.disable ();
  Alcotest.(check int) "disabled records" 0 (words_per_1k c h);
  Alcotest.(check int) "disabled counter stays 0" 0 (Metrics.counter_value c)

let test_enabled_path_allocates_nothing () =
  let c = Metrics.counter (fresh "alloc_on") in
  let h = Metrics.histogram (fresh "alloc_on_h") in
  with_metrics @@ fun () ->
  Alcotest.(check int) "enabled records" 0 (words_per_1k c h)

(* ---- exporters ---- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_openmetrics_escaping () =
  let name = fresh "escape" in
  let c =
    Metrics.counter name
      ~help:"line one\nwith \"quotes\" and \\slashes"
      ~labels:[ ("path", "a\\b\"c\nd") ]
  in
  with_metrics @@ fun () ->
  Metrics.inc c 1;
  let s = Metrics.to_openmetrics () in
  Alcotest.(check bool) "label value escaped" true
    (contains s {|path="a\\b\"c\nd"|});
  Alcotest.(check bool) "help escaped" true
    (contains s {|line one\nwith "quotes" and \\slashes|});
  Alcotest.(check bool) "counter series gets _total" true
    (contains s (name ^ "_total{"));
  match Metrics.lint_openmetrics s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "lint rejected escaped exposition: %s" e

let test_openmetrics_conformance () =
  let c = Metrics.counter (fresh "conf") ~help:"a counter" in
  let g = Metrics.gauge (fresh "conf_g") ~help:"a gauge" in
  let h = Metrics.histogram (fresh "conf_h") ~help:"a histogram" in
  with_metrics @@ fun () ->
  Metrics.inc c 5;
  Metrics.set g 2.5;
  Metrics.observe h 0.003;
  Metrics.observe h 0.8;
  let s = Metrics.to_openmetrics () in
  (match Metrics.lint_openmetrics s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "lint failed: %s" e);
  Alcotest.(check bool) "ends with EOF" true (contains s "# EOF");
  Alcotest.(check bool) "+Inf bucket present" true
    (contains s {|le="+Inf"|});
  (* The linter must actually have teeth. *)
  let broken =
    String.concat ""
      [ "# TYPE x counter\nx_total 1\nx_total{ 2\n# EOF\n" ]
  in
  (match Metrics.lint_openmetrics broken with
  | Ok () -> Alcotest.fail "lint accepted a malformed label block"
  | Error _ -> ());
  let no_eof = "# TYPE y counter\ny_total 1\n" in
  match Metrics.lint_openmetrics no_eof with
  | Ok () -> Alcotest.fail "lint accepted a missing # EOF"
  | Error _ -> ()

let test_json_and_table_exporters () =
  let name = fresh "json" in
  let c = Metrics.counter name ~labels:[ ("k", "v") ] in
  with_metrics @@ fun () ->
  Metrics.inc c 9;
  let j = Prof.Json.to_string (Metrics.to_json ()) in
  Alcotest.(check bool) "json has the series" true
    (contains j (Printf.sprintf {|"name":"%s"|} name));
  Alcotest.(check bool) "json has the value" true (contains j {|"value":9|});
  (match Prof.Json.of_string j with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "snapshot json does not re-parse: %s" e);
  let t = Metrics.to_table () in
  Alcotest.(check bool) "table has the series" true
    (contains t (name ^ "{k=\"v\"}"))

(* ---- Prof.Json.of_string (the perf_gate parser) ---- *)

let test_json_parser_fixed_cases () =
  let ok s expected =
    match Prof.Json.of_string s with
    | Ok v ->
        Alcotest.(check string)
          (Printf.sprintf "parse %s" s)
          expected (Prof.Json.to_string v)
    | Error e -> Alcotest.failf "parse %s failed: %s" s e
  in
  ok {|{"a":1,"b":[true,null,-2.5e2]}|} {|{"a":1,"b":[true,null,-250]}|};
  ok {|"A\n\\"|} {|"A\n\\"|};
  ok "  [ ]  " "[]";
  let bad s =
    match Prof.Json.of_string s with
    | Ok _ -> Alcotest.failf "parser accepted %s" s
    | Error _ -> ()
  in
  bad "{";
  bad "[1,]";
  bad {|{"a":1} trailing|}

let prop_json_roundtrip =
  Helpers.qtest ~count:100 "Json.of_string inverts Json.to_string"
    (QCheck.make
       ~print:(fun j -> Prof.Json.to_string j)
       QCheck.Gen.(
         let scalar =
           oneof
             [
               return Prof.Json.Null;
               map (fun b -> Prof.Json.Bool b) bool;
               map (fun i -> Prof.Json.Int i) (int_range (-1000000) 1000000);
               map (fun s -> Prof.Json.Str s) (string_size (int_range 0 12));
             ]
         in
         let json =
           fix (fun self depth ->
               if depth = 0 then scalar
               else
                 oneof
                   [
                     scalar;
                     map
                       (fun l -> Prof.Json.List l)
                       (list_size (int_range 0 4) (self (depth - 1)));
                     map
                       (fun kvs -> Prof.Json.Obj kvs)
                       (list_size (int_range 0 4)
                          (pair
                             (string_size ~gen:(char_range 'a' 'z')
                                (int_range 1 6))
                             (self (depth - 1))));
                   ])
         in
         json 3))
    (fun j ->
      let s = Prof.Json.to_string j in
      match Prof.Json.of_string s with
      | Ok j' -> Prof.Json.to_string j' = s
      | Error _ -> false)

(* ---- facade integration ---- *)

let test_plan_latency_populates () =
  let open Sympiler_sparse in
  let a = Generators.grid2d ~stencil:`Five 8 8 in
  let al = Csc.lower a in
  let h = Sympiler.Cholesky.compile al in
  let p = Sympiler.Cholesky.plan h in
  with_metrics @@ fun () ->
  for _ = 1 to 5 do
    ignore (Sympiler.Cholesky.execute_ip p al)
  done;
  let lat = Sympiler.Cholesky.plan_latency p in
  Alcotest.(check bool) "count grew" true (lat.Metrics.count >= 5);
  Alcotest.(check bool) "p50 positive" true (lat.Metrics.p50 > 0.0);
  Alcotest.(check bool) "max >= p50 bucket lower bound" true
    (lat.Metrics.max > 0.0)

let suite =
  [
    Alcotest.test_case "same identity, same handle" `Quick
      test_same_identity_same_handle;
    Alcotest.test_case "kind mismatch rejected" `Quick
      test_kind_mismatch_rejected;
    Alcotest.test_case "bad names rejected" `Quick test_bad_names_rejected;
    prop_percentiles_vs_oracle;
    prop_bucket_geometry;
    Alcotest.test_case "observe drops negatives and NaN" `Quick
      test_observe_seconds_rounds_to_ns;
    Alcotest.test_case "4-domain counter stress is exact" `Quick
      test_counter_stress_exact_across_domains;
    Alcotest.test_case "Prof merge exact through pool" `Quick
      test_prof_merge_exact_through_pool;
    Alcotest.test_case "disabled path allocates nothing" `Quick
      test_disabled_path_allocates_nothing;
    Alcotest.test_case "enabled path allocates nothing" `Quick
      test_enabled_path_allocates_nothing;
    Alcotest.test_case "openmetrics escaping" `Quick test_openmetrics_escaping;
    Alcotest.test_case "openmetrics conformance + linter teeth" `Quick
      test_openmetrics_conformance;
    Alcotest.test_case "json + table exporters" `Quick
      test_json_and_table_exporters;
    Alcotest.test_case "json parser fixed cases" `Quick
      test_json_parser_fixed_cases;
    prop_json_roundtrip;
    Alcotest.test_case "plan latency histogram populates" `Quick
      test_plan_latency_populates;
  ]
