open Sympiler_sparse
open Sympiler_symbolic
open Sympiler_kernels

(* Boundary conditions and error paths across the whole stack: empty and
   1x1 matrices, diagonal/identity inputs, degenerate RHS, non-generated
   AST shapes, malformed inputs. *)

(* ---- degenerate matrix sizes ---- *)

let test_csc_empty () =
  let z = Csc.zero ~nrows:0 ~ncols:0 in
  Csc.validate z;
  Alcotest.(check int) "nnz" 0 (Csc.nnz z);
  let t = Csc.transpose z in
  Alcotest.(check int) "transpose dims" 0 t.Csc.ncols

let test_csc_zero_matrix_ops () =
  let z = Csc.zero ~nrows:3 ~ncols:3 in
  Alcotest.(check (array (float 0.0))) "spmv zero" [| 0.0; 0.0; 0.0 |]
    (Csc.spmv z [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check bool) "lower of zero" true (Csc.nnz (Csc.lower z) = 0);
  Alcotest.(check bool) "zero is lower triangular" true
    (Csc.is_lower_triangular z)

let test_one_by_one_everything () =
  let a = Csc.of_dense [| [| 9.0 |] |] in
  let al = Csc.lower a in
  (* Cholesky, all variants *)
  let l = Cholesky_ref.factor_simple al in
  Alcotest.(check (float 1e-12)) "sqrt 9" 3.0 (Csc.get l 0 0);
  let cs = Cholesky_supernodal.Sympiler.compile al in
  let l2 = Cholesky_supernodal.Sympiler.factor cs al in
  Alcotest.(check (float 1e-12)) "supernodal 1x1" 3.0 (Csc.get l2 0 0);
  let l3 = Cholesky_leftlooking.factorize al in
  Alcotest.(check (float 1e-12)) "left-looking 1x1" 3.0 (Csc.get l3 0 0);
  (* trisolve *)
  let b = { Vector.n = 1; indices = [| 0 |]; values = [| 6.0 |] } in
  let t = Sympiler.Trisolve.compile (l, b) in
  Alcotest.(check (array (float 1e-12))) "solve 1x1" [| 2.0 |]
    (Sympiler.Trisolve.solve t b);
  (* LU *)
  let f = Lu.Ref.factor a in
  Alcotest.(check (float 1e-12)) "u diagonal" 9.0 (Csc.get f.Lu.u 0 0);
  (* LDLt *)
  let fd = Ldlt.factorize al in
  Alcotest.(check (float 1e-12)) "d" 9.0 fd.Ldlt.d.(0)

let test_identity_cholesky () =
  let i5 = Csc.identity 5 in
  let l = Cholesky_ref.factor_simple i5 in
  Alcotest.(check bool) "L = I" true (Csc.equal l i5);
  let cs = Cholesky_supernodal.Sympiler.compile i5 in
  let an = cs.Cholesky_supernodal.Sympiler.an in
  Alcotest.(check int) "identity: no below rows" 0
    (Array.fold_left ( + ) 0 an.Cholesky_supernodal.nb);
  let l2 = Cholesky_supernodal.Sympiler.factor cs i5 in
  Alcotest.(check bool) "supernodal L = I" true (Csc.equal l2 i5)

let test_diagonal_matrix_trisolve () =
  let tr = Triplet.create ~nrows:4 ~ncols:4 () in
  for j = 0 to 3 do
    Triplet.add tr j j (float_of_int (j + 1))
  done;
  let l = Csc.of_triplet tr in
  let b = { Vector.n = 4; indices = [| 1; 3 |]; values = [| 4.0; 8.0 |] } in
  let reach = Dep_graph.reach l b.Vector.indices in
  Alcotest.(check (array int)) "reach = beta for diagonal" [| 1; 3 |]
    (let r = Array.copy reach in
     Array.sort compare r;
     r);
  let x = Trisolve_ref.decoupled l b in
  Alcotest.(check (array (float 1e-12))) "diagonal solve"
    [| 0.0; 2.0; 0.0; 2.0 |] x

let test_empty_rhs_trisolve () =
  let l = Generators.random_lower ~seed:1 ~n:10 ~density:0.3 () in
  let b = { Vector.n = 10; indices = [||]; values = [||] } in
  let t = Sympiler.Trisolve.compile (l, b) in
  Alcotest.(check int) "empty reach" 0 (Array.length t.Sympiler.Trisolve.reach);
  Alcotest.(check (array (float 0.0))) "zero solution" (Array.make 10 0.0)
    (Sympiler.Trisolve.solve t b)

(* ---- etree / symbolic edges ---- *)

let test_etree_forest () =
  (* Block-diagonal matrix: one root per block. *)
  let tr = Triplet.create ~nrows:6 ~ncols:6 () in
  List.iter
    (fun (i, j, v) ->
      Triplet.add tr i j v;
      if i <> j then Triplet.add tr j i v)
    [ (0, 0, 4.0); (1, 1, 4.0); (1, 0, -1.0); (2, 2, 4.0); (3, 3, 4.0);
      (3, 2, -1.0); (4, 4, 4.0); (5, 5, 4.0); (5, 4, -1.0) ];
  let a = Csc.of_triplet tr in
  let parent = Etree.compute (Csc.lower a) in
  Alcotest.(check int) "three roots" 3 (List.length (Etree.roots parent));
  let post = Postorder.compute parent in
  Alcotest.(check bool) "forest postorder valid" true
    (Postorder.is_valid parent post)

let test_supernodes_identity () =
  let sn = Supernodes.detect_exact (Csc.identity 6) in
  Alcotest.(check int) "identity: 6 singleton supernodes" 6
    (Supernodes.nsuper sn)

let test_supernodes_empty () =
  let sn = Supernodes.detect_exact (Csc.zero ~nrows:0 ~ncols:0) in
  Alcotest.(check int) "empty: 0 supernodes" 0 (Supernodes.nsuper sn)

let test_fill_pattern_diagonal () =
  let f = Fill_pattern.analyze (Csc.identity 4) in
  Alcotest.(check int) "no fill" 4 (Fill_pattern.nnz_l f);
  Alcotest.(check (array int)) "no parents" [| -1; -1; -1; -1 |]
    f.Fill_pattern.parent;
  Array.iter
    (fun r -> Alcotest.(check int) "empty rows" 0 (Array.length r))
    (Fill_pattern.row_patterns f)

let test_reach_duplicate_beta () =
  let l = Helpers.figure1_l in
  let r1 = Dep_graph.reach l [| 0; 5 |] in
  let r2 = Dep_graph.reach l [| 0; 5; 0; 5 |] in
  let s a =
    let c = Array.copy a in
    Array.sort compare c;
    c
  in
  Alcotest.(check (array int)) "duplicates ignored" (s r1) (s r2)

(* ---- interpreter / AST shapes the pipeline never generates ---- *)

let test_interp_nested_if () =
  let open Sympiler_ir in
  let out = Array.make 1 0.0 in
  Interp.run_kernel
    {
      Ast.kname = "t";
      params = [];
      consts = [];
      body =
        [
          Ast.If
            ( Ast.Int_lit 1,
              [
                Ast.If
                  ( Ast.Int_lit 0,
                    [ Ast.Assign (Ast.Arr ("out", Ast.Int_lit 0), Ast.Float_lit 1.0) ],
                    [ Ast.Assign (Ast.Arr ("out", Ast.Int_lit 0), Ast.Float_lit 2.0) ] );
              ],
              [] );
        ];
    }
    [ ("out", Interp.VFloatArr out) ];
  Alcotest.(check (float 0.0)) "else of inner if" 2.0 out.(0)

let test_interp_let_shadowing_is_flat () =
  (* The AST has flat scoping: a Let inside a loop leaks after it —
     documented behaviour relied on by codegen's top-level declarations. *)
  let open Sympiler_ir in
  let out = Array.make 1 0.0 in
  Interp.run_kernel
    {
      Ast.kname = "t";
      params = [];
      consts = [];
      body =
        [
          Ast.Let ("v", Ast.Int_lit 1);
          Ast.For
            {
              Ast.index = "i";
              lo = Ast.Int_lit 0;
              hi = Ast.Int_lit 3;
              annots = [];
              body = [ Ast.Let ("v", Ast.Var "i") ];
            };
          Ast.Assign (Ast.Arr ("out", Ast.Int_lit 0), Ast.Var "v");
        ];
    }
    [ ("out", Interp.VFloatArr out) ];
  Alcotest.(check (float 0.0)) "flat scope: last loop value" 2.0 out.(0)

let test_pretty_c_if_emission () =
  let open Sympiler_ir in
  let k =
    {
      Ast.kname = "cond";
      params = [ ("x", Ast.Float_array) ];
      consts = [];
      body =
        [
          Ast.If
            ( Ast.Load ("x", Ast.Int_lit 0),
              [ Ast.Assign (Ast.Arr ("x", Ast.Int_lit 0), Ast.Float_lit 1.0) ],
              [ Ast.Assign (Ast.Arr ("x", Ast.Int_lit 0), Ast.Float_lit 2.0) ] );
        ];
    }
  in
  let c = Pretty_c.kernel_to_c k in
  let has sub =
    let n = String.length c and m = String.length sub in
    let rec go i = i + m <= n && (String.sub c i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "if branch" true (has "if (x[0]) {");
  Alcotest.(check bool) "else branch" true (has "} else {")

let test_unroll_ignores_nonconstant () =
  let open Sympiler_ir in
  let loop =
    Ast.For
      {
        Ast.index = "i";
        lo = Ast.Int_lit 0;
        hi = Ast.Var "n";
        annots = [ Ast.Unroll 8 ];
        body = [ Ast.Comment "body" ];
      }
  in
  match Lowlevel.unroll_stmt [] loop with
  | [ Ast.For _ ] -> ()
  | _ -> Alcotest.fail "non-constant bounds must not unroll"

let test_peel_out_of_range_positions () =
  let open Sympiler_ir in
  let loop =
    Ast.For
      {
        Ast.index = "i";
        lo = Ast.Int_lit 0;
        hi = Ast.Int_lit 3;
        annots = [ Ast.Peel [ -1; 5; 1 ] ];
        body = [ Ast.Update (Ast.Arr ("x", Ast.Var "i"), Ast.Add, Ast.Float_lit 1.0) ];
      }
  in
  let out = List.concat_map (Lowlevel.peel_stmt []) [ loop ] in
  (* only position 1 peels; semantics preserved *)
  let x = Array.make 3 0.0 in
  Interp.run_kernel
    { Ast.kname = "t"; params = []; consts = []; body = out }
    [ ("x", Interp.VFloatArr x) ];
  Alcotest.(check (array (float 0.0))) "all incremented once"
    (Array.make 3 1.0) x

(* ---- IO error paths ---- *)

let test_mm_truncated () =
  Alcotest.(check bool) "declared more entries than given" true
    (try
       ignore
         (Matrix_market.of_string
            "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n");
       false
     with Matrix_market.Parse_error _ -> true)

let test_mm_scientific_notation () =
  let m =
    Matrix_market.of_string
      "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.5e-3\n2 2 -2E+4\n"
  in
  Alcotest.(check (float 1e-12)) "exponent" 1.5e-3 (Csc.get m 0 0);
  Alcotest.(check (float 1e-12)) "negative exponent" (-2e4) (Csc.get m 1 1)

(* ---- parallel trisolve degenerate domain counts ---- *)

let test_parallel_more_domains_than_columns () =
  let l = Generators.random_lower ~seed:3 ~n:5 ~density:0.4 () in
  let b = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let c = Trisolve_parallel.compile l in
  Helpers.check_close "8 domains on 5 columns"
    (Helpers.oracle_lower_solve l b)
    (Trisolve_parallel.solve ~ndomains:8 c b)

(* ---- value-change workflows on every decoupled method ---- *)

let test_all_decoupled_methods_survive_value_changes () =
  let a = Generators.random_banded ~seed:9 ~n:120 ~band:10 ~density:0.3 () in
  let al = Csc.lower a in
  let scale = 1.7 in
  let al' = Csc.map_values al (fun v -> v *. scale) in
  let a' = Csc.symmetrize_from_lower al' in
  let oracle = Helpers.oracle_cholesky a' in
  (* Cholesky supernodal *)
  let cs = Cholesky_supernodal.Sympiler.compile al in
  Alcotest.(check bool) "supernodal" true
    (Dense.max_abs_diff oracle (Dense.of_csc (Cholesky_supernodal.Sympiler.factor cs al')) < 1e-7);
  (* up-looking decoupled *)
  let cd = Cholesky_ref.Decoupled.compile al in
  Alcotest.(check bool) "decoupled" true
    (Dense.max_abs_diff oracle (Dense.of_csc (Cholesky_ref.Decoupled.factor cd al')) < 1e-7);
  (* left-looking *)
  let cl = Cholesky_leftlooking.compile al in
  Alcotest.(check bool) "left-looking" true
    (Dense.max_abs_diff oracle (Dense.of_csc (Cholesky_leftlooking.factor cl al')) < 1e-7);
  (* LDLt *)
  let cldl = Ldlt.compile al in
  let f = Ldlt.factor cldl al' in
  let b = Array.init 120 (fun i -> sin (float_of_int i)) in
  let x = Ldlt.solve f b in
  Alcotest.(check bool) "ldlt" true
    (Vector.norm_inf (Vector.sub (Csc.spmv a' x) b) < 1e-7);
  (* LU *)
  let clu = Lu.Sympiler.compile a in
  let flu = Lu.Sympiler.factor clu a' in
  let xlu = Lu.solve flu b in
  Alcotest.(check bool) "lu" true
    (Vector.norm_inf (Vector.sub (Csc.spmv a' xlu) b) < 1e-7);
  (* IC0 *)
  let cic = Ic0.compile al in
  ignore (Ic0.factor cic al');
  (* ILU0 *)
  let cilu = Ilu0.compile a in
  ignore (Ilu0.factor cilu a')

let suite =
  [
    ("csc empty", `Quick, test_csc_empty);
    ("csc zero matrix ops", `Quick, test_csc_zero_matrix_ops);
    ("1x1 everything", `Quick, test_one_by_one_everything);
    ("identity cholesky", `Quick, test_identity_cholesky);
    ("diagonal trisolve", `Quick, test_diagonal_matrix_trisolve);
    ("empty rhs", `Quick, test_empty_rhs_trisolve);
    ("etree forest", `Quick, test_etree_forest);
    ("supernodes of identity", `Quick, test_supernodes_identity);
    ("supernodes of empty", `Quick, test_supernodes_empty);
    ("fill pattern of diagonal", `Quick, test_fill_pattern_diagonal);
    ("reach with duplicate beta", `Quick, test_reach_duplicate_beta);
    ("interp nested if", `Quick, test_interp_nested_if);
    ("interp flat let scope", `Quick, test_interp_let_shadowing_is_flat);
    ("pretty_c if emission", `Quick, test_pretty_c_if_emission);
    ("unroll non-constant", `Quick, test_unroll_ignores_nonconstant);
    ("peel out-of-range", `Quick, test_peel_out_of_range_positions);
    ("mm truncated", `Quick, test_mm_truncated);
    ("mm scientific notation", `Quick, test_mm_scientific_notation);
    ("parallel excess domains", `Quick, test_parallel_more_domains_than_columns);
    ("value changes across all methods", `Quick, test_all_decoupled_methods_survive_value_changes);
  ]
