let () =
  Alcotest.run "sympiler"
    [
      ("sparse", Test_sparse.suite);
      ("io+generators+ordering", Test_io_generators.suite);
      ("symbolic", Test_symbolic.suite);
      ("kernels", Test_kernels.suite);
      ("plans", Test_plans.suite);
      ("extensions", Test_extensions.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("ir", Test_ir.suite);
      ("api", Test_api.suite);
      ("prof", Test_prof.suite);
      ("metrics", Test_metrics.suite);
      ("trace", Test_trace.suite);
      ("parallel", Test_parallel.suite);
      ("ordering-stage", Test_ordering.suite);
      ("pipeline", Test_pipeline.suite);
      ("native", Test_native.suite);
      ("updown", Test_updown.suite);
      ("regressions", Test_regressions.suite);
    ]
