open Sympiler_sparse
open Sympiler_kernels
module Pl = Sympiler.Pipeline

(* Pipelines: whole solver DAGs compiled through one shared symbolic
   analysis into one fused plan. The fused executor must be
   bitwise-identical to the staged baseline (fusion removes copies and
   dispatch, never reorders arithmetic), allocate nothing in steady state,
   share each analysis artifact across stages (ledger <= 1), and survive
   the degenerate DAGs (single stage, factor-only, 0x0, repeated stages). *)

let bitwise msg (a : float array) (b : float array) =
  Alcotest.(check bool) msg true (a = b)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let raises_invalid msg f =
  Alcotest.(check bool)
    msg true
    (try
       ignore (f ());
       false
     with Invalid_argument _ -> true)

let spd () = Generators.clique_chain ~seed:3 ~n:120 ~clique:10 ~overlap:3 ()
let spd_lower () = Csc.lower (spd ())
let rhs n = Array.init n (fun i -> sin (float_of_int (i + 1)))

(* Per-call minor-heap delta over repeated calls after two warmups. *)
let minor_words_per_call f =
  f ();
  f ();
  let k = 50 in
  let w0 = Gc.minor_words () in
  for _ = 1 to k do
    f ()
  done;
  int_of_float ((Gc.minor_words () -. w0) /. float_of_int k)

let residual_ok ?(eps = 1e-6) name (a : Csc.t) (x : float array)
    (b : float array) =
  let y = Array.make (Array.length b) 0.0 in
  Stages.spmv_into a x y;
  Helpers.check_close ~eps name b y

(* ---- correctness: factor+solve across the SPD zoo ---- *)

let test_cholesky_zoo () =
  List.iter
    (fun (name, a) ->
      let al = Csc.lower a in
      let t = Pl.compile (Pl.factor_solve `Cholesky) al in
      let p = Pl.plan t in
      let b = rhs a.Csc.ncols in
      let x = Pl.execute_ip p ~a:al b in
      residual_ok ("cholesky pipeline solves " ^ name) a x b)
    (Helpers.spd_zoo ())

let test_matches_facade () =
  let a = spd () in
  let al = Csc.lower a in
  let b = rhs a.Csc.ncols in
  let t = Pl.compile (Pl.factor_solve `Cholesky) al in
  let x = Pl.execute_ip (Pl.plan t) ~a:al b in
  let h = Sympiler.Cholesky.compile al in
  let x' = Sympiler.Cholesky.solve h al b in
  Helpers.check_close ~eps:1e-8 "pipeline == facade solve" x' x

(* ---- fused vs staged: bitwise identity across every family ---- *)

let family_cases () =
  let a = spd () in
  let al = Csc.lower a in
  [
    ("cholesky", Pl.of_stages [ Pl.Spmv; Pl.Factor `Cholesky; Pl.Solve ], al);
    ("ldlt", Pl.factor_solve `Ldlt, al);
    ("ic0", Pl.factor_solve `Ic0, al);
    ("lu", Pl.of_stages [ Pl.Factor `Lu; Pl.Solve; Pl.Spmv ], a);
    ("ilu0", Pl.factor_solve `Ilu0, a);
  ]

let test_fused_staged_bitwise () =
  List.iter
    (fun (name, dag, m) ->
      let t = Pl.compile dag m in
      let p = Pl.plan t in
      let b = rhs m.Csc.ncols in
      let xf = Array.copy (Pl.execute_ip p ~a:m b) in
      let xs = Pl.staged_execute_ip p ~a:m b in
      bitwise (name ^ ": fused == staged") xf xs;
      (* apply-only path (no refactorization) agrees too *)
      let xf' = Array.copy (Pl.execute_ip p b) in
      bitwise (name ^ ": apply-only fused == staged") xf'
        (Pl.staged_execute_ip p b))
    (family_cases ())

(* ---- factorless chains ---- *)

let test_factorless_chain () =
  let l = Generators.random_lower ~seed:21 ~n:90 ~density:0.1 () in
  let t = Pl.compile (Pl.of_stages [ Pl.Lower_solve; Pl.Upper_solve ]) l in
  Alcotest.(check int) "L then L^T fuses into one pass" 1 (Pl.fused_boundaries t);
  let p = Pl.plan t in
  let b = rhs 90 in
  let x = Pl.execute_ip p b in
  let y = Array.copy b in
  Stages.lower_ip l y;
  Stages.ltrans_ip l y;
  bitwise "factorless L/L^T == stage oracle" y x;
  bitwise "factorless fused == staged" (Array.copy x)
    (Pl.staged_execute_ip p b)

let test_repeated_stages () =
  let l = Generators.random_lower ~seed:22 ~n:60 ~density:0.15 () in
  let t = Pl.compile (Pl.of_stages [ Pl.Solve; Pl.Solve; Pl.Solve ]) l in
  Alcotest.(check int) "three solves, three fused pairs" 3
    (Pl.fused_boundaries t);
  let p = Pl.plan t in
  let b = rhs 60 in
  let x = Array.copy (Pl.execute_ip p b) in
  let y = Array.copy b in
  for _ = 1 to 3 do
    Stages.lower_ip l y;
    Stages.ltrans_ip l y
  done;
  bitwise "repeated solves == oracle" y x;
  bitwise "repeated solves fused == staged" x (Pl.staged_execute_ip p b)

(* ---- degenerate DAGs ---- *)

let test_single_stage () =
  let l = Helpers.figure1_l in
  let t = Pl.compile (Pl.stage Pl.Lower_solve) l in
  let b = rhs 10 in
  let x = Pl.execute_ip (Pl.plan t) b in
  let y = Array.copy b in
  Stages.lower_ip l y;
  bitwise "single Lower_solve == oracle" y x;
  let ts = Pl.compile (Pl.stage Pl.Spmv) l in
  let xs = Pl.execute_ip (Pl.plan ts) b in
  let ys = Array.make 10 0.0 in
  Stages.spmv_into l b ys;
  bitwise "single Spmv == oracle" ys xs

let test_factor_only () =
  let al = spd_lower () in
  let t = Pl.compile (Pl.stage (Pl.Factor `Cholesky)) al in
  let p = Pl.plan t in
  let b = rhs al.Csc.ncols in
  bitwise "factor-only DAG passes b through" b (Pl.execute_ip p ~a:al b);
  raises_invalid "factor-only DAG has no fused C" (fun () -> Pl.c_code t)

let empty_csc () =
  Csc.create ~nrows:0 ~ncols:0 ~colptr:[| 0 |] ~rowind:[||] ~values:[||]

let test_empty () =
  let e = empty_csc () in
  let t = Pl.compile (Pl.factor_solve `Cholesky) e in
  let p = Pl.plan t in
  Alcotest.(check int) "0x0 factor+solve" 0
    (Array.length (Pl.execute_ip p ~a:e [||]));
  let tf = Pl.compile (Pl.stage Pl.Lower_solve) e in
  Alcotest.(check int) "0x0 factorless" 0
    (Array.length (Pl.execute_ip (Pl.plan tf) [||]))

(* ---- validation ---- *)

let test_validation () =
  let a = spd () in
  let al = Csc.lower a in
  raises_invalid "empty DAG" (fun () -> Pl.compile (Pl.of_stages []) al);
  raises_invalid "two factor stages" (fun () ->
      Pl.compile
        (Pl.of_stages [ Pl.Factor `Cholesky; Pl.Factor `Ldlt ])
        al);
  raises_invalid "Diag_solve without LDL^T" (fun () ->
      Pl.compile (Pl.of_stages [ Pl.Factor `Cholesky; Pl.Diag_solve ]) al);
  raises_invalid "factorless chains are `Natural only" (fun () ->
      Pl.compile
        ~opts:(Sympiler.Options.make ~ordering:`Amd ())
        (Pl.stage Pl.Lower_solve) al);
  raises_invalid "symmetric families take lower(A)" (fun () ->
      Pl.compile (Pl.factor_solve `Cholesky) a);
  raises_invalid "pair needs the factor on the left" (fun () ->
      Pl.pair (Pl.stage Pl.Solve) (Pl.stage Pl.Solve));
  raises_invalid "pair rejects a factor on the right" (fun () ->
      Pl.pair
        (Pl.stage (Pl.Factor `Cholesky))
        (Pl.stage (Pl.Factor `Cholesky)));
  let p = Pl.plan (Pl.compile (Pl.factor_solve `Cholesky) al) in
  raises_invalid "wrong b length" (fun () -> Pl.execute_ip p (rhs 3));
  raises_invalid "LU chains have no fused C" (fun () ->
      Pl.c_code (Pl.compile (Pl.factor_solve `Lu) a))

(* ---- zero allocation in the fused steady state ---- *)

let test_zero_alloc () =
  let al = spd_lower () in
  let t = Pl.compile (Pl.factor_solve `Cholesky) al in
  let p = Pl.plan t in
  let b = rhs al.Csc.ncols in
  Pl.factor_ip p al;
  Alcotest.(check int)
    "fused apply minor words/call" 0
    (minor_words_per_call (fun () -> ignore (Pl.execute_ip p b)))

(* ---- shared analysis and metadata ---- *)

let test_analysis_shared () =
  let al = spd_lower () in
  let dag = Pl.of_stages [ Pl.Spmv; Pl.Factor `Cholesky; Pl.Solve; Pl.Spmv ] in
  let t = Pl.compile dag al in
  (* The plan forces the remaining artifacts (the SpMV operand needs the
     symmetrized full pattern); run it so the ledger is complete. *)
  let p = Pl.plan t in
  ignore (Pl.execute_ip p ~a:al (rhs al.Csc.ncols));
  List.iter
    (fun (k, v) ->
      Alcotest.(check bool)
        (Printf.sprintf "analysis artifact %s ran <= once (%d)" k v)
        true (v <= 1))
    (Pl.analysis_runs t);
  Alcotest.(check bool) "fill ran once" true
    (List.assoc "fill" (Pl.analysis_runs t) = 1);
  Alcotest.(check bool) "full ran once (SpMV operand)" true
    (List.assoc "full" (Pl.analysis_runs t) = 1);
  Alcotest.(check bool) "symbolic time recorded" true
    (Pl.symbolic_seconds t >= 0.0);
  Alcotest.(check bool) "dag round-trips" true (Pl.dag_of t = Pl.to_stages dag);
  Alcotest.(check bool) "input pattern is the caller's" true
    (Pl.input_pattern t == al);
  let passes =
    List.map (fun d -> d.Sympiler.Trace.pass) (Pl.decisions t)
  in
  Alcotest.(check bool) "vs-block decision recorded" true
    (List.mem "vs-block" passes);
  Alcotest.(check bool) "pipeline-fuse decision recorded" true
    (List.mem "pipeline-fuse" passes);
  let d = Pl.describe t in
  Alcotest.(check bool) "describe mentions the stages" true
    (contains_sub d "factor:cholesky"
    && contains_sub d "pipeline")

(* ---- ordering ---- *)

let test_ordering_amd () =
  let a = Helpers.scrambled_multigrid () in
  let al = Csc.lower a in
  let b = rhs a.Csc.ncols in
  let x_nat = Pl.execute_ip (Pl.plan (Pl.compile (Pl.factor_solve `Cholesky) al)) ~a:al b in
  let t =
    Pl.compile
      ~opts:(Sympiler.Options.make ~ordering:`Amd ())
      (Pl.factor_solve `Cholesky) al
  in
  let x_amd = Pl.execute_ip (Pl.plan t) ~a:al b in
  Helpers.check_close ~eps:1e-8 "AMD pipeline == natural" x_nat x_amd;
  residual_ok "AMD pipeline solves" a x_amd b

(* ---- compilation cache ---- *)

let test_cache () =
  let cache = Sympiler.Plan_cache.create () in
  let al = spd_lower () in
  let dag = Pl.factor_solve `Cholesky in
  let t1 = Pl.compile ~cache dag al in
  let t2 = Pl.compile ~cache dag al in
  Alcotest.(check bool) "same DAG + pattern hits" true (t1 == t2);
  let t3 = Pl.compile ~cache (Pl.factor_solve `Ldlt) al in
  Alcotest.(check bool) "different stage sequence misses" true (t3 != t1);
  let t4 =
    Pl.compile ~cache ~opts:(Sympiler.Options.make ~simplicial:true ()) dag al
  in
  Alcotest.(check bool) "different options miss" true (t4 != t1);
  let st = Sympiler.Plan_cache.stats cache in
  Alcotest.(check int) "hits" 1 st.Sympiler.Plan_cache.hits;
  Alcotest.(check int) "misses" 3 st.Sympiler.Plan_cache.misses;
  (* opts.cache = true routes through the module default cache *)
  Pl.cache_clear ();
  let c1 = Pl.compile ~opts:Sympiler.Options.cached dag al in
  let c2 = Pl.compile ~opts:Sympiler.Options.cached dag al in
  Alcotest.(check bool) "opts.cache hits the default cache" true (c1 == c2);
  Alcotest.(check bool) "default cache populated" true
    ((Pl.cache_stats ()).Sympiler.Plan_cache.length >= 1);
  Pl.cache_clear ()

(* ---- fused C emission ---- *)

let test_c_code () =
  let al = spd_lower () in
  let dag = Pl.of_stages [ Pl.Factor `Cholesky; Pl.Solve; Pl.Spmv ] in
  let c = Pl.c_code (Pl.compile dag al) in
  Alcotest.(check bool) "one fused kernel" true
    (contains_sub c "pipeline_apply");
  Helpers.require_cmd "cc";
  Helpers.with_temp_dir (fun dir ->
      let path = Filename.concat dir "pipeline.c" in
      let oc = open_out path in
      output_string oc c;
      close_out oc;
      Alcotest.(check int) "fused C parses" 0
        (Sys.command
           (Printf.sprintf "cc -fsyntax-only -Wall -Werror %s"
              (Filename.quote path))))

(* ---- latency plumbing ---- *)

let test_latency_histograms () =
  let al = spd_lower () in
  let t = Pl.compile (Pl.factor_solve `Cholesky) al in
  let p = Pl.plan t in
  let b = rhs al.Csc.ncols in
  Sympiler.Metrics.enable ();
  ignore (Pl.execute_ip p ~a:al b);
  ignore (Pl.staged_execute_ip p b);
  Sympiler.Metrics.disable ();
  Alcotest.(check bool) "fused latency observed" true
    ((Pl.plan_latency p).Sympiler.Metrics.count >= 1);
  let stages = Pl.stage_latencies p in
  Alcotest.(check int) "one histogram per staged step" 3 (Array.length stages);
  Alcotest.(check string) "factor stage labeled" "stage0:factor"
    (fst stages.(0));
  Array.iter
    (fun (name, s) ->
      Alcotest.(check bool)
        (name ^ " observed once") true
        (s.Sympiler.Metrics.count = 1))
    stages

(* ---- qcheck laws ---- *)

(* Stage-order law: with the factor pre-run (apply-only execution), the
   factor stage's position in the DAG is irrelevant — every permutation
   that keeps the vector stages in order returns bitwise-identical
   results. *)
let qcheck_factor_position =
  Helpers.qtest ~count:25 "factor position is irrelevant when applying"
    Helpers.arb_spd (fun a ->
      let al = Csc.lower a in
      let b = rhs a.Csc.ncols in
      let vec = [ Pl.Solve; Pl.Spmv; Pl.Solve ] in
      let insert i =
        List.filteri (fun j _ -> j < i) vec
        @ (Pl.Factor `Cholesky :: List.filteri (fun j _ -> j >= i) vec)
      in
      let run i =
        let p = Pl.plan (Pl.compile (Pl.of_stages (insert i)) al) in
        Pl.factor_ip p al;
        Array.copy (Pl.execute_ip p b)
      in
      let x0 = run 0 in
      List.for_all (fun i -> run i = x0) [ 1; 2; 3 ])

let qcheck_fused_is_staged =
  Helpers.qtest ~count:40 "fused == staged (bitwise) on random SPD"
    Helpers.arb_spd (fun a ->
      let al = Csc.lower a in
      let b = rhs a.Csc.ncols in
      let p =
        Pl.plan
          (Pl.compile
             (Pl.of_stages [ Pl.Spmv; Pl.Factor `Cholesky; Pl.Solve ])
             al)
      in
      let xf = Array.copy (Pl.execute_ip p ~a:al b) in
      xf = Pl.staged_execute_ip p ~a:al b)

let suite =
  [
    Alcotest.test_case "cholesky factor+solve across the zoo" `Quick
      test_cholesky_zoo;
    Alcotest.test_case "pipeline matches the facade solve" `Quick
      test_matches_facade;
    Alcotest.test_case "fused == staged across families" `Quick
      test_fused_staged_bitwise;
    Alcotest.test_case "factorless chain" `Quick test_factorless_chain;
    Alcotest.test_case "repeated stages" `Quick test_repeated_stages;
    Alcotest.test_case "single-stage DAGs" `Quick test_single_stage;
    Alcotest.test_case "factor-only DAG" `Quick test_factor_only;
    Alcotest.test_case "0x0 pipelines" `Quick test_empty;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "zero alloc: fused apply" `Quick test_zero_alloc;
    Alcotest.test_case "one shared analysis" `Quick test_analysis_shared;
    Alcotest.test_case "AMD-ordered pipeline" `Quick test_ordering_amd;
    Alcotest.test_case "compilation cache" `Quick test_cache;
    Alcotest.test_case "fused C emission" `Quick test_c_code;
    Alcotest.test_case "latency histograms" `Quick test_latency_histograms;
    qcheck_factor_position;
    qcheck_fused_is_staged;
  ]
