open Sympiler_sparse
open Sympiler_kernels
open Helpers

(* Regression tests for this round of parser/codegen bugfixes: Matrix
   Market whitespace tolerance and entry-count validation, deterministic
   code generation, modulo-bias-free Rng.int, and the parallel trisolve
   against the reference kernel. *)

let parse_fails msg lines =
  match Matrix_market.of_lines lines with
  | exception Matrix_market.Parse_error _ -> ()
  | _ -> Alcotest.failf "%s: expected Parse_error" msg

(* ---- Matrix Market whitespace tolerance ---- *)

let test_mm_tabs_and_spaces () =
  (* Header, size line and entries separated by tabs and runs of spaces,
     with comments and blank lines interleaved — all legal in files found
     in the wild. *)
  let lines =
    [
      "%%MatrixMarket\tmatrix   coordinate\treal  general";
      "% comment with\ttabs";
      "";
      "  3\t3   4";
      "1\t1\t2.0";
      "2   2\t3.0";
      "  3\t 3  4.0";
      "3 1\t-1.5";
      "   ";
    ]
  in
  let a = Matrix_market.of_lines lines in
  Alcotest.(check int) "nrows" 3 a.Csc.nrows;
  Alcotest.(check int) "nnz" 4 (Csc.nnz a);
  let d = Dense.of_csc a in
  Alcotest.(check (float 0.0)) "a(0,0)" 2.0 (Dense.get d 0 0);
  Alcotest.(check (float 0.0)) "a(2,0)" (-1.5) (Dense.get d 2 0);
  Alcotest.(check (float 0.0)) "a(2,2)" 4.0 (Dense.get d 2 2)

let test_mm_roundtrip () =
  List.iter
    (fun (name, a) ->
      let a' = Matrix_market.of_string (Matrix_market.to_string a) in
      Alcotest.(check bool)
        (name ^ " pattern")
        true
        (Utils.int_array_equal a.Csc.colptr a'.Csc.colptr
        && Utils.int_array_equal a.Csc.rowind a'.Csc.rowind);
      check_close (name ^ " values") a.Csc.values a'.Csc.values;
      let s = Matrix_market.to_string ~symmetric:true a in
      let a'' = Matrix_market.of_string s in
      Alcotest.(check bool)
        (name ^ " symmetric pattern")
        true
        (Utils.int_array_equal a.Csc.colptr a''.Csc.colptr
        && Utils.int_array_equal a.Csc.rowind a''.Csc.rowind);
      check_close (name ^ " symmetric values") a.Csc.values a''.Csc.values)
    (spd_zoo ())

let test_mm_skew_symmetric_rejected () =
  parse_fails "skew-symmetric"
    [
      "%%MatrixMarket matrix coordinate real skew-symmetric";
      "2 2 1";
      "2 1 3.0";
    ]

let test_mm_symmetric_strict_upper_rejected () =
  (* The symmetric format stores the lower triangle only; a strict-upper
     entry is malformed. The broken reader silently mirrored it, which
     double-counted entries whose transpose was also present. *)
  parse_fails "symmetric with strict-upper entry"
    [
      "%%MatrixMarket matrix coordinate real symmetric";
      "3 3 3";
      "1 1 4.0";
      "1 3 1.0";
      "3 3 4.0";
    ]

let test_mm_symmetric_writer_validates () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  (* Pattern-asymmetric: (0,1) stored, (1,0) missing. *)
  let pat = Csc.of_dense [| [| 4.0; 1.0 |]; [| 0.0; 4.0 |] |] in
  expect_invalid "pattern-asymmetric to_string" (fun () ->
      Matrix_market.to_string ~symmetric:true pat);
  expect_invalid "pattern-asymmetric to_buffer" (fun () ->
      Matrix_market.to_buffer ~symmetric:true (Buffer.create 64) pat);
  (* Value-asymmetric: both triangles stored but a(0,1) <> a(1,0). *)
  let vals = Csc.of_dense [| [| 4.0; 1.0 |]; [| 2.0; 4.0 |] |] in
  expect_invalid "value-asymmetric to_string" (fun () ->
      Matrix_market.to_string ~symmetric:true vals);
  (* Non-square. *)
  let rect = Csc.of_dense [| [| 1.0; 0.0; 2.0 |]; [| 0.0; 3.0; 0.0 |] |] in
  expect_invalid "non-square to_string" (fun () ->
      Matrix_market.to_string ~symmetric:true rect);
  (* A genuinely symmetric matrix still round-trips. *)
  let ok = Csc.of_dense [| [| 4.0; 1.0 |]; [| 1.0; 4.0 |] |] in
  let a' = Matrix_market.of_string (Matrix_market.to_string ~symmetric:true ok) in
  (* Reader expands to both triangles. *)
  Alcotest.(check int) "symmetric round-trip nnz" 4 (Csc.nnz a')

(* ---- RCM on disconnected graphs (George-Liu refinements) ---- *)

let test_rcm_disconnected_bandwidth () =
  (* Three scrambled disconnected grids. Seeding the pseudo-peripheral
     search from a minimum-degree vertex per component and breaking
     farthest-level ties by degree brought the permuted bandwidth to 14;
     this pins it so a regression (or a seed-sensitive heuristic change)
     shows up. *)
  let a = scrambled_multigrid () in
  let p = Ordering.rcm a in
  Alcotest.(check bool) "valid permutation" true (Perm.is_valid p);
  let bw = Ordering.bandwidth (Perm.symmetric_permute p a) in
  Alcotest.(check bool)
    (Printf.sprintf "multigrid rcm bandwidth %d <= 14" bw)
    true (bw <= 14)

(* ---- Matrix Market entry-count validation ---- *)

let test_mm_symmetric_underdeclared_rejected () =
  (* Two file entries, three declared. The broken validation counted the
     symmetrically expanded triplets (here 3 >= 3) and accepted the file. *)
  parse_fails "symmetric under-declared"
    [
      "%%MatrixMarket matrix coordinate real symmetric";
      "2 2 3";
      "1 1 4.0";
      "2 1 1.0";
    ]

let test_mm_surplus_rejected () =
  parse_fails "surplus entries"
    [
      "%%MatrixMarket matrix coordinate real general";
      "2 2 1";
      "1 1 4.0";
      "2 2 5.0";
    ]

let test_mm_exact_count_accepted () =
  let a =
    Matrix_market.of_lines
      [
        "%%MatrixMarket matrix coordinate real symmetric";
        "2 2 2";
        "1 1 4.0";
        "2 1 1.0";
      ]
  in
  (* Off-diagonal expanded to both triangles. *)
  Alcotest.(check int) "expanded nnz" 3 (Csc.nnz a)

(* ---- Deterministic code generation ---- *)

let test_codegen_deterministic () =
  let l = figure1_l in
  let b =
    {
      Vector.n = 10;
      indices = figure1_beta;
      values = [| 1.0; 1.0 |];
    }
  in
  let tri () = (Sympiler_ir.Pipeline.trisolve l b).Sympiler_ir.Pipeline.c_code in
  let chol a =
    (Sympiler_ir.Pipeline.cholesky (Csc.lower a)).Sympiler_ir.Pipeline.c_code
  in
  let a = Sympiler_sparse.Generators.grid2d ~stencil:`Five 5 5 in
  let c1 = tri () in
  (* Interleave other compilations: with the old global name counters the
     second trisolve compile emitted different variable names. *)
  let k1 = chol a in
  let c2 = tri () in
  let k2 = chol a in
  Alcotest.(check string) "trisolve C identical" c1 c2;
  Alcotest.(check string) "cholesky C identical" k1 k2

(* ---- Rng.int: range, determinism, no modulo starvation ---- *)

let test_rng_int () =
  let r1 = Utils.Rng.create 42 and r2 = Utils.Rng.create 42 in
  for _ = 1 to 1000 do
    let b = 1 + Utils.Rng.int r1 1000 in
    let v = Utils.Rng.int r1 b in
    Alcotest.(check bool) "in range" true (v >= 0 && v < b);
    (* Same seed, same draws. *)
    let _ = Utils.Rng.int r2 1000 in
    Alcotest.(check int) "deterministic" v (Utils.Rng.int r2 b)
  done;
  (* Every residue of a small non-power-of-two bound shows up. *)
  let r = Utils.Rng.create 7 in
  let counts = Array.make 7 0 in
  for _ = 1 to 7000 do
    let v = Utils.Rng.int r 7 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool) (Printf.sprintf "residue %d seen" i) true (c > 500))
    counts

(* ---- Parallel trisolve vs reference ---- *)

let test_parallel_matches_reference () =
  let check_l name (l : Csc.t) =
    let n = l.Csc.ncols in
    let rng = Utils.Rng.create 11 in
    let b = Array.init n (fun _ -> Utils.Rng.float_range rng (-1.0) 1.0) in
    let expect = Trisolve_ref.naive l b in
    let c = Trisolve_parallel.compile l in
    Alcotest.(check bool) (name ^ " schedule") true
      (Trisolve_parallel.valid_schedule c);
    List.iter
      (fun nd ->
        let got = Trisolve_parallel.solve ~ndomains:nd c b in
        check_close (Printf.sprintf "%s ndomains=%d" name nd) expect got)
      [ 1; 2; 4 ]
  in
  check_l "figure1" figure1_l;
  List.iter
    (fun (name, a) ->
      let t = Sympiler.Cholesky.compile (Csc.lower a) in
      check_l name (Sympiler.Cholesky.factor t (Csc.lower a)))
    [ List.nth (spd_zoo ()) 0; List.nth (spd_zoo ()) 3 ]

(* ---- Scaling bugfix regressions (10^6-row readiness round) ---- *)

(* Satellite 1: the insertion-sort and stable-merge paths of
   [Triplet.to_csc_arrays] must produce bitwise-identical CSC arrays —
   duplicates are summed in insertion order either way. Random triplet
   soups with deliberate duplicate (i,j) pairs exercise the stability. *)
let prop_triplet_sort_paths_identical =
  Helpers.qtest "to_csc_arrays paths bitwise-identical"
    (QCheck.make
       ~print:(fun (n, entries) ->
         Printf.sprintf "n=%d entries=%d" n (List.length entries))
       QCheck.Gen.(
         let* n = int_range 1 20 in
         let* k = int_range 0 200 in
         let* entries =
           list_size (return k)
             (let* i = int_range 0 (n - 1) in
              let* j = int_range 0 (n - 1) in
              let* v = float_range (-10.0) 10.0 in
              return (i, j, v))
         in
         return (n, entries)))
    (fun (n, entries) ->
      let build () =
        let tr = Triplet.create ~nrows:n ~ncols:n () in
        List.iter (fun (i, j, v) -> Triplet.add tr i j v) entries;
        tr
      in
      let p1, r1, v1 = Triplet.to_csc_arrays ~insertion_threshold:0 (build ()) in
      let p2, r2, v2 =
        Triplet.to_csc_arrays ~insertion_threshold:max_int (build ())
      in
      Utils.int_array_equal p1 p2
      && Utils.int_array_equal r1 r2
      && Array.length v1 = Array.length v2
      && Array.for_all2
           (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
           v1 v2)

(* Satellite 4: dense materialization guards fail fast with
   [Invalid_argument] instead of letting the allocator die. *)
let test_dense_guards () =
  let a = Generators.grid2d ~stencil:`Five 3 3 in
  (match Csc.to_dense ~max_elements:8 a with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "to_dense: expected Invalid_argument past the bound");
  (match Generators.random_spd_dense (Generators.max_spd_dense_n + 1) with
  | exception Invalid_argument _ -> ()
  | _ ->
      Alcotest.fail "random_spd_dense: expected Invalid_argument past the bound");
  (* Within bounds both still work. *)
  Alcotest.(check int) "to_dense rows" 9 (Array.length (Csc.to_dense a));
  Alcotest.(check int)
    "spd_dense n" 8
    (Generators.random_spd_dense 8).Csc.ncols

(* [Etree.depths] was a recursive climb; a 10^6-node path tree (the etree
   of a tridiagonal matrix) overflowed the stack. Now iterative. *)
let test_etree_depths_deep_path () =
  let n = 1_000_000 in
  let parent = Array.init n (fun i -> if i = n - 1 then -1 else i + 1) in
  let depth = Sympiler_symbolic.Etree.depths parent in
  Alcotest.(check int) "leaf depth" (n - 1) depth.(0);
  Alcotest.(check int) "root depth" 0 depth.(n - 1)

(* Bigstore: jagged round-trip and builder growth. The builder's [reserve]
   once blitted the whole old buffer (capacity-sized) into a length-sized
   view of the grown one — a dimension-mismatch crash on any regrowth with
   a nonempty prefix, so small initial capacities cross several doublings
   here on purpose. *)
let test_bigstore_roundtrip_and_growth () =
  let rows =
    Array.init 64 (fun s -> Array.init (s mod 7) (fun i -> (s * 31) + i))
  in
  let store = Bigstore.of_arrays rows in
  Alcotest.(check int) "segments" 64 (Bigstore.segments store);
  Alcotest.(check bool)
    "to_arrays round-trip" true
    (Bigstore.to_arrays store = rows);
  let b = Bigstore.Builder.create ~segments_hint:1 ~capacity:1 () in
  Array.iter (fun r -> Bigstore.Builder.append_segment b r (Array.length r)) rows;
  let grown = Bigstore.Builder.finish b in
  Alcotest.(check bool)
    "growth across doublings round-trip" true
    (Bigstore.to_arrays grown = rows);
  Alcotest.(check int)
    "total length" (Array.fold_left (fun a r -> a + Array.length r) 0 rows)
    (Bigstore.total_length grown);
  let ptr = Bigstore.ptr grown in
  Alcotest.(check int) "ptr length" 65 (Array.length ptr);
  Alcotest.(check int) "get" rows.(5).(2) (Bigstore.get grown 5 2);
  let flat = Bigstore.flatten grown in
  Alcotest.(check int)
    "flatten agrees with ptr" ptr.(Bigstore.segments grown)
    (Array.length flat);
  Alcotest.(check int) "flatten entry" rows.(5).(2) flat.(ptr.(5) + 2);
  match Bigstore.Builder.append_segment b [| -1 |] 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative entry: expected Invalid_argument"

let suite =
  [
    ("MM tabs and space runs", `Quick, test_mm_tabs_and_spaces);
    ("MM round-trip (zoo, general+symmetric)", `Quick, test_mm_roundtrip);
    ("MM skew-symmetric rejected", `Quick, test_mm_skew_symmetric_rejected);
    ( "MM symmetric strict-upper entry rejected",
      `Quick,
      test_mm_symmetric_strict_upper_rejected );
    ( "MM symmetric writer validates symmetry",
      `Quick,
      test_mm_symmetric_writer_validates );
    ( "RCM disconnected multigrid bandwidth",
      `Quick,
      test_rcm_disconnected_bandwidth );
    ( "MM symmetric under-declared nz rejected",
      `Quick,
      test_mm_symmetric_underdeclared_rejected );
    ("MM surplus entries rejected", `Quick, test_mm_surplus_rejected);
    ("MM exact count accepted", `Quick, test_mm_exact_count_accepted);
    ("codegen byte-identical across compiles", `Quick, test_codegen_deterministic);
    ("Rng.int range/determinism/coverage", `Quick, test_rng_int);
    ( "parallel trisolve matches reference",
      `Quick,
      test_parallel_matches_reference );
    prop_triplet_sort_paths_identical;
    ("dense materialization guards", `Quick, test_dense_guards);
    ("etree depths on 10^6 path tree", `Quick, test_etree_depths_deep_path);
    ( "bigstore round-trip and builder growth",
      `Quick,
      test_bigstore_roundtrip_and_growth );
  ]
