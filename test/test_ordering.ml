open Sympiler_sparse
open Sympiler_symbolic
open Helpers

(* Ordering-aware compilation: the orderings themselves (validity on
   adversarial graphs, AMD's fill quality against the exact-degree greedy
   oracle) and the facade's ?ordering stage (bitwise identity against
   manual pre-permutation across every kernel family, zero-allocation
   ordered steady state, cache keying, and `Given validation). *)

(* Shorthand for the unified compile signature. *)
let w o = Sympiler.Options.make ~ordering:o ()
let wc o = Sympiler.Options.make ~ordering:o ~cache:true ()

let orderings =
  [
    ("rcm", Ordering.rcm);
    ("amd", Ordering.amd);
    ("min_degree", Ordering.min_degree);
  ]

let nnz_l (a : Csc.t) : int =
  let f = Fill_pattern.analyze (Csc.lower a) in
  f.Fill_pattern.l_pattern.Csc.colptr.(a.Csc.ncols)

(* ---- permutation validity on adversarial graph shapes ---- *)

let test_valid_perms () =
  let structures =
    [
      ("multigrid (disconnected)", scrambled_multigrid ());
      ("star+ring (dense row)", star_ring 50);
      ("empty 0x0", Csc.zero ~nrows:0 ~ncols:0);
      ("diagonal (edgeless)", Csc.identity 30);
    ]
    @ spd_zoo ()
  in
  List.iter
    (fun (sname, a) ->
      List.iter
        (fun (oname, f) ->
          let p = f a in
          Alcotest.(check int)
            (Printf.sprintf "%s %s length" sname oname)
            a.Csc.ncols (Array.length p);
          Alcotest.(check bool)
            (Printf.sprintf "%s %s valid" sname oname)
            true (Perm.is_valid p))
        orderings)
    structures

let prop_valid_perms =
  qtest ~count:60 "orderings are bijections (random spd)" arb_spd (fun a ->
      List.for_all
        (fun (_, f) ->
          let p = f a in
          Array.length p = a.Csc.ncols && Perm.is_valid p)
        orderings)

(* ---- AMD fill quality vs the greedy exact-degree oracle ---- *)

let test_amd_fill_tolerance () =
  (* The bench gates the eleven suite problems; here the small structural
     zoo plus the adversarial shapes. Tolerance matches the bench (1.25x)
     with a small absolute slack for the tiny matrices where one extra
     entry swings the ratio. *)
  let cases =
    [ ("multigrid", scrambled_multigrid ()); ("star+ring", star_ring 50) ]
    @ spd_zoo ()
  in
  List.iter
    (fun (name, a) ->
      let fa = nnz_l (Perm.symmetric_permute (Ordering.amd a) a) in
      let fm = nnz_l (Perm.symmetric_permute (Ordering.min_degree a) a) in
      Alcotest.(check bool)
        (Printf.sprintf "%s amd %d vs greedy %d" name fa fm)
        true
        (float_of_int fa <= (1.25 *. float_of_int fm) +. 8.0))
    cases

(* ---- ordered compile = manual pre-permutation, bitwise, per family ---- *)

(* The contract under test: an ordered handle takes natural-order values
   and must produce exactly (bitwise) the factors that compiling the
   manually permuted input yields. *)

let perm_of (ord : Sympiler.applied_ordering) n =
  match ord.Sympiler.o_perm with Some p -> p | None -> Perm.identity n

let permuted_lower p (al : Csc.t) : Csc.t =
  let pl, map = Perm.permute_lower p al in
  Array.iteri (fun q m -> pl.Csc.values.(q) <- al.Csc.values.(m)) map;
  pl

let test_bitwise_cholesky () =
  let al = Csc.lower (Generators.grid2d ~stencil:`Five 8 8) in
  let h = Sympiler.Cholesky.compile ~opts:(w `Amd) al in
  let pl = permuted_lower (perm_of h.Sympiler.Cholesky.ord al.Csc.ncols) al in
  let manual =
    let hm = Sympiler.Cholesky.compile pl in
    Sympiler.Cholesky.factor hm pl
  in
  let via_plan =
    Sympiler.Cholesky.execute_ip (Sympiler.Cholesky.plan h) al
  in
  let via_factor = Sympiler.Cholesky.factor h al in
  Alcotest.(check bool)
    "plan bitwise" true
    (via_plan.Csc.values = manual.Csc.values);
  Alcotest.(check bool)
    "factor bitwise" true
    (via_factor.Csc.values = manual.Csc.values)

let test_bitwise_ldlt () =
  let al =
    Csc.lower (Generators.block_tridiagonal ~seed:4 ~nblocks:5 ~block:6 ())
  in
  let h = Sympiler.Ldlt.compile ~opts:(w `Amd) al in
  let pl = permuted_lower (perm_of h.Sympiler.Ldlt.ord al.Csc.ncols) al in
  let manual = Sympiler.Ldlt.factor (Sympiler.Ldlt.compile pl) pl in
  let got = Sympiler.Ldlt.execute_ip (Sympiler.Ldlt.plan h) al in
  Alcotest.(check bool)
    "L bitwise" true
    (got.Sympiler_kernels.Ldlt.l.Csc.values
    = manual.Sympiler_kernels.Ldlt.l.Csc.values);
  Alcotest.(check bool)
    "D bitwise" true
    (got.Sympiler_kernels.Ldlt.d = manual.Sympiler_kernels.Ldlt.d)

let test_bitwise_ic0 () =
  let al = Csc.lower (Generators.grid2d ~stencil:`Nine 7 7) in
  let h = Sympiler.Ic0.compile ~opts:(w `Amd) al in
  let pl = permuted_lower (perm_of h.Sympiler.Ic0.ord al.Csc.ncols) al in
  let manual = Sympiler.Ic0.factor (Sympiler.Ic0.compile pl) pl in
  let got = Sympiler.Ic0.execute_ip (Sympiler.Ic0.plan h) al in
  Alcotest.(check bool) "IC(0) bitwise" true (got.Csc.values = manual.Csc.values)

let permuted_full p (a : Csc.t) : Csc.t =
  let pa, map = Perm.permute_pattern p a in
  Array.iteri (fun q m -> pa.Csc.values.(q) <- a.Csc.values.(m)) map;
  pa

let test_bitwise_lu () =
  let a = Generators.grid2d ~stencil:`Five 7 7 in
  let h = Sympiler.Lu.compile ~opts:(w `Amd) a in
  let pa = permuted_full (perm_of h.Sympiler.Lu.ord a.Csc.ncols) a in
  let manual = Sympiler.Lu.factor (Sympiler.Lu.compile pa) pa in
  let got = Sympiler.Lu.execute_ip (Sympiler.Lu.plan h) a in
  Alcotest.(check bool)
    "L bitwise" true
    (got.Sympiler_kernels.Lu.l.Csc.values
    = manual.Sympiler_kernels.Lu.l.Csc.values);
  Alcotest.(check bool)
    "U bitwise" true
    (got.Sympiler_kernels.Lu.u.Csc.values
    = manual.Sympiler_kernels.Lu.u.Csc.values)

let test_bitwise_ilu0 () =
  let a = Generators.grid2d ~stencil:`Nine 6 6 in
  let h = Sympiler.Ilu0.compile ~opts:(w `Amd) a in
  let pa = permuted_full (perm_of h.Sympiler.Ilu0.ord a.Csc.ncols) a in
  let manual = Sympiler.Ilu0.factor (Sympiler.Ilu0.compile pa) pa in
  let got = Sympiler.Ilu0.execute_ip (Sympiler.Ilu0.plan h) a in
  Alcotest.(check bool)
    "ILU(0) bitwise" true
    (got.Sympiler_kernels.Ilu0.values = manual.Sympiler_kernels.Ilu0.values)

let test_bitwise_trisolve_given () =
  (* Trisolve needs a dependence-respecting relabeling: the etree
     postorder of L's pattern keeps P L P^T lower triangular. *)
  let l = figure1_l in
  let b = { Vector.n = 10; indices = figure1_beta; values = [| 1.0; 2.0 |] } in
  let post = Postorder.compute (Etree.compute l) in
  let h = Sympiler.Trisolve.compile ~opts:(w (`Given post)) (l, b) in
  let x_ord = Sympiler.Trisolve.solve h b in
  let x_plan = Sympiler.Trisolve.execute_ip (Sympiler.Trisolve.plan h) b in
  (* Manual pre-permutation of the whole system. *)
  let pl = permuted_lower post l in
  let pinv = Perm.inverse post in
  let pairs =
    Array.mapi (fun t i -> (pinv.(i), b.Vector.values.(t))) b.Vector.indices
  in
  Array.sort compare pairs;
  let pb =
    {
      Vector.n = 10;
      indices = Array.map fst pairs;
      values = Array.map snd pairs;
    }
  in
  let xp = Sympiler.Trisolve.solve (Sympiler.Trisolve.compile (pl, pb)) pb in
  let x_manual = Array.make 10 0.0 in
  Array.iteri (fun k old -> x_manual.(old) <- xp.(k)) post;
  Alcotest.(check bool) "solve bitwise" true (x_ord = x_manual);
  Alcotest.(check bool) "plan bitwise" true (x_plan = x_manual);
  (* And the relabeled solve agrees with the natural-order one. *)
  let x_nat = Sympiler.Trisolve.solve (Sympiler.Trisolve.compile (l, b)) b in
  check_close "vs natural" x_nat x_ord

let test_trisolve_rejects_breaking_ordering () =
  (* Reversal turns a non-diagonal lower-triangular L strictly upper:
     must be rejected, not silently mis-solved. *)
  let l = figure1_l in
  let b = { Vector.n = 10; indices = figure1_beta; values = [| 1.0; 1.0 |] } in
  let rev = Array.init 10 (fun k -> 9 - k) in
  match Sympiler.Trisolve.compile ~opts:(w (`Given rev)) (l, b) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "triangularity-breaking ordering accepted"

(* ---- ordered solves stay correct ---- *)

let test_ordered_cholesky_solve () =
  List.iter
    (fun (name, a) ->
      let al = Csc.lower a in
      let n = a.Csc.ncols in
      let rng = Utils.Rng.create 17 in
      let b = Array.init n (fun _ -> Utils.Rng.float_range rng (-1.0) 1.0) in
      let x_nat = Sympiler.Cholesky.solve (Sympiler.Cholesky.compile al) al b in
      List.iter
        (fun (oname, o) ->
          let h = Sympiler.Cholesky.compile ~opts:(w o) al in
          let x = Sympiler.Cholesky.solve h al b in
          check_close ~eps:1e-6 (Printf.sprintf "%s %s" name oname) x_nat x)
        [ ("rcm", `Rcm); ("amd", `Amd); ("min-degree", `Min_degree) ])
    [
      List.nth (spd_zoo ()) 0;
      List.nth (spd_zoo ()) 3;
      ("multigrid", scrambled_multigrid ());
    ]

let prop_ordered_solve =
  qtest ~count:40 "ordered cholesky solve matches natural (random spd)"
    arb_spd (fun a ->
      let al = Csc.lower a in
      let n = a.Csc.ncols in
      let rng = Utils.Rng.create 23 in
      let b = Array.init n (fun _ -> Utils.Rng.float_range rng (-1.0) 1.0) in
      let x_nat =
        Sympiler.Cholesky.solve (Sympiler.Cholesky.compile al) al b
      in
      let x_amd =
        Sympiler.Cholesky.solve (Sympiler.Cholesky.compile ~opts:(w `Amd) al) al b
      in
      close ~eps:1e-6 x_nat x_amd)

(* ---- zero allocation on the ordered steady path ---- *)

let test_ordered_zero_alloc () =
  let al = Csc.lower (Generators.grid2d ~stencil:`Five 10 10) in
  let p =
    Sympiler.Cholesky.plan (Sympiler.Cholesky.compile ~opts:(w `Amd) al)
  in
  ignore (Sympiler.Cholesky.execute_ip p al);
  let w0 = Gc.minor_words () in
  for _ = 1 to 20 do
    ignore (Sympiler.Cholesky.execute_ip p al)
  done;
  let words = int_of_float (Gc.minor_words () -. w0) in
  Alcotest.(check int) "ordered cholesky minor words" 0 words;
  (* Ordered trisolve steady path likewise. *)
  let l = figure1_l in
  let b = { Vector.n = 10; indices = figure1_beta; values = [| 1.0; 2.0 |] } in
  let post = Postorder.compute (Etree.compute l) in
  let tp =
    Sympiler.Trisolve.plan
      (Sympiler.Trisolve.compile ~opts:(w (`Given post)) (l, b))
  in
  ignore (Sympiler.Trisolve.execute_ip tp b);
  let w0 = Gc.minor_words () in
  for _ = 1 to 20 do
    ignore (Sympiler.Trisolve.execute_ip tp b)
  done;
  let words = int_of_float (Gc.minor_words () -. w0) in
  Alcotest.(check int) "ordered trisolve minor words" 0 words

(* ---- the cache key carries the ordering ---- *)

let test_cache_keyed_on_ordering () =
  let al = Csc.lower (Generators.grid2d ~stencil:`Five 6 6) in
  Sympiler.Cholesky.cache_clear ();
  let h_nat = Sympiler.Cholesky.compile ~opts:Sympiler.Options.cached al in
  let h_amd = Sympiler.Cholesky.compile ~opts:(wc `Amd) al in
  Alcotest.(check bool) "natural vs amd distinct" false (h_nat == h_amd);
  let h_amd' = Sympiler.Cholesky.compile ~opts:(wc `Amd) al in
  Alcotest.(check bool) "amd hit physically equal" true (h_amd == h_amd');
  (* `Given with the same permutation AMD chose is a distinct key (the
     fingerprint spells out the permutation), but compiles fine. *)
  let p = perm_of h_amd.Sympiler.Cholesky.ord al.Csc.ncols in
  let h_given = Sympiler.Cholesky.compile ~opts:(wc (`Given p)) al in
  Alcotest.(check bool) "given vs amd distinct" false (h_amd == h_given);
  Alcotest.(check int)
    "given = amd analysis" h_amd.Sympiler.Cholesky.nnz_l
    h_given.Sympiler.Cholesky.nnz_l

(* ---- `Given validation and degenerate sizes through every family ---- *)

let test_given_validation () =
  let a = Generators.grid2d ~stencil:`Five 4 4 in
  let al = Csc.lower a in
  let b =
    { Vector.n = 16; indices = [| 0; 5 |]; values = [| 1.0; 1.0 |] }
  in
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: invalid permutation accepted" name
  in
  let bad_perms =
    [ ("wrong length", [| 0; 1; 2 |]); ("not a bijection", Array.make 16 0) ]
  in
  List.iter
    (fun (pname, p) ->
      expect_invalid ("cholesky " ^ pname) (fun () ->
          Sympiler.Cholesky.compile ~opts:(w (`Given p)) al);
      expect_invalid ("ldlt " ^ pname) (fun () ->
          Sympiler.Ldlt.compile ~opts:(w (`Given p)) al);
      expect_invalid ("ic0 " ^ pname) (fun () ->
          Sympiler.Ic0.compile ~opts:(w (`Given p)) al);
      expect_invalid ("lu " ^ pname) (fun () ->
          Sympiler.Lu.compile ~opts:(w (`Given p)) a);
      expect_invalid ("ilu0 " ^ pname) (fun () ->
          Sympiler.Ilu0.compile ~opts:(w (`Given p)) a);
      expect_invalid ("trisolve " ^ pname) (fun () ->
          Sympiler.Trisolve.compile ~opts:(w (`Given p)) (al, b));
      expect_invalid ("symmetric_permute " ^ pname) (fun () ->
          Perm.symmetric_permute p a))
    bad_perms

let test_degenerate_sizes () =
  (* 0x0 and 1x1 through the ordered path of every family. *)
  let z = Csc.zero ~nrows:0 ~ncols:0 in
  let hz = Sympiler.Cholesky.compile ~opts:(w (`Given [||])) z in
  Alcotest.(check int) "0x0 nnz_l" 0 hz.Sympiler.Cholesky.nnz_l;
  let one = Csc.of_dense [| [| 4.0 |] |] in
  let l1 =
    Sympiler.Cholesky.factor
      (Sympiler.Cholesky.compile ~opts:(w `Amd) one)
      one
  in
  check_close "1x1 cholesky" [| 2.0 |] l1.Csc.values;
  let f1 =
    Sympiler.Ldlt.factor
      (Sympiler.Ldlt.compile ~opts:(w (`Given [| 0 |])) one)
      one
  in
  check_close "1x1 ldlt d" [| 4.0 |] f1.Sympiler_kernels.Ldlt.d;
  let lu1 =
    Sympiler.Lu.factor (Sympiler.Lu.compile ~opts:(w `Rcm) one) one
  in
  check_close "1x1 lu u" [| 4.0 |] lu1.Sympiler_kernels.Lu.u.Csc.values;
  let ic1 =
    Sympiler.Ic0.factor (Sympiler.Ic0.compile ~opts:(w `Min_degree) one) one
  in
  check_close "1x1 ic0" [| 2.0 |] ic1.Csc.values;
  let ilu1 =
    Sympiler.Ilu0.factor (Sympiler.Ilu0.compile ~opts:(w `Amd) one) one
  in
  check_close "1x1 ilu0" [| 4.0 |] ilu1.Sympiler_kernels.Ilu0.values;
  let b1 = { Vector.n = 1; indices = [| 0 |]; values = [| 3.0 |] } in
  let x1 =
    Sympiler.Trisolve.solve
      (Sympiler.Trisolve.compile ~opts:(w (`Given [| 0 |])) (one, b1))
      b1
  in
  check_close "1x1 trisolve" [| 0.75 |] x1

(* The CSR adjacency behind RCM's O(nnz) sweeps must agree with the
   list-based view on every graph shape, including disconnected and
   edgeless ones. *)
let test_adjacency_csr_matches_lists () =
  List.iter
    (fun (name, (a : Csc.t)) ->
      let ptr, ind = Ordering.adjacency_csr a in
      let lists = Ordering.adjacency a in
      let n = a.Csc.ncols in
      Alcotest.(check int) (name ^ " ptr length") (n + 1) (Array.length ptr);
      for v = 0 to n - 1 do
        let csr = Array.to_list (Array.sub ind ptr.(v) (ptr.(v + 1) - ptr.(v))) in
        if csr <> lists.(v) then
          Alcotest.failf "%s: vertex %d CSR/list adjacency mismatch" name v
      done)
    [
      ("multigrid (disconnected)", scrambled_multigrid ());
      ("star+ring (dense row)", star_ring 50);
      ("diagonal (edgeless)", Csc.identity 30);
      ("grid2d", Generators.grid2d ~stencil:`Nine 7 6);
    ]

let suite =
  [
    ("orderings valid on adversarial graphs", `Quick, test_valid_perms);
    ("adjacency CSR matches list view", `Quick, test_adjacency_csr_matches_lists);
    prop_valid_perms;
    ("amd fill within tolerance of greedy", `Quick, test_amd_fill_tolerance);
    ("ordered cholesky bitwise vs manual", `Quick, test_bitwise_cholesky);
    ("ordered ldlt bitwise vs manual", `Quick, test_bitwise_ldlt);
    ("ordered ic0 bitwise vs manual", `Quick, test_bitwise_ic0);
    ("ordered lu bitwise vs manual", `Quick, test_bitwise_lu);
    ("ordered ilu0 bitwise vs manual", `Quick, test_bitwise_ilu0);
    ( "ordered trisolve (`Given postorder) bitwise",
      `Quick,
      test_bitwise_trisolve_given );
    ( "trisolve rejects triangularity-breaking ordering",
      `Quick,
      test_trisolve_rejects_breaking_ordering );
    ("ordered cholesky solve correct", `Quick, test_ordered_cholesky_solve);
    prop_ordered_solve;
    ("ordered steady path allocation-free", `Quick, test_ordered_zero_alloc);
    ("cache keyed on ordering", `Quick, test_cache_keyed_on_ordering);
    ("`Given validation across families", `Quick, test_given_validation);
    ("degenerate sizes through ordered path", `Quick, test_degenerate_sizes);
  ]
