open Sympiler_sparse
open Sympiler_kernels
open Sympiler_prof
open Helpers

(* Tests for the observability layer: scope timers (reentrancy, reset),
   kernel counters (recorded when enabled, untouched when disabled), and
   the JSON/table emitters. *)

let with_prof f =
  Prof.reset ();
  Prof.enable ();
  Fun.protect ~finally:(fun () ->
      Prof.disable ();
      Prof.reset ())
    f

let fig1_rhs () =
  { Vector.n = 10; indices = figure1_beta; values = [| 1.0; 1.0 |] }

(* ---- timers ---- *)

let test_timer_accumulates () =
  with_prof @@ fun () ->
  let spin () =
    let s = ref 0.0 in
    for i = 1 to 100_000 do
      s := !s +. float_of_int i
    done;
    ignore (Sys.opaque_identity !s)
  in
  Prof.time "work" spin;
  Prof.time "work" spin;
  Alcotest.(check int) "entries" 2 (Prof.scope_entries "work");
  Alcotest.(check bool) "positive time" true (Prof.scope_seconds "work" > 0.0);
  Alcotest.(check int) "unknown scope entries" 0 (Prof.scope_entries "nope");
  Alcotest.(check (float 0.0)) "unknown scope time" 0.0
    (Prof.scope_seconds "nope")

let test_timer_reentrant () =
  with_prof @@ fun () ->
  (* The facade wraps inspectors that open the same scope; the outermost
     span must be counted exactly once. *)
  Prof.time "symbolic" (fun () ->
      Prof.time "symbolic" (fun () -> Prof.time "symbolic" ignore));
  Alcotest.(check int) "outermost counted once" 1
    (Prof.scope_entries "symbolic");
  let outer = Prof.scope_seconds "symbolic" in
  Alcotest.(check bool) "no double counting" true (outer >= 0.0 && outer < 1.0)

let test_timer_exception_safe () =
  with_prof @@ fun () ->
  (try Prof.time "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "scope closed" 1 (Prof.scope_entries "boom");
  (* A balanced stop must be possible again — depth went back to zero. *)
  Prof.time "boom" ignore;
  Alcotest.(check int) "still counting" 2 (Prof.scope_entries "boom")

let test_disabled_is_passthrough () =
  Prof.reset ();
  Prof.disable ();
  Alcotest.(check int) "time returns result" 3 (Prof.time "off" (fun () -> 3));
  Alcotest.(check int) "no scope recorded" 0 (Prof.scope_entries "off");
  Alcotest.(check (list (triple string (float 0.0) int))) "no scopes" []
    (Prof.scopes ())

(* ---- counters from real kernels ---- *)

let test_trisolve_counters () =
  let l = figure1_l in
  let b = fig1_rhs () in
  with_prof @@ fun () ->
  let c = Trisolve_sympiler.compile l b in
  Alcotest.(check int) "iters pruned = n - |reach|"
    (l.Csc.ncols - Array.length c.Trisolve_sympiler.reach)
    Prof.counters.Prof.iters_pruned;
  Alcotest.(check bool) "supernodes detected" true
    (Prof.counters.Prof.supernodes > 0);
  let flops0 = Prof.counters.Prof.flops in
  let x = Vector.sparse_to_dense b in
  Trisolve_sympiler.solve_full_ip c x;
  Alcotest.(check bool) "solve adds flops" true
    (Prof.counters.Prof.flops > flops0);
  Alcotest.(check bool) "nnz touched" true (Prof.counters.Prof.nnz_touched > 0)

let test_levels_counter () =
  with_prof @@ fun () ->
  let c = Trisolve_parallel.compile figure1_l in
  Alcotest.(check int) "levels" c.Trisolve_parallel.nlevels
    Prof.counters.Prof.levels;
  Alcotest.(check bool) "max level width" true
    (Prof.counters.Prof.max_level_width >= 1)

let test_counters_untouched_when_disabled () =
  Prof.reset ();
  Prof.disable ();
  let l = figure1_l in
  let b = fig1_rhs () in
  let c = Trisolve_sympiler.compile l b in
  let x = Vector.sparse_to_dense b in
  Trisolve_sympiler.solve_full_ip c x;
  ignore (Trisolve_parallel.compile l);
  let k = Prof.counters in
  Alcotest.(check int) "flops" 0 k.Prof.flops;
  Alcotest.(check int) "nnz" 0 k.Prof.nnz_touched;
  Alcotest.(check int) "pruned" 0 k.Prof.iters_pruned;
  Alcotest.(check int) "supernodes" 0 k.Prof.supernodes;
  Alcotest.(check int) "levels" 0 k.Prof.levels

let test_reset () =
  with_prof @@ fun () ->
  Prof.time "s" ignore;
  Prof.counters.Prof.flops <- 7;
  Prof.reset ();
  Alcotest.(check int) "scopes gone" 0 (Prof.scope_entries "s");
  Alcotest.(check int) "counters zeroed" 0 Prof.counters.Prof.flops;
  Alcotest.(check bool) "still enabled" true (Prof.enabled ())

(* ---- emitters ---- *)

let is_infix needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_json_emitter () =
  let open Prof.Json in
  Alcotest.(check string) "escaping" {|{"a\"b\n":[null,true,-3,"x"]}|}
    (to_string (Obj [ ("a\"b\n", List [ Null; Bool true; Int (-3); Str "x" ]) ]));
  Alcotest.(check string) "non-finite floats are null" {|[null,null,0.5]|}
    (to_string (List [ Float nan; Float infinity; Float 0.5 ]));
  with_prof @@ fun () ->
  Prof.time "phase1" ignore;
  Prof.counters.Prof.flops <- 12;
  let s = Prof.to_json () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json has " ^ needle) true
        (is_infix needle s))
    [ {|"phases"|}; {|"phase1"|}; {|"counters"|}; {|"flops":12|} ]

let test_table_emitter () =
  with_prof @@ fun () ->
  Prof.time "numeric" ignore;
  Prof.counters.Prof.flops <- 99;
  let t = Prof.table () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("table has " ^ needle) true
        (is_infix needle t))
    [ "numeric"; "flops"; "99" ]

let test_inflight_scope () =
  with_prof @@ fun () ->
  Prof.start "live";
  let spin = ref 0.0 in
  for i = 1 to 100_000 do
    spin := !spin +. float_of_int i
  done;
  ignore (Sys.opaque_identity !spin);
  (* A snapshot taken mid-phase must see the elapsed time of the open
     span, while entries stay at zero until it closes. *)
  Alcotest.(check bool) "in-flight time visible" true
    (Prof.scope_seconds "live" > 0.0);
  Alcotest.(check int) "not yet a completed entry" 0
    (Prof.scope_entries "live");
  (match List.find_opt (fun (n, _, _) -> n = "live") (Prof.scopes ()) with
  | None -> Alcotest.fail "scopes () omits the in-flight scope"
  | Some (_, secs, entries) ->
      Alcotest.(check bool) "scopes () includes live time" true (secs > 0.0);
      Alcotest.(check int) "scopes () entries" 0 entries);
  Prof.stop "live";
  Alcotest.(check int) "entry counted after stop" 1
    (Prof.scope_entries "live")

let test_table_alignment () =
  with_prof @@ fun () ->
  Prof.time "s" ignore;
  Prof.time "a-very-long-inspection-phase-name-indeed" ignore;
  let t = Prof.table () in
  (* Every phase row is padded to the widest name: the seconds column
     starts at the same offset on each line, so all phase rows have the
     same length regardless of name width. *)
  let phase_rows =
    String.split_on_char '\n' t
    |> List.filter (fun l ->
           is_infix "a-very-long-inspection-phase-name-indeed" l
           || (String.length l > 0 && String.sub l 0 2 = "s "))
  in
  (match phase_rows with
  | [ r1; r2 ] ->
      Alcotest.(check int) "aligned rows have equal length"
        (String.length r1) (String.length r2)
  | l ->
      Alcotest.fail
        (Printf.sprintf "expected 2 phase rows, got %d" (List.length l)))

let suite =
  [
    ("timer accumulates", `Quick, test_timer_accumulates);
    ("timer reentrant", `Quick, test_timer_reentrant);
    ("timer exception-safe", `Quick, test_timer_exception_safe);
    ("disabled = passthrough", `Quick, test_disabled_is_passthrough);
    ("trisolve counters", `Quick, test_trisolve_counters);
    ("level-set counters", `Quick, test_levels_counter);
    ( "counters untouched when disabled",
      `Quick,
      test_counters_untouched_when_disabled );
    ("reset", `Quick, test_reset);
    ("json emitter", `Quick, test_json_emitter);
    ("table emitter", `Quick, test_table_emitter);
    ("in-flight scope visible", `Quick, test_inflight_scope);
    ("table columns aligned", `Quick, test_table_alignment);
  ]
