open Sympiler_sparse
open Sympiler_trace
open Helpers

(* Tests for the structured-tracing layer: span nesting and ordering,
   attribute escaping in the Chrome exporter, ring-buffer wraparound,
   zero allocation when disabled, the cache-hit attribute, the
   transformation decision log, and the explain reports (including the
   0x0 edge case). *)

let with_trace ?capacity f =
  Trace.enable ?capacity ();
  Trace.reset ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Trace.reset ())
    f

let is_infix needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let span_named name = List.find (fun s -> s.Trace.name = name) (Trace.spans ())

let empty_csc () =
  Csc.create ~nrows:0 ~ncols:0 ~colptr:[| 0 |] ~rowind:[||] ~values:[||]

(* ---- span recording ---- *)

let test_nesting_and_ordering () =
  with_trace @@ fun () ->
  Trace.with_span "outer" (fun () ->
      Trace.with_span "inner" (fun () -> ignore (Sys.opaque_identity 1)));
  Alcotest.(check int) "two spans" 2 (Trace.span_count ());
  (* Spans land at completion: children before parents in ring order. *)
  (match Trace.spans () with
  | [ a; b ] ->
      Alcotest.(check string) "child recorded first" "inner" a.Trace.name;
      Alcotest.(check string) "parent recorded second" "outer" b.Trace.name
  | _ -> Alcotest.fail "expected exactly two spans");
  let outer = span_named "outer" and inner = span_named "inner" in
  Alcotest.(check int) "outer depth" 0 outer.Trace.depth;
  Alcotest.(check int) "inner depth" 1 inner.Trace.depth;
  Alcotest.(check bool) "inner starts after outer" true
    (inner.Trace.start_ns >= outer.Trace.start_ns);
  Alcotest.(check bool) "inner contained in outer" true
    (inner.Trace.start_ns + inner.Trace.dur_ns
    <= outer.Trace.start_ns + outer.Trace.dur_ns);
  Alcotest.(check bool) "durations non-negative" true
    (inner.Trace.dur_ns >= 0 && outer.Trace.dur_ns >= inner.Trace.dur_ns)

let test_exception_safety () =
  with_trace @@ fun () ->
  (try Trace.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "span closed on raise" 1 (Trace.span_count ());
  (* Depth must be back at the root: a new span records at depth 0. *)
  Trace.with_span "after" ignore;
  Alcotest.(check int) "root depth after raise" 0
    (span_named "after").Trace.depth

let test_attrs () =
  with_trace @@ fun () ->
  Trace.with_span "s" (fun () ->
      Trace.set_attr "k" (Trace.Int 7);
      Trace.set_attr "f" (Trace.Bool true));
  let s = span_named "s" in
  Alcotest.(check bool) "attr k" true
    (List.mem_assoc "k" s.Trace.attrs && List.mem_assoc "f" s.Trace.attrs)

(* ---- Chrome exporter ---- *)

let test_chrome_escaping () =
  with_trace @@ fun () ->
  Trace.with_span "na\"me\nwith" (fun () ->
      Trace.set_attr "at\"tr" (Trace.Str "va\"l\nue"));
  Trace.instant "marker";
  let j = Trace.to_chrome_json () in
  Alcotest.(check bool) "has traceEvents" true (is_infix "\"traceEvents\"" j);
  Alcotest.(check bool) "span name escaped" true
    (is_infix {|na\"me\nwith|} j);
  Alcotest.(check bool) "attr key escaped" true (is_infix {|at\"tr|} j);
  Alcotest.(check bool) "attr value escaped" true (is_infix {|va\"l\nue|} j);
  Alcotest.(check bool) "no raw newline" true (not (String.contains j '\n'));
  Alcotest.(check bool) "instant phase" true (is_infix {|"ph":"i"|} j);
  Alcotest.(check bool) "complete phase" true (is_infix {|"ph":"X"|} j)

(* ---- ring buffer ---- *)

let test_wraparound () =
  with_trace ~capacity:4 @@ fun () ->
  for i = 0 to 5 do
    Trace.with_span (Printf.sprintf "s%d" i) ignore
  done;
  Alcotest.(check int) "count capped at capacity" 4 (Trace.span_count ());
  Alcotest.(check int) "two dropped" 2 (Trace.dropped_spans ());
  (* Oldest dropped first: s0 and s1 gone, s2..s5 remain in order. *)
  Alcotest.(check (list string)) "oldest-first order"
    [ "s2"; "s3"; "s4"; "s5" ]
    (List.map (fun s -> s.Trace.name) (Trace.spans ()))

let test_reset_and_capacity_change () =
  with_trace ~capacity:4 @@ fun () ->
  Trace.with_span "a" ignore;
  Trace.reset ();
  Alcotest.(check int) "reset clears" 0 (Trace.span_count ());
  (* Re-enabling with a different capacity reallocates and clears. *)
  Trace.enable ~capacity:8 ();
  Trace.with_span "b" ignore;
  Alcotest.(check int) "fresh ring" 1 (Trace.span_count ());
  Alcotest.(check int) "no drops" 0 (Trace.dropped_spans ())

(* ---- disabled mode ---- *)

let test_disabled_zero_alloc () =
  Trace.disable ();
  let pairs = 1000 in
  let loop () =
    for _ = 1 to pairs do
      Trace.begin_span "hot";
      Trace.set_attr "k" (Trace.Int 1);
      Trace.end_span ()
    done
  in
  loop ();
  (* warm-up *)
  let w0 = Gc.minor_words () in
  loop ();
  let w1 = Gc.minor_words () in
  (* Amortized per-pair allocation must be exactly zero; the sampling
     calls themselves may box a couple of floats, hence the division. *)
  Alcotest.(check int) "minor words per disabled pair" 0
    (int_of_float ((w1 -. w0) /. float_of_int pairs));
  Alcotest.(check int) "nothing recorded" 0 (Trace.span_count ())

(* ---- pipeline integration ---- *)

let small_spd () = Generators.grid2d ~stencil:`Five 8 8

let test_cache_hit_attr () =
  with_trace @@ fun () ->
  let al = Csc.lower (small_spd ()) in
  let cache = Sympiler.Plan_cache.create () in
  let h = Sympiler.Cholesky.compile ~cache al in
  let h' = Sympiler.Cholesky.compile ~cache al in
  Alcotest.(check bool) "physically equal handles" true (h == h');
  let lookups =
    List.filter
      (fun s -> s.Trace.name = "compile_cached.cholesky")
      (Trace.spans ())
  in
  let cache_attr s = List.assoc "cache" s.Trace.attrs in
  (match lookups with
  | [ first; second ] ->
      Alcotest.(check bool) "first is miss" true
        (cache_attr first = Trace.Str "miss");
      Alcotest.(check bool) "second is hit" true
        (cache_attr second = Trace.Str "hit")
  | l -> Alcotest.fail (Printf.sprintf "expected 2 lookups, got %d" (List.length l)));
  (* The miss compiled: symbolic stage spans must be nested inside it. *)
  List.iter
    (fun name ->
      Alcotest.(check bool) ("recorded " ^ name) true
        (List.exists (fun s -> s.Trace.name = name) (Trace.spans ())))
    [ "compile.cholesky"; "symbolic.fill"; "symbolic.etree";
      "symbolic.col_counts"; "symbolic.supernode_detection" ]

let test_decision_log () =
  let al = Csc.lower (small_spd ()) in
  with_trace @@ fun () ->
  let h = Sympiler.Cholesky.compile al in
  let passes =
    List.map (fun d -> d.Trace.pass) h.Sympiler.Cholesky.decisions
  in
  Alcotest.(check bool) "cholesky decisions cover both passes" true
    (List.mem "vi-prune" passes && List.mem "vs-block" passes);
  List.iter
    (fun d ->
      if d.Trace.pass = "vi-prune" then begin
        Alcotest.(check bool) "vi-prune fired" true d.Trace.fired;
        Alcotest.(check bool) "ratio in [0,1]" true
          (d.Trace.value >= 0.0 && d.Trace.value <= 1.0)
      end)
    h.Sympiler.Cholesky.decisions;
  (* Decisions are also emitted as instants into the trace. *)
  List.iter
    (fun name ->
      Alcotest.(check bool) ("instant " ^ name) true
        (List.exists
           (fun s -> s.Trace.name = name && s.Trace.kind = Trace.Instant)
           (Trace.spans ())))
    [ "decision.vi-prune"; "decision.vs-block" ];
  (* Trisolve decisions ride on the handle too. *)
  let b = { Vector.n = 10; indices = figure1_beta; values = [| 1.0; 1.0 |] } in
  let t = Sympiler.Trisolve.compile (figure1_l, b) in
  Alcotest.(check int) "trisolve has two decisions" 2
    (List.length t.Sympiler.Trisolve.decisions)

let test_steady_spans () =
  let al = Csc.lower (small_spd ()) in
  let h = Sympiler.Cholesky.compile al in
  let p = Sympiler.Cholesky.plan h in
  ignore (Sympiler.Cholesky.execute_ip p al);
  with_trace @@ fun () ->
  ignore (Sympiler.Cholesky.execute_ip p al);
  ignore (Sympiler.Cholesky.execute_ip p al);
  let factor_spans =
    List.filter
      (fun s -> is_infix "factor_ip." s.Trace.name)
      (Trace.spans ())
  in
  Alcotest.(check int) "one span per refactor call" 2
    (List.length factor_spans)

(* ---- folded exporter ---- *)

let test_folded () =
  with_trace @@ fun () ->
  Trace.with_span "root" (fun () ->
      Trace.with_span "leaf" (fun () ->
          ignore (Sys.opaque_identity (Array.make 100 0))));
  let f = Trace.to_folded () in
  Alcotest.(check bool) "has root;leaf path" true (is_infix "root;leaf " f);
  (* Every line is "path count" with a positive count. *)
  String.split_on_char '\n' f
  |> List.filter (fun l -> l <> "")
  |> List.iter (fun line ->
         match String.rindex_opt line ' ' with
         | None -> Alcotest.fail ("malformed folded line: " ^ line)
         | Some i ->
             let v =
               int_of_string
                 (String.sub line (i + 1) (String.length line - i - 1))
             in
             Alcotest.(check bool) "positive self time" true (v > 0))

(* ---- explain reports ---- *)

let test_explain_cholesky () =
  let a = small_spd () in
  let al = Csc.lower a in
  let h = Sympiler.Cholesky.compile al in
  let r = Sympiler.explain h in
  Alcotest.(check string) "kernel" "cholesky" r.Sympiler.Explain.kernel;
  Alcotest.(check int) "n" 64 r.Sympiler.Explain.n;
  Alcotest.(check bool) "fill ratio >= 1" true
    (r.Sympiler.Explain.fill_ratio >= 1.0);
  Alcotest.(check bool) "etree height positive" true
    (r.Sympiler.Explain.etree_height > 0);
  Alcotest.(check bool) "col hist nonempty" true
    (r.Sympiler.Explain.col_count_hist <> []);
  Alcotest.(check bool) "hist counts cover all columns" true
    (List.fold_left (fun acc (_, c) -> acc + c) 0
       r.Sympiler.Explain.col_count_hist
    = 64);
  Alcotest.(check int) "two decisions" 2
    (List.length r.Sympiler.Explain.decisions);
  Alcotest.(check bool) "level depth positive" true
    (r.Sympiler.Explain.level_depth > 0);
  Alcotest.(check bool) "predicted flops positive" true
    (r.Sympiler.Explain.predicted_flops > 0.0);
  let j = Sympiler.Explain.to_json r in
  List.iter
    (fun k ->
      Alcotest.(check bool) ("json has " ^ k) true (is_infix ("\"" ^ k ^ "\"") j))
    [ "kernel"; "fill_ratio"; "etree_height"; "col_count_hist";
      "supernode_width_hist"; "decisions"; "predicted_flops";
      "executed_flops"; "level_depth" ];
  let t = Sympiler.Explain.to_table r in
  Alcotest.(check bool) "table has fill ratio" true (is_infix "fill ratio" t);
  Alcotest.(check bool) "table has decisions" true
    (is_infix "decision[vi-prune]" t)

let test_explain_trisolve () =
  let b = { Vector.n = 10; indices = figure1_beta; values = [| 1.0; 1.0 |] } in
  let h = Sympiler.Trisolve.compile (figure1_l, b) in
  let r = Sympiler.Explain.trisolve h in
  Alcotest.(check string) "kernel" "trisolve" r.Sympiler.Explain.kernel;
  Alcotest.(check int) "n" 10 r.Sympiler.Explain.n;
  Alcotest.(check bool) "level depth positive" true
    (r.Sympiler.Explain.level_depth > 0);
  Alcotest.(check int) "two decisions" 2
    (List.length r.Sympiler.Explain.decisions)

let test_explain_empty () =
  (* 0x0 input: every ratio must be well-formed (no division by zero). *)
  let e = empty_csc () in
  let h = Sympiler.Cholesky.compile e in
  let r = Sympiler.explain h in
  Alcotest.(check int) "n" 0 r.Sympiler.Explain.n;
  Alcotest.(check (float 0.0)) "fill ratio" 0.0 r.Sympiler.Explain.fill_ratio;
  Alcotest.(check int) "etree height" 0 r.Sympiler.Explain.etree_height;
  Alcotest.(check int) "level depth" 0 r.Sympiler.Explain.level_depth;
  Alcotest.(check bool) "histograms empty" true
    (r.Sympiler.Explain.col_count_hist = []
    && r.Sympiler.Explain.supernode_width_hist = []);
  List.iter
    (fun (d : Trace.decision) ->
      Alcotest.(check bool) "decision values finite or nan, not inf" true
        (Float.is_nan d.Trace.value || Float.is_finite d.Trace.value))
    r.Sympiler.Explain.decisions;
  (* The emitters must not raise, and JSON must stay parseable (nan
     renders as null). *)
  let j = Sympiler.Explain.to_json r in
  Alcotest.(check bool) "json emitted" true (is_infix "\"kernel\"" j);
  Alcotest.(check bool) "no bare nan in json" true (not (is_infix "nan" j));
  ignore (Sympiler.Explain.to_table r);
  (* Same for trisolve on the empty pattern. *)
  let b0 = { Vector.n = 0; indices = [||]; values = [||] } in
  let th = Sympiler.Trisolve.compile (e, b0) in
  let tr = Sympiler.Explain.trisolve th in
  Alcotest.(check (float 0.0)) "trisolve fill ratio" 0.0
    tr.Sympiler.Explain.fill_ratio;
  Alcotest.(check int) "trisolve level depth" 0
    tr.Sympiler.Explain.level_depth;
  ignore (Sympiler.Explain.to_json tr)

(* Tracing the empty-pattern compile must also be well-formed. *)
let test_trace_empty () =
  with_trace @@ fun () ->
  let e = empty_csc () in
  ignore (Sympiler.Cholesky.compile e);
  let j = Trace.to_chrome_json () in
  Alcotest.(check bool) "compile span present" true
    (is_infix "compile.cholesky" j);
  Alcotest.(check bool) "no bare nan in chrome json" true
    (not (is_infix "nan" j))

let suite =
  [
    ("span nesting and ordering", `Quick, test_nesting_and_ordering);
    ("span exception safety", `Quick, test_exception_safety);
    ("span attributes", `Quick, test_attrs);
    ("chrome JSON escaping", `Quick, test_chrome_escaping);
    ("ring wraparound drops oldest", `Quick, test_wraparound);
    ("reset and capacity change", `Quick, test_reset_and_capacity_change);
    ("disabled mode allocates nothing", `Quick, test_disabled_zero_alloc);
    ("cache hit/miss attribute", `Quick, test_cache_hit_attr);
    ("transformation decision log", `Quick, test_decision_log);
    ("steady-state factor spans", `Quick, test_steady_spans);
    ("folded exporter", `Quick, test_folded);
    ("explain cholesky", `Quick, test_explain_cholesky);
    ("explain trisolve", `Quick, test_explain_trisolve);
    ("explain empty matrix", `Quick, test_explain_empty);
    ("trace empty matrix", `Quick, test_trace_empty);
  ]
