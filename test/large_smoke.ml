(* Large-scale smoke test: a 10^5-row elongated 3D grid driven through the
   facade end to end. Deliberately NOT part of the default `dune runtest`
   (it forces a ~10^5-row factorization, seconds of work); run it with
   `dune build @large-smoke` or via scripts/ci.sh under SYMPILER_LARGE=1.

   Checks: symbolic + numeric success at scale, a small residual, zero
   steady-state allocation of the plan path (the same Gc protocol the
   steady bench gates), and bitwise identity of pool-parallel factors
   against the sequential executor. *)

open Sympiler_sparse

let failures = ref 0

let check name ok =
  if ok then Printf.printf "  [ok] %s\n%!" name
  else begin
    incr failures;
    Printf.printf "  [FAIL] %s\n%!" name
  end

let () =
  Printf.printf "large-smoke: 10^5-row grid3d through the facade\n%!";
  let g =
    List.find
      (fun p -> p.Generators.name = "grid3d_1e5")
      Generators.large_suite
  in
  let a = Lazy.force g.Generators.matrix in
  let al = Csc.lower a in
  let n = a.Csc.ncols in
  check "n = 10^5" (n = 100_000);

  (* Symbolic + numeric end to end. *)
  let h = Sympiler.Cholesky.compile al in
  check "nnz(L) >= nnz(lower A)" (h.Sympiler.Cholesky.nnz_l >= Csc.nnz al);
  let plan = Sympiler.Cholesky.plan h in
  ignore (Sympiler.Cholesky.execute_ip plan al);
  let l = Sympiler.Cholesky.plan_factor plan in
  let x_true = Array.make n 1.0 in
  let b = Csc.spmv a x_true in
  let x = Sympiler_kernels.Cholesky_ref.solve_with_factor l b in
  let err = ref 0.0 in
  for i = 0 to n - 1 do
    err := Float.max !err (Float.abs (x.(i) -. 1.0))
  done;
  check (Printf.sprintf "solve recovers ones (err %.2e)" !err) (!err < 1e-6);

  (* Steady-state refactorization must allocate nothing. *)
  ignore (Sympiler.Cholesky.execute_ip plan al);
  ignore (Sympiler.Cholesky.execute_ip plan al);
  let loops = 5 in
  let w0 = Gc.minor_words () in
  for _ = 1 to loops do
    ignore (Sympiler.Cholesky.execute_ip plan al)
  done;
  let per_call =
    int_of_float ((Gc.minor_words () -. w0) /. float_of_int loops)
  in
  check
    (Printf.sprintf "steady refactor allocation-free (%d words/call)" per_call)
    (per_call = 0);

  (* Pool-parallel factors must be bitwise-identical to sequential ones. *)
  let hs =
    Sympiler.Cholesky.compile
      ~opts:(Sympiler.Options.make ~vs_block_threshold:0.0 ())
      al
  in
  let p_seq = Sympiler.Cholesky.plan hs in
  let p_par = Sympiler.Cholesky.plan ~ndomains:2 hs in
  ignore (Sympiler.Cholesky.execute_ip p_seq al);
  ignore (Sympiler.Cholesky.execute_ip p_par al);
  let vs = (Sympiler.Cholesky.plan_factor p_seq).Csc.values in
  let vp = (Sympiler.Cholesky.plan_factor p_par).Csc.values in
  let same =
    Array.length vs = Array.length vp
    && begin
         let ok = ref true in
         for i = 0 to Array.length vs - 1 do
           if not (Int64.equal (Int64.bits_of_float vs.(i))
                     (Int64.bits_of_float vp.(i)))
           then ok := false
         done;
         !ok
       end
  in
  check "pool factor bitwise-identical to sequential" same;

  if !failures > 0 then begin
    Printf.printf "large-smoke: %d failure(s)\n%!" !failures;
    exit 1
  end;
  Printf.printf "large-smoke: all checks passed\n%!"
