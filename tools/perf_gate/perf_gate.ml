(* Perf-regression gate over the committed BENCH_*.json baselines.

     perf_gate check BASELINE CURRENT [--tolerance T]
     perf_gate inflate FILE FACTOR OUT

   `check` walks the two documents in parallel and fails (exit 1) on:
     - a schema_version mismatch (baselines from another schema are not
       comparable; regenerate instead of comparing);
     - any boolean that was true in the baseline and is false now —
       verdicts and per-gate flags must never flip off;
     - any latency field (name ending in `_seconds` or `_ns`, or named
       `overhead_fraction`) whose current value exceeds the baseline by
       more than the relative tolerance T (default 0.25, i.e. +25%);
     - any allocation field (name containing `words`) that grew beyond
       the baseline plus a small absolute slack;
     - a baseline field or list element missing from the current file.
   Fields that are faster/smaller than the baseline, provenance strings
   (git_commit, generated_utc), and non-perf data never fail the gate.

   `inflate` multiplies every latency field by FACTOR and writes the
   result — a synthetic regression for exercising the gate itself (the
   ci.sh smoke checks that `check base inflated` exits non-zero). *)

module Json = Sympiler_prof.Prof.Json

let tolerance = ref 0.25
let failures : string list ref = ref []
let fail path msg = failures := Printf.sprintf "%s: %s" path msg :: !failures

let is_latency_field name =
  let ends_with suf =
    let nl = String.length name and sl = String.length suf in
    nl >= sl && String.sub name (nl - sl) sl = suf
  in
  ends_with "_seconds" || ends_with "_ns" || name = "overhead_fraction"

let contains_words name =
  let n = String.length name in
  let rec go i =
    i + 5 <= n && (String.sub name i 5 = "words" || go (i + 1))
  in
  go 0

let number = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

(* Allocation counts are exact in principle but a few words of noise show
   up when a measurement loop straddles GC bookkeeping; allow that much. *)
let words_slack = 16.0

let rec check path (base : Json.t) (cur : Json.t) =
  match (base, cur) with
  | Json.Obj bs, Json.Obj cs ->
      List.iter
        (fun (k, bv) ->
          let p = if path = "" then k else path ^ "." ^ k in
          match List.assoc_opt k cs with
          | None -> fail p "present in baseline, missing in current"
          | Some cv -> check_field p k bv cv)
        bs
  | Json.List bs, Json.List cs ->
      if List.length bs <> List.length cs then
        fail path
          (Printf.sprintf "list length changed: %d -> %d" (List.length bs)
             (List.length cs))
      else
        List.iteri
          (fun i (bv, cv) -> check (Printf.sprintf "%s[%d]" path i) bv cv)
          (List.combine bs cs)
  | Json.Bool true, Json.Bool false -> fail path "verdict flipped true -> false"
  | _ -> ()

and check_field path key bv cv =
  match (bv, cv) with
  | Json.Int b, Json.Int c when key = "schema_version" ->
      if b <> c then
        fail path (Printf.sprintf "schema_version mismatch: %d vs %d" b c)
  | _ when is_latency_field key -> (
      match (number bv, number cv) with
      | Some b, Some c ->
          if b > 0.0 && c > b *. (1.0 +. !tolerance) then
            fail path
              (Printf.sprintf "regressed %.3e -> %.3e (+%.1f%%, tolerance %.0f%%)"
                 b c
                 ((c /. b -. 1.0) *. 100.0)
                 (!tolerance *. 100.0))
      | _ -> check path bv cv)
  | _ when contains_words key -> (
      match (number bv, number cv) with
      | Some b, Some c ->
          if c > b +. words_slack then
            fail path (Printf.sprintf "allocation grew %.0f -> %.0f words" b c)
      | _ -> check path bv cv)
  | _ -> check path bv cv

let read_doc file =
  let s = In_channel.with_open_text file In_channel.input_all in
  match Json.of_string s with
  | Ok d -> d
  | Error e ->
      Printf.eprintf "perf_gate: %s: parse error: %s\n" file e;
      exit 2

let rec inflate factor = function
  | Json.Obj fields ->
      Json.Obj
        (List.map
           (fun (k, v) ->
             match (is_latency_field k, number v) with
             | true, Some f -> (k, Json.Float (f *. factor))
             | _ -> (k, inflate factor v))
           fields)
  | Json.List l -> Json.List (List.map (inflate factor) l)
  | other -> other

let usage () =
  prerr_endline
    "usage: perf_gate check BASELINE CURRENT [--tolerance T]\n\
    \       perf_gate inflate FILE FACTOR OUT";
  exit 2

let () =
  let argv = Sys.argv in
  if Array.length argv < 2 then usage ();
  match argv.(1) with
  | "check" ->
      if Array.length argv < 4 then usage ();
      let rest = Array.sub argv 4 (Array.length argv - 4) in
      Array.iteri
        (fun i a ->
          if a = "--tolerance" then
            if i + 1 < Array.length rest then
              tolerance := float_of_string rest.(i + 1)
            else usage ())
        rest;
      let base = read_doc argv.(2) and cur = read_doc argv.(3) in
      check "" base cur;
      if !failures = [] then
        Printf.printf "perf_gate: %s vs %s: ok (tolerance %.0f%%)\n" argv.(2)
          argv.(3)
          (!tolerance *. 100.0)
      else begin
        Printf.eprintf "perf_gate: %s vs %s: %d regression(s):\n" argv.(2)
          argv.(3)
          (List.length !failures);
        List.iter (Printf.eprintf "  %s\n") (List.rev !failures);
        exit 1
      end
  | "inflate" ->
      if Array.length argv < 5 then usage ();
      let doc = read_doc argv.(2) in
      let factor = float_of_string argv.(3) in
      Out_channel.with_open_text argv.(4) (fun oc ->
          Out_channel.output_string oc (Json.to_string (inflate factor doc));
          Out_channel.output_char oc '\n')
  | _ -> usage ()
