(* Serving-grade metrics registry. See metrics.mli for the layer contract
   (prof = phase timers, trace = spans, metrics = labeled aggregates and
   latency distributions).

   Concurrency design: every hot-path instrument is an array of
   [int Atomic.t] cells indexed by [Domain.self () land shard_mask], so
   concurrent domains land on distinct cells in the common case (the pool
   spawns domains with consecutive ids) and on a correct-but-contended
   fetch-and-add in the worst case. Reads sum the cells; there is no
   read-side synchronization beyond the atomics themselves, so a snapshot
   taken while writers run is a consistent-per-cell, slightly-stale view —
   exactly what a scrape wants. Cells are interleaved with dead padding
   blocks at allocation time so neighbouring atomics start on different
   cache lines (best effort: the GC may compact them later, but cells are
   allocated once at registration and live in the major heap together).

   Histograms are log-linear (HDR-style) over integer nanoseconds: values
   below 16 ns get exact single-value buckets, then every power of two is
   split into 16 sub-buckets, giving <= 6.25% relative bucket width over
   the whole range and saturating near 4.9 hours. Count and sum are exact
   (integer fetch-and-add); max is exact (CAS loop); percentiles are exact
   to one bucket. *)

module Json = Sympiler_prof.Prof.Json

let on = ref false
let enabled () = !on
let enable () = on := true
let disable () = on := false

let () =
  match Sys.getenv_opt "SYMPILER_METRICS" with
  | Some ("1" | "true" | "on") -> on := true
  | Some _ | None -> ()

(* ------------------------------ Sharding ------------------------------ *)

let n_shards = 8
let shard_mask = n_shards - 1
let shard_index () = (Domain.self () :> int) land shard_mask

(* Allocate [k] atomics separated by dead blocks so consecutive cells do
   not share a 64-byte cache line (an Atomic.t is a 2-word block; the
   56-byte spacer pushes the next one past the line). *)
let padded_atomics k =
  Array.init k (fun _ ->
      let a = Atomic.make 0 in
      ignore (Sys.opaque_identity (Bytes.make 56 '\000'));
      a)

let sum_cells (cells : int Atomic.t array) =
  let s = ref 0 in
  for i = 0 to Array.length cells - 1 do
    s := !s + Atomic.get cells.(i)
  done;
  !s

let zero_cells (cells : int Atomic.t array) =
  for i = 0 to Array.length cells - 1 do
    Atomic.set cells.(i) 0
  done

(* -------------------------- Histogram geometry ------------------------- *)

(* Buckets: index v for v in [0, 16); for larger v with top bit at
   position e (so 2^e <= v < 2^(e+1), e >= 4), index
   (e - 3) * 16 + ((v lsr (e - 4)) land 15) — the four bits under the
   leading one select the sub-bucket. Exponents up to 43 are covered;
   larger values saturate into the last bucket. *)

let n_buckets = 656 (* (43 - 3) * 16 + 16 *)

let rec log2_floor v acc = if v <= 1 then acc else log2_floor (v lsr 1) (acc + 1)

let bucket_of_ns v =
  if v < 16 then if v < 0 then 0 else v
  else begin
    let e = log2_floor v 0 in
    let b = ((e - 3) lsl 4) + ((v lsr (e - 4)) land 15) in
    if b >= n_buckets then n_buckets - 1 else b
  end

let bucket_upper_ns b =
  if b < 16 then (if b < 0 then 0 else b)
  else
    let b = if b >= n_buckets then n_buckets - 1 else b in
    let e = (b lsr 4) + 3 and m = b land 15 in
    ((16 + m + 1) lsl (e - 4)) - 1

(* ------------------------------- Metrics ------------------------------- *)

type meta = {
  m_name : string;
  m_help : string;
  m_labels : (string * string) list; (* sorted by label name *)
}

type counter = { c_meta : meta; c_cells : int Atomic.t array }
type gauge = { g_meta : meta; g_value : float Atomic.t }

(* One histogram shard: fine buckets plus exact sum (integer ns) and max.
   The bucket arrays are not padded — two domains contend on a line only
   when observing near-identical latencies simultaneously, and correctness
   never depends on it. *)
type hshard = {
  hs_buckets : int Atomic.t array;
  hs_sum_ns : int Atomic.t;
  hs_max_ns : int Atomic.t;
}

type histogram = { h_meta : meta; h_shards : hshard array }

type metric =
  | MCounter of counter
  | MGauge of gauge
  | MHistogram of histogram

let meta_of = function
  | MCounter c -> c.c_meta
  | MGauge g -> g.g_meta
  | MHistogram h -> h.h_meta

(* ------------------------------ Registry ------------------------------ *)

let registry : (string, metric) Hashtbl.t = Hashtbl.create 32
let registry_lock = Mutex.create ()

let with_registry f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let valid_name_char first c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || c = '_' || c = ':'
  || ((not first) && c >= '0' && c <= '9')

let valid_metric_name s =
  String.length s > 0
  && valid_name_char true s.[0]
  &&
  let ok = ref true in
  String.iteri (fun i c -> if i > 0 && not (valid_name_char false c) then ok := false) s;
  !ok

let valid_label_name s =
  String.length s > 0
  && (not (String.contains s ':'))
  && valid_name_char true s.[0]
  &&
  let ok = ref true in
  String.iteri
    (fun i c -> if i > 0 && not (valid_name_char false c || (c >= '0' && c <= '9')) then ok := false)
    s;
  !ok

let normalize_labels name labels =
  List.iter
    (fun (k, _) ->
      if not (valid_label_name k) then
        invalid_arg (Printf.sprintf "Metrics.%s: invalid label name %S" name k))
    labels;
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) labels in
  let rec dup = function
    | (a, _) :: ((b, _) :: _ as rest) -> if a = b then Some a else dup rest
    | _ -> None
  in
  (match dup sorted with
  | Some k ->
      invalid_arg (Printf.sprintf "Metrics.%s: duplicate label %S" name k)
  | None -> ());
  sorted

let identity name labels =
  let buf = Buffer.create 64 in
  Buffer.add_string buf name;
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf '\x00';
      Buffer.add_string buf k;
      Buffer.add_char buf '\x01';
      Buffer.add_string buf v)
    labels;
  Buffer.contents buf

let register ~kind_name ~make ~cast name help labels =
  if not (valid_metric_name name) then
    invalid_arg (Printf.sprintf "Metrics.%s: invalid metric name %S" kind_name name);
  let labels = normalize_labels name labels in
  let key = identity name labels in
  with_registry (fun () ->
      match Hashtbl.find_opt registry key with
      | Some m -> cast m
      | None ->
          let meta = { m_name = name; m_help = help; m_labels = labels } in
          let m = make meta in
          Hashtbl.add registry key m;
          cast m)

let counter ?(help = "") ?(labels = []) name =
  register ~kind_name:"counter"
    ~make:(fun meta -> MCounter { c_meta = meta; c_cells = padded_atomics n_shards })
    ~cast:(function
      | MCounter c -> c
      | m ->
          invalid_arg
            (Printf.sprintf "Metrics.counter: %S already registered as a %s"
               name
               (match m with MGauge _ -> "gauge" | _ -> "histogram")))
    name help labels

let gauge ?(help = "") ?(labels = []) name =
  register ~kind_name:"gauge"
    ~make:(fun meta -> MGauge { g_meta = meta; g_value = Atomic.make 0.0 })
    ~cast:(function
      | MGauge g -> g
      | m ->
          invalid_arg
            (Printf.sprintf "Metrics.gauge: %S already registered as a %s" name
               (match m with MCounter _ -> "counter" | _ -> "histogram")))
    name help labels

let make_hshard () =
  {
    hs_buckets = padded_atomics n_buckets;
    hs_sum_ns = Atomic.make 0;
    hs_max_ns = Atomic.make 0;
  }

let histogram ?(help = "") ?(labels = []) name =
  register ~kind_name:"histogram"
    ~make:(fun meta ->
      MHistogram { h_meta = meta; h_shards = Array.init n_shards (fun _ -> make_hshard ()) })
    ~cast:(function
      | MHistogram h -> h
      | m ->
          invalid_arg
            (Printf.sprintf "Metrics.histogram: %S already registered as a %s"
               name
               (match m with MCounter _ -> "counter" | _ -> "gauge")))
    name help labels

(* ----------------------------- Hot paths ------------------------------ *)

let inc c n =
  if !on then ignore (Atomic.fetch_and_add c.c_cells.(shard_index ()) n)

let set g v = if !on then Atomic.set g.g_value v

let rec store_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then store_max a v

let observe_ns h v =
  if !on && v >= 0 then begin
    let s = h.h_shards.(shard_index ()) in
    ignore (Atomic.fetch_and_add s.hs_buckets.(bucket_of_ns v) 1);
    ignore (Atomic.fetch_and_add s.hs_sum_ns v);
    store_max s.hs_max_ns v
  end

let observe h seconds =
  if !on && seconds >= 0.0 && seconds < 1e18 then
    observe_ns h (int_of_float ((seconds *. 1e9) +. 0.5))

(* ------------------------------- Reading ------------------------------- *)

let counter_value c = sum_cells c.c_cells
let gauge_value g = Atomic.get g.g_value

(* Aggregate a histogram's shards into one fine bucket array (+ sum/max). *)
let h_aggregate h =
  let buckets = Array.make n_buckets 0 in
  let sum_ns = ref 0 and max_ns = ref 0 in
  Array.iter
    (fun s ->
      for b = 0 to n_buckets - 1 do
        buckets.(b) <- buckets.(b) + Atomic.get s.hs_buckets.(b)
      done;
      sum_ns := !sum_ns + Atomic.get s.hs_sum_ns;
      let m = Atomic.get s.hs_max_ns in
      if m > !max_ns then max_ns := m)
    h.h_shards;
  (buckets, !sum_ns, !max_ns)

let percentile_of_buckets buckets count q =
  if count = 0 then 0.0
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int count)) in
      if r < 1 then 1 else if r > count then count else r
    in
    let b = ref 0 and cum = ref 0 in
    (try
       for i = 0 to n_buckets - 1 do
         cum := !cum + buckets.(i);
         if !cum >= rank then begin
           b := i;
           raise Exit
         end
       done
     with Exit -> ());
    float_of_int (bucket_upper_ns !b) /. 1e9
  end

type histogram_snapshot = {
  count : int;
  sum : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

let snapshot h =
  let buckets, sum_ns, max_ns = h_aggregate h in
  let count = Array.fold_left ( + ) 0 buckets in
  {
    count;
    sum = float_of_int sum_ns /. 1e9;
    p50 = percentile_of_buckets buckets count 0.50;
    p90 = percentile_of_buckets buckets count 0.90;
    p99 = percentile_of_buckets buckets count 0.99;
    max = float_of_int max_ns /. 1e9;
  }

let percentile h q =
  let buckets, _, _ = h_aggregate h in
  percentile_of_buckets buckets (Array.fold_left ( + ) 0 buckets) q

let reset () =
  with_registry (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | MCounter c -> zero_cells c.c_cells
          | MGauge g -> Atomic.set g.g_value 0.0
          | MHistogram h ->
              Array.iter
                (fun s ->
                  zero_cells s.hs_buckets;
                  Atomic.set s.hs_sum_ns 0;
                  Atomic.set s.hs_max_ns 0)
                h.h_shards)
        registry)

(* --------------------------- Process gauges ---------------------------- *)

(* VmHWM from /proc/self/status, in kB; None off-Linux. *)
let vm_hwm_kb () =
  try
    In_channel.with_open_text "/proc/self/status" (fun ic ->
        let rec scan () =
          match In_channel.input_line ic with
          | None -> None
          | Some line ->
              if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
                String.sub line 6 (String.length line - 6)
                |> String.trim
                |> String.split_on_char ' '
                |> (function kb :: _ -> int_of_string_opt kb | [] -> None)
              else scan ()
        in
        scan ())
  with Sys_error _ -> None

let sample_process () =
  let was = !on in
  on := true (* process gauges are part of every snapshot, enabled or not *);
  let g = Gc.quick_stat () in
  set (gauge "process_gc_minor_words" ~help:"Minor heap words allocated") g.Gc.minor_words;
  set (gauge "process_gc_major_words" ~help:"Major heap words allocated") g.Gc.major_words;
  set
    (gauge "process_gc_compactions" ~help:"Heap compactions run")
    (float_of_int g.Gc.compactions);
  (match vm_hwm_kb () with
  | Some kb -> set (gauge "process_vm_hwm_kb" ~help:"Peak resident set size (VmHWM)") (float_of_int kb)
  | None -> ());
  on := was

(* ------------------------------ Exporters ------------------------------ *)

let sorted_metrics () =
  let all = with_registry (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) registry []) in
  List.sort
    (fun a b ->
      let ma = meta_of a and mb = meta_of b in
      match compare ma.m_name mb.m_name with
      | 0 -> compare ma.m_labels mb.m_labels
      | c -> c)
    all

let escape_label_value s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Render a label set (plus an optional extra pair, used for [le]). *)
let render_labels ?extra labels =
  let pairs =
    labels @ (match extra with None -> [] | Some kv -> [ kv ])
  in
  if pairs = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) pairs)
    ^ "}"

let fmt_float f = Printf.sprintf "%.9g" f

(* The coarse exposition ladder (seconds): cumulative counts are computed
   from the fine buckets — an observation counts toward boundary B once
   its whole (<= 6.25%-wide) bucket is below B, so boundary counts are
   conservative by at most one bucket width; [+Inf] is exact. *)
let ladder_seconds =
  [| 1e-7; 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.0; 10.0 |]

let to_openmetrics () =
  sample_process ();
  let buf = Buffer.create 4096 in
  let seen_type : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let emit_meta name kind help =
    if not (Hashtbl.mem seen_type name) then begin
      Hashtbl.add seen_type name ();
      if help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun m ->
      let meta = meta_of m in
      match m with
      | MCounter c ->
          emit_meta meta.m_name "counter" meta.m_help;
          Buffer.add_string buf
            (Printf.sprintf "%s_total%s %d\n" meta.m_name
               (render_labels meta.m_labels) (counter_value c))
      | MGauge g ->
          emit_meta meta.m_name "gauge" meta.m_help;
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" meta.m_name (render_labels meta.m_labels)
               (fmt_float (gauge_value g)))
      | MHistogram h ->
          emit_meta meta.m_name "histogram" meta.m_help;
          let buckets, sum_ns, _ = h_aggregate h in
          let count = Array.fold_left ( + ) 0 buckets in
          let cum = ref 0 and fine = ref 0 in
          Array.iter
            (fun boundary ->
              let bound_ns = int_of_float (boundary *. 1e9) in
              while
                !fine < n_buckets && bucket_upper_ns !fine <= bound_ns
              do
                cum := !cum + buckets.(!fine);
                incr fine
              done;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" meta.m_name
                   (render_labels meta.m_labels ~extra:("le", fmt_float boundary))
                   !cum))
            ladder_seconds;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" meta.m_name
               (render_labels meta.m_labels ~extra:("le", "+Inf"))
               count);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" meta.m_name
               (render_labels meta.m_labels)
               (fmt_float (float_of_int sum_ns /. 1e9)));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" meta.m_name
               (render_labels meta.m_labels) count))
    (sorted_metrics ());
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let labels_json labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let to_json () =
  sample_process ();
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (fun m ->
      let meta = meta_of m in
      let base = [ ("name", Json.Str meta.m_name); ("labels", labels_json meta.m_labels) ] in
      match m with
      | MCounter c ->
          counters := Json.Obj (base @ [ ("value", Json.Int (counter_value c)) ]) :: !counters
      | MGauge g ->
          gauges := Json.Obj (base @ [ ("value", Json.Float (gauge_value g)) ]) :: !gauges
      | MHistogram h ->
          let s = snapshot h in
          histograms :=
            Json.Obj
              (base
              @ [
                  ("count", Json.Int s.count);
                  ("sum", Json.Float s.sum);
                  ("p50", Json.Float s.p50);
                  ("p90", Json.Float s.p90);
                  ("p99", Json.Float s.p99);
                  ("max", Json.Float s.max);
                ])
            :: !histograms)
    (sorted_metrics ());
  Json.Obj
    [
      ("counters", Json.List (List.rev !counters));
      ("gauges", Json.List (List.rev !gauges));
      ("histograms", Json.List (List.rev !histograms));
    ]

let to_table () =
  sample_process ();
  let rows =
    List.map
      (fun m ->
        let meta = meta_of m in
        let name = meta.m_name ^ render_labels meta.m_labels in
        match m with
        | MCounter c -> (name, string_of_int (counter_value c))
        | MGauge g -> (name, fmt_float (gauge_value g))
        | MHistogram h ->
            let s = snapshot h in
            ( name,
              Printf.sprintf "count=%d p50=%s p99=%s max=%s" s.count
                (fmt_float s.p50) (fmt_float s.p99) (fmt_float s.max) ))
      (sorted_metrics ())
  in
  let w = List.fold_left (fun acc (n, _) -> max acc (String.length n)) (String.length "metric") rows in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "%-*s  %s\n" w "metric" "value");
  List.iter (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "%-*s  %s\n" w n v)) rows;
  Buffer.contents buf

(* ------------------------- OpenMetrics linting ------------------------- *)

(* Structural checker for the exposition format: enough to catch broken
   names, unescaped label values, non-cumulative buckets, and a missing
   [# EOF] terminator — the failure modes that break real scrapers. *)

type lint_state = {
  mutable types : (string * string) list; (* metric name -> TYPE *)
  mutable hist_buckets : (string, (float * int) list) Hashtbl.t;
      (* (name + labels-sans-le) -> (le, cumulative count) in file order *)
  mutable hist_counts : (string, int) Hashtbl.t;
  mutable saw_eof : bool;
}

let lint_fail fmt = Printf.ksprintf (fun s -> Error s) fmt

let parse_label_block (line : string) (i : int) :
    ((string * string) list * int, string) result =
  (* [i] points at '{'. Returns labels and the index after '}'. *)
  let n = String.length line in
  let labels = ref [] in
  let i = ref (i + 1) in
  let ok = ref (Ok ()) in
  let finished = ref false in
  while (not !finished) && !ok = Ok () do
    if !i >= n then ok := lint_fail "unterminated label block: %s" line
    else if line.[!i] = '}' then begin
      incr i;
      finished := true
    end
    else begin
      (* label name *)
      let start = !i in
      while !i < n && line.[!i] <> '=' do
        incr i
      done;
      if !i >= n then ok := lint_fail "label without '=': %s" line
      else begin
        let lname = String.sub line start (!i - start) in
        if not (valid_label_name lname) then
          ok := lint_fail "invalid label name %S: %s" lname line
        else begin
          incr i (* '=' *);
          if !i >= n || line.[!i] <> '"' then
            ok := lint_fail "label value not quoted: %s" line
          else begin
            incr i;
            let buf = Buffer.create 16 in
            let closed = ref false in
            while (not !closed) && !ok = Ok () do
              if !i >= n then ok := lint_fail "unterminated label value: %s" line
              else
                match line.[!i] with
                | '"' ->
                    closed := true;
                    incr i
                | '\\' ->
                    if !i + 1 >= n then
                      ok := lint_fail "dangling escape: %s" line
                    else begin
                      (match line.[!i + 1] with
                      | '\\' | '"' | 'n' -> ()
                      | c -> ok := lint_fail "invalid escape '\\%c': %s" c line);
                      Buffer.add_char buf line.[!i + 1];
                      i := !i + 2
                    end
                | '\n' -> ok := lint_fail "raw newline in label value: %s" line
                | c ->
                    Buffer.add_char buf c;
                    incr i
            done;
            if !ok = Ok () then begin
              labels := (lname, Buffer.contents buf) :: !labels;
              if !i < n && line.[!i] = ',' then incr i
            end
          end
        end
      end
    end
  done;
  match !ok with Ok () -> Ok (List.rev !labels, !i) | Error e -> Error e

let parse_number s =
  let s = String.trim s in
  if s = "+Inf" then Some infinity
  else if s = "-Inf" then Some neg_infinity
  else if s = "NaN" then Some nan
  else float_of_string_opt s

let strip_series_suffix name =
  let strip suffix =
    let ls = String.length suffix and ln = String.length name in
    if ln > ls && String.sub name (ln - ls) ls = suffix then
      Some (String.sub name 0 (ln - ls))
    else None
  in
  match strip "_bucket" with
  | Some base -> (base, `Bucket)
  | None -> (
      match strip "_count" with
      | Some base -> (base, `Count)
      | None -> (
          match strip "_sum" with
          | Some base -> (base, `Sum)
          | None -> (
              match strip "_total" with
              | Some base -> (base, `Total)
              | None -> (name, `Plain))))

let lint_sample st (line : string) : (unit, string) result =
  let n = String.length line in
  let i = ref 0 in
  while !i < n && valid_name_char (!i = 0) line.[!i] do
    incr i
  done;
  if !i = 0 then lint_fail "sample line does not start with a metric name: %s" line
  else begin
    let name = String.sub line 0 !i in
    let labels_result =
      if !i < n && line.[!i] = '{' then parse_label_block line !i
      else Ok ([], !i)
    in
    match labels_result with
    | Error e -> Error e
    | Ok (labels, j) ->
        if j >= n || line.[j] <> ' ' then
          lint_fail "missing space before value: %s" line
        else begin
          let value = String.sub line (j + 1) (n - j - 1) in
          match parse_number value with
          | None -> lint_fail "unparseable sample value %S: %s" value line
          | Some v -> (
              let base, series = strip_series_suffix name in
              let declared k =
                match List.assoc_opt k st.types with
                | Some ty -> Some ty
                | None -> None
              in
              match series with
              | `Bucket when declared base = Some "histogram" -> (
                  match List.assoc_opt "le" labels with
                  | None -> lint_fail "_bucket sample without le: %s" line
                  | Some le_s -> (
                      match parse_number le_s with
                      | None -> lint_fail "unparseable le %S: %s" le_s line
                      | Some le ->
                          let key =
                            identity base
                              (List.filter (fun (k, _) -> k <> "le") labels)
                          in
                          let prev =
                            Option.value ~default:[]
                              (Hashtbl.find_opt st.hist_buckets key)
                          in
                          Hashtbl.replace st.hist_buckets key
                            (prev @ [ (le, int_of_float v) ]);
                          Ok ()))
              | `Count when declared base = Some "histogram" ->
                  let key = identity base labels in
                  Hashtbl.replace st.hist_counts key (int_of_float v);
                  Ok ()
              | `Total ->
                  if declared base = Some "counter" && v < 0.0 then
                    lint_fail "negative counter: %s" line
                  else Ok ()
              | _ -> Ok ())
        end
  end

let lint_openmetrics (text : string) : (unit, string) result =
  let st =
    {
      types = [];
      hist_buckets = Hashtbl.create 16;
      hist_counts = Hashtbl.create 16;
      saw_eof = false;
    }
  in
  let lines = String.split_on_char '\n' text in
  let rec go = function
    | [] -> Ok ()
    | line :: rest ->
        if st.saw_eof && line <> "" then lint_fail "content after # EOF: %s" line
        else if line = "" then go rest
        else if line = "# EOF" then begin
          st.saw_eof <- true;
          go rest
        end
        else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
          match String.split_on_char ' ' line with
          | [ _; _; name; ty ] ->
              if not (valid_metric_name name) then
                lint_fail "invalid metric name in TYPE: %s" line
              else if not (List.mem ty [ "counter"; "gauge"; "histogram"; "summary"; "unknown" ])
              then lint_fail "unknown TYPE %S: %s" ty line
              else begin
                st.types <- (name, ty) :: st.types;
                go rest
              end
          | _ -> lint_fail "malformed TYPE line: %s" line
        end
        else if String.length line >= 2 && String.sub line 0 2 = "# " then go rest
        else begin
          match lint_sample st line with Ok () -> go rest | Error e -> Error e
        end
  in
  match go lines with
  | Error e -> Error e
  | Ok () ->
      if not st.saw_eof then lint_fail "missing # EOF terminator"
      else
        (* Bucket series: le ascending, counts non-decreasing, +Inf last
           and equal to _count. *)
        Hashtbl.fold
          (fun key series acc ->
            match acc with
            | Error _ -> acc
            | Ok () -> (
                let rec check prev_le prev_c = function
                  | [] -> Ok ()
                  | (le, c) :: rest ->
                      if le <= prev_le then lint_fail "le not increasing (%s)" key
                      else if c < prev_c then
                        lint_fail "bucket counts not cumulative (%s)" key
                      else check le c rest
                in
                match check neg_infinity 0 series with
                | Error e -> Error e
                | Ok () -> (
                    match List.rev series with
                    | (le, c) :: _ ->
                        if le <> infinity then
                          lint_fail "last bucket is not le=\"+Inf\" (%s)" key
                        else (
                          match Hashtbl.find_opt st.hist_counts key with
                          | Some total when total <> c ->
                              lint_fail "+Inf bucket %d <> _count %d (%s)" c total key
                          | _ -> Ok ())
                    | [] -> Ok ())))
          st.hist_buckets (Ok ())
