(** Serving-grade metrics: a domain-safe labeled registry of counters,
    gauges, and latency histograms, with OpenMetrics / JSON / table
    exporters.

    Division of labor across the three observability layers:
    - {b prof} answers "where did this process spend its time" — reentrant
      phase timers and kernel work counters, one global snapshot.
    - {b trace} answers "what happened, in order" — per-call spans in a
      ring buffer, exported to Chrome/folded formats.
    - {b metrics} (this module) answers "how is the system behaving over
      many calls" — monotonic aggregates and latency {e distributions}
      (p50/p99), labeled by dimension, cheap enough to leave on in a
      serving process and exposable in the standard Prometheus /
      OpenMetrics text format.

    Contracts, matching prof/trace:
    - Disabled (the default) costs a single boolean load per recording
      site and allocates nothing.
    - Enabled hot paths ({!inc}, {!observe}) are one atomic fetch-and-add
      on a per-domain sharded cell plus integer arithmetic — no
      allocation, no locks. Cells are aggregated at read time.
    - Registration ({!counter} / {!gauge} / {!histogram}) takes a lock and
      allocates; do it once at plan/startup time and keep the handle.

    [SYMPILER_METRICS=1] in the environment enables collection at program
    start. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Zero every registered metric (registrations and handles survive). *)

(** {1 Registration}

    A metric is identified by its name plus its sorted label set;
    registering the same identity twice returns the same handle.
    Names must match [[a-zA-Z_:][a-zA-Z0-9_:]*]; label names must match
    [[a-zA-Z_][a-zA-Z0-9_]*]. Label values are arbitrary UTF-8 (escaped
    on export). Raises [Invalid_argument] on a malformed name or when the
    same identity is re-registered as a different metric kind. *)

type counter
type gauge
type histogram

val counter :
  ?help:string -> ?labels:(string * string) list -> string -> counter

val gauge : ?help:string -> ?labels:(string * string) list -> string -> gauge

val histogram :
  ?help:string -> ?labels:(string * string) list -> string -> histogram
(** Histogram values are {e seconds}; internally they are recorded as
    integer nanoseconds into log-linear (HDR-style) buckets: exact below
    16 ns, then 16 sub-buckets per power of two (≤ 6.25% relative width),
    saturating at ~2.3 h. Count, sum, and max are exact; percentiles are
    exact to one bucket. *)

(** {1 Recording (hot paths)} *)

val inc : counter -> int -> unit
(** Add [n] (>= 0) to a counter: one boolean load when disabled, one
    atomic fetch-and-add when enabled. Never allocates. *)

val set : gauge -> float -> unit
(** Set a gauge to the given value (last write wins across domains).
    Gauges are sample-time instruments, not hot-path ones: setting one
    may allocate a boxed float. *)

val observe : histogram -> float -> unit
(** Record a latency in seconds: bucket + sum + max updates, all atomic
    fetch-and-add / compare-and-set on integers. Never allocates.
    Negative and non-finite values are dropped. *)

val observe_ns : histogram -> int -> unit
(** Same, with the value already in integer nanoseconds. *)

(** {1 Reading} *)

val counter_value : counter -> int
(** Sum over the per-domain cells. *)

val gauge_value : gauge -> float

type histogram_snapshot = {
  count : int;
  sum : float;  (** seconds, exact (integer-ns accumulation) *)
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;  (** seconds, exact *)
}

val snapshot : histogram -> histogram_snapshot

val percentile : histogram -> float -> float
(** [percentile h q] for [q] in [0,1]: the upper bound (in seconds) of
    the bucket holding the nearest-rank [q]-quantile; [0.] when empty. *)

(** {1 Bucket geometry} (exposed for tests and the bench oracle) *)

val bucket_of_ns : int -> int
(** Bucket index of an integer-nanosecond value (saturating). *)

val bucket_upper_ns : int -> int
(** Inclusive upper bound of bucket [i], in nanoseconds. *)

val n_buckets : int

(** {1 Process gauges} *)

val sample_process : unit -> unit
(** Refresh the built-in process gauges: [process_gc_minor_words],
    [process_gc_major_words], [process_gc_compactions], and
    [process_vm_hwm_kb] (from /proc/self/status; absent on platforms
    without procfs). Called automatically by the exporters below. *)

(** {1 Exporters}

    All exporters aggregate the sharded cells at call time; they allocate
    freely and take the registry lock, so they belong on scrape/report
    paths, not hot paths. Metrics are emitted sorted by name then label
    set, so output is deterministic. *)

val to_openmetrics : unit -> string
(** OpenMetrics 1.0 text exposition: [# TYPE]/[# HELP] metadata, counters
    as [name_total], histograms as cumulative [name_bucket{le="..."}]
    series over a decade ladder plus [+Inf], [name_sum], [name_count];
    terminated by [# EOF]. Label values are escaped per the spec. *)

val to_json : unit -> Sympiler_prof.Prof.Json.t
(** [{"counters":[...],"gauges":[...],"histograms":[...]}] with per-metric
    name, labels, and values (histograms include count/sum/percentiles). *)

val to_table : unit -> string
(** Aligned human-readable table: one row per counter/gauge, and
    count/p50/p99/max columns per histogram. *)

(** {1 OpenMetrics conformance lint} (used by tests, bench, and CI)

    A small structural checker for the exposition format produced above:
    metric-name and label-name grammar, label-value escaping, cumulative
    non-decreasing [_bucket] series ending in [le="+Inf"] that matches
    [_count], and a final [# EOF]. *)

val lint_openmetrics : string -> (unit, string) result
