(* Fill-reducing orderings. CHOLMOD applies AMD before factorizing; we
   provide reverse Cuthill-McKee (bandwidth reduction) and a plain greedy
   minimum-degree ordering as portable substitutes, usable through
   [Perm.symmetric_permute]. Input is the full symmetric matrix. *)

(* Adjacency lists (excluding self loops) of the symmetric pattern. *)
let adjacency (a : Csc.t) =
  let n = a.Csc.ncols in
  let adj = Array.make n [] in
  Csc.iter a (fun i j _ -> if i <> j then adj.(j) <- i :: adj.(j));
  Array.map (fun l -> List.sort_uniq compare l) adj

(* Reverse Cuthill-McKee. BFS from a pseudo-peripheral vertex of each
   connected component, visiting neighbors in increasing-degree order, then
   reverse. Returns a permutation in the [Perm] new->old convention. *)
let rcm (a : Csc.t) : Perm.t =
  Sympiler_prof.Prof.time "ordering" @@ fun () ->
  let n = a.Csc.ncols in
  let adj = adjacency a in
  let degree = Array.map List.length adj in
  let visited = Array.make n false in
  let order = Array.make n 0 in
  let pos = ref 0 in
  let bfs_levels root =
    (* Returns (farthest vertex, eccentricity) of the BFS tree from root. *)
    let dist = Array.make n (-1) in
    let q = Queue.create () in
    Queue.add root q;
    dist.(root) <- 0;
    let far = ref root in
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      if dist.(u) > dist.(!far) then far := u;
      List.iter
        (fun v ->
          if dist.(v) < 0 && not visited.(v) then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v q
          end)
        adj.(u)
    done;
    (!far, dist.(!far))
  in
  let pseudo_peripheral root =
    let rec go root ecc =
      let far, ecc' = bfs_levels root in
      if ecc' > ecc then go far ecc' else root
    in
    go root (-1)
  in
  for seed = 0 to n - 1 do
    if not visited.(seed) then begin
      let root = pseudo_peripheral seed in
      let q = Queue.create () in
      visited.(root) <- true;
      Queue.add root q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        order.(!pos) <- u;
        incr pos;
        let nbrs =
          List.filter (fun v -> not visited.(v)) adj.(u)
          |> List.sort (fun x y -> compare degree.(x) degree.(y))
        in
        List.iter
          (fun v ->
            visited.(v) <- true;
            Queue.add v q)
          nbrs
      done
    end
  done;
  assert (!pos = n);
  (* Reverse for RCM. *)
  let p = Array.make n 0 in
  for k = 0 to n - 1 do
    p.(k) <- order.(n - 1 - k)
  done;
  p

module Iset = Set.Make (Int)

(* Greedy minimum-degree ordering on the elimination graph. Quadratic-ish in
   the worst case (no quotient-graph machinery), intended for the moderate
   problem sizes in this repo; see DESIGN.md. *)
let min_degree (a : Csc.t) : Perm.t =
  Sympiler_prof.Prof.time "ordering" @@ fun () ->
  let n = a.Csc.ncols in
  let adj = Array.map Iset.of_list (adjacency a) in
  let eliminated = Array.make n false in
  let order = Array.make n 0 in
  for k = 0 to n - 1 do
    (* Pick the uneliminated vertex of minimum current degree. *)
    let best = ref (-1) and best_deg = ref max_int in
    for v = 0 to n - 1 do
      if not eliminated.(v) then begin
        let d = Iset.cardinal adj.(v) in
        if d < !best_deg then begin
          best := v;
          best_deg := d
        end
      end
    done;
    let v = !best in
    order.(k) <- v;
    eliminated.(v) <- true;
    (* Eliminate v: its neighbors become a clique. *)
    let nbrs = adj.(v) in
    Iset.iter
      (fun u ->
        adj.(u) <- Iset.remove v (Iset.union adj.(u) (Iset.remove u nbrs)))
      nbrs;
    adj.(v) <- Iset.empty
  done;
  order

(* Bandwidth of the symmetric pattern: used to test that RCM reduces it. *)
let bandwidth (a : Csc.t) =
  let b = ref 0 in
  Csc.iter a (fun i j _ -> b := max !b (abs (i - j)));
  !b
