(* Fill-reducing orderings. CHOLMOD applies AMD before factorizing; we
   provide reverse Cuthill-McKee (bandwidth reduction), a plain greedy
   minimum-degree ordering (the test oracle), and an approximate minimum
   degree (AMD) on a quotient graph — the default fill-reducing ordering
   of the compile pipeline. All are usable through
   [Perm.symmetric_permute]. Input is the full symmetric matrix. *)

let bump_counter () =
  let open Sympiler_prof in
  if Prof.enabled () then begin
    let c = Prof.cell () in
    c.Prof.orderings <- c.Prof.orderings + 1
  end

(* CSR adjacency (excluding self loops) of the symmetric pattern: vertex
   [v]'s neighbors are [ind.(ptr.(v) .. ptr.(v+1)-1)], ascending. Since the
   input is symmetric, each column IS a neighbor list, and CSC's
   strictly-increasing-rows invariant means no sorting or deduplication is
   needed — one counting pass and one fill pass, O(n + nnz) flat arrays
   instead of n boxed lists. *)
let adjacency_csr (a : Csc.t) : int array * int array =
  let n = a.Csc.ncols in
  let ptr = Array.make (n + 1) 0 in
  for j = 0 to n - 1 do
    let c = ref 0 in
    for p = a.Csc.colptr.(j) to a.Csc.colptr.(j + 1) - 1 do
      if a.Csc.rowind.(p) <> j then incr c
    done;
    ptr.(j) <- !c
  done;
  let total = Utils.cumsum ptr in
  let ind = Array.make (max 1 total) 0 in
  let q = ref 0 in
  for j = 0 to n - 1 do
    for p = a.Csc.colptr.(j) to a.Csc.colptr.(j + 1) - 1 do
      let i = a.Csc.rowind.(p) in
      if i <> j then begin
        ind.(!q) <- i;
        incr q
      end
    done
  done;
  (ptr, ind)

(* List view of the same adjacency (the greedy min-degree oracle below and
   a few tests want lists). *)
let adjacency (a : Csc.t) =
  let ptr, ind = adjacency_csr a in
  Array.init (Array.length ptr - 1) (fun v ->
      List.init (ptr.(v + 1) - ptr.(v)) (fun k -> ind.(ptr.(v) + k)))

(* Reverse Cuthill-McKee. BFS from a pseudo-peripheral vertex of each
   connected component, visiting neighbors in increasing-degree order, then
   reverse. The pseudo-peripheral search follows George & Liu: it starts
   from a minimum-degree vertex of the component and breaks farthest-level
   ties by minimum degree, both of which matter for bandwidth quality on
   multi-component problems. Returns a permutation in the [Perm] new->old
   convention. *)
let rcm (a : Csc.t) : Perm.t =
  Sympiler_prof.Prof.time "ordering" @@ fun () ->
  bump_counter ();
  let n = a.Csc.ncols in
  let aptr, aind = adjacency_csr a in
  let degree = Array.init n (fun v -> aptr.(v + 1) - aptr.(v)) in
  let visited = Array.make n false in
  let order = Array.make n 0 in
  let pos = ref 0 in
  (* Workspaces shared by every BFS sweep: a flat int-array queue and a
     distance array whose reset walks only the queue prefix (the vertices
     the sweep actually touched). A sweep therefore costs O(component +
     its edges), not O(n) — the pseudo-peripheral iteration runs several
     sweeps per component, which on a many-component matrix used to add up
     to quadratic allocation and clearing. *)
  let q = Array.make (max 1 n) 0 in
  let dist = Array.make n (-1) in
  let nbuf = Array.make (max 1 n) 0 in
  let bfs_levels root =
    (* Farthest vertex of the BFS tree from [root] and its eccentricity;
       among the vertices of the last level the one of minimum degree is
       returned (the George-Liu shrinking step). *)
    let head = ref 0 and tail = ref 0 in
    q.(!tail) <- root;
    incr tail;
    dist.(root) <- 0;
    let far = ref root in
    while !head < !tail do
      let u = q.(!head) in
      incr head;
      if
        dist.(u) > dist.(!far)
        || (dist.(u) = dist.(!far) && degree.(u) < degree.(!far))
      then far := u;
      for p = aptr.(u) to aptr.(u + 1) - 1 do
        let v = aind.(p) in
        if dist.(v) < 0 && not visited.(v) then begin
          dist.(v) <- dist.(u) + 1;
          q.(!tail) <- v;
          incr tail
        end
      done
    done;
    let ecc = dist.(!far) in
    for k = 0 to !tail - 1 do
      dist.(q.(k)) <- -1
    done;
    (!far, ecc)
  in
  let pseudo_peripheral root =
    let rec go root ecc =
      let far, ecc' = bfs_levels root in
      if ecc' > ecc then go far ecc' else root
    in
    go root (-1)
  in
  (* [seen] marks vertices already assigned to a component, so the
     component sweep below touches each vertex once overall. *)
  let seen = Array.make n false in
  for seed = 0 to n - 1 do
    if not visited.(seed) then begin
      (* Collect the component and find its minimum-degree vertex: the
         pseudo-peripheral iteration converges to a much better diameter
         endpoint from there than from an arbitrary seed. *)
      let best = ref seed in
      let head = ref 0 and tail = ref 0 in
      seen.(seed) <- true;
      q.(!tail) <- seed;
      incr tail;
      while !head < !tail do
        let u = q.(!head) in
        incr head;
        if
          degree.(u) < degree.(!best)
          || (degree.(u) = degree.(!best) && u < !best)
        then best := u;
        for p = aptr.(u) to aptr.(u + 1) - 1 do
          let v = aind.(p) in
          if not seen.(v) then begin
            seen.(v) <- true;
            q.(!tail) <- v;
            incr tail
          end
        done
      done;
      let root = pseudo_peripheral !best in
      let head = ref 0 and tail = ref 0 in
      visited.(root) <- true;
      q.(!tail) <- root;
      incr tail;
      while !head < !tail do
        let u = q.(!head) in
        incr head;
        order.(!pos) <- u;
        incr pos;
        (* Enqueue unvisited neighbors by increasing degree, ties by index.
           Sorting the packed keys [degree*n + v] reproduces exactly the
           stable by-degree list sort over an ascending neighbor list that
           this loop previously performed (keys are unique, so the
           unstable in-place sort gives the same order). *)
        let m = ref 0 in
        for p = aptr.(u) to aptr.(u + 1) - 1 do
          let v = aind.(p) in
          if not visited.(v) then begin
            nbuf.(!m) <- (degree.(v) * n) + v;
            incr m
          end
        done;
        Utils.sort_int_range nbuf 0 !m;
        for k = 0 to !m - 1 do
          let v = nbuf.(k) mod n in
          visited.(v) <- true;
          q.(!tail) <- v;
          incr tail
        done
      done
    end
  done;
  assert (!pos = n);
  (* Reverse for RCM. *)
  let p = Array.make n 0 in
  for k = 0 to n - 1 do
    p.(k) <- order.(n - 1 - k)
  done;
  p

module Iset = Set.Make (Int)

(* Greedy minimum-degree ordering on the elimination graph. Quadratic-ish in
   the worst case (no quotient-graph machinery); kept as the exact-degree
   test oracle that [amd] is measured against. *)
let min_degree (a : Csc.t) : Perm.t =
  Sympiler_prof.Prof.time "ordering" @@ fun () ->
  bump_counter ();
  let n = a.Csc.ncols in
  let adj = Array.map Iset.of_list (adjacency a) in
  let eliminated = Array.make n false in
  let order = Array.make n 0 in
  for k = 0 to n - 1 do
    (* Pick the uneliminated vertex of minimum current degree. *)
    let best = ref (-1) and best_deg = ref max_int in
    for v = 0 to n - 1 do
      if not eliminated.(v) then begin
        let d = Iset.cardinal adj.(v) in
        if d < !best_deg then begin
          best := v;
          best_deg := d
        end
      end
    done;
    let v = !best in
    order.(k) <- v;
    eliminated.(v) <- true;
    (* Eliminate v: its neighbors become a clique. *)
    let nbrs = adj.(v) in
    Iset.iter
      (fun u ->
        adj.(u) <- Iset.remove v (Iset.union adj.(u) (Iset.remove u nbrs)))
      nbrs;
    adj.(v) <- Iset.empty
  done;
  order

(* Approximate minimum degree (Amestoy, Davis & Duff) on a quotient graph.
   Instead of forming the elimination graph's cliques explicitly, an
   eliminated pivot [p] becomes an *element* whose member list L_p records
   the variables it couples; a variable's neighborhood is its remaining
   variable list A_v plus the union of its element lists. Degrees are the
   ADD external-degree approximation computed with the w(e) = |L_e \ L_p|
   trick, so one pivot's update costs O(sum of its members' list lengths)
   rather than a clique formation. Supervariables (indistinguishable
   variables detected by hashing) and mass elimination keep the graph
   shrinking; elements absorbed by a new pivot die immediately, as do
   elements whose members are all inside the new pivot's element
   (aggressive absorption). Node ids are shared between variables and
   elements — a node is exactly one of the two, per [state]. *)
let amd (a : Csc.t) : Perm.t =
  Sympiler_prof.Prof.time "ordering" @@ fun () ->
  bump_counter ();
  let n = a.Csc.ncols in
  if n = 0 then [||]
  else begin
    let avar =
      let aptr, aind = adjacency_csr a in
      Array.init n (fun v -> Array.sub aind aptr.(v) (aptr.(v + 1) - aptr.(v)))
    in
    let alen = Array.map Array.length avar in
    let elist = Array.make n [||] in
    let elen = Array.make n 0 in
    let emem = Array.make n [||] in
    let emlen = Array.make n 0 in
    let nv = Array.make n 1 in
    (* 0 = live (principal) variable, 1 = element, 2 = dead (absorbed
       supervariable, mass-eliminated variable, or absorbed element). *)
    let state = Array.make n 0 in
    let parent = Array.make n (-1) in
    let deg = Array.copy alen in
    (* Degree buckets: doubly-linked lists per degree with a rising
       minimum-degree pointer. *)
    let head = Array.make n (-1) in
    let dnext = Array.make n (-1) in
    let dprev = Array.make n (-1) in
    let inbucket = Array.make n (-1) in
    let mindeg = ref 0 in
    let bucket_insert v d =
      let d = if d >= n then n - 1 else if d < 0 then 0 else d in
      inbucket.(v) <- d;
      dprev.(v) <- -1;
      dnext.(v) <- head.(d);
      if head.(d) >= 0 then dprev.(head.(d)) <- v;
      head.(d) <- v;
      if d < !mindeg then mindeg := d
    in
    let bucket_remove v =
      let d = inbucket.(v) in
      if d >= 0 then begin
        if dprev.(v) >= 0 then dnext.(dprev.(v)) <- dnext.(v)
        else head.(d) <- dnext.(v);
        if dnext.(v) >= 0 then dprev.(dnext.(v)) <- dprev.(v);
        inbucket.(v) <- -1
      end
    in
    for v = 0 to n - 1 do
      bucket_insert v deg.(v)
    done;
    (* Iteration-stamped workspaces: a fresh stamp value replaces clearing
       the mark arrays between pivots. *)
    let stamp = Array.make n 0 in
    let wstamp = Array.make n 0 in
    let w = Array.make n 0 in
    let cur = ref 0 in
    let push_elem v e =
      let cap = Array.length elist.(v) in
      if elen.(v) = cap then begin
        let grown = Array.make (max 4 (2 * cap)) 0 in
        Array.blit elist.(v) 0 grown 0 cap;
        elist.(v) <- grown
      end;
      elist.(v).(elen.(v)) <- e;
      elen.(v) <- elen.(v) + 1
    in
    let norder = ref 0 in
    let pivots = ref [] in
    while !norder < n do
      while head.(!mindeg) < 0 do
        incr mindeg
      done;
      let p = head.(!mindeg) in
      bucket_remove p;
      pivots := p :: !pivots;
      (* Form the pivot element L_p = (A_p U union of its elements'
         members) minus p and the dead; absorb those elements. *)
      incr cur;
      let c = !cur in
      stamp.(p) <- c;
      let members = ref [] and dp = ref 0 in
      let add v =
        if state.(v) = 0 && nv.(v) > 0 && stamp.(v) <> c then begin
          stamp.(v) <- c;
          members := v :: !members;
          dp := !dp + nv.(v)
        end
      in
      for k = 0 to alen.(p) - 1 do
        add avar.(p).(k)
      done;
      for k = 0 to elen.(p) - 1 do
        let e = elist.(p).(k) in
        if state.(e) = 1 then begin
          for m = 0 to emlen.(e) - 1 do
            add emem.(e).(m)
          done;
          state.(e) <- 2
        end
      done;
      let lp = Array.of_list !members in
      let dp = !dp in
      state.(p) <- 1;
      emem.(p) <- lp;
      emlen.(p) <- Array.length lp;
      alen.(p) <- 0;
      elen.(p) <- 0;
      norder := !norder + nv.(p);
      (* w(e) pass: after it, w.(e) = |L_e \ L_p| in supervariable mass for
         every element adjacent to a member of L_p. Member lists are
         compacted (dead entries dropped) when first touched. *)
      incr cur;
      let cw = !cur in
      Array.iter
        (fun v ->
          for k = 0 to elen.(v) - 1 do
            let e = elist.(v).(k) in
            if state.(e) = 1 then begin
              if wstamp.(e) <> cw then begin
                let len = ref 0 and sz = ref 0 in
                for m = 0 to emlen.(e) - 1 do
                  let u = emem.(e).(m) in
                  if state.(u) = 0 && nv.(u) > 0 then begin
                    emem.(e).(!len) <- u;
                    incr len;
                    sz := !sz + nv.(u)
                  end
                done;
                emlen.(e) <- !len;
                w.(e) <- !sz;
                wstamp.(e) <- cw
              end;
              w.(e) <- w.(e) - nv.(v)
            end
          done)
        lp;
      (* Update pass over the pivot's members: prune A_v and E_v, apply
         aggressive absorption, recompute the approximate degree, detect
         mass eliminations, and hash for supervariable detection. *)
      let hash_groups : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
      Array.iter
        (fun v ->
          let len = ref 0 and asz = ref 0 and h = ref p in
          for k = 0 to alen.(v) - 1 do
            let u = avar.(v).(k) in
            if state.(u) = 0 && nv.(u) > 0 && stamp.(u) <> c then begin
              avar.(v).(!len) <- u;
              incr len;
              asz := !asz + nv.(u);
              h := !h + u
            end
          done;
          alen.(v) <- !len;
          let el = ref 0 and sumw = ref 0 in
          for k = 0 to elen.(v) - 1 do
            let e = elist.(v).(k) in
            if state.(e) = 1 then begin
              if wstamp.(e) = cw && w.(e) <= 0 then
                (* Aggressive absorption: every live member of e is inside
                   L_p, so element e is redundant from now on. *)
                state.(e) <- 2
              else begin
                elist.(v).(!el) <- e;
                incr el;
                sumw := !sumw + (if wstamp.(e) = cw then w.(e) else 0);
                h := !h + e
              end
            end
          done;
          elen.(v) <- !el;
          push_elem v p;
          bucket_remove v;
          if alen.(v) = 0 && elen.(v) = 1 then begin
            (* Mass elimination: v's neighborhood is exactly L_p, so it can
               be eliminated with p at no extra fill; it is emitted right
               after p in the output ordering. *)
            state.(v) <- 2;
            parent.(v) <- p;
            norder := !norder + nv.(v);
            nv.(v) <- 0
          end
          else begin
            let ext_p = dp - nv.(v) in
            let d_new =
              min (n - !norder) (min (deg.(v) + ext_p) (ext_p + !sumw + !asz))
            in
            deg.(v) <- max 0 d_new;
            let key = (!h mod n) + if !h mod n < 0 then n else 0 in
            (match Hashtbl.find_opt hash_groups key with
            | Some l -> l := v :: !l
            | None -> Hashtbl.add hash_groups key (ref [ v ]))
          end)
        lp;
      (* Supervariable detection within each hash group: exact set
         comparison of the pruned (A, E) lists via stamping; [j] merges
         into [i] and is emitted adjacent to it at output time. *)
      Hashtbl.iter
        (fun _ group ->
          let vs = Array.of_list !group in
          let m = Array.length vs in
          if m > 1 then
            for i = 0 to m - 2 do
              let vi = vs.(i) in
              if state.(vi) = 0 && nv.(vi) > 0 then begin
                let stamped = ref false in
                for j = i + 1 to m - 1 do
                  let vj = vs.(j) in
                  if
                    state.(vj) = 0
                    && nv.(vj) > 0
                    && alen.(vi) = alen.(vj)
                    && elen.(vi) = elen.(vj)
                  then begin
                    if not !stamped then begin
                      incr cur;
                      for k = 0 to alen.(vi) - 1 do
                        stamp.(avar.(vi).(k)) <- !cur
                      done;
                      for k = 0 to elen.(vi) - 1 do
                        stamp.(elist.(vi).(k)) <- !cur
                      done;
                      stamped := true
                    end;
                    let same = ref true in
                    for k = 0 to alen.(vj) - 1 do
                      if stamp.(avar.(vj).(k)) <> !cur then same := false
                    done;
                    for k = 0 to elen.(vj) - 1 do
                      if stamp.(elist.(vj).(k)) <> !cur then same := false
                    done;
                    if !same then begin
                      let mass = nv.(vj) in
                      nv.(vi) <- nv.(vi) + mass;
                      nv.(vj) <- 0;
                      state.(vj) <- 2;
                      parent.(vj) <- vi;
                      bucket_remove vj;
                      deg.(vi) <- max 0 (deg.(vi) - mass)
                    end
                  end
                done
              end
            done)
        hash_groups;
      (* Reinsert the surviving members with their updated degrees. *)
      Array.iter
        (fun v ->
          if state.(v) = 0 && nv.(v) > 0 then bucket_insert v deg.(v))
        lp
    done;
    (* Output: pivots in elimination order; each absorbed or
       mass-eliminated node is emitted right after the node that absorbed
       it (the absorption forest rooted at the pivots). *)
    let children = Array.make n [] in
    for x = n - 1 downto 0 do
      if parent.(x) >= 0 then children.(parent.(x)) <- x :: children.(parent.(x))
    done;
    let perm = Array.make n 0 in
    let pos = ref 0 in
    let rec emit x =
      perm.(!pos) <- x;
      incr pos;
      List.iter emit children.(x)
    in
    List.iter emit (List.rev !pivots);
    assert (!pos = n);
    perm
  end

(* Bandwidth of the symmetric pattern: used to test that RCM reduces it. *)
let bandwidth (a : Csc.t) =
  let b = ref 0 in
  Csc.iter a (fun i j _ -> b := max !b (abs (i - j)));
  !b
