(** Compressed sparse column (CSC) matrices — the storage format used
    throughout the paper ([{n, Lp, Li, Lx}]). Row indices are strictly
    increasing within each column; every constructor establishes the
    invariant and {!validate} checks it. *)

type t = {
  nrows : int;
  ncols : int;
  colptr : int array;  (** length [ncols+1]; [colptr.(ncols)] = nnz *)
  rowind : int array;  (** row index of each stored entry *)
  values : float array;  (** numeric value of each stored entry *)
}

val nnz : t -> int
(** Number of stored entries. *)

val validate : t -> unit
(** Checks structural invariants (pointer monotonicity, sorted unique rows,
    index ranges); raises [Invalid_argument] on violation. *)

val create :
  nrows:int ->
  ncols:int ->
  colptr:int array ->
  rowind:int array ->
  values:float array ->
  t
(** Builds and validates a CSC matrix from raw arrays (no copies taken). *)

val of_triplet : Triplet.t -> t
(** Converts a COO builder, sorting rows and summing duplicates. *)

val zero : nrows:int -> ncols:int -> t
(** All-zero matrix (no stored entries). *)

val identity : int -> t
(** [identity n] is the n x n identity. *)

val col_nnz : t -> int -> int
(** Number of stored entries in one column. *)

val iter_col : t -> int -> (int -> float -> unit) -> unit
(** [iter_col t j f] applies [f row value] to each entry of column [j], in
    increasing row order. *)

val iter : t -> (int -> int -> float -> unit) -> unit
(** [iter t f] applies [f row col value] to every stored entry in
    column-major order. *)

val get : t -> int -> int -> float
(** [get t i j] is the value at [(i, j)], or [0.] when not stored.
    Logarithmic in the column's entry count. *)

val mem : t -> int -> int -> bool
(** Whether entry [(i, j)] is stored (a pattern query: a stored [0.] counts). *)

val of_dense : float array array -> t
(** From a dense row-major matrix, dropping exact zeros. *)

val to_dense : ?max_elements:int -> t -> float array array
(** Dense row-major copy. Raises [Invalid_argument] when
    [nrows * ncols > max_elements] (default [2^26]): dense materialization
    is a test/oracle device, and at large n it would OOM long before any
    sparse structure does, so the guard fails fast instead. *)

val transpose : t -> t
(** Transposed matrix, O(nnz + max dims); output rows are sorted. *)

val transpose_map : t -> int array * int array * int array
(** [(colptr, rowind, map)]: the {e structure} of the transpose together
    with a gather map — entry [q] of the transpose reads its value from
    [values.(map.(q))] of the original. Sympiler uses this to hoist the
    numeric-phase transpose the paper attributes to Eigen/CHOLMOD into
    symbolic analysis: at run time a cheap gather replaces building the
    transpose. *)

val spmv : t -> float array -> float array
(** Sparse matrix-vector product [A x]. *)

val filter : t -> (int -> int -> float -> bool) -> t
(** Keep only the entries satisfying the predicate. Runs in O(nnz) with
    no re-sort (CSC order is preserved); the predicate must be pure — it
    is applied twice per entry (a counting pass then a fill pass). *)

val lower : t -> t
(** Lower-triangular part, diagonal included — the storage convention for
    symmetric matrices and factor inputs throughout this library. *)

val upper : t -> t
(** Upper-triangular part, diagonal included. *)

val strict_lower : t -> t
(** Below-diagonal part. *)

val is_lower_triangular : t -> bool

val symmetrize_from_lower : t -> t
(** Rebuild the full symmetric matrix from lower-triangular storage. *)

val map_values : t -> (float -> float) -> t
(** Same pattern, transformed values — the paper's core scenario of
    changing numeric values under a fixed structure. *)

val pattern_equal : t -> t -> bool
(** Structural equality (dimensions, colptr, rowind). *)

val pattern_hash : t -> int
(** Structural hash of [(dims, colptr, rowind)] (values excluded): equal
    patterns hash equal, so a pattern-keyed compilation cache can use this
    as its key, falling back to {!pattern_equal} on collision. *)

val hash_fold_int : int -> int -> int
(** One FNV-1a mixing step: fold an int into a running structural hash
    (used to extend {!pattern_hash} with RHS patterns or option
    fingerprints). *)

val hash_fold_int_array : int -> int array -> int
(** Fold a whole int array (length included) into a running hash. *)

val equal : ?eps:float -> t -> t -> bool
(** Pattern equality plus entrywise value equality to tolerance [eps]. *)

val multiply : t -> t -> t
(** Sparse matrix product [A B] (Gustavson's column-at-a-time algorithm
    with a dense accumulator). Exact numerical zeros are dropped. *)

val add : t -> t -> t
(** Entrywise sum (patterns united). *)

val scale : t -> float -> t
(** Multiply all values by a scalar. *)

val pp : Format.formatter -> t -> unit
(** Debug printer (entry list for small matrices). *)
