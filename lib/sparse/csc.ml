(* Compressed sparse column (CSC) matrices: the storage format used by the
   paper ({n, Lp, Li, Lx}). Row indices are kept strictly increasing within
   each column; [validate] checks the invariant and every constructor
   establishes it. *)

type t = {
  nrows : int;
  ncols : int;
  colptr : int array; (* length ncols+1; colptr.(ncols) = nnz *)
  rowind : int array; (* row index of each stored entry *)
  values : float array; (* numeric value of each stored entry *)
}

let nnz t = t.colptr.(t.ncols)

let validate t =
  let ok =
    Array.length t.colptr = t.ncols + 1
    && t.colptr.(0) = 0
    && Array.length t.rowind = nnz t
    && Array.length t.values = nnz t
  in
  if not ok then invalid_arg "Csc.validate: malformed pointer/index arrays";
  for j = 0 to t.ncols - 1 do
    if t.colptr.(j) > t.colptr.(j + 1) then
      invalid_arg "Csc.validate: decreasing colptr";
    if not (Utils.array_is_sorted_strict t.rowind t.colptr.(j) t.colptr.(j + 1))
    then invalid_arg "Csc.validate: unsorted or duplicate rows in a column";
    for p = t.colptr.(j) to t.colptr.(j + 1) - 1 do
      if t.rowind.(p) < 0 || t.rowind.(p) >= t.nrows then
        invalid_arg "Csc.validate: row index out of range"
    done
  done

let create ~nrows ~ncols ~colptr ~rowind ~values =
  let t = { nrows; ncols; colptr; rowind; values } in
  validate t;
  t

let of_triplet (tr : Triplet.t) =
  let colptr, rowind, values = Triplet.to_csc_arrays tr in
  { nrows = tr.Triplet.nrows; ncols = tr.Triplet.ncols; colptr; rowind; values }

let zero ~nrows ~ncols =
  {
    nrows;
    ncols;
    colptr = Array.make (ncols + 1) 0;
    rowind = [||];
    values = [||];
  }

let identity n =
  {
    nrows = n;
    ncols = n;
    colptr = Array.init (n + 1) (fun i -> i);
    rowind = Array.init n (fun i -> i);
    values = Array.make n 1.0;
  }

let col_nnz t j = t.colptr.(j + 1) - t.colptr.(j)

let iter_col t j f =
  for p = t.colptr.(j) to t.colptr.(j + 1) - 1 do
    f t.rowind.(p) t.values.(p)
  done

let iter t f =
  for j = 0 to t.ncols - 1 do
    for p = t.colptr.(j) to t.colptr.(j + 1) - 1 do
      f t.rowind.(p) j t.values.(p)
    done
  done

(* Binary search for row i within column j; O(log nnz(col)). *)
let get t i j =
  let lo = ref t.colptr.(j) and hi = ref (t.colptr.(j + 1) - 1) in
  let res = ref 0.0 in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let r = t.rowind.(mid) in
    if r = i then begin
      res := t.values.(mid);
      lo := !hi + 1
    end
    else if r < i then lo := mid + 1
    else hi := mid - 1
  done;
  !res

let mem t i j =
  let lo = ref t.colptr.(j) and hi = ref (t.colptr.(j + 1) - 1) in
  let found = ref false in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let r = t.rowind.(mid) in
    if r = i then begin
      found := true;
      lo := !hi + 1
    end
    else if r < i then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let of_dense (d : float array array) =
  let nrows = Array.length d in
  let ncols = if nrows = 0 then 0 else Array.length d.(0) in
  let tr = Triplet.create ~nrows ~ncols () in
  for i = 0 to nrows - 1 do
    for j = 0 to ncols - 1 do
      if d.(i).(j) <> 0.0 then Triplet.add tr i j d.(i).(j)
    done
  done;
  of_triplet tr

(* Dense materialization is for tests and small oracles only; at large n an
   n x n float matrix OOMs long before any sparse structure does, so the
   bound fails fast instead of letting the allocator die. *)
let default_max_dense_elements = 1 lsl 26 (* 64M entries = 512 MB of floats *)

let to_dense ?(max_elements = default_max_dense_elements) t =
  if t.nrows * t.ncols > max_elements then
    invalid_arg
      (Printf.sprintf
         "Csc.to_dense: %dx%d dense materialization exceeds the %d-element \
          bound"
         t.nrows t.ncols max_elements);
  let d = Array.make_matrix t.nrows t.ncols 0.0 in
  iter t (fun i j v -> d.(i).(j) <- v);
  d

let transpose t =
  let counts = Array.make (t.nrows + 1) 0 in
  for p = 0 to nnz t - 1 do
    counts.(t.rowind.(p)) <- counts.(t.rowind.(p)) + 1
  done;
  let _ = Utils.cumsum counts in
  let colptr = Array.copy counts in
  let next = Array.sub counts 0 t.nrows in
  let rowind = Array.make (nnz t) 0 in
  let values = Array.make (nnz t) 0.0 in
  for j = 0 to t.ncols - 1 do
    for p = t.colptr.(j) to t.colptr.(j + 1) - 1 do
      let i = t.rowind.(p) in
      let q = next.(i) in
      rowind.(q) <- j;
      values.(q) <- t.values.(p);
      next.(i) <- q + 1
    done
  done;
  { nrows = t.ncols; ncols = t.nrows; colptr; rowind; values }

(* Structure of the transpose together with a gather map: entry q of the
   transpose reads its value from [values.(map.(q))] of the original matrix.
   Sympiler's Cholesky uses this to hoist the numeric-phase transpose the
   paper attributes to Eigen/CHOLMOD into symbolic analysis: at run time a
   cheap gather through [map] replaces building the transpose. *)
let transpose_map t =
  let counts = Array.make (t.nrows + 1) 0 in
  for p = 0 to nnz t - 1 do
    counts.(t.rowind.(p)) <- counts.(t.rowind.(p)) + 1
  done;
  let _ = Utils.cumsum counts in
  let colptr = Array.copy counts in
  let next = Array.sub counts 0 t.nrows in
  let rowind = Array.make (nnz t) 0 in
  let map = Array.make (nnz t) 0 in
  for j = 0 to t.ncols - 1 do
    for p = t.colptr.(j) to t.colptr.(j + 1) - 1 do
      let i = t.rowind.(p) in
      let q = next.(i) in
      rowind.(q) <- j;
      map.(q) <- p;
      next.(i) <- q + 1
    done
  done;
  (colptr, rowind, map)

(* y = A * x *)
let spmv t x =
  if Array.length x <> t.ncols then invalid_arg "Csc.spmv: dimension";
  let y = Array.make t.nrows 0.0 in
  for j = 0 to t.ncols - 1 do
    let xj = x.(j) in
    if xj <> 0.0 then
      for p = t.colptr.(j) to t.colptr.(j + 1) - 1 do
        y.(t.rowind.(p)) <- y.(t.rowind.(p)) +. (t.values.(p) *. xj)
      done
  done;
  y

(* Column-major iteration preserves CSC order, so filtering needs no
   re-sort: count survivors per column, then copy them. Two passes — the
   predicate runs twice per entry — but no triplet round-trip and no
   resize churn, which is what keeps [lower] O(nnz) with small constants
   at 10^6-row scale. *)
let filter t keep =
  let n = t.ncols in
  let colptr = Array.make (n + 1) 0 in
  for j = 0 to n - 1 do
    let c = ref 0 in
    for p = t.colptr.(j) to t.colptr.(j + 1) - 1 do
      if keep t.rowind.(p) j t.values.(p) then incr c
    done;
    colptr.(j + 1) <- colptr.(j) + !c
  done;
  let k = colptr.(n) in
  let rowind = Array.make k 0 in
  let values = Array.make k 0.0 in
  let out = ref 0 in
  for j = 0 to n - 1 do
    for p = t.colptr.(j) to t.colptr.(j + 1) - 1 do
      if keep t.rowind.(p) j t.values.(p) then begin
        rowind.(!out) <- t.rowind.(p);
        values.(!out) <- t.values.(p);
        incr out
      end
    done
  done;
  { nrows = t.nrows; ncols = n; colptr; rowind; values }

(* Lower-triangular part, diagonal included. *)
let lower t = filter t (fun i j _ -> i >= j)
let upper t = filter t (fun i j _ -> i <= j)
let strict_lower t = filter t (fun i j _ -> i > j)

let is_lower_triangular t =
  let ok = ref true in
  iter t (fun i j _ -> if i < j then ok := false);
  !ok

(* Rebuild the full symmetric matrix from lower-triangular storage. *)
let symmetrize_from_lower t =
  if t.nrows <> t.ncols then invalid_arg "Csc.symmetrize_from_lower: square";
  let tr = Triplet.create ~nrows:t.nrows ~ncols:t.ncols () in
  iter t (fun i j v ->
      Triplet.add tr i j v;
      if i <> j then Triplet.add tr j i v);
  of_triplet tr

let map_values t f =
  { t with values = Array.map f t.values }

let pattern_equal a b =
  a.nrows = b.nrows && a.ncols = b.ncols
  && Utils.int_array_equal a.colptr b.colptr
  && Utils.int_array_equal a.rowind b.rowind

(* FNV-1a over the structural data (dims, colptr, rowind), mixing each int
   bytewise-equivalent as a single multiply/xor step. Collisions are
   resolved by [pattern_equal] at the caller (see Sympiler.Plan_cache), so
   the only requirement here is good dispersion, not cryptography. *)
let fnv_prime = 0x100000001b3
let fnv_offset = 0x3bf29ce484222325

let hash_fold_int h v = (h lxor v) * fnv_prime land max_int

let hash_fold_int_array h (a : int array) =
  let h = ref (hash_fold_int h (Array.length a)) in
  for i = 0 to Array.length a - 1 do
    h := hash_fold_int !h a.(i)
  done;
  !h

let pattern_hash t =
  let h = hash_fold_int fnv_offset t.nrows in
  let h = hash_fold_int h t.ncols in
  let h = hash_fold_int_array h t.colptr in
  hash_fold_int_array h t.rowind

let equal ?(eps = 1e-12) a b =
  pattern_equal a b
  &&
  let rec go p =
    p >= nnz a || (Utils.feq ~eps a.values.(p) b.values.(p) && go (p + 1))
  in
  go 0

(* C = A * B, classic Gustavson column-at-a-time sparse GEMM with a dense
   accumulator; result columns are sorted by construction of [of_triplet]. *)
let multiply a b =
  if a.ncols <> b.nrows then invalid_arg "Csc.multiply: dims";
  let tr = Triplet.create ~nrows:a.nrows ~ncols:b.ncols () in
  let acc = Array.make a.nrows 0.0 in
  let touched = Array.make a.nrows 0 in
  for j = 0 to b.ncols - 1 do
    let ntouched = ref 0 in
    for p = b.colptr.(j) to b.colptr.(j + 1) - 1 do
      let k = b.rowind.(p) in
      let bkj = b.values.(p) in
      for q = a.colptr.(k) to a.colptr.(k + 1) - 1 do
        let i = a.rowind.(q) in
        if acc.(i) = 0.0 then begin
          touched.(!ntouched) <- i;
          incr ntouched
        end;
        acc.(i) <- acc.(i) +. (a.values.(q) *. bkj)
      done
    done;
    for t = 0 to !ntouched - 1 do
      let i = touched.(t) in
      if acc.(i) <> 0.0 then Triplet.add tr i j acc.(i);
      acc.(i) <- 0.0
    done
  done;
  of_triplet tr

(* a + b, entrywise. *)
let add a b =
  if a.nrows <> b.nrows || a.ncols <> b.ncols then invalid_arg "Csc.add: dims";
  let tr = Triplet.create ~nrows:a.nrows ~ncols:a.ncols () in
  iter a (fun i j v -> Triplet.add tr i j v);
  iter b (fun i j v -> Triplet.add tr i j v);
  of_triplet tr

let scale t alpha = map_values t (fun v -> alpha *. v)

let pp ppf t =
  Fmt.pf ppf "@[<v>CSC %dx%d, nnz=%d" t.nrows t.ncols (nnz t);
  if nnz t <= 64 then
    iter t (fun i j v -> Fmt.pf ppf "@,(%d,%d) = %g" i j v);
  Fmt.pf ppf "@]"
