(** Packed index-segment storage on an int32 Bigarray.

    Jagged [int array array] symbolic results (row patterns, prune-sets)
    cost 8 bytes per entry plus a header and a pointer per segment; packed
    int32 storage halves that and makes the payload a single off-heap
    allocation — what lets the symbolic stack hold 10^6-row analyses.

    {b Phase discipline}: without flambda, reading an int32 Bigarray boxes
    the result, so every accessor here may allocate. Symbolic analysis and
    compile steps read freely; zero-allocation numeric phases must instead
    consume plain [int array]s flattened from this store at compile time
    ({!flatten}, {!ptr}). *)

type t
(** Immutable packed segments: conceptually [int array array], stored as a
    CSC-style offset array over one int32 payload. *)

val segments : t -> int
(** Number of segments. *)

val total_length : t -> int
(** Total packed entries across all segments. *)

val segment_length : t -> int -> int
(** Length of segment [s]. *)

val ptr : t -> int array
(** The segment-offset array (length [segments t + 1]); shared with the
    store — treat as read-only. Segment [s] occupies packed positions
    [ptr.(s) .. ptr.(s+1) - 1]. *)

val get : t -> int -> int -> int
(** [get t s i] is entry [i] of segment [s] (allocates: int32 boxing). *)

val iter_segment : t -> int -> (int -> unit) -> unit
(** Apply a function to each entry of one segment, in order. *)

val segment : t -> int -> int array
(** Allocating copy of one segment. *)

val to_arrays : t -> int array array
(** Allocating jagged copy of the whole store (tests, inspection sets). *)

val flatten : t -> int array
(** The whole packed payload as one plain [int array] — the compile-time
    flattening step for kernels whose numeric phase needs allocation-free
    reads (pair it with {!ptr}). *)

val memory_bytes : t -> int
(** Approximate resident bytes (offsets + packed payload). *)

(** Append-only construction, segment by segment, with amortized-doubling
    growth of the packed payload. *)
module Builder : sig
  type store := t

  type t

  val create : ?segments_hint:int -> ?capacity:int -> unit -> t

  val append_segment : t -> int array -> int -> unit
  (** [append_segment b src len] appends [src.(0 .. len-1)] as the next
      segment. Raises [Invalid_argument] on a bad length or on a value
      outside int32 range. *)

  val finish : t -> store
  (** Seal the builder into an immutable store. *)
end

val of_arrays : int array array -> t
(** Pack a jagged array (convenience for tests and small callers). *)
