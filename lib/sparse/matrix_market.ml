(* Matrix Market coordinate-format reader/writer. Supports the subset used by
   the SuiteSparse collection the paper draws from: real or pattern entries,
   general or symmetric storage. Symmetric files store the lower triangle;
   on read we expand to the full matrix unless [expand] is false. *)

type symmetry = General | Symmetric

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* MM files in the wild separate fields with tabs and runs of blanks, not
   single spaces; split on any whitespace and drop empty fields. *)
let tokens line =
  String.split_on_char ' '
    (String.map (function '\t' | '\r' -> ' ' | c -> c) line)
  |> List.filter (fun s -> s <> "")

let parse_header line =
  match tokens (String.lowercase_ascii line) with
  | bang :: "matrix" :: "coordinate" :: field :: sym :: _
    when bang = "%%matrixmarket" ->
      let pattern =
        match field with
        | "real" | "integer" -> false
        | "pattern" -> true
        | f -> fail "unsupported field %s" f
      in
      let symmetry =
        match sym with
        | "general" -> General
        | "symmetric" -> Symmetric
        | "skew-symmetric" -> fail "skew-symmetric matrices are not supported"
        | s -> fail "unsupported symmetry %s" s
      in
      (pattern, symmetry)
  | _ -> fail "bad MatrixMarket header: %s" line

let read_lines ic =
  let rec go acc =
    match In_channel.input_line ic with
    | None -> List.rev acc
    | Some l -> go (l :: acc)
  in
  go []

let of_lines ?(expand = true) lines =
  match lines with
  | [] -> fail "empty file"
  | header :: rest ->
      let pattern, symmetry = parse_header header in
      let rest =
        List.filter
          (fun l ->
            let l = String.trim l in
            String.length l > 0 && l.[0] <> '%')
          rest
      in
      let parse_size l =
        match tokens l with
        | [ m; n; nz ] -> (int_of_string m, int_of_string n, int_of_string nz)
        | _ -> fail "bad size line: %s" l
      in
      (match rest with
      | [] -> fail "missing size line"
      | size_line :: entries ->
          let nrows, ncols, nz = parse_size size_line in
          let tr = Triplet.create ~nrows ~ncols ~capacity:(max nz 1) () in
          let add_entry l =
            match tokens l with
            | i :: j :: restv ->
                let i = int_of_string i - 1 and j = int_of_string j - 1 in
                (* Symmetric coordinate files store the lower triangle;
                   an entry above the diagonal means the file is malformed
                   (or actually general) and silently mirroring it would
                   double entries on a legitimate read path. *)
                if symmetry = Symmetric && i < j then
                  fail
                    "entry (%d, %d) above the diagonal in a symmetric file"
                    (i + 1) (j + 1);
                let v =
                  if pattern then 1.0
                  else
                    match restv with
                    | v :: _ -> float_of_string v
                    | [] -> fail "missing value: %s" l
                in
                Triplet.add tr i j v;
                if symmetry = Symmetric && expand && i <> j then
                  Triplet.add tr j i v
            | _ -> fail "bad entry line: %s" l
          in
          (* Validate against the number of entry lines in the file, not
             [Triplet.length tr]: symmetric expansion inflates the latter, so
             an under-declared symmetric file used to slip through. *)
          List.iter add_entry entries;
          let file_entries = List.length entries in
          if file_entries < nz then
            fail "fewer entries than declared (%d < %d)" file_entries nz;
          if file_entries > nz then
            fail "more entries than declared (%d > %d)" file_entries nz;
          Csc.of_triplet tr)

let of_string ?expand s = of_lines ?expand (String.split_on_char '\n' s)

let read ?expand path =
  In_channel.with_open_text path (fun ic -> of_lines ?expand (read_lines ic))

(* Pattern and exact value symmetry: writing ~symmetric keeps only the
   lower triangle, so anything asymmetric would be silently lost. *)
let is_symmetric (m : Csc.t) =
  m.Csc.nrows = m.Csc.ncols
  &&
  let t = Csc.transpose m in
  Csc.pattern_equal m t
  &&
  let ok = ref true in
  Array.iteri
    (fun q v -> if v <> t.Csc.values.(q) then ok := false)
    m.Csc.values;
  !ok

let to_buffer ?(symmetric = false) buf (m : Csc.t) =
  if symmetric && not (is_symmetric m) then
    invalid_arg
      "Matrix_market.to_buffer: ~symmetric:true requires a symmetric matrix \
       (pattern and values)";
  let sym = if symmetric then "symmetric" else "general" in
  Buffer.add_string buf
    (Printf.sprintf "%%%%MatrixMarket matrix coordinate real %s\n" sym);
  let entries = ref [] in
  Csc.iter m (fun i j v ->
      if (not symmetric) || i >= j then entries := (i, j, v) :: !entries);
  let entries = List.rev !entries in
  Buffer.add_string buf
    (Printf.sprintf "%d %d %d\n" m.Csc.nrows m.Csc.ncols (List.length entries));
  List.iter
    (fun (i, j, v) ->
      Buffer.add_string buf (Printf.sprintf "%d %d %.17g\n" (i + 1) (j + 1) v))
    entries

let to_string ?symmetric m =
  let buf = Buffer.create 1024 in
  to_buffer ?symmetric buf m;
  Buffer.contents buf

let write ?symmetric path m =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string ?symmetric m))
