(* Synthetic SPD matrix generators. These substitute for the SuiteSparse
   matrices of the paper's Table 2 (see DESIGN.md): each generator controls
   the property the experiments actually depend on — problem size, fill, and
   the supernode-size distribution of the Cholesky factor L.

   All generators return the FULL symmetric matrix in CSC form; callers that
   need lower-triangular storage apply [Csc.lower]. SPD-ness comes either
   from the Laplacian stencil (plus a diagonal shift) or from strict diagonal
   dominance. *)

let shift_diag_dominant tr n =
  (* Returns per-row absolute off-diagonal sums so callers can build a
     strictly dominant diagonal. *)
  let rowsum = Array.make n 0.0 in
  for k = 0 to Triplet.length tr - 1 do
    let i = tr.Triplet.rows.(k) and j = tr.Triplet.cols.(k) in
    if i <> j then rowsum.(i) <- rowsum.(i) +. Float.abs tr.Triplet.vals.(k)
  done;
  rowsum

(* 2D grid Laplacian, 5-point (stencil=`Five) or 9-point (`Nine) stencil.
   n = nx * ny unknowns, natural (row-major) ordering. SPD after the +shift
   on the diagonal. Models the FEM/finite-difference matrices of Table 2
   (Dubcova*, parabolic_fem, ecology2, tmt_sym, Pres_Poisson). *)
let grid2d ?(stencil = `Five) ?(shift = 1e-2) nx ny =
  let n = nx * ny in
  let idx x y = (y * nx) + x in
  let tr = Triplet.create ~nrows:n ~ncols:n ~capacity:(9 * n) () in
  let neighbors =
    match stencil with
    | `Five -> [ (1, 0); (0, 1) ]
    | `Nine -> [ (1, 0); (0, 1); (1, 1); (1, -1) ]
  in
  for y = 0 to ny - 1 do
    for x = 0 to nx - 1 do
      let i = idx x y in
      let deg = ref 0.0 in
      List.iter
        (fun (dx, dy) ->
          let x' = x + dx and y' = y + dy in
          if x' >= 0 && x' < nx && y' >= 0 && y' < ny then begin
            let j = idx x' y' in
            Triplet.add tr i j (-1.0);
            Triplet.add tr j i (-1.0);
            deg := !deg +. 2.0
          end)
        neighbors;
      ignore !deg
    done
  done;
  (* Diagonal = full stencil degree + shift (count both directions). *)
  let degree = Array.make n 0.0 in
  for k = 0 to Triplet.length tr - 1 do
    let i = tr.Triplet.rows.(k) in
    degree.(i) <- degree.(i) +. 1.0
  done;
  for i = 0 to n - 1 do
    Triplet.add tr i i (degree.(i) +. shift)
  done;
  Csc.of_triplet tr

(* 3D grid Laplacian, 7-point stencil. *)
let grid3d ?(shift = 1e-2) nx ny nz =
  let n = nx * ny * nz in
  let idx x y z = (z * nx * ny) + (y * nx) + x in
  let tr = Triplet.create ~nrows:n ~ncols:n ~capacity:(7 * n) () in
  for z = 0 to nz - 1 do
    for y = 0 to ny - 1 do
      for x = 0 to nx - 1 do
        let i = idx x y z in
        let link x' y' z' =
          if x' < nx && y' < ny && z' < nz then begin
            let j = idx x' y' z' in
            Triplet.add tr i j (-1.0);
            Triplet.add tr j i (-1.0)
          end
        in
        link (x + 1) y z;
        link x (y + 1) z;
        link x y (z + 1)
      done
    done
  done;
  let degree = Array.make n 0.0 in
  for k = 0 to Triplet.length tr - 1 do
    degree.(tr.Triplet.rows.(k)) <- degree.(tr.Triplet.rows.(k)) +. 1.0
  done;
  for i = 0 to n - 1 do
    Triplet.add tr i i (degree.(i) +. shift)
  done;
  Csc.of_triplet tr

(* Dense-band SPD matrix of half-bandwidth [band]: L stays inside the band
   and is dense there, so supernodes are large. Models structural-mechanics
   matrices (cbuckle, msc23052). *)
let banded ?(seed = 1) ~n ~band () =
  let rng = Utils.Rng.create seed in
  let tr = Triplet.create ~nrows:n ~ncols:n ~capacity:(n * (band + 1)) () in
  for j = 0 to n - 1 do
    for i = j + 1 to min (n - 1) (j + band) do
      let v = -.Utils.Rng.float_range rng 0.1 1.0 in
      Triplet.add tr i j v;
      Triplet.add tr j i v
    done
  done;
  let rowsum = shift_diag_dominant tr n in
  for i = 0 to n - 1 do
    Triplet.add tr i i (rowsum.(i) +. 1.0 +. Utils.Rng.float rng)
  done;
  Csc.of_triplet tr

(* Block-tridiagonal SPD with dense blocks of size [block] and full coupling
   between consecutive blocks: the factor's column patterns nest within each
   block, so supernodes have width = [block]. *)
let block_tridiagonal ?(seed = 2) ~nblocks ~block () =
  let rng = Utils.Rng.create seed in
  let n = nblocks * block in
  let tr = Triplet.create ~nrows:n ~ncols:n () in
  let add_sym i j v =
    if i > j then begin
      Triplet.add tr i j v;
      Triplet.add tr j i v
    end
  in
  for b = 0 to nblocks - 1 do
    let base = b * block in
    for i = 0 to block - 1 do
      for j = 0 to i - 1 do
        add_sym (base + i) (base + j) (-.Utils.Rng.float_range rng 0.1 1.0)
      done
    done;
    if b + 1 < nblocks then
      for i = 0 to block - 1 do
        for j = 0 to block - 1 do
          add_sym (base + block + i) (base + j)
            (-.Utils.Rng.float_range rng 0.1 1.0)
        done
      done
  done;
  let rowsum = shift_diag_dominant tr n in
  for i = 0 to n - 1 do
    Triplet.add tr i i (rowsum.(i) +. 1.0 +. Utils.Rng.float rng)
  done;
  Csc.of_triplet tr

(* Chain of overlapping dense cliques on consecutive index ranges — the
   structure of FEM assembly with contiguous node numbering. The factor has
   large supernodes (roughly clique-sized), the structural-mechanics
   character of cbuckle/msc23052. *)
let clique_chain ?(seed = 7) ~n ~clique ~overlap () =
  if overlap >= clique then invalid_arg "clique_chain: overlap < clique";
  let rng = Utils.Rng.create seed in
  let tr = Triplet.create ~nrows:n ~ncols:n () in
  let add_sym i j v =
    Triplet.add tr i j v;
    Triplet.add tr j i v
  in
  let step = clique - overlap in
  let s = ref 0 in
  while !s < n - 1 do
    let hi = min (n - 1) (!s + clique - 1) in
    for i = !s to hi do
      for j = !s to i - 1 do
        add_sym i j (-.Utils.Rng.float_range rng 0.1 1.0)
      done
    done;
    s := !s + step
  done;
  let rowsum = shift_diag_dominant tr n in
  for i = 0 to n - 1 do
    Triplet.add tr i i (rowsum.(i) +. 1.0 +. Utils.Rng.float rng)
  done;
  Csc.of_triplet tr

(* Random entries scattered inside a band of half-width [band] with the
   given per-entry [density]: fill stays inside the band, supernodes stay
   tiny, and the pattern is irregular — circuit / MEMS-like structure. *)
let random_banded ?(seed = 8) ~n ~band ~density () =
  let rng = Utils.Rng.create seed in
  let tr = Triplet.create ~nrows:n ~ncols:n () in
  for j = 0 to n - 1 do
    for i = j + 1 to min (n - 1) (j + band) do
      if Utils.Rng.float rng < density then begin
        let v = -.Utils.Rng.float_range rng 0.1 1.0 in
        Triplet.add tr i j v;
        Triplet.add tr j i v
      end
    done
  done;
  (* Sub/super-diagonal chain keeps the matrix irreducible. *)
  for i = 1 to n - 1 do
    Triplet.add tr i (i - 1) (-0.5);
    Triplet.add tr (i - 1) i (-0.5)
  done;
  let rowsum = shift_diag_dominant tr n in
  for i = 0 to n - 1 do
    Triplet.add tr i i (rowsum.(i) +. 1.0 +. Utils.Rng.float rng)
  done;
  Csc.of_triplet tr

(* Irregular random SPD with bounded average degree: circuit-simulation-like
   structure with tiny supernodes (gyro, thermomech_dM stand-ins). *)
let random_spd ?(seed = 3) ~n ~avg_degree () =
  let rng = Utils.Rng.create seed in
  let tr = Triplet.create ~nrows:n ~ncols:n () in
  let edges = n * avg_degree / 2 in
  for _ = 1 to edges do
    let i = Utils.Rng.int rng n and j = Utils.Rng.int rng n in
    if i <> j then begin
      let v = -.Utils.Rng.float_range rng 0.1 1.0 in
      Triplet.add tr (max i j) (min i j) v;
      Triplet.add tr (min i j) (max i j) v
    end
  done;
  (* Nearest-neighbor chain keeps the graph connected so the etree is a
     single tree; circuits are connected too. *)
  for i = 1 to n - 1 do
    let v = -0.5 in
    Triplet.add tr i (i - 1) v;
    Triplet.add tr (i - 1) i v
  done;
  let rowsum = shift_diag_dominant tr n in
  for i = 0 to n - 1 do
    Triplet.add tr i i (rowsum.(i) +. 1.0 +. Utils.Rng.float rng)
  done;
  Csc.of_triplet tr

(* Small dense-ish random SPD used by property tests: A = B B^T + n*I with B
   a random sparse matrix, guaranteed SPD. The O(n^3) product and two dense
   n x n intermediates make this a small-n test device only; the bound fails
   fast instead of silently burning minutes (or memory) at scale. *)
let max_spd_dense_n = 4096

let random_spd_dense ?(seed = 4) n =
  if n > max_spd_dense_n then
    invalid_arg
      (Printf.sprintf
         "Generators.random_spd_dense: n = %d exceeds the %d bound (dense \
          O(n^3) construction; use random_spd or grid3d at scale)"
         n max_spd_dense_n);
  let rng = Utils.Rng.create seed in
  let b = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if Utils.Rng.float rng < 0.4 then
        b.(i).(j) <- Utils.Rng.float_range rng (-1.0) 1.0
    done;
    b.(i).(i) <- b.(i).(i) +. 1.0
  done;
  let a = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let s = ref 0.0 in
      for k = 0 to n - 1 do
        s := !s +. (b.(i).(k) *. b.(j).(k))
      done;
      a.(i).(j) <- !s
    done;
    a.(i).(i) <- a.(i).(i) +. float_of_int n
  done;
  Csc.of_dense a

(* Random lower-triangular matrix with unit-magnitude-ish diagonal: direct
   input for triangular-solve tests. [density] is the probability of each
   below-diagonal entry. *)
let random_lower ?(seed = 5) ~n ~density () =
  let rng = Utils.Rng.create seed in
  let tr = Triplet.create ~nrows:n ~ncols:n () in
  for j = 0 to n - 1 do
    Triplet.add tr j j (1.0 +. Utils.Rng.float rng);
    for i = j + 1 to n - 1 do
      if Utils.Rng.float rng < density then
        Triplet.add tr i j (Utils.Rng.float_range rng (-1.0) 1.0)
    done
  done;
  Csc.of_triplet tr

(* Sparse right-hand side with the given fill fraction (paper: < 5%).
   Mirrors the paper's setting where RHS sparsity matches the sparsity of a
   matrix column. *)
let sparse_rhs ?(seed = 6) ~n ~fill () =
  let rng = Utils.Rng.create seed in
  let k = max 1 (int_of_float (fill *. float_of_int n)) in
  let perm = Array.init n (fun i -> i) in
  Utils.Rng.shuffle rng perm;
  let indices = Array.sub perm 0 k in
  Array.sort compare indices;
  let values =
    Array.map (fun _ -> Utils.Rng.float_range rng 0.5 1.5) indices
  in
  { Vector.n; indices; values }

(* ------------------------------------------------------------------ *)
(* Table 2 suite. Scaled-down stand-ins for the paper's 11 SuiteSparse
   problems; each keeps the structural character (see DESIGN.md). *)

type problem = {
  id : int;
  name : string;
  matrix : Csc.t Lazy.t;
  descr : string;
}

let suite : problem list =
  [
    {
      id = 1;
      name = "cbuckle";
      matrix = lazy (clique_chain ~seed:11 ~n:1600 ~clique:32 ~overlap:8 ());
      descr = "structural buckling: overlapping cliques, large supernodes";
    };
    {
      id = 2;
      name = "Pres_Poisson";
      matrix = lazy (grid2d ~stencil:`Nine 40 40);
      descr = "pressure Poisson: 9-point 2D grid";
    };
    {
      id = 3;
      name = "gyro";
      matrix = lazy (random_banded ~seed:13 ~n:2000 ~band:40 ~density:0.08 ());
      descr = "MEMS gyro: irregular banded, tiny supernodes";
    };
    {
      id = 4;
      name = "gyro_k";
      matrix = lazy (random_banded ~seed:14 ~n:2000 ~band:40 ~density:0.08 ());
      descr = "MEMS gyro (stiffness): irregular banded, tiny supernodes";
    };
    {
      id = 5;
      name = "Dubcova2";
      matrix = lazy (grid2d ~stencil:`Five 50 50);
      descr = "FEM: 5-point 2D grid, small supernodes";
    };
    {
      id = 6;
      name = "msc23052";
      matrix = lazy (block_tridiagonal ~seed:16 ~nblocks:100 ~block:25 ());
      descr = "structural: dense blocks, very large supernodes";
    };
    {
      id = 7;
      name = "thermomech_dM";
      matrix = lazy (random_banded ~seed:17 ~n:6000 ~band:30 ~density:0.08 ());
      descr = "thermal: large irregular banded, tiny supernodes";
    };
    {
      id = 8;
      name = "Dubcova3";
      matrix = lazy (grid2d ~stencil:`Nine 70 70);
      descr = "FEM: 9-point 2D grid, moderate supernodes";
    };
    {
      id = 9;
      name = "parabolic_fem";
      matrix = lazy (grid2d ~stencil:`Five 90 90);
      descr = "parabolic FEM: large 5-point 2D grid";
    };
    {
      id = 10;
      name = "ecology2";
      matrix = lazy (grid2d ~stencil:`Five 100 100);
      descr = "ecology: largest 5-point 2D grid";
    };
    {
      id = 11;
      name = "tmt_sym";
      matrix = lazy (grid2d ~stencil:`Nine 90 90);
      descr = "electromagnetics: large 9-point 2D grid";
    };
  ]

(* ------------------------------------------------------------------ *)
(* Large-scale suite: the instances behind [bench --only large] and the
   large-smoke test group. Elongated 3D grids with a fixed 5x5 cross-section
   keep the factor's band (and so nnz(L)/n and flops/n) constant as n grows:
   symbolic and numeric work are both Theta(n), which is what lets the
   scaling-exponent verdict separate a linear stack from a quadratic one.
   All lazy: forcing a 10^6-row grid allocates hundreds of MB, so nothing
   here is built unless a large tier explicitly asks for it. *)

let large_suite : problem list =
  [
    {
      id = 101;
      name = "grid3d_1e4";
      matrix = lazy (grid3d 5 5 400);
      descr = "3D grid Laplacian, 5x5x400 = 10^4 rows";
    };
    {
      id = 102;
      name = "grid3d_1e5";
      matrix = lazy (grid3d 5 5 4000);
      descr = "3D grid Laplacian, 5x5x4000 = 10^5 rows";
    };
    {
      id = 103;
      name = "grid3d_1e6";
      matrix = lazy (grid3d 5 5 40000);
      descr = "3D grid Laplacian, 5x5x40000 = 10^6 rows";
    };
    {
      id = 104;
      name = "circuit_1e5";
      matrix = lazy (random_banded ~seed:23 ~n:100_000 ~band:16 ~density:0.15 ());
      descr = "circuit-style random SPD, 10^5 rows, irregular banded";
    };
  ]

let problem_by_name name =
  match List.find_opt (fun p -> p.name = name) suite with
  | Some p -> p
  | None -> List.find (fun p -> p.name = name) large_suite
