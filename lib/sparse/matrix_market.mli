(** Matrix Market coordinate-format reader/writer, covering the subset used
    by the SuiteSparse collection the paper draws its matrices from: [real]
    or [pattern] entries, [general] or [symmetric] storage. *)

type symmetry = General | Symmetric

exception Parse_error of string
(** Raised on malformed input, with a human-readable reason. *)

val of_lines : ?expand:bool -> string list -> Csc.t
(** Parse the lines of a Matrix Market file. Symmetric inputs store the
    lower triangle — an entry above the diagonal in a symmetric file
    raises {!Parse_error}; with [expand] (default true) the full matrix is
    reconstructed. Pattern entries read as [1.0]. *)

val of_string : ?expand:bool -> string -> Csc.t

val read : ?expand:bool -> string -> Csc.t
(** Read and parse a file. *)

val to_string : ?symmetric:bool -> Csc.t -> string
(** Render a matrix; with [symmetric] only the lower triangle is emitted
    under the [symmetric] qualifier. Raises [Invalid_argument] when
    [symmetric] is requested for a matrix that is not symmetric in both
    pattern and values (the dropped upper triangle would lose data). *)

val to_buffer : ?symmetric:bool -> Buffer.t -> Csc.t -> unit

val write : ?symmetric:bool -> string -> Csc.t -> unit
(** Write a file. *)
