(** Coordinate-format (COO) builder used to assemble matrices entry by
    entry before conversion to CSC. Duplicate entries are summed on
    conversion — the convention of FEM assembly and Matrix Market
    readers. *)

type t = {
  nrows : int;
  ncols : int;
  mutable len : int;
  mutable rows : int array;
  mutable cols : int array;
  mutable vals : float array;
}
(** Growable triplet buffer. The arrays are exposed for bulk readers (e.g.
    generators computing row sums); only the first [len] slots are valid. *)

val create : ?capacity:int -> nrows:int -> ncols:int -> unit -> t
(** Fresh empty builder for an [nrows] x [ncols] matrix. *)

val length : t -> int
(** Number of entries added so far (before duplicate summing). *)

val add : t -> int -> int -> float -> unit
(** [add t i j v] records entry [(i, j) = v]. Raises [Invalid_argument] when
    the coordinates are out of range. Duplicates are allowed and summed at
    conversion time. *)

val to_csc_arrays :
  ?insertion_threshold:int -> t -> int array * int array * float array
(** [(colptr, rowind, values)] of the equivalent CSC matrix: entries sorted
    by column then strictly by row, duplicates summed. Normally used via
    {!Csc.of_triplet}. Column segments longer than [insertion_threshold]
    (default 32) are sorted with a stable O(k log k) merge sort instead of
    insertion sort; both paths produce bitwise-identical output (duplicates
    are summed in insertion order either way), so the threshold is a pure
    performance knob — exposed mainly so tests can force each path. *)
