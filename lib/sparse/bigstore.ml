(* Packed index-segment storage on an int32 Bigarray.

   The symbolic stack produces many per-column index lists (row patterns /
   prune-sets). Storing them as a boxed [int array array] costs 8 bytes per
   entry plus a header and a pointer per segment; at 10^6 rows with ~26
   entries per pattern that roughly doubles the memory of the symbolic
   result. Here the segments live packed in one int32 Bigarray (4 bytes per
   entry, one allocation, off the OCaml heap) behind a CSC-style offset
   array.

   Caveat (why this is a *symbolic-phase* store): without flambda,
   [Bigarray.Array1.get] on an int32 kind boxes its result, so reading this
   store allocates. Symbolic analysis and compile steps may read it freely;
   zero-allocation numeric phases must not — kernels flatten what they need
   into plain [int array]s at compile time (see Cholesky_ref.Decoupled,
   Ldlt, Cholesky_leftlooking). *)

type data = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  ptr : int array; (* segment offsets, length nseg+1; ptr.(nseg) = total *)
  data : data; (* packed entries, length ptr.(nseg) *)
}

let segments t = Array.length t.ptr - 1
let total_length t = t.ptr.(segments t)
let segment_length t s = t.ptr.(s + 1) - t.ptr.(s)
let ptr t = t.ptr

let get t s i =
  Int32.to_int (Bigarray.Array1.unsafe_get t.data (t.ptr.(s) + i))

let iter_segment t s f =
  for q = t.ptr.(s) to t.ptr.(s + 1) - 1 do
    f (Int32.to_int (Bigarray.Array1.unsafe_get t.data q))
  done

(* Allocating copies, for oracles, tests and inspection sets. *)
let segment t s =
  let base = t.ptr.(s) in
  Array.init (segment_length t s) (fun i ->
      Int32.to_int (Bigarray.Array1.unsafe_get t.data (base + i)))

let to_arrays t = Array.init (segments t) (segment t)

(* Whole packed payload as a plain int array: the compile-time flattening
   step of kernels that need allocation-free reads in their numeric phase. *)
let flatten t =
  Array.init (total_length t) (fun q ->
      Int32.to_int (Bigarray.Array1.unsafe_get t.data q))

(* Approximate resident bytes: offsets (boxed ints) + packed payload. *)
let memory_bytes t =
  (8 * (Array.length t.ptr + 2)) + (4 * max 1 (total_length t))

module Builder = struct
  type store = t

  type t = {
    mutable nseg : int;
    mutable boundaries : int array; (* boundaries.(0..nseg) valid *)
    mutable data : data;
    mutable len : int;
  }

  let create ?(segments_hint = 16) ?(capacity = 1024) () =
    {
      nseg = 0;
      boundaries = Array.make (max 2 (segments_hint + 1)) 0;
      data =
        Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout
          (max 16 capacity);
      len = 0;
    }

  let reserve b extra =
    let need = b.len + extra in
    if need > Bigarray.Array1.dim b.data then begin
      let cap = ref (2 * Bigarray.Array1.dim b.data) in
      while !cap < need do
        cap := 2 * !cap
      done;
      let grown =
        Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout !cap
      in
      if b.len > 0 then
        Bigarray.Array1.blit
          (Bigarray.Array1.sub b.data 0 b.len)
          (Bigarray.Array1.sub grown 0 b.len);
      b.data <- grown
    end;
    if b.nseg + 1 >= Array.length b.boundaries then begin
      let grown = Array.make (2 * Array.length b.boundaries) 0 in
      Array.blit b.boundaries 0 grown 0 (b.nseg + 1);
      b.boundaries <- grown
    end

  (* Append the next segment from [src.(0 .. len-1)]. *)
  let append_segment b (src : int array) len =
    if len < 0 || len > Array.length src then
      invalid_arg "Bigstore.Builder.append_segment: bad length";
    reserve b len;
    for i = 0 to len - 1 do
      let v = src.(i) in
      if v < 0 || v > 0x7FFFFFFF then
        invalid_arg "Bigstore.Builder.append_segment: value out of int32";
      Bigarray.Array1.unsafe_set b.data (b.len + i) (Int32.of_int v)
    done;
    b.len <- b.len + len;
    b.nseg <- b.nseg + 1;
    b.boundaries.(b.nseg) <- b.len

  let finish b : store =
    {
      ptr = Array.sub b.boundaries 0 (b.nseg + 1);
      data =
        (if b.len = Bigarray.Array1.dim b.data then b.data
         else Bigarray.Array1.sub b.data 0 b.len);
    }
end

(* Convenience constructor from jagged arrays (tests, small callers). *)
let of_arrays (rows : int array array) : t =
  let b =
    Builder.create
      ~segments_hint:(Array.length rows)
      ~capacity:(Array.fold_left (fun acc r -> acc + Array.length r) 1 rows)
      ()
  in
  Array.iter (fun r -> Builder.append_segment b r (Array.length r)) rows;
  Builder.finish b
