(* Small numeric and array helpers shared across the sparse substrate. *)

let feq ?(eps = 1e-9) a b =
  let d = Float.abs (a -. b) in
  d <= eps || d <= eps *. Float.max (Float.abs a) (Float.abs b)

(* Relative residual ||a - b||_inf / max(1, ||a||_inf) over float arrays. *)
let max_rel_diff a b =
  if Array.length a <> Array.length b then invalid_arg "max_rel_diff: length";
  let scale = Array.fold_left (fun m x -> Float.max m (Float.abs x)) 1.0 a in
  let d = ref 0.0 in
  Array.iteri (fun i x -> d := Float.max !d (Float.abs (x -. b.(i)))) a;
  !d /. scale

let array_is_sorted_strict a lo hi =
  let rec go i = i >= hi - 1 || (a.(i) < a.(i + 1) && go (i + 1)) in
  go lo

(* Exclusive prefix sum: turns per-bucket counts into offsets, in place,
   returning the total. counts has length n+1; counts.(n) receives total. *)
let cumsum counts =
  let n = Array.length counts - 1 in
  let total = ref 0 in
  for i = 0 to n - 1 do
    let c = counts.(i) in
    counts.(i) <- !total;
    total := !total + c
  done;
  counts.(n) <- !total;
  !total

(* In-place ascending sort of a.(lo..hi-1). Monomorphic quicksort (no
   polymorphic compare, no allocation): median-of-three pivots, insertion
   sort below a small cutoff, recursion only on the smaller side so the
   stack stays O(log n) even on adversarial inputs. *)
let sort_int_range (a : int array) lo hi =
  let insertion lo hi =
    for p = lo + 1 to hi - 1 do
      let v = a.(p) in
      let q = ref p in
      while !q > lo && a.(!q - 1) > v do
        a.(!q) <- a.(!q - 1);
        decr q
      done;
      a.(!q) <- v
    done
  in
  let swap i j =
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  in
  let rec qsort lo hi =
    if hi - lo <= 16 then insertion lo hi
    else begin
      let mid = lo + ((hi - lo) / 2) in
      (* Median-of-three into a.(lo). *)
      if a.(mid) < a.(lo) then swap mid lo;
      if a.(hi - 1) < a.(lo) then swap (hi - 1) lo;
      if a.(hi - 1) < a.(mid) then swap (hi - 1) mid;
      let pivot = a.(mid) in
      let i = ref lo and j = ref (hi - 1) in
      while !i <= !j do
        while a.(!i) < pivot do
          incr i
        done;
        while a.(!j) > pivot do
          decr j
        done;
        if !i <= !j then begin
          swap !i !j;
          incr i;
          decr j
        end
      done;
      (* Recurse on the smaller partition first, loop on the larger. *)
      if !j + 1 - lo < hi - !i then begin
        qsort lo (!j + 1);
        qsort !i hi
      end
      else begin
        qsort !i hi;
        qsort lo (!j + 1)
      end
    end
  in
  if hi - lo > 1 then qsort lo hi

(* Stable ascending sort of keys.(lo..hi-1) carrying vals along; top-down
   merge sort through caller-provided scratch (each at least [hi] long).
   Stability matters to callers that sum duplicate keys in float
   arithmetic (Triplet compaction): equal keys must keep insertion order
   so both sort paths produce bitwise-identical sums. *)
let sort_int_float_pairs_stable (keys : int array) (vals : float array)
    ~(key_scratch : int array) ~(val_scratch : float array) lo hi =
  let rec msort lo hi =
    if hi - lo > 1 then begin
      let mid = lo + ((hi - lo) / 2) in
      msort lo mid;
      msort mid hi;
      let i = ref lo and j = ref mid and k = ref lo in
      while !i < mid && !j < hi do
        (* [<=] keeps the left run first on ties: stability. *)
        if keys.(!i) <= keys.(!j) then begin
          key_scratch.(!k) <- keys.(!i);
          val_scratch.(!k) <- vals.(!i);
          incr i
        end
        else begin
          key_scratch.(!k) <- keys.(!j);
          val_scratch.(!k) <- vals.(!j);
          incr j
        end;
        incr k
      done;
      let rest = mid - !i in
      Array.blit keys !i key_scratch !k rest;
      Array.blit vals !i val_scratch !k rest;
      Array.blit key_scratch lo keys lo (!k + rest - lo);
      Array.blit val_scratch lo vals lo (!k + rest - lo)
    end
  in
  msort lo hi

let int_array_equal a b =
  Array.length a = Array.length b
  &&
  let rec go i = i >= Array.length a || (a.(i) = b.(i) && go (i + 1)) in
  go 0

(* Deterministic splitmix64-based PRNG; avoids Stdlib.Random so every test,
   example and benchmark is reproducible across runs and OCaml versions. *)
module Rng = struct
  type t = { mutable state : int64 }

  let create seed = { state = Int64.of_int seed }

  let next_int64 t =
    let open Int64 in
    t.state <- add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  (* Uniform in [0, bound), by rejection sampling: a bare [r mod bound]
     over-weights small residues whenever bound does not divide the draw
     range. Draws land uniformly in [0, max_int] (62 random bits), so we
     reject the top [((max_int mod bound) + 1) mod bound] values; for the
     small bounds used here the rejection probability is ~bound/2^62, so
     streams from existing seeds are unchanged in practice. *)
  let rec int t bound =
    if bound <= 0 then invalid_arg "Rng.int: bound";
    let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
    let rem = ((max_int mod bound) + 1) mod bound in
    if r > max_int - rem then int t bound else r mod bound

  (* Uniform in [0, 1). *)
  let float t =
    let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
    r /. 9007199254740992.0 (* 2^53 *)

  (* Uniform in [lo, hi). *)
  let float_range t lo hi = lo +. ((hi -. lo) *. float t)

  (* Fisher-Yates shuffle of an int array prefix [0, len). *)
  let shuffle t a =
    for i = Array.length a - 1 downto 1 do
      let j = int t (i + 1) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done
end
