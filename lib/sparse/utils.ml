(* Small numeric and array helpers shared across the sparse substrate. *)

let feq ?(eps = 1e-9) a b =
  let d = Float.abs (a -. b) in
  d <= eps || d <= eps *. Float.max (Float.abs a) (Float.abs b)

(* Relative residual ||a - b||_inf / max(1, ||a||_inf) over float arrays. *)
let max_rel_diff a b =
  if Array.length a <> Array.length b then invalid_arg "max_rel_diff: length";
  let scale = Array.fold_left (fun m x -> Float.max m (Float.abs x)) 1.0 a in
  let d = ref 0.0 in
  Array.iteri (fun i x -> d := Float.max !d (Float.abs (x -. b.(i)))) a;
  !d /. scale

let array_is_sorted_strict a lo hi =
  let rec go i = i >= hi - 1 || (a.(i) < a.(i + 1) && go (i + 1)) in
  go lo

(* Exclusive prefix sum: turns per-bucket counts into offsets, in place,
   returning the total. counts has length n+1; counts.(n) receives total. *)
let cumsum counts =
  let n = Array.length counts - 1 in
  let total = ref 0 in
  for i = 0 to n - 1 do
    let c = counts.(i) in
    counts.(i) <- !total;
    total := !total + c
  done;
  counts.(n) <- !total;
  !total

let int_array_equal a b =
  Array.length a = Array.length b
  &&
  let rec go i = i >= Array.length a || (a.(i) = b.(i) && go (i + 1)) in
  go 0

(* Deterministic splitmix64-based PRNG; avoids Stdlib.Random so every test,
   example and benchmark is reproducible across runs and OCaml versions. *)
module Rng = struct
  type t = { mutable state : int64 }

  let create seed = { state = Int64.of_int seed }

  let next_int64 t =
    let open Int64 in
    t.state <- add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  (* Uniform in [0, bound), by rejection sampling: a bare [r mod bound]
     over-weights small residues whenever bound does not divide the draw
     range. Draws land uniformly in [0, max_int] (62 random bits), so we
     reject the top [((max_int mod bound) + 1) mod bound] values; for the
     small bounds used here the rejection probability is ~bound/2^62, so
     streams from existing seeds are unchanged in practice. *)
  let rec int t bound =
    if bound <= 0 then invalid_arg "Rng.int: bound";
    let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
    let rem = ((max_int mod bound) + 1) mod bound in
    if r > max_int - rem then int t bound else r mod bound

  (* Uniform in [0, 1). *)
  let float t =
    let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
    r /. 9007199254740992.0 (* 2^53 *)

  (* Uniform in [lo, hi). *)
  let float_range t lo hi = lo +. ((hi -. lo) *. float t)

  (* Fisher-Yates shuffle of an int array prefix [0, len). *)
  let shuffle t a =
    for i = Array.length a - 1 downto 1 do
      let j = int t (i + 1) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done
end
