(** Synthetic SPD matrix generators — the substitute for the paper's
    SuiteSparse matrices (Table 2); see DESIGN.md for the substitution
    argument. Each generator controls the properties the experiments
    depend on: problem size, fill, and the supernode-size distribution of
    the Cholesky factor. All generators are deterministic given their
    [seed] and return the FULL symmetric matrix in CSC form; apply
    {!Csc.lower} for factorization inputs. *)

val grid2d : ?stencil:[ `Five | `Nine ] -> ?shift:float -> int -> int -> Csc.t
(** [grid2d nx ny]: 2D grid Laplacian with a 5- or 9-point stencil and a
    [+shift] diagonal regularization (default [1e-2]), natural row-major
    ordering. Models the FEM/finite-difference matrices of Table 2
    (Dubcova*, parabolic_fem, ecology2, tmt_sym, Pres_Poisson). *)

val grid3d : ?shift:float -> int -> int -> int -> Csc.t
(** 3D 7-point grid Laplacian. *)

val banded : ?seed:int -> n:int -> band:int -> unit -> Csc.t
(** Dense-band SPD matrix of half-bandwidth [band] (diagonally dominant
    random values). *)

val block_tridiagonal : ?seed:int -> nblocks:int -> block:int -> unit -> Csc.t
(** Block-tridiagonal SPD with dense blocks and full coupling between
    consecutive blocks: the factor's columns nest within each block, giving
    supernodes of width [block]. *)

val clique_chain :
  ?seed:int -> n:int -> clique:int -> overlap:int -> unit -> Csc.t
(** Chain of overlapping dense cliques on consecutive index ranges — FEM
    assembly with contiguous node numbering; large supernodes
    (structural-mechanics character: cbuckle, msc23052). Requires
    [overlap < clique]. *)

val random_banded :
  ?seed:int -> n:int -> band:int -> density:float -> unit -> Csc.t
(** Random entries scattered inside a band: fill stays inside the band,
    supernodes stay tiny, the pattern is irregular — circuit / MEMS-like
    (gyro, thermomech_dM). *)

val random_spd : ?seed:int -> n:int -> avg_degree:int -> unit -> Csc.t
(** Unstructured random SPD graph with bounded average degree plus a
    connecting chain. Beware: natural-ordered factorization of such
    patterns can fill catastrophically; intended for small sizes. *)

val random_spd_dense : ?seed:int -> int -> Csc.t
(** Dense-ish random SPD ([B B^T + n I]) for property tests. The
    construction is dense O(n^3); raises [Invalid_argument] when [n]
    exceeds {!max_spd_dense_n} — use {!random_spd} or {!grid3d} at scale. *)

val max_spd_dense_n : int
(** Size bound of {!random_spd_dense} (4096). *)

val random_lower : ?seed:int -> n:int -> density:float -> unit -> Csc.t
(** Random lower-triangular matrix with a safe diagonal: direct input for
    triangular-solve tests. [density] is the below-diagonal fill
    probability. *)

val sparse_rhs : ?seed:int -> n:int -> fill:float -> unit -> Vector.sparse
(** Sparse right-hand side with the given fill fraction (the paper's
    setting keeps it below 5%). *)

(** One entry of the Table 2 suite. *)
type problem = {
  id : int;  (** 1..11, the paper's problem IDs *)
  name : string;  (** the paper's matrix name *)
  matrix : Csc.t Lazy.t;  (** built on first use *)
  descr : string;  (** structural character *)
}

val suite : problem list
(** The 11-problem stand-in for Table 2 (see {!Sympiler.Suite} for the
    prepared/ordered form used by the benchmarks). *)

val large_suite : problem list
(** Large-scale instances (ids 101+) behind [bench --only large] and the
    large-smoke test group: elongated 3D grid Laplacians at 10^4, 10^5 and
    10^6 rows (constant 5x5 cross-section, so work per row is constant and
    a linear stack shows a ~1.0 scaling exponent) plus a 10^5-row
    circuit-style random SPD. All matrices are lazy — nothing is built
    unless a large tier forces it. *)

val problem_by_name : string -> problem
(** Lookup across {!suite} and {!large_suite}; raises [Not_found]. *)
