(** Small numeric and array helpers shared across the sparse substrate. *)

val feq : ?eps:float -> float -> float -> bool
(** [feq ?eps a b] is true when [a] and [b] agree to absolute or relative
    tolerance [eps] (default [1e-9]). *)

val max_rel_diff : float array -> float array -> float
(** [max_rel_diff a b] is the infinity-norm difference between [a] and [b],
    scaled by [max 1 (norm_inf a)]. Raises [Invalid_argument] on length
    mismatch. *)

val array_is_sorted_strict : int array -> int -> int -> bool
(** [array_is_sorted_strict a lo hi] is true when [a.(lo..hi-1)] is strictly
    increasing. *)

val cumsum : int array -> int
(** Exclusive prefix sum in place: turns per-bucket counts of length [n+1]
    into bucket offsets, stores the total in the last slot and returns it.
    The standard colptr-building step of CSC construction. *)

val sort_int_range : int array -> int -> int -> unit
(** [sort_int_range a lo hi] sorts [a.(lo..hi-1)] ascending in place.
    Monomorphic quicksort (no polymorphic compare, no allocation, O(log n)
    stack): the sort behind {!Ereach} patterns and large workspace
    reorderings where [Array.sort compare] would box every comparison. *)

val sort_int_float_pairs_stable :
  int array ->
  float array ->
  key_scratch:int array ->
  val_scratch:float array ->
  int ->
  int ->
  unit
(** [sort_int_float_pairs_stable keys vals ~key_scratch ~val_scratch lo hi]
    sorts [keys.(lo..hi-1)] ascending, permuting [vals] identically.
    Stable merge sort (equal keys keep their input order), so callers that
    sum duplicate keys in float arithmetic get bitwise-identical results
    whichever sort path produced the segment. Scratch arrays must be at
    least [hi] long. *)

val int_array_equal : int array -> int array -> bool
(** Structural equality of int arrays. *)

(** Deterministic splitmix64 pseudo-random generator. Every generator, test
    and benchmark in this repository derives its randomness from here, so
    all results are reproducible across runs and OCaml versions (unlike
    [Stdlib.Random], whose algorithm changed between releases). *)
module Rng : sig
  type t

  val create : int -> t
  (** [create seed] starts a stream determined entirely by [seed]. *)

  val next_int64 : t -> int64
  (** Next raw 64-bit state-mixed value. *)

  val int : t -> int -> int
  (** [int t bound] is uniform in [\[0, bound)]. Raises on [bound <= 0]. *)

  val float : t -> float
  (** Uniform in [\[0, 1)]. *)

  val float_range : t -> float -> float -> float
  (** [float_range t lo hi] is uniform in [\[lo, hi)]. *)

  val shuffle : t -> int array -> unit
  (** In-place Fisher-Yates shuffle. *)
end
