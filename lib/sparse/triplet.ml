(* Coordinate-format (COO) builder used to assemble matrices entry by entry
   before conversion to CSC. Duplicate entries are summed on conversion, the
   convention used by FEM assembly and by Matrix Market readers. *)

type t = {
  nrows : int;
  ncols : int;
  mutable len : int;
  mutable rows : int array;
  mutable cols : int array;
  mutable vals : float array;
}

let create ?(capacity = 16) ~nrows ~ncols () =
  if nrows < 0 || ncols < 0 then invalid_arg "Triplet.create: negative dims";
  let capacity = max capacity 1 in
  {
    nrows;
    ncols;
    len = 0;
    rows = Array.make capacity 0;
    cols = Array.make capacity 0;
    vals = Array.make capacity 0.0;
  }

let length t = t.len

let ensure_capacity t =
  if t.len >= Array.length t.rows then begin
    let cap = 2 * Array.length t.rows in
    let grow a fill =
      let b = Array.make cap fill in
      Array.blit a 0 b 0 t.len;
      b
    in
    t.rows <- grow t.rows 0;
    t.cols <- grow t.cols 0;
    t.vals <- grow t.vals 0.0
  end

let add t i j v =
  if i < 0 || i >= t.nrows || j < 0 || j >= t.ncols then
    invalid_arg
      (Printf.sprintf "Triplet.add: entry (%d,%d) out of %dx%d" i j t.nrows
         t.ncols);
  ensure_capacity t;
  t.rows.(t.len) <- i;
  t.cols.(t.len) <- j;
  t.vals.(t.len) <- v;
  t.len <- t.len + 1

(* Counting-sort by column then a stable per-column sort by row, summing
   duplicates. Produces the (colptr, rowind, values) arrays of a CSC matrix
   with row indices strictly increasing within each column.

   Segments at or below [insertion_threshold] use insertion sort (they are
   short and often nearly sorted after assembly); longer segments — the
   dense-ish columns clique_chain / block_tridiagonal produce at scale,
   where insertion sort is quadratic per column — fall back to a stable
   O(k log k) merge sort. Both paths are stable, so duplicate entries are
   summed in insertion order either way and the resulting CSC arrays are
   bitwise-identical whichever path ran (pinned by a qcheck test). *)
let to_csc_arrays ?(insertion_threshold = 32) t =
  let n = t.ncols in
  let counts = Array.make (n + 1) 0 in
  for k = 0 to t.len - 1 do
    counts.(t.cols.(k)) <- counts.(t.cols.(k)) + 1
  done;
  let _total = Utils.cumsum counts in
  let colptr = Array.copy counts in
  let rowind = Array.make t.len 0 in
  let values = Array.make t.len 0.0 in
  let next = Array.make n 0 in
  Array.blit colptr 0 next 0 n;
  for k = 0 to t.len - 1 do
    let j = t.cols.(k) in
    let p = next.(j) in
    rowind.(p) <- t.rows.(k);
    values.(p) <- t.vals.(k);
    next.(j) <- p + 1
  done;
  (* Merge-sort scratch, allocated once on the first long segment. *)
  let scratch = ref None in
  let get_scratch () =
    match !scratch with
    | Some s -> s
    | None ->
        let s = (Array.make t.len 0, Array.make t.len 0.0) in
        scratch := Some s;
        s
  in
  for j = 0 to n - 1 do
    let lo = colptr.(j) and hi = colptr.(j + 1) in
    if hi - lo <= insertion_threshold then
      for p = lo + 1 to hi - 1 do
        let r = rowind.(p) and v = values.(p) in
        let q = ref p in
        while !q > lo && rowind.(!q - 1) > r do
          rowind.(!q) <- rowind.(!q - 1);
          values.(!q) <- values.(!q - 1);
          decr q
        done;
        rowind.(!q) <- r;
        values.(!q) <- v
      done
    else begin
      let key_scratch, val_scratch = get_scratch () in
      Utils.sort_int_float_pairs_stable rowind values ~key_scratch
        ~val_scratch lo hi
    end
  done;
  (* Compact duplicates, summing their values. *)
  let out = ref 0 in
  let new_colptr = Array.make (n + 1) 0 in
  for j = 0 to n - 1 do
    new_colptr.(j) <- !out;
    let lo = colptr.(j) and hi = colptr.(j + 1) in
    let p = ref lo in
    while !p < hi do
      let r = rowind.(!p) in
      let v = ref 0.0 in
      while !p < hi && rowind.(!p) = r do
        v := !v +. values.(!p);
        incr p
      done;
      rowind.(!out) <- r;
      values.(!out) <- !v;
      incr out
    done
  done;
  new_colptr.(n) <- !out;
  if !out = t.len then (new_colptr, rowind, values)
  else (new_colptr, Array.sub rowind 0 !out, Array.sub values 0 !out)
