(** Permutations, in the new-index -> old-index convention: applying [p] to
    a vector [x] yields [y] with [y.(k) = x.(p.(k))] (i.e. [y = P x] where
    row [k] of [P] has its 1 in column [p.(k)]). Fill-reducing orderings in
    {!Ordering} return permutations in this convention. *)

type t = int array

val identity : int -> t

val is_valid : t -> bool
(** True when the array is a bijection on [\[0, n)]. *)

val inverse : t -> t
(** [inverse p] satisfies [(inverse p).(p.(k)) = k]. *)

val apply_vec : t -> float array -> float array
(** [apply_vec p x] is [y] with [y.(k) = x.(p.(k))]. *)

val apply_inv_vec : t -> float array -> float array
(** Inverse application: returns [y] with [y.(p.(k)) = x.(k)]. *)

val compose : t -> t -> t
(** [(compose p q).(k) = q.(p.(k))]: apply [q] after [p]'s relabeling (used
    to chain a fill-reducing ordering with an etree postorder). *)

val symmetric_permute : t -> Csc.t -> Csc.t
(** [symmetric_permute p a] is [P A P^T] for a square matrix stored in full
    (not triangular) form: entry [(k, j)] of the result is
    [a.(p.(k), p.(j))]. Raises [Invalid_argument] when [p] is not a valid
    permutation of [\[0, n)] (checked with {!is_valid}, never an
    out-of-bounds crash). *)

val permute_pattern : t -> Csc.t -> Csc.t * int array
(** [permute_pattern p a] is [(b, map)] with [b = P A P^T] and [map] a
    gather map: entry [q] of [b] reads its value from
    [a.values.(map.(q))]. Refreshing [b.values] with the gather is the
    allocation-free way to track value changes of [a] under a fixed
    permutation (the ordered plans' steady state). Raises
    [Invalid_argument] on a non-square matrix or invalid permutation. *)

val permute_lower : t -> Csc.t -> Csc.t * int array
(** [permute_lower p a_lower] is [(b, map)] where [b] is
    [lower(P sym(A) P^T)] computed directly from lower-triangular storage:
    each stored entry [(i, j)] of [a_lower] lands at
    [(max (pinv i) (pinv j), min (pinv i) (pinv j))]. Same gather-map
    contract as {!permute_pattern}. Raises [Invalid_argument] when the
    input is not lower triangular or the permutation is invalid. *)

val random : Utils.Rng.t -> int -> t
(** Uniformly random permutation (deterministic given the RNG state). *)
