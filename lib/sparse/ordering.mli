(** Fill-reducing and bandwidth-reducing orderings. CHOLMOD and Eigen apply
    a fill-reducing ordering (AMD) in their default configurations; these
    are the portable stand-ins used when preparing the benchmark suite.
    Inputs are full symmetric matrices; outputs use the {!Perm} new->old
    convention. *)

val adjacency : Csc.t -> int list array
(** Sorted adjacency lists of the symmetric pattern, self-loops removed. *)

val rcm : Csc.t -> Perm.t
(** Reverse Cuthill-McKee: BFS from a pseudo-peripheral vertex per
    connected component, neighbors in increasing-degree order, reversed.
    The pseudo-peripheral search starts from a minimum-degree vertex of
    each component and breaks farthest-level ties by minimum degree
    (George-Liu). Reduces bandwidth. *)

val min_degree : Csc.t -> Perm.t
(** Greedy minimum-degree on the elimination graph (no quotient-graph
    machinery, so quadratic-ish in the worst case). Exact current degrees:
    kept as the quality oracle {!amd} is measured against. *)

val amd : Csc.t -> Perm.t
(** Approximate minimum degree (Amestoy-Davis-Duff) on a quotient graph:
    supervariables, mass elimination, element absorption, and the
    external-degree approximation with iteration-stamped workspaces. Near
    linear-time in practice and the default fill-reducing ordering of the
    compile pipeline; fill quality tracks {!min_degree} closely (the bench
    [--only ordering] section checks the tolerance). *)

val bandwidth : Csc.t -> int
(** Maximum [|i - j|] over stored entries. *)
