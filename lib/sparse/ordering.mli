(** Fill-reducing and bandwidth-reducing orderings. CHOLMOD and Eigen apply
    a fill-reducing ordering (AMD) in their default configurations; these
    are the portable stand-ins used when preparing the benchmark suite.
    Inputs are full symmetric matrices; outputs use the {!Perm} new->old
    convention. *)

val adjacency_csr : Csc.t -> int array * int array
(** [(ptr, ind)]: CSR adjacency of the symmetric pattern, self-loops
    removed. Vertex [v]'s neighbors are [ind.(ptr.(v) .. ptr.(v+1)-1)], in
    ascending order. O(n + nnz), two flat arrays — the representation the
    ordering algorithms traverse (no per-vertex boxed lists). *)

val adjacency : Csc.t -> int list array
(** Sorted adjacency lists of the symmetric pattern, self-loops removed
    (list view of {!adjacency_csr}; for oracles and tests). *)

val rcm : Csc.t -> Perm.t
(** Reverse Cuthill-McKee: BFS from a pseudo-peripheral vertex per
    connected component, neighbors in increasing-degree order, reversed.
    The pseudo-peripheral search starts from a minimum-degree vertex of
    each component and breaks farthest-level ties by minimum degree
    (George-Liu). Reduces bandwidth. BFS sweeps share one flat-array
    queue/distance workspace reset via the visited prefix, so the whole
    ordering is O(n + nnz) per pseudo-peripheral iteration even on
    many-component matrices. *)

val min_degree : Csc.t -> Perm.t
(** Greedy minimum-degree on the elimination graph (no quotient-graph
    machinery, so quadratic-ish in the worst case). Exact current degrees:
    kept as the quality oracle {!amd} is measured against. *)

val amd : Csc.t -> Perm.t
(** Approximate minimum degree (Amestoy-Davis-Duff) on a quotient graph:
    supervariables, mass elimination, element absorption, and the
    external-degree approximation with iteration-stamped workspaces. Near
    linear-time in practice and the default fill-reducing ordering of the
    compile pipeline; fill quality tracks {!min_degree} closely (the bench
    [--only ordering] section checks the tolerance). *)

val bandwidth : Csc.t -> int
(** Maximum [|i - j|] over stored entries. *)
