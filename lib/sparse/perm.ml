(* Permutations. Convention: a permutation [p] maps new index -> old index,
   so applying p to a vector x gives y with y.(k) = x.(p.(k)), i.e. y = P x
   where row k of P has its 1 in column p.(k). Fill-reducing orderings in
   [Ordering] return permutations in this convention. *)

type t = int array

let identity n = Array.init n (fun i -> i)

let is_valid p =
  let n = Array.length p in
  let seen = Array.make n false in
  let ok = ref true in
  Array.iter
    (fun i ->
      if i < 0 || i >= n || seen.(i) then ok := false else seen.(i) <- true)
    p;
  !ok

let inverse p =
  let n = Array.length p in
  let q = Array.make n 0 in
  for k = 0 to n - 1 do
    q.(p.(k)) <- k
  done;
  q

(* y.(k) = x.(p.(k)) *)
let apply_vec p x =
  if Array.length p <> Array.length x then invalid_arg "Perm.apply_vec";
  Array.map (fun i -> x.(i)) p

(* Inverse application: y.(p.(k)) = x.(k). *)
let apply_inv_vec p x =
  if Array.length p <> Array.length x then invalid_arg "Perm.apply_inv_vec";
  let y = Array.make (Array.length x) 0.0 in
  Array.iteri (fun k i -> y.(i) <- x.(k)) p;
  y

let compose p q = Array.map (fun i -> q.(i)) p

(* B = P A P^T for a square matrix stored in full (not triangular) form:
   B.(knew, jnew) = A.(p.(knew), p.(jnew)). *)
let symmetric_permute p (a : Csc.t) =
  if a.Csc.nrows <> a.Csc.ncols then invalid_arg "Perm.symmetric_permute";
  let n = a.Csc.nrows in
  if Array.length p <> n then
    invalid_arg "Perm.symmetric_permute: permutation length does not match n";
  if not (is_valid p) then
    invalid_arg "Perm.symmetric_permute: not a valid permutation of [0, n)";
  let pinv = inverse p in
  let tr = Triplet.create ~nrows:n ~ncols:n () in
  Csc.iter a (fun i j v -> Triplet.add tr pinv.(i) pinv.(j) v);
  Csc.of_triplet tr

(* Shared builder for the two permute-with-gather-map operations below:
   [coords] lists one (new row, new col, source entry) triple per stored
   entry; the result's entry [q] reads its value from
   [values.(map.(q))] of the source matrix. Column-major counting sort
   followed by an in-column sort keeps rows strictly increasing. *)
let build_permuted ~n (coords : (int * int * int) array) =
  let nnz = Array.length coords in
  let colptr = Array.make (n + 1) 0 in
  Array.iter (fun (_, c, _) -> colptr.(c + 1) <- colptr.(c + 1) + 1) coords;
  for c = 0 to n - 1 do
    colptr.(c + 1) <- colptr.(c + 1) + colptr.(c)
  done;
  let next = Array.copy colptr in
  let rowind = Array.make nnz 0 and map = Array.make nnz 0 in
  Array.iter
    (fun (r, c, q) ->
      let slot = next.(c) in
      next.(c) <- slot + 1;
      rowind.(slot) <- r;
      map.(slot) <- q)
    coords;
  (* Sort each column by row, carrying the map along (compile-time code;
     columns are short, insertion sort suffices and allocates nothing). *)
  for c = 0 to n - 1 do
    for k = colptr.(c) + 1 to colptr.(c + 1) - 1 do
      let r = rowind.(k) and m = map.(k) in
      let i = ref (k - 1) in
      while !i >= colptr.(c) && rowind.(!i) > r do
        rowind.(!i + 1) <- rowind.(!i);
        map.(!i + 1) <- map.(!i);
        decr i
      done;
      rowind.(!i + 1) <- r;
      map.(!i + 1) <- m
    done
  done;
  let values = Array.make nnz 0.0 in
  (Csc.create ~nrows:n ~ncols:n ~colptr ~rowind ~values, map)

let check_square_perm ~who p (a : Csc.t) =
  if a.Csc.nrows <> a.Csc.ncols then invalid_arg who;
  if Array.length p <> a.Csc.ncols then
    invalid_arg (who ^ ": permutation length does not match n");
  if not (is_valid p) then
    invalid_arg (who ^ ": not a valid permutation of [0, n)")

(* B = P A P^T with a gather map: entry [q] of B takes its value from
   [a.values.(map.(q))], so a steady-state caller can refresh B's values
   with one allocation-free gather when A's values change. *)
let permute_pattern p (a : Csc.t) : Csc.t * int array
    =
  check_square_perm ~who:"Perm.permute_pattern" p a;
  let pinv = inverse p in
  let coords = Array.make (Csc.nnz a) (0, 0, 0) in
  let q = ref 0 in
  Csc.iter a (fun i j _ ->
      coords.(!q) <- (pinv.(i), pinv.(j), !q);
      incr q);
  let b, map = build_permuted ~n:a.Csc.ncols coords in
  Array.iteri (fun k m -> b.Csc.values.(k) <- a.Csc.values.(m)) map;
  (b, map)

(* lower(P sym(A) P^T) from lower(A), with the same gather-map contract:
   each stored lower entry (i, j), i >= j, lands at
   (max(pinv i, pinv j), min(pinv i, pinv j)) — the permuted coordinates
   folded back into the lower triangle. *)
let permute_lower p (a_lower : Csc.t) : Csc.t * int array =
  check_square_perm ~who:"Perm.permute_lower" p a_lower;
  let pinv = inverse p in
  let coords = Array.make (Csc.nnz a_lower) (0, 0, 0) in
  let q = ref 0 in
  Csc.iter a_lower (fun i j _ ->
      if i < j then
        invalid_arg "Perm.permute_lower: input is not lower triangular";
      let r = pinv.(i) and c = pinv.(j) in
      coords.(!q) <- ((max r c), (min r c), !q);
      incr q);
  let b, map = build_permuted ~n:a_lower.Csc.ncols coords in
  Array.iteri (fun k m -> b.Csc.values.(k) <- a_lower.Csc.values.(m)) map;
  (b, map)

let random rng n =
  let p = identity n in
  Utils.Rng.shuffle rng p;
  p
