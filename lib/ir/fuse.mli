open Sympiler_sparse

(** Cross-stage fusion: one AST kernel for a whole pipeline's vector chain,
    so the emitted C crosses stage boundaries the way the compiled plan
    does — one parameter list, shared constant sets, no intermediate
    vectors between stages. The level schedule (computed once by the
    pipeline's shared analysis) drives both triangular sweeps: forward
    substitution runs the levels ascending, the transposed solve runs them
    descending, in one kernel body with no boundary between them. *)

type stage =
  | Lower  (** forward substitution on the chain's L *)
  | Ltrans  (** transposed substitution on the chain's L *)
  | Diag  (** [x /= D] (runtime parameter D) *)
  | Spmv  (** [x <- A x] on the symmetrized full pattern *)
  | Residual  (** [r = b - A x] — SpMV fused into the residual update *)

val chain :
  ?vectorize:bool ->
  kname:string ->
  level_ptr:int array ->
  level_cols:int array ->
  ?full:Csc.t ->
  Csc.t ->
  stage list ->
  Ast.kernel
(** Fuse a stage chain over lower-triangular [l] into one kernel: bodies
    back to back in one flat scope, parameters and constants attached
    once. [?full] (the symmetrized full pattern) is required when the
    chain contains [Spmv] or [Residual]; raises [Invalid_argument]
    otherwise. *)

val solve_pair :
  ?vectorize:bool ->
  level_ptr:int array ->
  level_cols:int array ->
  Csc.t ->
  Ast.kernel
(** The minimum promised fusion: L and L^T trisolves of a factor+solve
    pair merged into one level-scheduled pass — kernel
    [pipeline_apply(Lx, x)], forward levels then reversed levels, level
    sets baked in as constants. *)

val concat : kname:string -> Ast.kernel list -> Ast.kernel
(** Concatenate kernels: union of parameters (deduplicated by name) and
    constants (deduplicated when contents agree), bodies in one flat
    scope. Raises [Invalid_argument] on a name fused with two types or two
    contents. *)
