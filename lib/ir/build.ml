open Sympiler_sparse

(* Lowering: turn a numerical method plus a specific sparsity structure into
   the initial annotated AST of Figure 2a. The matrix pattern (colptr /
   rowind) is compile-time data and is baked into the kernel as constant
   arrays; only numeric values (Lx, x, ...) remain runtime parameters. *)

open Ast

(* Initial AST for sparse triangular solve L x = b (Figure 2a). [x] holds b
   on entry and the solution on exit.

     for j0 in 0..n:                       <- VI-Prune & VS-Block sites
       x[j0] /= Lx[Lp[j0]]
       for p in Lp[j0]+1 .. Lp[j0+1]:
         x[Li[p]] -= Lx[p] * x[j0]
*)
let lower_trisolve (l : Csc.t) : kernel =
  let n = l.Csc.ncols in
  let body =
    [
      for_ ~annots:[ Vi_prune_site; Vs_block_site ] "j0" (int_ 0) (int_ n)
        [
          Update (Arr ("x", var "j0"), Div, Load ("Lx", Idx ("Lp", var "j0")));
          for_ "p"
            (Idx ("Lp", var "j0") +: int_ 1)
            (Idx ("Lp", var "j0" +: int_ 1))
            [
              Update
                ( Arr ("x", Idx ("Li", var "p")),
                  Sub,
                  Load ("Lx", var "p") *: Load ("x", var "j0") );
            ];
        ];
    ]
  in
  {
    kname = "trisolve";
    params = [ ("Lx", Float_array); ("x", Float_array) ];
    consts = [ ("Lp", l.Csc.colptr); ("Li", l.Csc.rowind) ];
    body;
  }

(* Left-looking sparse Cholesky (the pseudo-code of Figure 4) with VI-Prune
   already applied, as in the paper's Cholesky baseline: the update loop
   iterates over the precomputed prune-set (row patterns of L) instead of
   all columns, and every symbolic quantity — L's pattern, the position
   rowPos of L(j,r) inside column r — is baked in as constant data.

   Runtime parameters: Ax (values of lower(A)), Lx (output), f (zeroed
   workspace of size n).

     for j in 0..n:
       for p in Ap[j] .. Ap[j+1]:              -- f = A(:,j)
         f[Ai[p]] = Ax[p]
       for ridx in rowPtr[j] .. rowPtr[j+1]:   -- update (pruned)
         for p in rowPos[ridx] .. Lp[rowSet[ridx]+1]:
           f[Li[p]] -= Lx[p] * Lx[rowPos[ridx]]
       Lx[Lp[j]] = sqrt(f[j])                  -- diagonal
       f[j] = 0
       for p in Lp[j]+1 .. Lp[j+1]:            -- off-diagonal
         Lx[p] = f[Li[p]] / Lx[Lp[j]]
         f[Li[p]] = 0
*)
let lower_cholesky (a_lower : Csc.t) : kernel =
  let fill = Sympiler_symbolic.Fill_pattern.analyze a_lower in
  let n = fill.Sympiler_symbolic.Fill_pattern.n in
  let lp = fill.Sympiler_symbolic.Fill_pattern.l_pattern.Csc.colptr in
  let li = fill.Sympiler_symbolic.Fill_pattern.l_pattern.Csc.rowind in
  (* Flatten the prune-sets and compute rowPos.(ridx): the position of entry
     L(j, rowSet.(ridx)) in column rowSet.(ridx)'s storage. The packed store
     already carries the offsets. *)
  let row_ptr =
    Array.copy (Sympiler_symbolic.Fill_pattern.row_ptr fill)
  in
  let row_set = Array.make (max 1 row_ptr.(n)) 0 in
  let row_pos = Array.make (max 1 row_ptr.(n)) 0 in
  let fillcount = Array.make n 0 in
  for j = 0 to n - 1 do
    let t = ref 0 in
    Sympiler_symbolic.Fill_pattern.iter_row_pattern fill j (fun r ->
        fillcount.(r) <- fillcount.(r) + 1;
        row_set.(row_ptr.(j) + !t) <- r;
        row_pos.(row_ptr.(j) + !t) <- lp.(r) + fillcount.(r);
        incr t)
  done;
  let body =
    [
      for_ ~annots:[ Vs_block_site ] "j" (int_ 0) (int_ n)
        [
          Comment "gather f = A(:,j)";
          for_ "p" (Idx ("Ap", var "j")) (Idx ("Ap", var "j" +: int_ 1))
            [ Assign (Arr ("f", Idx ("Ai", var "p")), Load ("Ax", var "p")) ];
          Comment "update phase over the prune-set (VI-Pruned)";
          for_ ~annots:[ Pruned ] "ridx" (Idx ("rowPtr", var "j"))
            (Idx ("rowPtr", var "j" +: int_ 1))
            [
              for_ "p" (Idx ("rowPos", var "ridx"))
                (Idx ("Lp", Idx ("rowSet", var "ridx") +: int_ 1))
                [
                  Update
                    ( Arr ("f", Idx ("Li", var "p")),
                      Sub,
                      Load ("Lx", var "p")
                      *: Load ("Lx", Idx ("rowPos", var "ridx")) );
                ];
            ];
          Comment "column factorization";
          Assign (Arr ("Lx", Idx ("Lp", var "j")), Sqrt (Load ("f", var "j")));
          Assign (Arr ("f", var "j"), Float_lit 0.0);
          for_ "p"
            (Idx ("Lp", var "j") +: int_ 1)
            (Idx ("Lp", var "j" +: int_ 1))
            [
              Assign
                ( Arr ("Lx", var "p"),
                  Load ("f", Idx ("Li", var "p"))
                  /: Load ("Lx", Idx ("Lp", var "j")) );
              Assign (Arr ("f", Idx ("Li", var "p")), Float_lit 0.0);
            ];
        ];
    ]
  in
  {
    kname = "cholesky";
    params = [ ("Ax", Float_array); ("Lx", Float_array); ("f", Float_array) ];
    consts =
      [
        ("Ap", a_lower.Csc.colptr);
        ("Ai", a_lower.Csc.rowind);
        ("Lp", lp);
        ("Li", li);
        ("rowPtr", row_ptr);
        ("rowSet", row_set);
        ("rowPos", row_pos);
      ];
    body;
  }
