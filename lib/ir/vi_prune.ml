open Ast

(* Variable Iteration Space Pruning (Figure 3 top): rewrite the loop marked
   [Vi_prune_site] from

     for (Ik < m) { ... a[idx(..., Ik, ...)] ... }

   into

     for (Ip < pruneSetSize) { Ik = pruneSet[Ip]; ... }

   The prune set is compile-time data (an inspection set), so it is added to
   the kernel's constant pool. When [peel] positions are supplied (decided
   from sparsity-related parameters such as column counts, §2.4), the new
   loop is annotated for the later peeling stage; iteration counts below
   [unroll_threshold] get an unroll hint and [vectorize] adds the
   vectorization hint for the code generator. *)

(* The pruned-loop index counter is scoped to one [apply] call (passed down
   as [counter]): a global counter made emitted C depend on how many kernels
   had been compiled before, so recompiling the same kernel produced
   different variable names. *)
let fresh_index counter =
  incr counter;
  Printf.sprintf "p%d" !counter

let rec transform_stmt ~counter ~set_name ~set ~hints s =
  match s with
  | For l when List.mem Vi_prune_site l.annots ->
      let ip = fresh_index counter in
      let body =
        Let (l.index, Idx (set_name, Var ip))
        :: List.map (transform_stmt ~counter ~set_name ~set ~hints) l.body
      in
      let annots =
        Pruned :: hints
        @ List.filter (fun a -> a <> Vi_prune_site) l.annots
      in
      For
        {
          index = ip;
          lo = Int_lit 0;
          hi = Int_lit (Array.length set);
          body;
          annots;
        }
  | For l -> For { l with body = List.map (transform_stmt ~counter ~set_name ~set ~hints) l.body }
  | If (c, a, b) ->
      If
        ( c,
          List.map (transform_stmt ~counter ~set_name ~set ~hints) a,
          List.map (transform_stmt ~counter ~set_name ~set ~hints) b )
  | Let _ | Assign _ | Update _ | Comment _ -> s

(* Apply VI-Prune to the kernel using inspection set [set] (e.g. the
   reach-set for triangular solve). [peel] lists iteration positions of the
   pruned loop to peel later; both hints are recorded as annotations. *)
let apply ?(set_name = "pruneSet") ?(peel = []) ?(vectorize = false)
    (set : int array) (k : kernel) : kernel =
  let hints =
    (if peel = [] then [] else [ Peel peel ])
    @ (if vectorize then [ Vectorize ] else [])
  in
  let counter = ref 0 in
  {
    k with
    consts = (set_name, set) :: k.consts;
    body = List.map (transform_stmt ~counter ~set_name ~set ~hints) k.body;
  }

(* Decide which iterations of the pruned triangular-solve loop to peel: the
   paper's Figure 1e peels iterations whose column count exceeds a
   threshold, replacing them with straight-line specialized code. *)
let peel_positions ~(col_nnz : int -> int) ~(threshold : int)
    (set : int array) : int list =
  let acc = ref [] in
  Array.iteri (fun pos j -> if col_nnz j > threshold then acc := pos :: !acc) set;
  List.rev !acc
