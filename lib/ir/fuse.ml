open Sympiler_sparse
open Ast

(* Cross-stage fusion: build one AST kernel for a whole pipeline's vector
   chain, so the emitted C crosses stage boundaries the way the compiled
   plan does — one parameter list, shared constant sets, no intermediate
   vectors between stages. The level schedule (one more inspection set,
   computed once by the pipeline's shared analysis) drives both triangular
   sweeps: forward substitution runs the levels ascending, the transposed
   solve runs them descending, and the two sweeps sit in one kernel body
   with no boundary between them.

   Stage builders emit bodies over well-known names (Lx/Lp/Li/x for the
   triangular factor, Avx/Afp/Afi/y for SpMV, D for the diagonal,
   level_ptr/level_cols/fuse_meta for the schedule); [chain] concatenates
   them into one flat scope and attaches the shared parameter list and
   constant sets once. Each builder takes a [tag] so scalar/loop names
   stay distinct inside that scope. *)

let vec v = if v then [ Vectorize ] else []

(* Forward substitution L x = x scheduled by levels: columns within a level
   are independent, so the per-level column loop is the vectorizable
   site. *)
let lower_body ~vectorize ~tag : stmt list =
  let lv = "lv" ^ tag and q = "q" ^ tag and j = "j" ^ tag and p = "p" ^ tag in
  [
    for_ lv (int_ 0) (Idx ("fuse_meta", int_ 0))
      [
        for_ ~annots:(vec vectorize) q
          (Idx ("level_ptr", var lv))
          (Idx ("level_ptr", var lv +: int_ 1))
          [
            Let (j, Idx ("level_cols", var q));
            Update (Arr ("x", var j), Div, Load ("Lx", Idx ("Lp", var j)));
            for_ p
              (Idx ("Lp", var j) +: int_ 1)
              (Idx ("Lp", var j +: int_ 1))
              [
                Update
                  ( Arr ("x", Idx ("Li", var p)),
                    Sub,
                    Load ("Lx", var p) *: Load ("x", var j) );
              ];
          ];
      ];
  ]

(* Transposed solve L^T x = x: the same levels run descending, columns
   descending within each level (ascending loops with reversed indices —
   the AST has no downward [For]). *)
let ltrans_body ~vectorize ~tag : stmt list =
  let lv = "lvt" ^ tag
  and lvr = "lvr" ^ tag
  and q = "qt" ^ tag
  and j = "jt" ^ tag
  and p = "pt" ^ tag
  and s = "st" ^ tag in
  [
    for_ lv (int_ 0) (Idx ("fuse_meta", int_ 0))
      [
        Let (lvr, Idx ("fuse_meta", int_ 0) -: int_ 1 -: var lv);
        for_ ~annots:(vec vectorize) q (int_ 0)
          (Idx ("level_ptr", var lvr +: int_ 1) -: Idx ("level_ptr", var lvr))
          [
            Let
              ( j,
                Idx
                  ( "level_cols",
                    Idx ("level_ptr", var lvr +: int_ 1) -: int_ 1 -: var q ) );
            Let (s, Load ("x", var j));
            for_ p
              (Idx ("Lp", var j) +: int_ 1)
              (Idx ("Lp", var j +: int_ 1))
              [
                Update
                  ( Scalar s,
                    Sub,
                    Load ("Lx", var p) *: Load ("x", Idx ("Li", var p)) );
              ];
            Assign (Arr ("x", var j), Var s /: Load ("Lx", Idx ("Lp", var j)));
          ];
      ];
  ]

(* Diagonal solve x /= D. *)
let diag_body ~vectorize ~tag (n : int) : stmt list =
  let i = "id" ^ tag in
  [
    for_ ~annots:(vec vectorize) i (int_ 0) (int_ n)
      [ Update (Arr ("x", var i), Div, Load ("D", var i)) ];
  ]

(* y = A x then x <- y, expressed without an intermediate copy-back loop by
   alternating would need ping-pong buffers; the emitted form computes y
   and swaps by copying — still one kernel, one traversal for the product
   and one for the swap. *)
let spmv_body ~vectorize ~tag (n : int) : stmt list =
  let i = "iy" ^ tag
  and j = "jy" ^ tag
  and p = "py" ^ tag
  and xj = "xjy" ^ tag
  and i2 = "iz" ^ tag in
  [
    for_ ~annots:(vec vectorize) i (int_ 0) (int_ n)
      [ Assign (Arr ("y", var i), Float_lit 0.0) ];
    for_ j (int_ 0) (int_ n)
      [
        Let (xj, Load ("x", var j));
        for_ ~annots:(vec vectorize) p
          (Idx ("Afp", var j))
          (Idx ("Afp", var j +: int_ 1))
          [
            Update
              (Arr ("y", Idx ("Afi", var p)), Add, Load ("Avx", var p) *: Var xj);
          ];
      ];
    for_ ~annots:(vec vectorize) i2 (int_ 0) (int_ n)
      [ Assign (Arr ("x", var i2), Load ("y", var i2)) ];
  ]

(* SpMV fused into the residual update: r = b - A x in one sweep, no
   intermediate y = A x vector (the CG-loop fusion site). *)
let residual_body ~vectorize ~tag (n : int) : stmt list =
  let i = "ir" ^ tag and j = "jr" ^ tag and p = "pr" ^ tag in
  let xj = "xjr" ^ tag in
  [
    for_ ~annots:(vec vectorize) i (int_ 0) (int_ n)
      [ Assign (Arr ("r", var i), Load ("b", var i)) ];
    for_ j (int_ 0) (int_ n)
      [
        Let (xj, Load ("x", var j));
        for_ ~annots:(vec vectorize) p
          (Idx ("Afp", var j))
          (Idx ("Afp", var j +: int_ 1))
          [
            Update
              (Arr ("r", Idx ("Afi", var p)), Sub, Load ("Avx", var p) *: Var xj);
          ];
      ];
  ]

(* Concatenate kernels into one fused kernel: union of parameters
   (deduplicated by name; a name may not change type) and constant sets
   (deduplicated when the contents agree), bodies back to back in one flat
   scope. Raises [Invalid_argument] on a conflicting parameter type or
   constant content — rename via [tag] first. *)
let concat ~kname (ks : kernel list) : kernel =
  let add_param acc (name, ty) =
    match List.assoc_opt name acc with
    | None -> acc @ [ (name, ty) ]
    | Some ty' ->
        if ty <> ty' then
          invalid_arg
            ("Fuse.concat: parameter " ^ name ^ " fused with two types")
        else acc
  in
  let add_const acc (name, data) =
    match List.assoc_opt name acc with
    | None -> acc @ [ (name, data) ]
    | Some data' ->
        if data <> data' then
          invalid_arg
            ("Fuse.concat: constant " ^ name ^ " fused with two contents")
        else acc
  in
  let params =
    List.fold_left (fun acc k -> List.fold_left add_param acc k.params) [] ks
  in
  let consts =
    List.fold_left (fun acc k -> List.fold_left add_const acc k.consts) [] ks
  in
  let body =
    List.concat_map (fun k -> Comment ("stage: " ^ k.kname) :: k.body) ks
  in
  { kname; params; consts; body }

(* One vector-chain stage, as the pipeline's fused C emission sees it. *)
type stage =
  | Lower  (** forward substitution on the chain's L *)
  | Ltrans  (** transposed substitution on the chain's L *)
  | Diag  (** x /= D (runtime parameter D) *)
  | Spmv  (** x <- A x on the symmetrized full pattern *)
  | Residual  (** r = b - A x (the fused CG residual update) *)

(* Build the fused kernel for a whole chain: one body, one flat scope,
   shared constants attached once. [full] is required when the chain
   contains [Spmv] or [Residual]. *)
let chain ?(vectorize = true) ~kname ~(level_ptr : int array)
    ~(level_cols : int array) ?(full : Csc.t option) (l : Csc.t)
    (stages : stage list) : kernel =
  let n = l.Csc.ncols in
  let needs_full = List.exists (fun s -> s = Spmv || s = Residual) stages in
  let needs_diag = List.mem Diag stages in
  let needs_spmv = List.mem Spmv stages in
  let needs_res = List.mem Residual stages in
  let full =
    match (needs_full, full) with
    | false, _ -> None
    | true, Some a -> Some a
    | true, None ->
        invalid_arg "Fuse.chain: Spmv/Residual stage without a full pattern"
  in
  let bodies =
    List.mapi
      (fun i s ->
        let tag = string_of_int i in
        let body =
          match s with
          | Lower -> lower_body ~vectorize ~tag
          | Ltrans -> ltrans_body ~vectorize ~tag
          | Diag -> diag_body ~vectorize ~tag n
          | Spmv -> spmv_body ~vectorize ~tag n
          | Residual -> residual_body ~vectorize ~tag n
        in
        Comment
          (Printf.sprintf "stage %d: %s" i
             (match s with
             | Lower -> "lower_solve"
             | Ltrans -> "ltrans_solve"
             | Diag -> "diag_solve"
             | Spmv -> "spmv"
             | Residual -> "residual"))
        :: body)
      stages
  in
  let params =
    [ ("Lx", Float_array); ("x", Float_array) ]
    @ (if needs_diag then [ ("D", Float_array) ] else [])
    @ (if needs_full then [ ("Avx", Float_array) ] else [])
    @ (if needs_spmv then [ ("y", Float_array) ] else [])
    @ if needs_res then [ ("b", Float_array); ("r", Float_array) ] else []
  in
  let consts =
    [
      ("fuse_meta", [| Array.length level_ptr - 1 |]);
      ("level_ptr", level_ptr);
      ("level_cols", level_cols);
      ("Lp", l.Csc.colptr);
      ("Li", l.Csc.rowind);
    ]
    @
    match full with
    | None -> []
    | Some a -> [ ("Afp", a.Csc.colptr); ("Afi", a.Csc.rowind) ]
  in
  { kname; params; consts; body = List.concat bodies }

(* The minimum fusion the pipeline promises: the L and L^T trisolves of a
   factor+solve pair merged into one level-scheduled pass — one kernel
   [pipeline_apply(Lx, x)], forward levels then reversed levels, level
   sets baked in as constants. *)
let solve_pair ?(vectorize = true) ~(level_ptr : int array)
    ~(level_cols : int array) (l : Csc.t) : kernel =
  chain ~vectorize ~kname:"pipeline_apply" ~level_ptr ~level_cols l
    [ Lower; Ltrans ]
