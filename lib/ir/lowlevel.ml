open Ast

(* Enabled conventional low-level transformations (§2.4): these passes
   consume the hints the inspector-guided transformations annotate loops
   with. Because inspection sets are compile-time constants, loop bounds
   become known and peeling/unrolling are straightforward and provably
   safe (the reach-set is topologically ordered, so peeled iterations keep
   their relative order). *)

let rec expr_contains_var v = function
  | Int_lit _ | Float_lit _ -> false
  | Var x -> x = v
  | Idx (_, i) | Load (_, i) | Sqrt i -> expr_contains_var v i
  | Binop (_, a, b) -> expr_contains_var v a || expr_contains_var v b

(* Variables bound inside a statement (lets and loop indices): loads whose
   index mentions any of these cannot be hoisted past it. *)
let rec bound_vars s =
  match s with
  | Let (x, _) -> [ x ]
  | For l -> l.index :: List.concat_map bound_vars l.body
  | If (_, a, b) -> List.concat_map bound_vars (a @ b)
  | Assign _ | Update _ | Comment _ -> []

(* ------------------------------ Peeling ------------------------------ *)

(* Peel the iterations listed in a [Peel] annotation out of a
   constant-bound loop, inlining their bodies as straight-line code with
   the index substituted and constants folded (Figure 1e). *)
let rec peel_stmt consts s : stmt list =
  match s with
  | For l -> (
      let body = List.concat_map (peel_stmt consts) l.body in
      let l = { l with body } in
      let peels =
        List.concat_map (function Peel ps -> ps | _ -> []) l.annots
      in
      match (peels, l.lo, l.hi) with
      | [], _, _ -> [ For l ]
      | _, Int_lit lo, Int_lit hi ->
          let peels =
            List.sort_uniq compare (List.filter (fun p -> p >= lo && p < hi) peels)
          in
          let annots = List.filter (function Peel _ -> false | _ -> true) l.annots in
          let inline_iteration k =
            Comment (Printf.sprintf "peeled iteration %s = %d" l.index k)
            :: List.map
                 (fun s -> fold_stmt consts (subst_stmt l.index (Int_lit k) s))
                 l.body
          in
          let segment lo hi =
            if lo >= hi then []
            else [ For { l with lo = Int_lit lo; hi = Int_lit hi; annots } ]
          in
          let rec go cur = function
            | [] -> segment cur hi
            | p :: rest -> segment cur p @ inline_iteration p @ go (p + 1) rest
          in
          go lo peels
      | _ -> [ For l ])
  | If (c, a, b) ->
      [ If (c, List.concat_map (peel_stmt consts) a, List.concat_map (peel_stmt consts) b) ]
  | Let _ | Assign _ | Update _ | Comment _ -> [ s ]

(* ------------------------------ Unrolling ---------------------------- *)

(* Fully unroll constant-trip loops whose trip count is at most the bound
   of their [Unroll] annotation. *)
let rec unroll_stmt consts s : stmt list =
  match s with
  | For l -> (
      let body = List.concat_map (unroll_stmt consts) l.body in
      let l = { l with body } in
      let bound =
        List.fold_left
          (fun acc a -> match a with Unroll u -> max acc u | _ -> acc)
          0 l.annots
      in
      match (fold_expr consts l.lo, fold_expr consts l.hi) with
      | Int_lit lo, Int_lit hi when bound > 0 && hi - lo <= bound ->
          List.concat_map
            (fun k ->
              List.map
                (fun s -> fold_stmt consts (subst_stmt l.index (Int_lit k) s))
                l.body)
            (List.init (max 0 (hi - lo)) (fun i -> lo + i))
      | _ -> [ For l ])
  | If (c, a, b) ->
      [ If (c, List.concat_map (unroll_stmt consts) a, List.concat_map (unroll_stmt consts) b) ]
  | Let _ | Assign _ | Update _ | Comment _ -> [ s ]

(* -------------------------- Scalar replacement ------------------------ *)

let fresh = ref 0

let fresh_temp () =
  incr fresh;
  Printf.sprintf "t%d" !fresh

(* Hoist loop-invariant float loads out of a loop: a [Load (a, e)] whose
   index [e] mentions neither the loop index nor any variable bound in the
   body, and whose array [a] is not written inside the loop, is bound to a
   scalar before the loop. *)
let rec scalar_replace_stmt s : stmt list =
  match s with
  | For l ->
      let body = List.concat_map scalar_replace_stmt l.body in
      let l = { l with body } in
      let written = List.concat_map written_arrays l.body in
      let bound = l.index :: List.concat_map bound_vars l.body in
      let invariant = function
        | Load (a, e) ->
            (not (List.mem a written))
            && (not (List.exists (fun v -> expr_contains_var v e) bound))
            && (match e with Int_lit _ -> true | _ -> true)
        | _ -> false
      in
      (* Collect distinct invariant loads appearing in the body. *)
      let loads = ref [] in
      let collect e =
        ignore
          (map_expr
             (fun e ->
               if invariant e && not (List.mem e !loads) then loads := e :: !loads;
               e)
             e)
      in
      let rec collect_stmt s =
        match s with
        | Let (_, e) -> collect e
        | Assign (lv, e) | Update (lv, _, e) ->
            (match lv with Arr (_, i) -> collect i | Scalar _ -> ());
            collect e
        | For l ->
            collect l.lo;
            collect l.hi;
            List.iter collect_stmt l.body
        | If (c, a, b) ->
            collect c;
            List.iter collect_stmt (a @ b)
        | Comment _ -> ()
      in
      List.iter collect_stmt l.body;
      let loads = List.rev !loads in
      if loads = [] then [ For l ]
      else begin
        let bindings = List.map (fun e -> (e, fresh_temp ())) loads in
        let rewrite e =
          map_expr
            (fun e ->
              match List.assoc_opt e bindings with
              | Some t -> Var t
              | None -> e)
            e
        in
        let rec rw s =
          match s with
          | Let (x, e) -> Let (x, rewrite e)
          | Assign (lv, e) -> Assign (rw_lv lv, rewrite e)
          | Update (lv, op, e) -> Update (rw_lv lv, op, rewrite e)
          | For l ->
              For { l with lo = rewrite l.lo; hi = rewrite l.hi; body = List.map rw l.body }
          | If (c, a, b) -> If (rewrite c, List.map rw a, List.map rw b)
          | Comment _ -> s
        and rw_lv = function
          | Scalar x -> Scalar x
          | Arr (a, i) -> Arr (a, rewrite i)
        in
        List.map (fun (e, t) -> Let (t, e)) bindings
        @ [ For { l with body = List.map rw l.body } ]
      end
  | If (c, a, b) ->
      [ If (c, List.concat_map scalar_replace_stmt a, List.concat_map scalar_replace_stmt b) ]
  | Let _ | Assign _ | Update _ | Comment _ -> [ s ]

(* ------------------------- Constant propagation ----------------------- *)

(* Propagate integer-literal lets (which peeling and unrolling create in
   abundance) and fold the results, so peeled iterations become fully
   specialized straight-line code with literal indices, as in Figure 1e.
   The interpreter's environment is flat, so a variable constant-folded
   here must not be rebound later: bindings are dropped from the
   propagation environment at any construct that rebinds them. *)
let rec propagate_stmts consts env (stmts : stmt list) : stmt list =
  match stmts with
  | [] -> []
  | s :: rest -> (
      let subst_env e = List.fold_left (fun e (v, c) -> subst_expr v c e) e env in
      let fold e = fold_expr consts (subst_env e) in
      match s with
      | Let (x, e) -> (
          let e = fold e in
          let env = List.remove_assoc x env in
          match e with
          | Int_lit _ -> propagate_stmts consts ((x, e) :: env) rest
          | _ -> Let (x, e) :: propagate_stmts consts env rest)
      | Assign (lv, e) ->
          Assign (fold_lv consts env lv, fold e) :: propagate_stmts consts env rest
      | Update (lv, op, e) ->
          Update (fold_lv consts env lv, op, fold e)
          :: propagate_stmts consts env rest
      | Comment _ -> s :: propagate_stmts consts env rest
      | For l -> (
          let inner_bound = l.index :: List.concat_map bound_vars l.body in
          let env_in = List.filter (fun (v, _) -> not (List.mem v inner_bound)) env in
          let body = propagate_stmts consts env_in l.body in
          let l = { l with lo = fold l.lo; hi = fold l.hi; body } in
          let env' = List.filter (fun (v, _) -> not (List.mem v inner_bound)) env in
          (* Peeling can expose zero-trip loops; drop them. *)
          match (l.lo, l.hi) with
          | Int_lit lo, Int_lit hi when hi <= lo -> propagate_stmts consts env' rest
          | _ -> For l :: propagate_stmts consts env' rest)
      | If (c, a, b) ->
          let inner_bound = List.concat_map bound_vars (a @ b) in
          let env_in = List.filter (fun (v, _) -> not (List.mem v inner_bound)) env in
          let a = propagate_stmts consts env_in a in
          let b = propagate_stmts consts env_in b in
          let env' = env_in in
          If (fold c, a, b) :: propagate_stmts consts env' rest)

and fold_lv consts env = function
  | Scalar x -> Scalar x
  | Arr (a, i) ->
      Arr (a, fold_expr consts (List.fold_left (fun e (v, c) -> subst_expr v c e) i env))

(* --------------------------- Loop distribution ------------------------ *)

let touched s = written_arrays s @ read_arrays s

let disjoint a b = not (List.exists (fun x -> List.mem x b) a)

(* Split a [Distribute]-annotated loop's body into one loop per statement
   when no pair of statements shares a written array (conservative
   legality: distribution cannot then reorder any dependent accesses). *)
let rec distribute_stmt s : stmt list =
  match s with
  | For l when List.mem Distribute l.annots ->
      let body = List.concat_map distribute_stmt l.body in
      let stmts = List.filter (function Comment _ -> false | _ -> true) body in
      let legal =
        let rec pairs = function
          | [] -> true
          | x :: rest ->
              List.for_all
                (fun y ->
                  disjoint (written_arrays x) (touched y)
                  && disjoint (written_arrays y) (touched x))
                rest
              && pairs rest
        in
        pairs stmts
        && List.for_all (function Let _ -> false | _ -> true) stmts
      in
      let annots = List.filter (fun a -> a <> Distribute) l.annots in
      if legal && List.length stmts > 1 then
        List.map (fun s -> For { l with body = [ s ]; annots }) stmts
      else [ For { l with body; annots } ]
  | For l -> [ For { l with body = List.concat_map distribute_stmt l.body } ]
  | If (c, a, b) ->
      [ If (c, List.concat_map distribute_stmt a, List.concat_map distribute_stmt b) ]
  | Let _ | Assign _ | Update _ | Comment _ -> [ s ]

(* Run every low-level pass over a kernel in the standard order. The temp
   counter restarts per kernel so the emitted C for a given input is
   byte-identical no matter how many kernels were compiled before. *)
let apply (k : kernel) : kernel =
  fresh := 0;
  let run f body = List.concat_map f body in
  let body = run distribute_stmt k.body in
  let body = run (peel_stmt k.consts) body in
  let body = run (unroll_stmt k.consts) body in
  let body = propagate_stmts k.consts [] body in
  let body = run scalar_replace_stmt body in
  { k with body }
