open Sympiler_sparse
open Sympiler_symbolic
open Sympiler_prof

(* The Sympiler phase pipeline of Figure 2: symbolic inspection, lowering,
   inspector-guided transformations, low-level transformations, code
   generation. Produces both the transformed kernel AST (executable through
   [Interp]) and the final C source.

   Every pass reports its time to the profiling layer: inspector runs under
   the "symbolic" scope, AST work under "codegen" plus a per-pass
   "codegen:<pass>" sub-scope — so `sympiler_cli --profile` and the phases
   bench can attribute compile time to individual passes. Each pass also
   opens a trace span of the same name, and the transformation passes
   record decision events (fired/declined plus the measured quantity that
   drove the choice) for `sympiler explain` and trace exports. *)

module Trace = Sympiler_trace.Trace

let pass name f =
  Prof.time "codegen" (fun () ->
      Prof.time name (fun () -> Trace.with_span name f))

let inspect f =
  Prof.time "symbolic" (fun () -> Trace.with_span "symbolic.inspect" f)

(* Pruned-iteration ratio of a VI-Prune set over an n-iteration loop:
   fraction of iterations the transformation removed. *)
let pruned_ratio ~n kept =
  if n = 0 then 0.0 else 1.0 -. (float_of_int kept /. float_of_int n)

type result = {
  kernel : Ast.kernel;
  c_code : string;
  inspectors : string list; (* human-readable inspector descriptions *)
  tmp_size : int; (* required scratch size for the "tmp" parameter, if any *)
}

(* Triangular solve: choose any of the three transformation layers; the
   defaults build the full Figure 1e pipeline. VS-Block is applied before
   VI-Prune, the ordering §4.2 finds superior. *)
let trisolve ?(vs_block = true) ?(vi_prune = true) ?(low_level = true)
    ?(peel_threshold = 2) ?max_width (l : Csc.t) (b : Vector.sparse) : result =
  Trace.with_span "pipeline.trisolve" @@ fun () ->
  let kernel = pass "codegen:lower" (fun () -> Build.lower_trisolve l) in
  let inspectors = ref [] in
  let kernel, tmp_size, prune_set, peel =
    if vs_block then begin
      let insp = Inspector.trisolve_vs_block ?max_width l in
      inspectors := Inspector.describe insp :: !inspectors;
      let sn =
        match inspect insp.Inspector.run with
        | Inspector.Block_set sn -> sn
        | _ -> assert false
      in
      Trace.decision
        {
          Trace.pass = "vs-block";
          fired = true;
          metric = "avg_supernode_width";
          value = Supernodes.avg_width sn;
          threshold = 0.0;
        };
      let kernel =
        pass "codegen:vs-block" (fun () -> Vs_block.apply_trisolve l sn kernel)
      in
      (* Prune set over blocks: supernodes hit by the reach-set. *)
      let insp2 = Inspector.trisolve_vi_prune l b in
      inspectors := Inspector.describe insp2 :: !inspectors;
      let reach =
        match inspect insp2.Inspector.run with
        | Inspector.Prune_set r -> r
        | _ -> assert false
      in
      let hit = Array.make (Supernodes.nsuper sn) false in
      Array.iter (fun j -> hit.(sn.Supernodes.col_to_sn.(j)) <- true) reach;
      let seq = ref [] in
      for s = Supernodes.nsuper sn - 1 downto 0 do
        if hit.(s) then seq := s :: !seq
      done;
      let prune_set = Array.of_list !seq in
      Trace.decision
        {
          Trace.pass = "vi-prune";
          fired = vi_prune;
          metric = "pruned_iteration_ratio";
          value = pruned_ratio ~n:(Supernodes.nsuper sn) (Array.length prune_set);
          threshold = 0.0;
        };
      (* Peel width-1 blocks: they reduce to the scalar column update. *)
      let peel =
        Vi_prune.peel_positions
          ~col_nnz:(fun s -> Supernodes.width sn s)
          ~threshold:1 prune_set
        |> List.filter (fun _ -> low_level)
      in
      (kernel, Vs_block.max_below l sn, prune_set, peel)
    end
    else begin
      let insp = Inspector.trisolve_vi_prune l b in
      inspectors := Inspector.describe insp :: !inspectors;
      let reach =
        match inspect insp.Inspector.run with
        | Inspector.Prune_set r -> r
        | _ -> assert false
      in
      Trace.decision
        {
          Trace.pass = "vs-block";
          fired = false;
          metric = "avg_supernode_width";
          value = Float.nan (* declined by configuration: never measured *);
          threshold = 0.0;
        };
      Trace.decision
        {
          Trace.pass = "vi-prune";
          fired = vi_prune;
          metric = "pruned_iteration_ratio";
          value = pruned_ratio ~n:l.Csc.ncols (Array.length reach);
          threshold = 0.0;
        };
      (* Figure 1e peels reach-set iterations whose column count exceeds
         the threshold. *)
      let peel =
        if low_level then
          Vi_prune.peel_positions ~col_nnz:(Csc.col_nnz l)
            ~threshold:peel_threshold reach
        else []
      in
      (kernel, 0, reach, peel)
    end
  in
  let kernel =
    if vi_prune then
      pass "codegen:vi-prune" (fun () ->
          Vi_prune.apply ~set_name:"pruneSet" ~peel ~vectorize:low_level
            prune_set kernel)
    else kernel
  in
  let kernel =
    if low_level then pass "codegen:low-level" (fun () -> Lowlevel.apply kernel)
    else kernel
  in
  {
    kernel;
    c_code = pass "codegen:emit" (fun () -> Pretty_c.kernel_to_c kernel);
    inspectors = List.rev !inspectors;
    tmp_size;
  }

(* Cholesky: the lowered code is already VI-Pruned (prune-sets baked in by
   [Build.lower_cholesky], matching the paper's Figure 7 baseline); the
   low-level stage applies scalar replacement and distribution. *)
let cholesky ?(low_level = true) (a_lower : Csc.t) : result =
  Trace.with_span "pipeline.cholesky" @@ fun () ->
  let fill = Fill_pattern.analyze a_lower in
  let insp = Inspector.cholesky_vi_prune fill in
  (* The baked-in prune-sets iterate nnz(L) - n row entries instead of the
     dense n*(n-1)/2 candidate updates of the unpruned loop nest. *)
  let n = fill.Fill_pattern.n in
  let dense_updates = n * (n - 1) / 2 in
  Trace.decision
    {
      Trace.pass = "vi-prune";
      fired = true;
      metric = "pruned_iteration_ratio";
      value = pruned_ratio ~n:dense_updates (Fill_pattern.nnz_l fill - n);
      threshold = 0.0;
    };
  let kernel = pass "codegen:lower" (fun () -> Build.lower_cholesky a_lower) in
  let kernel =
    if low_level then pass "codegen:low-level" (fun () -> Lowlevel.apply kernel)
    else kernel
  in
  {
    kernel;
    c_code = pass "codegen:emit" (fun () -> Pretty_c.kernel_to_c kernel);
    inspectors = [ Inspector.describe insp ];
    tmp_size = 0;
  }

(* ---- Interpreter-backed execution of pipeline results (used by tests
   and examples; benchmarks use the native executors in
   [Sympiler_kernels]). ---- *)

let run_trisolve (r : result) (l : Csc.t) (b : Vector.sparse) : float array =
  let x = Vector.sparse_to_dense b in
  let args =
    [
      ("Lx", Interp.VFloatArr l.Csc.values);
      ("x", Interp.VFloatArr x);
      ("tmp", Interp.VFloatArr (Array.make (max 1 r.tmp_size) 0.0));
    ]
  in
  Interp.run_kernel r.kernel args;
  x

let run_cholesky (r : result) (a_lower : Csc.t) ~(nnz_l : int) : float array =
  let n = a_lower.Csc.ncols in
  let lx = Array.make nnz_l 0.0 in
  let args =
    [
      ("Ax", Interp.VFloatArr a_lower.Csc.values);
      ("Lx", Interp.VFloatArr lx);
      ("f", Interp.VFloatArr (Array.make n 0.0));
    ]
  in
  Interp.run_kernel r.kernel args;
  lx
