(* Structured trace spans over the monotonic clock. Two constraints shape
   the implementation (see DESIGN.md "Tracing and explain"):

   - Disabled must be free on kernel hot paths: every entry point is guarded
     by a single load of [on], and the disabled branches neither allocate
     nor read the clock — so [begin_span]/[end_span] pairs may sit inside
     the plans' zero-allocation steady-state loops.

   - Enabled must be bounded: completed spans go into a ring buffer of
     mutable slots preallocated by [enable]; recording mutates slot fields
     in place, and when the ring is full each new span overwrites the
     oldest (counted by [dropped_spans]) rather than growing.

   Timestamps are monotonic nanoseconds stored as native ints (63 bits
   spans ~146 years), which keeps slot writes box-free. Spans land in the
   ring at *completion*, so parents appear after their children; exporters
   that need begin-order sort by [start_ns]. *)

module Json = Sympiler_prof.Prof.Json

type attr = Bool of bool | Int of int | Float of float | Str of string

type kind = Span | Instant

type span = {
  name : string;
  start_ns : int;
  dur_ns : int;
  depth : int;
  kind : kind;
  attrs : (string * attr) list;
}

(* Ring slots are mutated in place; a slot never escapes (readers copy into
   the immutable [span] record). *)
type slot = {
  mutable s_name : string;
  mutable s_start : int;
  mutable s_dur : int;
  mutable s_depth : int;
  mutable s_kind : kind;
  mutable s_attrs : (string * attr) list;
}

let mk_slot () =
  { s_name = ""; s_start = 0; s_dur = 0; s_depth = 0; s_kind = Span; s_attrs = [] }

let on = ref false
let enabled () = !on

let default_capacity = 65536

let ring : slot array ref = ref [||]
let head = ref 0 (* index of the oldest recorded span *)
let count = ref 0
let dropped = ref 0

(* Open-span stack as parallel arrays (grown on demand, never shrunk). *)
let stk_names = ref (Array.make 64 "")
let stk_starts = ref (Array.make 64 0)
let stk_attrs : (string * attr) list array ref = ref (Array.make 64 [])
let depth = ref 0

let now_ns () = Int64.to_int (Monotonic_clock.now ())

let reset () =
  head := 0;
  count := 0;
  dropped := 0;
  depth := 0

let enable ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Trace.enable: capacity must be >= 1";
  if Array.length !ring <> capacity then begin
    ring := Array.init capacity (fun _ -> mk_slot ());
    reset ()
  end;
  on := true

let disable () = on := false

let record name start dur d kind attrs =
  let r = !ring in
  let cap = Array.length r in
  if cap > 0 then begin
    let idx = if !count < cap then (!head + !count) mod cap else !head in
    let s = r.(idx) in
    s.s_name <- name;
    s.s_start <- start;
    s.s_dur <- dur;
    s.s_depth <- d;
    s.s_kind <- kind;
    s.s_attrs <- attrs;
    if !count < cap then incr count
    else begin
      (* Full: the slot just written was the oldest; advance past it. *)
      head := (!head + 1) mod cap;
      incr dropped
    end
  end

let grow_stack () =
  let old = Array.length !stk_names in
  let n = 2 * old in
  let names = Array.make n "" and starts = Array.make n 0 in
  let attrs = Array.make n [] in
  Array.blit !stk_names 0 names 0 old;
  Array.blit !stk_starts 0 starts 0 old;
  Array.blit !stk_attrs 0 attrs 0 old;
  stk_names := names;
  stk_starts := starts;
  stk_attrs := attrs

let begin_span name =
  if !on then begin
    if !depth >= Array.length !stk_names then grow_stack ();
    !stk_names.(!depth) <- name;
    !stk_attrs.(!depth) <- [];
    !stk_starts.(!depth) <- now_ns ();
    incr depth
  end

let end_span () =
  if !on && !depth > 0 then begin
    decr depth;
    let d = !depth in
    let t0 = !stk_starts.(d) in
    record !stk_names.(d) t0 (now_ns () - t0) d Span (List.rev !stk_attrs.(d))
  end

let set_attr key v =
  if !on && !depth > 0 then
    !stk_attrs.(!depth - 1) <- (key, v) :: !stk_attrs.(!depth - 1)

let with_span ?attrs name f =
  if not !on then f ()
  else begin
    begin_span name;
    (match attrs with
    | None -> ()
    | Some l -> List.iter (fun (k, v) -> set_attr k v) l);
    Fun.protect ~finally:end_span f
  end

let instant ?(attrs = []) name =
  if !on then record name (now_ns ()) 0 !depth Instant attrs

(* ---------------------------- Decision log ---------------------------- *)

type decision = {
  pass : string;
  fired : bool;
  metric : string;
  value : float;
  threshold : float;
}

let decision_attrs d =
  [
    ("fired", Bool d.fired);
    ("metric", Str d.metric);
    ("value", Float d.value);
    ("threshold", Float d.threshold);
  ]

let decision d =
  if !on then instant ~attrs:(decision_attrs d) ("decision." ^ d.pass)

(* ----------------------------- Inspection ----------------------------- *)

let span_count () = !count
let dropped_spans () = !dropped

let spans () =
  let cap = Array.length !ring in
  List.init !count (fun k ->
      let s = !ring.((!head + k) mod cap) in
      {
        name = s.s_name;
        start_ns = s.s_start;
        dur_ns = s.s_dur;
        depth = s.s_depth;
        kind = s.s_kind;
        attrs = s.s_attrs;
      })

(* ----------------------------- Exporters ------------------------------ *)

let attr_json = function
  | Bool b -> Json.Bool b
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Str s -> Json.Str s

(* Chrome trace-event format: complete ("X") events carry microsecond
   ts/dur and nest by time containment, which Perfetto renders as a flame
   chart; instants are "i" events with thread scope. *)
let to_chrome_json () =
  let event s =
    let common =
      [
        ("name", Json.Str s.name);
        ("cat", Json.Str "sympiler");
        ("ph", Json.Str (match s.kind with Span -> "X" | Instant -> "i"));
        ("ts", Json.Float (float_of_int s.start_ns /. 1e3));
        ("pid", Json.Int 1);
        ("tid", Json.Int 1);
      ]
    in
    let phase =
      match s.kind with
      | Span -> [ ("dur", Json.Float (float_of_int s.dur_ns /. 1e3)) ]
      | Instant -> [ ("s", Json.Str "t") ]
    in
    let args =
      match s.attrs with
      | [] -> []
      | l -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, attr_json v)) l)) ]
    in
    Json.Obj (common @ phase @ args)
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (List.map event (spans ())));
         ("displayTimeUnit", Json.Str "ns");
       ])

(* Folded stacks: replay spans in begin order, maintaining the current
   ancestor path by depth; each span adds its duration to its own path and
   subtracts it from its parent's, leaving self time per path. Children of
   spans the ring dropped chain to a stale path prefix — unavoidable under
   wraparound and harmless for a profile. *)
let to_folded () =
  let arr =
    spans () |> List.filter (fun s -> s.kind = Span) |> Array.of_list
  in
  Array.sort
    (fun a b ->
      if a.start_ns <> b.start_ns then compare a.start_ns b.start_ns
      else compare a.depth b.depth)
    arr;
  let totals : (string, int ref) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  let add path v =
    match Hashtbl.find_opt totals path with
    | Some r -> r := !r + v
    | None ->
        Hashtbl.add totals path (ref v);
        order := path :: !order
  in
  let path = ref (Array.make 16 "") in
  Array.iter
    (fun s ->
      if s.depth >= Array.length !path then begin
        let np = Array.make (2 * (s.depth + 1)) "" in
        Array.blit !path 0 np 0 (Array.length !path);
        path := np
      end;
      !path.(s.depth) <- s.name;
      let key =
        String.concat ";" (Array.to_list (Array.sub !path 0 (s.depth + 1)))
      in
      add key s.dur_ns;
      if s.depth > 0 then begin
        let parent =
          String.concat ";" (Array.to_list (Array.sub !path 0 s.depth))
        in
        add parent (-s.dur_ns)
      end)
    arr;
  let buf = Buffer.create 256 in
  List.iter
    (fun key ->
      let v = !(Hashtbl.find totals key) in
      if v > 0 then Buffer.add_string buf (Printf.sprintf "%s %d\n" key v))
    (List.rev !order);
  Buffer.contents buf
