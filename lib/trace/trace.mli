(** Structured trace spans: hierarchical begin/end events with typed
    attributes, recorded into a preallocated ring buffer and exportable as
    Chrome trace-event JSON (Perfetto / [chrome://tracing]) or folded-stacks
    text (flamegraph input).

    Tracing is off by default and, like {!Sympiler_prof.Prof}, the disabled
    path is a single boolean load: {!begin_span}, {!end_span}, {!set_attr}
    and {!instant} allocate nothing and read no clock while disabled, so
    span sites may sit on allocation-free steady-state kernel paths.
    {!with_span} is likewise a plain [f ()] when disabled (callers on hot
    paths should still prefer {!begin_span}/{!end_span}, which need no
    closure at the call site).

    When enabled, completed spans are written oldest-first into a ring of
    {!enable}'s [capacity]; once full, each new span overwrites the oldest
    and bumps {!dropped_spans}. *)

(** Attribute values attached to spans and instant events. *)
type attr = Bool of bool | Int of int | Float of float | Str of string

type kind = Span | Instant

(** A completed span (or instant event) as stored in the ring. *)
type span = {
  name : string;
  start_ns : int;  (** monotonic-clock begin time *)
  dur_ns : int;  (** 0 for instants *)
  depth : int;  (** nesting depth at begin; 0 = root *)
  kind : kind;
  attrs : (string * attr) list;  (** in the order they were attached *)
}

val enabled : unit -> bool

val enable : ?capacity:int -> unit -> unit
(** Turn tracing on. Allocates the ring on first use; passing a different
    [capacity] (default 65536 spans) reallocates and clears it. Raises
    [Invalid_argument] when [capacity < 1]. *)

val disable : unit -> unit

val reset : unit -> unit
(** Drop all recorded spans, the open-span stack, and the dropped counter;
    keeps the ring allocation and the enabled state. *)

(** {1 Recording} *)

val begin_span : string -> unit
(** Open a nested span. No-op (and allocation-free) while disabled. *)

val end_span : unit -> unit
(** Close the innermost open span, writing it into the ring. No-op while
    disabled or when no span is open. *)

val set_attr : string -> attr -> unit
(** Attach an attribute to the innermost open span (e.g. a cache-hit flag
    discovered mid-span). No-op while disabled or outside any span. *)

val with_span : ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span (exception-safe); plain
    [f ()] while disabled. *)

val instant : ?attrs:(string * attr) list -> string -> unit
(** Record a zero-duration event at the current depth. *)

(** {1 Decision log}

    Inspector-guided transformations record whether they fired and the
    measured quantity behind the choice (the paper's profitability
    thresholds, §4.2). Decisions appear in the trace as instant events
    named ["decision.<pass>"] and are also kept on compiled handles for
    {!Sympiler}'s explain reports. *)

type decision = {
  pass : string;  (** e.g. ["vs-block"], ["vi-prune"] *)
  fired : bool;
  metric : string;  (** e.g. ["avg_supernode_width"] *)
  value : float;  (** measured value of [metric]; [nan] = not measured *)
  threshold : float;  (** the profitability threshold compared against *)
}

val decision : decision -> unit
(** Record [d] as an instant event (no-op while disabled). *)

val decision_attrs : decision -> (string * attr) list

(** {1 Inspection} *)

val spans : unit -> span list
(** Completed spans, oldest first (completion order). *)

val span_count : unit -> int
val dropped_spans : unit -> int

(** {1 Exporters} *)

val to_chrome_json : unit -> string
(** The recorded spans as a Chrome trace-event JSON document
    ([{"traceEvents":[...]}]): spans are complete ("X") events with
    microsecond [ts]/[dur], instants are "i" events, attributes become
    [args]. Loadable in Perfetto or [chrome://tracing]. *)

val to_folded : unit -> string
(** Folded-stacks text: one [root;child;leaf self_ns] line per stack path
    (self time = span time minus child spans), ready for
    [flamegraph.pl]. *)
