open Sympiler_sparse
open Sympiler_kernels
open Sympiler_prof

(* Public facade: Sympiler as the paper presents it. Each kernel family's
   [compile] runs all symbolic analysis and code generation once for a
   fixed sparsity structure; the returned handles expose numeric routines
   that contain no symbolic work, the generated C source, and the time the
   symbolic phase took (reported in the paper's Figures 8 and 9). All six
   families implement the one KERNEL signature of the interface, so the
   compile -> plan -> execute_ip lifecycle and the optional-argument
   spellings are uniform. *)

(* Re-export the companion modules: since this module shares the library's
   name it is the library's sole interface. *)
module Suite = Suite
module Codegen_supernodal = Codegen_supernodal
module Plan_cache = Plan_cache
module Runtime = Sympiler_runtime
module Native = Sympiler_native.Native
module Native_engine = Native_engine
module Options = Options
module Pipeline = Pipeline

(* The execution engine and fill-reducing-ordering requests live in
   [Options] (the one shared compile-options record); the historical
   spellings stay as aliases. *)
type engine = Options.engine
type ordering = Options.ordering

(* The compile-time machinery shared with the pipeline layer: ordering
   resolution and the baked gather maps, symbolic-phase timing, the
   plan-lifecycle metrics, and the fingerprint encoders. *)
include Compile_common

(* The uniform kernel lifecycle (see the interface for the contract); the
   per-family [module Check : KERNEL = ...] assertions live in the test
   suite so a drifting family breaks the build there, not here. *)
module type KERNEL = sig
  type pattern
  type t
  type plan
  type input
  type output

  val compile : ?cache:t Plan_cache.t -> ?opts:Options.t -> pattern -> t
  val cache_stats : unit -> Plan_cache.stats
  val cache_clear : unit -> unit
  val symbolic_seconds : t -> float
  val plan : ?ndomains:int -> ?engine:engine -> t -> plan
  val execute_ip : plan -> input -> output

  val plan_latency : plan -> Metrics.histogram_snapshot
  (** Snapshot of the plan's [sympiler_execute_seconds] histogram (shared
      across plans with the same family × op × engine × ordering). *)

  val c_code : t -> string
end

(* ------------- rank-update (updown) shared facade machinery ------------ *)

(* Gather a natural-order sparse update vector into an ordered plan's
   compiled index space: map every index through [pinv], tandem-insertion
   sort the plan-owned buffers (update vectors are short — typically the
   pattern of one factor column — so the quadratic sort never shows), and
   reject malformed input. Returns the entry count. Zero allocation. *)
let permute_sorted_w ~who (pinv : int array) (wi_buf : int array)
    (wv_buf : float array) (w : Vector.sparse) : int =
  let wi = w.Vector.indices and wv = w.Vector.values in
  let len = Array.length wi in
  let n = Array.length pinv in
  for k = 0 to len - 1 do
    let i = wi.(k) in
    if i < 0 || i >= n then invalid_arg (who ^ ": w index out of range");
    wi_buf.(k) <- pinv.(i);
    wv_buf.(k) <- wv.(k)
  done;
  for k = 1 to len - 1 do
    let ki = wi_buf.(k) and kv = wv_buf.(k) in
    let t = ref (k - 1) in
    while !t >= 0 && wi_buf.(!t) > ki do
      wi_buf.(!t + 1) <- wi_buf.(!t);
      wv_buf.(!t + 1) <- wv_buf.(!t);
      decr t
    done;
    wi_buf.(!t + 1) <- ki;
    wv_buf.(!t + 1) <- kv
  done;
  for k = 1 to len - 1 do
    if wi_buf.(k - 1) = wi_buf.(k) then
      invalid_arg (who ^ ": w indices must be unique")
  done;
  len

(* Allocation-free gather through a [-1]-extended map: escalated plans keep
   accepting inputs with the original natural pattern, and the pattern
   entries the escalation added that the input does not have are structural
   zeros. *)
let gather_esc ~who ~(expect : int) (map : int array) (src : float array)
    (dst : Csc.t) : unit =
  if Array.length src <> expect then
    invalid_arg (who ^ ": input nnz does not match the compiled pattern");
  let dv = dst.Csc.values in
  for q = 0 to Array.length dv - 1 do
    let s = map.(q) in
    dv.(q) <- (if s < 0 then 0.0 else src.(s))
  done

(* Extend an input gather map across a pattern growth: entry [q] of the new
   pattern reads where the matching old-pattern entry read ([old_q]), or
   [-1] when the old pattern lacks it. Merge scan per column. *)
let extend_input_map ~(old_pattern : Csc.t) ~(old_q : int -> int)
    (np : Csc.t) : int array =
  let map = Array.make (Csc.nnz np) (-1) in
  for j = 0 to np.Csc.ncols - 1 do
    let op = ref old_pattern.Csc.colptr.(j) in
    let ohi = old_pattern.Csc.colptr.(j + 1) in
    for q = np.Csc.colptr.(j) to np.Csc.colptr.(j + 1) - 1 do
      let i = np.Csc.rowind.(q) in
      while !op < ohi && old_pattern.Csc.rowind.(!op) < i do
        incr op
      done;
      if !op < ohi && old_pattern.Csc.rowind.(!op) = i then
        map.(q) <- old_q !op
    done
  done;
  map

(* lower(M + sigma w w^T) with the union pattern kept structurally: every
   entry of [m] survives (even under exact cancellation — future refactors
   gather real input values through these positions), and the w-clique
   entries merge in. [wi] holds [len] sorted indices. *)
let clique_union (m : Csc.t) ~(sigma : float) (wi : int array)
    (wv : float array) (len : int) : Csc.t =
  let n = m.Csc.ncols in
  let inw = Array.make n (-1) in
  for k = 0 to len - 1 do
    inw.(wi.(k)) <- k
  done;
  let colptr = Array.make (n + 1) 0 in
  for j = 0 to n - 1 do
    let base = m.Csc.colptr.(j + 1) - m.Csc.colptr.(j) in
    let extra = ref 0 in
    let k = inw.(j) in
    if k >= 0 then
      for t = k to len - 1 do
        if not (Csc.mem m wi.(t) j) then incr extra
      done;
    colptr.(j + 1) <- base + !extra
  done;
  for j = 0 to n - 1 do
    colptr.(j + 1) <- colptr.(j + 1) + colptr.(j)
  done;
  let nnz = colptr.(n) in
  let rowind = Array.make nnz 0 in
  let values = Array.make nnz 0.0 in
  for j = 0 to n - 1 do
    let q = ref colptr.(j) in
    let mp = ref m.Csc.colptr.(j) in
    let mhi = m.Csc.colptr.(j + 1) in
    let k0 = inw.(j) in
    let t = ref (if k0 >= 0 then k0 else len) in
    let wj = if k0 >= 0 then wv.(k0) else 0.0 in
    while !mp < mhi || !t < len do
      let mi = if !mp < mhi then m.Csc.rowind.(!mp) else max_int in
      let ci = if !t < len then wi.(!t) else max_int in
      if mi < ci then begin
        rowind.(!q) <- mi;
        values.(!q) <- m.Csc.values.(!mp);
        incr mp
      end
      else if ci < mi then begin
        rowind.(!q) <- ci;
        values.(!q) <- sigma *. wv.(!t) *. wj;
        incr t
      end
      else begin
        rowind.(!q) <- mi;
        values.(!q) <- m.Csc.values.(!mp) +. (sigma *. wv.(!t) *. wj);
        incr mp;
        incr t
      end;
      incr q
    done
  done;
  Csc.create ~nrows:n ~ncols:n ~colptr ~rowind ~values

module Trisolve = struct
  type pattern = Csc.t * Vector.sparse

  type t = {
    l : Csc.t;
    b_pattern : int array;
    compiled : Trisolve_sympiler.compiled;
    symbolic_seconds : float;
    reach : int array;
    flops : float;
    decisions : Trace.decision list;
    ord : applied_ordering;
    ord_b_map : int array;
  }

  type input = Vector.sparse
  type output = float array

  (* Symbolic inspection + inspector-guided planning for L x = b with the
     given RHS pattern. The numeric values of L and b may change afterwards;
     only the patterns are compiled in. With [?ordering], both patterns are
     permuted here at compile time; [execute_ip] then gathers b into the
     plan's permuted scratch and inverse-permutes x on the way out, so the
     caller keeps natural-order vectors throughout. Orderings must keep
     P L P^T lower triangular (a dependence-respecting relabeling, e.g. a
     [`Given] etree postorder); anything else raises [Invalid_argument]. *)
  let compile_internal ?vs_block_threshold ?max_width
      ?(ordering : ordering = `Natural) (l : Csc.t) (b : Vector.sparse) : t =
    if not (Csc.is_lower_triangular l) then
      invalid_arg "Sympiler.Trisolve.compile: L must be lower triangular";
    let t0 = Prof.now_seconds () in
    let l, b, ord, ord_b_map =
      match ordering with
      | `Natural -> (l, b, natural_ordering, [||])
      | o ->
          let n = l.Csc.ncols in
          let p =
            resolve_ordering ~who:"Sympiler.Trisolve.compile" o
              (lazy (Csc.symmetrize_from_lower l))
              n
          in
          let pl, map = Perm.permute_pattern p l in
          if not (Csc.is_lower_triangular pl) then
            invalid_arg
              "Sympiler.Trisolve.compile: the requested ordering does not \
               keep L lower triangular; use `Given with a \
               dependency-respecting permutation";
          let pinv = Perm.inverse p in
          let pairs = Array.mapi (fun t i -> (pinv.(i), t)) b.Vector.indices in
          Array.sort compare pairs;
          let pb =
            {
              Vector.n;
              indices = Array.map fst pairs;
              values = Array.map (fun (_, t) -> b.Vector.values.(t)) pairs;
            }
          in
          ( pl,
            pb,
            { o_perm = Some p; o_name = ordering_name o; o_map = map },
            Array.map snd pairs )
    in
    let ord_seconds = Prof.now_seconds () -. t0 in
    Trace.with_span "compile.trisolve"
      ~attrs:[ ("n", Trace.Int l.Csc.ncols) ]
    @@ fun () ->
    let compiled, symbolic_seconds =
      time_symbolic (fun () ->
          Trisolve_sympiler.compile ?vs_block_threshold ?max_width l b)
    in
    observe_compile ~family:"trisolve" ~ordering:ord.o_name
      (symbolic_seconds +. ord_seconds);
    {
      l;
      b_pattern = b.Vector.indices;
      compiled;
      symbolic_seconds = symbolic_seconds +. ord_seconds;
      reach = compiled.Trisolve_sympiler.reach;
      flops = compiled.Trisolve_sympiler.flops;
      decisions = compiled.Trisolve_sympiler.decisions;
      ord;
      ord_b_map;
    }

  (* The unified KERNEL spelling: every compile option rides in the shared
     [Options.t] record. Fields without a meaning for a solve ([fill] —
     reach-sets are the inspection here; [simplicial]...) are accepted and
     ignored — the documented price of one uniform signature. *)
  let compile_opts (opts : Options.t) ((l, b) : pattern) : t =
    compile_internal ?vs_block_threshold:opts.Options.vs_block_threshold
      ?max_width:opts.Options.max_width ~ordering:opts.Options.ordering l b

  (* Compilation cache: keyed on L's structure plus the RHS pattern and
     the option fingerprint — a hit returns the previously compiled
     handle, physically equal, with no symbolic work. *)
  let default_cache : t Plan_cache.t = Plan_cache.create ()

  let cache_key (opts : Options.t) (b : Vector.sparse) =
    let nb = Array.length b.Vector.indices in
    let extra = Array.make (1 + nb) 0 in
    extra.(0) <- b.Vector.n;
    Array.blit b.Vector.indices 0 extra 1 nb;
    Array.append extra (Options.fingerprint opts)

  let compile ?cache ?(opts = Options.default) ((l, b) : pattern) : t =
    match (cache, opts.Options.cache) with
    | None, false -> compile_opts opts (l, b)
    | _ ->
        let c = Option.value cache ~default:default_cache in
        Trace.with_span "compile_cached.trisolve" @@ fun () ->
        Plan_cache.find_or_compile c ~pattern:l ~extra:(cache_key opts b)
          (fun () -> compile_opts opts (l, b))

  (* Pre-unification spellings, kept as thin aliases (deprecated in the
     interface): everything they spelled as optional arguments is a field
     of [Options.t] now. *)
  let compile_ext ?vs_block_threshold ?max_width ?ordering (l : Csc.t)
      (b : Vector.sparse) : t =
    compile
      ~opts:(Options.make ?vs_block_threshold ?max_width ?ordering ())
      (l, b)

  let compile_cached_ext ?cache ?vs_block_threshold ?max_width ?ordering
      (l : Csc.t) (b : Vector.sparse) : t =
    compile
      ~cache:(Option.value cache ~default:default_cache)
      ~opts:(Options.make ?vs_block_threshold ?max_width ?ordering ())
      (l, b)

  let compile_cached ?cache ?fill:_ ?max_width ?ordering ((l, b) : pattern) : t
      =
    compile
      ~cache:(Option.value cache ~default:default_cache)
      ~opts:(Options.make ?max_width ?ordering ())
      (l, b)

  let cache_stats () = Plan_cache.stats default_cache
  let cache_clear () = Plan_cache.clear default_cache
  let symbolic_seconds (t : t) = t.symbolic_seconds

  (* Numeric solve (no symbolic work): x such that L x = b. [b] must have
     the pattern given at compile time (values free to differ) — in natural
     order even on an ordered handle: b is permuted in and x permuted back
     out here. *)
  let solve (t : t) (b : Vector.sparse) : float array =
    Prof.time "numeric" (fun () ->
        match t.ord.o_perm with
        | None -> Trisolve_sympiler.solve_full t.compiled b
        | Some p ->
            if Array.length b.Vector.values <> Array.length t.ord_b_map then
              invalid_arg
                "Sympiler.Trisolve.solve: b does not match the compiled \
                 pattern";
            let pb =
              {
                Vector.n = b.Vector.n;
                indices = t.b_pattern;
                values =
                  Array.map (fun m -> b.Vector.values.(m)) t.ord_b_map;
              }
            in
            let xp = Trisolve_sympiler.solve_full t.compiled pb in
            let out = Array.make (Array.length xp) 0.0 in
            Array.iteri (fun k v -> out.(p.(k)) <- v) xp;
            out)

  (* In-place numeric solve: [x] holds b on entry, the solution on exit. *)
  let solve_ip (t : t) (x : float array) : unit =
    Prof.time "numeric" (fun () ->
        match t.ord.o_perm with
        | None -> Trisolve_sympiler.solve_full_ip t.compiled x
        | Some p ->
            let px = Perm.apply_vec p x in
            Trisolve_sympiler.solve_full_ip t.compiled px;
            let xn = Perm.apply_inv_vec p px in
            Array.blit xn 0 x 0 (Array.length x))

  (* Plans: allocate the numeric workspaces once, then solve repeatedly
     with zero steady-state allocation. [Prof.start]/[stop] rather than
     [Prof.time] keeps even the profiled path closure-free. *)
  type plan = {
    handle : t;
    p : Trisolve_sympiler.plan;
    par : Trisolve_parallel.plan option;
    ord_b : Vector.sparse option;
        (* permuted-b scratch of an ordered plan: fixed (permuted) indices,
           values refreshed by each execute *)
    ord_x : float array option; (* natural-order output buffer *)
    native : Native_engine.exec option;
        (* compiled-C executor: b0 = Lx (filled at plan time), b1 = x,
           b2 = tmp when VS-Block added one *)
    m_exec : Metrics.histogram; (* per-call solve latency *)
  }

  (* The emitted C binds L's values as a runtime parameter, so the plan
     loads them into the Lx buffer once — same binding time as the OCaml
     executor, whose compiled plan captured [t.l]'s values at compile. *)
  let native_exec (mode : Native_engine.mode) (t : t) :
      Native_engine.exec option =
    let b =
      {
        Vector.n = t.l.Csc.ncols;
        indices = t.b_pattern;
        values = Array.map (fun _ -> 1.0) t.b_pattern;
      }
    in
    let r = Sympiler_ir.Pipeline.trisolve t.l b in
    let nargs = List.length r.Sympiler_ir.Pipeline.kernel.Sympiler_ir.Ast.params in
    match
      Native_engine.load ~mode ~pattern_key:(Csc.pattern_hash t.l)
        ~family:"trisolve" ~kname:"trisolve" ~nargs ~int_return:false
        ~sizes:
          [| Csc.nnz t.l; t.l.Csc.ncols; r.Sympiler_ir.Pipeline.tmp_size |]
        r.Sympiler_ir.Pipeline.c_code
    with
    | None -> None
    | Some e ->
        Native_engine.blit_in t.l.Csc.values e.Native_engine.b0;
        Some e

  (* [~ndomains] switches the plan to the level-set executor on the
     persistent domain pool; the levelization (one more inspection set) is
     paid here, at plan time. Any requested domain count — including 1 —
     goes through the level schedule, so results are bitwise-identical
     across [ndomains]; they may differ in operation order (hence in last
     bits) from the reach-set executor of a plain plan. *)
  let plan ?ndomains ?(engine : engine = `Ocaml) (t : t) : plan =
    let par =
      match ndomains with
      | None -> None
      | Some nd ->
          Some
            (Prof.time "symbolic" (fun () ->
                 Trisolve_parallel.make_plan ~ndomains:nd
                   (Trisolve_parallel.compile t.l)))
    in
    let native =
      match native_mode engine with
      | None -> None
      | Some mode -> native_exec mode t
    in
    let ord_b, ord_x =
      match t.ord.o_perm with
      | None -> (None, None)
      | Some _ ->
          ( Some
              {
                Vector.n = t.l.Csc.ncols;
                indices = t.b_pattern;
                values = Array.make (Array.length t.b_pattern) 0.0;
              },
            Some (Array.make t.l.Csc.ncols 0.0) )
    in
    {
      handle = t;
      p = Trisolve_sympiler.make_plan t.compiled;
      par;
      ord_b;
      ord_x;
      native;
      m_exec =
        execute_hist ~family:"trisolve" ~op:"solve"
          ~engine:(engine_label native engine) ~ordering:t.ord.o_name;
    }

  (* The inner executor dispatch shared by the natural and ordered paths.
     A native plan zeroes the dense x buffer and scatters b into it — the
     same per-call work [Trisolve_sympiler.solve_ip] does on its plan
     array — then blits the solution into the OCaml plan's buffer so the
     returned view is the same array whichever engine ran. *)
  let run_inner (p : plan) (b : Vector.sparse) : float array =
    match p.native with
    | Some e ->
        (* The solution's nonzero set is exactly the reach-set (pruned
           supernode columns compute exact FP zeros), so resetting and
           copying out only reach entries is sound — and keeps the native
           per-call cost O(|reach|), below the OCaml executor's O(n)
           scatter reset. *)
        let xb = e.Native_engine.b1 in
        let reach = p.handle.reach in
        Native_engine.fill0_at xb reach;
        Native_engine.scatter xb b.Vector.indices b.Vector.values;
        ignore (Native_engine.call e : int);
        let x = p.p.Trisolve_sympiler.x in
        Native_engine.gather xb reach x;
        x
    | None -> (
        match p.par with
        | Some pp -> Trisolve_parallel.solve_ip_sparse pp b
        | None -> Trisolve_sympiler.solve_ip p.p b)

  let execute_ip_raw (p : plan) (b : Vector.sparse) : float array =
    Prof.start "numeric";
    let r =
      try
        match (p.ord_b, p.ord_x) with
        | None, _ | _, None -> run_inner p b
        | Some pb, Some out ->
            let map = p.handle.ord_b_map in
            if Array.length b.Vector.values <> Array.length map then
              invalid_arg
                "Sympiler.Trisolve.execute_ip: b does not match the \
                 compiled pattern";
            for t = 0 to Array.length map - 1 do
              pb.Vector.values.(t) <- b.Vector.values.(map.(t))
            done;
            let xp = run_inner p pb in
            let perm =
              match p.handle.ord.o_perm with
              | Some q -> q
              | None -> assert false
            in
            for k = 0 to Array.length out - 1 do
              out.(perm.(k)) <- xp.(k)
            done;
            out
      with e ->
        Prof.stop "numeric";
        raise e
    in
    Prof.stop "numeric";
    r

  let execute_ip (p : plan) (b : Vector.sparse) : float array =
    if Metrics.enabled () then begin
      let t0 = Prof.now_seconds () in
      let r = execute_ip_raw p b in
      Metrics.observe p.m_exec (Prof.now_seconds () -. t0);
      r
    end
    else execute_ip_raw p b

  let plan_latency (p : plan) = Metrics.snapshot p.m_exec
  let solve_plan = execute_ip

  (* Generated C source implementing the same specialized solve
     (VS-Block + VI-Prune + low-level transformations). *)
  let c_code (t : t) : string =
    let b =
      {
        Vector.n = t.l.Csc.ncols;
        indices = t.b_pattern;
        values = Array.map (fun _ -> 1.0) t.b_pattern;
      }
    in
    (Sympiler_ir.Pipeline.trisolve t.l b).Sympiler_ir.Pipeline.c_code
end

module Cholesky = struct
  type variant = Supernodal | Simplicial

  type t = {
    variant : variant;
    supernodal : Cholesky_supernodal.Sympiler.compiled option;
    simplicial : Cholesky_ref.Decoupled.compiled option;
    pattern : Csc.t; (* lower(A) pattern compiled against (permuted) *)
    natural_pattern : Csc.t; (* caller's lower(A) before any ordering *)
    symbolic_seconds : float;
    flops : float;
    nnz_l : int;
    decisions : Trace.decision list;
    ord : applied_ordering;
  }

  type pattern = Csc.t
  type input = Csc.t
  type output = Csc.t

  (* Compile Cholesky for the pattern of lower-triangular [a_lower]. The
     supernodal variant (VS-Block + low-level) is the default; [Simplicial]
     gives the column (VI-Prune-only) code. [vs_block_threshold]: minimum
     average supernode width for VS-Block to pay off (paper §4.2) — below
     it compilation falls back to the simplicial variant automatically.
     [fill0] reuses a caller-provided fill analysis of the same pattern. *)
  let compile_internal ?fill:fill0 ~variant ~specialized ~vs_block_threshold
      ?max_width ?(ordering : ordering = `Natural) (a_natural : Csc.t) : t =
    if not (Csc.is_lower_triangular a_natural) then
      invalid_arg "Sympiler.Cholesky.compile: pass lower(A)";
    let t0 = Prof.now_seconds () in
    (* The ordering stage: permute the pattern, re-run the fill analysis on
       P A P^T, and record the predicted fill ratio ordered-vs-natural as a
       traced decision (a caller-provided [?fill] is the natural-order
       analysis, so it seeds the comparison baseline, not the compile). *)
    let a_lower, fill0, ord, ord_decisions =
      match ordering with
      | `Natural -> (a_natural, fill0, natural_ordering, [])
      | o ->
          let n = a_natural.Csc.ncols in
          let p =
            resolve_ordering ~who:"Sympiler.Cholesky.compile" o
              (lazy (Csc.symmetrize_from_lower a_natural))
              n
          in
          let pl, map = Perm.permute_lower p a_natural in
          let fill_nat =
            match fill0 with
            | Some f -> f
            | None -> Sympiler_symbolic.Fill_pattern.analyze a_natural
          in
          let fill_perm = Sympiler_symbolic.Fill_pattern.analyze pl in
          let nnz_nat =
            fill_nat.Sympiler_symbolic.Fill_pattern.l_pattern.Csc.colptr.(n)
          in
          let nnz_perm =
            fill_perm.Sympiler_symbolic.Fill_pattern.l_pattern.Csc.colptr.(n)
          in
          let d =
            {
              Trace.pass = "ordering";
              fired = true;
              metric = "fill_ratio_vs_natural";
              value =
                (if nnz_nat = 0 then 1.0
                 else float_of_int nnz_perm /. float_of_int nnz_nat);
              threshold = 1.0;
            }
          in
          Trace.decision d;
          ( pl,
            Some fill_perm,
            { o_perm = Some p; o_name = ordering_name o; o_map = map },
            [ d ] )
    in
    let ord_seconds = Prof.now_seconds () -. t0 in
    Trace.with_span "compile.cholesky"
      ~attrs:[ ("n", Trace.Int a_lower.Csc.ncols) ]
    @@ fun () ->
    let (sup, simp, flops, nnz_l, decisions), symbolic_seconds =
      time_symbolic (fun () ->
          (* One shared symbolic factorization; the variant decision (the
             paper's VS-Block threshold) is taken on the cheap supernode
             statistics before any variant-specific planning is built. *)
          let fill =
            match fill0 with
            | Some f -> f
            | None -> Sympiler_symbolic.Fill_pattern.analyze a_lower
          in
          let flops = Sympiler_symbolic.Fill_pattern.flops fill in
          let n = a_lower.Csc.ncols in
          let nnz_l =
            fill.Sympiler_symbolic.Fill_pattern.l_pattern.Csc.colptr.(n)
          in
          let go_supernodal, avg_width =
            match variant with
            | Simplicial -> (false, Float.nan (* forced: never measured *))
            | Supernodal ->
                let sn =
                  Sympiler_symbolic.Supernodes.detect_etree ?max_width
                    ~counts:fill.Sympiler_symbolic.Fill_pattern.counts
                    ~parent:fill.Sympiler_symbolic.Fill_pattern.parent ()
                in
                let w = Sympiler_symbolic.Supernodes.avg_width sn in
                (w >= vs_block_threshold, w)
          in
          let d_vs =
            {
              Trace.pass = "vs-block";
              fired = go_supernodal;
              metric = "avg_supernode_width";
              value = avg_width;
              threshold = vs_block_threshold;
            }
          in
          (* VI-Prune always fires for Cholesky: the prune-sets are baked
             into both variants. Its measured quantity is the fraction of
             the dense n*(n-1)/2 candidate updates the pattern removed. *)
          let d_vi =
            {
              Trace.pass = "vi-prune";
              fired = true;
              metric = "pruned_iteration_ratio";
              value =
                (if n < 2 then 0.0
                 else
                   1.0
                   -. float_of_int (nnz_l - n)
                      /. (float_of_int n *. float_of_int (n - 1) /. 2.0));
              threshold = 0.0;
            }
          in
          Trace.decision d_vi;
          Trace.decision d_vs;
          let decisions = [ d_vi; d_vs ] in
          if go_supernodal then
            let c =
              Cholesky_supernodal.Sympiler.compile ~fill ?max_width
                ~specialized a_lower
            in
            (Some c, None, flops, nnz_l, decisions)
          else
            let d = Cholesky_ref.Decoupled.compile ~fill a_lower in
            (None, Some d, flops, nnz_l, decisions))
    in
    let variant = if sup = None then Simplicial else variant in
    observe_compile ~family:"cholesky" ~ordering:ord.o_name
      (symbolic_seconds +. ord_seconds);
    {
      variant;
      supernodal = sup;
      simplicial = simp;
      pattern = a_lower;
      natural_pattern = a_natural;
      symbolic_seconds = symbolic_seconds +. ord_seconds;
      flops;
      nnz_l;
      decisions = ord_decisions @ decisions;
      ord;
    }

  (* The unified KERNEL spelling: the variant request, the VS-Block
     threshold, the width cap and the ordering all ride in the shared
     [Options.t] record. *)
  let compile_opts (opts : Options.t) (a_lower : pattern) : t =
    compile_internal ?fill:opts.Options.fill
      ~variant:(if opts.Options.simplicial then Simplicial else Supernodal)
      ~specialized:opts.Options.specialized
      ~vs_block_threshold:
        (Option.value opts.Options.vs_block_threshold ~default:2.0)
      ?max_width:opts.Options.max_width ~ordering:opts.Options.ordering a_lower

  (* Compilation cache: keyed on lower(A)'s structure plus the option
     fingerprint — a hit returns the previously compiled handle, physically
     equal, skipping the symbolic phase entirely. *)
  let default_cache : t Plan_cache.t = Plan_cache.create ()

  let compile ?cache ?(opts = Options.default) (a_lower : pattern) : t =
    match (cache, opts.Options.cache) with
    | None, false -> compile_opts opts a_lower
    | _ ->
        let c = Option.value cache ~default:default_cache in
        Trace.with_span "compile_cached.cholesky" @@ fun () ->
        Plan_cache.find_or_compile c ~pattern:a_lower
          ~extra:(Options.fingerprint opts)
          (fun () -> compile_opts opts a_lower)

  (* Pre-unification spellings, kept as thin aliases (deprecated in the
     interface). *)
  let compile_ext ?(variant = Supernodal) ?specialized ?vs_block_threshold
      ?fill ?max_width ?ordering (a_lower : Csc.t) : t =
    compile
      ~opts:
        (Options.make ?fill ?max_width ?ordering ?vs_block_threshold
           ~simplicial:(variant = Simplicial) ?specialized ())
      a_lower

  let compile_cached_ext ?cache ?(variant = Supernodal) ?specialized
      ?vs_block_threshold ?max_width ?ordering (a_lower : Csc.t) : t =
    compile
      ~cache:(Option.value cache ~default:default_cache)
      ~opts:
        (Options.make ?max_width ?ordering ?vs_block_threshold
           ~simplicial:(variant = Simplicial) ?specialized ())
      a_lower

  let compile_cached ?cache ?fill ?max_width ?ordering (a_lower : pattern) : t
      =
    compile
      ~cache:(Option.value cache ~default:default_cache)
      ~opts:(Options.make ?fill ?max_width ?ordering ())
      a_lower

  let cache_stats () = Plan_cache.stats default_cache
  let cache_clear () = Plan_cache.clear default_cache
  let symbolic_seconds (t : t) = t.symbolic_seconds

  (* Numeric factorization: A = L L^T for any [a_lower] sharing the compiled
     (natural-order) pattern. On an ordered handle the result is the factor
     of P A P^T — exactly what compiling the pre-permuted matrix yields. *)
  let factor (t : t) (a_lower : Csc.t) : Csc.t =
    Prof.time "numeric" @@ fun () ->
    let a_lower =
      ordered_input ~who:"Sympiler.Cholesky.factor" t.ord t.pattern a_lower
    in
    match (t.supernodal, t.simplicial) with
    | Some c, _ -> Cholesky_supernodal.Sympiler.factor c a_lower
    | None, Some d -> Cholesky_ref.Decoupled.factor d a_lower
    | None, None -> assert false

  (* Rank-update state, built lazily on the first [update_ip] /
     [refactor_cols_ip] call: the kernel plan (scatter workspace, rollback
     snapshot, memoized path table, incremental-refactor inspectors) plus
     the ordered-gather buffers that carry a natural-order update vector
     into compiled order without allocating. *)
  type updown = {
    rk : Rank_update.plan;
    up_pinv : int array; (* inverse permutation; [||] on natural plans *)
    up_wi : int array; (* permuted+sorted update indices *)
    up_wv : float array; (* matching values *)
  }

  (* Plans: allocate the factor storage and numeric scratch once, then
     refactorize repeatedly with zero steady-state allocation.
     [Prof.start]/[stop] rather than [Prof.time] keeps even the profiled
     path closure-free. The engine fields are mutable solely for the
     escalation path of [update_ip], which recompiles the plan in place
     when an update needs entries the factor pattern lacks. *)
  type plan = {
    mutable handle : t;
    mutable sup : Cholesky_supernodal.Sympiler.plan option;
    mutable simp : Cholesky_ref.Decoupled.plan option;
    mutable par : Cholesky_parallel.plan option;
    mutable scratch : Csc.t option;
        (* ordered plans gather natural-order values in here *)
    mutable native : Native_engine.exec option;
        (* compiled-C executor: b0 = Ax, b1 = Lx, b2 = f (simplicial
           accumulator; it self-restores to zero after every column) *)
    m_exec : Metrics.histogram; (* per-call refactorization latency *)
    mutable ru : updown option; (* lazy rank-update state *)
    mutable esc_map : int array option;
        (* after escalation: gather map from natural input nnz to the
           escalated pattern, -1 = structural zero *)
  }

  (* Both emitted variants fully (re)write Lx each call — the supernodal
     driver zeroes its panels, the simplicial kernel assigns every entry
     from the self-restoring f — so only Ax needs refreshing per call. *)
  let native_exec (mode : Native_engine.mode) (t : t) :
      Native_engine.exec option =
    let n = t.pattern.Csc.ncols in
    let kname, source, fsize =
      match t.supernodal with
      | Some c -> ("cholesky_supernodal", Codegen_supernodal.to_c c t.pattern, 0)
      | None ->
          ( "cholesky",
            (Sympiler_ir.Pipeline.cholesky t.pattern).Sympiler_ir.Pipeline
            .c_code,
            n )
    in
    let nargs = if fsize > 0 then 3 else 2 in
    Native_engine.load ~mode ~pattern_key:(Csc.pattern_hash t.pattern)
      ~family:"cholesky" ~kname ~nargs ~int_return:false
      ~sizes:[| Csc.nnz t.pattern; t.nnz_l; fsize |]
      source

  (* [~ndomains] on a supernodal handle: levelize the already-compiled
     supernode DAG (plan-time inspection, no re-analysis) and run levels
     on the persistent domain pool. The parallel engine executes each
     target supernode with the same operation sequence as the sequential
     one, so factors are bitwise-identical for any domain count. The
     simplicial column code has no level schedule — [ndomains] is
     ignored there. *)
  let plan ?ndomains ?(engine : engine = `Ocaml) (t : t) : plan =
    let scratch = ordering_scratch t.ord t.pattern in
    let native =
      match native_mode engine with
      | None -> None
      | Some mode -> native_exec mode t
    in
    let m_exec =
      execute_hist ~family:"cholesky" ~op:"factor"
        ~engine:(engine_label native engine) ~ordering:t.ord.o_name
    in
    match (ndomains, t.supernodal) with
    | Some nd, Some c ->
        let lp =
          Prof.time "symbolic" (fun () ->
              Cholesky_parallel.make_plan ~ndomains:nd
                (Cholesky_parallel.levelize c))
        in
        {
          handle = t;
          sup = None;
          simp = None;
          par = Some lp;
          scratch;
          native;
          m_exec;
          ru = None;
          esc_map = None;
        }
    | _ -> (
        match (t.supernodal, t.simplicial) with
        | Some c, _ ->
            {
              handle = t;
              sup = Some (Cholesky_supernodal.Sympiler.make_plan c);
              simp = None;
              par = None;
              scratch;
              native;
              m_exec;
              ru = None;
              esc_map = None;
            }
        | None, Some d ->
            {
              handle = t;
              sup = None;
              simp = Some (Cholesky_ref.Decoupled.make_plan d);
              par = None;
              scratch;
              native;
              m_exec;
              ru = None;
              esc_map = None;
            }
        | None, None -> assert false)

  (* The plan's factor view: refreshed in place by each [refactor_ip]. *)
  let plan_factor (p : plan) : Csc.t =
    match (p.sup, p.simp, p.par) with
    | Some sp, _, _ -> sp.Cholesky_supernodal.Sympiler.l
    | None, Some sp, _ -> sp.Cholesky_ref.Decoupled.l
    | None, None, Some pp -> pp.Cholesky_parallel.l
    | None, None, None -> assert false

  (* Bring caller values into compiled order. Escalated plans gather
     through the -1-extended map (callers keep passing the original
     natural pattern; the escalation's extra entries are structural
     zeros); ordered plans through the baked permutation map; natural
     plans pass through. *)
  let gathered_input ~who (p : plan) (a_lower : Csc.t) : Csc.t =
    match (p.esc_map, p.scratch) with
    | Some em, Some s ->
        gather_esc ~who ~expect:(Csc.nnz p.handle.natural_pattern) em
          a_lower.Csc.values s;
        s
    | Some _, None -> assert false (* escalation always installs scratch *)
    | None, Some s ->
        gather_values ~who p.handle.ord.o_map a_lower.Csc.values s;
        s
    | None, None -> a_lower

  let refactor_ip_raw (p : plan) (a_lower : Csc.t) : unit =
    Prof.start "numeric";
    (try
       let a_lower =
         gathered_input ~who:"Sympiler.Cholesky.execute_ip" p a_lower
       in
       (match p.native with
        | Some e ->
            Native_engine.blit_in a_lower.Csc.values e.Native_engine.b0;
            ignore (Native_engine.call e : int);
            Native_engine.blit_out e.Native_engine.b1
              (plan_factor p).Csc.values
        | None -> (
            match (p.sup, p.simp, p.par) with
            | Some sp, _, _ -> Cholesky_supernodal.Sympiler.factor_ip sp a_lower
            | None, Some sp, _ -> Cholesky_ref.Decoupled.factor_ip sp a_lower
            | None, None, Some pp -> Cholesky_parallel.factor_ip pp a_lower
            | None, None, None -> assert false));
       (* keep the incremental-refactor diff baseline fresh *)
       match p.ru with
       | Some st -> Rank_update.note_refactor st.rk a_lower.Csc.values
       | None -> ()
     with e ->
       Prof.stop "numeric";
       raise e);
    Prof.stop "numeric"

  let refactor_ip (p : plan) (a_lower : Csc.t) : unit =
    if Metrics.enabled () then begin
      let t0 = Prof.now_seconds () in
      refactor_ip_raw p a_lower;
      Metrics.observe p.m_exec (Prof.now_seconds () -. t0)
    end
    else refactor_ip_raw p a_lower

  let plan_latency (p : plan) = Metrics.snapshot p.m_exec

  let execute_ip (p : plan) (a_lower : Csc.t) : Csc.t =
    refactor_ip p a_lower;
    plan_factor p

  (* ----------------------- rank update / downdate ----------------------- *)

  (* Lazy updown state: built on the first [update_ip] /
     [refactor_cols_ip]. The kernel plan borrows the plan's factor view,
     so updates and refactors stay coherent without copying. *)
  let ru_state (p : plan) : updown =
    match p.ru with
    | Some st -> st
    | None ->
        let st =
          Prof.time "symbolic" (fun () ->
              let n = p.handle.pattern.Csc.ncols in
              {
                rk =
                  Rank_update.make_plan ~a_pattern:p.handle.pattern
                    (plan_factor p);
                up_pinv =
                  (match p.handle.ord.o_perm with
                  | Some pm -> Perm.inverse pm
                  | None -> [||]);
                up_wi = Array.make (max 1 n) 0;
                up_wv = Array.make (max 1 n) 0.0;
              })
        in
        p.ru <- Some st;
        st

  (* Escalation: the update needs entries the factor pattern lacks (the
     precondition is tight — a violation always means structural growth),
     so recompile in place. The plan's current matrix lower(L L^T) is
     recovered from the factor, the update's clique merged in, and the
     result compiled through the default cache (a repeated escalation
     pattern hits it). The new engine is built and factored BEFORE any
     field swaps, so a failed escalation (e.g. a downdate that leaves the
     matrix indefinite) leaves the plan exactly as it was. [wi]/[wv] are
     sorted, compiled-order, [len] entries. *)
  let escalate (p : plan) ~(neg : bool) ~(sigma : float) (wi : int array)
      (wv : float array) (len : int) : unit =
    Trace.with_span "updown.escalate"
      ~attrs:[ ("len", Trace.Int len) ]
    @@ fun () ->
    let sigma = if neg then -.sigma else sigma in
    let st = match p.ru with Some st -> st | None -> assert false in
    let m = Rank_update.current_matrix st.rk in
    let a_esc = clique_union m ~sigma wi wv len in
    let t' = compile ~cache:default_cache a_esc in
    let t_new =
      {
        t' with
        ord = p.handle.ord;
        natural_pattern = p.handle.natural_pattern;
      }
    in
    let sup', simp' =
      match (t'.supernodal, t'.simplicial) with
      | Some c, _ -> (Some (Cholesky_supernodal.Sympiler.make_plan c), None)
      | None, Some d -> (None, Some (Cholesky_ref.Decoupled.make_plan d))
      | None, None -> assert false
    in
    (* Numeric phase on the escalated input; raises (plan untouched) if
       the updated matrix is not positive definite. *)
    (match (sup', simp') with
    | Some sp, _ -> Cholesky_supernodal.Sympiler.factor_ip sp a_esc
    | None, Some sp -> Cholesky_ref.Decoupled.factor_ip sp a_esc
    | None, None -> assert false);
    let old_q =
      match p.esc_map with
      | Some em -> fun q -> em.(q)
      | None -> (
          match p.handle.ord.o_perm with
          | Some _ ->
              let map = p.handle.ord.o_map in
              fun q -> map.(q)
          | None -> fun q -> q)
    in
    let em =
      extend_input_map ~old_pattern:p.handle.pattern ~old_q t_new.pattern
    in
    p.handle <- t_new;
    p.sup <- sup';
    p.simp <- simp';
    p.par <- None;
    p.native <- None;
    p.scratch <-
      Some
        {
          t_new.pattern with
          Csc.values = Array.make (Csc.nnz t_new.pattern) 0.0;
        };
    p.esc_map <- Some em;
    p.ru <- None;
    if Prof.enabled () then begin
      let k = Prof.cell () in
      k.Prof.updown_escalations <- k.Prof.updown_escalations + 1
    end

  (* In-place rank-1 update of the plan's factor: L L^T becomes
     A + sigma w w^T. [w] is in natural order; ordered plans gather it
     through the inverse permutation into plan-owned buffers (steady-state
     calls allocate nothing). An update outside the factor pattern
     escalates (recompiles the plan in place with the augmented pattern) —
     after it, the plan still accepts inputs with the original natural
     pattern. A rejected downdate rolls the factor back and re-raises
     [Rank_update.Not_positive_definite]. *)
  (* [neg] carries the downdate direction as a flag so the sign flip never
     boxes a fresh float on the zero-alloc path. *)
  let updown_body (p : plan) ~(neg : bool) ~(sigma : float) (w : Vector.sparse)
      : unit =
    let len = Array.length w.Vector.indices in
    if len > 0 && sigma <> 0.0 then begin
      let st = ru_state p in
      match p.handle.ord.o_perm with
      | None -> (
          try Rank_update.update_vec st.rk ~neg ~sigma w
          with Rank_update.Pattern_violation _ ->
            escalate p ~neg ~sigma w.Vector.indices w.Vector.values len)
      | Some _ ->
          if w.Vector.n <> p.handle.pattern.Csc.ncols then
            invalid_arg "Sympiler.Cholesky.update_ip: dimension mismatch";
          let len =
            permute_sorted_w ~who:"Sympiler.Cholesky.update_ip" st.up_pinv
              st.up_wi st.up_wv w
          in
          (try
             Rank_update.update_raw st.rk ~neg ~sigma st.up_wi st.up_wv len
           with Rank_update.Pattern_violation _ ->
             escalate p ~neg ~sigma st.up_wi st.up_wv len)
    end

  let update_ip (p : plan) ?(sigma = 1.0) (w : Vector.sparse) : unit =
    updown_body p ~neg:false ~sigma w

  let downdate_ip (p : plan) ?(sigma = 1.0) (w : Vector.sparse) : unit =
    updown_body p ~neg:true ~sigma w

  (* Incremental refactorization: recompute only the factor rows whose
     values can change under the new input (changed input columns, closed
     over their etree paths). Needs a baseline from a prior full
     [refactor_ip] that rank updates have not invalidated — otherwise it
     transparently falls back to the full refactor. Returns the number of
     rows recomputed. *)
  let refactor_cols_ip (p : plan) (a_lower : Csc.t) : int =
    let st = ru_state p in
    if not (Rank_update.prev_valid st.rk) then begin
      refactor_ip p a_lower;
      p.handle.pattern.Csc.ncols
    end
    else begin
      Prof.start "numeric";
      let nrows =
        try
          let a =
            gathered_input ~who:"Sympiler.Cholesky.refactor_cols_ip" p a_lower
          in
          Rank_update.refactor_cols_ip st.rk a.Csc.values
        with e ->
          Prof.stop "numeric";
          raise e
      in
      Prof.stop "numeric";
      nrows
    end

  (* Solve A x = b: numeric factorization + two triangular solves. On an
     ordered handle the permuted system (P A P^T)(P x) = P b is solved and
     x returned in natural order. *)
  let solve (t : t) (a_lower : Csc.t) (b : float array) : float array =
    let l = factor t a_lower in
    match t.ord.o_perm with
    | None -> Cholesky_ref.solve_with_factor l b
    | Some p ->
        let pb = Perm.apply_vec p b in
        Perm.apply_inv_vec p (Cholesky_ref.solve_with_factor l pb)

  (* Generated C source: the supernodal driver with baked-in schedule, or
     the fully specialized simplicial kernel from the AST pipeline. *)
  let c_code (t : t) : string =
    match t.supernodal with
    | Some c -> Codegen_supernodal.to_c c t.pattern
    | None ->
        (Sympiler_ir.Pipeline.cholesky t.pattern).Sympiler_ir.Pipeline.c_code
end

(* The four §3.3 families below share one shape: a handle wrapping the
   kernel's compiled value, a pattern-keyed default cache, plan-owned
   numeric storage, and C emission from [Codegen_static]. Their executors
   are sequential (no level schedule), so [?ndomains] — like [?fill] and
   [?max_width] where the kernel has no use for them — is accepted for
   KERNEL uniformity and ignored. *)

module Ldlt = struct
  module K = Sympiler_kernels.Ldlt

  type pattern = Csc.t

  type t = {
    compiled : K.compiled;
    pattern : Csc.t;
    symbolic_seconds : float;
    ord : applied_ordering;
  }

  (* Rank-update state (GGMS C1), built lazily on the first [update_ip]. *)
  type updown = {
    lk : Rank_update.ldlt_plan;
    up_pinv : int array; (* inverse permutation; [||] on natural plans *)
    up_wi : int array;
    up_wv : float array;
  }

  type plan = {
    handle : t;
    p : K.plan;
    scratch : Csc.t option;
    native : Native_engine.exec option;
        (* b0 = Ax (lower values), b1 = Lx, b2 = D *)
    m_exec : Metrics.histogram; (* per-call factorization latency *)
    mutable ru : updown option; (* lazy rank-update state *)
  }

  type input = Csc.t
  type output = K.factors

  let compile_base ?(ordering : ordering = `Natural) (a_lower : pattern) : t =
    if not (Csc.is_lower_triangular a_lower) then
      invalid_arg "Sympiler.Ldlt.compile: pass lower(A)";
    let t0 = Prof.now_seconds () in
    let a_lower, ord =
      ordered_lower ~who:"Sympiler.Ldlt.compile" ordering a_lower
    in
    let ord_seconds = Prof.now_seconds () -. t0 in
    Trace.with_span "compile.ldlt"
      ~attrs:[ ("n", Trace.Int a_lower.Csc.ncols) ]
    @@ fun () ->
    let compiled, symbolic_seconds =
      time_symbolic (fun () -> K.compile a_lower)
    in
    observe_compile ~family:"ldlt" ~ordering:ord.o_name
      (symbolic_seconds +. ord_seconds);
    {
      compiled;
      pattern = a_lower;
      symbolic_seconds = symbolic_seconds +. ord_seconds;
      ord;
    }

  let default_cache : t Plan_cache.t = Plan_cache.create ()

  let compile ?cache ?(opts = Options.default) (a_lower : pattern) : t =
    match (cache, opts.Options.cache) with
    | None, false -> compile_base ~ordering:opts.Options.ordering a_lower
    | _ ->
        let c = Option.value cache ~default:default_cache in
        Trace.with_span "compile_cached.ldlt" @@ fun () ->
        Plan_cache.find_or_compile c ~pattern:a_lower
          ~extra:(Options.fingerprint opts)
          (fun () -> compile_base ~ordering:opts.Options.ordering a_lower)

  let compile_cached ?cache ?fill ?max_width ?ordering (a_lower : pattern) : t
      =
    compile
      ~cache:(Option.value cache ~default:default_cache)
      ~opts:(Options.make ?fill ?max_width ?ordering ())
      a_lower

  let cache_stats () = Plan_cache.stats default_cache
  let cache_clear () = Plan_cache.clear default_cache
  let symbolic_seconds (t : t) = t.symbolic_seconds

  let plan ?ndomains:_ ?(engine : engine = `Ocaml) (t : t) : plan =
    let p = K.make_plan t.compiled in
    let native =
      match native_mode engine with
      | None -> None
      | Some mode ->
          static_native_exec mode ~family:"ldlt" ~kname:"ldlt_factor"
            ~pattern:t.pattern
            ~sizes:
              [| Csc.nnz t.pattern; Array.length p.K.lx; t.pattern.Csc.ncols |]
            (Codegen_static.ldlt t.compiled)
    in
    {
      handle = t;
      p;
      scratch = ordering_scratch t.ord t.pattern;
      native;
      m_exec =
        execute_hist ~family:"ldlt" ~op:"factor"
          ~engine:(engine_label native engine) ~ordering:t.ord.o_name;
      ru = None;
    }

  let execute_ip_raw (p : plan) (a_lower : input) : output =
    Prof.start "numeric";
    (try
       let a_lower =
         match p.scratch with
         | None -> a_lower
         | Some s ->
             gather_values ~who:"Sympiler.Ldlt.execute_ip" p.handle.ord.o_map
               a_lower.Csc.values s;
             s
       in
       match p.native with
       | Some e ->
           Native_engine.blit_in a_lower.Csc.values e.Native_engine.b0;
           let rc = Native_engine.call e in
           if rc >= 0 then raise (K.Zero_pivot rc);
           (* The plan's factor views alias [lx] / [d], so blitting the
              kernel buffers back makes [p.p.K.f] the result either way. *)
           Native_engine.blit_out e.Native_engine.b1 p.p.K.lx;
           Native_engine.blit_out e.Native_engine.b2 p.p.K.f.K.d
       | None -> K.factor_ip p.p a_lower
     with e ->
       Prof.stop "numeric";
       raise e);
    Prof.stop "numeric";
    p.p.K.f

  let execute_ip (p : plan) (a_lower : input) : output =
    if Metrics.enabled () then begin
      let t0 = Prof.now_seconds () in
      let r = execute_ip_raw p a_lower in
      Metrics.observe p.m_exec (Prof.now_seconds () -. t0);
      r
    end
    else execute_ip_raw p a_lower

  let plan_latency (p : plan) = Metrics.snapshot p.m_exec
  let factor_ip = execute_ip

  let ru_state (p : plan) : updown =
    match p.ru with
    | Some st -> st
    | None ->
        let st =
          Prof.time "symbolic" (fun () ->
              let n = p.handle.pattern.Csc.ncols in
              {
                lk = Rank_update.make_ldlt_plan p.p.K.f.K.l p.p.K.f.K.d;
                up_pinv =
                  (match p.handle.ord.o_perm with
                  | Some pm -> Perm.inverse pm
                  | None -> [||]);
                up_wi = Array.make (max 1 n) 0;
                up_wv = Array.make (max 1 n) 0.0;
              })
        in
        p.ru <- Some st;
        st

  (* In-place rank-1 update of the plan's factors (GGMS C1): L D L^T
     becomes A + sigma w w^T. [w] is natural-order; ordered plans gather
     through the inverse permutation. No escalation path here — an update
     outside the factor pattern raises [Rank_update.Pattern_violation] and
     the caller recompiles (the Cholesky facade automates this; LDL^T's
     indefinite inputs make the escalated matrix's signature ambiguous, so
     the decision stays with the caller). A zero updated pivot raises
     [Sympiler_kernels.Ldlt.Zero_pivot] with the factors rolled back. *)
  let updown_body (p : plan) ~(neg : bool) ~(sigma : float) (w : Vector.sparse)
      : unit =
    let len = Array.length w.Vector.indices in
    if len > 0 && sigma <> 0.0 then begin
      let st = ru_state p in
      match p.handle.ord.o_perm with
      | None -> Rank_update.ldlt_update_vec st.lk ~neg ~sigma w
      | Some _ ->
          if w.Vector.n <> p.handle.pattern.Csc.ncols then
            invalid_arg "Sympiler.Ldlt.update_ip: dimension mismatch";
          let len =
            permute_sorted_w ~who:"Sympiler.Ldlt.update_ip" st.up_pinv
              st.up_wi st.up_wv w
          in
          Rank_update.ldlt_update_raw st.lk ~neg ~sigma st.up_wi st.up_wv len
    end

  let update_ip (p : plan) ?(sigma = 1.0) (w : Vector.sparse) : unit =
    updown_body p ~neg:false ~sigma w

  let downdate_ip (p : plan) ?(sigma = 1.0) (w : Vector.sparse) : unit =
    updown_body p ~neg:true ~sigma w

  let factor (t : t) (a_lower : Csc.t) : output =
    Prof.time "numeric" (fun () ->
        K.factor t.compiled
          (ordered_input ~who:"Sympiler.Ldlt.factor" t.ord t.pattern a_lower))

  let c_code (t : t) : string = Codegen_static.ldlt t.compiled
end

module Lu = struct
  module K = Sympiler_kernels.Lu

  type pattern = Csc.t

  type t = {
    compiled : K.Sympiler.compiled;
    pattern : Csc.t;
    symbolic_seconds : float;
    flops : float;
    ord : applied_ordering;
  }

  type plan = {
    handle : t;
    p : K.Sympiler.plan;
    scratch : Csc.t option;
    native : Native_engine.exec option; (* b0 = Ax, b1 = Lx, b2 = Ux *)
    m_exec : Metrics.histogram; (* per-call factorization latency *)
  }

  type input = Csc.t
  type output = K.factors

  let compile_base ?(ordering : ordering = `Natural) (a : pattern) : t =
    let t0 = Prof.now_seconds () in
    let a, ord = ordered_square ~who:"Sympiler.Lu.compile" ordering a in
    let ord_seconds = Prof.now_seconds () -. t0 in
    Trace.with_span "compile.lu" ~attrs:[ ("n", Trace.Int a.Csc.ncols) ]
    @@ fun () ->
    let compiled, symbolic_seconds =
      time_symbolic (fun () -> K.Sympiler.compile a)
    in
    observe_compile ~family:"lu" ~ordering:ord.o_name
      (symbolic_seconds +. ord_seconds);
    {
      compiled;
      pattern = a;
      symbolic_seconds = symbolic_seconds +. ord_seconds;
      flops = compiled.K.Sympiler.flops;
      ord;
    }

  let default_cache : t Plan_cache.t = Plan_cache.create ()

  let compile ?cache ?(opts = Options.default) (a : pattern) : t =
    match (cache, opts.Options.cache) with
    | None, false -> compile_base ~ordering:opts.Options.ordering a
    | _ ->
        let c = Option.value cache ~default:default_cache in
        Trace.with_span "compile_cached.lu" @@ fun () ->
        Plan_cache.find_or_compile c ~pattern:a
          ~extra:(Options.fingerprint opts)
          (fun () -> compile_base ~ordering:opts.Options.ordering a)

  let compile_cached ?cache ?fill ?max_width ?ordering (a : pattern) : t =
    compile
      ~cache:(Option.value cache ~default:default_cache)
      ~opts:(Options.make ?fill ?max_width ?ordering ())
      a

  let cache_stats () = Plan_cache.stats default_cache
  let cache_clear () = Plan_cache.clear default_cache
  let symbolic_seconds (t : t) = t.symbolic_seconds

  let plan ?ndomains:_ ?(engine : engine = `Ocaml) (t : t) : plan =
    let p = K.Sympiler.make_plan t.compiled in
    let native =
      match native_mode engine with
      | None -> None
      | Some mode ->
          static_native_exec mode ~family:"lu" ~kname:"lu_factor"
            ~pattern:t.pattern
            ~sizes:
              [|
                Csc.nnz t.pattern;
                Array.length p.K.Sympiler.lx;
                Array.length p.K.Sympiler.ux;
              |]
            (Codegen_static.lu t.compiled t.pattern)
    in
    {
      handle = t;
      p;
      scratch = ordering_scratch t.ord t.pattern;
      native;
      m_exec =
        execute_hist ~family:"lu" ~op:"factor"
          ~engine:(engine_label native engine) ~ordering:t.ord.o_name;
    }

  let execute_ip_raw (p : plan) (a : input) : output =
    Prof.start "numeric";
    (try
       let a =
         match p.scratch with
         | None -> a
         | Some s ->
             gather_values ~who:"Sympiler.Lu.execute_ip" p.handle.ord.o_map
               a.Csc.values s;
             s
       in
       match p.native with
       | Some e ->
           Native_engine.blit_in a.Csc.values e.Native_engine.b0;
           let rc = Native_engine.call e in
           if rc >= 0 then raise (K.Zero_pivot rc);
           Native_engine.blit_out e.Native_engine.b1 p.p.K.Sympiler.lx;
           Native_engine.blit_out e.Native_engine.b2 p.p.K.Sympiler.ux
       | None -> K.Sympiler.factor_ip p.p a
     with e ->
       Prof.stop "numeric";
       raise e);
    Prof.stop "numeric";
    p.p.K.Sympiler.f

  let execute_ip (p : plan) (a : input) : output =
    if Metrics.enabled () then begin
      let t0 = Prof.now_seconds () in
      let r = execute_ip_raw p a in
      Metrics.observe p.m_exec (Prof.now_seconds () -. t0);
      r
    end
    else execute_ip_raw p a

  let plan_latency (p : plan) = Metrics.snapshot p.m_exec
  let factor_ip = execute_ip

  let factor (t : t) (a : Csc.t) : output =
    Prof.time "numeric" (fun () ->
        K.Sympiler.factor t.compiled
          (ordered_input ~who:"Sympiler.Lu.factor" t.ord t.pattern a))

  let c_code (t : t) : string = Codegen_static.lu t.compiled t.pattern
end

module Ic0 = struct
  module K = Sympiler_kernels.Ic0

  type pattern = Csc.t

  type t = {
    compiled : K.compiled;
    pattern : Csc.t;
    symbolic_seconds : float;
    ord : applied_ordering;
  }

  type plan = {
    handle : t;
    p : K.plan;
    scratch : Csc.t option;
    native : Native_engine.exec option; (* b0 = Ax (lower values), b1 = Lx *)
    m_exec : Metrics.histogram; (* per-call factorization latency *)
  }

  type input = Csc.t
  type output = Csc.t

  let compile_base ?(ordering : ordering = `Natural) (a_lower : pattern) : t =
    if not (Csc.is_lower_triangular a_lower) then
      invalid_arg "Sympiler.Ic0.compile: pass lower(A)";
    let t0 = Prof.now_seconds () in
    let a_lower, ord =
      ordered_lower ~who:"Sympiler.Ic0.compile" ordering a_lower
    in
    let ord_seconds = Prof.now_seconds () -. t0 in
    Trace.with_span "compile.ic0"
      ~attrs:[ ("n", Trace.Int a_lower.Csc.ncols) ]
    @@ fun () ->
    let compiled, symbolic_seconds =
      time_symbolic (fun () -> K.compile a_lower)
    in
    observe_compile ~family:"ic0" ~ordering:ord.o_name
      (symbolic_seconds +. ord_seconds);
    {
      compiled;
      pattern = a_lower;
      symbolic_seconds = symbolic_seconds +. ord_seconds;
      ord;
    }

  let default_cache : t Plan_cache.t = Plan_cache.create ()

  let compile ?cache ?(opts = Options.default) (a_lower : pattern) : t =
    match (cache, opts.Options.cache) with
    | None, false -> compile_base ~ordering:opts.Options.ordering a_lower
    | _ ->
        let c = Option.value cache ~default:default_cache in
        Trace.with_span "compile_cached.ic0" @@ fun () ->
        Plan_cache.find_or_compile c ~pattern:a_lower
          ~extra:(Options.fingerprint opts)
          (fun () -> compile_base ~ordering:opts.Options.ordering a_lower)

  let compile_cached ?cache ?fill ?max_width ?ordering (a_lower : pattern) : t
      =
    compile
      ~cache:(Option.value cache ~default:default_cache)
      ~opts:(Options.make ?fill ?max_width ?ordering ())
      a_lower

  let cache_stats () = Plan_cache.stats default_cache
  let cache_clear () = Plan_cache.clear default_cache
  let symbolic_seconds (t : t) = t.symbolic_seconds

  let plan ?ndomains:_ ?(engine : engine = `Ocaml) (t : t) : plan =
    let p = K.make_plan t.compiled in
    let native =
      match native_mode engine with
      | None -> None
      | Some mode ->
          static_native_exec mode ~family:"ic0" ~kname:"ic0_factor"
            ~pattern:t.pattern
            ~sizes:[| Csc.nnz t.pattern; Array.length p.K.lx |]
            (Codegen_static.ic0 t.compiled)
    in
    {
      handle = t;
      p;
      scratch = ordering_scratch t.ord t.pattern;
      native;
      m_exec =
        execute_hist ~family:"ic0" ~op:"factor"
          ~engine:(engine_label native engine) ~ordering:t.ord.o_name;
    }

  let execute_ip_raw (p : plan) (a_lower : input) : output =
    Prof.start "numeric";
    (try
       let a_lower =
         match p.scratch with
         | None -> a_lower
         | Some s ->
             gather_values ~who:"Sympiler.Ic0.execute_ip" p.handle.ord.o_map
               a_lower.Csc.values s;
             s
       in
       match p.native with
       | Some e ->
           Native_engine.blit_in a_lower.Csc.values e.Native_engine.b0;
           let rc = Native_engine.call e in
           if rc >= 0 then raise (K.Not_positive_definite rc);
           Native_engine.blit_out e.Native_engine.b1 p.p.K.lx
       | None -> K.factor_ip p.p a_lower
     with e ->
       Prof.stop "numeric";
       raise e);
    Prof.stop "numeric";
    p.p.K.l

  let execute_ip (p : plan) (a_lower : input) : output =
    if Metrics.enabled () then begin
      let t0 = Prof.now_seconds () in
      let r = execute_ip_raw p a_lower in
      Metrics.observe p.m_exec (Prof.now_seconds () -. t0);
      r
    end
    else execute_ip_raw p a_lower

  let plan_latency (p : plan) = Metrics.snapshot p.m_exec
  let factor_ip = execute_ip

  let factor (t : t) (a_lower : Csc.t) : output =
    Prof.time "numeric" (fun () ->
        K.factor t.compiled
          (ordered_input ~who:"Sympiler.Ic0.factor" t.ord t.pattern a_lower))

  let c_code (t : t) : string = Codegen_static.ic0 t.compiled
end

module Ilu0 = struct
  module K = Sympiler_kernels.Ilu0

  type pattern = Csc.t

  type t = {
    compiled : K.compiled;
    pattern : Csc.t;
    symbolic_seconds : float;
    ord : applied_ordering;
  }

  type plan = {
    handle : t;
    p : K.plan;
    scratch : Csc.t option;
    native : Native_engine.exec option;
        (* b0 = Ax (CSC values), b1 = factor values (CSR order) *)
    m_exec : Metrics.histogram; (* per-call factorization latency *)
  }

  type input = Csc.t
  type output = K.factors

  let compile_base ?(ordering : ordering = `Natural) (a : pattern) : t =
    let t0 = Prof.now_seconds () in
    let a, ord = ordered_square ~who:"Sympiler.Ilu0.compile" ordering a in
    let ord_seconds = Prof.now_seconds () -. t0 in
    Trace.with_span "compile.ilu0" ~attrs:[ ("n", Trace.Int a.Csc.ncols) ]
    @@ fun () ->
    let compiled, symbolic_seconds =
      time_symbolic (fun () -> K.compile a)
    in
    observe_compile ~family:"ilu0" ~ordering:ord.o_name
      (symbolic_seconds +. ord_seconds);
    {
      compiled;
      pattern = a;
      symbolic_seconds = symbolic_seconds +. ord_seconds;
      ord;
    }

  let default_cache : t Plan_cache.t = Plan_cache.create ()

  let compile ?cache ?(opts = Options.default) (a : pattern) : t =
    match (cache, opts.Options.cache) with
    | None, false -> compile_base ~ordering:opts.Options.ordering a
    | _ ->
        let c = Option.value cache ~default:default_cache in
        Trace.with_span "compile_cached.ilu0" @@ fun () ->
        Plan_cache.find_or_compile c ~pattern:a
          ~extra:(Options.fingerprint opts)
          (fun () -> compile_base ~ordering:opts.Options.ordering a)

  let compile_cached ?cache ?fill ?max_width ?ordering (a : pattern) : t =
    compile
      ~cache:(Option.value cache ~default:default_cache)
      ~opts:(Options.make ?fill ?max_width ?ordering ())
      a

  let cache_stats () = Plan_cache.stats default_cache
  let cache_clear () = Plan_cache.clear default_cache
  let symbolic_seconds (t : t) = t.symbolic_seconds

  let plan ?ndomains:_ ?(engine : engine = `Ocaml) (t : t) : plan =
    let p = K.make_plan t.compiled in
    let native =
      match native_mode engine with
      | None -> None
      | Some mode ->
          static_native_exec mode ~family:"ilu0" ~kname:"ilu0_factor"
            ~pattern:t.pattern
            ~sizes:[| Csc.nnz t.pattern; Array.length p.K.f.K.values |]
            (Codegen_static.ilu0 t.compiled)
    in
    {
      handle = t;
      p;
      scratch = ordering_scratch t.ord t.pattern;
      native;
      m_exec =
        execute_hist ~family:"ilu0" ~op:"factor"
          ~engine:(engine_label native engine) ~ordering:t.ord.o_name;
    }

  let execute_ip_raw (p : plan) (a : input) : output =
    Prof.start "numeric";
    (try
       let a =
         match p.scratch with
         | None -> a
         | Some s ->
             gather_values ~who:"Sympiler.Ilu0.execute_ip" p.handle.ord.o_map
               a.Csc.values s;
             s
       in
       match p.native with
       | Some e ->
           Native_engine.blit_in a.Csc.values e.Native_engine.b0;
           let rc = Native_engine.call e in
           if rc >= 0 then raise (K.Zero_pivot rc);
           Native_engine.blit_out e.Native_engine.b1 p.p.K.f.K.values
       | None -> K.factor_ip p.p a
     with e ->
       Prof.stop "numeric";
       raise e);
    Prof.stop "numeric";
    p.p.K.f

  let execute_ip (p : plan) (a : input) : output =
    if Metrics.enabled () then begin
      let t0 = Prof.now_seconds () in
      let r = execute_ip_raw p a in
      Metrics.observe p.m_exec (Prof.now_seconds () -. t0);
      r
    end
    else execute_ip_raw p a

  let plan_latency (p : plan) = Metrics.snapshot p.m_exec
  let factor_ip = execute_ip

  let factor (t : t) (a : Csc.t) : output =
    Prof.time "numeric" (fun () ->
        K.factor t.compiled
          (ordered_input ~who:"Sympiler.Ilu0.factor" t.ord t.pattern a))

  let c_code (t : t) : string = Codegen_static.ilu0 t.compiled
end

(* Symbolic "explain" reports: what the inspectors measured and what the
   transformations decided, for one compiled handle. Everything here is
   diagnostic-path code — it may recompute symbolic quantities freely. *)
module Explain = struct
  type histogram = (string * int) list

  type report = {
    kernel : string; (* "cholesky" | "trisolve" *)
    ordering : string; (* "natural" | "rcm" | "amd" | "min-degree" | "given" *)
    n : int;
    nnz_a : int;
    nnz_l : int; (* under the selected ordering *)
    nnz_l_natural : int; (* what the natural order would have cost *)
    fill_ratio : float; (* nnz(L) / nnz(A); 0 for empty patterns *)
    etree_height : int;
    col_count_hist : histogram;
    supernode_width_hist : histogram;
    avg_supernode_width : float;
    level_depth : int; (* level sets of L's dependence graph *)
    max_level_width : int;
    decisions : Trace.decision list;
    predicted_flops : float; (* symbolic flop model of the handle *)
    predicted_flops_natural : float; (* same model without the ordering *)
    executed_flops : int; (* Prof.counters snapshot; 0 when profiling off *)
    symbolic_seconds : float;
  }

  let safe_div a b = if b = 0.0 then 0.0 else a /. b

  (* Power-of-two buckets [1,1] [2,2] [3,4] [5,8] ... up to the max value;
     empty input yields the empty histogram. One pass over the values into
     per-bucket counters — the bucket of v is determined directly, not by
     scanning all values once per bucket (which made diagnostics on a
     10^6-column factor cost n * log(max) array sweeps). *)
  let histogram (values : int array) : histogram =
    if Array.length values = 0 then []
    else begin
      let vmax = Array.fold_left max 1 values in
      (* Bucket b covers [2^(b-1)+1, 2^b] for b >= 1; bucket 0 is [1,1]. *)
      let nbuckets = ref 1 in
      let hi = ref 1 in
      while !hi < vmax do
        hi := !hi * 2;
        incr nbuckets
      done;
      let counts = Array.make !nbuckets 0 in
      Array.iter
        (fun v ->
          if v >= 1 then begin
            let b = ref 0 and top = ref 1 in
            while v > !top do
              top := !top * 2;
              incr b
            done;
            counts.(!b) <- counts.(!b) + 1
          end)
        values;
      let out = ref [] in
      let lo = ref 1 and hi = ref 1 in
      for b = 0 to !nbuckets - 1 do
        let label =
          if !lo = !hi then string_of_int !lo
          else Printf.sprintf "%d-%d" !lo !hi
        in
        out := (label, counts.(b)) :: !out;
        lo := !hi + 1;
        hi := !hi * 2
      done;
      List.rev !out
    end

  let etree_height (parent : int array) : int =
    if Array.length parent = 0 then 0
    else 1 + Array.fold_left max 0 (Sympiler_symbolic.Etree.depths parent)

  (* Level-set statistics of a lower-triangular pattern. *)
  let level_stats (l : Csc.t) : int * int =
    if l.Csc.ncols = 0 then (0, 0)
    else begin
      let c = Trisolve_parallel.compile l in
      let maxw = ref 0 in
      for lv = 0 to c.Trisolve_parallel.nlevels - 1 do
        maxw :=
          max !maxw
            (c.Trisolve_parallel.level_ptr.(lv + 1)
            - c.Trisolve_parallel.level_ptr.(lv))
      done;
      (c.Trisolve_parallel.nlevels, !maxw)
    end

  let cholesky (t : Cholesky.t) : report =
    Trace.with_span "explain.cholesky" @@ fun () ->
    let a = t.Cholesky.pattern in
    let n = a.Csc.ncols in
    let nnz_a = Csc.nnz a in
    let fill = Sympiler_symbolic.Fill_pattern.analyze a in
    let sn =
      Sympiler_symbolic.Supernodes.detect_etree
        ~counts:fill.Sympiler_symbolic.Fill_pattern.counts
        ~parent:fill.Sympiler_symbolic.Fill_pattern.parent ()
    in
    let depth, maxw =
      level_stats fill.Sympiler_symbolic.Fill_pattern.l_pattern
    in
    (* Natural-order baseline columns: on an ordered handle, re-run the
       fill analysis on the caller's pattern to show what the ordering
       bought; on a natural handle both columns coincide. *)
    let nnz_l_natural, predicted_flops_natural =
      match t.Cholesky.ord.o_perm with
      | None -> (t.Cholesky.nnz_l, t.Cholesky.flops)
      | Some _ ->
          let fn =
            Sympiler_symbolic.Fill_pattern.analyze t.Cholesky.natural_pattern
          in
          ( fn.Sympiler_symbolic.Fill_pattern.l_pattern.Csc.colptr.(n),
            Sympiler_symbolic.Fill_pattern.flops fn )
    in
    {
      kernel = "cholesky";
      ordering = t.Cholesky.ord.o_name;
      n;
      nnz_a;
      nnz_l = t.Cholesky.nnz_l;
      nnz_l_natural;
      fill_ratio =
        safe_div (float_of_int t.Cholesky.nnz_l) (float_of_int nnz_a);
      etree_height =
        etree_height fill.Sympiler_symbolic.Fill_pattern.parent;
      col_count_hist =
        histogram fill.Sympiler_symbolic.Fill_pattern.counts;
      supernode_width_hist =
        histogram (Sympiler_symbolic.Supernodes.widths sn);
      avg_supernode_width = Sympiler_symbolic.Supernodes.avg_width sn;
      level_depth = depth;
      max_level_width = maxw;
      decisions = t.Cholesky.decisions;
      predicted_flops = t.Cholesky.flops;
      predicted_flops_natural;
      executed_flops = Prof.counters.Prof.flops;
      symbolic_seconds = t.Cholesky.symbolic_seconds;
    }

  let trisolve (t : Trisolve.t) : report =
    Trace.with_span "explain.trisolve" @@ fun () ->
    let l = t.Trisolve.l in
    let n = l.Csc.ncols in
    let nnz = Csc.nnz l in
    let parent = Sympiler_symbolic.Etree.compute l in
    let sn = t.Trisolve.compiled.Trisolve_sympiler.sn in
    let counts =
      Array.init n (fun j -> l.Csc.colptr.(j + 1) - l.Csc.colptr.(j))
    in
    let depth, maxw = level_stats l in
    {
      kernel = "trisolve";
      ordering = t.Trisolve.ord.o_name;
      n;
      nnz_a = nnz;
      nnz_l = nnz;
      (* a solve's pattern is a relabeling: ordering changes neither nnz
         nor the reach-set flop model *)
      nnz_l_natural = nnz;
      fill_ratio = (if nnz = 0 then 0.0 else 1.0);
      etree_height = etree_height parent;
      col_count_hist = histogram counts;
      supernode_width_hist =
        histogram (Sympiler_symbolic.Supernodes.widths sn);
      avg_supernode_width = Sympiler_symbolic.Supernodes.avg_width sn;
      level_depth = depth;
      max_level_width = maxw;
      decisions = t.Trisolve.decisions;
      predicted_flops = t.Trisolve.flops;
      predicted_flops_natural = t.Trisolve.flops;
      executed_flops = Prof.counters.Prof.flops;
      symbolic_seconds = t.Trisolve.symbolic_seconds;
    }

  module Json = Prof.Json

  let decision_json (d : Trace.decision) =
    Json.Obj
      [
        ("pass", Json.Str d.Trace.pass);
        ("fired", Json.Bool d.Trace.fired);
        ("metric", Json.Str d.Trace.metric);
        ("value", Json.Float d.Trace.value);
        ("threshold", Json.Float d.Trace.threshold);
      ]

  let hist_json (h : histogram) =
    Json.Obj (List.map (fun (label, c) -> (label, Json.Int c)) h)

  let to_json (r : report) : string =
    Json.to_string
      (Json.Obj
         [
           ("kernel", Json.Str r.kernel);
           ("ordering", Json.Str r.ordering);
           ("n", Json.Int r.n);
           ("nnz_a", Json.Int r.nnz_a);
           ("nnz_l", Json.Int r.nnz_l);
           ("nnz_l_natural", Json.Int r.nnz_l_natural);
           ("fill_ratio", Json.Float r.fill_ratio);
           ("etree_height", Json.Int r.etree_height);
           ("col_count_hist", hist_json r.col_count_hist);
           ("supernode_width_hist", hist_json r.supernode_width_hist);
           ("avg_supernode_width", Json.Float r.avg_supernode_width);
           ("level_depth", Json.Int r.level_depth);
           ("max_level_width", Json.Int r.max_level_width);
           ("decisions", Json.List (List.map decision_json r.decisions));
           ("predicted_flops", Json.Float r.predicted_flops);
           ("predicted_flops_natural", Json.Float r.predicted_flops_natural);
           ("executed_flops", Json.Int r.executed_flops);
           ("symbolic_seconds", Json.Float r.symbolic_seconds);
         ])

  (* Aligned two-column table; histogram and decision rows are indented
     under their headers. The label column is sized to the longest label. *)
  let to_table (r : report) : string =
    let hist_rows prefix h =
      List.filter_map
        (fun (label, c) ->
          if c = 0 then None
          else Some (Printf.sprintf "%s[%s]" prefix label, string_of_int c))
        h
    in
    let decision_rows =
      List.map
        (fun (d : Trace.decision) ->
          ( Printf.sprintf "decision[%s]" d.Trace.pass,
            Printf.sprintf "%s (%s = %g, threshold %g)"
              (if d.Trace.fired then "fired" else "declined")
              d.Trace.metric d.Trace.value d.Trace.threshold ))
        r.decisions
    in
    let rows =
      [
        ("kernel", r.kernel);
        ("ordering", r.ordering);
        ("n", string_of_int r.n);
        ("nnz(A)", string_of_int r.nnz_a);
        ("nnz(L)", string_of_int r.nnz_l);
        ("nnz(L) natural", string_of_int r.nnz_l_natural);
        ("fill ratio", Printf.sprintf "%.3f" r.fill_ratio);
        ("etree height", string_of_int r.etree_height);
      ]
      @ hist_rows "col count " r.col_count_hist
      @ hist_rows "sn width " r.supernode_width_hist
      @ [
          ("avg supernode width", Printf.sprintf "%.3f" r.avg_supernode_width);
          ("level depth", string_of_int r.level_depth);
          ("max level width", string_of_int r.max_level_width);
        ]
      @ decision_rows
      @ [
          ("predicted flops", Printf.sprintf "%.0f" r.predicted_flops);
          ( "predicted flops natural",
            Printf.sprintf "%.0f" r.predicted_flops_natural );
          ("executed flops", string_of_int r.executed_flops);
          ("symbolic seconds", Printf.sprintf "%.6f" r.symbolic_seconds);
        ]
    in
    let w =
      List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows
    in
    let buf = Buffer.create 512 in
    List.iter
      (fun (l, v) -> Buffer.add_string buf (Printf.sprintf "%-*s  %s\n" w l v))
      rows;
    Buffer.contents buf
end

let explain = Explain.cholesky
