open Sympiler_sparse
open Sympiler_kernels
open Sympiler_prof

(* Public facade: Sympiler as the paper presents it. [Trisolve.compile] and
   [Cholesky.compile] run all symbolic analysis and code generation once for
   a fixed sparsity structure; the returned handles expose numeric routines
   that contain no symbolic work, the generated C source, and the time the
   symbolic phase took (reported in the paper's Figures 8 and 9). *)

(* Re-export the companion modules: since this module shares the library's
   name it is the library's sole interface. *)
module Suite = Suite
module Codegen_supernodal = Codegen_supernodal
module Plan_cache = Plan_cache

(* Wall-clock timing for the [symbolic_seconds] report fields, also fed to
   the profiling layer's "symbolic" scope (reentrant, so the inspectors'
   own "symbolic" spans nest without double counting). The monotonic clock
   keeps the report immune to NTP slews. *)
let time_symbolic f =
  let t0 = Prof.now_seconds () in
  let r = Prof.time "symbolic" f in
  (r, Prof.now_seconds () -. t0)

(* Optional-argument encoding for cache fingerprints: configurations must
   map to distinct integers, including "not given" vs "given the default
   value" (the callee's default could change). *)
let fp_option = function None -> min_int | Some w -> w

let fp_threshold = function
  | None -> min_int
  | Some x -> int_of_float (x *. 1024.0)

module Trisolve = struct
  type t = {
    l : Csc.t;
    b_pattern : int array;
    compiled : Trisolve_sympiler.compiled;
    symbolic_seconds : float;
    reach : int array;
    flops : float;
  }

  (* Symbolic inspection + inspector-guided planning for L x = b with the
     given RHS pattern. The numeric values of L and b may change afterwards;
     only the patterns are compiled in. *)
  let compile ?vs_block_threshold ?max_width (l : Csc.t) (b : Vector.sparse) :
      t =
    if not (Csc.is_lower_triangular l) then
      invalid_arg "Sympiler.Trisolve.compile: L must be lower triangular";
    let compiled, symbolic_seconds =
      time_symbolic (fun () ->
          Trisolve_sympiler.compile ?vs_block_threshold ?max_width l b)
    in
    {
      l;
      b_pattern = b.Vector.indices;
      compiled;
      symbolic_seconds;
      reach = compiled.Trisolve_sympiler.reach;
      flops = compiled.Trisolve_sympiler.flops;
    }

  (* Compilation cache: keyed on L's structure plus the RHS pattern and
     the compile options (the [extra] fingerprint) — a hit returns the
     previously compiled handle, physically equal, with no symbolic work. *)
  let default_cache : t Plan_cache.t = Plan_cache.create ()

  let compile_cached ?(cache = default_cache) ?vs_block_threshold ?max_width
      (l : Csc.t) (b : Vector.sparse) : t =
    let nb = Array.length b.Vector.indices in
    let extra = Array.make (3 + nb) 0 in
    extra.(0) <- fp_threshold vs_block_threshold;
    extra.(1) <- fp_option max_width;
    extra.(2) <- b.Vector.n;
    Array.blit b.Vector.indices 0 extra 3 nb;
    Plan_cache.find_or_compile cache ~pattern:l ~extra (fun () ->
        compile ?vs_block_threshold ?max_width l b)

  let cache_stats () = Plan_cache.stats default_cache
  let cache_clear () = Plan_cache.clear default_cache

  (* Numeric solve (no symbolic work): x such that L x = b. [b] must have
     the pattern given at compile time (values free to differ). *)
  let solve (t : t) (b : Vector.sparse) : float array =
    Prof.time "numeric" (fun () -> Trisolve_sympiler.solve_full t.compiled b)

  (* In-place numeric solve: [x] holds b on entry, the solution on exit. *)
  let solve_ip (t : t) (x : float array) : unit =
    Prof.time "numeric" (fun () -> Trisolve_sympiler.solve_full_ip t.compiled x)

  (* Plans: allocate the numeric workspaces once, then solve repeatedly
     with zero steady-state allocation. [Prof.start]/[stop] rather than
     [Prof.time] keeps even the profiled path closure-free. *)
  type plan = { handle : t; p : Trisolve_sympiler.plan }

  let plan (t : t) : plan =
    { handle = t; p = Trisolve_sympiler.make_plan t.compiled }

  let solve_plan (p : plan) (b : Vector.sparse) : float array =
    Prof.start "numeric";
    let r =
      try Trisolve_sympiler.solve_ip p.p b
      with e ->
        Prof.stop "numeric";
        raise e
    in
    Prof.stop "numeric";
    r

  (* Generated C source implementing the same specialized solve
     (VS-Block + VI-Prune + low-level transformations). *)
  let c_code (t : t) : string =
    let b =
      {
        Vector.n = t.l.Csc.ncols;
        indices = t.b_pattern;
        values = Array.map (fun _ -> 1.0) t.b_pattern;
      }
    in
    (Sympiler_ir.Pipeline.trisolve t.l b).Sympiler_ir.Pipeline.c_code
end

module Cholesky = struct
  type variant = Supernodal | Simplicial

  type t = {
    variant : variant;
    supernodal : Cholesky_supernodal.Sympiler.compiled option;
    simplicial : Cholesky_ref.Decoupled.compiled option;
    pattern : Csc.t; (* lower(A) pattern compiled against *)
    symbolic_seconds : float;
    flops : float;
    nnz_l : int;
  }

  (* Compile Cholesky for the pattern of lower-triangular [a_lower]. The
     supernodal variant (VS-Block + low-level) is the default; [Simplicial]
     gives the column (VI-Prune-only) code. [vs_block_threshold]: minimum
     average supernode width for VS-Block to pay off (paper §4.2) — below
     it compilation falls back to the simplicial variant automatically. *)
  let compile ?(variant = Supernodal) ?(specialized = true)
      ?(vs_block_threshold = 2.0) ?max_width (a_lower : Csc.t) : t =
    if not (Csc.is_lower_triangular a_lower) then
      invalid_arg "Sympiler.Cholesky.compile: pass lower(A)";
    let (sup, simp, flops, nnz_l), symbolic_seconds =
      time_symbolic (fun () ->
          (* One shared symbolic factorization; the variant decision (the
             paper's VS-Block threshold) is taken on the cheap supernode
             statistics before any variant-specific planning is built. *)
          let fill = Sympiler_symbolic.Fill_pattern.analyze a_lower in
          let flops = Sympiler_symbolic.Fill_pattern.flops fill in
          let nnz_l =
            fill.Sympiler_symbolic.Fill_pattern.l_pattern.Csc.colptr.(a_lower
                                                                        .Csc
                                                                        .ncols)
          in
          let go_supernodal =
            match variant with
            | Simplicial -> false
            | Supernodal ->
                let sn =
                  Sympiler_symbolic.Supernodes.detect_etree ?max_width
                    ~counts:fill.Sympiler_symbolic.Fill_pattern.counts
                    ~parent:fill.Sympiler_symbolic.Fill_pattern.parent ()
                in
                Sympiler_symbolic.Supernodes.avg_width sn >= vs_block_threshold
          in
          if go_supernodal then
            let c =
              Cholesky_supernodal.Sympiler.compile ~fill ?max_width
                ~specialized a_lower
            in
            (Some c, None, flops, nnz_l)
          else
            let d = Cholesky_ref.Decoupled.compile ~fill a_lower in
            (None, Some d, flops, nnz_l))
    in
    let variant = if sup = None then Simplicial else variant in
    {
      variant;
      supernodal = sup;
      simplicial = simp;
      pattern = a_lower;
      symbolic_seconds;
      flops;
      nnz_l;
    }

  (* Compilation cache: keyed on lower(A)'s structure plus the compile
     options — a hit returns the previously compiled handle, physically
     equal, skipping the symbolic phase entirely. *)
  let default_cache : t Plan_cache.t = Plan_cache.create ()

  let compile_cached ?(cache = default_cache) ?(variant = Supernodal)
      ?(specialized = true) ?(vs_block_threshold = 2.0) ?max_width
      (a_lower : Csc.t) : t =
    let extra =
      [|
        (match variant with Supernodal -> 0 | Simplicial -> 1);
        (if specialized then 1 else 0);
        fp_threshold (Some vs_block_threshold);
        fp_option max_width;
      |]
    in
    Plan_cache.find_or_compile cache ~pattern:a_lower ~extra (fun () ->
        compile ~variant ~specialized ~vs_block_threshold ?max_width a_lower)

  let cache_stats () = Plan_cache.stats default_cache
  let cache_clear () = Plan_cache.clear default_cache

  (* Numeric factorization: A = L L^T for any [a_lower] sharing the compiled
     pattern. *)
  let factor (t : t) (a_lower : Csc.t) : Csc.t =
    Prof.time "numeric" @@ fun () ->
    match (t.supernodal, t.simplicial) with
    | Some c, _ -> Cholesky_supernodal.Sympiler.factor c a_lower
    | None, Some d -> Cholesky_ref.Decoupled.factor d a_lower
    | None, None -> assert false

  (* Plans: allocate the factor storage and numeric scratch once, then
     refactorize repeatedly with zero steady-state allocation.
     [Prof.start]/[stop] rather than [Prof.time] keeps even the profiled
     path closure-free. *)
  type plan = {
    handle : t;
    sup : Cholesky_supernodal.Sympiler.plan option;
    simp : Cholesky_ref.Decoupled.plan option;
  }

  let plan (t : t) : plan =
    match (t.supernodal, t.simplicial) with
    | Some c, _ ->
        {
          handle = t;
          sup = Some (Cholesky_supernodal.Sympiler.make_plan c);
          simp = None;
        }
    | None, Some d ->
        {
          handle = t;
          sup = None;
          simp = Some (Cholesky_ref.Decoupled.make_plan d);
        }
    | None, None -> assert false

  let refactor_ip (p : plan) (a_lower : Csc.t) : unit =
    Prof.start "numeric";
    (try
       match (p.sup, p.simp) with
       | Some sp, _ -> Cholesky_supernodal.Sympiler.factor_ip sp a_lower
       | None, Some sp -> Cholesky_ref.Decoupled.factor_ip sp a_lower
       | None, None -> assert false
     with e ->
       Prof.stop "numeric";
       raise e);
    Prof.stop "numeric"

  (* The plan's factor view: refreshed in place by each [refactor_ip]. *)
  let plan_factor (p : plan) : Csc.t =
    match (p.sup, p.simp) with
    | Some sp, _ -> sp.Cholesky_supernodal.Sympiler.l
    | None, Some sp -> sp.Cholesky_ref.Decoupled.l
    | None, None -> assert false

  (* Solve A x = b: numeric factorization + two triangular solves. *)
  let solve (t : t) (a_lower : Csc.t) (b : float array) : float array =
    let l = factor t a_lower in
    Cholesky_ref.solve_with_factor l b

  (* Generated C source: the supernodal driver with baked-in schedule, or
     the fully specialized simplicial kernel from the AST pipeline. *)
  let c_code (t : t) : string =
    match t.supernodal with
    | Some c -> Codegen_supernodal.to_c c t.pattern
    | None ->
        (Sympiler_ir.Pipeline.cholesky t.pattern).Sympiler_ir.Pipeline.c_code
end
