open Sympiler_sparse
open Sympiler_kernels
open Sympiler_prof

(* Public facade: Sympiler as the paper presents it. Each kernel family's
   [compile] runs all symbolic analysis and code generation once for a
   fixed sparsity structure; the returned handles expose numeric routines
   that contain no symbolic work, the generated C source, and the time the
   symbolic phase took (reported in the paper's Figures 8 and 9). All six
   families implement the one KERNEL signature of the interface, so the
   compile -> plan -> execute_ip lifecycle and the optional-argument
   spellings are uniform. *)

(* Re-export the companion modules: since this module shares the library's
   name it is the library's sole interface. *)
module Suite = Suite
module Codegen_supernodal = Codegen_supernodal
module Plan_cache = Plan_cache
module Trace = Sympiler_trace.Trace
module Runtime = Sympiler_runtime

(* Wall-clock timing for the [symbolic_seconds] report fields, also fed to
   the profiling layer's "symbolic" scope (reentrant, so the inspectors'
   own "symbolic" spans nest without double counting). The monotonic clock
   keeps the report immune to NTP slews. *)
let time_symbolic f =
  let t0 = Prof.now_seconds () in
  let r = Prof.time "symbolic" f in
  (r, Prof.now_seconds () -. t0)

(* Optional-argument encoding for cache fingerprints: configurations must
   map to distinct integers, including "not given" vs "given the default
   value" (the callee's default could change). *)
let fp_option = function None -> min_int | Some w -> w

let fp_threshold = function
  | None -> min_int
  | Some x -> int_of_float (x *. 1024.0)

(* The uniform kernel lifecycle (see the interface for the contract); the
   per-family [module Check : KERNEL = ...] assertions live in the test
   suite so a drifting family breaks the build there, not here. *)
module type KERNEL = sig
  type pattern
  type t
  type plan
  type input
  type output

  val compile :
    ?fill:Sympiler_symbolic.Fill_pattern.t -> ?max_width:int -> pattern -> t

  val compile_cached :
    ?cache:t Plan_cache.t ->
    ?fill:Sympiler_symbolic.Fill_pattern.t ->
    ?max_width:int ->
    pattern ->
    t

  val cache_stats : unit -> Plan_cache.stats
  val cache_clear : unit -> unit
  val symbolic_seconds : t -> float
  val plan : ?ndomains:int -> t -> plan
  val execute_ip : plan -> input -> output
  val c_code : t -> string
end

module Trisolve = struct
  type pattern = Csc.t * Vector.sparse

  type t = {
    l : Csc.t;
    b_pattern : int array;
    compiled : Trisolve_sympiler.compiled;
    symbolic_seconds : float;
    reach : int array;
    flops : float;
    decisions : Trace.decision list;
  }

  type input = Vector.sparse
  type output = float array

  (* Symbolic inspection + inspector-guided planning for L x = b with the
     given RHS pattern. The numeric values of L and b may change afterwards;
     only the patterns are compiled in. *)
  let compile_ext ?vs_block_threshold ?max_width (l : Csc.t)
      (b : Vector.sparse) : t =
    if not (Csc.is_lower_triangular l) then
      invalid_arg "Sympiler.Trisolve.compile: L must be lower triangular";
    Trace.with_span "compile.trisolve"
      ~attrs:[ ("n", Trace.Int l.Csc.ncols) ]
    @@ fun () ->
    let compiled, symbolic_seconds =
      time_symbolic (fun () ->
          Trisolve_sympiler.compile ?vs_block_threshold ?max_width l b)
    in
    {
      l;
      b_pattern = b.Vector.indices;
      compiled;
      symbolic_seconds;
      reach = compiled.Trisolve_sympiler.reach;
      flops = compiled.Trisolve_sympiler.flops;
      decisions = compiled.Trisolve_sympiler.decisions;
    }

  (* The KERNEL spelling: the fill analysis has no meaning for a solve
     (reach-sets are the inspection here), so [?fill] is accepted and
     ignored — the price of one uniform signature. *)
  let compile ?fill:_ ?max_width ((l, b) : pattern) : t =
    compile_ext ?max_width l b

  (* Compilation cache: keyed on L's structure plus the RHS pattern and
     the compile options (the [extra] fingerprint) — a hit returns the
     previously compiled handle, physically equal, with no symbolic work. *)
  let default_cache : t Plan_cache.t = Plan_cache.create ()

  let cache_key vs_block_threshold max_width (b : Vector.sparse) =
    let nb = Array.length b.Vector.indices in
    let extra = Array.make (3 + nb) 0 in
    extra.(0) <- fp_threshold vs_block_threshold;
    extra.(1) <- fp_option max_width;
    extra.(2) <- b.Vector.n;
    Array.blit b.Vector.indices 0 extra 3 nb;
    extra

  let compile_cached_ext ?(cache = default_cache) ?vs_block_threshold
      ?max_width (l : Csc.t) (b : Vector.sparse) : t =
    Trace.with_span "compile_cached.trisolve" @@ fun () ->
    Plan_cache.find_or_compile cache ~pattern:l
      ~extra:(cache_key vs_block_threshold max_width b)
      (fun () -> compile_ext ?vs_block_threshold ?max_width l b)

  let compile_cached ?cache ?fill:_ ?max_width ((l, b) : pattern) : t =
    compile_cached_ext ?cache ?max_width l b

  let cache_stats () = Plan_cache.stats default_cache
  let cache_clear () = Plan_cache.clear default_cache
  let symbolic_seconds (t : t) = t.symbolic_seconds

  (* Numeric solve (no symbolic work): x such that L x = b. [b] must have
     the pattern given at compile time (values free to differ). *)
  let solve (t : t) (b : Vector.sparse) : float array =
    Prof.time "numeric" (fun () -> Trisolve_sympiler.solve_full t.compiled b)

  (* In-place numeric solve: [x] holds b on entry, the solution on exit. *)
  let solve_ip (t : t) (x : float array) : unit =
    Prof.time "numeric" (fun () -> Trisolve_sympiler.solve_full_ip t.compiled x)

  (* Plans: allocate the numeric workspaces once, then solve repeatedly
     with zero steady-state allocation. [Prof.start]/[stop] rather than
     [Prof.time] keeps even the profiled path closure-free. *)
  type plan = {
    handle : t;
    p : Trisolve_sympiler.plan;
    par : Trisolve_parallel.plan option;
  }

  (* [~ndomains] switches the plan to the level-set executor on the
     persistent domain pool; the levelization (one more inspection set) is
     paid here, at plan time. Any requested domain count — including 1 —
     goes through the level schedule, so results are bitwise-identical
     across [ndomains]; they may differ in operation order (hence in last
     bits) from the reach-set executor of a plain plan. *)
  let plan ?ndomains (t : t) : plan =
    let par =
      match ndomains with
      | None -> None
      | Some nd ->
          Some
            (Prof.time "symbolic" (fun () ->
                 Trisolve_parallel.make_plan ~ndomains:nd
                   (Trisolve_parallel.compile t.l)))
    in
    { handle = t; p = Trisolve_sympiler.make_plan t.compiled; par }

  let execute_ip (p : plan) (b : Vector.sparse) : float array =
    Prof.start "numeric";
    let r =
      try
        match p.par with
        | Some pp -> Trisolve_parallel.solve_ip_sparse pp b
        | None -> Trisolve_sympiler.solve_ip p.p b
      with e ->
        Prof.stop "numeric";
        raise e
    in
    Prof.stop "numeric";
    r

  let solve_plan = execute_ip

  (* Generated C source implementing the same specialized solve
     (VS-Block + VI-Prune + low-level transformations). *)
  let c_code (t : t) : string =
    let b =
      {
        Vector.n = t.l.Csc.ncols;
        indices = t.b_pattern;
        values = Array.map (fun _ -> 1.0) t.b_pattern;
      }
    in
    (Sympiler_ir.Pipeline.trisolve t.l b).Sympiler_ir.Pipeline.c_code
end

module Cholesky = struct
  type variant = Supernodal | Simplicial

  type t = {
    variant : variant;
    supernodal : Cholesky_supernodal.Sympiler.compiled option;
    simplicial : Cholesky_ref.Decoupled.compiled option;
    pattern : Csc.t; (* lower(A) pattern compiled against *)
    symbolic_seconds : float;
    flops : float;
    nnz_l : int;
    decisions : Trace.decision list;
  }

  type pattern = Csc.t
  type input = Csc.t
  type output = Csc.t

  (* Compile Cholesky for the pattern of lower-triangular [a_lower]. The
     supernodal variant (VS-Block + low-level) is the default; [Simplicial]
     gives the column (VI-Prune-only) code. [vs_block_threshold]: minimum
     average supernode width for VS-Block to pay off (paper §4.2) — below
     it compilation falls back to the simplicial variant automatically.
     [fill0] reuses a caller-provided fill analysis of the same pattern. *)
  let compile_internal ?fill:fill0 ~variant ~specialized ~vs_block_threshold
      ?max_width (a_lower : Csc.t) : t =
    if not (Csc.is_lower_triangular a_lower) then
      invalid_arg "Sympiler.Cholesky.compile: pass lower(A)";
    Trace.with_span "compile.cholesky"
      ~attrs:[ ("n", Trace.Int a_lower.Csc.ncols) ]
    @@ fun () ->
    let (sup, simp, flops, nnz_l, decisions), symbolic_seconds =
      time_symbolic (fun () ->
          (* One shared symbolic factorization; the variant decision (the
             paper's VS-Block threshold) is taken on the cheap supernode
             statistics before any variant-specific planning is built. *)
          let fill =
            match fill0 with
            | Some f -> f
            | None -> Sympiler_symbolic.Fill_pattern.analyze a_lower
          in
          let flops = Sympiler_symbolic.Fill_pattern.flops fill in
          let n = a_lower.Csc.ncols in
          let nnz_l =
            fill.Sympiler_symbolic.Fill_pattern.l_pattern.Csc.colptr.(n)
          in
          let go_supernodal, avg_width =
            match variant with
            | Simplicial -> (false, Float.nan (* forced: never measured *))
            | Supernodal ->
                let sn =
                  Sympiler_symbolic.Supernodes.detect_etree ?max_width
                    ~counts:fill.Sympiler_symbolic.Fill_pattern.counts
                    ~parent:fill.Sympiler_symbolic.Fill_pattern.parent ()
                in
                let w = Sympiler_symbolic.Supernodes.avg_width sn in
                (w >= vs_block_threshold, w)
          in
          let d_vs =
            {
              Trace.pass = "vs-block";
              fired = go_supernodal;
              metric = "avg_supernode_width";
              value = avg_width;
              threshold = vs_block_threshold;
            }
          in
          (* VI-Prune always fires for Cholesky: the prune-sets are baked
             into both variants. Its measured quantity is the fraction of
             the dense n*(n-1)/2 candidate updates the pattern removed. *)
          let d_vi =
            {
              Trace.pass = "vi-prune";
              fired = true;
              metric = "pruned_iteration_ratio";
              value =
                (if n < 2 then 0.0
                 else
                   1.0
                   -. float_of_int (nnz_l - n)
                      /. (float_of_int n *. float_of_int (n - 1) /. 2.0));
              threshold = 0.0;
            }
          in
          Trace.decision d_vi;
          Trace.decision d_vs;
          let decisions = [ d_vi; d_vs ] in
          if go_supernodal then
            let c =
              Cholesky_supernodal.Sympiler.compile ~fill ?max_width
                ~specialized a_lower
            in
            (Some c, None, flops, nnz_l, decisions)
          else
            let d = Cholesky_ref.Decoupled.compile ~fill a_lower in
            (None, Some d, flops, nnz_l, decisions))
    in
    let variant = if sup = None then Simplicial else variant in
    {
      variant;
      supernodal = sup;
      simplicial = simp;
      pattern = a_lower;
      symbolic_seconds;
      flops;
      nnz_l;
      decisions;
    }

  let compile ?fill ?max_width (a_lower : pattern) : t =
    compile_internal ?fill ~variant:Supernodal ~specialized:true
      ~vs_block_threshold:2.0 ?max_width a_lower

  let compile_ext ?(variant = Supernodal) ?(specialized = true)
      ?(vs_block_threshold = 2.0) ?fill ?max_width (a_lower : Csc.t) : t =
    compile_internal ?fill ~variant ~specialized ~vs_block_threshold
      ?max_width a_lower

  (* Compilation cache: keyed on lower(A)'s structure plus the compile
     options — a hit returns the previously compiled handle, physically
     equal, skipping the symbolic phase entirely. The uniform
     [compile_cached] and the richer [compile_cached_ext] share one key
     layout, so their default configurations hit the same entries. *)
  let default_cache : t Plan_cache.t = Plan_cache.create ()

  let cache_key variant specialized vs_block_threshold max_width =
    [|
      (match variant with Supernodal -> 0 | Simplicial -> 1);
      (if specialized then 1 else 0);
      fp_threshold (Some vs_block_threshold);
      fp_option max_width;
    |]

  let compile_cached_ext ?(cache = default_cache) ?(variant = Supernodal)
      ?(specialized = true) ?(vs_block_threshold = 2.0) ?max_width
      (a_lower : Csc.t) : t =
    Trace.with_span "compile_cached.cholesky" @@ fun () ->
    Plan_cache.find_or_compile cache ~pattern:a_lower
      ~extra:(cache_key variant specialized vs_block_threshold max_width)
      (fun () ->
        compile_ext ~variant ~specialized ~vs_block_threshold ?max_width
          a_lower)

  let compile_cached ?(cache = default_cache) ?fill ?max_width
      (a_lower : pattern) : t =
    Trace.with_span "compile_cached.cholesky" @@ fun () ->
    Plan_cache.find_or_compile cache ~pattern:a_lower
      ~extra:(cache_key Supernodal true 2.0 max_width)
      (fun () -> compile ?fill ?max_width a_lower)

  let cache_stats () = Plan_cache.stats default_cache
  let cache_clear () = Plan_cache.clear default_cache
  let symbolic_seconds (t : t) = t.symbolic_seconds

  (* Numeric factorization: A = L L^T for any [a_lower] sharing the compiled
     pattern. *)
  let factor (t : t) (a_lower : Csc.t) : Csc.t =
    Prof.time "numeric" @@ fun () ->
    match (t.supernodal, t.simplicial) with
    | Some c, _ -> Cholesky_supernodal.Sympiler.factor c a_lower
    | None, Some d -> Cholesky_ref.Decoupled.factor d a_lower
    | None, None -> assert false

  (* Plans: allocate the factor storage and numeric scratch once, then
     refactorize repeatedly with zero steady-state allocation.
     [Prof.start]/[stop] rather than [Prof.time] keeps even the profiled
     path closure-free. *)
  type plan = {
    handle : t;
    sup : Cholesky_supernodal.Sympiler.plan option;
    simp : Cholesky_ref.Decoupled.plan option;
    par : Cholesky_parallel.plan option;
  }

  (* [~ndomains] on a supernodal handle: levelize the already-compiled
     supernode DAG (plan-time inspection, no re-analysis) and run levels
     on the persistent domain pool. The parallel engine executes each
     target supernode with the same operation sequence as the sequential
     one, so factors are bitwise-identical for any domain count. The
     simplicial column code has no level schedule — [ndomains] is
     ignored there. *)
  let plan ?ndomains (t : t) : plan =
    match (ndomains, t.supernodal) with
    | Some nd, Some c ->
        let lp =
          Prof.time "symbolic" (fun () ->
              Cholesky_parallel.make_plan ~ndomains:nd
                (Cholesky_parallel.levelize c))
        in
        { handle = t; sup = None; simp = None; par = Some lp }
    | _ -> (
        match (t.supernodal, t.simplicial) with
        | Some c, _ ->
            {
              handle = t;
              sup = Some (Cholesky_supernodal.Sympiler.make_plan c);
              simp = None;
              par = None;
            }
        | None, Some d ->
            {
              handle = t;
              sup = None;
              simp = Some (Cholesky_ref.Decoupled.make_plan d);
              par = None;
            }
        | None, None -> assert false)

  let refactor_ip (p : plan) (a_lower : Csc.t) : unit =
    Prof.start "numeric";
    (try
       match (p.sup, p.simp, p.par) with
       | Some sp, _, _ -> Cholesky_supernodal.Sympiler.factor_ip sp a_lower
       | None, Some sp, _ -> Cholesky_ref.Decoupled.factor_ip sp a_lower
       | None, None, Some pp -> Cholesky_parallel.factor_ip pp a_lower
       | None, None, None -> assert false
     with e ->
       Prof.stop "numeric";
       raise e);
    Prof.stop "numeric"

  (* The plan's factor view: refreshed in place by each [refactor_ip]. *)
  let plan_factor (p : plan) : Csc.t =
    match (p.sup, p.simp, p.par) with
    | Some sp, _, _ -> sp.Cholesky_supernodal.Sympiler.l
    | None, Some sp, _ -> sp.Cholesky_ref.Decoupled.l
    | None, None, Some pp -> pp.Cholesky_parallel.l
    | None, None, None -> assert false

  let execute_ip (p : plan) (a_lower : Csc.t) : Csc.t =
    refactor_ip p a_lower;
    plan_factor p

  (* Solve A x = b: numeric factorization + two triangular solves. *)
  let solve (t : t) (a_lower : Csc.t) (b : float array) : float array =
    let l = factor t a_lower in
    Cholesky_ref.solve_with_factor l b

  (* Generated C source: the supernodal driver with baked-in schedule, or
     the fully specialized simplicial kernel from the AST pipeline. *)
  let c_code (t : t) : string =
    match t.supernodal with
    | Some c -> Codegen_supernodal.to_c c t.pattern
    | None ->
        (Sympiler_ir.Pipeline.cholesky t.pattern).Sympiler_ir.Pipeline.c_code
end

(* The four §3.3 families below share one shape: a handle wrapping the
   kernel's compiled value, a pattern-keyed default cache, plan-owned
   numeric storage, and C emission from [Codegen_static]. Their executors
   are sequential (no level schedule), so [?ndomains] — like [?fill] and
   [?max_width] where the kernel has no use for them — is accepted for
   KERNEL uniformity and ignored. *)

module Ldlt = struct
  module K = Sympiler_kernels.Ldlt

  type pattern = Csc.t

  type t = {
    compiled : K.compiled;
    pattern : Csc.t;
    symbolic_seconds : float;
  }

  type plan = { handle : t; p : K.plan }
  type input = Csc.t
  type output = K.factors

  let compile ?fill:_ ?max_width:_ (a_lower : pattern) : t =
    if not (Csc.is_lower_triangular a_lower) then
      invalid_arg "Sympiler.Ldlt.compile: pass lower(A)";
    Trace.with_span "compile.ldlt"
      ~attrs:[ ("n", Trace.Int a_lower.Csc.ncols) ]
    @@ fun () ->
    let compiled, symbolic_seconds =
      time_symbolic (fun () -> K.compile a_lower)
    in
    { compiled; pattern = a_lower; symbolic_seconds }

  let default_cache : t Plan_cache.t = Plan_cache.create ()

  let compile_cached ?(cache = default_cache) ?fill ?max_width
      (a_lower : pattern) : t =
    Trace.with_span "compile_cached.ldlt" @@ fun () ->
    Plan_cache.find_or_compile cache ~pattern:a_lower
      ~extra:[| fp_option max_width |]
      (fun () -> compile ?fill ?max_width a_lower)

  let cache_stats () = Plan_cache.stats default_cache
  let cache_clear () = Plan_cache.clear default_cache
  let symbolic_seconds (t : t) = t.symbolic_seconds
  let plan ?ndomains:_ (t : t) : plan = { handle = t; p = K.make_plan t.compiled }

  let execute_ip (p : plan) (a_lower : input) : output =
    Prof.start "numeric";
    (try K.factor_ip p.p a_lower
     with e ->
       Prof.stop "numeric";
       raise e);
    Prof.stop "numeric";
    p.p.K.f

  let factor_ip = execute_ip

  let factor (t : t) (a_lower : Csc.t) : output =
    Prof.time "numeric" (fun () -> K.factor t.compiled a_lower)

  let c_code (t : t) : string = Codegen_static.ldlt t.compiled
end

module Lu = struct
  module K = Sympiler_kernels.Lu

  type pattern = Csc.t

  type t = {
    compiled : K.Sympiler.compiled;
    pattern : Csc.t;
    symbolic_seconds : float;
    flops : float;
  }

  type plan = { handle : t; p : K.Sympiler.plan }
  type input = Csc.t
  type output = K.factors

  let compile ?fill:_ ?max_width:_ (a : pattern) : t =
    Trace.with_span "compile.lu" ~attrs:[ ("n", Trace.Int a.Csc.ncols) ]
    @@ fun () ->
    let compiled, symbolic_seconds =
      time_symbolic (fun () -> K.Sympiler.compile a)
    in
    { compiled; pattern = a; symbolic_seconds; flops = compiled.K.Sympiler.flops }

  let default_cache : t Plan_cache.t = Plan_cache.create ()

  let compile_cached ?(cache = default_cache) ?fill ?max_width (a : pattern) :
      t =
    Trace.with_span "compile_cached.lu" @@ fun () ->
    Plan_cache.find_or_compile cache ~pattern:a
      ~extra:[| fp_option max_width |]
      (fun () -> compile ?fill ?max_width a)

  let cache_stats () = Plan_cache.stats default_cache
  let cache_clear () = Plan_cache.clear default_cache
  let symbolic_seconds (t : t) = t.symbolic_seconds

  let plan ?ndomains:_ (t : t) : plan =
    { handle = t; p = K.Sympiler.make_plan t.compiled }

  let execute_ip (p : plan) (a : input) : output =
    Prof.start "numeric";
    (try K.Sympiler.factor_ip p.p a
     with e ->
       Prof.stop "numeric";
       raise e);
    Prof.stop "numeric";
    p.p.K.Sympiler.f

  let factor_ip = execute_ip

  let factor (t : t) (a : Csc.t) : output =
    Prof.time "numeric" (fun () -> K.Sympiler.factor t.compiled a)

  let c_code (t : t) : string = Codegen_static.lu t.compiled t.pattern
end

module Ic0 = struct
  module K = Sympiler_kernels.Ic0

  type pattern = Csc.t

  type t = {
    compiled : K.compiled;
    pattern : Csc.t;
    symbolic_seconds : float;
  }

  type plan = { handle : t; p : K.plan }
  type input = Csc.t
  type output = Csc.t

  let compile ?fill:_ ?max_width:_ (a_lower : pattern) : t =
    if not (Csc.is_lower_triangular a_lower) then
      invalid_arg "Sympiler.Ic0.compile: pass lower(A)";
    Trace.with_span "compile.ic0"
      ~attrs:[ ("n", Trace.Int a_lower.Csc.ncols) ]
    @@ fun () ->
    let compiled, symbolic_seconds =
      time_symbolic (fun () -> K.compile a_lower)
    in
    { compiled; pattern = a_lower; symbolic_seconds }

  let default_cache : t Plan_cache.t = Plan_cache.create ()

  let compile_cached ?(cache = default_cache) ?fill ?max_width
      (a_lower : pattern) : t =
    Trace.with_span "compile_cached.ic0" @@ fun () ->
    Plan_cache.find_or_compile cache ~pattern:a_lower
      ~extra:[| fp_option max_width |]
      (fun () -> compile ?fill ?max_width a_lower)

  let cache_stats () = Plan_cache.stats default_cache
  let cache_clear () = Plan_cache.clear default_cache
  let symbolic_seconds (t : t) = t.symbolic_seconds
  let plan ?ndomains:_ (t : t) : plan = { handle = t; p = K.make_plan t.compiled }

  let execute_ip (p : plan) (a_lower : input) : output =
    Prof.start "numeric";
    (try K.factor_ip p.p a_lower
     with e ->
       Prof.stop "numeric";
       raise e);
    Prof.stop "numeric";
    p.p.K.l

  let factor_ip = execute_ip

  let factor (t : t) (a_lower : Csc.t) : output =
    Prof.time "numeric" (fun () -> K.factor t.compiled a_lower)

  let c_code (t : t) : string = Codegen_static.ic0 t.compiled
end

module Ilu0 = struct
  module K = Sympiler_kernels.Ilu0

  type pattern = Csc.t

  type t = {
    compiled : K.compiled;
    pattern : Csc.t;
    symbolic_seconds : float;
  }

  type plan = { handle : t; p : K.plan }
  type input = Csc.t
  type output = K.factors

  let compile ?fill:_ ?max_width:_ (a : pattern) : t =
    Trace.with_span "compile.ilu0" ~attrs:[ ("n", Trace.Int a.Csc.ncols) ]
    @@ fun () ->
    let compiled, symbolic_seconds =
      time_symbolic (fun () -> K.compile a)
    in
    { compiled; pattern = a; symbolic_seconds }

  let default_cache : t Plan_cache.t = Plan_cache.create ()

  let compile_cached ?(cache = default_cache) ?fill ?max_width (a : pattern) :
      t =
    Trace.with_span "compile_cached.ilu0" @@ fun () ->
    Plan_cache.find_or_compile cache ~pattern:a
      ~extra:[| fp_option max_width |]
      (fun () -> compile ?fill ?max_width a)

  let cache_stats () = Plan_cache.stats default_cache
  let cache_clear () = Plan_cache.clear default_cache
  let symbolic_seconds (t : t) = t.symbolic_seconds
  let plan ?ndomains:_ (t : t) : plan = { handle = t; p = K.make_plan t.compiled }

  let execute_ip (p : plan) (a : input) : output =
    Prof.start "numeric";
    (try K.factor_ip p.p a
     with e ->
       Prof.stop "numeric";
       raise e);
    Prof.stop "numeric";
    p.p.K.f

  let factor_ip = execute_ip

  let factor (t : t) (a : Csc.t) : output =
    Prof.time "numeric" (fun () -> K.factor t.compiled a)

  let c_code (t : t) : string = Codegen_static.ilu0 t.compiled
end

(* Symbolic "explain" reports: what the inspectors measured and what the
   transformations decided, for one compiled handle. Everything here is
   diagnostic-path code — it may recompute symbolic quantities freely. *)
module Explain = struct
  type histogram = (string * int) list

  type report = {
    kernel : string; (* "cholesky" | "trisolve" *)
    n : int;
    nnz_a : int;
    nnz_l : int;
    fill_ratio : float; (* nnz(L) / nnz(A); 0 for empty patterns *)
    etree_height : int;
    col_count_hist : histogram;
    supernode_width_hist : histogram;
    avg_supernode_width : float;
    level_depth : int; (* level sets of L's dependence graph *)
    max_level_width : int;
    decisions : Trace.decision list;
    predicted_flops : float; (* symbolic flop model of the handle *)
    executed_flops : int; (* Prof.counters snapshot; 0 when profiling off *)
    symbolic_seconds : float;
  }

  let safe_div a b = if b = 0.0 then 0.0 else a /. b

  (* Power-of-two buckets [1,1] [2,2] [3,4] [5,8] ... up to the max value;
     empty input yields the empty histogram. *)
  let histogram (values : int array) : histogram =
    if Array.length values = 0 then []
    else begin
      let vmax = Array.fold_left max 1 values in
      let rec buckets lo hi acc =
        if lo > vmax then List.rev acc
        else
          let label =
            if lo = hi then string_of_int lo else Printf.sprintf "%d-%d" lo hi
          in
          buckets (hi + 1) (hi * 2) ((label, lo, hi) :: acc)
      in
      List.map
        (fun (label, lo, hi) ->
          ( label,
            Array.fold_left
              (fun acc v -> if v >= lo && v <= hi then acc + 1 else acc)
              0 values ))
        (buckets 1 1 [])
    end

  let etree_height (parent : int array) : int =
    if Array.length parent = 0 then 0
    else 1 + Array.fold_left max 0 (Sympiler_symbolic.Etree.depths parent)

  (* Level-set statistics of a lower-triangular pattern. *)
  let level_stats (l : Csc.t) : int * int =
    if l.Csc.ncols = 0 then (0, 0)
    else begin
      let c = Trisolve_parallel.compile l in
      let maxw = ref 0 in
      for lv = 0 to c.Trisolve_parallel.nlevels - 1 do
        maxw :=
          max !maxw
            (c.Trisolve_parallel.level_ptr.(lv + 1)
            - c.Trisolve_parallel.level_ptr.(lv))
      done;
      (c.Trisolve_parallel.nlevels, !maxw)
    end

  let cholesky (t : Cholesky.t) : report =
    Trace.with_span "explain.cholesky" @@ fun () ->
    let a = t.Cholesky.pattern in
    let n = a.Csc.ncols in
    let nnz_a = Csc.nnz a in
    let fill = Sympiler_symbolic.Fill_pattern.analyze a in
    let sn =
      Sympiler_symbolic.Supernodes.detect_etree
        ~counts:fill.Sympiler_symbolic.Fill_pattern.counts
        ~parent:fill.Sympiler_symbolic.Fill_pattern.parent ()
    in
    let depth, maxw =
      level_stats fill.Sympiler_symbolic.Fill_pattern.l_pattern
    in
    {
      kernel = "cholesky";
      n;
      nnz_a;
      nnz_l = t.Cholesky.nnz_l;
      fill_ratio =
        safe_div (float_of_int t.Cholesky.nnz_l) (float_of_int nnz_a);
      etree_height =
        etree_height fill.Sympiler_symbolic.Fill_pattern.parent;
      col_count_hist =
        histogram fill.Sympiler_symbolic.Fill_pattern.counts;
      supernode_width_hist =
        histogram (Sympiler_symbolic.Supernodes.widths sn);
      avg_supernode_width = Sympiler_symbolic.Supernodes.avg_width sn;
      level_depth = depth;
      max_level_width = maxw;
      decisions = t.Cholesky.decisions;
      predicted_flops = t.Cholesky.flops;
      executed_flops = Prof.counters.Prof.flops;
      symbolic_seconds = t.Cholesky.symbolic_seconds;
    }

  let trisolve (t : Trisolve.t) : report =
    Trace.with_span "explain.trisolve" @@ fun () ->
    let l = t.Trisolve.l in
    let n = l.Csc.ncols in
    let nnz = Csc.nnz l in
    let parent = Sympiler_symbolic.Etree.compute l in
    let sn = t.Trisolve.compiled.Trisolve_sympiler.sn in
    let counts =
      Array.init n (fun j -> l.Csc.colptr.(j + 1) - l.Csc.colptr.(j))
    in
    let depth, maxw = level_stats l in
    {
      kernel = "trisolve";
      n;
      nnz_a = nnz;
      nnz_l = nnz;
      fill_ratio = (if nnz = 0 then 0.0 else 1.0);
      etree_height = etree_height parent;
      col_count_hist = histogram counts;
      supernode_width_hist =
        histogram (Sympiler_symbolic.Supernodes.widths sn);
      avg_supernode_width = Sympiler_symbolic.Supernodes.avg_width sn;
      level_depth = depth;
      max_level_width = maxw;
      decisions = t.Trisolve.decisions;
      predicted_flops = t.Trisolve.flops;
      executed_flops = Prof.counters.Prof.flops;
      symbolic_seconds = t.Trisolve.symbolic_seconds;
    }

  module Json = Prof.Json

  let decision_json (d : Trace.decision) =
    Json.Obj
      [
        ("pass", Json.Str d.Trace.pass);
        ("fired", Json.Bool d.Trace.fired);
        ("metric", Json.Str d.Trace.metric);
        ("value", Json.Float d.Trace.value);
        ("threshold", Json.Float d.Trace.threshold);
      ]

  let hist_json (h : histogram) =
    Json.Obj (List.map (fun (label, c) -> (label, Json.Int c)) h)

  let to_json (r : report) : string =
    Json.to_string
      (Json.Obj
         [
           ("kernel", Json.Str r.kernel);
           ("n", Json.Int r.n);
           ("nnz_a", Json.Int r.nnz_a);
           ("nnz_l", Json.Int r.nnz_l);
           ("fill_ratio", Json.Float r.fill_ratio);
           ("etree_height", Json.Int r.etree_height);
           ("col_count_hist", hist_json r.col_count_hist);
           ("supernode_width_hist", hist_json r.supernode_width_hist);
           ("avg_supernode_width", Json.Float r.avg_supernode_width);
           ("level_depth", Json.Int r.level_depth);
           ("max_level_width", Json.Int r.max_level_width);
           ("decisions", Json.List (List.map decision_json r.decisions));
           ("predicted_flops", Json.Float r.predicted_flops);
           ("executed_flops", Json.Int r.executed_flops);
           ("symbolic_seconds", Json.Float r.symbolic_seconds);
         ])

  (* Aligned two-column table; histogram and decision rows are indented
     under their headers. The label column is sized to the longest label. *)
  let to_table (r : report) : string =
    let hist_rows prefix h =
      List.filter_map
        (fun (label, c) ->
          if c = 0 then None
          else Some (Printf.sprintf "%s[%s]" prefix label, string_of_int c))
        h
    in
    let decision_rows =
      List.map
        (fun (d : Trace.decision) ->
          ( Printf.sprintf "decision[%s]" d.Trace.pass,
            Printf.sprintf "%s (%s = %g, threshold %g)"
              (if d.Trace.fired then "fired" else "declined")
              d.Trace.metric d.Trace.value d.Trace.threshold ))
        r.decisions
    in
    let rows =
      [
        ("kernel", r.kernel);
        ("n", string_of_int r.n);
        ("nnz(A)", string_of_int r.nnz_a);
        ("nnz(L)", string_of_int r.nnz_l);
        ("fill ratio", Printf.sprintf "%.3f" r.fill_ratio);
        ("etree height", string_of_int r.etree_height);
      ]
      @ hist_rows "col count " r.col_count_hist
      @ hist_rows "sn width " r.supernode_width_hist
      @ [
          ("avg supernode width", Printf.sprintf "%.3f" r.avg_supernode_width);
          ("level depth", string_of_int r.level_depth);
          ("max level width", string_of_int r.max_level_width);
        ]
      @ decision_rows
      @ [
          ("predicted flops", Printf.sprintf "%.0f" r.predicted_flops);
          ("executed flops", string_of_int r.executed_flops);
          ("symbolic seconds", Printf.sprintf "%.6f" r.symbolic_seconds);
        ]
    in
    let w =
      List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows
    in
    let buf = Buffer.create 512 in
    List.iter
      (fun (l, v) -> Buffer.add_string buf (Printf.sprintf "%-*s  %s\n" w l v))
      rows;
    Buffer.contents buf
end

let explain = Explain.cholesky
