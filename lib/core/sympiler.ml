open Sympiler_sparse
open Sympiler_kernels
open Sympiler_prof

(* Public facade: Sympiler as the paper presents it. [Trisolve.compile] and
   [Cholesky.compile] run all symbolic analysis and code generation once for
   a fixed sparsity structure; the returned handles expose numeric routines
   that contain no symbolic work, the generated C source, and the time the
   symbolic phase took (reported in the paper's Figures 8 and 9). *)

(* Re-export the companion modules: since this module shares the library's
   name it is the library's sole interface. *)
module Suite = Suite
module Codegen_supernodal = Codegen_supernodal
module Plan_cache = Plan_cache
module Trace = Sympiler_trace.Trace

(* Wall-clock timing for the [symbolic_seconds] report fields, also fed to
   the profiling layer's "symbolic" scope (reentrant, so the inspectors'
   own "symbolic" spans nest without double counting). The monotonic clock
   keeps the report immune to NTP slews. *)
let time_symbolic f =
  let t0 = Prof.now_seconds () in
  let r = Prof.time "symbolic" f in
  (r, Prof.now_seconds () -. t0)

(* Optional-argument encoding for cache fingerprints: configurations must
   map to distinct integers, including "not given" vs "given the default
   value" (the callee's default could change). *)
let fp_option = function None -> min_int | Some w -> w

let fp_threshold = function
  | None -> min_int
  | Some x -> int_of_float (x *. 1024.0)

module Trisolve = struct
  type t = {
    l : Csc.t;
    b_pattern : int array;
    compiled : Trisolve_sympiler.compiled;
    symbolic_seconds : float;
    reach : int array;
    flops : float;
    decisions : Trace.decision list;
  }

  (* Symbolic inspection + inspector-guided planning for L x = b with the
     given RHS pattern. The numeric values of L and b may change afterwards;
     only the patterns are compiled in. *)
  let compile ?vs_block_threshold ?max_width (l : Csc.t) (b : Vector.sparse) :
      t =
    if not (Csc.is_lower_triangular l) then
      invalid_arg "Sympiler.Trisolve.compile: L must be lower triangular";
    Trace.with_span "compile.trisolve"
      ~attrs:[ ("n", Trace.Int l.Csc.ncols) ]
    @@ fun () ->
    let compiled, symbolic_seconds =
      time_symbolic (fun () ->
          Trisolve_sympiler.compile ?vs_block_threshold ?max_width l b)
    in
    {
      l;
      b_pattern = b.Vector.indices;
      compiled;
      symbolic_seconds;
      reach = compiled.Trisolve_sympiler.reach;
      flops = compiled.Trisolve_sympiler.flops;
      decisions = compiled.Trisolve_sympiler.decisions;
    }

  (* Compilation cache: keyed on L's structure plus the RHS pattern and
     the compile options (the [extra] fingerprint) — a hit returns the
     previously compiled handle, physically equal, with no symbolic work. *)
  let default_cache : t Plan_cache.t = Plan_cache.create ()

  let compile_cached ?(cache = default_cache) ?vs_block_threshold ?max_width
      (l : Csc.t) (b : Vector.sparse) : t =
    Trace.with_span "compile_cached.trisolve" @@ fun () ->
    let nb = Array.length b.Vector.indices in
    let extra = Array.make (3 + nb) 0 in
    extra.(0) <- fp_threshold vs_block_threshold;
    extra.(1) <- fp_option max_width;
    extra.(2) <- b.Vector.n;
    Array.blit b.Vector.indices 0 extra 3 nb;
    Plan_cache.find_or_compile cache ~pattern:l ~extra (fun () ->
        compile ?vs_block_threshold ?max_width l b)

  let cache_stats () = Plan_cache.stats default_cache
  let cache_clear () = Plan_cache.clear default_cache

  (* Numeric solve (no symbolic work): x such that L x = b. [b] must have
     the pattern given at compile time (values free to differ). *)
  let solve (t : t) (b : Vector.sparse) : float array =
    Prof.time "numeric" (fun () -> Trisolve_sympiler.solve_full t.compiled b)

  (* In-place numeric solve: [x] holds b on entry, the solution on exit. *)
  let solve_ip (t : t) (x : float array) : unit =
    Prof.time "numeric" (fun () -> Trisolve_sympiler.solve_full_ip t.compiled x)

  (* Plans: allocate the numeric workspaces once, then solve repeatedly
     with zero steady-state allocation. [Prof.start]/[stop] rather than
     [Prof.time] keeps even the profiled path closure-free. *)
  type plan = { handle : t; p : Trisolve_sympiler.plan }

  let plan (t : t) : plan =
    { handle = t; p = Trisolve_sympiler.make_plan t.compiled }

  let solve_plan (p : plan) (b : Vector.sparse) : float array =
    Prof.start "numeric";
    let r =
      try Trisolve_sympiler.solve_ip p.p b
      with e ->
        Prof.stop "numeric";
        raise e
    in
    Prof.stop "numeric";
    r

  (* Generated C source implementing the same specialized solve
     (VS-Block + VI-Prune + low-level transformations). *)
  let c_code (t : t) : string =
    let b =
      {
        Vector.n = t.l.Csc.ncols;
        indices = t.b_pattern;
        values = Array.map (fun _ -> 1.0) t.b_pattern;
      }
    in
    (Sympiler_ir.Pipeline.trisolve t.l b).Sympiler_ir.Pipeline.c_code
end

module Cholesky = struct
  type variant = Supernodal | Simplicial

  type t = {
    variant : variant;
    supernodal : Cholesky_supernodal.Sympiler.compiled option;
    simplicial : Cholesky_ref.Decoupled.compiled option;
    pattern : Csc.t; (* lower(A) pattern compiled against *)
    symbolic_seconds : float;
    flops : float;
    nnz_l : int;
    decisions : Trace.decision list;
  }

  (* Compile Cholesky for the pattern of lower-triangular [a_lower]. The
     supernodal variant (VS-Block + low-level) is the default; [Simplicial]
     gives the column (VI-Prune-only) code. [vs_block_threshold]: minimum
     average supernode width for VS-Block to pay off (paper §4.2) — below
     it compilation falls back to the simplicial variant automatically. *)
  let compile ?(variant = Supernodal) ?(specialized = true)
      ?(vs_block_threshold = 2.0) ?max_width (a_lower : Csc.t) : t =
    if not (Csc.is_lower_triangular a_lower) then
      invalid_arg "Sympiler.Cholesky.compile: pass lower(A)";
    Trace.with_span "compile.cholesky"
      ~attrs:[ ("n", Trace.Int a_lower.Csc.ncols) ]
    @@ fun () ->
    let (sup, simp, flops, nnz_l, decisions), symbolic_seconds =
      time_symbolic (fun () ->
          (* One shared symbolic factorization; the variant decision (the
             paper's VS-Block threshold) is taken on the cheap supernode
             statistics before any variant-specific planning is built. *)
          let fill = Sympiler_symbolic.Fill_pattern.analyze a_lower in
          let flops = Sympiler_symbolic.Fill_pattern.flops fill in
          let n = a_lower.Csc.ncols in
          let nnz_l =
            fill.Sympiler_symbolic.Fill_pattern.l_pattern.Csc.colptr.(n)
          in
          let go_supernodal, avg_width =
            match variant with
            | Simplicial -> (false, Float.nan (* forced: never measured *))
            | Supernodal ->
                let sn =
                  Sympiler_symbolic.Supernodes.detect_etree ?max_width
                    ~counts:fill.Sympiler_symbolic.Fill_pattern.counts
                    ~parent:fill.Sympiler_symbolic.Fill_pattern.parent ()
                in
                let w = Sympiler_symbolic.Supernodes.avg_width sn in
                (w >= vs_block_threshold, w)
          in
          let d_vs =
            {
              Trace.pass = "vs-block";
              fired = go_supernodal;
              metric = "avg_supernode_width";
              value = avg_width;
              threshold = vs_block_threshold;
            }
          in
          (* VI-Prune always fires for Cholesky: the prune-sets are baked
             into both variants. Its measured quantity is the fraction of
             the dense n*(n-1)/2 candidate updates the pattern removed. *)
          let d_vi =
            {
              Trace.pass = "vi-prune";
              fired = true;
              metric = "pruned_iteration_ratio";
              value =
                (if n < 2 then 0.0
                 else
                   1.0
                   -. float_of_int (nnz_l - n)
                      /. (float_of_int n *. float_of_int (n - 1) /. 2.0));
              threshold = 0.0;
            }
          in
          Trace.decision d_vi;
          Trace.decision d_vs;
          let decisions = [ d_vi; d_vs ] in
          if go_supernodal then
            let c =
              Cholesky_supernodal.Sympiler.compile ~fill ?max_width
                ~specialized a_lower
            in
            (Some c, None, flops, nnz_l, decisions)
          else
            let d = Cholesky_ref.Decoupled.compile ~fill a_lower in
            (None, Some d, flops, nnz_l, decisions))
    in
    let variant = if sup = None then Simplicial else variant in
    {
      variant;
      supernodal = sup;
      simplicial = simp;
      pattern = a_lower;
      symbolic_seconds;
      flops;
      nnz_l;
      decisions;
    }

  (* Compilation cache: keyed on lower(A)'s structure plus the compile
     options — a hit returns the previously compiled handle, physically
     equal, skipping the symbolic phase entirely. *)
  let default_cache : t Plan_cache.t = Plan_cache.create ()

  let compile_cached ?(cache = default_cache) ?(variant = Supernodal)
      ?(specialized = true) ?(vs_block_threshold = 2.0) ?max_width
      (a_lower : Csc.t) : t =
    Trace.with_span "compile_cached.cholesky" @@ fun () ->
    let extra =
      [|
        (match variant with Supernodal -> 0 | Simplicial -> 1);
        (if specialized then 1 else 0);
        fp_threshold (Some vs_block_threshold);
        fp_option max_width;
      |]
    in
    Plan_cache.find_or_compile cache ~pattern:a_lower ~extra (fun () ->
        compile ~variant ~specialized ~vs_block_threshold ?max_width a_lower)

  let cache_stats () = Plan_cache.stats default_cache
  let cache_clear () = Plan_cache.clear default_cache

  (* Numeric factorization: A = L L^T for any [a_lower] sharing the compiled
     pattern. *)
  let factor (t : t) (a_lower : Csc.t) : Csc.t =
    Prof.time "numeric" @@ fun () ->
    match (t.supernodal, t.simplicial) with
    | Some c, _ -> Cholesky_supernodal.Sympiler.factor c a_lower
    | None, Some d -> Cholesky_ref.Decoupled.factor d a_lower
    | None, None -> assert false

  (* Plans: allocate the factor storage and numeric scratch once, then
     refactorize repeatedly with zero steady-state allocation.
     [Prof.start]/[stop] rather than [Prof.time] keeps even the profiled
     path closure-free. *)
  type plan = {
    handle : t;
    sup : Cholesky_supernodal.Sympiler.plan option;
    simp : Cholesky_ref.Decoupled.plan option;
  }

  let plan (t : t) : plan =
    match (t.supernodal, t.simplicial) with
    | Some c, _ ->
        {
          handle = t;
          sup = Some (Cholesky_supernodal.Sympiler.make_plan c);
          simp = None;
        }
    | None, Some d ->
        {
          handle = t;
          sup = None;
          simp = Some (Cholesky_ref.Decoupled.make_plan d);
        }
    | None, None -> assert false

  let refactor_ip (p : plan) (a_lower : Csc.t) : unit =
    Prof.start "numeric";
    (try
       match (p.sup, p.simp) with
       | Some sp, _ -> Cholesky_supernodal.Sympiler.factor_ip sp a_lower
       | None, Some sp -> Cholesky_ref.Decoupled.factor_ip sp a_lower
       | None, None -> assert false
     with e ->
       Prof.stop "numeric";
       raise e);
    Prof.stop "numeric"

  (* The plan's factor view: refreshed in place by each [refactor_ip]. *)
  let plan_factor (p : plan) : Csc.t =
    match (p.sup, p.simp) with
    | Some sp, _ -> sp.Cholesky_supernodal.Sympiler.l
    | None, Some sp -> sp.Cholesky_ref.Decoupled.l
    | None, None -> assert false

  (* Solve A x = b: numeric factorization + two triangular solves. *)
  let solve (t : t) (a_lower : Csc.t) (b : float array) : float array =
    let l = factor t a_lower in
    Cholesky_ref.solve_with_factor l b

  (* Generated C source: the supernodal driver with baked-in schedule, or
     the fully specialized simplicial kernel from the AST pipeline. *)
  let c_code (t : t) : string =
    match t.supernodal with
    | Some c -> Codegen_supernodal.to_c c t.pattern
    | None ->
        (Sympiler_ir.Pipeline.cholesky t.pattern).Sympiler_ir.Pipeline.c_code
end

(* Symbolic "explain" reports: what the inspectors measured and what the
   transformations decided, for one compiled handle. Everything here is
   diagnostic-path code — it may recompute symbolic quantities freely. *)
module Explain = struct
  type histogram = (string * int) list

  type report = {
    kernel : string; (* "cholesky" | "trisolve" *)
    n : int;
    nnz_a : int;
    nnz_l : int;
    fill_ratio : float; (* nnz(L) / nnz(A); 0 for empty patterns *)
    etree_height : int;
    col_count_hist : histogram;
    supernode_width_hist : histogram;
    avg_supernode_width : float;
    level_depth : int; (* level sets of L's dependence graph *)
    max_level_width : int;
    decisions : Trace.decision list;
    predicted_flops : float; (* symbolic flop model of the handle *)
    executed_flops : int; (* Prof.counters snapshot; 0 when profiling off *)
    symbolic_seconds : float;
  }

  let safe_div a b = if b = 0.0 then 0.0 else a /. b

  (* Power-of-two buckets [1,1] [2,2] [3,4] [5,8] ... up to the max value;
     empty input yields the empty histogram. *)
  let histogram (values : int array) : histogram =
    if Array.length values = 0 then []
    else begin
      let vmax = Array.fold_left max 1 values in
      let rec buckets lo hi acc =
        if lo > vmax then List.rev acc
        else
          let label =
            if lo = hi then string_of_int lo else Printf.sprintf "%d-%d" lo hi
          in
          buckets (hi + 1) (hi * 2) ((label, lo, hi) :: acc)
      in
      List.map
        (fun (label, lo, hi) ->
          ( label,
            Array.fold_left
              (fun acc v -> if v >= lo && v <= hi then acc + 1 else acc)
              0 values ))
        (buckets 1 1 [])
    end

  let etree_height (parent : int array) : int =
    if Array.length parent = 0 then 0
    else 1 + Array.fold_left max 0 (Sympiler_symbolic.Etree.depths parent)

  (* Level-set statistics of a lower-triangular pattern. *)
  let level_stats (l : Csc.t) : int * int =
    if l.Csc.ncols = 0 then (0, 0)
    else begin
      let c = Trisolve_parallel.compile l in
      let maxw = ref 0 in
      for lv = 0 to c.Trisolve_parallel.nlevels - 1 do
        maxw :=
          max !maxw
            (c.Trisolve_parallel.level_ptr.(lv + 1)
            - c.Trisolve_parallel.level_ptr.(lv))
      done;
      (c.Trisolve_parallel.nlevels, !maxw)
    end

  let cholesky (t : Cholesky.t) : report =
    Trace.with_span "explain.cholesky" @@ fun () ->
    let a = t.Cholesky.pattern in
    let n = a.Csc.ncols in
    let nnz_a = Csc.nnz a in
    let fill = Sympiler_symbolic.Fill_pattern.analyze a in
    let sn =
      Sympiler_symbolic.Supernodes.detect_etree
        ~counts:fill.Sympiler_symbolic.Fill_pattern.counts
        ~parent:fill.Sympiler_symbolic.Fill_pattern.parent ()
    in
    let depth, maxw =
      level_stats fill.Sympiler_symbolic.Fill_pattern.l_pattern
    in
    {
      kernel = "cholesky";
      n;
      nnz_a;
      nnz_l = t.Cholesky.nnz_l;
      fill_ratio =
        safe_div (float_of_int t.Cholesky.nnz_l) (float_of_int nnz_a);
      etree_height =
        etree_height fill.Sympiler_symbolic.Fill_pattern.parent;
      col_count_hist =
        histogram fill.Sympiler_symbolic.Fill_pattern.counts;
      supernode_width_hist =
        histogram (Sympiler_symbolic.Supernodes.widths sn);
      avg_supernode_width = Sympiler_symbolic.Supernodes.avg_width sn;
      level_depth = depth;
      max_level_width = maxw;
      decisions = t.Cholesky.decisions;
      predicted_flops = t.Cholesky.flops;
      executed_flops = Prof.counters.Prof.flops;
      symbolic_seconds = t.Cholesky.symbolic_seconds;
    }

  let trisolve (t : Trisolve.t) : report =
    Trace.with_span "explain.trisolve" @@ fun () ->
    let l = t.Trisolve.l in
    let n = l.Csc.ncols in
    let nnz = Csc.nnz l in
    let parent = Sympiler_symbolic.Etree.compute l in
    let sn = t.Trisolve.compiled.Trisolve_sympiler.sn in
    let counts =
      Array.init n (fun j -> l.Csc.colptr.(j + 1) - l.Csc.colptr.(j))
    in
    let depth, maxw = level_stats l in
    {
      kernel = "trisolve";
      n;
      nnz_a = nnz;
      nnz_l = nnz;
      fill_ratio = (if nnz = 0 then 0.0 else 1.0);
      etree_height = etree_height parent;
      col_count_hist = histogram counts;
      supernode_width_hist =
        histogram (Sympiler_symbolic.Supernodes.widths sn);
      avg_supernode_width = Sympiler_symbolic.Supernodes.avg_width sn;
      level_depth = depth;
      max_level_width = maxw;
      decisions = t.Trisolve.decisions;
      predicted_flops = t.Trisolve.flops;
      executed_flops = Prof.counters.Prof.flops;
      symbolic_seconds = t.Trisolve.symbolic_seconds;
    }

  module Json = Prof.Json

  let decision_json (d : Trace.decision) =
    Json.Obj
      [
        ("pass", Json.Str d.Trace.pass);
        ("fired", Json.Bool d.Trace.fired);
        ("metric", Json.Str d.Trace.metric);
        ("value", Json.Float d.Trace.value);
        ("threshold", Json.Float d.Trace.threshold);
      ]

  let hist_json (h : histogram) =
    Json.Obj (List.map (fun (label, c) -> (label, Json.Int c)) h)

  let to_json (r : report) : string =
    Json.to_string
      (Json.Obj
         [
           ("kernel", Json.Str r.kernel);
           ("n", Json.Int r.n);
           ("nnz_a", Json.Int r.nnz_a);
           ("nnz_l", Json.Int r.nnz_l);
           ("fill_ratio", Json.Float r.fill_ratio);
           ("etree_height", Json.Int r.etree_height);
           ("col_count_hist", hist_json r.col_count_hist);
           ("supernode_width_hist", hist_json r.supernode_width_hist);
           ("avg_supernode_width", Json.Float r.avg_supernode_width);
           ("level_depth", Json.Int r.level_depth);
           ("max_level_width", Json.Int r.max_level_width);
           ("decisions", Json.List (List.map decision_json r.decisions));
           ("predicted_flops", Json.Float r.predicted_flops);
           ("executed_flops", Json.Int r.executed_flops);
           ("symbolic_seconds", Json.Float r.symbolic_seconds);
         ])

  (* Aligned two-column table; histogram and decision rows are indented
     under their headers. The label column is sized to the longest label. *)
  let to_table (r : report) : string =
    let hist_rows prefix h =
      List.filter_map
        (fun (label, c) ->
          if c = 0 then None
          else Some (Printf.sprintf "%s[%s]" prefix label, string_of_int c))
        h
    in
    let decision_rows =
      List.map
        (fun (d : Trace.decision) ->
          ( Printf.sprintf "decision[%s]" d.Trace.pass,
            Printf.sprintf "%s (%s = %g, threshold %g)"
              (if d.Trace.fired then "fired" else "declined")
              d.Trace.metric d.Trace.value d.Trace.threshold ))
        r.decisions
    in
    let rows =
      [
        ("kernel", r.kernel);
        ("n", string_of_int r.n);
        ("nnz(A)", string_of_int r.nnz_a);
        ("nnz(L)", string_of_int r.nnz_l);
        ("fill ratio", Printf.sprintf "%.3f" r.fill_ratio);
        ("etree height", string_of_int r.etree_height);
      ]
      @ hist_rows "col count " r.col_count_hist
      @ hist_rows "sn width " r.supernode_width_hist
      @ [
          ("avg supernode width", Printf.sprintf "%.3f" r.avg_supernode_width);
          ("level depth", string_of_int r.level_depth);
          ("max level width", string_of_int r.max_level_width);
        ]
      @ decision_rows
      @ [
          ("predicted flops", Printf.sprintf "%.0f" r.predicted_flops);
          ("executed flops", string_of_int r.executed_flops);
          ("symbolic seconds", Printf.sprintf "%.6f" r.symbolic_seconds);
        ]
    in
    let w =
      List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows
    in
    let buf = Buffer.create 512 in
    List.iter
      (fun (l, v) -> Buffer.add_string buf (Printf.sprintf "%-*s  %s\n" w l v))
      rows;
    Buffer.contents buf
end

let explain = Explain.cholesky
