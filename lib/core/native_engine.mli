(** Facade-side glue for the native kernel engine: wraps an emitted C
    translation unit behind the uniform [sympiler_entry] ABI, compiles and
    loads it through {!Sympiler_native.Native}, and owns the Bigarray
    buffers the trampoline passes to the kernel.

    The per-family wiring (which buffer slot is which kernel argument, how
    a non-negative return code maps back to the family's pivot exception)
    stays in the facade; this module only knows "a kernel of up to four
    [double *] arguments". *)

module Native = Sympiler_native.Native

type buf = Native.buf

type mode = Vec | Novec
(** [Vec] compiles the emitted source as-is ([#pragma GCC ivdep] +
    [restrict] + the default flags). [Novec] is the ablation arm of the
    bench: vectorize hints stripped from the source and
    [-fno-tree-vectorize] added, isolating what the annotations buy. *)

type exec = {
  nk : Native.kernel;
  b0 : buf;
  b1 : buf;
  b2 : buf;
  b3 : buf;
}
(** A loaded kernel plus its plan-owned argument buffers (unused slots
    alias {!Native.dummy}). *)

val wrapper : kname:string -> nargs:int -> int_return:bool -> string
(** The uniform entry point appended to an emitted translation unit:
    [int sympiler_entry(double *b0, …, double *b3)] forwarding the first
    [nargs] buffers to [kname]. Kernels returning [int] (the §3.3 factor
    kernels' failing-pivot index) pass their code through; [void] kernels
    return -1 ("no failure"). *)

val strip_vector_hints : string -> string
(** Remove [#pragma GCC ivdep] lines and [restrict] qualifiers from an
    emitted source (the [Novec] arm). *)

val load :
  mode:mode ->
  pattern_key:int ->
  family:string ->
  kname:string ->
  nargs:int ->
  int_return:bool ->
  sizes:int array ->
  string ->
  exec option
(** Wrap [source], compile/load it keyed by [pattern_key] + [family] (the
    source text, flags, and compiler identity are folded in by
    {!Native.load}), and allocate one zeroed buffer per entry of [sizes]
    (at most 4; missing or zero entries get the shared dummy). [None]
    means the native engine is unavailable — callers fall back to the
    OCaml executor. *)

val call : exec -> int
(** Run the kernel on its buffers; returns the kernel's code (-1 = ok,
    [>= 0] = failing pivot index). Allocation-free. *)

val blit_in : float array -> buf -> unit
(** Copy an OCaml float array into a buffer (lengths must match the
    buffer's size prefix; allocation-free). *)

val blit_out : buf -> float array -> unit
(** Copy a buffer back into an OCaml float array. *)

val fill0 : buf -> unit
(** Zero a buffer (allocation-free). *)

val scatter : buf -> int array -> float array -> unit
(** [scatter b idx v] writes [v.(t)] at [b.{idx.(t)}] for every [t]
    (sparse scatter; bounds-checked on the indices; allocation-free). *)

val fill0_at : buf -> int array -> unit
(** Zero the listed positions only (bounds-checked; allocation-free).
    The sparse counterpart of {!fill0} for kernels whose touched set is
    known symbolically, e.g. a trisolve's reach-set. *)

val gather : buf -> int array -> float array -> unit
(** [gather b idx dst] copies [b.{i}] to [dst.(i)] for every [i] in
    [idx] (bounds-checked; allocation-free). *)
