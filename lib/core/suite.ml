open Sympiler_sparse
open Sympiler_symbolic

(* The benchmark suite: Table 2's eleven problems, prepared the way the
   paper's libraries see them. Eigen and CHOLMOD apply a fill-reducing
   ordering in their recommended default configuration, so the mesh/grid
   problems are pre-permuted with AMD followed by an elimination tree
   postorder (which makes supernodes contiguous); the generators whose
   natural ordering already is the physical/structural one (cliques, block
   structures, banded) are used as-is. The same prepared matrix is given to
   every implementation. *)

type prepared = {
  id : int;
  name : string;
  descr : string;
  ordering : string;
  a_full : Csc.t; (* full symmetric matrix, prepared ordering *)
  a_lower : Csc.t; (* lower-triangular part (input to factorizations) *)
}

(* Fill-reducing ordering composed with the etree postorder of the
   permuted matrix: the postorder relabels along elimination dependences,
   which keeps supernodes contiguous without changing fill. *)
let fill_reducing_postorder ~(ordering : Csc.t -> Perm.t) (a : Csc.t) : Perm.t
    =
  let p = ordering a in
  let ap = Perm.symmetric_permute p a in
  let parent = Etree.compute (Csc.lower ap) in
  let post = Postorder.compute parent in
  Perm.compose post p

let min_degree_postorder (a : Csc.t) : Perm.t =
  fill_reducing_postorder ~ordering:Ordering.min_degree a

let amd_postorder (a : Csc.t) : Perm.t =
  fill_reducing_postorder ~ordering:Ordering.amd a

let prepare (p : Generators.problem) : prepared =
  let a = Lazy.force p.Generators.matrix in
  let reorder =
    (* Grid/mesh problems get the fill-reducing treatment. *)
    match p.Generators.name with
    | "Pres_Poisson" | "Dubcova2" | "Dubcova3" | "parabolic_fem" | "ecology2"
    | "tmt_sym" ->
        true
    | _ -> false
  in
  let a_full, ordering =
    if reorder then (Perm.symmetric_permute (amd_postorder a) a, "amd+postorder")
    else (a, "natural")
  in
  {
    id = p.Generators.id;
    name = p.Generators.name;
    descr = p.Generators.descr;
    ordering;
    a_full;
    a_lower = Csc.lower a_full;
  }

let cache : (int, prepared) Hashtbl.t = Hashtbl.create 16

let problem (id : int) : prepared =
  match Hashtbl.find_opt cache id with
  | Some p -> p
  | None ->
      let find l = List.find_opt (fun g -> g.Generators.id = id) l in
      let g =
        match find Generators.suite with
        | Some g -> g
        | None -> (
            (* Large-tier instances (ids 101+); their band-structured
               natural orderings are already the right ones, and [prepare]
               keeps them natural since they are not in its mesh list. *)
            match find Generators.large_suite with
            | Some g -> g
            | None -> raise Not_found)
      in
      let p = prepare g in
      Hashtbl.replace cache id p;
      p

let all () : prepared list =
  List.map (fun g -> problem g.Generators.id) Generators.suite

(* A sparse RHS in the paper's setting: the triangular solve is a sub-kernel
   of factorization / rank-update methods, so b's pattern is the pattern of
   a matrix column ("typically the sparsity of the RHS is close to the
   sparsity of the columns of a sparse matrix", §4.2; all columns have fill
   below 5%). We take the pattern of a mid-matrix column of lower(A), which
   by Gilbert-Peierls makes the reach-set equal the pattern of L's column. *)
let rhs_for (p : prepared) : Vector.sparse =
  let al = p.a_lower in
  let n = al.Csc.ncols in
  let j = n / 4 in
  let lo = al.Csc.colptr.(j) and hi = al.Csc.colptr.(j + 1) in
  let indices = Array.sub al.Csc.rowind lo (hi - lo) in
  let rng = Utils.Rng.create (100 + p.id) in
  let values = Array.map (fun _ -> Utils.Rng.float_range rng 0.5 1.5) indices in
  { Vector.n; indices; values }
