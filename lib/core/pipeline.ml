open Sympiler_sparse
open Sympiler_kernels
open Sympiler_prof
module Shared_analysis = Sympiler_symbolic.Shared_analysis
module Trace = Sympiler_trace.Trace
module Metrics = Sympiler_metrics.Metrics

(* Solver-pipeline fusion: compile a whole DAG of kernel stages through one
   shared symbolic analysis, into one fused plan.

   Compiling each stage of a solver pipeline in isolation pays the symbolic
   phase N times and the stage boundaries forever: every hand-off is a
   vector copy, a dispatch, and a loop restart. A pipeline compiles the DAG
   as one unit — one [Shared_analysis] serves every stage (the elimination
   tree, fill pattern, level schedule and symmetrized full pattern are each
   computed at most once, and the {!analysis_runs} ledger proves it), the
   plan owns one shared vector workspace threaded through the whole chain,
   and adjacent stages fuse where the schedule allows (L then L^T collapses
   into [Stages.solve_pair_ip], one pass with no boundary).

   Fusion never reorders floating-point arithmetic: fused and staged
   execution run the same stage bodies in the same canonical order, so
   their results are bitwise-identical — the fused path only removes
   copies, dispatch, and function boundaries. *)

type family = [ `Cholesky | `Ldlt | `Lu | `Ic0 | `Ilu0 ]

type stage_spec =
  | Factor of family
  | Lower_solve
  | Diag_solve
  | Upper_solve
  | Solve
  | Spmv

type dag = stage_spec list

(* ------------------------------ Combinators ----------------------------- *)

let stage (s : stage_spec) : dag = [ s ]
let then_ (a : dag) (b : dag) : dag = a @ b
let is_factor = function Factor _ -> true | _ -> false

let pair (f : dag) (s : dag) : dag =
  if not (List.exists is_factor f) then
    invalid_arg "Sympiler.Pipeline.pair: left side must contain a factor stage";
  if List.exists is_factor s then
    invalid_arg "Sympiler.Pipeline.pair: right side must not contain a factor";
  f @ s

let factor_solve (fam : family) : dag = [ Factor fam; Solve ]
let of_stages (l : stage_spec list) : dag = l
let to_stages (d : dag) : stage_spec list = d

(* ------------------------- Normalized vector ops ------------------------ *)

(* The family-resolved vector chain: [Solve] expands to the family's apply
   sequence, [Upper_solve] picks the right backward variant. *)
type vop = VLower | VLtrans | VUpper | VDiag | VCsrLower | VCsrUpper | VSpmv

let expand (family : family option) (s : stage_spec) : vop list =
  match (s, family) with
  | Factor _, _ -> []
  | Lower_solve, Some `Ilu0 -> [ VCsrLower ]
  | Lower_solve, _ -> [ VLower ]
  | Upper_solve, Some `Lu -> [ VUpper ]
  | Upper_solve, Some `Ilu0 -> [ VCsrUpper ]
  | Upper_solve, _ -> [ VLtrans ]
  | Diag_solve, Some `Ldlt -> [ VDiag ]
  | Diag_solve, _ ->
      invalid_arg "Sympiler.Pipeline.compile: Diag_solve requires Factor `Ldlt"
  | Solve, Some `Lu -> [ VLower; VUpper ]
  | Solve, Some `Ilu0 -> [ VCsrLower; VCsrUpper ]
  | Solve, Some `Ldlt -> [ VLower; VDiag; VLtrans ]
  | Solve, (Some (`Cholesky | `Ic0) | None) -> [ VLower; VLtrans ]
  | Spmv, _ -> [ VSpmv ]

(* ----------------------------- Compiled DAG ----------------------------- *)

type fhandle =
  | FChol_sup of Cholesky_supernodal.Sympiler.compiled
  | FChol_simp of Cholesky_ref.Decoupled.compiled
  | FLdlt of Ldlt.compiled
  | FLu of Lu.Sympiler.compiled
  | FIc0 of Ic0.compiled
  | FIlu0 of Ilu0.compiled

type t = {
  dag : stage_spec list;
  family : family option;
  vops : vop array;  (* family-resolved vector chain, dag order *)
  fbefore : int;
      (* number of vector ops preceding the factor stage in dag order;
         -1 when the DAG has no factor *)
  pattern : Csc.t;  (* compiled (permuted when ordered) pattern *)
  natural_pattern : Csc.t;
  ord : Compile_common.applied_ordering;
  analysis : Shared_analysis.t;  (* the one analysis every stage shares *)
  chain_analysis : Shared_analysis.t;
      (* analysis of the chain's L pattern: physically [analysis] when the
         factor keeps the input pattern (no fill), separate for the filled
         factors *)
  chain_l : Csc.t option;  (* structural L the fused C emission runs on *)
  fhandle : fhandle option;
  fused_boundaries : int;  (* stage boundaries removed by merging *)
  opts : Options.t;
  symbolic_seconds : float;
  decisions : Trace.decision list;
  n : int;
}

let family_name = function
  | `Cholesky -> "cholesky"
  | `Ldlt -> "ldlt"
  | `Lu -> "lu"
  | `Ic0 -> "ic0"
  | `Ilu0 -> "ilu0"

let stage_name = function
  | Factor f -> "factor:" ^ family_name f
  | Lower_solve -> "lower_solve"
  | Diag_solve -> "diag_solve"
  | Upper_solve -> "upper_solve"
  | Solve -> "solve"
  | Spmv -> "spmv"

(* Validation: a chain (execution order = stage order) with at most one
   factor stage. Returns the family and the factor's dag position. *)
let validate (d : dag) : family option * int =
  if d = [] then invalid_arg "Sympiler.Pipeline.compile: empty pipeline";
  let factors = List.filter is_factor d in
  if List.length factors > 1 then
    invalid_arg "Sympiler.Pipeline.compile: at most one factor stage per DAG";
  let family = match factors with [ Factor f ] -> Some f | _ -> None in
  let rec pos i = function
    | [] -> -1
    | Factor _ :: _ -> i
    | _ :: tl -> pos (i + 1) tl
  in
  (family, pos 0 d)

(* Greedy left-to-right count of (L, L^T) boundaries the fused step array
   removes; a pair straddling the factor slot does not merge (the factor
   must run between them). *)
let count_fusable ~(fbefore : int) (vops : vop array) : int =
  let c = ref 0 and i = ref 0 in
  let n = Array.length vops in
  while !i < n do
    if
      !i + 1 < n
      && vops.(!i) = VLower
      && vops.(!i + 1) = VLtrans
      && fbefore <> !i + 1
    then (
      incr c;
      i := !i + 2)
    else incr i
  done;
  !c

let compile_factor ~(opts : Options.t) ~analysis (family : family)
    (pattern : Csc.t) : fhandle * Trace.decision list =
  match family with
  | `Cholesky ->
      (* The facade's variant decision, fed from the shared analysis: the
         VS-Block threshold (paper §4.2) on the supernode statistics of the
         one fill pattern every stage shares. *)
      let fill = Shared_analysis.fill analysis in
      let threshold = Option.value opts.vs_block_threshold ~default:2.0 in
      let go_sup, avg_width =
        if opts.simplicial then (false, Float.nan)
        else
          let sn =
            Sympiler_symbolic.Supernodes.detect_etree ?max_width:opts.max_width
              ~counts:fill.Sympiler_symbolic.Fill_pattern.counts
              ~parent:fill.Sympiler_symbolic.Fill_pattern.parent ()
          in
          let w = Sympiler_symbolic.Supernodes.avg_width sn in
          (w >= threshold, w)
      in
      let d_vs =
        {
          Trace.pass = "vs-block";
          fired = go_sup;
          metric = "avg_supernode_width";
          value = avg_width;
          threshold;
        }
      in
      Trace.decision d_vs;
      if go_sup then
        ( FChol_sup
            (Cholesky_supernodal.Sympiler.compile ~fill
               ?max_width:opts.max_width ~specialized:opts.specialized pattern),
          [ d_vs ] )
      else (FChol_simp (Cholesky_ref.Decoupled.compile ~fill pattern), [ d_vs ])
  | `Ldlt -> (FLdlt (Ldlt.compile pattern), [])
  | `Lu -> (FLu (Lu.Sympiler.compile pattern), [])
  | `Ic0 -> (FIc0 (Ic0.compile pattern), [])
  | `Ilu0 -> (FIlu0 (Ilu0.compile pattern), [])

(* Structural view of the factor L the fused C emission runs on, plus the
   analysis record that owns its level schedule (None for the CSR-side
   families, whose chains have no CSC L). *)
let chain_l_of ~analysis (fh : fhandle option) (pattern : Csc.t) :
    Csc.t option * Shared_analysis.t =
  let n = pattern.Csc.ncols in
  let view colptr rowind =
    { Csc.nrows = n; ncols = n; colptr; rowind; values = [||] }
  in
  match fh with
  | None -> (Some pattern, analysis)
  | Some (FIc0 _) ->
      (* IC(0) keeps the input pattern: the shared analysis of the input
         *is* the chain analysis — its level schedule serves both. *)
      (Some pattern, analysis)
  | Some (FChol_sup _ | FChol_simp _) ->
      let fill = Shared_analysis.fill analysis in
      let l = fill.Sympiler_symbolic.Fill_pattern.l_pattern in
      (Some l, Shared_analysis.create l)
  | Some (FLdlt c) ->
      let l = view c.Ldlt.l_colptr c.Ldlt.l_rowind in
      (Some l, Shared_analysis.create l)
  | Some (FLu _ | FIlu0 _) -> (None, analysis)

let compile_raw ~(opts : Options.t) (d : dag) (a : Csc.t) : t =
  let family, factor_at = validate d in
  let square =
    match family with Some (`Lu | `Ilu0) -> true | None | Some _ -> false
  in
  if (not square) && not (Csc.is_lower_triangular a) then
    invalid_arg
      "Sympiler.Pipeline.compile: pass lower(A) (LU/ILU(0) DAGs take A)";
  let who = "Sympiler.Pipeline.compile" in
  let t0 = Prof.now_seconds () in
  let pattern, ord =
    if square then Compile_common.ordered_square ~who opts.ordering a
    else if family = None then (
      (* A factorless chain runs on the triangular input itself; permuting
         folds it into lower(P sym(A) P^T), a different operator — so
         orderings don't apply here. *)
      if opts.ordering <> `Natural then
        invalid_arg
          "Sympiler.Pipeline.compile: factorless pipelines support `Natural \
           ordering only";
      (a, Compile_common.natural_ordering))
    else Compile_common.ordered_lower ~who opts.ordering a
  in
  let ord_seconds = Prof.now_seconds () -. t0 in
  Trace.with_span "compile.pipeline"
    ~attrs:
      [
        ("n", Trace.Int pattern.Csc.ncols); ("stages", Trace.Int (List.length d));
      ]
  @@ fun () ->
  let r, symbolic_seconds =
    Compile_common.time_symbolic (fun () ->
        let analysis = Shared_analysis.create pattern in
        let fhandle, decisions =
          match family with
          | None -> (None, [])
          | Some f ->
              let fh, ds = compile_factor ~opts ~analysis f pattern in
              (Some fh, ds)
        in
        let vops = Array.of_list (List.concat_map (expand family) d) in
        let fbefore =
          if factor_at < 0 then -1
          else
            List.filteri (fun i _ -> i < factor_at) d
            |> List.concat_map (expand family)
            |> List.length
        in
        let chain_l, chain_analysis = chain_l_of ~analysis fhandle pattern in
        let fused_boundaries = count_fusable ~fbefore vops in
        let d_fuse =
          {
            Trace.pass = "pipeline-fuse";
            fired = fused_boundaries > 0;
            metric = "stage_boundaries_fused";
            value = float_of_int fused_boundaries;
            threshold = 1.0;
          }
        in
        Trace.decision d_fuse;
        ( analysis,
          fhandle,
          vops,
          fbefore,
          chain_l,
          chain_analysis,
          fused_boundaries,
          decisions @ [ d_fuse ] ))
  in
  let ( analysis,
        fhandle,
        vops,
        fbefore,
        chain_l,
        chain_analysis,
        fused_boundaries,
        decisions ) =
    r
  in
  let symbolic_seconds = symbolic_seconds +. ord_seconds in
  Compile_common.observe_compile ~family:"pipeline" ~ordering:ord.o_name
    symbolic_seconds;
  {
    dag = d;
    family;
    vops;
    fbefore;
    pattern;
    natural_pattern = a;
    ord;
    analysis;
    chain_analysis;
    chain_l;
    fhandle;
    fused_boundaries;
    opts;
    symbolic_seconds;
    decisions;
    n = pattern.Csc.ncols;
  }

(* --------------------------- Compilation cache -------------------------- *)

let default_cache : t Plan_cache.t = Plan_cache.create ()

let stage_code = function
  | Factor `Cholesky -> 10
  | Factor `Ldlt -> 11
  | Factor `Lu -> 12
  | Factor `Ic0 -> 13
  | Factor `Ilu0 -> 14
  | Lower_solve -> 1
  | Diag_solve -> 2
  | Upper_solve -> 3
  | Solve -> 4
  | Spmv -> 5

(* Cache key: the DAG's stage codes then the option fingerprint — two
   pipelines share an entry only when the structure hash, the stage
   sequence and the options all agree. *)
let fingerprint (d : dag) (opts : Options.t) : int array =
  Array.append
    (Array.of_list (List.length d :: List.map stage_code d))
    (Options.fingerprint opts)

let compile ?cache ?(opts = Options.default) (d : dag) (a : Csc.t) : t =
  match (cache, opts.Options.cache) with
  | None, false -> compile_raw ~opts d a
  | _ ->
      let c = Option.value cache ~default:default_cache in
      Trace.with_span "compile_cached.pipeline" @@ fun () ->
      Plan_cache.find_or_compile c ~pattern:a ~extra:(fingerprint d opts)
        (fun () -> compile_raw ~opts d a)

let cache_stats () = Plan_cache.stats default_cache
let cache_clear () = Plan_cache.clear default_cache
let symbolic_seconds (t : t) = t.symbolic_seconds
let analysis_runs (t : t) = Shared_analysis.runs t.analysis
let dag_of (t : t) = t.dag
let input_pattern (t : t) = t.natural_pattern
let fused_boundaries (t : t) = t.fused_boundaries
let decisions (t : t) = t.decisions

(* --------------------------------- Plans -------------------------------- *)

type fplan =
  | PChol_sup of Cholesky_supernodal.Sympiler.plan
  | PChol_simp of Cholesky_ref.Decoupled.plan
  | PLdlt of Ldlt.plan
  | PLu of Lu.Sympiler.plan
  | PIc0 of Ic0.plan
  | PIlu0 of Ilu0.plan

(* One executed step. Factor views ([SLower]'s [Csc.t], [SDiag]'s array...)
   point into the factor plan's storage, which [factor_ip] refreshes in
   place — the views stay valid across refactorizations. *)
type step =
  | SFactor
  | SLower of Csc.t
  | SLtrans of Csc.t
  | SPair of Csc.t  (* merged L then L^T: one fused pass *)
  | SUpper of Csc.t
  | SDiag of float array
  | SCsrLower of Ilu0.compiled * float array
  | SCsrUpper of Ilu0.compiled * float array
  | SSpmv of Csc.t

type plan = {
  handle : t;
  fplan : fplan option;
  fused : step array;  (* adjacent L / L^T merged *)
  staged : step array;  (* one step per stage: the baseline *)
  x : float array;  (* the shared chain workspace (permuted order) *)
  y : float array;  (* SpMV ping buffer *)
  sx : float array;  (* staged path: per-stage input copy *)
  sy : float array;  (* staged path: SpMV target *)
  out : float array;  (* natural-order result, plan-owned *)
  scratch : Csc.t option;  (* ordered plans: permuted-input values *)
  lvals : Csc.t option;  (* factorless chains: plan-owned L values *)
  spmv_op : (Csc.t * int array) option;
      (* SpMV operand (plan-owned values) + gather map from the permuted
         input's values *)
  mutable cur : int;  (* which of x/y holds the chain value (fused path) *)
  m_fused : Metrics.histogram;
  m_staged : Metrics.histogram;
  m_factor : Metrics.histogram;
  m_stages : Metrics.histogram array;  (* staged per-stage latency *)
}

let make_fplan = function
  | FChol_sup c -> PChol_sup (Cholesky_supernodal.Sympiler.make_plan c)
  | FChol_simp c -> PChol_simp (Cholesky_ref.Decoupled.make_plan c)
  | FLdlt c -> PLdlt (Ldlt.make_plan c)
  | FLu c -> PLu (Lu.Sympiler.make_plan c)
  | FIc0 c -> PIc0 (Ic0.make_plan c)
  | FIlu0 c -> PIlu0 (Ilu0.make_plan c)

(* The factor views each vop reads, resolved against the factor plan. *)
let step_of_vop (fp : fplan option) (lvals : Csc.t option)
    (spmv_op : (Csc.t * int array) option) (v : vop) : step =
  let l_view () =
    match (fp, lvals) with
    | Some (PChol_sup p), _ -> p.Cholesky_supernodal.Sympiler.l
    | Some (PChol_simp p), _ -> p.Cholesky_ref.Decoupled.l
    | Some (PLdlt p), _ -> p.Ldlt.f.Ldlt.l
    | Some (PLu p), _ -> p.Lu.Sympiler.f.Lu.l
    | Some (PIc0 p), _ -> p.Ic0.l
    | Some (PIlu0 _), _ | None, None ->
        invalid_arg "Sympiler.Pipeline.plan: no CSC L for this stage"
    | None, Some lv -> lv
  in
  match v with
  | VLower -> SLower (l_view ())
  | VLtrans -> SLtrans (l_view ())
  | VUpper -> (
      match fp with
      | Some (PLu p) -> SUpper p.Lu.Sympiler.f.Lu.u
      | _ ->
          invalid_arg "Sympiler.Pipeline.plan: Upper_solve needs an LU factor")
  | VDiag -> (
      match fp with
      | Some (PLdlt p) -> SDiag p.Ldlt.f.Ldlt.d
      | _ -> invalid_arg "Sympiler.Pipeline.plan: Diag_solve needs LDL^T")
  | VCsrLower -> (
      match fp with
      | Some (PIlu0 p) -> SCsrLower (p.Ilu0.f.Ilu0.c, p.Ilu0.f.Ilu0.values)
      | _ -> invalid_arg "Sympiler.Pipeline.plan: CSR solve needs ILU(0)")
  | VCsrUpper -> (
      match fp with
      | Some (PIlu0 p) -> SCsrUpper (p.Ilu0.f.Ilu0.c, p.Ilu0.f.Ilu0.values)
      | _ -> invalid_arg "Sympiler.Pipeline.plan: CSR solve needs ILU(0)")
  | VSpmv -> (
      match spmv_op with
      | Some (op, _) -> SSpmv op
      | None -> assert false)

(* Interleave the factor back into the executed step sequence at its dag
   position (so mid-chain refactorization honors dag order), then merge
   adjacent L / L^T steps on the same view — the factor slot is a barrier,
   a pair straddling it stays split. *)
let steps_of (t : t) fp lvals spmv_op ~(merge : bool) : step array =
  let vsteps =
    Array.to_list (Array.map (step_of_vop fp lvals spmv_op) t.vops)
  in
  let with_factor =
    if t.fbefore < 0 then vsteps
    else
      let rec insert i l =
        if i = 0 then SFactor :: l
        else
          match l with [] -> [ SFactor ] | s :: tl -> s :: insert (i - 1) tl
      in
      insert t.fbefore vsteps
  in
  let rec merge_pairs = function
    | SLower l :: SLtrans l' :: tl when l == l' -> SPair l :: merge_pairs tl
    | s :: tl -> s :: merge_pairs tl
    | [] -> []
  in
  Array.of_list (if merge then merge_pairs with_factor else with_factor)

let step_name = function
  | SFactor -> "factor"
  | SLower _ -> "lower_solve"
  | SLtrans _ -> "ltrans_solve"
  | SPair _ -> "solve_pair"
  | SUpper _ -> "upper_solve"
  | SDiag _ -> "diag_solve"
  | SCsrLower _ -> "csr_lower_solve"
  | SCsrUpper _ -> "csr_upper_solve"
  | SSpmv _ -> "spmv"

let plan (t : t) : plan =
  Trace.with_span "plan.pipeline" ~attrs:[ ("n", Trace.Int t.n) ] @@ fun () ->
  let n = t.n in
  let fp = Option.map make_fplan t.fhandle in
  let nnz = Csc.nnz t.pattern in
  let scratch = Compile_common.ordering_scratch t.ord t.pattern in
  (* Values the chain reads when there is no factor: captured from the
     compiled matrix (like a trisolve plan), refreshed by [?a]. *)
  let lvals =
    match t.fhandle with
    | Some _ -> None
    | None ->
        Some { t.pattern with Csc.values = Array.copy t.pattern.Csc.values }
  in
  let spmv_op =
    if not (Array.exists (fun v -> v = VSpmv) t.vops) then None
    else
      match t.family with
      | Some (`Lu | `Ilu0) | None ->
          (* square input (or a factorless triangular chain): the operand
             is the input matrix itself *)
          let op =
            { t.pattern with Csc.values = Array.copy t.pattern.Csc.values }
          in
          Some (op, Array.init nnz (fun k -> k))
      | Some (`Cholesky | `Ldlt | `Ic0) ->
          (* symmetric input given as lower(A): the operand is the
             symmetrized A, refreshed through the shared analysis's gather
             map *)
          let full, map = Shared_analysis.full t.analysis in
          let op = { full with Csc.values = Array.make (Csc.nnz full) 0.0 } in
          let src = t.pattern.Csc.values and dst_v = op.Csc.values in
          for k = 0 to Array.length dst_v - 1 do
            dst_v.(k) <- src.(map.(k))
          done;
          Some (op, map)
  in
  let fused = steps_of t fp lvals spmv_op ~merge:true in
  let staged = steps_of t fp lvals spmv_op ~merge:false in
  let hist op =
    Compile_common.execute_hist ~family:"pipeline" ~op ~engine:"ocaml"
      ~ordering:t.ord.o_name
  in
  {
    handle = t;
    fplan = fp;
    fused;
    staged;
    x = Array.make n 0.0;
    y = Array.make n 0.0;
    sx = Array.make n 0.0;
    sy = Array.make n 0.0;
    out = Array.make n 0.0;
    scratch;
    lvals;
    spmv_op;
    cur = 0;
    m_fused = hist "apply_fused";
    m_staged = hist "apply_staged";
    m_factor = hist "factor";
    m_stages =
      Array.mapi
        (fun i s -> hist (Printf.sprintf "stage%d:%s" i (step_name s)))
        staged;
  }

(* ------------------------------- Execution ------------------------------ *)

(* Refresh every value the chain reads from a new input: gather into the
   ordered scratch, the factorless L view, and the SpMV operand. Returns
   the (permuted) input the factor consumes. Allocation-free. *)
let prepare (p : plan) (a : Csc.t) : Csc.t =
  let who = "Sympiler.Pipeline.execute_ip" in
  let src =
    match p.scratch with
    | None ->
        if Array.length a.Csc.values <> Csc.nnz p.handle.pattern then
          invalid_arg (who ^ ": input nnz does not match the compiled pattern");
        a
    | Some s ->
        Compile_common.gather_values ~who p.handle.ord.o_map a.Csc.values s;
        s
  in
  (match p.lvals with
  | Some lv ->
      Array.blit src.Csc.values 0 lv.Csc.values 0 (Array.length lv.Csc.values)
  | None -> ());
  (match p.spmv_op with
  | Some (op, map) ->
      let sv = src.Csc.values and dv = op.Csc.values in
      for k = 0 to Array.length dv - 1 do
        dv.(k) <- sv.(map.(k))
      done
  | None -> ());
  src

let run_factor (p : plan) (a' : Csc.t) : unit =
  match p.fplan with
  | None -> ()
  | Some fp ->
      let t0 = if Metrics.enabled () then Prof.now_seconds () else 0.0 in
      (match fp with
      | PChol_sup sp -> Cholesky_supernodal.Sympiler.factor_ip sp a'
      | PChol_simp sp -> Cholesky_ref.Decoupled.factor_ip sp a'
      | PLdlt sp -> Ldlt.factor_ip sp a'
      | PLu sp -> Lu.Sympiler.factor_ip sp a'
      | PIc0 sp -> Ic0.factor_ip sp a'
      | PIlu0 sp -> Ilu0.factor_ip sp a');
      if Metrics.enabled () then
        Metrics.observe p.m_factor (Prof.now_seconds () -. t0)

let buf (p : plan) = if p.cur = 0 then p.x else p.y

(* The fused executor: every vector stage runs in place on the one shared
   workspace; SpMV ping-pongs between the two chain buffers instead of
   copying back. [src = None] (no new matrix) skips the factor step. *)
let run_fused (p : plan) (src : Csc.t option) : unit =
  p.cur <- 0;
  for i = 0 to Array.length p.fused - 1 do
    match p.fused.(i) with
    | SFactor -> ( match src with Some a' -> run_factor p a' | None -> ())
    | SLower l -> Stages.lower_ip l (buf p)
    | SLtrans l -> Stages.ltrans_ip l (buf p)
    | SPair l -> Stages.solve_pair_ip l (buf p)
    | SUpper u -> Stages.upper_ip u (buf p)
    | SDiag d -> Stages.diag_ip d (buf p)
    | SCsrLower (c, v) -> Stages.csr_lower_unit_ip c v (buf p)
    | SCsrUpper (c, v) -> Stages.csr_upper_ip c v (buf p)
    | SSpmv op ->
        let s = buf p in
        let d = if p.cur = 0 then p.y else p.x in
        Stages.spmv_into op s d;
        p.cur <- 1 - p.cur
  done

(* The staged baseline: same stage bodies, same order, but every stage gets
   its own input copy and copies its result back — the per-stage workspace
   discipline of N independently compiled plans. Bitwise-identical to the
   fused path (the copies don't change values); the difference is pure
   boundary overhead. *)
let run_staged (p : plan) (src : Csc.t option) : unit =
  p.cur <- 0;
  let n = p.handle.n in
  for i = 0 to Array.length p.staged - 1 do
    let t0 = if Metrics.enabled () then Prof.now_seconds () else 0.0 in
    (match p.staged.(i) with
    | SFactor -> ( match src with Some a' -> run_factor p a' | None -> ())
    | SSpmv op ->
        Array.blit p.x 0 p.sx 0 n;
        Stages.spmv_into op p.sx p.sy;
        Array.blit p.sy 0 p.x 0 n
    | s ->
        Array.blit p.x 0 p.sx 0 n;
        (match s with
        | SLower l -> Stages.lower_ip l p.sx
        | SLtrans l -> Stages.ltrans_ip l p.sx
        | SPair l -> Stages.solve_pair_ip l p.sx
        | SUpper u -> Stages.upper_ip u p.sx
        | SDiag d -> Stages.diag_ip d p.sx
        | SCsrLower (c, v) -> Stages.csr_lower_unit_ip c v p.sx
        | SCsrUpper (c, v) -> Stages.csr_upper_ip c v p.sx
        | SFactor | SSpmv _ -> assert false);
        Array.blit p.sx 0 p.x 0 n);
    if Metrics.enabled () then
      Metrics.observe p.m_stages.(i) (Prof.now_seconds () -. t0)
  done

let load_b (p : plan) (b : float array) : unit =
  let n = p.handle.n in
  if Array.length b <> n then
    invalid_arg "Sympiler.Pipeline.execute_ip: b has the wrong length";
  match p.handle.ord.o_perm with
  | None -> Array.blit b 0 p.x 0 n
  | Some pm ->
      for k = 0 to n - 1 do
        p.x.(k) <- b.(pm.(k))
      done

let store_out (p : plan) : float array =
  let n = p.handle.n in
  let s = buf p in
  (match p.handle.ord.o_perm with
  | None -> Array.blit s 0 p.out 0 n
  | Some pm ->
      for k = 0 to n - 1 do
        p.out.(pm.(k)) <- s.(k)
      done);
  p.out

let execute_raw run (p : plan) (a : Csc.t option) (b : float array) :
    float array =
  Prof.start "numeric";
  let r =
    try
      (* [prepare] refreshes everything value-like; the factor step still
         needs the permuted input, which is the scratch when ordered *)
      (match a with
      | None ->
          load_b p b;
          run p None
      | Some a0 ->
          let src = prepare p a0 in
          load_b p b;
          run p (Some src));
      store_out p
    with e ->
      Prof.stop "numeric";
      raise e
  in
  Prof.stop "numeric";
  r

(* No closures here: the steady-state apply path must not allocate. *)
let execute_ip (p : plan) ?a (b : float array) : float array =
  if Metrics.enabled () then begin
    let t0 = Prof.now_seconds () in
    let r = execute_raw run_fused p a b in
    Metrics.observe p.m_fused (Prof.now_seconds () -. t0);
    r
  end
  else execute_raw run_fused p a b

let staged_execute_ip (p : plan) ?a (b : float array) : float array =
  if Metrics.enabled () then begin
    let t0 = Prof.now_seconds () in
    let r = execute_raw run_staged p a b in
    Metrics.observe p.m_staged (Prof.now_seconds () -. t0);
    r
  end
  else execute_raw run_staged p a b

(* Refactor only: refresh values and run the factor stage, leaving the
   vector chain alone (the [factor_ip] of the unified kernel API). *)
let factor_ip (p : plan) (a : Csc.t) : unit =
  Prof.start "numeric";
  (try
     let src = prepare p a in
     run_factor p src
   with e ->
     Prof.stop "numeric";
     raise e);
  Prof.stop "numeric"

let plan_latency (p : plan) = Metrics.snapshot p.m_fused

let stage_latencies (p : plan) : (string * Metrics.histogram_snapshot) array =
  Array.mapi
    (fun i s ->
      ( Printf.sprintf "stage%d:%s" i (step_name s),
        Metrics.snapshot p.m_stages.(i) ))
    p.staged

(* ------------------------------ C emission ------------------------------ *)

(* Fused C for the vector chain: one kernel, stage bodies back to back,
   both triangular sweeps driven by the shared analysis's level schedule.
   The CSR-side families (LU, ILU(0)) have no CSC L to schedule — their
   chains stay executor-only for now. *)
let c_code (t : t) : string =
  let stages =
    Array.to_list t.vops
    |> List.map (function
         | VLower -> Sympiler_ir.Fuse.Lower
         | VLtrans -> Sympiler_ir.Fuse.Ltrans
         | VDiag -> Sympiler_ir.Fuse.Diag
         | VSpmv -> Sympiler_ir.Fuse.Spmv
         | VUpper | VCsrLower | VCsrUpper ->
             invalid_arg
               "Sympiler.Pipeline.c_code: LU/ILU(0) chains have no fused C \
                emission")
  in
  if stages = [] then
    invalid_arg "Sympiler.Pipeline.c_code: the DAG has no vector stages";
  let l =
    match t.chain_l with
    | Some l -> l
    | None -> invalid_arg "Sympiler.Pipeline.c_code: no CSC L in this DAG"
  in
  let level_ptr, level_cols = Shared_analysis.levels t.chain_analysis in
  let full =
    if List.mem Sympiler_ir.Fuse.Spmv stages then
      match t.family with
      | Some (`Cholesky | `Ldlt | `Ic0) ->
          let f, _ = Shared_analysis.full t.analysis in
          Some f
      | _ -> Some t.pattern
    else None
  in
  Sympiler_ir.Pretty_c.kernel_to_c
    (Sympiler_ir.Fuse.chain ~vectorize:t.opts.Options.vectorize
       ~kname:"pipeline_apply" ~level_ptr ~level_cols ?full l stages)

(* ------------------------------- Reporting ------------------------------ *)

let describe (t : t) : string =
  let b = Buffer.create 256 in
  let kv k v = Buffer.add_string b (Printf.sprintf "  %-22s %s\n" k v) in
  Buffer.add_string b "pipeline\n";
  kv "stages" (String.concat " -> " (List.map stage_name t.dag));
  kv "family" (match t.family with None -> "none" | Some f -> family_name f);
  kv "n" (string_of_int t.n);
  kv "nnz" (string_of_int (Csc.nnz t.pattern));
  kv "ordering" t.ord.o_name;
  kv "fused_boundaries" (string_of_int t.fused_boundaries);
  kv "symbolic_seconds" (Printf.sprintf "%.6f" t.symbolic_seconds);
  kv "analysis_runs"
    (String.concat ", "
       (List.map
          (fun (k, v) -> Printf.sprintf "%s=%d" k v)
          (Shared_analysis.runs t.analysis)));
  List.iter
    (fun (d : Trace.decision) ->
      kv
        ("decision." ^ d.Trace.pass)
        (Printf.sprintf "%s (%s=%.3g, threshold %.3g)"
           (if d.Trace.fired then "fired" else "skipped")
           d.Trace.metric d.Trace.value d.Trace.threshold))
    t.decisions;
  Buffer.contents b
