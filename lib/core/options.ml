open Sympiler_sparse

(* One compile-option record shared by every kernel family and by the
   pipeline layer. The record replaces the per-family
   compile/compile_ext/compile_cached/compile_cached_ext quartet: a family
   consumes the fields it understands and ignores the rest (the documented
   price of one uniform signature), so the same value can parameterize a
   whole DAG of heterogeneous stages. *)

type ordering = [ `Natural | `Rcm | `Amd | `Min_degree | `Given of Perm.t ]
type engine = [ `Ocaml | `Native | `Native_novec ]

type t = {
  fill : Sympiler_symbolic.Fill_pattern.t option;
  max_width : int option;
  ordering : ordering;
  cache : bool;
  vs_block_threshold : float option;
  simplicial : bool;
  specialized : bool;
  vectorize : bool;
}

let default =
  {
    fill = None;
    max_width = None;
    ordering = `Natural;
    cache = false;
    vs_block_threshold = None;
    simplicial = false;
    specialized = true;
    vectorize = true;
  }

let cached = { default with cache = true }

let make ?fill ?max_width ?(ordering = `Natural) ?(cache = false)
    ?vs_block_threshold ?(simplicial = false) ?(specialized = true)
    ?(vectorize = true) () =
  {
    fill;
    max_width;
    ordering;
    cache;
    vs_block_threshold;
    simplicial;
    specialized;
    vectorize;
  }

let ordering_name : ordering -> string = function
  | `Natural -> "natural"
  | `Rcm -> "rcm"
  | `Amd -> "amd"
  | `Min_degree -> "min-degree"
  | `Given _ -> "given"

(* Optional-argument encoding for cache fingerprints: configurations must
   map to distinct integers, including "not given" vs "given the default
   value" (the callee's default could change). *)
let fp_option = function None -> min_int | Some w -> w

let fp_threshold = function
  | None -> min_int
  | Some x -> int_of_float (x *. 1024.0)

(* The ordering request is part of every compilation key (a [`Given]
   permutation fingerprints by content). *)
let fp_ordering : ordering option -> int array = function
  | None | Some `Natural -> [| 0 |]
  | Some `Rcm -> [| 1 |]
  | Some `Amd -> [| 2 |]
  | Some `Min_degree -> [| 3 |]
  | Some (`Given p) -> Array.append [| 4; Array.length p |] p

let append_fp_ordering extra ord = Array.append extra (fp_ordering ord)

(* [fill] is excluded: reusing a caller-provided analysis of the same
   pattern yields the same artifact, so it must hit the same cache entry.
   [cache] is excluded for the same reason — it selects where the handle
   lives, not what it is. *)
let fingerprint (o : t) : int array =
  append_fp_ordering
    [|
      fp_option o.max_width;
      fp_threshold o.vs_block_threshold;
      (if o.simplicial then 1 else 0)
      lor (if o.specialized then 2 else 0)
      lor if o.vectorize then 4 else 0;
    |]
    (Some o.ordering)
