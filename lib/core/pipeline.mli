open Sympiler_sparse
module Trace = Sympiler_trace.Trace
module Metrics = Sympiler_metrics.Metrics

(** Solver-pipeline fusion: compile whole DAGs of kernel stages through one
    shared symbolic analysis, into one fused plan.

    Compiling each stage of a solver pipeline in isolation pays the
    symbolic phase N times and the stage boundaries forever: every hand-off
    is a vector copy, a dispatch, and a loop restart. A pipeline compiles
    the DAG as one unit:

    - one {!Sympiler_symbolic.Shared_analysis} serves every stage — the
      elimination tree, fill pattern, level schedule and symmetrized full
      pattern are each computed at most once ({!analysis_runs} proves it);
    - the plan owns one shared vector workspace threaded through the whole
      chain — zero intermediate vectors between stages, zero steady-state
      allocation in {!execute_ip};
    - adjacent stages fuse where the schedule allows: an L solve followed
      by an L^T solve collapses into one merged pass, and the emitted C
      ({!c_code}) crosses the same boundaries.

    Fusion never reorders floating-point arithmetic. The fused and the
    staged executor run the same stage bodies in the same canonical order,
    so {!execute_ip} and {!staged_execute_ip} return bitwise-identical
    results — the fused path only removes copies, dispatch, and function
    boundaries. *)

type family = [ `Cholesky | `Ldlt | `Lu | `Ic0 | `Ilu0 ]

type stage_spec =
  | Factor of family
      (** the DAG's (single) numeric factorization; runs only when
          {!execute_ip} receives [?a] (or via {!factor_ip}) *)
  | Lower_solve  (** forward substitution on the factor's L *)
  | Diag_solve  (** [x / D] — requires [Factor `Ldlt] *)
  | Upper_solve  (** backward substitution (L^T, or LU's U) *)
  | Solve
      (** the family's whole apply: [L, L^T] (Cholesky/IC(0)/factorless),
          [L, D, L^T] (LDL^T), [L, U] (LU/ILU(0)) *)
  | Spmv
      (** [x <- A x] — the symmetrized input for the symmetric families,
          the input itself for LU/ILU(0) and factorless chains *)

type dag
(** A pipeline under construction: a chain of stages, execution order =
    construction order. *)

(** {1 Combinators} *)

val stage : stage_spec -> dag
val then_ : dag -> dag -> dag

val pair : dag -> dag -> dag
(** [pair f s]: a factor+solve pair — [f] must contain the factor stage,
    [s] must not (raises [Invalid_argument] otherwise). *)

val factor_solve : family -> dag
(** [stage (Factor f) |> then_ (stage Solve)] — the common pair. *)

val of_stages : stage_spec list -> dag
val to_stages : dag -> stage_spec list

(** {1 Compilation} *)

type t
(** A compiled pipeline: one shared analysis, at most one compiled factor
    kernel, the family-resolved vector chain. *)

val compile : ?cache:t Plan_cache.t -> ?opts:Options.t -> dag -> Csc.t -> t
(** Compile the DAG for one pattern: lower(A) for the symmetric families
    and factorless chains, square A for LU/ILU(0). Runs the symbolic
    analysis {e once} for the whole DAG. [?opts] is the shared
    {!Options.t}; [opts.fill] is ignored (the pipeline owns its analysis)
    and factorless chains support [`Natural] ordering only. Passing
    [?cache] (or [opts.cache = true], which uses the module's default
    cache) routes the compile through a {!Plan_cache} keyed on the pattern
    structure, the stage sequence and the options.

    Raises [Invalid_argument] on an empty DAG, more than one factor stage,
    [Diag_solve] without [Factor `Ldlt], or a pattern of the wrong shape. *)

val cache_stats : unit -> Plan_cache.stats
val cache_clear : unit -> unit

val symbolic_seconds : t -> float
(** Wall-clock of the one shared symbolic phase (ordering included). *)

val analysis_runs : t -> (string * int) list
(** The shared analysis's computation ledger ([("etree", _); ("fill", _);
    ("levels", _); ("full", _)]) — each count stays [<= 1] no matter how
    many stages consumed the artifact. *)

val dag_of : t -> stage_spec list
val input_pattern : t -> Csc.t

val fused_boundaries : t -> int
(** Stage boundaries the fused executor removed by merging. *)

val decisions : t -> Trace.decision list
(** Transformation decisions taken at compile time (vs-block when the DAG
    factors with Cholesky, pipeline-fuse always). *)

val describe : t -> string
(** Human-readable report: stages, family, sizes, ordering, fusion and
    analysis-sharing counters, decisions. *)

val c_code : t -> string
(** Fused C for the vector chain: one kernel ([pipeline_apply]), stage
    bodies back to back, both triangular sweeps driven by the shared level
    schedule. Raises [Invalid_argument] for LU/ILU(0) chains (no CSC L) and
    for DAGs with no vector stages. *)

(** {1 Plans} *)

type plan
(** Reusable numeric workspaces: the factor kernel's plan plus the shared
    vector chain buffers — allocated once, reused across executions. *)

val plan : t -> plan

val execute_ip : plan -> ?a:Csc.t -> float array -> float array
(** Run the whole fused pipeline on [b]: with [~a] (values for the compiled
    pattern) the factor stage refactorizes in place at its DAG position;
    without it the chain reuses the current factor values. Returns the
    plan-owned result buffer (natural order, valid until the next call).
    Zero steady-state allocation. A DAG whose factor never ran (no [~a]
    yet, no {!factor_ip}) applies whatever the factor workspaces hold —
    factor first. *)

val staged_execute_ip : plan -> ?a:Csc.t -> float array -> float array
(** The unfused baseline: the same stage bodies in the same order, but
    every stage gets its own workspace copy-in/copy-out — what N
    independently compiled plans would do. Bitwise-identical results to
    {!execute_ip}; per-stage latency lands in {!stage_latencies}. *)

val factor_ip : plan -> Csc.t -> unit
(** Refresh values and run only the factor stage (no vector chain). *)

val plan_latency : plan -> Metrics.histogram_snapshot
(** Latency distribution of the fused {!execute_ip} (empty unless
    {!Metrics.enable}d). *)

val stage_latencies : plan -> (string * Metrics.histogram_snapshot) array
(** Per-stage latency of the staged baseline, labeled [stageN:<name>]. *)
