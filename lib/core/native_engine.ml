(* Facade-side glue for the native engine: uniform-ABI wrapper emission,
   vectorize-hint stripping for the ablation arm, and the buffer-owning
   [exec] record the family plans embed. *)

module Native = Sympiler_native.Native

type buf = Native.buf
type mode = Vec | Novec

type exec = {
  nk : Native.kernel;
  b0 : buf;
  b1 : buf;
  b2 : buf;
  b3 : buf;
}

(* The generated kernels take [const double *restrict] / [double *restrict]
   parameters; the wrapper's plain [double *] arguments convert implicitly,
   so one fixed trampoline signature covers every family. *)
let wrapper ~kname ~nargs ~int_return =
  let args =
    String.concat ", " (List.init nargs (fun i -> Printf.sprintf "b%d" i))
  in
  let unused =
    List.filteri (fun i _ -> i >= nargs) [ "b0"; "b1"; "b2"; "b3" ]
    |> List.map (fun b -> Printf.sprintf "  (void)%s;\n" b)
    |> String.concat ""
  in
  if int_return then
    Printf.sprintf
      "\n\
       int sympiler_entry(double *b0, double *b1, double *b2, double *b3) {\n\
       %s  return %s(%s);\n\
       }\n"
      unused kname args
  else
    Printf.sprintf
      "\n\
       int sympiler_entry(double *b0, double *b1, double *b2, double *b3) {\n\
       %s  %s(%s);\n\
       return -1;\n\
       }\n"
      unused kname args

(* The Novec arm must be semantically identical C, minus the permissions
   we granted the vectorizer: drop the ivdep pragmas and the [restrict]
   qualifiers (both are hints/contracts, not semantics, for our kernels). *)
let replace_all ~sub ~by s =
  let m = String.length sub in
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  while !i <= String.length s - m do
    if String.sub s !i m = sub then begin
      Buffer.add_string buf by;
      i := !i + m
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.add_string buf (String.sub s !i (String.length s - !i));
  Buffer.contents buf

let strip_vector_hints source =
  String.split_on_char '\n' source
  |> List.filter (fun line ->
         let t = String.trim line in
         not (String.length t >= 7 && String.sub t 0 7 = "#pragma"))
  |> List.map (replace_all ~sub:"restrict " ~by:"")
  |> String.concat "\n"

let make_buf n =
  let b =
    Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (max 1 n)
  in
  Bigarray.Array1.fill b 0.0;
  b

let load ~mode ~pattern_key ~family ~kname ~nargs ~int_return ~sizes source =
  let source, cflags =
    match mode with
    | Vec -> (source, Native.default_cflags)
    | Novec ->
        ( strip_vector_hints source,
          Native.default_cflags @ [ "-fno-tree-vectorize" ] )
  in
  let src = source ^ wrapper ~kname ~nargs ~int_return in
  (* Family tag folded by value into the key: two families compiled for
     the same pattern must not share a cache slot even if their sources
     ever collided. FNV over the tag keeps the key run-stable. *)
  let key =
    String.fold_left
      (fun h c -> (h * 31) + Char.code c)
      (pattern_key land max_int)
      family
    land max_int
  in
  match Native.load ~cflags ~key ~entry:"sympiler_entry" src with
  | None -> None
  | Some nk ->
      let slot i =
        if i < Array.length sizes && sizes.(i) > 0 then make_buf sizes.(i)
        else Native.dummy
      in
      Some { nk; b0 = slot 0; b1 = slot 1; b2 = slot 2; b3 = slot 3 }

let call e = Native.call e.nk e.b0 e.b1 e.b2 e.b3

(* One length check up front, then unsafe element ops: the loops stay
   allocation-free and can never run past either side's storage. *)
let blit_in (src : float array) (dst : buf) =
  if Array.length src > Bigarray.Array1.dim dst then
    invalid_arg "Native_engine.blit_in: source longer than buffer";
  for i = 0 to Array.length src - 1 do
    Bigarray.Array1.unsafe_set dst i (Array.unsafe_get src i)
  done

let blit_out (src : buf) (dst : float array) =
  if Array.length dst > Bigarray.Array1.dim src then
    invalid_arg "Native_engine.blit_out: destination longer than buffer";
  for i = 0 to Array.length dst - 1 do
    Array.unsafe_set dst i (Bigarray.Array1.unsafe_get src i)
  done

let fill0 (b : buf) = Bigarray.Array1.fill b 0.0

(* Bounds-checked on purpose: [scatter] writes caller-controlled sparse
   indices, and an out-of-range index must raise like the OCaml executor
   would, not scribble past the kernel's buffer. The loop lives here so
   the floats never cross a module boundary (which would box them). *)
let scatter (b : buf) (idx : int array) (v : float array) =
  for t = 0 to Array.length idx - 1 do
    Bigarray.Array1.set b idx.(t) (Array.unsafe_get v t)
  done

let fill0_at (b : buf) (idx : int array) =
  for t = 0 to Array.length idx - 1 do
    Bigarray.Array1.set b idx.(t) 0.0
  done

let gather (src : buf) (idx : int array) (dst : float array) =
  for t = 0 to Array.length idx - 1 do
    let i = idx.(t) in
    dst.(i) <- Bigarray.Array1.get src i
  done
