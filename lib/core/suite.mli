open Sympiler_sparse

(** The benchmark suite: Table 2's eleven problems, prepared the way the
    paper's libraries see them — grid/mesh problems pre-permuted with
    AMD + etree postorder (the fill-reducing ordering of the libraries'
    default configurations), structural generators kept in their natural
    ordering. The same prepared matrix is given to every implementation. *)

type prepared = {
  id : int;
  name : string;
  descr : string;
  ordering : string;  (** "natural" or "amd+postorder" *)
  a_full : Csc.t;  (** full symmetric matrix, prepared ordering *)
  a_lower : Csc.t;  (** lower-triangular part (factorization input) *)
}

val fill_reducing_postorder : ordering:(Csc.t -> Perm.t) -> Csc.t -> Perm.t
(** A fill-reducing ordering composed with the etree postorder of the
    permuted matrix (postordering relabels along elimination dependences —
    keeps supernodes contiguous without changing fill). *)

val min_degree_postorder : Csc.t -> Perm.t
(** {!fill_reducing_postorder} over greedy exact minimum degree. *)

val amd_postorder : Csc.t -> Perm.t
(** {!fill_reducing_postorder} over {!Sympiler_sparse.Ordering.amd} — the
    suite's default preparation for mesh/grid problems. *)

val prepare : Generators.problem -> prepared
(** Force and prepare one generator problem. *)

val problem : int -> prepared
(** Cached lookup by Table 2 ID (1..11); the expensive ordering runs once
    per process. *)

val all : unit -> prepared list

val rhs_for : prepared -> Vector.sparse
(** The paper's RHS setting for triangular solve: the pattern of a
    mid-matrix column of lower(A) (fill below 5%, "close to the sparsity
    of the columns of a sparse matrix", §4.2). *)
