open Sympiler_sparse
open Sympiler_prof

(* Shared compile-time machinery of the facade and the pipeline layer:
   ordering resolution and the baked gather maps, symbolic-phase timing,
   and the plan-lifecycle metrics. Everything here used to live inside
   sympiler.ml; the pipeline compiles DAGs of facade stages, so the
   machinery is factored out where both can reach it without a cycle. *)

module Trace = Sympiler_trace.Trace
module Metrics = Sympiler_metrics.Metrics

let native_mode : Options.engine -> Native_engine.mode option = function
  | `Ocaml -> None
  | `Native -> Some Native_engine.Vec
  | `Native_novec -> Some Native_engine.Novec

(* The four §3.3 factor kernels share one native shape: [int]-returning C
   from [Codegen_static] whose non-negative return is the failing pivot
   index (re-raised per family), input values in b0, factor storage after. *)
let static_native_exec mode ~family ~kname ~(pattern : Csc.t) ~sizes source =
  Native_engine.load ~mode ~pattern_key:(Csc.pattern_hash pattern) ~family
    ~kname ~nargs:(Array.length sizes) ~int_return:true ~sizes source

(* Wall-clock timing for the [symbolic_seconds] report fields, also fed to
   the profiling layer's "symbolic" scope (reentrant, so the inspectors'
   own "symbolic" spans nest without double counting). The monotonic clock
   keeps the report immune to NTP slews. *)
let time_symbolic f =
  let t0 = Prof.now_seconds () in
  let r = Prof.time "symbolic" f in
  (r, Prof.now_seconds () -. t0)

(* ------------------------ Plan-lifecycle metrics ------------------------ *)

(* Latency distributions for the two halves of the compile-once /
   execute-many economics: what one symbolic compile costs, and what one
   steady-state numeric call costs, labeled by the dimensions a serving
   process wants to slice on. Registration happens on compile/plan paths
   (it locks and allocates); the handles live in plan records so the
   per-call hot path is a guarded [observe]. *)

let observe_compile ~family ~ordering seconds =
  if Metrics.enabled () then
    Metrics.observe
      (Metrics.histogram "sympiler_compile_seconds"
         ~help:"Symbolic compile latency (ordering + inspection + codegen)"
         ~labels:[ ("family", family); ("ordering", ordering) ])
      seconds

(* The label reports the engine that will actually execute — a native
   request that degraded to the OCaml executor (no C compiler) says so. *)
let engine_label (native : Native_engine.exec option) (engine : Options.engine)
    =
  match (native, engine) with
  | Some _, `Native -> "native"
  | Some _, `Native_novec -> "native-novec"
  | _ -> "ocaml"

let execute_hist ~family ~op ~engine ~ordering =
  Metrics.histogram "sympiler_execute_seconds"
    ~help:"Numeric execution latency per call (factor_ip / solve_ip)"
    ~labels:
      [
        ("engine", engine);
        ("family", family);
        ("op", op);
        ("ordering", ordering);
      ]

(* Fingerprint encoders, re-exported so the facade's include keeps the
   historical spellings in scope. *)
let fp_option = Options.fp_option
let fp_threshold = Options.fp_threshold
let fp_ordering = Options.fp_ordering
let append_fp_ordering = Options.append_fp_ordering
let ordering_name = Options.ordering_name

(* ----------------------- Fill-reducing orderings ----------------------- *)

(* Ordering is a symbolic-stage decision: the permutation is computed once
   at compile time, the symbolic analysis runs on P A P^T, and the plan
   bakes P in — steady-state executions only gather values through a
   precomputed map, so ordered plans stay allocation-free and produce
   results bitwise-identical to manually pre-permuting the input. *)

type applied_ordering = {
  o_perm : Perm.t option;  (* None = natural (identity, no gather) *)
  o_name : string;  (* "natural" | "rcm" | "amd" | "min-degree" | "given" *)
  o_map : int array;
      (* gather map: permuted entry [q] reads the natural input's
         [values.(o_map.(q))]; [||] when natural *)
}

let natural_ordering = { o_perm = None; o_name = "natural"; o_map = [||] }

(* Compute the requested permutation ([`Natural] is handled by callers
   before getting here; [sym] is forced only by the graph algorithms). *)
let resolve_ordering ~who (o : Options.ordering) (sym : Csc.t lazy_t) (n : int)
    : Perm.t =
  Trace.with_span "ordering"
    ~attrs:[ ("n", Trace.Int n); ("algorithm", Trace.Str (ordering_name o)) ]
  @@ fun () ->
  match o with
  | `Natural -> Perm.identity n
  | `Rcm -> Ordering.rcm (Lazy.force sym)
  | `Amd -> Ordering.amd (Lazy.force sym)
  | `Min_degree -> Ordering.min_degree (Lazy.force sym)
  | `Given p ->
      if Array.length p <> n then
        invalid_arg (who ^ ": `Given permutation length does not match n");
      if not (Perm.is_valid p) then
        invalid_arg (who ^ ": `Given is not a valid permutation of [0, n)");
      Array.copy p

(* Allocation-free gather of natural-order input values into the permuted
   scratch a plan owns. *)
let gather_values ~who (map : int array) (src : float array) (dst : Csc.t) =
  if Array.length src <> Array.length map then
    invalid_arg (who ^ ": input nnz does not match the compiled pattern");
  let dv = dst.Csc.values in
  for q = 0 to Array.length dv - 1 do
    dv.(q) <- src.(map.(q))
  done

(* The permuted-input scratch of an ordered plan: shares the compiled
   pattern's structure arrays, owns its values. *)
let ordering_scratch (ord : applied_ordering) (pattern : Csc.t) : Csc.t option =
  match ord.o_perm with
  | None -> None
  | Some _ -> Some { pattern with Csc.values = Array.make (Csc.nnz pattern) 0.0 }

(* One-shot (allocating) version of the same gather, for the [factor]
   convenience entry points. *)
let ordered_input ~who (ord : applied_ordering) (pattern : Csc.t) (a : Csc.t) :
    Csc.t =
  match ord.o_perm with
  | None -> a
  | Some _ ->
      let s = { pattern with Csc.values = Array.make (Csc.nnz pattern) 0.0 } in
      gather_values ~who ord.o_map a.Csc.values s;
      s

(* Shared ordered-compile preamble for the symmetric families whose
   compiled pattern is lower(A): resolve P on the symmetrized graph and
   permute the lower pattern. *)
let ordered_lower ~who (ordering : Options.ordering) (a_lower : Csc.t) :
    Csc.t * applied_ordering =
  match ordering with
  | `Natural -> (a_lower, natural_ordering)
  | o ->
      let p =
        resolve_ordering ~who o
          (lazy (Csc.symmetrize_from_lower a_lower))
          a_lower.Csc.ncols
      in
      let pl, map = Perm.permute_lower p a_lower in
      (pl, { o_perm = Some p; o_name = ordering_name o; o_map = map })

(* Same for the square-pattern families (LU, ILU(0)): the ordering graph
   is the symmetrized pattern A + A^T. *)
let ordered_square ~who (ordering : Options.ordering) (a : Csc.t) :
    Csc.t * applied_ordering =
  match ordering with
  | `Natural -> (a, natural_ordering)
  | o ->
      let p =
        resolve_ordering ~who o
          (lazy (Csc.add a (Csc.transpose a)))
          a.Csc.ncols
      in
      let pa, map = Perm.permute_pattern p a in
      (pa, { o_perm = Some p; o_name = ordering_name o; o_map = map })
