open Sympiler_sparse
open Sympiler_prof
module Metrics = Sympiler_metrics.Metrics

(* Serving metrics: all caches share one labeled family, since per-cache
   identity is not meaningful across plan lifetimes. *)
let m_hits = Metrics.counter "sympiler_plan_cache_hits" ~help:"Plan-cache lookups served"

let m_misses =
  Metrics.counter "sympiler_plan_cache_misses" ~help:"Plan-cache lookups that compiled"

let m_evictions =
  Metrics.counter "sympiler_plan_cache_evictions" ~help:"LRU entries evicted"

(* Pattern-keyed compilation cache (LRU). Sympiler's economics rest on the
   compile-once / execute-many regime: the symbolic phase is the expensive
   part (Figure 8), so a caller that meets the same sparsity structure
   twice should never pay it twice. The cache keys compiled handles by the
   *structure* of the input — [Csc.pattern_hash] over
   (nrows, ncols, colptr, rowind) — plus an [extra] integer fingerprint for
   anything else that shaped compilation (variant, thresholds, RHS
   pattern). Values never participate: a hit is returned for any numeric
   values sharing the pattern, which is exactly the contract of the
   compiled handles themselves.

   Eviction is least-recently-used over a fixed capacity; a logical clock
   bumped on every lookup orders the entries. Capacities are small (a
   handful of distinct patterns per application is the common case), so
   lookups scan the entry list: the scan compares 63-bit hashes only,
   falling back to the full structural comparison on a hash match. *)

type 'a entry = {
  hash : int;
  pattern : Csc.t; (* structural key (values ignored) *)
  extra : int array; (* options / RHS fingerprint *)
  value : 'a;
  mutable last_use : int;
}

type 'a t = {
  capacity : int;
  mutable entries : 'a entry list; (* unordered; |entries| <= capacity *)
  mutable tick : int; (* logical clock for LRU ordering *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { hits : int; misses : int; evictions : int; length : int }

let create ?(capacity = 32) () =
  if capacity < 1 then invalid_arg "Plan_cache.create: capacity must be >= 1";
  { capacity; entries = []; tick = 0; hits = 0; misses = 0; evictions = 0 }

let length t = List.length t.entries
let clear t = t.entries <- []

let stats (c : 'a t) : stats =
  { hits = c.hits; misses = c.misses; evictions = c.evictions; length = length c }

let extra_equal (a : int array) (b : int array) =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  for i = 0 to Array.length a - 1 do
    if a.(i) <> b.(i) then ok := false
  done;
  !ok

let find_entry t ~hash ~pattern ~extra =
  List.find_opt
    (fun e ->
      e.hash = hash
      && extra_equal e.extra extra
      && Csc.pattern_equal e.pattern pattern)
    t.entries

let evict_lru t =
  match t.entries with
  | [] -> ()
  | e0 :: rest ->
      let oldest =
        List.fold_left
          (fun acc e -> if e.last_use < acc.last_use then e else acc)
          e0 rest
      in
      t.entries <- List.filter (fun e -> e != oldest) t.entries;
      t.evictions <- t.evictions + 1;
      Metrics.inc m_evictions 1

(* [extra] is hashed together with the pattern so differently-configured
   compilations of the same structure coexist as distinct entries. *)
let find_or_compile t ~pattern ?(extra = [||]) compile =
  let hash = Csc.hash_fold_int_array (Csc.pattern_hash pattern) extra in
  t.tick <- t.tick + 1;
  match find_entry t ~hash ~pattern ~extra with
  | Some e ->
      e.last_use <- t.tick;
      t.hits <- t.hits + 1;
      Metrics.inc m_hits 1;
      (if Prof.enabled () then
         let c = Prof.cell () in
         c.Prof.cache_hits <- c.Prof.cache_hits + 1);
      (* Tag the caller's enclosing span (e.g. "compile_cached.cholesky")
         so traces show which compilations were free. *)
      Sympiler_trace.Trace.set_attr "cache" (Sympiler_trace.Trace.Str "hit");
      e.value
  | None ->
      t.misses <- t.misses + 1;
      Metrics.inc m_misses 1;
      (if Prof.enabled () then
         let c = Prof.cell () in
         c.Prof.cache_misses <- c.Prof.cache_misses + 1);
      Sympiler_trace.Trace.set_attr "cache" (Sympiler_trace.Trace.Str "miss");
      let value = compile () in
      if List.length t.entries >= t.capacity then evict_lru t;
      t.entries <- { hash; pattern; extra; value; last_use = t.tick } :: t.entries;
      value
