open Sympiler_sparse

(** Pattern-keyed compilation cache (LRU): compiled handles keyed by the
    {e structure} of the input — {!Csc.pattern_hash} over
    [(nrows, ncols, colptr, rowind)] — plus an [extra] integer fingerprint
    for anything else that shaped compilation (variant, thresholds, RHS
    pattern). Values never participate in the key, matching the contract
    of the compiled handles themselves. A cache hit skips the compile
    function — and with it the entire symbolic phase — entirely. *)

type 'a t

type stats = { hits : int; misses : int; evictions : int; length : int }

val create : ?capacity:int -> unit -> 'a t
(** [capacity] (default 32) bounds the number of cached handles; the
    least-recently-used entry is evicted when a new compile would exceed
    it. Raises [Invalid_argument] when [capacity < 1]. *)

val find_or_compile : 'a t -> pattern:Csc.t -> ?extra:int array -> (unit -> 'a) -> 'a
(** [find_or_compile t ~pattern ~extra compile] returns the cached handle
    (physically equal to what an earlier call produced) when [pattern]'s
    structure and [extra] match an entry; otherwise runs [compile ()],
    caches the result, and returns it. Hits and misses bump both the
    cache's own {!stats} and the global profiling counters
    ([cache_hits] / [cache_misses]) when profiling is enabled. *)

val stats : 'a t -> stats
val length : 'a t -> int
val clear : 'a t -> unit
