open Sympiler_sparse
open Sympiler_kernels

(** Public facade: Sympiler as the paper presents it. [compile] runs all
    symbolic analysis (and can emit specialized C) once for a fixed
    sparsity structure; the returned handles expose numeric routines that
    contain no symbolic work, plus the time the symbolic phase took
    (the quantity of Figures 8 and 9). *)

module Suite = Suite
(** The prepared Table 2 benchmark suite. *)

module Codegen_supernodal = Codegen_supernodal
(** C emission for the supernodal Cholesky executor. *)

module Plan_cache = Plan_cache
(** Pattern-keyed LRU cache of compiled handles (see
    {!Trisolve.compile_cached} and {!Cholesky.compile_cached}). *)

module Trace = Sympiler_trace.Trace
(** Structured trace spans over the whole compile/execute pipeline
    (re-exported for convenience): enable with [Trace.enable ()], export
    with [Trace.to_chrome_json] / [Trace.to_folded]. *)

(** Sparse triangular solve [L x = b] with a sparse right-hand side. *)
module Trisolve : sig
  type t = {
    l : Csc.t;
    b_pattern : int array;
    compiled : Trisolve_sympiler.compiled;
    symbolic_seconds : float;  (** one-time inspection + planning cost *)
    reach : int array;  (** the reach-set (VI-Prune inspection set) *)
    flops : float;  (** useful flops of the pruned numeric solve *)
    decisions : Trace.decision list;
        (** transformation decision log: VI-Prune (pruned-iteration ratio)
            and VS-Block (fired/declined with the measured average reached
            supernode width) *)
  }

  val compile : ?vs_block_threshold:float -> ?max_width:int -> Csc.t -> Vector.sparse -> t
  (** Symbolic inspection and inspector-guided planning for the patterns of
      [l] and [b]; numeric values are free to change afterwards. Raises
      [Invalid_argument] when [l] is not lower triangular. *)

  val compile_cached :
    ?cache:t Plan_cache.t ->
    ?vs_block_threshold:float ->
    ?max_width:int ->
    Csc.t ->
    Vector.sparse ->
    t
  (** [compile] through a pattern-keyed cache: a hit (same structure of
      [l], same RHS pattern, same options) returns the earlier handle
      physically equal, with no symbolic work. Uses a module-wide default
      cache unless [cache] is given. *)

  val cache_stats : unit -> Plan_cache.stats
  (** Hit/miss/length counters of the default cache. *)

  val cache_clear : unit -> unit

  val solve : t -> Vector.sparse -> float array
  (** Numeric-only solve; [b] must have the compiled pattern. *)

  val solve_ip : t -> float array -> unit
  (** In-place: [x] holds b on entry, the solution on exit. *)

  type plan = { handle : t; p : Trisolve_sympiler.plan }
  (** Reusable numeric workspaces for the compile-once / execute-many
      regime. *)

  val plan : t -> plan

  val solve_plan : plan -> Vector.sparse -> float array
  (** Solve into the plan's buffer (valid until the next call on the same
      plan); zero allocation in steady state. *)

  val c_code : t -> string
  (** Specialized C implementing the same solve (VS-Block + VI-Prune +
      low-level transformations), from the {!Sympiler_ir.Pipeline}. *)
end

(** Sparse Cholesky factorization [A = L L^T]. *)
module Cholesky : sig
  type variant = Supernodal | Simplicial

  type t = {
    variant : variant;  (** what [compile] actually chose *)
    supernodal : Cholesky_supernodal.Sympiler.compiled option;
    simplicial : Cholesky_ref.Decoupled.compiled option;
    pattern : Csc.t;
    symbolic_seconds : float;
    flops : float;
    nnz_l : int;
    decisions : Trace.decision list;
        (** transformation decision log: VI-Prune (pruned-iteration ratio
            vs the dense update count) and VS-Block (fired/declined with
            the measured average supernode width vs [vs_block_threshold];
            the width is [nan] when [Simplicial] was forced) *)
  }

  val compile :
    ?variant:variant ->
    ?specialized:bool ->
    ?vs_block_threshold:float ->
    ?max_width:int ->
    Csc.t ->
    t
  (** Compile for the pattern of lower-triangular [a_lower]. The supernodal
      (VS-Block) variant is requested by default but applied only when the
      average supernode width reaches [vs_block_threshold] (default 2.0) —
      the paper's hand-tuned profitability threshold (§4.2); below it
      compilation falls back to the simplicial (VI-Prune-only) code, as
      Sympiler does for matrices 3,4,5,7. Raises [Invalid_argument] on
      non-lower-triangular input. *)

  val compile_cached :
    ?cache:t Plan_cache.t ->
    ?variant:variant ->
    ?specialized:bool ->
    ?vs_block_threshold:float ->
    ?max_width:int ->
    Csc.t ->
    t
  (** [compile] through a pattern-keyed cache: a hit (same structure of
      [a_lower], same options) returns the earlier handle physically
      equal, skipping the symbolic phase entirely. Uses a module-wide
      default cache unless [cache] is given. *)

  val cache_stats : unit -> Plan_cache.stats
  (** Hit/miss/length counters of the default cache. *)

  val cache_clear : unit -> unit

  val factor : t -> Csc.t -> Csc.t
  (** Numeric-only factorization for any values sharing the compiled
      pattern. Allocates a fresh factor per call; use a {!plan} for
      allocation-free steady state. *)

  type plan = {
    handle : t;
    sup : Cholesky_supernodal.Sympiler.plan option;
    simp : Cholesky_ref.Decoupled.plan option;
  }
  (** Reusable numeric workspaces (factor storage + scratch) for the
      compile-once / execute-many regime; which side is populated follows
      the handle's [variant]. *)

  val plan : t -> plan

  val refactor_ip : plan -> Csc.t -> unit
  (** Numeric factorization into the plan's storage for any values sharing
      the compiled pattern; zero allocation in steady state. Read the
      result through {!plan_factor}. *)

  val plan_factor : plan -> Csc.t
  (** The plan's factor view, refreshed in place by each {!refactor_ip}
      (valid until the next call on the same plan). *)

  val solve : t -> Csc.t -> float array -> float array
  (** [A x = b]: numeric factorization + two triangular solves. *)

  val c_code : t -> string
  (** Specialized C: the supernodal driver with its baked-in schedule, or
      the fully specialized simplicial kernel from the AST pipeline. *)
end

(** Symbolic "explain" reports: what the inspectors measured and what the
    transformations decided, for one compiled handle. Diagnostic path —
    recomputes symbolic quantities freely; not for steady-state loops. *)
module Explain : sig
  type histogram = (string * int) list
  (** Power-of-two buckets, label to count: [1], [2], [3-4], [5-8], … *)

  type report = {
    kernel : string;  (** "cholesky" or "trisolve" *)
    n : int;
    nnz_a : int;
    nnz_l : int;
    fill_ratio : float;  (** nnz(L) / nnz(A); 0 for empty patterns *)
    etree_height : int;
    col_count_hist : histogram;  (** nnz per column of L *)
    supernode_width_hist : histogram;
    avg_supernode_width : float;
    level_depth : int;  (** level sets of L's dependence graph *)
    max_level_width : int;
    decisions : Trace.decision list;  (** the handle's decision log *)
    predicted_flops : float;  (** symbolic flop model of the handle *)
    executed_flops : int;
        (** current {!Sympiler_prof.Prof.counters} flops snapshot — run the
            numeric phase under profiling before reading; 0 otherwise *)
    symbolic_seconds : float;
  }

  val cholesky : Cholesky.t -> report
  val trisolve : Trisolve.t -> report

  val to_json : report -> string
  val to_table : report -> string
  (** Aligned two-column text rendering (label column sized to fit). *)
end

val explain : Cholesky.t -> Explain.report
(** Shorthand for {!Explain.cholesky}. *)
