open Sympiler_sparse
open Sympiler_kernels

(** Public facade: Sympiler as the paper presents it. [compile] runs all
    symbolic analysis (and can emit specialized C) once for a fixed
    sparsity structure; the returned handles expose numeric routines that
    contain no symbolic work, plus the time the symbolic phase took
    (the quantity of Figures 8 and 9).

    Every kernel family conforms to the one {!KERNEL} signature, so the
    compile → plan → execute-in-place lifecycle is identical across
    triangular solve, Cholesky, LDL^T, LU, IC(0), and ILU(0): one
    [compile ?cache ?opts] per family, every knob riding in the shared
    {!Options.t} record. Whole DAGs of stages compile through one shared
    symbolic analysis via {!Pipeline}. *)

module Suite = Suite
(** The prepared Table 2 benchmark suite. *)

module Codegen_supernodal = Codegen_supernodal
(** C emission for the supernodal Cholesky executor. *)

module Plan_cache = Plan_cache
(** Pattern-keyed LRU cache of compiled handles (see the [?cache] argument
    of every family's [compile]). *)

module Options = Options
(** The shared compile-option record: every family's [compile] (and
    {!Pipeline.compile}) takes one [?opts:Options.t], replacing the
    pre-unification [compile]/[compile_ext]/[compile_cached]/
    [compile_cached_ext] quartet. Families consume the fields they
    understand and ignore the rest.

    Migration: [compile_cached ?max_width ?ordering p] becomes
    [compile ~opts:(Options.make ?max_width ?ordering ~cache:true ()) p];
    [Cholesky.compile_ext ~variant:Simplicial] becomes
    [compile ~opts:(Options.make ~simplicial:true ()) p];
    [Trisolve.compile_ext ~vs_block_threshold] becomes
    [compile ~opts:(Options.make ~vs_block_threshold ()) (l, b)]. *)

module Pipeline = Pipeline
(** Solver-pipeline fusion: compile a whole DAG of kernel stages through
    one shared symbolic analysis into a single fused plan — one analysis,
    one workspace, zero intermediate vectors, stage boundaries merged
    where the schedule allows. *)

module Trace = Sympiler_trace.Trace
(** Structured trace spans over the whole compile/execute pipeline
    (re-exported for convenience): enable with [Trace.enable ()], export
    with [Trace.to_chrome_json] / [Trace.to_folded]. *)

module Metrics = Sympiler_metrics.Metrics
(** Serving-grade metrics (re-exported): a domain-safe labeled registry of
    counters, gauges, and latency histograms, populated by the plan
    lifecycle ([sympiler_compile_seconds], [sympiler_execute_seconds]),
    the plan cache, the native engine, and the domain pool. Enable with
    [Metrics.enable ()] or [SYMPILER_METRICS=1]; export with
    [Metrics.to_openmetrics] / [to_json] / [to_table]. See DESIGN.md for
    the prof (phase timers) / trace (spans) / metrics (distributions)
    division of labor. *)

module Runtime = Sympiler_runtime
(** The persistent domain-pool parallel runtime ({!Runtime.Pool}) behind
    every [?ndomains] argument, re-exported for sizing control
    ([Pool.default_size], the [SYMPILER_NDOMAINS] override) and shutdown. *)

module Native = Sympiler_native.Native
(** The native kernel engine behind every [?engine:`Native] argument
    (re-exported): compiles emitted C to a shared object with the system C
    compiler and loads it through [dlopen]. See {!Native.stats},
    {!Native.cc}, and the [SYMPILER_CC] / [SYMPILER_NATIVE_CACHE]
    overrides. *)

module Native_engine = Native_engine
(** Facade-side glue for the native engine (uniform [sympiler_entry] ABI
    wrapper, vectorize-hint stripping, plan-owned argument buffers). *)

type engine = [ `Ocaml | `Native | `Native_novec ]
(** Which executor a plan runs its numeric phase on.

    - [`Ocaml] (the default): the interpreted-by-OCaml executors, exactly
      as before.
    - [`Native]: the family's emitted C — the same code [c_code] returns —
      compiled with the system C compiler at plan time, loaded via
      [dlopen], and dispatched through a fixed no-allocation trampoline.
      Compiled objects are cached on disk keyed by pattern, source, flags,
      and compiler identity, so steady state never re-invokes the
      compiler. When no C compiler is available the plan silently falls
      back to [`Ocaml] (one-time note on stderr; counted in
      {!Native.stats}).
    - [`Native_novec]: the ablation arm — the same C with the vectorize
      annotations ([#pragma GCC ivdep], [restrict]) stripped and
      auto-vectorization disabled, isolating what the annotations buy. *)

type ordering = [ `Natural | `Rcm | `Amd | `Min_degree | `Given of Perm.t ]
(** The fill-reducing ordering request of a compilation: ordering is a
    symbolic-stage decision, so the permutation is computed once at compile
    time, the symbolic analysis runs on [P A P^T], and the resulting plans
    bake [P] in — steady-state executions take natural-order inputs,
    gather them through a precomputed map (still zero-allocation), and the
    results are bitwise-identical to compiling a manually pre-permuted
    input. [`Given p] supplies an explicit new->old permutation (validated
    with {!Sympiler_sparse.Perm.is_valid}; [Invalid_argument] otherwise). *)

type applied_ordering = {
  o_perm : Perm.t option;  (** [None] = natural order (no gather) *)
  o_name : string;
      (** "natural", "rcm", "amd", "min-degree", or "given" *)
  o_map : int array;
      (** gather map: permuted-pattern entry [q] reads the natural input's
          [values.(o_map.(q))]; [[||]] when natural *)
}
(** What an ordered compilation recorded into its handle. *)

(** The uniform kernel lifecycle every family implements.

    - [compile] runs the symbolic phase for one sparsity [pattern]. Every
      knob rides in [?opts] (the shared {!Options.t}): [opts.fill] reuses
      a caller-provided fill analysis (families that do not consume one
      ignore it — the cost of a uniform signature); [opts.max_width] caps
      supernode width where supernodes exist; [opts.ordering] selects the
      fill-reducing ordering applied before the analysis (see
      {!type:ordering} — default [`Natural]). Passing [?cache] (or setting
      [opts.cache], which uses the family's module-wide default cache)
      routes the compile through a pattern-keyed {!Plan_cache}; the option
      fingerprint is part of the cache key.
    - [plan] allocates the numeric workspaces once; [?ndomains] requests
      the level-parallel executor on the persistent domain pool where one
      exists (Trisolve, supernodal Cholesky) and is ignored elsewhere;
      [?engine] selects the executor (see {!type:engine}) — a native
      request takes precedence over [?ndomains], and falls back to the
      OCaml executor when no C compiler is available.
    - [execute_ip] is the steady-state numeric phase: no symbolic work,
      zero allocation, results written into plan-owned storage (the
      returned [output] is a view valid until the next call on the same
      plan). Bitwise-identical results for any [ndomains].
    - [c_code] emits the specialized C executor with every inspection set
      baked in as static arrays. *)
module type KERNEL = sig
  type pattern
  (** What the symbolic phase inspects (structure only). *)

  type t
  (** Compiled handle: inspection sets + chosen strategy. *)

  type plan
  (** Reusable numeric workspaces for compile-once / execute-many. *)

  type input
  (** Numeric input of one execution (values free to change per call). *)

  type output
  (** Result view over plan-owned storage. *)

  val compile : ?cache:t Plan_cache.t -> ?opts:Options.t -> pattern -> t

  val cache_stats : unit -> Plan_cache.stats
  val cache_clear : unit -> unit

  val symbolic_seconds : t -> float
  (** One-time inspection + planning cost of this handle. *)

  val plan : ?ndomains:int -> ?engine:engine -> t -> plan
  val execute_ip : plan -> input -> output

  val plan_latency : plan -> Metrics.histogram_snapshot
  (** Snapshot of the plan's per-call execution-latency histogram
      ([sympiler_execute_seconds], shared across plans with the same
      family × op × engine × ordering labels): exact count/sum/max,
    bucket-resolution p50/p90/p99. All zeros until {!Metrics.enable}. *)

  val c_code : t -> string
end

(** Sparse triangular solve [L x = b] with a sparse right-hand side. *)
module Trisolve : sig
  type pattern = Csc.t * Vector.sparse
  (** The pattern of [L] and the RHS pattern (values ignored). *)

  type t = {
    l : Csc.t;  (** the compiled (ordered handles: permuted) L pattern *)
    b_pattern : int array;  (** compiled RHS pattern (permuted likewise) *)
    compiled : Trisolve_sympiler.compiled;
    symbolic_seconds : float;  (** one-time inspection + planning cost *)
    reach : int array;  (** the reach-set (VI-Prune inspection set) *)
    flops : float;  (** useful flops of the pruned numeric solve *)
    decisions : Trace.decision list;
        (** transformation decision log: VI-Prune (pruned-iteration ratio)
            and VS-Block (fired/declined with the measured average reached
            supernode width) *)
    ord : applied_ordering;
    ord_b_map : int array;
        (** permuted-b entry [t] reads natural [b.values.(ord_b_map.(t))] *)
  }

  val compile : ?cache:t Plan_cache.t -> ?opts:Options.t -> pattern -> t
  (** Symbolic inspection and inspector-guided planning for the patterns
      of [l] and [b]; numeric values are free to change afterwards.
      [opts.fill] is ignored (the solve inspects reach-sets, not fill);
      [opts.vs_block_threshold] moves the VS-Block profitability bar.
      [opts.ordering] relabels the system to [P L P^T (P x) = P b] at
      compile time; the numeric entry points keep taking natural-order [b]
      and returning natural-order [x]. The ordering must keep [P L P^T]
      lower triangular (a dependence-respecting relabeling such as an
      etree postorder via [`Given]); raises [Invalid_argument] otherwise,
      or when [l] is not lower triangular. [?cache] (or [opts.cache],
      which uses the module-wide default cache) routes the compile through
      a pattern-keyed {!Plan_cache}: a hit (same structure of [l], same
      RHS pattern, same option fingerprint) returns the earlier handle
      physically equal, with no symbolic work. *)

  val compile_ext :
    ?vs_block_threshold:float ->
    ?max_width:int ->
    ?ordering:ordering ->
    Csc.t ->
    Vector.sparse ->
    t
  [@@deprecated "use compile ~opts:(Options.make ?vs_block_threshold ())"]
  (** @deprecated Pre-unification spelling; thin alias of {!compile}. *)

  val compile_cached :
    ?cache:t Plan_cache.t ->
    ?fill:Sympiler_symbolic.Fill_pattern.t ->
    ?max_width:int ->
    ?ordering:ordering ->
    pattern ->
    t
  [@@deprecated "use compile ?cache (or opts.cache = true)"]
  (** @deprecated Pre-unification spelling; thin alias of {!compile} with
      caching forced on. *)

  val compile_cached_ext :
    ?cache:t Plan_cache.t ->
    ?vs_block_threshold:float ->
    ?max_width:int ->
    ?ordering:ordering ->
    Csc.t ->
    Vector.sparse ->
    t
  [@@deprecated "use compile ?cache ~opts:(Options.make ...)"]
  (** @deprecated Pre-unification spelling; thin alias of {!compile}. *)

  val cache_stats : unit -> Plan_cache.stats
  (** Hit/miss/length counters of the default cache. *)

  val cache_clear : unit -> unit

  val symbolic_seconds : t -> float

  val solve : t -> Vector.sparse -> float array
  (** Numeric-only solve; [b] must have the compile-time pattern, in
      natural order even on ordered handles (permutation handled inside). *)

  val solve_ip : t -> float array -> unit
  (** In-place: [x] holds b on entry, the solution on exit (both in
      natural order). *)

  type plan = {
    handle : t;
    p : Trisolve_sympiler.plan;
    par : Trisolve_parallel.plan option;
        (** populated when [plan ~ndomains] requested the level-set
            executor *)
    ord_b : Vector.sparse option;
        (** ordered plans: the permuted-b scratch (fixed indices, values
            refreshed per execute) *)
    ord_x : float array option;  (** ordered plans: natural-order output *)
    native : Native_engine.exec option;
        (** populated when [plan ~engine:`Native]/[`Native_novec] loaded
            the compiled-C executor (b0 = Lx, b1 = x, b2 = tmp) *)
    m_exec : Metrics.histogram;
        (** the plan's [sympiler_execute_seconds] latency series *)
  }
  (** Reusable numeric workspaces for the compile-once / execute-many
      regime. *)

  type input = Vector.sparse
  type output = float array

  val plan : ?ndomains:int -> ?engine:engine -> t -> plan
  (** Without [ndomains]: the sequential reach-set executor. With
      [ndomains] (any value, including 1): the level-set executor on the
      persistent domain pool — levelization happens here, at plan time,
      and results are bitwise-identical across all [ndomains] (though the
      level schedule's operation order differs from the reach-set
      executor's). [ndomains] defaults the pool sizing rule to
      {!Runtime.Pool.default_size} semantics; see that module. [?engine]
      selects the executor ({!type:engine}); a loaded native kernel takes
      precedence over [ndomains]. *)

  val execute_ip : plan -> Vector.sparse -> float array
  (** Solve into the plan's buffer (valid until the next call on the same
      plan); zero allocation in steady state. *)

  val solve_plan : plan -> Vector.sparse -> float array
  [@@deprecated "use execute_ip"]
  (** @deprecated Alias of {!execute_ip} (pre-unification name). *)

  val plan_latency : plan -> Metrics.histogram_snapshot
  (** Per-call solve-latency distribution of this plan's metric series
      (see {!KERNEL.plan_latency}). *)

  val c_code : t -> string
  (** Specialized C implementing the same solve (VS-Block + VI-Prune +
      low-level transformations), from the {!Sympiler_ir.Pipeline}. *)
end

(** Sparse Cholesky factorization [A = L L^T]. *)
module Cholesky : sig
  type variant = Supernodal | Simplicial

  type t = {
    variant : variant;  (** what [compile] actually chose *)
    supernodal : Cholesky_supernodal.Sympiler.compiled option;
    simplicial : Cholesky_ref.Decoupled.compiled option;
    pattern : Csc.t;  (** the pattern compiled against (permuted if
                          ordered) *)
    natural_pattern : Csc.t;  (** the caller's lower(A) before ordering *)
    symbolic_seconds : float;
    flops : float;
    nnz_l : int;
    decisions : Trace.decision list;
        (** transformation decision log: the ordering stage (predicted
            fill ratio ordered-vs-natural, ordered handles only), VI-Prune
            (pruned-iteration ratio vs the dense update count), and
            VS-Block (fired/declined with the measured average supernode
            width vs [vs_block_threshold]; the width is [nan] when
            [Simplicial] was forced) *)
    ord : applied_ordering;
  }

  type pattern = Csc.t

  val compile : ?cache:t Plan_cache.t -> ?opts:Options.t -> pattern -> t
  (** Compile for the pattern of lower-triangular [a_lower]. Default
      strategy selection: the supernodal (VS-Block) variant when the
      average supernode width reaches the paper's hand-tuned 2.0 threshold
      (§4.2), the simplicial (VI-Prune-only) code below it — as Sympiler
      does for matrices 3,4,5,7. Every knob rides in [?opts]:
      [opts.simplicial] forces the simplicial variant,
      [opts.vs_block_threshold] moves the selection bar,
      [opts.specialized] toggles pattern-specialized codegen, [opts.fill]
      reuses a caller-provided fill analysis of the same (natural-order)
      pattern, [opts.ordering] runs the whole analysis on [P A P^T] (the
      numeric entry points keep taking natural-order values; the factor
      produced is that of the permuted matrix). [?cache] (or [opts.cache])
      routes the compile through a pattern-keyed {!Plan_cache}: a hit
      (same structure, same option fingerprint) returns the earlier
      handle physically equal, skipping the symbolic phase entirely.
      Raises [Invalid_argument] on non-lower-triangular input. *)

  val compile_ext :
    ?variant:variant ->
    ?specialized:bool ->
    ?vs_block_threshold:float ->
    ?fill:Sympiler_symbolic.Fill_pattern.t ->
    ?max_width:int ->
    ?ordering:ordering ->
    Csc.t ->
    t
  [@@deprecated
    "use compile ~opts:(Options.make ~simplicial:... ?vs_block_threshold ())"]
  (** @deprecated Pre-unification spelling; thin alias of {!compile}
      ([~variant:Simplicial] maps to [Options.make ~simplicial:true]). *)

  val compile_cached :
    ?cache:t Plan_cache.t ->
    ?fill:Sympiler_symbolic.Fill_pattern.t ->
    ?max_width:int ->
    ?ordering:ordering ->
    pattern ->
    t
  [@@deprecated "use compile ?cache (or opts.cache = true)"]
  (** @deprecated Pre-unification spelling; thin alias of {!compile} with
      caching forced on. *)

  val compile_cached_ext :
    ?cache:t Plan_cache.t ->
    ?variant:variant ->
    ?specialized:bool ->
    ?vs_block_threshold:float ->
    ?max_width:int ->
    ?ordering:ordering ->
    Csc.t ->
    t
  [@@deprecated "use compile ?cache ~opts:(Options.make ...)"]
  (** @deprecated Pre-unification spelling; thin alias of {!compile}. *)

  val cache_stats : unit -> Plan_cache.stats
  (** Hit/miss/length counters of the default cache. *)

  val cache_clear : unit -> unit

  val symbolic_seconds : t -> float

  val factor : t -> Csc.t -> Csc.t
  (** Numeric-only factorization for any values sharing the compile-time
      (natural-order) pattern; on an ordered handle the result is the
      factor of [P A P^T] — exactly what compiling a pre-permuted matrix
      yields. Allocates a fresh factor per call; use a {!plan} for
      allocation-free steady state. *)

  type updown
  (** Lazily-built rank-update state: the kernel plan (scatter workspace,
      rollback snapshot, memoized etree-path table, incremental-refactor
      inspectors) plus the ordered-gather buffers. *)

  type plan = {
    mutable handle : t;
    mutable sup : Cholesky_supernodal.Sympiler.plan option;
    mutable simp : Cholesky_ref.Decoupled.plan option;
    mutable par : Cholesky_parallel.plan option;
        (** populated when [plan ~ndomains] requested the level-parallel
            executor (supernodal handles only) *)
    mutable scratch : Csc.t option;
        (** ordered plans gather natural-order input values in here *)
    mutable native : Native_engine.exec option;
        (** populated when [plan ~engine:`Native]/[`Native_novec] loaded
            the compiled-C executor (b0 = Ax, b1 = Lx, b2 = simplicial
            accumulator) *)
    m_exec : Metrics.histogram;
        (** the plan's [sympiler_execute_seconds] latency series *)
    mutable ru : updown option;  (** lazy rank-update state *)
    mutable esc_map : int array option;
        (** after an {!update_ip} escalation: gather map from the original
            natural input nnz to the escalated pattern ([-1] = structural
            zero) *)
  }
  (** Reusable numeric workspaces (factor storage + scratch) for the
      compile-once / execute-many regime; which side is populated follows
      the handle's [variant] and the [ndomains] request. The engine fields
      are mutable solely for {!update_ip}'s escalation path, which
      recompiles the plan in place when an update needs entries the factor
      pattern lacks. *)

  type input = Csc.t
  type output = Csc.t

  val plan : ?ndomains:int -> ?engine:engine -> t -> plan
  (** Without [ndomains]: the sequential executor of the handle's variant.
      With [ndomains] on a supernodal handle: the level-parallel executor
      on the persistent domain pool (the supernode DAG is levelized here,
      at plan time); factors are bitwise-identical across all [ndomains].
      [ndomains] is ignored for simplicial handles (column code has no
      level schedule). [?engine] selects the executor ({!type:engine}); a
      loaded native kernel takes precedence over [ndomains]. *)

  val execute_ip : plan -> Csc.t -> Csc.t
  (** Numeric factorization into the plan's storage; returns the plan's
      factor view ({!plan_factor}), refreshed in place, valid until the
      next call on the same plan. Zero allocation in steady state. *)

  val refactor_ip : plan -> Csc.t -> unit
  [@@deprecated "use execute_ip (or ignore its returned view)"]
  (** @deprecated {!execute_ip} without the view (pre-unification name). *)

  val plan_latency : plan -> Metrics.histogram_snapshot
  (** Per-call refactorization-latency distribution of this plan's metric
      series (see {!KERNEL.plan_latency}). *)

  val plan_factor : plan -> Csc.t
  (** The plan's factor view, refreshed in place by each {!execute_ip}
      (valid until the next call on the same plan). *)

  val update_ip : plan -> ?sigma:float -> Vector.sparse -> unit
  (** In-place rank-1 update of the plan's factor: [L L^T] becomes
      [A + sigma w w^T] (default [sigma = 1.]) along the §3.3 etree path,
      without refactoring. [w] is in {e natural} order; ordered plans
      gather it through the inverse permutation into plan-owned buffers.
      Steady-state calls (memoized path, in-pattern update) allocate
      nothing.

      An update outside the factor pattern {e escalates}: the plan is
      recompiled in place over the augmented pattern
      (lower(L L^T) + the update clique, through the default cache) and
      factored — after it the plan still accepts inputs with the original
      natural pattern ([esc_map] supplies the structural zeros), but
      [ndomains]/[engine] requests are dropped back to the sequential
      OCaml executor.

      Raises [Invalid_argument] on malformed [w] (unsorted, duplicate or
      out-of-range indices — previously silent corruption), and
      [Rank_update.Not_positive_definite] on a rejected downdate, with
      the factor rolled back to its pre-call values. *)

  val downdate_ip : plan -> ?sigma:float -> Vector.sparse -> unit
  (** [update_ip ~sigma:(-. sigma)]: [A - sigma w w^T]. *)

  val refactor_cols_ip : plan -> Csc.t -> int
  (** Incremental refactorization: diff the input values against the plan's
      recorded baseline (the last full {!execute_ip}) and recompute only
      the factor rows reachable from the changed input columns (etree path
      closure). Returns the number of rows recomputed. Falls back to a
      full refactor (returning [n]) when no valid baseline exists — before
      any full refactor, or after a rank update (the factor then belongs
      to a different matrix). On simplicial plans the recomputed rows are
      bitwise what a full up-looking refactor produces; on supernodal
      plans agreement is to rounding (different operation order). *)

  val solve : t -> Csc.t -> float array -> float array
  (** [A x = b]: numeric factorization + two triangular solves. On an
      ordered handle the permuted system is solved and [x] returned in
      natural order. *)

  val c_code : t -> string
  (** Specialized C: the supernodal driver with its baked-in schedule, or
      the fully specialized simplicial kernel from the AST pipeline. *)
end

(** [A = L D L^T] factorization for symmetric indefinite but strongly
    regular matrices (§3.3); pass lower(A). *)
module Ldlt : sig
  type pattern = Csc.t

  type t = {
    compiled : Sympiler_kernels.Ldlt.compiled;
    pattern : Csc.t;  (** compiled (ordered handles: permuted) pattern *)
    symbolic_seconds : float;
    ord : applied_ordering;
  }

  type updown
  (** Lazily-built rank-update state (GGMS C1 recurrence). *)

  type plan = {
    handle : t;
    p : Sympiler_kernels.Ldlt.plan;
    scratch : Csc.t option;
        (** ordered plans gather natural-order input values in here *)
    native : Native_engine.exec option;
        (** populated when [plan ~engine:`Native]/[`Native_novec] loaded
            the compiled-C executor (b0 = Ax, b1 = Lx, b2 = D) *)
    m_exec : Metrics.histogram;
        (** the plan's [sympiler_execute_seconds] latency series *)
    mutable ru : updown option;  (** lazy rank-update state *)
  }

  type input = Csc.t
  type output = Sympiler_kernels.Ldlt.factors

  val compile : ?cache:t Plan_cache.t -> ?opts:Options.t -> pattern -> t
  (** Only [opts.ordering] and [opts.cache] are consumed (the up-looking
      kernel is column-wise; the other fields are ignored for {!KERNEL}
      uniformity). [opts.ordering] compiles for [P A P^T]; numeric entry
      points keep taking natural-order values and return the permuted
      system's factors. Raises [Invalid_argument] when the input is not
      lower triangular. *)

  val compile_cached :
    ?cache:t Plan_cache.t ->
    ?fill:Sympiler_symbolic.Fill_pattern.t ->
    ?max_width:int ->
    ?ordering:ordering ->
    pattern ->
    t
  [@@deprecated "use compile ?cache (or opts.cache = true)"]
  (** @deprecated Pre-unification spelling; thin alias of {!compile} with
      caching forced on. *)

  val cache_stats : unit -> Plan_cache.stats
  val cache_clear : unit -> unit
  val symbolic_seconds : t -> float

  val plan : ?ndomains:int -> ?engine:engine -> t -> plan
  (** [?ndomains] accepted and ignored (sequential executor). [?engine]
      selects the executor ({!type:engine}). *)

  val execute_ip : plan -> input -> output
  (** Factorize into the plan's storage; raises
      {!Sympiler_kernels.Ldlt.Zero_pivot} on a zero pivot (the plan stays
      reusable). *)

  val factor_ip : plan -> input -> output
  (** Alias of {!execute_ip}. *)

  val plan_latency : plan -> Metrics.histogram_snapshot
  (** Per-call factorization-latency distribution of this plan's metric
      series (see {!KERNEL.plan_latency}). *)

  val update_ip : plan -> ?sigma:float -> Vector.sparse -> unit
  (** In-place rank-1 update of the plan's factors: [L D L^T] becomes
      [A + sigma w w^T] (default [sigma = 1.]) via the
      Gill–Golub–Murray–Saunders C1 recurrence — no square roots, update
      and downdate share one code path, indefinite pivots allowed. [w] is
      in natural order; ordered plans gather it through the inverse
      permutation. Steady-state calls allocate nothing.

      Unlike {!Cholesky.update_ip} there is no escalation path: an update
      outside the factor pattern raises [Rank_update.Pattern_violation]
      (factors untouched) and the caller recompiles — with indefinite
      inputs the escalated matrix's signature is ambiguous, so the
      decision stays with the caller. Raises
      [Sympiler_kernels.Ldlt.Zero_pivot] on an exactly-zero updated pivot,
      with the factors rolled back; [Invalid_argument] on malformed [w]. *)

  val downdate_ip : plan -> ?sigma:float -> Vector.sparse -> unit
  (** [update_ip ~sigma:(-. sigma)]: [A - sigma w w^T]. *)

  val factor : t -> Csc.t -> output
  (** One-shot: fresh factors per call. *)

  val c_code : t -> string
end

(** Sparse LU (left-looking Gilbert-Peierls, no pivoting) for matrices
    that are numerically safe without pivoting (§3.3). *)
module Lu : sig
  type pattern = Csc.t

  type t = {
    compiled : Sympiler_kernels.Lu.Sympiler.compiled;
    pattern : Csc.t;  (** compiled (ordered handles: permuted) pattern *)
    symbolic_seconds : float;
    flops : float;
    ord : applied_ordering;
  }

  type plan = {
    handle : t;
    p : Sympiler_kernels.Lu.Sympiler.plan;
    scratch : Csc.t option;
        (** ordered plans gather natural-order input values in here *)
    native : Native_engine.exec option;
        (** populated when [plan ~engine:`Native]/[`Native_novec] loaded
            the compiled-C executor (b0 = Ax, b1 = Lx, b2 = Ux) *)
    m_exec : Metrics.histogram;
        (** the plan's [sympiler_execute_seconds] latency series *)
  }

  type input = Csc.t
  type output = Sympiler_kernels.Lu.factors

  val compile : ?cache:t Plan_cache.t -> ?opts:Options.t -> pattern -> t
  (** Only [opts.ordering] and [opts.cache] are consumed (LU runs its own
      reach-set simulation over DG_L; the other fields are ignored for
      {!KERNEL} uniformity). [opts.ordering] compiles for the symmetrically
      permuted [P A P^T] (the ordering graph is [A + A^T]); no-pivoting LU
      must stay numerically safe under the relabeling, as usual for this
      kernel. *)

  val compile_cached :
    ?cache:t Plan_cache.t ->
    ?fill:Sympiler_symbolic.Fill_pattern.t ->
    ?max_width:int ->
    ?ordering:ordering ->
    pattern ->
    t
  [@@deprecated "use compile ?cache (or opts.cache = true)"]
  (** @deprecated Pre-unification spelling; thin alias of {!compile} with
      caching forced on. *)

  val cache_stats : unit -> Plan_cache.stats
  val cache_clear : unit -> unit
  val symbolic_seconds : t -> float

  val plan : ?ndomains:int -> ?engine:engine -> t -> plan
  (** [?ndomains] accepted and ignored (sequential executor). [?engine]
      selects the executor ({!type:engine}). *)

  val execute_ip : plan -> input -> output
  (** Factorize into the plan's storage; raises
      {!Sympiler_kernels.Lu.Zero_pivot} on a zero pivot (the plan stays
      reusable). *)

  val factor_ip : plan -> input -> output
  (** Alias of {!execute_ip}. *)

  val plan_latency : plan -> Metrics.histogram_snapshot
  (** Per-call factorization-latency distribution of this plan's metric
      series (see {!KERNEL.plan_latency}). *)

  val factor : t -> Csc.t -> output
  val c_code : t -> string
end

(** Incomplete Cholesky with zero fill, IC(0) (§3.3); pass lower(A). *)
module Ic0 : sig
  type pattern = Csc.t

  type t = {
    compiled : Sympiler_kernels.Ic0.compiled;
    pattern : Csc.t;  (** compiled (ordered handles: permuted) pattern *)
    symbolic_seconds : float;
    ord : applied_ordering;
  }

  type plan = {
    handle : t;
    p : Sympiler_kernels.Ic0.plan;
    scratch : Csc.t option;
        (** ordered plans gather natural-order input values in here *)
    native : Native_engine.exec option;
        (** populated when [plan ~engine:`Native]/[`Native_novec] loaded
            the compiled-C executor (b0 = Ax, b1 = Lx) *)
    m_exec : Metrics.histogram;
        (** the plan's [sympiler_execute_seconds] latency series *)
  }

  type input = Csc.t
  type output = Csc.t

  val compile : ?cache:t Plan_cache.t -> ?opts:Options.t -> pattern -> t
  (** Only [opts.ordering] and [opts.cache] are consumed (IC(0) keeps
      exactly the input pattern — no fill analysis; the other fields are
      ignored for {!KERNEL} uniformity). [opts.ordering] compiles for
      [P A P^T]; note an incomplete factor's quality (not just its cost)
      changes with the relabeling. Raises [Invalid_argument] when the
      input is not lower triangular. *)

  val compile_cached :
    ?cache:t Plan_cache.t ->
    ?fill:Sympiler_symbolic.Fill_pattern.t ->
    ?max_width:int ->
    ?ordering:ordering ->
    pattern ->
    t
  [@@deprecated "use compile ?cache (or opts.cache = true)"]
  (** @deprecated Pre-unification spelling; thin alias of {!compile} with
      caching forced on. *)

  val cache_stats : unit -> Plan_cache.stats
  val cache_clear : unit -> unit
  val symbolic_seconds : t -> float

  val plan : ?ndomains:int -> ?engine:engine -> t -> plan
  (** [?ndomains] accepted and ignored (sequential executor). [?engine]
      selects the executor ({!type:engine}). *)

  val execute_ip : plan -> input -> output
  (** Factorize into the plan's storage; the returned factor view is
      refreshed in place per call. Raises
      {!Sympiler_kernels.Ic0.Not_positive_definite} on a non-positive
      pivot (the plan stays reusable). *)

  val factor_ip : plan -> input -> output
  (** Alias of {!execute_ip}. *)

  val plan_latency : plan -> Metrics.histogram_snapshot
  (** Per-call factorization-latency distribution of this plan's metric
      series (see {!KERNEL.plan_latency}). *)

  val factor : t -> Csc.t -> output
  val c_code : t -> string
end

(** Incomplete LU with zero fill, ILU(0), row-wise IKJ (§3.3 / §5). *)
module Ilu0 : sig
  type pattern = Csc.t

  type t = {
    compiled : Sympiler_kernels.Ilu0.compiled;
    pattern : Csc.t;  (** compiled (ordered handles: permuted) pattern *)
    symbolic_seconds : float;
    ord : applied_ordering;
  }

  type plan = {
    handle : t;
    p : Sympiler_kernels.Ilu0.plan;
    scratch : Csc.t option;
        (** ordered plans gather natural-order input values in here *)
    native : Native_engine.exec option;
        (** populated when [plan ~engine:`Native]/[`Native_novec] loaded
            the compiled-C executor (b0 = Ax in CSC order, b1 = factor
            values in CSR order) *)
    m_exec : Metrics.histogram;
        (** the plan's [sympiler_execute_seconds] latency series *)
  }

  type input = Csc.t
  type output = Sympiler_kernels.Ilu0.factors

  val compile : ?cache:t Plan_cache.t -> ?opts:Options.t -> pattern -> t
  (** Only [opts.ordering] and [opts.cache] are consumed (ILU(0) keeps
      exactly A's pattern; the other fields are ignored for {!KERNEL}
      uniformity). [opts.ordering] compiles for the symmetrically permuted
      [P A P^T] (ordering graph [A + A^T]). Raises
      {!Sympiler_kernels.Ilu0.Zero_pivot} when a structural diagonal entry
      is missing. *)

  val compile_cached :
    ?cache:t Plan_cache.t ->
    ?fill:Sympiler_symbolic.Fill_pattern.t ->
    ?max_width:int ->
    ?ordering:ordering ->
    pattern ->
    t
  [@@deprecated "use compile ?cache (or opts.cache = true)"]
  (** @deprecated Pre-unification spelling; thin alias of {!compile} with
      caching forced on. *)

  val cache_stats : unit -> Plan_cache.stats
  val cache_clear : unit -> unit
  val symbolic_seconds : t -> float

  val plan : ?ndomains:int -> ?engine:engine -> t -> plan
  (** [?ndomains] accepted and ignored (sequential executor). [?engine]
      selects the executor ({!type:engine}). *)

  val execute_ip : plan -> input -> output
  (** Factorize into the plan's storage; raises
      {!Sympiler_kernels.Ilu0.Zero_pivot} on a zero pivot (the plan stays
      reusable). *)

  val factor_ip : plan -> input -> output
  (** Alias of {!execute_ip}. *)

  val plan_latency : plan -> Metrics.histogram_snapshot
  (** Per-call factorization-latency distribution of this plan's metric
      series (see {!KERNEL.plan_latency}). *)

  val factor : t -> Csc.t -> output
  val c_code : t -> string
end

(** Symbolic "explain" reports: what the inspectors measured and what the
    transformations decided, for one compiled handle. Diagnostic path —
    recomputes symbolic quantities freely; not for steady-state loops. *)
module Explain : sig
  type histogram = (string * int) list
  (** Power-of-two buckets, label to count: [1], [2], [3-4], [5-8], … *)

  type report = {
    kernel : string;  (** "cholesky" or "trisolve" *)
    ordering : string;
        (** "natural", "rcm", "amd", "min-degree", or "given" *)
    n : int;
    nnz_a : int;
    nnz_l : int;  (** under the handle's selected ordering *)
    nnz_l_natural : int;
        (** what the natural order would cost (equals [nnz_l] on natural
            handles) *)
    fill_ratio : float;  (** nnz(L) / nnz(A); 0 for empty patterns *)
    etree_height : int;
    col_count_hist : histogram;  (** nnz per column of L *)
    supernode_width_hist : histogram;
    avg_supernode_width : float;
    level_depth : int;  (** level sets of L's dependence graph *)
    max_level_width : int;
    decisions : Trace.decision list;  (** the handle's decision log *)
    predicted_flops : float;  (** symbolic flop model of the handle *)
    predicted_flops_natural : float;
        (** the same model without the ordering *)
    executed_flops : int;
        (** current {!Sympiler_prof.Prof.counters} flops snapshot — run the
            numeric phase under profiling before reading; 0 otherwise *)
    symbolic_seconds : float;
  }

  val cholesky : Cholesky.t -> report
  val trisolve : Trisolve.t -> report

  val to_json : report -> string
  val to_table : report -> string
  (** Aligned two-column text rendering (label column sized to fit). *)
end

val explain : Cholesky.t -> Explain.report
(** Shorthand for {!Explain.cholesky}. *)
