open Sympiler_sparse

(** Shared compile options: the one record every kernel family's [compile]
    (and every {!Pipeline} stage) takes, replacing the pre-unification
    [compile]/[compile_ext]/[compile_cached]/[compile_cached_ext] quartet.
    Families consume the fields they understand and ignore the rest — the
    documented price of one uniform signature. *)

type ordering = [ `Natural | `Rcm | `Amd | `Min_degree | `Given of Perm.t ]
(** Fill-reducing ordering request (see {!Sympiler.ordering} for the full
    contract: computed once at compile time, baked into plans). *)

type engine = [ `Ocaml | `Native | `Native_novec ]
(** Plan execution engine (see {!Sympiler.engine}). *)

type t = {
  fill : Sympiler_symbolic.Fill_pattern.t option;
      (** reuse a caller-provided fill analysis of the same pattern
          (families without a fill analysis ignore it) *)
  max_width : int option;
      (** cap supernode width where supernodes exist *)
  ordering : ordering;  (** default [`Natural] *)
  cache : bool;
      (** route the compile through the family's default
          {!Plan_cache} (same effect as the retired [compile_cached]) *)
  vs_block_threshold : float option;
      (** minimum average supernode width for VS-Block to pay off;
          [None] = the family's default (2.0 for Cholesky) *)
  simplicial : bool;
      (** force the simplicial Cholesky variant (was
          [compile_ext ~variant:Simplicial]) *)
  specialized : bool;
      (** pattern-specialized codegen (Cholesky; default [true]) *)
  vectorize : bool;
      (** emit vectorize annotations in generated C (default [true]) *)
}

val default : t
(** No fill reuse, no width cap, natural ordering, uncached, family-default
    thresholds, supernodal, specialized, vectorized. *)

val cached : t
(** {!default} with [cache = true]. *)

val make :
  ?fill:Sympiler_symbolic.Fill_pattern.t ->
  ?max_width:int ->
  ?ordering:ordering ->
  ?cache:bool ->
  ?vs_block_threshold:float ->
  ?simplicial:bool ->
  ?specialized:bool ->
  ?vectorize:bool ->
  unit ->
  t

val ordering_name : ordering -> string
(** "natural", "rcm", "amd", "min-degree", or "given". *)

(** {2 Cache fingerprints}

    Encoders mapping option configurations to distinct integer arrays for
    {!Plan_cache} keys ("not given" is distinct from "given the default"). *)

val fp_option : int option -> int
val fp_threshold : float option -> int
val fp_ordering : ordering option -> int array
val append_fp_ordering : int array -> ordering option -> int array

val fingerprint : t -> int array
(** The record's cache key contribution. [fill] and [cache] are excluded:
    neither changes the compiled artifact. *)
