open Sympiler_sparse

(* Dependence graph DG_L of a lower-triangular matrix L: vertices are
   columns, with an edge j -> i for every off-diagonal nonzero L(i,j). By the
   Gilbert-Peierls theorem the nonzero pattern of the solution of L x = b is
   Reach_L(beta), beta = pattern of b — computed here with a non-recursive
   depth-first search. *)

(* Reach set in topological order: every column appears before any column
   that depends on it, so a forward solve may process the set left to right.
   O(|b| + number of edges traversed). *)
let reach (l : Csc.t) (beta : int array) : int array =
  Sympiler_prof.Prof.time "symbolic" @@ fun () ->
  let n = l.Csc.ncols in
  let marked = Array.make n false in
  let out = Array.make n 0 in
  let out_top = ref n in
  (* Explicit DFS stack of (vertex, next edge position) pairs. *)
  let stack_v = Array.make n 0 in
  let stack_p = Array.make n 0 in
  let dfs start =
    if not marked.(start) then begin
      let top = ref 0 in
      stack_v.(0) <- start;
      stack_p.(0) <- l.Csc.colptr.(start);
      marked.(start) <- true;
      while !top >= 0 do
        let v = stack_v.(!top) in
        let p = ref stack_p.(!top) in
        let hi = l.Csc.colptr.(v + 1) in
        (* Skip the diagonal entry and already-marked successors. *)
        while
          !p < hi && (l.Csc.rowind.(!p) = v || marked.(l.Csc.rowind.(!p)))
        do
          incr p
        done;
        if !p < hi then begin
          let w = l.Csc.rowind.(!p) in
          stack_p.(!top) <- !p + 1;
          incr top;
          stack_v.(!top) <- w;
          stack_p.(!top) <- l.Csc.colptr.(w);
          marked.(w) <- true
        end
        else begin
          (* Post-order: all of v's descendants are emitted below it. *)
          decr out_top;
          out.(!out_top) <- v;
          decr top
        end
      done
    end
  in
  Array.iter dfs beta;
  Array.sub out !out_top (n - !out_top)

(* Reference implementation used as an oracle in tests: the reach set as a
   sorted list, computed by naive graph traversal. *)
let reach_naive (l : Csc.t) (beta : int array) : int array =
  let n = l.Csc.ncols in
  let marked = Array.make n false in
  let rec visit v =
    if not marked.(v) then begin
      marked.(v) <- true;
      Csc.iter_col l v (fun i _ -> if i <> v then visit i)
    end
  in
  Array.iter visit beta;
  let acc = ref [] in
  for v = n - 1 downto 0 do
    if marked.(v) then acc := v :: !acc
  done;
  Array.of_list !acc

(* Check that [order] is a valid topological order of DG_L restricted to the
   given set: for every edge j -> i inside the set, j appears before i. *)
let is_topological (l : Csc.t) (order : int array) : bool =
  let n = l.Csc.ncols in
  let pos = Array.make n (-1) in
  Array.iteri (fun k v -> pos.(v) <- k) order;
  let ok = ref true in
  Array.iter
    (fun j ->
      Csc.iter_col l j (fun i _ ->
          if i <> j && pos.(i) >= 0 && pos.(i) <= pos.(j) then ok := false))
    order;
  !ok
