open Sympiler_sparse

(* Supernode detection. A supernode is a range of consecutive columns of L
   with identical below-diagonal structure (and a dense diagonal block) that
   the VS-Block transformation turns into dense sub-kernels.

   Two detectors are provided, matching the paper's Table 1:
   - [detect_exact]: node equivalence on the dependence graph — columns are
     merged when their outgoing edge sets (below-diagonal patterns) coincide.
     Works on any lower-triangular pattern, used for triangular solve.
   - [detect_etree]: the Cholesky rule of §3.2 — merge columns j-1 and j when
     nnz(L(:,j-1)) = nnz(L(:,j)) + 1 and j-1 is the only child of j in the
     elimination tree. Needs only counts + etree, not the full pattern. *)

type t = {
  sn_ptr : int array; (* length nsuper+1; supernode s = cols [sn_ptr.(s), sn_ptr.(s+1)) *)
  col_to_sn : int array; (* inverse map *)
}

let nsuper t = Array.length t.sn_ptr - 1
let width t s = t.sn_ptr.(s + 1) - t.sn_ptr.(s)

let of_boundaries ~n starts =
  (* [starts] lists the first column of each supernode, ascending, head 0. *)
  let sn_ptr = Array.of_list (starts @ [ n ]) in
  let col_to_sn = Array.make n 0 in
  for s = 0 to Array.length sn_ptr - 2 do
    for j = sn_ptr.(s) to sn_ptr.(s + 1) - 1 do
      col_to_sn.(j) <- s
    done
  done;
  { sn_ptr; col_to_sn }

(* Columns j-1 and j of [l] are structurally mergeable when the pattern of
   column j equals the pattern of column j-1 with its leading (diagonal)
   entry removed. *)
let mergeable_exact (l : Csc.t) j =
  let lo0 = l.Csc.colptr.(j - 1) and hi0 = l.Csc.colptr.(j) in
  let lo1 = hi0 and hi1 = l.Csc.colptr.(j + 1) in
  hi0 - lo0 = hi1 - lo1 + 1
  &&
  let rec eq p q = q >= hi1 || (l.Csc.rowind.(p) = l.Csc.rowind.(q) && eq (p + 1) (q + 1)) in
  eq (lo0 + 1) lo1

let detect ?(max_width = max_int) ~mergeable n =
  Sympiler_trace.Trace.begin_span "symbolic.supernode_detection";
  let starts = ref [ 0 ] and cur_start = ref 0 in
  for j = 1 to n - 1 do
    let w = j - !cur_start in
    if w < max_width && mergeable j then ()
    else begin
      starts := j :: !starts;
      cur_start := j
    end
  done;
  let t = of_boundaries ~n (List.rev !starts) in
  if Sympiler_prof.Prof.enabled () then begin
    (* VS-Block statistics: one block-set detection's supernode count and
       covered columns (avg width = cols / supernodes in the aggregate). *)
    let c = Sympiler_prof.Prof.cell () in
    c.Sympiler_prof.Prof.supernodes <-
      c.Sympiler_prof.Prof.supernodes + nsuper t;
    c.Sympiler_prof.Prof.supernode_cols <- c.Sympiler_prof.Prof.supernode_cols + n
  end;
  if Sympiler_trace.Trace.enabled () then begin
    Sympiler_trace.Trace.set_attr "supernodes"
      (Sympiler_trace.Trace.Int (nsuper t));
    Sympiler_trace.Trace.set_attr "avg_width"
      (Sympiler_trace.Trace.Float
         (if nsuper t = 0 then 0.0
          else float_of_int n /. float_of_int (nsuper t)))
  end;
  Sympiler_trace.Trace.end_span ();
  t

let detect_exact ?max_width (l : Csc.t) : t =
  if l.Csc.ncols = 0 then { sn_ptr = [| 0 |]; col_to_sn = [||] }
  else detect ?max_width ~mergeable:(mergeable_exact l) l.Csc.ncols

let detect_etree ?max_width ~(counts : int array) ~(parent : int array) () : t =
  let n = Array.length counts in
  if n = 0 then { sn_ptr = [| 0 |]; col_to_sn = [||] }
  else begin
    let nchild = Etree.n_children parent in
    let mergeable j =
      counts.(j - 1) = counts.(j) + 1 && parent.(j - 1) = j && nchild.(j) = 1
    in
    detect ?max_width ~mergeable n
  end

let widths t = Array.init (nsuper t) (width t)

let avg_width t =
  let n = t.sn_ptr.(nsuper t) in
  if nsuper t = 0 then 0.0 else float_of_int n /. float_of_int (nsuper t)

(* Structural check used by tests: partition is contiguous, covers [0, n),
   and every supernode's columns share their below-block pattern. *)
let validate_against (l : Csc.t) t =
  let n = l.Csc.ncols in
  if t.sn_ptr.(0) <> 0 || t.sn_ptr.(nsuper t) <> n then false
  else begin
    let ok = ref true in
    for s = 0 to nsuper t - 1 do
      for j = t.sn_ptr.(s) + 1 to t.sn_ptr.(s + 1) - 1 do
        if not (mergeable_exact l j) then ok := false
      done
    done;
    !ok
  end
