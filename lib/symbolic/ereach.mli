open Sympiler_sparse

(** Row sparsity patterns of the Cholesky factor via elimination-tree
    up-traversal ("ereach", Davis §4.2): the pattern of row [k] of L is the
    set of nodes on etree paths from the nonzeros of [A(0:k-1, k)] up
    towards [k]. Summed over all rows the cost is O(|L|) — this is how
    {!Fill_pattern.analyze} computes prune-sets, counts and the full
    pattern of L. *)

type workspace
(** Reusable marks + stack; create once per matrix. *)

val make_workspace : int -> workspace

val row_pattern :
  upper:Csc.t -> parent:int array -> work:workspace -> int -> int array
(** [row_pattern ~upper ~parent ~work k]: the columns [j < k] with
    [L(k,j) <> 0], sorted ascending (a valid dependence order for
    lower-triangular solves). [upper] is the transpose of the stored lower
    part of A (column [k] holds the row indices [i <= k]). *)

val row_pattern_ip :
  upper:Csc.t -> parent:int array -> work:workspace -> int -> int array * int
(** Zero-copy variant of {!row_pattern}: returns [(stack, len)] where the
    pattern is [stack.(0 .. len-1)], sorted ascending. The array is the
    workspace's own stack — read it before the next call on the same
    workspace, and do not mutate it. This is the form the whole-matrix
    analysis loop uses to avoid a per-row allocation. *)

val row_pattern_naive : Csc.t -> int -> int array
(** Test oracle via an explicit dense symbolic factorization; takes the
    lower part of A directly. *)
