(* Post-ordering of an elimination forest. Children are visited in
   increasing order, matching the convention of sparse direct solvers so
   that supernodes stay contiguous after relabeling. *)

(* post.(k) = node visited k-th. *)
let compute (parent : int array) : int array =
  Sympiler_trace.Trace.with_span "symbolic.postorder" @@ fun () ->
  let n = Array.length parent in
  (* First-child / next-sibling with children in increasing order (build by
     scanning nodes in decreasing order). *)
  let first_child = Array.make n (-1) in
  let next_sibling = Array.make n (-1) in
  for j = n - 1 downto 0 do
    let p = parent.(j) in
    if p >= 0 then begin
      next_sibling.(j) <- first_child.(p);
      first_child.(p) <- j
    end
  done;
  let post = Array.make n 0 in
  let k = ref 0 in
  (* Iterative DFS: stack entries are nodes; a node whose first_child has
     been cleared is ready to be emitted. *)
  let stack = Array.make n 0 in
  let visit root =
    let top = ref 0 in
    stack.(0) <- root;
    while !top >= 0 do
      let v = stack.(!top) in
      let c = first_child.(v) in
      if c = -1 then begin
        post.(!k) <- v;
        incr k;
        decr top
      end
      else begin
        (* Advance v's child cursor and descend into c. *)
        first_child.(v) <- next_sibling.(c);
        incr top;
        stack.(!top) <- c
      end
    done
  in
  for j = 0 to n - 1 do
    if parent.(j) = -1 then visit j
  done;
  assert (!k = n);
  post

(* Is [post] a valid postorder of the forest? It must be a permutation in
   which every node appears after all of its descendants. *)
let is_valid (parent : int array) (post : int array) : bool =
  let n = Array.length parent in
  if Array.length post <> n then false
  else begin
    let pos = Array.make n (-1) in
    let ok = ref true in
    Array.iteri
      (fun k v ->
        if v < 0 || v >= n || pos.(v) >= 0 then ok := false else pos.(v) <- k)
      post;
    !ok
    && Array.for_all
         (fun j -> parent.(j) = -1 || pos.(j) < pos.(parent.(j)))
         (Array.init n (fun i -> i))
  end
