open Sympiler_sparse

(* Symbolic Cholesky factorization: the full nonzero pattern of L (fill-ins
   included) computed before any numeric work, so that storage for L can be
   allocated once and no dynamic index arrays remain in the numeric phase —
   the property Sympiler's code generation relies on. *)

(* Result of symbolic analysis for A = L L^T. The per-row prune-sets live
   packed in an int32 [Bigstore] rather than a boxed [int array array]:
   at 10^6 rows a jagged representation roughly doubles the memory of the
   symbolic result (8-byte entries plus a header and pointer per row).
   Kernels that need allocation-free numeric reads flatten the store into
   plain int arrays at compile time (Bigstore.ptr / Bigstore.flatten). *)
type t = {
  n : int;
  parent : int array; (* elimination tree *)
  l_pattern : Csc.t; (* pattern of L, unit values; rows sorted ascending *)
  counts : int array; (* counts.(j) = nnz(L(:,j)) including the diagonal *)
  row_store : Bigstore.t;
      (* segment k = columns j < k with L(k,j) <> 0, ascending — the
         per-column prune-sets of the Cholesky VI-Prune transformation *)
}

let row_ptr t = Bigstore.ptr t.row_store
let row_pattern t k = Bigstore.segment t.row_store k
let iter_row_pattern t k f = Bigstore.iter_segment t.row_store k f
let row_patterns t = Bigstore.to_arrays t.row_store
let row_store t = t.row_store

(* O(|L|) analysis from the lower-triangular part of A via [Ereach]. Timed
   under the "symbolic" profiling scope (reentrant, so facades may wrap a
   larger "symbolic" region around it). *)
let analyze (a_lower : Csc.t) : t =
  Sympiler_prof.Prof.time "symbolic" @@ fun () ->
  Sympiler_trace.Trace.with_span "symbolic.fill" @@ fun () ->
  let n = a_lower.Csc.ncols in
  let parent = Etree.compute a_lower in
  let upper = Csc.transpose a_lower in
  let work = Ereach.make_workspace n in
  let builder =
    Bigstore.Builder.create ~segments_hint:n
      ~capacity:(max 16 (4 * Csc.nnz a_lower))
      ()
  in
  let counts = Array.make n 1 in
  (* First pass: row patterns (packed as they are produced — the in-place
     ereach writes into the workspace stack, the builder copies it out as
     int32) and column counts. *)
  Sympiler_trace.Trace.begin_span "symbolic.col_counts";
  for k = 0 to n - 1 do
    let stack, len = Ereach.row_pattern_ip ~upper ~parent ~work k in
    Bigstore.Builder.append_segment builder stack len;
    for q = 0 to len - 1 do
      let j = stack.(q) in
      counts.(j) <- counts.(j) + 1
    done
  done;
  let row_store = Bigstore.Builder.finish builder in
  Sympiler_trace.Trace.end_span ();
  (* Second pass: scatter into column-major storage. Row indices within a
     column arrive in increasing k, hence sorted. *)
  let colptr = Array.make (n + 1) 0 in
  Array.blit counts 0 colptr 0 n;
  let nnz = Utils.cumsum colptr in
  let rowind = Array.make nnz 0 in
  let next = Array.sub colptr 0 n in
  for k = 0 to n - 1 do
    (* Diagonal of column k. *)
    rowind.(next.(k)) <- k;
    next.(k) <- next.(k) + 1;
    Bigstore.iter_segment row_store k (fun j ->
        rowind.(next.(j)) <- k;
        next.(j) <- next.(j) + 1)
  done;
  let l_pattern =
    Csc.create ~nrows:n ~ncols:n ~colptr ~rowind
      ~values:(Array.make nnz 1.0)
  in
  if Sympiler_trace.Trace.enabled () then begin
    Sympiler_trace.Trace.set_attr "n" (Sympiler_trace.Trace.Int n);
    Sympiler_trace.Trace.set_attr "nnz_l" (Sympiler_trace.Trace.Int nnz)
  end;
  { n; parent; l_pattern; counts; row_store }

(* Independent oracle implementing the paper's equation (1):
   Lj = Aj ∪ {j} ∪ (∪_{j = T(s)} Ls \ {s}). Exponentially simpler and
   asymptotically worse; used in tests to cross-check [analyze]. The child
   lists come precomputed from the etree — the previous version rediscovered
   them by scanning every prior column for each j, which made the "simple"
   oracle O(n^2) even on a diagonal matrix and unusable as a cross-check
   beyond a few thousand rows. *)
let pattern_by_children (a_lower : Csc.t) : Csc.t =
  let n = a_lower.Csc.ncols in
  let parent = Etree.compute a_lower in
  let children = Etree.children parent in
  let module S = Set.Make (Int) in
  let cols = Array.make n S.empty in
  for j = 0 to n - 1 do
    (* Aj (lower part) ∪ {j}. *)
    Csc.iter_col a_lower j (fun i _ -> if i >= j then cols.(j) <- S.add i cols.(j));
    cols.(j) <- S.add j cols.(j);
    (* Union of children patterns minus their diagonals. *)
    List.iter
      (fun s -> cols.(j) <- S.union cols.(j) (S.remove s cols.(s)))
      children.(j)
  done;
  let tr = Triplet.create ~nrows:n ~ncols:n () in
  Array.iteri (fun j set -> S.iter (fun i -> Triplet.add tr i j 1.0) set) cols;
  Csc.of_triplet tr

let nnz_l t = Csc.nnz t.l_pattern

(* Number of floating point operations of the numeric factorization:
   sum over columns of c*(c+2) with c = below-diagonal count (sqrt counted
   once, division c times, update c*(c+1)). Standard flop model
   sum (counts_j)^2 is used for GFLOP/s reporting, matching common practice. *)
let flops t =
  Array.fold_left (fun acc c -> acc +. (float_of_int c ** 2.0)) 0.0 t.counts

(* Per-column summand of [flops]: the symbolic cost estimate the parallel
   runtime's cost-balanced partitions are built from (columns and
   supernodes of a level set are far from equal-cost, so equal-count
   chunking leaves workers idle). *)
let col_flops (counts : int array) : float array =
  Array.map (fun c -> let f = float_of_int c in f *. f) counts
