open Sympiler_sparse

(** The elimination tree (etree) of a symmetric positive definite matrix —
    the central graph structure of sparse factorization symbolic analysis
    (§3.2): [parent j = min { i > j : L(i,j) <> 0 }], a spanning forest of
    the filled graph. *)

val compute : Csc.t -> int array
(** [compute a_lower]: parent array of the etree ([-1] for roots), from the
    lower-triangular part of A. Liu's algorithm with path-compressed
    virtual ancestors, nearly O(|A|). *)

val compute_naive : Csc.t -> int array
(** Test oracle: parents read off an explicit set-based symbolic
    factorization. Quadratic; small inputs only. *)

val children : int array -> int list array
(** Children lists (increasing order) from a parent array. *)

val n_children : int array -> int array
(** Child counts — the paper's supernode rule needs "j-1 is the only child
    of j". *)

val roots : int array -> int list
(** Indices with no parent (one per connected component). *)

val depths : int array -> int array
(** Depth of each node; roots have depth 0. *)

val path_to_root : int array -> int -> int array
(** [path_to_root parent j]: the nodes from [j] to its root, inclusive, in
    child-to-root order — the inspection set of the §3.3 rank-update
    method. Raises [Invalid_argument] when [j] is out of range. *)

type path_table = {
  pt_parent : int array;
  pt_paths : int array array;  (** [[||]] = not yet computed *)
  mutable pt_hits : int;  (** lookups served from the table *)
  mutable pt_misses : int;  (** lookups that computed (and cached) a path *)
}
(** Memoized per-node path table: the symbolic phase of a {e repeated}
    rank update is a single array read. *)

val make_path_table : int array -> path_table
(** A table over [parent] with every path unset. O(n) allocation, no
    paths computed up front. *)

val path : path_table -> int -> int array
(** The (cached) path from a node to its root; allocates only on the
    first lookup of each node. The returned array is shared — callers
    must not mutate it. *)
