open Sympiler_sparse

(* One symbolic analysis serving every stage of a pipeline. A DAG of kernel
   stages over one matrix pattern keeps asking the same structural
   questions — the elimination tree, the fill pattern, the level schedule
   of the triangular dependence graph, the symmetrized full pattern for
   SpMV — and compiling each stage in isolation re-derives them. This
   record memoizes each artifact the first time any stage forces it; the
   [runs] ledger counts computations so tests can assert nothing ran
   twice. *)

type t = {
  pattern : Csc.t;
  mutable etree_ : int array option;
  mutable fill_ : Fill_pattern.t option;
  mutable levels_ : (int array * int array) option;
  mutable full_ : (Csc.t * int array) option;
  mutable etree_runs : int;
  mutable fill_runs : int;
  mutable levels_runs : int;
  mutable full_runs : int;
}

let create (pattern : Csc.t) : t =
  {
    pattern;
    etree_ = None;
    fill_ = None;
    levels_ = None;
    full_ = None;
    etree_runs = 0;
    fill_runs = 0;
    levels_runs = 0;
    full_runs = 0;
  }

let pattern (t : t) = t.pattern

let etree (t : t) : int array =
  match t.etree_ with
  | Some e -> e
  | None ->
      let e = Etree.compute t.pattern in
      t.etree_ <- Some e;
      t.etree_runs <- t.etree_runs + 1;
      e

let fill (t : t) : Fill_pattern.t =
  match t.fill_ with
  | Some f -> f
  | None ->
      let f = Fill_pattern.analyze t.pattern in
      t.fill_ <- Some f;
      t.fill_runs <- t.fill_runs + 1;
      f

(* Level schedule of the lower-triangular dependence graph: column [j] can
   run once every column it reads from has run; one ascending pass
   finalizes levels because all of [j]'s predecessors have smaller index.
   Returned as (level_ptr, level_cols): level [l]'s columns occupy
   [level_cols.(level_ptr.(l)) .. level_cols.(level_ptr.(l+1) - 1)],
   ascending within each level. *)
let levels (t : t) : int array * int array =
  match t.levels_ with
  | Some ls -> ls
  | None ->
      let l = t.pattern in
      let n = l.Csc.ncols in
      let lp = l.Csc.colptr and li = l.Csc.rowind in
      let level = Array.make n 0 in
      let nlevels = ref 0 in
      for j = 0 to n - 1 do
        let lj = level.(j) in
        if lj >= !nlevels then nlevels := lj + 1;
        for p = lp.(j) + 1 to lp.(j + 1) - 1 do
          let r = li.(p) in
          if level.(r) < lj + 1 then level.(r) <- lj + 1
        done
      done;
      let level_ptr = Array.make (!nlevels + 1) 0 in
      for j = 0 to n - 1 do
        level_ptr.(level.(j) + 1) <- level_ptr.(level.(j) + 1) + 1
      done;
      for l = 0 to !nlevels - 1 do
        level_ptr.(l + 1) <- level_ptr.(l + 1) + level_ptr.(l)
      done;
      let cursor = Array.copy level_ptr in
      let level_cols = Array.make n 0 in
      for j = 0 to n - 1 do
        level_cols.(cursor.(level.(j))) <- j;
        cursor.(level.(j)) <- cursor.(level.(j)) + 1
      done;
      let ls = (level_ptr, level_cols) in
      t.levels_ <- Some ls;
      t.levels_runs <- t.levels_runs + 1;
      ls

(* Symmetrized full pattern A = L + L^T (diagonal once) together with the
   gather map from the lower-triangular values: full entry [k] reads
   [lower.values.(map.(k))], so a plan refreshes the SpMV operand from new
   lower values without allocating. *)
let full (t : t) : Csc.t * int array =
  match t.full_ with
  | Some f -> f
  | None ->
      let l = t.pattern in
      let n = l.Csc.ncols in
      let lp = l.Csc.colptr and li = l.Csc.rowind in
      (* Column counts of the full matrix: each strictly-lower entry (i, j)
         contributes to columns j and i; diagonal entries to their own. *)
      let counts = Array.make n 0 in
      for j = 0 to n - 1 do
        for p = lp.(j) to lp.(j + 1) - 1 do
          let i = li.(p) in
          counts.(j) <- counts.(j) + 1;
          if i <> j then counts.(i) <- counts.(i) + 1
        done
      done;
      let colptr = Array.make (n + 1) 0 in
      for j = 0 to n - 1 do
        colptr.(j + 1) <- colptr.(j) + counts.(j)
      done;
      let nnz = colptr.(n) in
      let rowind = Array.make nnz 0 in
      let map = Array.make nnz 0 in
      let cursor = Array.copy colptr in
      (* Upper part of column j is the transpose of rows [< j]: emitting by
         ascending source column keeps every destination column sorted,
         because within column c the strictly-lower rows are ascending and
         all upper entries (row c) of later source columns come later. *)
      for c = 0 to n - 1 do
        for p = lp.(c) to lp.(c + 1) - 1 do
          let i = li.(p) in
          if i <> c then begin
            (* entry (c, i) of the upper part, in column i *)
            rowind.(cursor.(i)) <- c;
            map.(cursor.(i)) <- p;
            cursor.(i) <- cursor.(i) + 1
          end
          else begin
            (* the diagonal lands between column c's upper and lower runs *)
            rowind.(cursor.(c)) <- c;
            map.(cursor.(c)) <- p;
            cursor.(c) <- cursor.(c) + 1
          end
        done;
        (* now the strictly-lower run of column c itself *)
        for p = lp.(c) to lp.(c + 1) - 1 do
          let i = li.(p) in
          if i > c then begin
            rowind.(cursor.(c)) <- i;
            map.(cursor.(c)) <- p;
            cursor.(c) <- cursor.(c) + 1
          end
        done
      done;
      let full =
        {
          Csc.nrows = n;
          ncols = n;
          colptr;
          rowind;
          values = Array.make nnz 0.0;
        }
      in
      let f = (full, map) in
      t.full_ <- Some f;
      t.full_runs <- t.full_runs + 1;
      f

let runs (t : t) : (string * int) list =
  [
    ("etree", t.etree_runs);
    ("fill", t.fill_runs);
    ("levels", t.levels_runs);
    ("full", t.full_runs);
  ]
