open Sympiler_sparse

(** One symbolic analysis serving every stage of a pipeline.

    A DAG of kernel stages compiled over one matrix pattern keeps asking
    the same structural questions; compiling each stage in isolation
    re-derives them. [t] memoizes each artifact the first time any stage
    forces it — the elimination tree, the fill pattern, the level schedule
    of the triangular dependence graph, the symmetrized full pattern with
    its value-gather map — and the {!runs} ledger counts computations so
    callers (and tests) can assert that nothing ran twice. *)

type t

val create : Csc.t -> t
(** Wrap a pattern; no analysis runs until an accessor forces it. *)

val pattern : t -> Csc.t

val etree : t -> int array
(** Elimination tree (memoized {!Etree.compute}). *)

val fill : t -> Fill_pattern.t
(** Fill analysis (memoized {!Fill_pattern.analyze}); the pattern must be
    lower triangular. *)

val levels : t -> int array * int array
(** Level schedule [(level_ptr, level_cols)] of the lower-triangular
    dependence graph: level [l]'s columns occupy
    [level_cols.(level_ptr.(l)) .. level_cols.(level_ptr.(l+1)-1)],
    ascending within each level. Columns in one level are independent — the
    forward substitution can run them in any order; reversing the levels
    schedules the transposed solve. *)

val full : t -> Csc.t * int array
(** Symmetrized full pattern [A = L + L^T] (diagonal stored once) and the
    gather map from the lower-triangular values: full entry [k] reads
    [lower.values.(map.(k))]. Lets a plan refresh an SpMV operand from new
    lower-triangular values without allocating. *)

val runs : t -> (string * int) list
(** Computation counts per artifact ([("etree", _); ("fill", _);
    ("levels", _); ("full", _)]); each stays [<= 1] for the lifetime of
    the record. *)
