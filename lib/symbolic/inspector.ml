open Sympiler_sparse

(* The symbolic inspector framework of §2.2 / Table 1. For each (numerical
   method, transformation) pair, an inspector names the inspection graph it
   builds, the strategy it traverses it with, and produces an inspection set
   that drives the corresponding inspector-guided transformation. Keeping
   this structure explicit (rather than ad hoc calls into [Dep_graph] /
   [Etree]) is what lets new methods be added "as long as the required
   inspectors can be described in this manner" (paper, end of §2.2). *)

type inspection_graph =
  | Dependence_graph (* adjacency graph of the triangular matrix *)
  | Elimination_tree (* etree of A, for factorization methods *)

type inspection_strategy =
  | Depth_first_search (* reach-set computation *)
  | Node_equivalence (* supernode detection on DG_L *)
  | Up_traversal (* etree up-walk (ereach) *)
  | Single_node_up_traversal (* etree walk for one row pattern *)

type inspection_set =
  | Prune_set of int array (* e.g. the reach-set, topologically ordered *)
  | Prune_sets of int array array (* per-column prune sets (row patterns) *)
  | Block_set of Supernodes.t (* supernode boundaries *)

type t = {
  graph : inspection_graph;
  strategy : inspection_strategy;
  description : string;
  run : unit -> inspection_set;
}

let graph_name = function
  | Dependence_graph -> "DG"
  | Elimination_tree -> "etree"

let strategy_name = function
  | Depth_first_search -> "DFS"
  | Node_equivalence -> "node-equivalence"
  | Up_traversal -> "up-traversal"
  | Single_node_up_traversal -> "single-node up-traversal"

let describe i =
  Printf.sprintf "%s: %s over %s" i.description (strategy_name i.strategy)
    (graph_name i.graph)

(* --- Inspectors for sparse triangular solve (§3.1) --- *)

(* VI-Prune inspector: reach-set of the RHS pattern in DG_L. *)
let trisolve_vi_prune (l : Csc.t) (b : Vector.sparse) : t =
  {
    graph = Dependence_graph;
    strategy = Depth_first_search;
    description = "triangular solve reach-set";
    run = (fun () -> Prune_set (Dep_graph.reach l b.Vector.indices));
  }

(* VS-Block inspector: supernodes of L by node equivalence. *)
let trisolve_vs_block ?max_width (l : Csc.t) : t =
  {
    graph = Dependence_graph;
    strategy = Node_equivalence;
    description = "triangular solve supernodes";
    run = (fun () -> Block_set (Supernodes.detect_exact ?max_width l));
  }

(* --- Inspectors for Cholesky factorization (§3.2) --- *)

(* VI-Prune inspector: per-column prune sets = row patterns of L. *)
let cholesky_vi_prune (fill : Fill_pattern.t) : t =
  {
    graph = Elimination_tree;
    strategy = Single_node_up_traversal;
    description = "Cholesky row patterns (prune sets)";
    run = (fun () -> Prune_sets (Fill_pattern.row_patterns fill));
  }

(* VS-Block inspector: supernodes from etree + column counts. *)
let cholesky_vs_block ?max_width (fill : Fill_pattern.t) : t =
  {
    graph = Elimination_tree;
    strategy = Up_traversal;
    description = "Cholesky supernodes";
    run =
      (fun () ->
        Block_set
          (Supernodes.detect_etree ?max_width ~counts:fill.Fill_pattern.counts
             ~parent:fill.Fill_pattern.parent ()));
  }
