open Sympiler_sparse

(* Row sparsity patterns of the Cholesky factor L via elimination-tree
   up-traversal ("ereach", Davis, Direct Methods §4.2): the pattern of row k
   of L is the set of nodes on paths in the etree from the nonzeros of
   A(0:k-1, k) up towards k. Total cost over all rows is O(|L|).

   [upper] is the upper triangle of A in CSC form (column k holds the row
   indices i <= k of A(i,k)), i.e. the transpose of the stored lower part. *)

type workspace = {
  mark : int array; (* mark.(i) = k when i was visited while processing row k *)
  stack : int array;
}

let make_workspace n = { mark = Array.make n (-1); stack = Array.make n 0 }

(* Pattern of row k of L, diagonal excluded, sorted ascending (which is a
   valid dependence order for lower-triangular systems). In-place variant:
   the result lives in [work.stack.(0 .. len-1)] and is valid only until
   the next call on the same workspace — the zero-copy form the whole-matrix
   analysis loop consumes (one monomorphic in-place sort, no per-row
   allocation; the polymorphic [Array.sort compare] it replaces both
   allocated and paid a closure call per comparison). *)
let row_pattern_ip ~(upper : Csc.t) ~(parent : int array) ~(work : workspace) k
    : int array * int =
  let len = ref 0 in
  Csc.iter_col upper k (fun i _ ->
      let rec climb i =
        if i < k && i >= 0 && work.mark.(i) <> k then begin
          work.mark.(i) <- k;
          work.stack.(!len) <- i;
          incr len;
          climb parent.(i)
        end
      in
      climb i);
  Utils.sort_int_range work.stack 0 !len;
  (work.stack, !len)

let row_pattern ~(upper : Csc.t) ~(parent : int array) ~(work : workspace) k :
    int array =
  let stack, len = row_pattern_ip ~upper ~parent ~work k in
  Array.sub stack 0 len

(* Naive oracle used by tests: row pattern from an explicitly computed dense
   symbolic factorization. *)
let row_pattern_naive (a_lower : Csc.t) k : int array =
  let n = a_lower.Csc.ncols in
  let module S = Set.Make (Int) in
  let cols = Array.make n S.empty in
  Csc.iter a_lower (fun i j _ -> if i > j then cols.(j) <- S.add i cols.(j));
  for j = 0 to n - 1 do
    match S.min_elt_opt cols.(j) with
    | None -> ()
    | Some p -> cols.(p) <- S.union cols.(p) (S.remove p cols.(j))
  done;
  let acc = ref [] in
  for j = n - 1 downto 0 do
    if j < k && S.mem k cols.(j) then acc := j :: !acc
  done;
  Array.of_list !acc
