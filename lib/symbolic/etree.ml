open Sympiler_sparse

(* Elimination tree of a symmetric positive definite matrix (Liu's algorithm
   with path-compressed virtual ancestors, nearly O(|A|)). The parent of
   column j is min{ i > j : L(i,j) <> 0 }. Input is the lower-triangular
   part of A in CSC form. *)

(* parent.(j) = parent column, or -1 for roots. *)
let compute (a_lower : Csc.t) : int array =
  Sympiler_trace.Trace.with_span "symbolic.etree" @@ fun () ->
  let n = a_lower.Csc.ncols in
  (* Row patterns of the lower triangle = column patterns of its transpose:
     column k of [upper] lists the i <= k with A(k,i) <> 0. *)
  let upper = Csc.transpose a_lower in
  let parent = Array.make n (-1) in
  let ancestor = Array.make n (-1) in
  for k = 0 to n - 1 do
    Csc.iter_col upper k (fun i _ ->
        (* Walk from i up the current forest to its root, compressing. *)
        let rec climb i =
          if i < k && i >= 0 then begin
            let next = ancestor.(i) in
            ancestor.(i) <- k;
            if next = -1 then parent.(i) <- k else climb next
          end
        in
        climb i)
  done;
  parent

(* Naive O(n^2)-ish oracle: build the filled pattern column by column with
   explicit sets and read parents off it. Used only in tests. *)
let compute_naive (a_lower : Csc.t) : int array =
  let n = a_lower.Csc.ncols in
  let module S = Set.Make (Int) in
  let cols = Array.make n S.empty in
  (* Start with pattern of A's lower triangle. *)
  Csc.iter a_lower (fun i j _ -> if i > j then cols.(j) <- S.add i cols.(j));
  let parent = Array.make n (-1) in
  for j = 0 to n - 1 do
    match S.min_elt_opt cols.(j) with
    | None -> ()
    | Some p ->
        parent.(j) <- p;
        (* Fill: the rest of column j's pattern joins column p. *)
        cols.(p) <- S.union cols.(p) (S.remove p cols.(j))
  done;
  parent

let children (parent : int array) : int list array =
  let n = Array.length parent in
  let ch = Array.make n [] in
  for j = n - 1 downto 0 do
    if parent.(j) >= 0 then ch.(parent.(j)) <- j :: ch.(parent.(j))
  done;
  ch

let n_children (parent : int array) : int array =
  let n = Array.length parent in
  let c = Array.make n 0 in
  Array.iter (fun p -> if p >= 0 then c.(p) <- c.(p) + 1) parent;
  c

let roots (parent : int array) : int list =
  let acc = ref [] in
  Array.iteri (fun j p -> if p = -1 then acc := j :: !acc) parent;
  List.rev !acc

(* Path from [j] to its root, inclusive, in ascending (child-to-root)
   order — the inspection set of the §3.3 rank-update method: an update
   whose first nonzero is [j] touches exactly these columns. *)
let path_to_root (parent : int array) (j : int) : int array =
  if j < 0 || j >= Array.length parent then
    invalid_arg "Etree.path_to_root: node out of range";
  let len = ref 0 in
  let i = ref j in
  while !i >= 0 do
    incr len;
    i := parent.(!i)
  done;
  let path = Array.make !len 0 in
  let i = ref j in
  for t = 0 to !len - 1 do
    path.(t) <- !i;
    i := parent.(!i)
  done;
  path

(* Memoized per-node path table. Paths are computed on first use and
   cached ([paths.(j)] is [[||]] until then — a real path always contains
   [j] itself, so the empty array is a free "unset" sentinel). Steady-state
   lookups are a single array read: the symbolic phase of a repeated rank
   update collapses to a table hit, which is what lets the numeric update
   run allocation-free. [hits]/[misses] let callers feed the profiling
   layer without the table depending on it. *)
type path_table = {
  pt_parent : int array;
  pt_paths : int array array;
  mutable pt_hits : int;
  mutable pt_misses : int;
}

let make_path_table (parent : int array) : path_table =
  {
    pt_parent = parent;
    pt_paths = Array.make (Array.length parent) [||];
    pt_hits = 0;
    pt_misses = 0;
  }

let path (tbl : path_table) (j : int) : int array =
  let p = tbl.pt_paths.(j) in
  if Array.length p > 0 then begin
    tbl.pt_hits <- tbl.pt_hits + 1;
    p
  end
  else begin
    tbl.pt_misses <- tbl.pt_misses + 1;
    let p = path_to_root tbl.pt_parent j in
    tbl.pt_paths.(j) <- p;
    p
  end

(* Depth of each node (roots have depth 0). Iterative: a band matrix's
   etree is a single path, so at 10^6 columns the obvious memoized
   recursion is 10^6 frames deep — it must climb with an explicit stack.
   Each node is pushed once overall, so the whole pass is O(n). *)
let depths (parent : int array) : int array =
  let n = Array.length parent in
  let depth = Array.make n (-1) in
  let path = Array.make (max 1 n) 0 in
  for j = 0 to n - 1 do
    if depth.(j) < 0 then begin
      (* Climb to the first ancestor of known depth (or a root), recording
         the path, then assign depths back down it. *)
      let top = ref 0 in
      let i = ref j in
      while !i >= 0 && depth.(!i) < 0 do
        path.(!top) <- !i;
        incr top;
        i := parent.(!i)
      done;
      let d = ref (if !i < 0 then -1 else depth.(!i)) in
      for t = !top - 1 downto 0 do
        incr d;
        depth.(path.(t)) <- !d
      done
    end
  done;
  depth
