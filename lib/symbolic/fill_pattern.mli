open Sympiler_sparse

(** Symbolic Cholesky factorization: the complete nonzero pattern of L
    (fill-ins included), its column counts, and the per-row prune-sets —
    everything the numeric phase needs so that no dynamic index arrays
    remain, the property Sympiler's code generation relies on (§3.2). *)

(** Result of analyzing [A = L L^T]. *)
type t = {
  n : int;
  parent : int array;  (** elimination tree *)
  l_pattern : Csc.t;
      (** pattern of L (unit values), rows sorted ascending per column *)
  counts : int array;  (** [counts.(j)] = nnz(L(:,j)), diagonal included *)
  row_patterns : int array array;
      (** [row_patterns.(k)] = columns [j < k] with [L(k,j) <> 0], ascending
          — the per-column prune-sets of Cholesky's VI-Prune *)
}

val analyze : Csc.t -> t
(** O(|L|) symbolic factorization of the lower-triangular part of A, via
    {!Etree} + {!Ereach}. *)

val pattern_by_children : Csc.t -> Csc.t
(** Independent oracle implementing the paper's equation (1):
    [Lj = Aj ∪ {j} ∪ (∪_{j = T(s)} Ls \ {s})]. Asymptotically worse; used
    by tests to cross-check {!analyze}. *)

val nnz_l : t -> int

val flops : t -> float
(** Flop count of the numeric factorization under the standard
    [sum_j counts.(j)^2] model, used as the GFLOP/s numerator in the
    benchmark figures. *)

val col_flops : int array -> float array
(** Per-column flop estimate from a column-count array ([counts.(j)^2],
    the summand of {!flops}) — the symbolic cost model behind the parallel
    runtime's cost-balanced level partitions. Accepts any counts array
    (e.g. derived from a factor's [colptr]), not just {!t.counts}. *)
