open Sympiler_sparse

(** Symbolic Cholesky factorization: the complete nonzero pattern of L
    (fill-ins included), its column counts, and the per-row prune-sets —
    everything the numeric phase needs so that no dynamic index arrays
    remain, the property Sympiler's code generation relies on (§3.2). *)

(** Result of analyzing [A = L L^T]. The per-row prune-sets are packed in
    an int32 {!Bigstore} (segment [k] = row [k]'s pattern) — half the
    memory of a jagged [int array array] at large n. *)
type t = {
  n : int;
  parent : int array;  (** elimination tree *)
  l_pattern : Csc.t;
      (** pattern of L (unit values), rows sorted ascending per column *)
  counts : int array;  (** [counts.(j)] = nnz(L(:,j)), diagonal included *)
  row_store : Bigstore.t;
      (** segment [k] = columns [j < k] with [L(k,j) <> 0], ascending — the
          per-column prune-sets of Cholesky's VI-Prune *)
}

val analyze : Csc.t -> t
(** O(|L|) symbolic factorization of the lower-triangular part of A, via
    {!Etree} + {!Ereach}. *)

val row_ptr : t -> int array
(** Segment offsets of the packed row patterns (length [n+1]; row [k]
    occupies packed positions [row_ptr.(k) .. row_ptr.(k+1)-1]). Shared
    with the store — treat as read-only. *)

val row_pattern : t -> int -> int array
(** Allocating copy of row [k]'s pattern. *)

val iter_row_pattern : t -> int -> (int -> unit) -> unit
(** Apply a function to each column of row [k]'s pattern, ascending. *)

val row_patterns : t -> int array array
(** Allocating jagged copy of all row patterns (inspection sets, tests). *)

val row_store : t -> Bigstore.t
(** The packed store itself (for kernels that flatten it at compile time). *)

val pattern_by_children : Csc.t -> Csc.t
(** Independent oracle implementing the paper's equation (1):
    [Lj = Aj ∪ {j} ∪ (∪_{j = T(s)} Ls \ {s})], with child lists
    precomputed from the etree. Asymptotically worse than {!analyze} (set
    unions); used by tests to cross-check it. *)

val nnz_l : t -> int

val flops : t -> float
(** Flop count of the numeric factorization under the standard
    [sum_j counts.(j)^2] model, used as the GFLOP/s numerator in the
    benchmark figures. *)

val col_flops : int array -> float array
(** Per-column flop estimate from a column-count array ([counts.(j)^2],
    the summand of {!flops}) — the symbolic cost model behind the parallel
    runtime's cost-balanced level partitions. Accepts any counts array
    (e.g. derived from a factor's [colptr]), not just {!t.counts}. *)
