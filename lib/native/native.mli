(** The native kernel engine: compile Sympiler-emitted C into a shared
    object, resolve its uniform entry point through [dlopen]/[dlsym], and
    cache compiled objects on disk so a steady-state cache hit never
    re-invokes the C compiler.

    This module is deliberately family-agnostic: it knows nothing about
    trisolve or Cholesky, only about "a C translation unit exporting

    {[ int sympiler_entry(double *b0, double *b1, double *b2, double *b3); ]}

    compiled with the configured flags". The per-family glue (which
    emitted source, which buffer goes in which slot, how a non-negative
    return maps to a pivot exception) lives in the facade's
    [Native_engine]. *)

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The only data type that crosses the FFI: a C-layout float64 Bigarray.
    Its payload lives outside the OCaml heap, so the stub can hand the raw
    pointer to the kernel without pinning. *)

type origin =
  | Compiled  (** the C compiler ran for this load *)
  | Disk_cache  (** a previously compiled [.so] was dlopened, no compile *)
  | Memory_cache  (** the already-loaded kernel was returned, no dlopen *)

type kernel = {
  fn : nativeint;  (** resolved [sympiler_entry] function pointer *)
  so_path : string;  (** the shared object backing [fn] *)
  origin : origin;  (** how the {e first} load of this key was served *)
  compile_seconds : float;
      (** wall-clock cost of cc + dlopen + dlsym for that first load
          ([Compiled]), or of dlopen + dlsym alone ([Disk_cache]) *)
}

type stats = {
  compiles : int;  (** loads that ran the C compiler *)
  disk_hits : int;  (** loads served by dlopening a cached [.so] *)
  memory_hits : int;  (** loads served from the in-process kernel table *)
  fallbacks : int;  (** loads that returned [None] *)
}

val cc : unit -> string option
(** The C compiler the engine would use: [$SYMPILER_CC] when set (even a
    bare command name; [None] when it names nothing executable — the hook
    for forcing fallback in tests), otherwise the first of [cc], [gcc],
    [clang] found on [$PATH]. Re-read on every call, so tests can flip the
    environment. *)

val available : unit -> bool
(** [cc () <> None]. *)

val compiler_identity : string -> string
(** Version-stamped identity of one compiler executable (path plus the
    first line of [--version]), memoized per path. Part of every cache
    key: upgrading the compiler invalidates the on-disk objects. *)

val cache_dir : unit -> string
(** The on-disk object cache: [$SYMPILER_NATIVE_CACHE] when set, else
    [$XDG_CACHE_HOME/sympiler-native], else [$HOME/.cache/sympiler-native],
    else [<tmpdir>/sympiler-native]. Created on demand. *)

val default_cflags : string list
(** [-O3 -march=native -ffp-contract=off -fPIC -shared]: full optimization
    with FMA contraction disabled, so the compiled kernel performs exactly
    the emitted operation sequence and factors stay bit-comparable to the
    OCaml executors. *)

val load :
  ?cflags:string list -> key:int -> entry:string -> string -> kernel option
(** [load ~key ~entry source] returns the entry point of [source] compiled
    as a shared object, or [None] when no C compiler is available or the
    compile/load failed (each such fallback bumps a counter and emits a
    one-time note; callers are expected to fall back to the OCaml
    executor).

    The cache key folds [key] (the caller's pattern/options fingerprint,
    e.g. a {!Sympiler_sparse.Csc.pattern_hash}) with a content hash of
    [source], [entry], [cflags], and {!compiler_identity} — so any change
    to the emitted code, the flags, or the toolchain compiles a fresh
    object, while an identical configuration is served from cache:
    first from the in-process table (no dlopen), then from the on-disk
    [.so] (no compile). *)

val call : kernel -> buf -> buf -> buf -> buf -> int
(** Invoke the kernel on the raw data of four buffers (pass {!dummy} for
    unused slots). Allocation-free. *)

val dummy : buf
(** A shared 1-element buffer for unused trampoline slots. *)

val stats : unit -> stats

val reset_stats : unit -> unit
(** Zero the counters (tests). *)

val clear_memory_cache : unit -> unit
(** Drop the in-process kernel table, forcing the next [load] of each key
    back to the on-disk cache (tests of the disk tier). Already-resolved
    kernels stay valid: shared objects are never dlclosed. *)
