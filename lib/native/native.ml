(* Native kernel engine: cc -> .so -> dlopen/dlsym, with a two-tier cache.
 *
 * Tier 1 is an in-process table from cache key to the already-resolved
 * [kernel] record — a hit costs one Hashtbl lookup and returns the same
 * physical record (the handle-identity tests rely on this). Tier 2 is an
 * on-disk directory of shared objects named by the key, so a fresh
 * process (or [clear_memory_cache]) pays only dlopen + dlsym, never the
 * compiler. The key folds the caller's pattern/options fingerprint with
 * the source text, entry name, cflags, and compiler identity, so any
 * input that could change the machine code changes the file name.
 *
 * Shared objects are never dlclosed: a [kernel] stays callable for the
 * life of the process even after [clear_memory_cache], and leaking a
 * handful of mapped .so files is cheaper than proving no plan still
 * holds a function pointer into one. *)

module Prof = Sympiler_prof.Prof
module Trace = Sympiler_trace.Trace
module Metrics = Sympiler_metrics.Metrics

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type origin = Compiled | Disk_cache | Memory_cache

type kernel = {
  fn : nativeint;
  so_path : string;
  origin : origin;
  compile_seconds : float;
}

type stats = {
  compiles : int;
  disk_hits : int;
  memory_hits : int;
  fallbacks : int;
}

external dlopen_so : string -> nativeint = "sympiler_native_dlopen"
external dlsym_fn : nativeint -> string -> nativeint = "sympiler_native_dlsym"

external call_fn : nativeint -> buf -> buf -> buf -> buf -> int
  = "sympiler_native_call"
[@@noalloc]

let dummy : buf = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout 1
let call k b0 b1 b2 b3 = call_fn k.fn b0 b1 b2 b3

(* ---------------------------- Bookkeeping ----------------------------- *)

let lock = Mutex.create ()
let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let n_compiles = ref 0
let n_disk_hits = ref 0
let n_memory_hits = ref 0
let n_fallbacks = ref 0
let fallback_noted = ref false

let stats () =
  with_lock (fun () ->
      {
        compiles = !n_compiles;
        disk_hits = !n_disk_hits;
        memory_hits = !n_memory_hits;
        fallbacks = !n_fallbacks;
      })

(* Serving metrics: where native loads were served from, how long the C
   compiler took, and how often the engine declined. *)
let m_cc_seconds =
  Metrics.histogram "sympiler_native_cc_seconds"
    ~help:"Wall time of one generated-C compile (write, cc, dlopen)"

let m_loads_memory =
  Metrics.counter "sympiler_native_loads" ~labels:[ ("source", "memory") ]
    ~help:"Native kernel loads by serving source"

let m_loads_disk =
  Metrics.counter "sympiler_native_loads" ~labels:[ ("source", "disk") ]
    ~help:"Native kernel loads by serving source"

let m_compiles =
  Metrics.counter "sympiler_native_compiles" ~help:"Generated-C kernels compiled to .so"

let m_fallbacks =
  Metrics.counter "sympiler_native_fallbacks"
    ~help:"Native requests that fell back to the OCaml executor"

let note_so_hit () =
  if Prof.enabled () then begin
    let c = Prof.cell () in
    c.Prof.native_so_hits <- c.Prof.native_so_hits + 1
  end

let note_compile () =
  Metrics.inc m_compiles 1;
  if Prof.enabled () then begin
    let c = Prof.cell () in
    c.Prof.native_compiles <- c.Prof.native_compiles + 1
  end

(* The fallback counter always bumps (it is how tests observe the engine
   declining), but the human-facing note prints once per process: a run
   on a compiler-less machine should say so, not repeat it per plan. *)
let note_fallback reason =
  incr n_fallbacks;
  Metrics.inc m_fallbacks 1;
  (if Prof.enabled () then begin
     let c = Prof.cell () in
     c.Prof.native_fallbacks <- c.Prof.native_fallbacks + 1
   end);
  Trace.instant ~attrs:[ ("reason", Trace.Str reason) ] "native.fallback";
  if not !fallback_noted then begin
    fallback_noted := true;
    Printf.eprintf
      "sympiler: native engine unavailable (%s); using OCaml executor\n%!"
      reason
  end

(* --------------------------- Compiler probe --------------------------- *)

(* No unix library in the closure, so there is no access(2) probe: treat
   any existing non-directory as a candidate and let the compile step
   surface permission errors. For PATH search this matches what the shell
   finds in practice. *)
let file_exists_nondir path =
  Sys.file_exists path && not (try Sys.is_directory path with Sys_error _ -> false)

let path_sep = if Sys.win32 then ';' else ':'

let search_path name =
  if String.contains name '/' then
    if file_exists_nondir name then Some name else None
  else
    match Sys.getenv_opt "PATH" with
    | None -> None
    | Some path ->
        String.split_on_char path_sep path
        |> List.find_map (fun dir ->
               if dir = "" then None
               else
                 let candidate = Filename.concat dir name in
                 if file_exists_nondir candidate then Some candidate else None)

(* Re-read the environment on every call: the fallback tests flip
   SYMPILER_CC mid-process and must see the change immediately. *)
let cc () =
  match Sys.getenv_opt "SYMPILER_CC" with
  | Some override when String.trim override <> "" -> search_path override
  | Some _ | None ->
      List.find_map search_path [ "cc"; "gcc"; "clang" ]

let available () = cc () <> None

(* Compiler identity is path + first line of --version, memoized per path
   (the subprocess is too slow for per-load). A compiler upgrade changes
   the line, changes every key, and naturally invalidates the disk cache. *)
let identity_tbl : (string, string) Hashtbl.t = Hashtbl.create 4

let quote = Filename.quote

let first_line_of_file path =
  try
    In_channel.with_open_text path (fun ic ->
        match In_channel.input_line ic with Some l -> l | None -> "")
  with Sys_error _ -> ""

let compiler_identity path =
  with_lock (fun () ->
      match Hashtbl.find_opt identity_tbl path with
      | Some id -> id
      | None ->
          let tmp = Filename.temp_file "sympiler-ccid" ".txt" in
          let cmd =
            Printf.sprintf "%s --version > %s 2>/dev/null" (quote path)
              (quote tmp)
          in
          let version =
            if Sys.command cmd = 0 then first_line_of_file tmp else ""
          in
          (try Sys.remove tmp with Sys_error _ -> ());
          let id = path ^ " | " ^ version in
          Hashtbl.replace identity_tbl path id;
          id)

(* ----------------------------- Disk cache ----------------------------- *)

let mkdir_p dir =
  let rec aux dir =
    if not (Sys.file_exists dir) then begin
      aux (Filename.dirname dir);
      try Sys.mkdir dir 0o755 with Sys_error _ -> ()
    end
  in
  aux dir

let cache_dir () =
  let dir =
    match Sys.getenv_opt "SYMPILER_NATIVE_CACHE" with
    | Some d when d <> "" -> d
    | _ -> (
        match Sys.getenv_opt "XDG_CACHE_HOME" with
        | Some d when d <> "" -> Filename.concat d "sympiler-native"
        | _ -> (
            match Sys.getenv_opt "HOME" with
            | Some h when h <> "" ->
                Filename.concat (Filename.concat h ".cache") "sympiler-native"
            | _ -> Filename.concat (Filename.get_temp_dir_name ()) "sympiler-native"))
  in
  mkdir_p dir;
  dir

(* FNV-1a over strings, folded into the caller's fingerprint. Stable
   across runs (unlike Hashtbl.hash's implementation freedom guarantees
   we don't want to rely on for on-disk names). *)
let fnv1a_fold h s =
  let h = ref (Int64.of_int h) in
  let prime = 0x100000001b3L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  Int64.to_int !h land max_int

let default_cflags =
  [ "-O3"; "-march=native"; "-ffp-contract=off"; "-fPIC"; "-shared" ]

let cache_key ~key ~entry ~cflags ~ccid source =
  let h = fnv1a_fold (key land max_int) source in
  let h = fnv1a_fold h entry in
  let h = List.fold_left fnv1a_fold h cflags in
  fnv1a_fold h ccid

(* ------------------------------- Loading ------------------------------ *)

let memory_cache : (string, kernel) Hashtbl.t = Hashtbl.create 16
let clear_memory_cache () = with_lock (fun () -> Hashtbl.reset memory_cache)

let reset_stats () =
  with_lock (fun () ->
      n_compiles := 0;
      n_disk_hits := 0;
      n_memory_hits := 0;
      n_fallbacks := 0)

let resolve so_path entry =
  let handle = dlopen_so so_path in
  dlsym_fn handle entry

let run_compile ~cc_path ~cflags ~src_path ~out_path =
  let log_path = out_path ^ ".log" in
  let cmd flags =
    Printf.sprintf "%s %s -o %s %s > %s 2>&1" (quote cc_path)
      (String.concat " " (List.map quote flags))
      (quote out_path) (quote src_path) (quote log_path)
  in
  let rc = Sys.command (cmd cflags) in
  let rc =
    (* -march=native can fail on exotic hosts/emulators; retry portable. *)
    if rc <> 0 && List.mem "-march=native" cflags then
      Sys.command (cmd (List.filter (fun f -> f <> "-march=native") cflags))
    else rc
  in
  if rc = 0 then begin
    (try Sys.remove log_path with Sys_error _ -> ());
    Ok ()
  end
  else
    Error
      (Printf.sprintf "cc exited %d (%s)" rc
         (first_line_of_file log_path))

let compile_and_load ~cc_path ~cflags ~entry ~hexkey source =
  let dir = cache_dir () in
  let so_path = Filename.concat dir (hexkey ^ ".so") in
  if Sys.file_exists so_path then begin
    let t0 = Prof.now_seconds () in
    let fn = resolve so_path entry in
    let dt = Prof.now_seconds () -. t0 in
    incr n_disk_hits;
    note_so_hit ();
    Metrics.inc m_loads_disk 1;
    Ok { fn; so_path; origin = Disk_cache; compile_seconds = dt }
  end
  else begin
    let src_path = Filename.concat dir (hexkey ^ ".c") in
    (* Compile to a process-unique temp name and rename into place, so
       concurrent processes racing on the same key never dlopen a
       half-written object. rename is atomic within the directory. *)
    let tmp_out =
      Filename.concat dir
        (Printf.sprintf ".%s.%d.tmp.so" hexkey (Stdlib.abs (Hashtbl.hash dir)))
    in
    let t0 = Prof.now_seconds () in
    Out_channel.with_open_text src_path (fun oc ->
        Out_channel.output_string oc source);
    match run_compile ~cc_path ~cflags ~src_path ~out_path:tmp_out with
    | Error _ as e ->
        (try Sys.remove tmp_out with Sys_error _ -> ());
        e
    | Ok () ->
        (try Sys.rename tmp_out so_path
         with Sys_error _ -> (try Sys.remove tmp_out with Sys_error _ -> ()));
        let fn = resolve so_path entry in
        let dt = Prof.now_seconds () -. t0 in
        incr n_compiles;
        note_compile ();
        Metrics.observe m_cc_seconds dt;
        Ok { fn; so_path; origin = Compiled; compile_seconds = dt }
  end

let load ?(cflags = default_cflags) ~key ~entry source =
  match cc () with
  | None ->
      with_lock (fun () -> note_fallback "no C compiler found");
      None
  | Some cc_path ->
      let ccid = compiler_identity cc_path in
      let hexkey =
        Printf.sprintf "%016x" (cache_key ~key ~entry ~cflags ~ccid source)
      in
      with_lock (fun () ->
          match Hashtbl.find_opt memory_cache hexkey with
          | Some k ->
              incr n_memory_hits;
              note_so_hit ();
              Metrics.inc m_loads_memory 1;
              Some k
          | None -> (
              match
                try compile_and_load ~cc_path ~cflags ~entry ~hexkey source
                with Failure msg -> Error msg
              with
              | Ok k ->
                  Hashtbl.replace memory_cache hexkey k;
                  Some k
              | Error msg ->
                  note_fallback msg;
                  None))
