/* Hand-written dlopen/dlsym bridge for the native kernel engine.
 *
 * The switch has no ctypes, so this stub is the whole FFI surface: three
 * externals. Loading returns raw handles/function pointers as nativeint;
 * the call trampoline receives up to four float64 Bigarray buffers and
 * invokes the resolved kernel on their data pointers.
 *
 * Every generated kernel is compiled behind one uniform entry point,
 *
 *   int sympiler_entry(double *b0, double *b1, double *b2, double *b3);
 *
 * appended to the emitted translation unit (see Native_engine), so a
 * single trampoline signature serves all six kernel families. Kernels
 * returning void are wrapped to return -1 ("no pivot failure"); the
 * factorization kernels return the failing column index, which the OCaml
 * side re-raises as the family's own exception.
 *
 * sympiler_native_call is declared [@@noalloc]: it allocates nothing and
 * never calls back into the runtime, so the GC cannot move the Bigarray
 * payloads (which live outside the OCaml heap anyway) during the call.
 */

#include <dlfcn.h>
#include <stdint.h>

#include <caml/alloc.h>
#include <caml/bigarray.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>

typedef int (*sympiler_kernel_fn)(double *, double *, double *, double *);

CAMLprim value sympiler_native_dlopen(value vpath)
{
  CAMLparam1(vpath);
  void *handle = dlopen(String_val(vpath), RTLD_NOW | RTLD_LOCAL);
  if (handle == NULL) {
    const char *err = dlerror();
    caml_failwith(err == NULL ? "dlopen failed" : err);
  }
  CAMLreturn(caml_copy_nativeint((intnat)handle));
}

CAMLprim value sympiler_native_dlsym(value vhandle, value vname)
{
  CAMLparam2(vhandle, vname);
  void *handle = (void *)Nativeint_val(vhandle);
  /* Clear any stale error so a NULL-valued symbol is distinguishable. */
  (void)dlerror();
  void *fn = dlsym(handle, String_val(vname));
  if (fn == NULL) {
    const char *err = dlerror();
    caml_failwith(err == NULL ? "dlsym returned NULL" : err);
  }
  CAMLreturn(caml_copy_nativeint((intnat)fn));
}

CAMLprim value sympiler_native_call(value vfn, value b0, value b1, value b2,
                                    value b3)
{
  sympiler_kernel_fn fn = (sympiler_kernel_fn)Nativeint_val(vfn);
  int rc = fn((double *)Caml_ba_data_val(b0), (double *)Caml_ba_data_val(b1),
              (double *)Caml_ba_data_val(b2), (double *)Caml_ba_data_val(b3));
  return Val_int(rc);
}
