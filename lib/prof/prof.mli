(** Observability layer: monotonic phase timers with named scopes
    ([symbolic], [numeric], [codegen], [ordering], plus per-pass
    sub-scopes), lightweight kernel counters, and JSON / table emitters.

    Profiling is off by default. Every recording site in the kernels is
    guarded by {!enabled}, a single boolean load, and counters are mutable
    int fields bumped in place — so the disabled path performs no
    allocation and no clock reads on kernel hot paths. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Zero all counters and forget all scopes (does not change {!enabled}). *)

(** {1 Counters}

    A single global accumulator. Kernels add to it only when {!enabled};
    callers that want per-region values [reset] before and snapshot after.
    [supernodes]/[supernode_cols] accumulate per VS-Block detection;
    [levels] accumulates per level-set construction while
    [max_level_width] takes the maximum over them. *)

type counters = {
  mutable flops : int;  (** useful floating-point operations executed *)
  mutable nnz_touched : int;  (** matrix nonzeros read/written by kernels *)
  mutable iters_pruned : int;  (** loop iterations removed by VI-Prune *)
  mutable supernodes : int;  (** supernodes produced by VS-Block detection *)
  mutable supernode_cols : int;  (** columns covered by those supernodes *)
  mutable levels : int;  (** level sets built by trisolve_parallel *)
  mutable max_level_width : int;  (** widest level set seen *)
  mutable cache_hits : int;  (** compilation-cache lookups served *)
  mutable cache_misses : int;  (** compilation-cache lookups that compiled *)
  mutable orderings : int;
      (** fill-reducing orderings computed (RCM / min-degree / AMD runs) *)
  mutable pool_runs : int;
      (** parallel dispatches through {!Sympiler_runtime.Pool} *)
  mutable pool_tasks : int;  (** worker tasks executed across those runs *)
  mutable pool_max_workers : int;  (** widest dispatch seen *)
  mutable pool_imbalance_pct : int;
      (** worst per-dispatch level imbalance, max/mean worker time as an
          integer percentage (100 = perfectly balanced; 0 = not measured) *)
  mutable native_compiles : int;
      (** generated-C kernels compiled to a shared object by the native
          engine (cache misses that ran the C compiler) *)
  mutable native_so_hits : int;
      (** native-engine loads served from the in-memory or on-disk .so
          cache without re-invoking the compiler *)
  mutable native_fallbacks : int;
      (** native-engine requests that fell back to the OCaml executor
          (no C compiler, compile failure, or dlopen failure) *)
  mutable updown_path_hits : int;
      (** rank-update etree paths served from the memoized per-jmin table *)
  mutable updown_path_misses : int;
      (** rank-update etree paths computed fresh (first use of a jmin) *)
  mutable updown_escalations : int;
      (** rank updates whose pattern outgrew the factor and forced a
          recompile of the augmented pattern (facade escalation path) *)
}

val counters : counters
val avg_supernode_width : unit -> float

val cell : unit -> counters
(** The calling domain's counter cell. On the main domain this {e is} the
    global {!counters} record; on any other domain (pool workers) it is a
    private per-domain cell, so bumps through [cell ()] never race across
    domains. Worker cells are folded back into {!counters} by
    {!merge_cells}. Kernel recording sites must bump through [cell ()],
    never through {!counters} directly, because plain [mutable int]
    read-modify-write from several domains silently drops updates. *)

val merge_cells : unit -> unit
(** Fold every worker-domain cell into the global {!counters} record and
    zero the cells. Sum for accumulating fields; [max] for
    [max_level_width], [pool_max_workers], and [pool_imbalance_pct].
    Called by {!Sympiler_runtime.Pool.run} after its completion barrier,
    when all workers are parked — so totals observed from the main domain
    are exact. Safe to call from the main domain at any quiescent point. *)

(** {1 Phase timers}

    Named scopes over the monotonic clock. Scopes are reentrant: nested
    [start]/[stop] of the same name count the outermost span once. All
    timer operations are no-ops while disabled. *)

val now_seconds : unit -> float
(** The raw monotonic clock in seconds — the timing source for callers
    that measure spans themselves (bench harness, facade
    [symbolic_seconds]); immune to NTP adjustments. Always available,
    whether or not profiling is enabled. *)

val start : string -> unit
val stop : string -> unit

val time : string -> (unit -> 'a) -> 'a
(** [time name f] runs [f] inside scope [name] (exception-safe); when
    profiling is disabled it is just [f ()]. *)

val scope_seconds : string -> float
(** Accumulated seconds in scope [name], including the elapsed time of a
    still-open (in-flight) outermost span — a live snapshot taken
    mid-phase reports everything elapsed so far. *)

val scope_entries : string -> int
(** Completed entries of scope [name] (an in-flight span is not counted
    until it closes). *)

val scopes : unit -> (string * float * int) list
(** All scopes as [(name, total seconds, entries)], sorted by name;
    seconds include in-flight spans like {!scope_seconds}. *)

(** {1 Emitters} *)

(** Minimal JSON document builder (no external dependency), used by the
    bench harness to assemble [BENCH_*.json] files. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string

  val of_string : string -> (t, string) result
  (** Parse a JSON document (the full language; numbers without [.]/[e]
      parse as [Int], others as [Float]). Used by the perf-regression
      gate to read committed [BENCH_*.json] baselines. *)
end

val counters_json : unit -> Json.t
val phases_json : unit -> Json.t

val to_json : unit -> string
(** Full snapshot: [{"enabled":…,"phases":…,"counters":…}]. *)

val table : unit -> string
(** Human-readable phase/counter table; the name column is sized to the
    longest scope/counter name present. *)
