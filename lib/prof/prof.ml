(* Observability layer: monotonic phase timers with named scopes, lightweight
   kernel counters, and JSON / table emitters.

   Design constraints (see DESIGN.md "Profiling layer"):
   - Disabled is the default, and disabled must be free on kernel hot paths:
     every recording site is guarded by [enabled ()], a single load of a
     mutable bool, and the counters are mutable int fields bumped in place,
     so no allocation happens whether profiling is on or off.
   - Timers use the raw monotonic clock (CLOCK_MONOTONIC via the bechamel
     stub, an [@@noalloc] external returning an unboxed int64), so scope
     accounting survives NTP adjustments and never allocates either.
   - Scopes are reentrant: nested [start]/[stop] of the same name count the
     outermost span once, which lets a facade time "symbolic" around an
     inspector that also times "symbolic" internally. *)

let on = ref false
let enabled () = !on
let enable () = on := true
let disable () = on := false

(* ------------------------------ Counters ------------------------------ *)

type counters = {
  mutable flops : int;  (** useful floating-point operations executed *)
  mutable nnz_touched : int;  (** matrix nonzeros read/written by kernels *)
  mutable iters_pruned : int;  (** loop iterations removed by VI-Prune *)
  mutable supernodes : int;  (** supernodes produced by VS-Block detection *)
  mutable supernode_cols : int;  (** columns covered by those supernodes *)
  mutable levels : int;  (** level sets built by trisolve_parallel *)
  mutable max_level_width : int;  (** widest level set seen *)
  mutable cache_hits : int;  (** compilation-cache lookups served *)
  mutable cache_misses : int;  (** compilation-cache lookups that compiled *)
  mutable orderings : int;  (** fill-reducing orderings computed *)
  mutable pool_runs : int;  (** parallel dispatches through the domain pool *)
  mutable pool_tasks : int;  (** worker tasks executed across those runs *)
  mutable pool_max_workers : int;  (** widest dispatch seen *)
  mutable pool_imbalance_pct : int;
      (** worst per-dispatch imbalance, max/mean worker time as an integer
          percentage (100 = perfectly balanced; 0 = never measured) *)
  mutable native_compiles : int;
      (** generated-C kernels compiled to .so by the native engine *)
  mutable native_so_hits : int;
      (** native loads served from the memory/disk .so cache *)
  mutable native_fallbacks : int;
      (** native requests that fell back to the OCaml executor *)
}

let counters =
  {
    flops = 0;
    nnz_touched = 0;
    iters_pruned = 0;
    supernodes = 0;
    supernode_cols = 0;
    levels = 0;
    max_level_width = 0;
    cache_hits = 0;
    cache_misses = 0;
    orderings = 0;
    pool_runs = 0;
    pool_tasks = 0;
    pool_max_workers = 0;
    pool_imbalance_pct = 0;
    native_compiles = 0;
    native_so_hits = 0;
    native_fallbacks = 0;
  }

let avg_supernode_width () =
  if counters.supernodes = 0 then 0.0
  else float_of_int counters.supernode_cols /. float_of_int counters.supernodes

(* ------------------------------- Timers ------------------------------- *)

type scope = {
  mutable total_ns : int64;
  mutable entries : int;
  mutable depth : int;
  mutable started : int64;
}

let scopes_tbl : (string, scope) Hashtbl.t = Hashtbl.create 16

let find name =
  match Hashtbl.find_opt scopes_tbl name with
  | Some s -> s
  | None ->
      let s = { total_ns = 0L; entries = 0; depth = 0; started = 0L } in
      Hashtbl.add scopes_tbl name s;
      s

let now_ns () = Monotonic_clock.now ()

(* Monotonic wall-clock for callers that time spans themselves (the bench
   harness, the facade's [symbolic_seconds]): immune to NTP slews, unlike
   [Unix.gettimeofday]. *)
let now_seconds () = Int64.to_float (now_ns ()) /. 1e9

let start name =
  if !on then begin
    let s = find name in
    s.depth <- s.depth + 1;
    if s.depth = 1 then s.started <- now_ns ()
  end

let stop name =
  if !on then begin
    let s = find name in
    if s.depth > 0 then begin
      s.depth <- s.depth - 1;
      if s.depth = 0 then begin
        s.total_ns <- Int64.add s.total_ns (Int64.sub (now_ns ()) s.started);
        s.entries <- s.entries + 1
      end
    end
  end

let time name f =
  if !on then begin
    start name;
    Fun.protect ~finally:(fun () -> stop name) f
  end
  else f ()

let seconds_of_ns ns = Int64.to_float ns /. 1e9

(* Accumulated time including the in-flight (still-open) outermost span, so
   a snapshot taken mid-phase — the CLI printing a table while a solve is
   running under the same scope — does not under-report elapsed time. *)
let live_total_ns s =
  if s.depth > 0 then Int64.add s.total_ns (Int64.sub (now_ns ()) s.started)
  else s.total_ns

let scope_seconds name =
  match Hashtbl.find_opt scopes_tbl name with
  | None -> 0.0
  | Some s -> seconds_of_ns (live_total_ns s)

let scope_entries name =
  match Hashtbl.find_opt scopes_tbl name with None -> 0 | Some s -> s.entries

let scopes () =
  Hashtbl.fold
    (fun name s acc -> (name, seconds_of_ns (live_total_ns s), s.entries) :: acc)
    scopes_tbl []
  |> List.sort compare

let reset () =
  counters.flops <- 0;
  counters.nnz_touched <- 0;
  counters.iters_pruned <- 0;
  counters.supernodes <- 0;
  counters.supernode_cols <- 0;
  counters.levels <- 0;
  counters.max_level_width <- 0;
  counters.cache_hits <- 0;
  counters.cache_misses <- 0;
  counters.orderings <- 0;
  counters.pool_runs <- 0;
  counters.pool_tasks <- 0;
  counters.pool_max_workers <- 0;
  counters.pool_imbalance_pct <- 0;
  counters.native_compiles <- 0;
  counters.native_so_hits <- 0;
  counters.native_fallbacks <- 0;
  Hashtbl.reset scopes_tbl

(* ------------------------------ Emitters ------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let rec emit buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        (* JSON has no inf/nan; emit null for non-finite values. *)
        if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.9g" f)
        else Buffer.add_string buf "null"
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            emit buf x)
          xs;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\":";
            emit buf v)
          kvs;
        Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 256 in
    emit buf t;
    Buffer.contents buf
end

let counters_json () =
  Json.Obj
    [
      ("flops", Json.Int counters.flops);
      ("nnz_touched", Json.Int counters.nnz_touched);
      ("iters_pruned", Json.Int counters.iters_pruned);
      ("supernodes", Json.Int counters.supernodes);
      ("supernode_cols", Json.Int counters.supernode_cols);
      ("avg_supernode_width", Json.Float (avg_supernode_width ()));
      ("levels", Json.Int counters.levels);
      ("max_level_width", Json.Int counters.max_level_width);
      ("cache_hits", Json.Int counters.cache_hits);
      ("cache_misses", Json.Int counters.cache_misses);
      ("orderings", Json.Int counters.orderings);
      ("pool_runs", Json.Int counters.pool_runs);
      ("pool_tasks", Json.Int counters.pool_tasks);
      ("pool_max_workers", Json.Int counters.pool_max_workers);
      ("pool_imbalance_pct", Json.Int counters.pool_imbalance_pct);
      ("native_compiles", Json.Int counters.native_compiles);
      ("native_so_hits", Json.Int counters.native_so_hits);
      ("native_fallbacks", Json.Int counters.native_fallbacks);
    ]

let phases_json () =
  Json.Obj
    (List.map
       (fun (name, secs, entries) ->
         ( name,
           Json.Obj [ ("seconds", Json.Float secs); ("entries", Json.Int entries) ]
         ))
       (scopes ()))

let to_json () =
  Json.to_string
    (Json.Obj
       [
         ("enabled", Json.Bool !on);
         ("phases", phases_json ());
         ("counters", counters_json ());
       ])

let table () =
  let phases = scopes () in
  let counter_rows =
    [
      ("flops", string_of_int counters.flops);
      ("nnz_touched", string_of_int counters.nnz_touched);
      ("iters_pruned", string_of_int counters.iters_pruned);
      ("supernodes", string_of_int counters.supernodes);
      ("avg_supernode_width", Printf.sprintf "%.2f" (avg_supernode_width ()));
      ("levels", string_of_int counters.levels);
      ("max_level_width", string_of_int counters.max_level_width);
      ("cache_hits", string_of_int counters.cache_hits);
      ("cache_misses", string_of_int counters.cache_misses);
      ("orderings", string_of_int counters.orderings);
      ("pool_runs", string_of_int counters.pool_runs);
      ("pool_tasks", string_of_int counters.pool_tasks);
      ("pool_max_workers", string_of_int counters.pool_max_workers);
      ("pool_imbalance_pct", string_of_int counters.pool_imbalance_pct);
      ("native_compiles", string_of_int counters.native_compiles);
      ("native_so_hits", string_of_int counters.native_so_hits);
      ("native_fallbacks", string_of_int counters.native_fallbacks);
    ]
  in
  (* Name-column width follows the longest name present, so long scopes
     like "symbolic.supernode_detection" stay aligned with the rest. *)
  let w =
    List.fold_left (fun acc (name, _, _) -> max acc (String.length name)) 0
      phases
  in
  let w =
    List.fold_left (fun acc (name, _) -> max acc (String.length name)) w
      counter_rows
  in
  let w = max w (String.length "counter") in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "%-*s %11s %11s\n" w "phase" "seconds" "entries");
  List.iter
    (fun (name, secs, entries) ->
      Buffer.add_string buf
        (Printf.sprintf "%-*s %11.6f %11d\n" w name secs entries))
    phases;
  Buffer.add_string buf (Printf.sprintf "%-*s %11s\n" w "counter" "value");
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf (Printf.sprintf "%-*s %11s\n" w name v))
    counter_rows;
  Buffer.contents buf
